// Benchmarks for the live-migration pipeline (E29's wall-time twin,
// docs/ROBUSTNESS.md): a full iterative pre-copy migration of the same
// dense 200-page footprint the persist benchmarks use, at 1% / 10% /
// 50% of the pages dirtied per pre-copy round, plus the wire codec in
// isolation. `make bench-migrate` regenerates BENCH_migrate.json from
// these. The acceptance target is the stop-the-world window at <= 10%
// dirty beating the full-image wire time by >= 5x (gated
// deterministically by E29); the stw-cycles / fullwire-cycles metrics
// here are the same quantities with wall time alongside.
package repro

import (
	"bytes"
	"testing"

	"repro/internal/migrate"
)

func BenchmarkMigrate_PreCopy(b *testing.B) {
	for _, pct := range []int{1, 10, 50} {
		b.Run(pctName(pct), func(b *testing.B) {
			k, base := persistBenchKernel(b)
			n := persistBenchPages * pct / 100
			round := 0
			var last *migrate.Report
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				recv := migrate.NewReceiver()
				link := migrate.NewLink(migrate.LinkConfig{
					LatencyCycles: 16, BytesPerCycle: 64, RetransmitTimeout: 64,
				})
				link.Deliver = recv.Deliver
				step := func(uint64) {
					round++
					dirtyPages(b, k, base, n, round)
				}
				rep, err := migrate.Run(k, link, recv, step, migrate.Config{
					RoundBudget: 6, ConvergePages: persistBenchPages / 20,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Committed {
					b.Fatalf("migration did not commit: %s", rep.Reason)
				}
				last = rep
			}
			b.ReportMetric(float64(last.STWCycles), "stw-cycles")
			b.ReportMetric(float64(last.Rounds[0].WireCycles), "fullwire-cycles")
			b.ReportMetric(float64(len(last.Rounds)), "rounds")
		})
	}
}

// BenchmarkMigrateFrame_Codec measures the wire codec alone: one
// max-payload frame encoded and decoded (header + payload CRCs both
// verified on the way back in).
func BenchmarkMigrateFrame_Codec(b *testing.B) {
	payload := make([]byte, migrate.MaxFramePayload)
	for i := range payload {
		payload[i] = byte(i*31 + 7)
	}
	f := &migrate.Frame{Kind: migrate.FrameImage, Round: 2, Seq: 7, Chunk: 1, Chunks: 4, Payload: payload}
	raw, err := migrate.EncodeFrame(f)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw, err = migrate.EncodeFrame(f)
		if err != nil {
			b.Fatal(err)
		}
		got, err := migrate.DecodeFrame(raw)
		if err != nil {
			b.Fatal(err)
		}
		if !bytes.Equal(got.Payload, payload) {
			b.Fatal("payload mismatch")
		}
	}
}
