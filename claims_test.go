// Integration tests asserting the paper's *security and cost claims*
// end-to-end on the assembled system: real programs, real kernel, real
// machine (and mesh), adversarial where possible. Unit-level behavior
// is covered in each package; these tests check that the composition
// delivers what Sections 2, 3 and 6 promise.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/multi"
	"repro/internal/word"
)

func bootKernel(t *testing.T) *kernel.Kernel {
	t.Helper()
	cfg := machine.MMachine()
	cfg.PhysBytes = 4 << 20
	k, err := kernel.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestClaim_Unforgeability: "User level programs may not forge a
// guarded pointer" (Sec 1). An adversarial program that knows the
// exact bit pattern of a valid capability tries every user-mode
// strategy to materialize it; all must fail.
func TestClaim_Unforgeability(t *testing.T) {
	k := bootKernel(t)
	secret, err := k.AllocSegment(4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.WriteWords(secret, []word.Word{word.FromInt(0x5ec2e7)}); err != nil {
		t.Fatal(err)
	}
	image := int64(secret.Word().Uint()) // the exact 64-bit pointer image

	attacks := []struct {
		name string
		src  string
	}{
		{"SETPTR in user mode", fmt.Sprintf(`
			ldi r1, %d
			setptr r2, r1
			ld r3, r2, 0
			halt`, 42)},
		{"dereference the integer image directly", fmt.Sprintf(`
			ldi r1, 1
			shli r1, r1, 62   ; build high bits
			; r2 := exact image via arithmetic
			ldi r2, 0
			or  r2, r2, r1
			ld  r3, r2, 0
			halt`)},
		{"arithmetic on a granted weaker pointer", `
			; r1 holds a KEY pointer to the secret (no rights).
			addi r2, r1, 0    ; integer image (tag gone)
			ld   r3, r2, 0
			halt`},
		{"shift games to set high bits then load", `
			ldi  r1, -1
			shri r1, r1, 1
			ld   r3, r1, 0
			halt`},
	}
	_ = image
	for _, a := range attacks {
		ip, err := k.LoadProgram(mustAssemble(a.src), false)
		if err != nil {
			t.Fatal(err)
		}
		keyPtr, err := core.Restrict(secret, core.PermKey)
		if err != nil {
			t.Fatal(err)
		}
		th, err := k.Spawn(k.NewDomain(), ip, map[int]word.Word{1: keyPtr.Word()})
		if err != nil {
			t.Fatal(err)
		}
		k.Run(1_000_000)
		if th.State != machine.Faulted {
			t.Errorf("%s: thread %v (no fault!)", a.name, th.State)
		}
		// The secret was never read into a register.
		for r := 0; r < 16; r++ {
			if th.Reg(r).Int() == 0x5ec2e7 {
				t.Errorf("%s: secret leaked into r%d", a.name, r)
			}
		}
		k.M.RemoveThread(th)
	}
}

// TestClaim_DomainIsolation: a thread holding no capability into
// another domain's segment cannot read or corrupt it, even knowing all
// addresses; and a thread granted a capability can (Sec 6: sharing is
// owning a copy of the pointer).
func TestClaim_DomainIsolation(t *testing.T) {
	k := bootKernel(t)
	privateA, _ := k.AllocSegment(4096)
	k.WriteWords(privateA, []word.Word{word.FromInt(1111)})

	// Domain B: no capability at all — only the integer address.
	spy := fmt.Sprintf(`
		ldi r1, %d
		ld  r2, r1, 0
		halt`, int64(privateA.Base()))
	ipB, _ := k.LoadProgram(mustAssemble(spy), false)
	thB, _ := k.Spawn(k.NewDomain(), ipB, nil)

	// Domain C: granted a read-only copy — one word of transfer.
	ro, _ := core.Restrict(privateA, core.PermReadOnly)
	ipC, _ := k.LoadProgram(mustAssemble("ld r2, r1, 0\nhalt"), false)
	thC, _ := k.Spawn(k.NewDomain(), ipC, map[int]word.Word{1: ro.Word()})

	k.Run(1_000_000)
	if thB.State != machine.Faulted || core.CodeOf(thB.Fault) != core.FaultTag {
		t.Errorf("uncapable domain: %v %v", thB.State, thB.Fault)
	}
	if thC.State != machine.Halted || thC.Reg(2).Int() != 1111 {
		t.Errorf("granted domain: %v r2=%d", thC.State, thC.Reg(2).Int())
	}
}

// TestClaim_ZeroCostSwitchExactEquality: the strongest form of the
// Sec 3 claim — on the guarded machine, a thread set from ONE domain
// and the same thread set from FOUR domains execute in *exactly* the
// same number of cycles. Not approximately: exactly.
func TestClaim_ZeroCostSwitchExactEquality(t *testing.T) {
	run := func(domains int) uint64 {
		cfg := machine.MMachine()
		cfg.Clusters = 1
		cfg.SlotsPerCluster = 4
		cfg.PhysBytes = 4 << 20
		k, err := kernel.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		prog := mustAssemble(`
			ldi r3, 300
		loop:
			ld r2, r1, 0
			addi r4, r4, 1
			subi r3, r3, 1
			bnez r3, loop
			halt
		`)
		for i := 0; i < 4; i++ {
			ip, err := k.LoadProgram(prog, false)
			if err != nil {
				t.Fatal(err)
			}
			seg, err := k.AllocSegment(4096)
			if err != nil {
				t.Fatal(err)
			}
			dom := 1
			if domains > 1 {
				dom = i + 1
			}
			if _, err := k.Spawn(dom, ip, map[int]word.Word{1: seg.Word()}); err != nil {
				t.Fatal(err)
			}
		}
		k.Run(10_000_000)
		for _, th := range k.M.Threads() {
			if th.State != machine.Halted {
				t.Fatalf("thread %d: %v %v", th.ID, th.State, th.Fault)
			}
		}
		return k.M.Stats().Cycles
	}
	same := run(1)
	diff := run(4)
	if same != diff {
		t.Errorf("cycles: 1 domain %d, 4 domains %d — switching is not free", same, diff)
	}
}

// TestClaim_RevocationKillsAllCopiesEverywhere: copies of a capability
// in registers, in memory, and on a remote node all die at the moment
// of unmap (Sec 4.3).
func TestClaim_RevocationKillsAllCopiesEverywhere(t *testing.T) {
	cfg := multi.DefaultConfig()
	cfg.Node.PhysBytes = 1 << 20
	s, err := multi.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	victim, err := s.Nodes[0].K.AllocSegment(4096)
	if err != nil {
		t.Fatal(err)
	}
	// Copy held in memory on node 3.
	holder, err := s.Nodes[3].K.AllocSegment(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Nodes[3].K.WriteWords(holder, []word.Word{victim.Word()}); err != nil {
		t.Fatal(err)
	}
	// Thread on node 6 holds a register copy and loops touching it
	// after a startup delay.
	prog := mustAssemble(`
		ldi r3, 50
	delay:
		subi r3, r3, 1
		bnez r3, delay
		ld r2, r1, 0    ; by now the capability is revoked
		halt
	`)
	ip, _ := s.Nodes[6].K.LoadProgram(prog, false)
	th, _ := s.Nodes[6].K.Spawn(1, ip, map[int]word.Word{1: victim.Word()})

	if err := s.Nodes[0].K.Revoke(victim); err != nil {
		t.Fatal(err)
	}
	s.Run(1_000_000)
	if th.State != machine.Faulted {
		t.Errorf("remote register copy survived revocation: %v", th.State)
	}
	// The memory copy on node 3 is still a tagged word but dead.
	w, err := s.Nodes[3].K.ReadWord(holder)
	if err != nil || !w.Tag {
		t.Fatalf("holder word: %v %v", w, err)
	}
	p, err := core.Decode(w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Nodes[0].K.ReadWord(p); err == nil {
		t.Error("memory copy still grants access after revocation")
	}
}

// TestClaim_PointersNeedNoSpecialStorage: a capability survives being
// spilled to memory, passed through the mesh, reloaded and used — no
// capability segments, C-lists or special registers anywhere (Sec 5.3).
func TestClaim_PointersNeedNoSpecialStorage(t *testing.T) {
	k := bootKernel(t)
	data, _ := k.AllocSegment(64)
	k.WriteWords(data, []word.Word{word.FromInt(31415)})
	spill, _ := k.AllocSegment(512)

	prog := mustAssemble(`
		; spill the capability 8 deep, reload, use
		st r2, 0, r1
		ld r3, r2, 0
		st r2, 8, r3
		ld r4, r2, 8
		st r2, 16, r4
		ld r5, r2, 16
		ld r6, r5, 0
		halt
	`)
	ip, _ := k.LoadProgram(prog, false)
	th, _ := k.Spawn(1, ip, map[int]word.Word{1: data.Word(), 2: spill.Word()})
	k.Run(1_000_000)
	if th.State != machine.Halted {
		t.Fatalf("%v %v", th.State, th.Fault)
	}
	if th.Reg(6).Int() != 31415 {
		t.Errorf("capability corrupted by spill chain: r6=%d", th.Reg(6).Int())
	}
}

// TestClaim_FewPrivilegedOperations: "No other operations need be
// privileged" (Sec 2.2) — a complete application (allocation via trap
// service, derivation, protected subsystem call, sharing) runs with
// the kernel involved only in segment allocation; everything else is
// user-mode instructions.
func TestClaim_FewPrivilegedOperations(t *testing.T) {
	k := bootKernel(t)
	served := 0
	k.RegisterService(func(k *kernel.Kernel, th *machine.Thread) error {
		served++
		return nil
	})
	// The app: trap-alloc a segment, restrict it, subseg it, write
	// through the strong pointer, read through the weak one.
	prog := mustAssemble(`
		ldi r1, 1024
		trap 1              ; kernel: alloc (the ONE privileged service)
		ldi r2, 2           ; PermReadOnly
		restrict r3, r1, r2 ; user mode
		ldi r4, 6
		subseg r5, r3, r4   ; user mode
		ldi r6, 888
		st r1, 0, r6        ; user mode
		ld r7, r5, 0        ; user mode through the derived capability
		halt
	`)
	ip, _ := k.LoadProgram(prog, false)
	th, _ := k.Spawn(1, ip, nil)
	k.Run(1_000_000)
	if th.State != machine.Halted {
		t.Fatalf("%v %v", th.State, th.Fault)
	}
	if th.Reg(7).Int() != 888 {
		t.Errorf("r7 = %d", th.Reg(7).Int())
	}
	if got := k.M.Stats().Traps; got != 1 {
		t.Errorf("traps = %d, want exactly 1 (allocation only)", got)
	}
}
