// Benchmarks for the incremental checkpoint pipeline (E28's wall-time
// twin, docs/ROBUSTNESS.md): a full gob image versus a dirty-page delta
// in the durable on-disk encoding, at 1% / 10% / 50% of a dense
// 200-page footprint dirty per capture. `make bench-persist`
// regenerates BENCH_persist.json from these. The acceptance target is
// the delta at 10% dirty beating the full image by >= 5x in both bytes
// (gated deterministically by E28) and ns/op.
package repro

import (
	"bytes"
	"testing"

	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/persist"
	"repro/internal/vm"
	"repro/internal/word"
)

const persistBenchPages = 200

// persistBenchKernel boots a kernel holding persistBenchPages resident
// pages of dense data (every word non-zero, so gob cannot shrink the
// full image by omitting zero fields).
func persistBenchKernel(b *testing.B) (*kernel.Kernel, uint64) {
	b.Helper()
	cfg := machine.MMachine()
	cfg.PhysBytes = 8 << 20
	k, err := kernel.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	seg, err := k.AllocSegment(persistBenchPages * vm.PageSize)
	if err != nil {
		b.Fatal(err)
	}
	base := seg.Addr()
	for p := 0; p < persistBenchPages; p++ {
		for w := 0; w < vm.PageSize/8; w++ {
			off := uint64(p)*vm.PageSize + uint64(w)*8
			if err := k.M.Space.WriteWord(base+off, word.FromInt(int64(off*2654435761+1))); err != nil {
				b.Fatal(err)
			}
		}
	}
	return k, base
}

// dirtyPages touches n distinct pages, salted by round so consecutive
// captures write different values.
func dirtyPages(b *testing.B, k *kernel.Kernel, base uint64, n, round int) {
	b.Helper()
	stride := persistBenchPages / n
	for i := 0; i < n; i++ {
		addr := base + uint64(i*stride)*vm.PageSize
		if err := k.M.Space.WriteWord(addr, word.FromInt(int64(round*persistBenchPages+i+1))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPersist_FullGob(b *testing.B) {
	for _, pct := range []int{1, 10, 50} {
		b.Run(pctName(pct), func(b *testing.B) {
			k, base := persistBenchKernel(b)
			n := persistBenchPages * pct / 100
			var buf bytes.Buffer
			b.ReportAllocs()
			b.ResetTimer()
			var lastLen int
			for i := 0; i < b.N; i++ {
				dirtyPages(b, k, base, n, i)
				cp, err := k.Checkpoint()
				if err != nil {
					b.Fatal(err)
				}
				buf.Reset()
				if err := cp.Encode(&buf); err != nil {
					b.Fatal(err)
				}
				lastLen = buf.Len()
			}
			b.ReportMetric(float64(lastLen), "bytes/image")
		})
	}
}

func BenchmarkPersist_Delta(b *testing.B) {
	for _, pct := range []int{1, 10, 50} {
		b.Run(pctName(pct), func(b *testing.B) {
			k, base := persistBenchKernel(b)
			n := persistBenchPages * pct / 100
			_, st, err := k.CheckpointIncremental(nil) // arm the chain
			if err != nil {
				b.Fatal(err)
			}
			var buf bytes.Buffer
			b.ReportAllocs()
			b.ResetTimer()
			var lastLen int
			for i := 0; i < b.N; i++ {
				dirtyPages(b, k, base, n, i)
				cp, nst, err := k.CheckpointIncremental(st)
				if err != nil {
					b.Fatal(err)
				}
				st = nst
				buf.Reset()
				hdr := persist.Header{Gen: uint64(i) + 2, Parent: uint64(i) + 1, Delta: true}
				if err := persist.Encode(&buf, hdr, cp); err != nil {
					b.Fatal(err)
				}
				lastLen = buf.Len()
			}
			b.ReportMetric(float64(lastLen), "bytes/image")
		})
	}
}

func pctName(pct int) string {
	switch pct {
	case 1:
		return "dirty1pct"
	case 10:
		return "dirty10pct"
	case 50:
		return "dirty50pct"
	}
	return "dirty?"
}
