package repro

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/asm"
	"repro/internal/cache"
	"repro/internal/capverify"
	"repro/internal/faultinject"
	"repro/internal/jit"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/vm"
	"repro/internal/word"
)

// Differential determinism gate for the compiled execution tier
// (`make jit`): every shipped program and every fault-injection
// campaign workload is run through the mmsim harness twice —
// interpreter only, then with the check-eliding superblock translator —
// and the two runs must agree bit for bit: architectural fingerprint,
// machine statistics, cache statistics, TLB statistics. Timing is NOT
// excluded: cycle counts are part of the contract.

// diffProgram is one corpus entry: name plus assembled image.
type diffProgram struct {
	name string
	prog *asm.Program
}

// diffCorpus mirrors the E25/E27 corpus: programs/*.s with usemem.s
// linked against memlib.s (memlib.s itself is a library, not a
// program), plus the campaign workloads.
func diffCorpus(t *testing.T) []diffProgram {
	t.Helper()
	dir := "programs"
	files, err := filepath.Glob(filepath.Join(dir, "*.s"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no programs under %s: %v", dir, err)
	}
	sort.Strings(files)
	var out []diffProgram
	for _, f := range files {
		name := filepath.Base(f)
		if name == "memlib.s" {
			continue
		}
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		var prog *asm.Program
		if name == "usemem.s" {
			lib, err := os.ReadFile(filepath.Join(dir, "memlib.s"))
			if err != nil {
				t.Fatal(err)
			}
			m1, err := asm.AssembleModule("usemem", string(src))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			m2, err := asm.AssembleModule("memlib", string(lib))
			if err != nil {
				t.Fatalf("memlib.s: %v", err)
			}
			prog, err = asm.Link(m1, m2)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		} else {
			prog, err = asm.AssembleNamed(name, string(src))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		out = append(out, diffProgram{name: name, prog: prog})
	}
	workloads := faultinject.WorkloadSources()
	names := make([]string, 0, len(workloads))
	for n := range workloads {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		prog, err := asm.AssembleNamed(n+".s", workloads[n])
		if err != nil {
			t.Fatalf("workload %s: %v", n, err)
		}
		out = append(out, diffProgram{name: "wl:" + n, prog: prog})
	}
	return out
}

// diffOutcome is everything one run must reproduce.
type diffOutcome struct {
	fp       uint64 // architectural fingerprint (faultinject's model)
	stats    machine.Stats
	cache    cache.Stats
	tlb      vm.TLBStats
	space    vm.SpaceStats
	counters jit.Counters // zero for interpreter runs
}

// fingerprintThreads replicates faultinject's architectural FNV-1a
// fingerprint (the function is unexported there): per-thread ID, state,
// instret, IP address and full register file.
func fingerprintThreads(threads []*machine.Thread) uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	for _, t := range threads {
		mix(uint64(t.ID))
		mix(uint64(t.State))
		mix(t.Instret)
		mix(t.IP.Addr())
		for _, r := range t.Regs {
			mix(r.Bits)
			if r.Tag {
				mix(1)
			} else {
				mix(0)
			}
		}
	}
	return h
}

// runDiff boots the mmsim harness (one user thread, 4KB scratch segment
// in r1) and runs prog to the cycle budget.
func runDiff(t *testing.T, prog *asm.Program, useJIT bool) diffOutcome {
	t.Helper()
	const dataBytes = 4096
	k, err := kernel.New(machine.MMachine())
	if err != nil {
		t.Fatal(err)
	}
	if useJIT {
		k.M.EnableJIT(jit.DefaultConfig())
	}
	ip, err := k.LoadProgram(prog, false)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := k.AllocSegment(dataBytes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Spawn(k.NewDomain(), ip, map[int]word.Word{1: seg.Word()}); err != nil {
		t.Fatal(err)
	}
	if useJIT {
		k.M.JITRegister(prog, ip.Addr(), capverify.Config{DataBytes: dataBytes})
	}
	k.Run(5_000_000)
	out := diffOutcome{
		fp:    fingerprintThreads(k.M.Threads()),
		stats: k.M.Stats(),
		cache: k.M.Cache.Stats(),
		tlb:   k.M.Space.TLB.Stats(),
		space: k.M.Space.Stats(),
	}
	if useJIT {
		out.counters = k.M.JIT().Counters
	}
	return out
}

// TestJITDifferentialCorpus: interpreter and translator runs of the
// whole corpus must be indistinguishable.
func TestJITDifferentialCorpus(t *testing.T) {
	anyCompiled := false
	for _, p := range diffCorpus(t) {
		p := p
		t.Run(p.name, func(t *testing.T) {
			interp := runDiff(t, p.prog, false)
			jitted := runDiff(t, p.prog, true)
			if interp.fp != jitted.fp {
				t.Errorf("architectural fingerprint diverges: interp %#x jit %#x", interp.fp, jitted.fp)
			}
			if interp.stats != jitted.stats {
				t.Errorf("machine stats diverge:\ninterp %+v\njit    %+v", interp.stats, jitted.stats)
			}
			if !reflect.DeepEqual(interp.cache, jitted.cache) {
				t.Errorf("cache stats diverge:\ninterp %+v\njit    %+v", interp.cache, jitted.cache)
			}
			if interp.tlb != jitted.tlb {
				t.Errorf("TLB stats diverge:\ninterp %+v\njit    %+v", interp.tlb, jitted.tlb)
			}
			if interp.space != jitted.space {
				t.Errorf("space stats diverge:\ninterp %+v\njit    %+v", interp.space, jitted.space)
			}
			if jitted.counters.Compiled > 0 {
				anyCompiled = true
			}
		})
	}
	if !anyCompiled {
		t.Error("no corpus program compiled a single block; the differential gate is vacuous")
	}
}
