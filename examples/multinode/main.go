// Multinode: the full M-Machine multicomputer (Sec 3).
//
// Eight MAP nodes on a 2×2×2 mesh run a distributed reduction over one
// global address space: node 0 owns a large table; every node's worker
// thread receives a read-only capability to its own slice (capability
// distribution = storing eight words), sums it — remote loads travel
// the mesh — and deposits the partial sum in a result segment on node
// 0. No inter-node protection state, no message-passing protocol for
// rights, no kernel on the critical path.
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/multi"
	"repro/internal/word"
)

const workerSrc = `
	; r1 = read-only slice capability (64 words), r2 = result slot (r/w)
	ldi r5, 64
	ldi r6, 0
loop:
	ld   r7, r1, 0
	add  r6, r6, r7
	subi r5, r5, 1
	beqz r5, done
	leai r1, r1, 8
	br   loop
done:
	st   r2, 0, r6
	halt
`

func main() {
	cfg := multi.DefaultConfig()
	cfg.Node.PhysBytes = 1 << 20
	s, err := multi.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("booted %d MAP nodes on a 2x2x2 mesh, one shared 54-bit address space\n", len(s.Nodes))

	// Node 0: the global table (8 slices × 64 words) and result array.
	table, err := s.Nodes[0].K.AllocSegment(8 * 64 * 8)
	if err != nil {
		log.Fatal(err)
	}
	var want int64
	words := make([]word.Word, 8*64)
	for i := range words {
		words[i] = word.FromInt(int64(i))
		want += int64(i)
	}
	if err := s.Nodes[0].K.WriteWords(table, words); err != nil {
		log.Fatal(err)
	}
	results, err := s.Nodes[0].K.AllocSegment(64)
	if err != nil {
		log.Fatal(err)
	}

	// Each node gets: a read-only SUBSEG slice of the table + a
	// one-word window into the result segment. Rights distribution is
	// pure pointer algebra.
	prog := mustAssemble(workerSrc)
	var threads []*machine.Thread
	for nid, n := range s.Nodes {
		sliceStart, err := core.LEA(table, int64(nid*64*8))
		if err != nil {
			log.Fatal(err)
		}
		slice, err := core.SubSeg(sliceStart, 9) // 512B = 64 words
		if err != nil {
			log.Fatal(err)
		}
		sliceRO, err := core.Restrict(slice, core.PermReadOnly)
		if err != nil {
			log.Fatal(err)
		}
		slotPtr, err := core.LEA(results, int64(nid*8))
		if err != nil {
			log.Fatal(err)
		}
		slot, err := core.SubSeg(slotPtr, 3) // exactly one word
		if err != nil {
			log.Fatal(err)
		}
		ip, err := n.K.LoadProgram(prog, false)
		if err != nil {
			log.Fatal(err)
		}
		th, err := n.K.Spawn(nid+1, ip, map[int]word.Word{
			1: sliceRO.Word(),
			2: slot.Word(),
		})
		if err != nil {
			log.Fatal(err)
		}
		threads = append(threads, th)
	}

	cycles := s.Run(20_000_000)
	var got int64
	for nid, th := range threads {
		if th.State != machine.Halted {
			log.Fatalf("node %d worker: %v %v", nid, th.State, th.Fault)
		}
		w, err := s.Nodes[0].K.M.Space.ReadWord(results.Base() + uint64(nid*8))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  node %d (hops to home: %d): partial sum %6d\n",
			nid, s.Net.Hops(nid, 0), w.Int())
		got += w.Int()
	}
	if got != want {
		log.Fatalf("reduction = %d, want %d", got, want)
	}

	ns := s.Net.Stats()
	ms := s.Stats()
	fmt.Printf("\nreduction correct: %d (expected %d) in %d cycles\n", got, want, cycles)
	fmt.Printf("mesh traffic: %d messages, %d hops, %d link-contention cycles\n",
		ns.Messages, ns.TotalHops, ns.ContentionCycles)
	fmt.Printf("remote reads %d / writes %d; inter-node protection state: 0 bytes —\n",
		ms.RemoteReads, ms.RemoteWrites)
	fmt.Println("each worker's rights came from LEA+SUBSEG+RESTRICT on one capability (Sec 2.2/Sec 3)")

	// Prove the slices really are confined: node 7's worker slice
	// cannot reach its neighbour's words.
	slice7, _ := core.LEA(table, int64(7*64*8))
	s7, _ := core.SubSeg(slice7, 9)
	if _, err := core.LEA(s7, -8); err != nil {
		fmt.Printf("\nconfinement check: stepping slice 7 backwards → %v\n", err)
	}
}

// mustAssemble wraps asm.Assemble for the example's fixed, known-good
// sources; a failure here is a bug in the example itself.
func mustAssemble(src string) *asm.Program {
	p, err := asm.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	return p
}
