// Filesystem: an unprivileged protected subsystem (Figs. 3 & 4).
//
// The paper's motivating OS example (Sec 2.3): a file-system manager
// whose tables live in segments reachable *only* from inside its code
// segment. Clients hold nothing but an enter pointer; they call
// read/write "methods" through it, and the file table is physically
// unreachable from any client capability. A malicious client is run to
// prove it.
//
// The file system keeps an 8-file table (one word per file) in a
// private segment; its entry point dispatches on a method selector:
//
//	r2 = 0: read  file r3      → r4
//	r2 = 1: write file r3 = r4
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/word"
)

const fsSource = `
entry:
	movip r10
	leab  r10, r10, r0     ; code segment base
	ld    r11, r10, =table ; the private file-table capability (Fig. 3C)
	shli  r12, r3, 3       ; byte offset of file r3
	lea   r12, r11, r12    ; pointer to the slot (bounds-checked!)
	bnez  r2, write
	ld    r4, r12, 0       ; read
	br    out
write:
	st    r12, 0, r4
out:
	ldi   r10, 0           ; scrub private capabilities (Fig. 3D)
	ldi   r11, 0
	ldi   r12, 0
	jmp   r14
table:
	.word 0                ; patched with the file-table pointer
`

func main() {
	k, err := kernel.New(machine.MMachine())
	if err != nil {
		log.Fatal(err)
	}

	// The file table: 8 words, private to the subsystem.
	table, err := k.AllocSegment(64)
	if err != nil {
		log.Fatal(err)
	}
	enter, err := k.InstallSubsystem(mustAssemble(fsSource), "entry",
		map[string]core.Pointer{"table": table})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("file system installed behind enter pointer %v\n", enter)
	fmt.Println("clients hold ONLY this enter pointer — no data capability, no kernel service")

	// --- An honest client: write then read three files. --------------
	client := mustAssemble(`
		; r1 = fs enter pointer
		ldi  r2, 1        ; method: write
		ldi  r3, 2        ; file 2
		ldi  r4, 222
		jmpl r14, r1
		ldi  r3, 5
		ldi  r4, 555
		jmpl r14, r1
		ldi  r2, 0        ; method: read
		ldi  r3, 2
		jmpl r14, r1
		mov  r6, r4       ; r6 = file 2 contents
		ldi  r3, 5
		jmpl r14, r1
		mov  r7, r4       ; r7 = file 5 contents
		halt
	`)
	ip, err := k.LoadProgram(client, false)
	if err != nil {
		log.Fatal(err)
	}
	th, err := k.Spawn(k.NewDomain(), ip, map[int]word.Word{1: enter.Word()})
	if err != nil {
		log.Fatal(err)
	}
	k.Run(1_000_000)
	if th.State != machine.Halted {
		log.Fatalf("client: %v %v", th.State, th.Fault)
	}
	fmt.Printf("\nhonest client: wrote files 2 and 5, read back %d and %d\n",
		th.Reg(6).Int(), th.Reg(7).Int())

	// --- A malicious client tries three attacks. ---------------------
	attacks := []struct {
		name string
		src  string
	}{
		{"read the subsystem's code segment through the enter pointer",
			"ld r9, r1, 0\nhalt"},
		{"jump past the entry point (offset into the segment)",
			"leai r9, r1, 16\njmp r9\nhalt"},
		{"ask the subsystem to index file 9 (out of the 8-word table)",
			"ldi r2, 0\nldi r3, 9\njmpl r14, r1\nhalt"},
	}
	fmt.Println("\nmalicious client:")
	for _, a := range attacks {
		ip, err := k.LoadProgram(mustAssemble(a.src), false)
		if err != nil {
			log.Fatal(err)
		}
		th, err := k.Spawn(k.NewDomain(), ip, map[int]word.Word{1: enter.Word()})
		if err != nil {
			log.Fatal(err)
		}
		k.Run(1_000_000)
		fmt.Printf("  %-62s → %v", a.name, th.State)
		if th.Fault != nil {
			fmt.Printf(" (%v)", th.Fault)
		}
		fmt.Println()
		k.M.RemoveThread(th)
	}
	fmt.Println("\nevery attack faults before any access issues: the enter pointer admits exactly one entry,")
	fmt.Println("and the table capability — even when the subsystem indexes it on the attacker's behalf —")
	fmt.Println("bounds-checks in hardware (Sec 2.3)")
}

// mustAssemble wraps asm.Assemble for the example's fixed, known-good
// sources; a failure here is a bug in the example itself.
func mustAssemble(src string) *asm.Program {
	p, err := asm.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	return p
}
