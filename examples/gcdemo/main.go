// GCdemo: address-space maintenance in a capability system (Sec 4.3).
//
// Guarded pointers have no protected indirection, so the system
// software must handle three maintenance problems itself. This example
// runs all three on a live heap:
//
//  1. revocation by unmapping — every copy of a capability dies at
//     once, at page granularity;
//  2. revocation by sweeping — exact at any granularity, but the cost
//     is a scan of the whole reachable heap;
//  3. garbage collection of virtual address space — live segments are
//     found by chasing tag bits from the roots.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/word"
	"repro/internal/workload"
)

func main() {
	cfg := machine.MMachine()
	cfg.PhysBytes = 32 << 20
	k, err := kernel.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rng := workload.NewRNG(2026)

	// Build a heap: 200 segments; segment i sometimes holds pointers
	// to segment j.
	segs := make([]core.Pointer, 200)
	for i := range segs {
		p, err := k.AllocSegment(4096)
		if err != nil {
			log.Fatal(err)
		}
		segs[i] = p
	}
	planted := 0
	for i := range segs {
		for w := 0; w < 8; w++ {
			if rng.Intn(4) == 0 {
				target := segs[rng.Intn(len(segs))]
				if err := k.M.Space.WriteWord(segs[i].Base()+uint64(w*8), target.Word()); err != nil {
					log.Fatal(err)
				}
				planted++
			}
		}
	}
	fmt.Printf("heap: %d segments of 4KB, %d capability copies scattered through it\n\n", len(segs), planted)

	// --- 1. Revocation by unmap --------------------------------------
	victim := segs[7]
	if err := k.Revoke(victim); err != nil {
		log.Fatal(err)
	}
	if _, err := k.ReadWord(victim); err != nil {
		fmt.Printf("1. unmap-revoked segment 7: every stale capability now faults (%v)\n", err)
	}
	// The copies still exist as tagged words — they are just dead.
	w, _ := k.ReadWord(firstCopyHolder(k, segs, victim))
	fmt.Printf("   a stored copy survives as a tagged word (%v) but names unmapped pages\n\n", w.Tag)

	// --- 2. Revocation by sweep --------------------------------------
	victim2 := segs[13]
	st, err := k.SweepRevoke(victim2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2. sweep-revoked segment 13: scanned %d segments / %d words, destroyed %d copies\n",
		st.SegmentsScanned, st.WordsScanned, st.PointersRewritten)
	fmt.Printf("   (the paper's \"expensive operation\": cost scales with the whole heap)\n\n")

	// --- 3. Address-space GC -----------------------------------------
	// Roots: segments 0..9 only. Everything unreachable from them is
	// reclaimed.
	var roots []word.Word
	for i := 0; i < 10; i++ {
		roots = append(roots, segs[i].Word())
	}
	before := k.Segments()
	gc, err := k.CollectAddressSpace(roots)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3. GC from 10 roots: %d segments before, %d live, %d freed, %d words scanned\n",
		before, gc.LiveSegments, gc.FreedSegments, gc.WordsScanned)
	fmt.Println("   pointers are self-identifying via the tag bit — no type maps, no conservative scan")

	// Freed address space is immediately reusable.
	p, err := k.AllocSegment(1 << 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreclaimed space reused: allocated a fresh 1MB segment %v\n", p)
}

// firstCopyHolder finds an address holding a capability into victim.
func firstCopyHolder(k *kernel.Kernel, segs []core.Pointer, victim core.Pointer) core.Pointer {
	for _, s := range segs {
		if s.Base() == victim.Base() {
			continue
		}
		for w := uint64(0); w < 8; w++ {
			addr := s.Base() + w*8
			ww, err := k.M.Space.ReadWord(addr)
			if err != nil {
				continue
			}
			if p, err := core.Decode(ww); err == nil && victim.Contains(p.Addr()) {
				slot, _ := core.LEAB(s, int64(w*8))
				return slot
			}
		}
	}
	return segs[0]
}
