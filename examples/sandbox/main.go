// Sandbox: guarded pointers vs software fault isolation (Sec 5.4).
//
// The same computation — a bounds-sensitive table walk — run three
// ways on the simulator:
//
//  1. guarded pointers: the hardware checks ride inside the pointer,
//     zero extra instructions;
//  2. SFI sandboxing: two inserted check instructions before every
//     memory reference (Wahbe et al.'s mask-and-rebase), paid whether
//     or not anything ever goes wrong;
//  3. an out-of-bounds probe under each regime, showing *when* the two
//     schemes catch the violation.
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/word"
)

const nativeSrc = `
	ldi  r3, 1024
	ldi  r4, 0
loop:
	ld   r5, r1, 0
	add  r4, r4, r5
	leai r1, r1, 8
	subi r3, r3, 1
	bnez r3, loop
	halt
`

// The SFI variant inserts the classic two-instruction sandbox sequence
// (mask the address into the fault domain, OR in the domain base)
// before each reference. r7/r8 stand in for the reserved sandbox
// registers Wahbe's scheme must pin.
const sfiSrc = `
	ldi  r3, 1024
	ldi  r4, 0
loop:
	and  r6, r7, r7
	or   r6, r6, r8
	ld   r5, r1, 0
	add  r4, r4, r5
	leai r1, r1, 8
	subi r3, r3, 1
	bnez r3, loop
	halt
`

func main() {
	nc, ni := run(nativeSrc)
	sc, si := run(sfiSrc)

	fmt.Println("1024-element table walk, identical data and machine:")
	fmt.Printf("%-34s %12s %10s %10s\n", "variant", "instructions", "cycles", "overhead")
	fmt.Printf("%-34s %12d %10d %10s\n", "guarded pointers", ni, nc, "1.00x")
	fmt.Printf("%-34s %12d %10d %9.2fx\n", "SFI (2 checks per reference)", si, sc,
		float64(sc)/float64(nc))

	// Where violations are caught.
	fmt.Println("\nout-of-bounds probe (walk runs one element past the segment):")
	k, err := kernel.New(smallConfig())
	if err != nil {
		log.Fatal(err)
	}
	overrun := mustAssemble(`
		ldi  r3, 9           ; segment holds 8 words
	loop:
		ld   r5, r1, 0
		leai r1, r1, 8
		subi r3, r3, 1
		bnez r3, loop
		halt
	`)
	ip, err := k.LoadProgram(overrun, false)
	if err != nil {
		log.Fatal(err)
	}
	seg, err := k.AllocSegment(64)
	if err != nil {
		log.Fatal(err)
	}
	th, err := k.Spawn(1, ip, map[int]word.Word{1: seg.Word()})
	if err != nil {
		log.Fatal(err)
	}
	k.Run(1_000_000)
	fmt.Printf("  guarded pointers: %v after %d instructions — %v\n", th.State, th.Instret, th.Fault)
	fmt.Println("  SFI: the masked address silently wraps inside the fault domain; the bug reads the")
	fmt.Println("  wrong word instead of faulting (sandboxing isolates domains, it does not bound objects)")
	fmt.Println("\nand SFI's guarantee holds only for code its rewriter produced; hand-written code")
	fmt.Println("bypasses it entirely, while the tag bit binds every instruction on the machine (Sec 5.4)")

	// Demonstrate the fine-grained alternative guarded pointers offer:
	// a 1-byte... (word-granularity here) capability for a single slot.
	slot, err := core.SubSeg(seg, 3) // one 8-byte word
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbonus: SUBSEG narrows a capability to a single word: %v\n", slot)
}

func smallConfig() machine.Config {
	cfg := machine.MMachine()
	cfg.Clusters = 1
	cfg.SlotsPerCluster = 1
	return cfg
}

func run(src string) (cycles, instr uint64) {
	k, err := kernel.New(smallConfig())
	if err != nil {
		log.Fatal(err)
	}
	ip, err := k.LoadProgram(mustAssemble(src), false)
	if err != nil {
		log.Fatal(err)
	}
	seg, err := k.AllocSegment(16384)
	if err != nil {
		log.Fatal(err)
	}
	th, err := k.Spawn(1, ip, map[int]word.Word{
		1: seg.Word(),
		7: word.FromUint(0xffff),
		8: word.FromUint(0x1000),
	})
	if err != nil {
		log.Fatal(err)
	}
	k.Run(10_000_000)
	if th.State != machine.Halted {
		log.Fatalf("%v: %v", th.State, th.Fault)
	}
	return k.M.Stats().Cycles, k.M.Stats().Instructions
}

// mustAssemble wraps asm.Assemble for the example's fixed, known-good
// sources; a failure here is a bug in the example itself.
func mustAssemble(src string) *asm.Program {
	p, err := asm.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	return p
}
