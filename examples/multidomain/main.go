// Multidomain: 16 threads from 4 mutually non-trusting protection
// domains interleaved cycle-by-cycle (Sec 3).
//
// This is the scenario the M-Machine was built for: the hardware picks
// a thread per cluster per cycle with zero switch cost, because no
// per-domain translation or protection state exists. All four domains
// share one read-only data segment (in-cache sharing, impossible with
// ASID-tagged caches) while each keeps a private scratch segment the
// others cannot name.
//
// The run is repeated under the flush-based cost models to show what
// conventional paging would pay on the identical thread set.
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/word"
)

// Each thread sums the shared table and accumulates into its private
// segment.
const workerSrc = `
	; r1 = shared read-only table (64 words), r2 = private scratch
	ldi  r5, 40          ; outer repetitions
outer:
	ldi  r3, 64          ; table length
	ldi  r4, 0           ; sum
	mov  r6, r1
inner:
	ld   r7, r6, 0
	add  r4, r4, r7
	subi r3, r3, 1
	beqz r3, innerdone       ; do not step past the last element —
	leai r6, r6, 8           ; the hardware bounds check would fault
	br   inner
innerdone:
	ld   r8, r2, 0
	add  r8, r8, r4
	st   r2, 0, r8       ; private accumulator
	subi r5, r5, 1
	bnez r5, outer
	halt
`

func main() {
	fmt.Println("16 threads / 4 domains / 4 clusters, shared read-only table + private scratch per thread")
	fmt.Println()
	fmt.Printf("%-18s %10s %8s %8s %10s %12s\n",
		"scheme", "cycles", "ipc", "stalls", "tlb-flush", "domain-swaps")
	for _, scheme := range []machine.Scheme{
		machine.SchemeGuarded, machine.SchemeFlushTLB, machine.SchemeFlushAll,
	} {
		st, flushes, sums := run(scheme)
		fmt.Printf("%-18s %10d %8.2f %8d %10d %12d\n",
			scheme, st.Cycles,
			float64(st.Instructions)/float64(st.Cycles),
			st.StallCycles, flushes, st.DomainSwaps)
		for i, s := range sums {
			if s != sums[0] {
				log.Fatalf("thread %d computed %d, want %d", i, s, sums[0])
			}
		}
	}
	fmt.Println("\nall 16 threads computed identical sums; under guarded pointers the interleave is free")
	fmt.Println("(zero stalls, zero flushes) even though every adjacent issue slot crosses domains")
}

func run(scheme machine.Scheme) (machine.Stats, uint64, []int64) {
	cfg := machine.MMachine() // 4 clusters × 4 threads
	cfg.Scheme = scheme
	k, err := kernel.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Shared table: 64 words of data, distributed read-only.
	shared, err := k.AllocSegment(512)
	if err != nil {
		log.Fatal(err)
	}
	words := make([]word.Word, 64)
	for i := range words {
		words[i] = word.FromInt(int64(i))
	}
	if err := k.WriteWords(shared, words); err != nil {
		log.Fatal(err)
	}
	sharedRO, err := core.Restrict(shared, core.PermReadOnly)
	if err != nil {
		log.Fatal(err)
	}

	prog := mustAssemble(workerSrc)
	var threads []*machine.Thread
	for i := 0; i < 16; i++ {
		ip, err := k.LoadProgram(prog, false)
		if err != nil {
			log.Fatal(err)
		}
		private, err := k.AllocSegment(64)
		if err != nil {
			log.Fatal(err)
		}
		th, err := k.Spawn(i%4+1, ip, map[int]word.Word{
			1: sharedRO.Word(),
			2: private.Word(),
		})
		if err != nil {
			log.Fatal(err)
		}
		threads = append(threads, th)
	}

	k.Run(50_000_000)
	var sums []int64
	for _, th := range threads {
		if th.State != machine.Halted {
			log.Fatalf("thread %d: %v %v", th.ID, th.State, th.Fault)
		}
		w, err := k.M.Space.ReadWord(mustPtr(th.Reg(2)).Addr())
		if err != nil {
			log.Fatal(err)
		}
		sums = append(sums, w.Int())
	}
	return k.M.Stats(), k.M.Space.TLB.Stats().Flushes, sums
}

func mustPtr(w word.Word) core.Pointer {
	p, err := core.Decode(w)
	if err != nil {
		log.Fatal(err)
	}
	return p
}

// mustAssemble wraps asm.Assemble for the example's fixed, known-good
// sources; a failure here is a bug in the example itself.
func mustAssemble(src string) *asm.Program {
	p, err := asm.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	return p
}
