// OSkernel: the kernel features stacked together — processes software-
// scheduled over the hardware thread slots, lazy segments materialized
// by the demand pager, and per-process teardown that scrubs every
// capability the process ever held.
//
// 24 processes (on a machine with 16 hardware threads) each build a
// table in a lazy segment larger than its share of physical memory,
// verify it, and exit. The pager swaps under them; the scheduler
// recycles slots; the kernel reclaims everything.
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/vm"
	"repro/internal/word"
)

const worker = `
	; r1 = lazy 8-page segment. Fill page firsts with a counter,
	; re-walk and verify, flagging r5=1 on success.
	ldi  r2, 8
	mov  r3, r1
	ldi  r4, 100
fill:
	st   r3, 0, r4
	addi r4, r4, 1
	subi r2, r2, 1
	beqz r2, verify
	leai r3, r3, 4096
	br   fill
verify:
	ldi  r2, 8
	mov  r3, r1
	ldi  r4, 100
	ldi  r5, 1
vloop:
	ld   r6, r3, 0
	seq  r7, r6, r4
	and  r5, r5, r7
	addi r4, r4, 1
	subi r2, r2, 1
	beqz r2, done
	leai r3, r3, 4096
	br   vloop
done:
	halt
`

func main() {
	cfg := machine.MMachine() // 16 hardware threads
	cfg.PhysBytes = 96 * vm.PageSize
	k, err := kernel.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	k.EnableDemandPaging(4)
	k.SetPagingCosts(50, 2000)

	prog := mustAssemble(worker)
	const nProcs = 24
	var procs []*kernel.Process
	for i := 0; i < nProcs; i++ {
		p := k.NewProcess()
		ip, err := p.LoadProgram(prog)
		if err != nil {
			log.Fatal(err)
		}
		seg, err := p.AllocSegmentLazy(8 * vm.PageSize)
		if err != nil {
			log.Fatal(err)
		}
		if err := p.Start(ip, map[int]word.Word{1: seg.Word()}); err != nil {
			log.Fatal(err)
		}
		procs = append(procs, p)
	}
	pend := 0
	for _, p := range procs {
		pend += p.Pending()
	}
	fmt.Printf("launched %d processes on 16 hardware threads (%d queued); phys = 96 pages, demand = %d pages\n",
		nProcs, pend, nProcs*8)

	cycles := k.RunScheduled(50_000_000)

	ok := 0
	var instret uint64
	for _, p := range procs {
		if p.Live() != 0 || p.Pending() != 0 {
			log.Fatalf("process %d incomplete", p.ID)
		}
		instret += p.Instret
		ok++
		if err := p.Exit(); err != nil {
			log.Fatal(err)
		}
	}
	st := k.PagingStatsSnapshot()
	fmt.Printf("all %d processes completed and exited in %d cycles (%d instructions)\n", ok, cycles, instret)
	fmt.Printf("pager: %d demand-zero fills, %d swap-outs, %d swap-ins (backing store at work)\n",
		st.DemandZero, st.SwapOuts, st.SwapIns)
	fmt.Printf("after teardown: %d segments live, %d resident frames (worker state fully reclaimed)\n",
		k.Segments(), k.ResidentFrames())
	fmt.Println("\nno page tables were swapped, no TLBs flushed, no protection state moved at any point:")
	fmt.Println("scheduling, paging and teardown are pure bookkeeping in a guarded-pointer system")
}

// mustAssemble wraps asm.Assemble for the example's fixed, known-good
// sources; a failure here is a bug in the example itself.
func mustAssemble(src string) *asm.Program {
	p, err := asm.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	return p
}
