// Quickstart: the guarded-pointer essentials in one run.
//
// Boots the simulated M-Machine, allocates segments, derives and
// restricts pointers in user code, takes a bounds fault, and shows the
// anti-forgery tag rules — each step printed with the paper section it
// demonstrates.
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/word"
)

func main() {
	k, err := kernel.New(machine.MMachine())
	if err != nil {
		log.Fatal(err)
	}

	// --- 1. Segments and pointers (Sec 2, Fig. 1) --------------------
	seg, err := k.AllocSegment(1024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("allocated segment: %v (power-of-two sized, aligned on its length)\n", seg)

	// --- 2. User-level derivation (Sec 2.2, Fig. 2) ------------------
	elem, err := core.LEA(seg, 16)
	if err != nil {
		log.Fatal(err)
	}
	ro, err := core.Restrict(elem, core.PermReadOnly)
	if err != nil {
		log.Fatal(err)
	}
	sub, err := core.SubSeg(seg, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LEA +16      → %v\n", elem)
	fmt.Printf("RESTRICT ro  → %v (grant a weaker capability, no kernel involved)\n", ro)
	fmt.Printf("SUBSEG 2^6   → %v (narrow to a 64-byte sub-segment)\n", sub)

	// Amplification is architecturally impossible in user mode.
	if _, err := core.Restrict(ro, core.PermReadWrite); err != nil {
		fmt.Printf("RESTRICT ro→rw rejected: %v\n", err)
	}
	if _, err := core.LEA(seg, 4096); err != nil {
		fmt.Printf("LEA past segment rejected: %v\n", err)
	}

	// --- 3. Real code using the pointers (Sec 2.2) -------------------
	prog := mustAssemble(`
		; r1 = r/w segment pointer (argument)
		ldi  r2, 7
		st   r1, 0, r2        ; a[0] = 7
		ld   r3, r1, 0        ; r3 = a[0]
		mul  r3, r3, r3       ; r3 = 49
		st   r1, 8, r3        ; a[1] = 49
		leai r4, r1, 8        ; derive pointer to a[1]
		ld   r5, r4, 0
		halt
	`)
	ip, err := k.LoadProgram(prog, false)
	if err != nil {
		log.Fatal(err)
	}
	th, err := k.Spawn(k.NewDomain(), ip, map[int]word.Word{1: seg.Word()})
	if err != nil {
		log.Fatal(err)
	}
	k.Run(100000)
	fmt.Printf("\nprogram ran: state=%v r5=%d (expected 49), %d instructions\n",
		th.State, th.Reg(5).Int(), th.Instret)

	// --- 4. Protection violations fault before issue (Sec 2.2) -------
	spy, _ := k.LoadProgram(mustAssemble(`
		st r1, 0, r1   ; store through a read-only pointer
		halt
	`), false)
	roPtr, _ := core.Restrict(seg, core.PermReadOnly)
	spyTh, _ := k.Spawn(k.NewDomain(), spy, map[int]word.Word{1: roPtr.Word()})
	k.Run(100000)
	fmt.Printf("store via read-only pointer: state=%v fault=%v\n", spyTh.State, spyTh.Fault)

	// --- 5. The tag bit is unforgeable (Sec 2) -----------------------
	forger, _ := k.LoadProgram(mustAssemble(`
		add r2, r1, r0  ; integer arithmetic clears the tag
		ld  r3, r2, 0   ; using the integer as an address tag-faults
		halt
	`), false)
	fTh, _ := k.Spawn(k.NewDomain(), forger, map[int]word.Word{1: seg.Word()})
	k.Run(100000)
	fmt.Printf("dereferencing a de-tagged pointer: state=%v fault=%v\n", fTh.State, fTh.Fault)

	st := k.M.Stats()
	fmt.Printf("\nmachine totals: %d cycles, %d instructions, %d faults (both intentional)\n",
		st.Cycles, st.Instructions, st.Faults)
}

// mustAssemble wraps asm.Assemble for the example's fixed, known-good
// sources; a failure here is a bug in the example itself.
func mustAssemble(src string) *asm.Program {
	p, err := asm.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	return p
}
