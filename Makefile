# Developer entry points. `make check` is the tier-1 gate: formatting,
# vet, the full test suite, and a race-detector pass over the telemetry
# layer (the only package with lock-free fast paths).

GO ?= go

.PHONY: check fmt vet test race build bench bench-json

check: fmt vet test race

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/telemetry/

bench:
	$(GO) test -bench=. -benchmem .

# Regenerate the telemetry benchmark artifact (see docs/OBSERVABILITY.md).
bench-json:
	$(GO) run ./cmd/experiments -run E22 -json BENCH_telemetry.json > /dev/null
