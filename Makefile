# Developer entry points. `make check` is the tier-1 gate: formatting,
# vet, the full test suite, and a race-detector pass over every package
# with concurrency: the telemetry layer's lock-free fast paths, the
# parallel multicomputer scheduler's determinism tests, the experiment
# worker pool, and the fault-injection campaign pool.

GO ?= go

.PHONY: check fmt vet test race build bench bench-all bench-json bench-persist bench-migrate audit fuzz-short lint verify obsv jit flow persist migrate

check: fmt vet lint test race

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Repository hygiene gate (cmd/repolint, pure go/ast): no panics or
# fmt.Print* in internal/* non-test code; no math/rand or global time
# sources in the deterministic simulation packages. See docs/VERIFIER.md.
lint:
	$(GO) run ./cmd/repolint .

# Static capability-safety verification of every shipped program and
# campaign workload (cmd/mmlint over internal/capverify). Fails on any
# provable guarded-pointer fault. See docs/VERIFIER.md.
verify:
	@set -e; for f in programs/*.s; do \
		case "$$f" in \
		programs/memlib.s) ;; \
		programs/usemem.s) $(GO) run ./cmd/mmlint $$f programs/memlib.s ;; \
		*) $(GO) run ./cmd/mmlint $$f ;; \
		esac; \
	done

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/telemetry/
	$(GO) test -race -run 'TestParallelRun|TestDeferredRemote|TestWatchdog' ./internal/multi/ ./internal/machine/
	$(GO) test -race -run 'TestParallelRender' ./internal/experiments/
	$(GO) test -race -run 'TestCampaignDeterministic|TestTolerantCampaignDeterministic' ./internal/faultinject/
	$(GO) test -race -run 'TestJITDifferentialCorpus' .
	$(GO) test -race -run 'TestJITMatchesInterpreterAcrossSchedulers' ./internal/multi/

# Compiled-tier differential gate (docs/PERFORMANCE.md): the E27
# interp-vs-translator census, the root determinism corpus, the SMC and
# stats invariants in internal/machine, scheduler invariance on the
# mesh, the verifier's per-site table contract, and the mmsim CLI
# byte-identity / -verify refusal tests.
jit:
	$(GO) run ./cmd/experiments -run E27
	$(GO) test -run 'TestJITDifferentialCorpus' .
	$(GO) test -run 'TestJIT' ./internal/machine/ ./internal/multi/ ./cmd/mmsim/
	$(GO) test -run 'TestSite' ./internal/capverify/

# Capability-flow gate: the E30 flow-vs-register-only differential with
# its 90% discharge and zero-leak gates, the crafted store/reload/alias
# and confinement differential suite, the store-lattice and
# threshold-widening property tests, and the mmlint -stats/leak surface.
flow:
	$(GO) run ./cmd/experiments -run E30
	$(GO) test -run 'TestFlow|TestConfinement|TestStore|TestJoinMem|TestThreshold' ./internal/capverify/
	$(GO) test ./cmd/mmlint/

# Full protection audit: the E23 fault-injection campaign (>=10k seeded
# injections across every fault class plus the checkpoint-recovery
# trial) followed by the E24 tolerance campaign (same fault mix with the
# self-healing stack enabled). Fails if any injection escapes, any
# detected fault goes unrecovered, or recovery diverges. See
# docs/ROBUSTNESS.md.
audit:
	$(GO) run ./cmd/experiments -run E23
	$(GO) run ./cmd/experiments -run E24

# Short fuzzing pass over the hostile-input surfaces: instruction
# decode, guarded-pointer derivation, the assembler, and the NoC
# transport header/sequence machinery. Each target also replays its
# committed seed corpus under `make test`.
FUZZTIME ?= 10s
fuzz-short:
	$(GO) test -run '^$$' -fuzz FuzzDecode -fuzztime $(FUZZTIME) ./internal/isa/
	$(GO) test -run '^$$' -fuzz FuzzPointerOps -fuzztime $(FUZZTIME) ./internal/core/
	$(GO) test -run '^$$' -fuzz FuzzAsm -fuzztime $(FUZZTIME) ./internal/asm/
	$(GO) test -run '^$$' -fuzz FuzzTransport -fuzztime $(FUZZTIME) ./internal/noc/
	$(GO) test -run '^$$' -fuzz FuzzVerify -fuzztime $(FUZZTIME) ./internal/capverify/
	$(GO) test -run '^$$' -fuzz FuzzCheckpointDecode -fuzztime $(FUZZTIME) ./internal/persist/
	$(GO) test -run '^$$' -fuzz FuzzMigrateFrame -fuzztime $(FUZZTIME) ./internal/migrate/

# Durable-checkpoint gate (docs/ROBUSTNESS.md): the E28 chain
# differential + persistence-fault campaign + capture-cost gates, the
# on-disk format and store unit tests, the dirty-bit lifecycle and
# delta-capture tests, the multicomputer's disk-backed checkpoint ring,
# and the mmsim -checkpoint-dir/-restore CLI flow.
persist:
	$(GO) run ./cmd/experiments -run E28
	$(GO) test ./internal/persist/
	$(GO) test -run 'TestDirty|TestIncremental|TestCapture' ./internal/vm/ ./internal/kernel/
	$(GO) test -run 'TestPersist' ./internal/multi/ ./internal/faultinject/
	$(GO) test -run 'TestCheckpointThenRestore|TestRestore|TestPersistMetrics' ./cmd/mmsim/

# Live-migration gate (docs/ROBUSTNESS.md): the E29 differential +
# dirty-rate sweep + migration fault campaign, the wire protocol and
# pre-copy unit tests, abort-invariance on the mesh (serial and
# parallel schedulers), the migration fault classes in the campaign
# harness, the Prune retention property, and the mmsim
# -migrate-at/-migrate-to/-checkpoint-ls CLI flow.
migrate:
	$(GO) run ./cmd/experiments -run E29
	$(GO) test ./internal/migrate/
	$(GO) test -run 'TestMigrate' ./internal/multi/ ./internal/faultinject/ ./cmd/mmsim/
	$(GO) test -run 'TestStorePruneProperty' ./internal/persist/
	$(GO) test -run 'TestCheckpointLs' ./cmd/mmsim/

# Regenerate BENCH_persist.json: full gob image vs dirty-page delta at
# 1%/10%/50% dirty (see docs/ROBUSTNESS.md; byte ratios are gated
# deterministically by E28).
bench-persist:
	$(GO) test -run '^$$' -bench 'BenchmarkPersist' -benchmem . \
		| $(GO) run ./cmd/benchjson -o BENCH_persist.json

# Regenerate BENCH_migrate.json: end-to-end pre-copy migration at
# 1%/10%/50% dirty per round plus the wire codec (see
# docs/ROBUSTNESS.md; the STW-vs-full-wire ratio is gated
# deterministically by E29).
bench-migrate:
	$(GO) test -run '^$$' -bench 'BenchmarkMigrate' -benchmem . \
		| $(GO) run ./cmd/benchjson -o BENCH_migrate.json

# Hot-path benchmarks (docs/PERFORMANCE.md). Updates the "current"
# sections of BENCH_hotpath.json (interpreter; the CycleLoop anchor
# keeps the JIT rows out) and BENCH_jit.json (compiled tier); the
# checked-in "baseline" numbers are preserved.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkMachine_CycleLoop$$|BenchmarkMulti_Run8Nodes' -benchmem . \
		| $(GO) run ./cmd/benchjson -o BENCH_hotpath.json
	$(GO) test -run '^$$' -bench 'BenchmarkMachine_CycleLoopJIT' -benchmem . \
		| $(GO) run ./cmd/benchjson -o BENCH_jit.json

bench-all:
	$(GO) test -bench=. -benchmem .

# Regenerate the telemetry benchmark artifact (see docs/OBSERVABILITY.md).
bench-json:
	$(GO) run ./cmd/experiments -run E22 -json BENCH_telemetry.json > /dev/null

# Live-introspection gate (docs/OBSERVABILITY.md): the E26 report
# (histograms, causal spans, flight recorder, overhead budget) plus the
# mmsim -serve / mmtop endpoint smoke tests, and the introspection unit
# tests across the wired layers.
obsv:
	$(GO) run ./cmd/experiments -run E26
	$(GO) test -run 'TestServeFlag|TestFlightOutOnFault' ./cmd/mmsim/
	$(GO) test ./cmd/mmtop/
	$(GO) test -run 'TestSpansDeterministic|TestFlightDump|TestNodeMetrics' ./internal/multi/
	$(GO) test -run 'TestServe|TestPrometheus|TestFlight|TestHistogram' ./internal/telemetry/
