// Command repolint enforces this repository's source hygiene rules on
// the Go tree itself, using go/ast only (no third-party tooling):
//
//  1. no panic calls in internal/* non-test code — library packages
//     return errors; the simulator must never take down its host
//  2. no math/rand (or math/rand/v2) imports and no global time
//     sources (time.Now, time.Since, time.Tick, time.After,
//     time.NewTicker, time.NewTimer) in the deterministic simulation
//     packages (internal/machine, internal/multi, internal/faultinject,
//     internal/noc) outside tests — simulation results must be
//     reproducible from seeds and cycle counts alone
//  3. no fmt.Print/Printf/Println in internal/* non-test code —
//     library packages report through returned values and io.Writers,
//     not the process's stdout
//
// Exit status: 0 clean, 1 findings, 2 usage error. Wired into `make
// lint` and CI.
package main

import (
	"fmt"
	"os"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	root := "."
	switch len(args) {
	case 0:
	case 1:
		root = args[0]
	default:
		fmt.Fprintln(stderr, "usage: repolint [repo-root]")
		return 2
	}
	findings, err := Lint(root)
	if err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stdout, "repolint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
