package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	File string
	Line int
	Rule string
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Rule, f.Msg)
}

// deterministicPkgs are the simulation packages whose results must be a
// pure function of their seeds: no ambient randomness or wall-clock.
var deterministicPkgs = map[string]bool{
	"machine":     true,
	"multi":       true,
	"faultinject": true,
	"noc":         true,
}

// bannedTimeFuncs are the global time sources rule 2 rejects. Duration
// arithmetic and constants (time.Millisecond) remain fine.
var bannedTimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Tick":      true,
	"After":     true,
	"NewTicker": true,
	"NewTimer":  true,
}

// fatalLogFuncs are the log functions rule 4 rejects alongside os.Exit:
// they terminate the process, which only a main package may decide.
var fatalLogFuncs = map[string]bool{
	"Fatal":   true,
	"Fatalf":  true,
	"Fatalln": true,
}

// Lint walks the repository tree rooted at root and returns every rule
// violation, sorted by position.
func Lint(root string) ([]Finding, error) {
	var findings []Finding
	internalRoot := filepath.Join(root, "internal")
	err := filepath.WalkDir(internalRoot, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			rel = path
		}
		fs, err := lintFile(path, rel)
		if err != nil {
			return err
		}
		findings = append(findings, fs...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].File != findings[j].File {
			return findings[i].File < findings[j].File
		}
		return findings[i].Line < findings[j].Line
	})
	return findings, nil
}

// lintFile applies all rules to one non-test file under internal/.
// rel is the root-relative path used in findings; its first path
// element below internal/ names the package directory.
func lintFile(path, rel string) ([]Finding, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", rel, err)
	}
	if ast.IsGenerated(f) {
		// Generated files (go:generate output, fuzz harness stubs) are
		// exempt: their style is the generator's business.
		return nil, nil
	}

	parts := strings.Split(filepath.ToSlash(rel), "/")
	pkgDir := ""
	for i, p := range parts {
		if p == "internal" && i+1 < len(parts) {
			pkgDir = parts[i+1]
			break
		}
	}
	deterministic := deterministicPkgs[pkgDir]

	var findings []Finding
	report := func(pos token.Pos, rule, format string, args ...interface{}) {
		findings = append(findings, Finding{
			File: rel, Line: fset.Position(pos).Line,
			Rule: rule, Msg: fmt.Sprintf(format, args...),
		})
	}

	// Rule 2a: banned imports in deterministic packages.
	if deterministic {
		for _, imp := range f.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			if p == "math/rand" || p == "math/rand/v2" {
				report(imp.Pos(), "determinism",
					"import of %s in deterministic package internal/%s; seed an explicit generator instead", p, pkgDir)
			}
		}
	}

	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fn := call.Fun.(type) {
		case *ast.Ident:
			// Rule 1: no panic in library code.
			if fn.Name == "panic" {
				report(call.Pos(), "no-panic",
					"panic in internal/%s; return an error instead", pkgDir)
			}
		case *ast.SelectorExpr:
			pkg, ok := fn.X.(*ast.Ident)
			if !ok || pkg.Obj != nil { // Obj != nil: a local variable, not a package
				return true
			}
			// Rule 3: no direct stdout printing from libraries.
			if pkg.Name == "fmt" && (fn.Sel.Name == "Print" || fn.Sel.Name == "Printf" || fn.Sel.Name == "Println") {
				report(call.Pos(), "no-print",
					"fmt.%s in internal/%s writes to process stdout; print through an io.Writer", fn.Sel.Name, pkgDir)
			}
			// Rule 2b: no global time sources in deterministic packages.
			if deterministic && pkg.Name == "time" && bannedTimeFuncs[fn.Sel.Name] {
				report(call.Pos(), "determinism",
					"time.%s in deterministic package internal/%s; simulated time must come from cycle counts", fn.Sel.Name, pkgDir)
			}
			// Rule 4: libraries must not terminate the process. Only a
			// main package under cmd/ decides the exit status.
			if pkg.Name == "os" && fn.Sel.Name == "Exit" {
				report(call.Pos(), "no-exit",
					"os.Exit in internal/%s; return an error and let cmd/ decide the exit status", pkgDir)
			}
			if pkg.Name == "log" && fatalLogFuncs[fn.Sel.Name] {
				report(call.Pos(), "no-exit",
					"log.%s in internal/%s terminates the process; return an error instead", fn.Sel.Name, pkgDir)
			}
		}
		return true
	})
	return findings, nil
}
