package main

import (
	"os"
	"path/filepath"
	"testing"
)

// writeTree lays out a fake repo under a temp dir.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func ruleCounts(fs []Finding) map[string]int {
	out := make(map[string]int)
	for _, f := range fs {
		out[f.Rule]++
	}
	return out
}

func TestLintFlagsViolations(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/machine/bad.go": `package machine

import (
	"fmt"
	"math/rand"
	"time"
)

func oops(x int) {
	if x < 0 {
		panic("negative")
	}
	fmt.Println(rand.Int(), time.Now())
}
`,
		"internal/asm/ok.go": `package asm

import "time"

// Non-deterministic package: time.Since is allowed here, printing is not.
func dur() time.Duration { var t0 time.Time; return time.Since(t0) }
`,
	})
	fs, err := Lint(root)
	if err != nil {
		t.Fatal(err)
	}
	got := ruleCounts(fs)
	// bad.go: panic, fmt.Println, math/rand import, rand.Int call is not
	// checked (only the import), time.Now call.
	if got["no-panic"] != 1 || got["no-print"] != 1 || got["determinism"] != 2 {
		t.Errorf("rule counts %v, want no-panic=1 no-print=1 determinism=2\n%v", got, fs)
	}
	for _, f := range fs {
		if f.Line <= 0 || f.File == "" {
			t.Errorf("finding lacks position: %+v", f)
		}
	}
}

func TestLintSkipsTestsAndCmd(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/machine/x_test.go": `package machine

import "math/rand"

func helper() int { panic(rand.Int()) }
`,
		"cmd/tool/main.go": `package main

import "fmt"

func main() { fmt.Println("fine"); panic("also fine here") }
`,
		"internal/noc/ok.go": `package noc

func fine() {}
`,
	})
	fs, err := Lint(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Errorf("findings in exempt files: %v", fs)
	}
}

func TestLintLocalVariableShadowingPackage(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/machine/shadow.go": `package machine

type clock struct{}

func (clock) Now() int { return 0 }

func use() int {
	var time clock
	return time.Now() // a local, not the time package
}
`,
	})
	fs, err := Lint(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Errorf("false positive on shadowed identifier: %v", fs)
	}
}

// TestRepoIsClean is the gate itself: the real tree must have zero
// findings.
func TestRepoIsClean(t *testing.T) {
	fs, err := Lint(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		t.Errorf("%s", f)
	}
}
