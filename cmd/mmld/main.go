// Command mmld assembles and links multiple MAP assembly modules into
// one loadable image. Each input file becomes a module named after its
// basename; cross-module references use `.export name` / `.import
// name` with `=name` immediates (see docs/ISA.md).
//
// Usage:
//
//	mmld main.s lib.s          # link, print listing
//	mmld -hex main.s lib.s     # link, print hex words
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/asm"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mmld", flag.ContinueOnError)
	fs.SetOutput(stderr)
	hex := fs.Bool("hex", false, "emit hex words instead of a listing")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() < 1 {
		fmt.Fprintln(stderr, "usage: mmld [-hex] <file.s> [file.s ...]")
		return 2
	}
	var modules []*asm.Module
	for _, name := range fs.Args() {
		src, err := os.ReadFile(name)
		if err != nil {
			fmt.Fprintln(stderr, "mmld:", err)
			return 1
		}
		modName := strings.TrimSuffix(filepath.Base(name), filepath.Ext(name))
		m, err := asm.AssembleModule(modName, string(src))
		if err != nil {
			fmt.Fprintln(stderr, "mmld:", err)
			return 1
		}
		modules = append(modules, m)
	}
	prog, err := asm.Link(modules...)
	if err != nil {
		fmt.Fprintln(stderr, "mmld:", err)
		return 1
	}
	if *hex {
		for _, w := range prog.Words {
			fmt.Fprintf(stdout, "%016x\n", w.Bits)
		}
		return 0
	}
	fmt.Fprint(stdout, asm.Disassemble(prog))
	fmt.Fprintf(stdout, "; %d words, %d bytes, %d modules\n", len(prog.Words), prog.ByteSize(), len(modules))
	return 0
}
