package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, src string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLinkCLI(t *testing.T) {
	dir := t.TempDir()
	main := write(t, dir, "main.s", ".import fn\nldi r2, =fn\nhalt\n")
	lib := write(t, dir, "lib.s", ".export fn\nfn: halt\n")
	var out, errb bytes.Buffer
	if code := run([]string{main, lib}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "lib.fn:") || !strings.Contains(out.String(), "2 modules") {
		t.Errorf("listing:\n%s", out.String())
	}
	out.Reset()
	if code := run([]string{"-hex", main, lib}, &out, &errb); code != 0 {
		t.Fatal("hex mode failed")
	}
	if len(strings.Fields(out.String())) != 3 {
		t.Errorf("hex words: %q", out.String())
	}
}

func TestLinkCLIErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no args exit %d", code)
	}
	if code := run([]string{"/nonexistent.s"}, &out, &errb); code != 1 {
		t.Errorf("missing file exit %d", code)
	}
	dir := t.TempDir()
	bad := write(t, dir, "bad.s", "bogus\n")
	if code := run([]string{bad}, &out, &errb); code != 1 {
		t.Errorf("bad asm exit %d", code)
	}
	orphan := write(t, dir, "orphan.s", ".import gone\nldi r1, =gone\nhalt\n")
	if code := run([]string{orphan}, &out, &errb); code != 1 {
		t.Errorf("undefined import exit %d", code)
	}
}

func TestSampleLibraryLinks(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"../../programs/usemem.s", "../../programs/memlib.s"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	for _, want := range []string{"memlib.memfill:", "memlib.memsum:", "2 modules"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("listing missing %q", want)
		}
	}
}
