// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON artifact (see docs/PERFORMANCE.md). When the
// output file already exists, its "description" and "baseline" fields
// are preserved and only "current" is replaced, so the checked-in
// pre-optimization numbers survive regeneration:
//
//	go test -bench 'CycleLoop|Run8Nodes' -benchmem . | benchjson -o BENCH_hotpath.json
//
// An artifact is single-host: the goos/goarch/cpu header of the run is
// recorded as "host", and regenerating an existing file from a
// different host is refused — numbers from two machines merged into one
// file would present an apples-to-oranges before/after.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// result is one benchmark line: its name, iteration count, the
// GOMAXPROCS it ran under (the -N name suffix; 1 when absent), and
// every reported metric keyed by unit (ns/op, B/op, allocs/op,
// sim-instr/s…).
type result struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iterations"`
	Procs   int                `json:"gomaxprocs"`
	Metrics map[string]float64 `json:"metrics"`
}

// artifact is the file layout. Baseline is free-form: it records the
// pre-optimization numbers by hand and is never overwritten.
type artifact struct {
	Description string          `json:"description,omitempty"`
	Host        string          `json:"host,omitempty"`
	Baseline    json.RawMessage `json:"baseline,omitempty"`
	Current     []result        `json:"current"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout); existing description/baseline fields are preserved, and a host mismatch with the existing file is an error")
	flag.Parse()
	if err := run(*out, os.Stdin, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(out string, in io.Reader, echo io.Writer) error {
	var a artifact
	if out != "" {
		if prev, err := os.ReadFile(out); err == nil {
			if err := json.Unmarshal(prev, &a); err != nil {
				return fmt.Errorf("existing %s: %w", out, err)
			}
		}
	}
	cur, host, err := parse(bufio.NewScanner(in), echo)
	if err != nil {
		return err
	}
	if len(cur) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}
	if a.Host != "" && host != "" && a.Host != host {
		return fmt.Errorf("host mismatch: %s was measured on %q, this run is %q; merging numbers across hosts is meaningless — delete the file or use a separate -o", out, a.Host, host)
	}
	if host != "" {
		a.Host = host
	}
	a.Current = cur

	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// parse extracts benchmark result lines and the host identity from the
// goos/goarch/cpu header, echoing everything to echo so the run stays
// visible when piped.
func parse(sc *bufio.Scanner, echo io.Writer) ([]result, string, error) {
	var results []result
	hdr := map[string]string{}
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(echo, line)
		for _, k := range []string{"goos", "goarch", "cpu"} {
			if v, ok := strings.CutPrefix(line, k+": "); ok {
				hdr[k] = strings.TrimSpace(v)
			}
		}
		f := strings.Fields(line)
		// Benchmark lines: name, iterations, then value/unit pairs.
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		r := result{Name: f[0], Iters: iters, Procs: procsOf(f[0]), Metrics: map[string]float64{}}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				break
			}
			r.Metrics[f[i+1]] = v
		}
		results = append(results, r)
	}
	return results, hostOf(hdr), sc.Err()
}

// procsOf reads the GOMAXPROCS suffix the testing package appends to
// benchmark names ("BenchmarkFoo/sub-8"); no suffix means 1.
func procsOf(name string) int {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return 1
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n <= 0 {
		return 1
	}
	return n
}

// hostOf collapses the run's goos/goarch/cpu header into one identity
// string, empty when no header was seen.
func hostOf(hdr map[string]string) string {
	if len(hdr) == 0 {
		return ""
	}
	parts := []string{}
	if hdr["goos"] != "" || hdr["goarch"] != "" {
		parts = append(parts, hdr["goos"]+"/"+hdr["goarch"])
	}
	if hdr["cpu"] != "" {
		parts = append(parts, hdr["cpu"])
	}
	return strings.Join(parts, " ")
}
