// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON artifact (see docs/PERFORMANCE.md). When the
// output file already exists, its "description" and "baseline" fields
// are preserved and only "current" is replaced, so the checked-in
// pre-optimization numbers survive regeneration:
//
//	go test -bench 'CycleLoop|Run8Nodes' -benchmem . | benchjson -o BENCH_hotpath.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one benchmark line: its name, iteration count, and every
// reported metric keyed by unit (ns/op, B/op, allocs/op, sim-instr/s…).
type result struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iterations"`
	Metrics map[string]float64 `json:"metrics"`
}

// artifact is the file layout. Baseline is free-form: it records the
// pre-optimization numbers by hand and is never overwritten.
type artifact struct {
	Description string          `json:"description,omitempty"`
	Baseline    json.RawMessage `json:"baseline,omitempty"`
	Current     []result        `json:"current"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout); existing description/baseline fields are preserved")
	flag.Parse()
	if err := run(*out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(out string) error {
	var a artifact
	if out != "" {
		if prev, err := os.ReadFile(out); err == nil {
			if err := json.Unmarshal(prev, &a); err != nil {
				return fmt.Errorf("existing %s: %w", out, err)
			}
		}
	}
	cur, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		return err
	}
	if len(cur) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}
	a.Current = cur

	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// parse extracts benchmark result lines, echoing everything to stderr
// so the run stays visible when piped.
func parse(sc *bufio.Scanner) ([]result, error) {
	var results []result
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		f := strings.Fields(line)
		// Benchmark lines: name, iterations, then value/unit pairs.
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		r := result{Name: f[0], Iters: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				break
			}
			r.Metrics[f[i+1]] = v
		}
		results = append(results, r)
	}
	return results, sc.Err()
}
