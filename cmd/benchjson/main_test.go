package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleRun = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkMachine_CycleLoop/fib         	41609316	        27.49 ns/op	  36379548 sim-instr/s	       0 B/op	       0 allocs/op
BenchmarkMulti_Run8Nodes/parallel-8    	      12	  95000000 ns/op	   8400000 sim-instr/s
PASS
ok  	repro	5.098s
`

func TestParse(t *testing.T) {
	results, host, err := parse(bufio.NewScanner(strings.NewReader(sampleRun)), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if want := "linux/amd64 Intel(R) Xeon(R) Processor @ 2.10GHz"; host != want {
		t.Fatalf("host = %q, want %q", host, want)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	fib := results[0]
	if fib.Name != "BenchmarkMachine_CycleLoop/fib" || fib.Iters != 41609316 {
		t.Fatalf("bad first result: %+v", fib)
	}
	if fib.Procs != 1 {
		t.Fatalf("fib Procs = %d, want 1 (no -N suffix)", fib.Procs)
	}
	if fib.Metrics["sim-instr/s"] != 36379548 || fib.Metrics["allocs/op"] != 0 {
		t.Fatalf("bad fib metrics: %v", fib.Metrics)
	}
	if p := results[1].Procs; p != 8 {
		t.Fatalf("parallel-8 Procs = %d, want 8", p)
	}
}

func TestProcsOf(t *testing.T) {
	for name, want := range map[string]int{
		"BenchmarkFoo":        1,
		"BenchmarkFoo-8":      8,
		"BenchmarkFoo/sub-16": 16,
		"BenchmarkFoo/sub-x":  1, // non-numeric suffix is part of the name
	} {
		if got := procsOf(name); got != want {
			t.Errorf("procsOf(%q) = %d, want %d", name, got, want)
		}
	}
}

func TestRunPreservesBaselineAndRecordsHost(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH.json")
	seed := `{"description":"d","baseline":{"note":"kept"},"current":[]}`
	if err := os.WriteFile(out, []byte(seed), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(out, strings.NewReader(sampleRun), io.Discard); err != nil {
		t.Fatal(err)
	}
	var a artifact
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &a); err != nil {
		t.Fatal(err)
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, a.Baseline); err != nil {
		t.Fatal(err)
	}
	if a.Description != "d" || compact.String() != `{"note":"kept"}` {
		t.Fatalf("description/baseline not preserved: %+v", a)
	}
	if a.Host == "" || !strings.Contains(a.Host, "linux/amd64") {
		t.Fatalf("host not recorded: %q", a.Host)
	}
	if len(a.Current) != 2 {
		t.Fatalf("current not replaced: %+v", a.Current)
	}
}

func TestRunRefusesMixedHosts(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH.json")
	other := sampleRun // same benchmarks, different machine
	other = strings.Replace(other, "Intel(R) Xeon(R) Processor @ 2.10GHz", "AMD EPYC 7B13", 1)
	if err := run(out, strings.NewReader(other), io.Discard); err != nil {
		t.Fatal(err)
	}
	err := run(out, strings.NewReader(sampleRun), io.Discard)
	if err == nil {
		t.Fatal("merge across hosts succeeded, want refusal")
	}
	if !strings.Contains(err.Error(), "host mismatch") {
		t.Fatalf("unexpected error: %v", err)
	}
	// The file must be untouched by the refused run.
	var a artifact
	data, _ := os.ReadFile(out)
	if err := json.Unmarshal(data, &a); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a.Host, "AMD EPYC") {
		t.Fatalf("refused run clobbered the artifact: host %q", a.Host)
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	if err := run("", strings.NewReader("no benchmarks here\n"), io.Discard); err == nil {
		t.Fatal("want error on input without benchmark lines")
	}
}
