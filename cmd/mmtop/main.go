// Command mmtop is a live terminal dashboard for a running simulation:
// it polls a telemetry endpoint's /metrics.json (mmsim -serve, or any
// telemetry.Serve mount) and renders a per-node table — IPC, cache and
// TLB hit rates, NoC service-queue depth — with delta sparklines of
// instruction throughput, plus mesh-wide transport counters.
//
// Usage:
//
//	mmsim -serve 127.0.0.1:9757 -serve-for 30s prog.s &
//	mmtop -addr 127.0.0.1:9757
//	mmtop -addr 127.0.0.1:9757 -interval 250ms -n 40 -plain
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mmtop", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:9757", "telemetry endpoint (host:port or full URL)")
	interval := fs.Duration("interval", time.Second, "poll interval")
	frames := fs.Int("n", 0, "render this many frames then exit (0 = until the endpoint goes away)")
	plain := fs.Bool("plain", false, "append frames instead of redrawing in place (no ANSI escapes)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}

	var d dashboard
	client := &http.Client{Timeout: 5 * time.Second}
	for i := 0; *frames == 0 || i < *frames; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		snap, err := fetchSnapshot(client, base+"/metrics.json")
		if err != nil {
			if i == 0 || *frames != 0 {
				fmt.Fprintln(stderr, "mmtop:", err)
				return 1
			}
			// Endpoint gone mid-watch: the run finished. Normal exit.
			return 0
		}
		if !*plain {
			fmt.Fprint(stdout, "\x1b[H\x1b[2J")
		}
		fmt.Fprint(stdout, d.frame(snap))
	}
	return 0
}

// fetchSnapshot GETs a flat {"metric": value} JSON object.
func fetchSnapshot(client *http.Client, url string) (map[string]float64, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	var snap map[string]float64
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("%s: %w", url, err)
	}
	return snap, nil
}

// sparkWidth is how many poll intervals of throughput history each
// node's sparkline shows.
const sparkWidth = 24

// dashboard accumulates poll-to-poll state: the previous snapshot (for
// deltas) and each node's recent instruction-throughput history.
type dashboard struct {
	prev  map[string]float64
	spark map[string][]float64
}

// nodePrefixes finds the per-node metric namespaces in a snapshot:
// node.<id>. for a multicomputer, or the bare namespace for a
// single-machine endpoint.
func nodePrefixes(snap map[string]float64) []string {
	seen := map[string]bool{}
	for name := range snap {
		if !strings.HasPrefix(name, "node.") {
			continue
		}
		rest := name[len("node."):]
		dot := strings.IndexByte(rest, '.')
		if dot <= 0 {
			continue
		}
		seen["node."+rest[:dot+1]] = true
	}
	if len(seen) == 0 {
		return []string{""}
	}
	var out []string
	for p := range seen {
		out = append(out, p)
	}
	// node.2. before node.10.: numeric-aware ordering.
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return out[i] < out[j]
	})
	return out
}

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline scales vals into ▁..█ glyphs (empty history → blanks).
func sparkline(vals []float64) string {
	var max float64
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		if max <= 0 {
			b.WriteRune(sparkRunes[0])
			continue
		}
		idx := int(v / max * float64(len(sparkRunes)-1))
		if idx < 0 {
			idx = 0
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// pct renders hits/(hits+misses) as a percentage, "-" when idle.
func pct(hits, misses float64) string {
	if hits+misses == 0 {
		return "    -"
	}
	return fmt.Sprintf("%5.1f", 100*hits/(hits+misses))
}

// frame renders one dashboard frame from a snapshot and advances the
// delta state. Pure except for the dashboard's own history — the same
// snapshot sequence always renders the same frames.
func (d *dashboard) frame(snap map[string]float64) string {
	if d.spark == nil {
		d.spark = map[string][]float64{}
	}
	var b strings.Builder
	prefixes := nodePrefixes(snap)

	fmt.Fprintf(&b, "mmtop — %d node(s)", len(prefixes))
	if c, ok := snap["multi.cycle"]; ok {
		fmt.Fprintf(&b, "  cycle=%.0f", c)
	} else if c, ok := snap["machine.cycles"]; ok {
		fmt.Fprintf(&b, "  cycle=%.0f", c)
	}
	if m, ok := snap["noc.msgs"]; ok {
		fmt.Fprintf(&b, "  noc.msgs=%.0f", m)
	}
	if r, ok := snap["noc.transport.retransmits"]; ok {
		fmt.Fprintf(&b, "  retransmits=%.0f", r)
	}
	if g, ok := snap["noc.transport.gave_up"]; ok && g > 0 {
		fmt.Fprintf(&b, "  GAVE-UP=%.0f", g)
	}
	if r, ok := snap["recovery.restores"]; ok && r > 0 {
		fmt.Fprintf(&b, "  restores=%.0f", r)
	}
	if c, ok := snap["persist.captures"]; ok {
		fmt.Fprintf(&b, "  ckpt.gens=%.0f", c)
		if r := snap["persist.restores"]; r > 0 {
			fmt.Fprintf(&b, "  ckpt.restores=%.0f", r)
		}
		if f := snap["persist.fallbacks"]; f > 0 {
			fmt.Fprintf(&b, "  CKPT-FALLBACKS=%.0f", f)
		}
		if cd := snap["persist.corrupt_detected"]; cd > 0 {
			fmt.Fprintf(&b, "  CKPT-CORRUPT=%.0f", cd)
		}
	}
	if st, ok := snap["migrate.started"]; ok && st > 0 {
		status := "pre-copy"
		switch {
		case snap["migrate.committed"] > 0:
			status = "committed"
		case snap["migrate.aborted"] > 0:
			status = "aborted"
		}
		fmt.Fprintf(&b, "  migrate=%s rounds=%.0f", status, snap["migrate.rounds"])
		if r := snap["migrate.retransmits"]; r > 0 {
			fmt.Fprintf(&b, "  mig.retrans=%.0f", r)
		}
		if w := snap["migrate.stw_window.max"]; w > 0 {
			fmt.Fprintf(&b, "  stw=%.0fcy", w)
		}
	}
	b.WriteString("\n\n")

	fmt.Fprintf(&b, "%-8s %6s %7s %7s %7s %6s  %s\n",
		"node", "ipc", "cache%", "tlb%", "pending", "Δinstr", "throughput")
	for _, p := range prefixes {
		label := "-"
		if p != "" {
			label = strings.TrimSuffix(strings.TrimPrefix(p, "node."), ".")
		}
		instr := snap[p+"machine.instructions"]
		delta := instr
		if d.prev != nil {
			delta = instr - d.prev[p+"machine.instructions"]
		}
		hist := append(d.spark[p], delta)
		if len(hist) > sparkWidth {
			hist = hist[len(hist)-sparkWidth:]
		}
		d.spark[p] = hist
		fmt.Fprintf(&b, "%-8s %6.2f %7s %7s %7.0f %6.0f  %s\n",
			label,
			snap[p+"machine.ipc"],
			pct(snap[p+"cache.l1.hits"], snap[p+"cache.l1.misses"]),
			pct(snap[p+"vm.tlb.hits"], snap[p+"vm.tlb.misses"]),
			snap[p+"machine.remote_pending"],
			delta,
			sparkline(hist))
	}

	// Latency distributions, when the endpoint exports histograms.
	hists := []struct{ name, label string }{
		{"machine.hist.remote_rt", "remote round-trip"},
		{"machine.hist.domain_switch", "domain switch"},
		{"cache.l1.hist.tlb_refill", "tlb refill"},
		{"noc.hist.retransmit_delay", "retransmit delay"},
	}
	wrote := false
	for _, h := range hists {
		// Aggregate across nodes (single-machine: the bare prefix).
		var count, p50, p99, max float64
		for _, p := range prefixes {
			if c, ok := snap[p+h.name+".count"]; ok && c > 0 {
				count += c
				if v := snap[p+h.name+".p50"]; v > p50 {
					p50 = v
				}
				if v := snap[p+h.name+".p99"]; v > p99 {
					p99 = v
				}
				if v := snap[p+h.name+".max"]; v > max {
					max = v
				}
			}
		}
		// Mesh-level histograms live outside the node namespaces.
		if c, ok := snap[h.name+".count"]; ok && c > 0 {
			count += c
			p50, p99, max = snap[h.name+".p50"], snap[h.name+".p99"], snap[h.name+".max"]
		}
		if count == 0 {
			continue
		}
		if !wrote {
			b.WriteString("\nlatency (cycles)        count     p50     p99     max\n")
			wrote = true
		}
		fmt.Fprintf(&b, "%-20s %9.0f %7.0f %7.0f %7.0f\n", h.label, count, p50, p99, max)
	}

	// Checkpoint capture latency is wall time (the persist store lives
	// outside the simulated clock), so it gets its own units.
	if c := snap["persist.capture_latency_ns.count"]; c > 0 {
		fmt.Fprintf(&b, "\ncheckpoint capture (us) count %.0f  p50 %.0f  p99 %.0f  max %.0f\n",
			c,
			snap["persist.capture_latency_ns.p50"]/1e3,
			snap["persist.capture_latency_ns.p99"]/1e3,
			snap["persist.capture_latency_ns.max"]/1e3)
	}

	d.prev = snap
	return b.String()
}
