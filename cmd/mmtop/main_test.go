package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// snapMulti fakes a two-node multicomputer snapshot.
func snapMulti(instr0, instr1 float64) map[string]float64 {
	return map[string]float64{
		"multi.cycle":                         1000,
		"noc.msgs":                            42,
		"noc.transport.retransmits":           3,
		"node.0.machine.instructions":         instr0,
		"node.0.machine.ipc":                  0.5,
		"node.0.cache.l1.hits":                90,
		"node.0.cache.l1.misses":              10,
		"node.0.vm.tlb.hits":                  7,
		"node.0.vm.tlb.misses":                3,
		"node.0.machine.remote_pending":       2,
		"node.0.machine.hist.remote_rt.count": 5,
		"node.0.machine.hist.remote_rt.p50":   31,
		"node.0.machine.hist.remote_rt.p99":   63,
		"node.0.machine.hist.remote_rt.max":   40,
		"node.1.machine.instructions":         instr1,
		"node.1.machine.ipc":                  0.25,
		"node.1.cache.l1.hits":                0,
		"node.1.cache.l1.misses":              0,
	}
}

func TestFrameMultiNode(t *testing.T) {
	var d dashboard
	first := d.frame(snapMulti(100, 50))
	for _, want := range []string{
		"2 node(s)", "cycle=1000", "noc.msgs=42", "retransmits=3",
		"node", "ipc", "cache%", "tlb%",
		"remote round-trip",
	} {
		if !strings.Contains(first, want) {
			t.Errorf("frame missing %q:\n%s", want, first)
		}
	}
	// Node 0: 90/100 cache hits, 7/10 tlb hits; node 1 idle caches → "-".
	if !strings.Contains(first, "90.0") || !strings.Contains(first, "70.0") {
		t.Errorf("hit rates wrong:\n%s", first)
	}
	lines := strings.Split(first, "\n")
	var n1 string
	for _, l := range lines {
		if strings.HasPrefix(l, "1 ") {
			n1 = l
		}
	}
	if n1 == "" || !strings.Contains(n1, "-") {
		t.Errorf("idle node 1 should render '-' hit rates: %q", n1)
	}

	// Second frame: deltas are against the previous snapshot.
	second := d.frame(snapMulti(160, 50))
	var row0 string
	for _, l := range strings.Split(second, "\n") {
		if strings.HasPrefix(l, "0 ") {
			row0 = l
		}
	}
	if !strings.Contains(row0, " 60  ") {
		t.Errorf("node 0 Δinstr should be 60: %q", row0)
	}
	for _, r := range sparkRunes {
		if strings.ContainsRune(second, r) {
			return
		}
	}
	t.Errorf("no sparkline glyphs in frame:\n%s", second)
}

func TestFrameSingleMachine(t *testing.T) {
	var d dashboard
	out := d.frame(map[string]float64{
		"machine.cycles":       500,
		"machine.instructions": 300,
		"machine.ipc":          0.6,
		"cache.l1.hits":        10,
		"cache.l1.misses":      0,
	})
	if !strings.Contains(out, "1 node(s)") || !strings.Contains(out, "cycle=500") {
		t.Errorf("single-machine header:\n%s", out)
	}
	if !strings.Contains(out, "\n-    ") && !strings.Contains(out, "\n- ") {
		// Row label for the bare namespace is "-".
		t.Errorf("single-machine row:\n%s", out)
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline([]float64{0, 1, 2, 4}); !strings.HasSuffix(got, "█") {
		t.Errorf("max value should render full block: %q", got)
	}
	if got := sparkline([]float64{0, 0}); got != "▁▁" {
		t.Errorf("all-zero history = %q", got)
	}
}

func TestNodePrefixOrdering(t *testing.T) {
	snap := map[string]float64{
		"node.10.machine.instructions": 1,
		"node.2.machine.instructions":  1,
		"node.0.machine.instructions":  1,
	}
	got := nodePrefixes(snap)
	want := []string{"node.0.", "node.2.", "node.10."}
	if len(got) != len(want) {
		t.Fatalf("prefixes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("prefixes = %v, want %v", got, want)
		}
	}
}

// TestRunAgainstLiveEndpoint drives the full CLI loop against a real
// telemetry mux — the smoke test `make obsv` leans on.
func TestRunAgainstLiveEndpoint(t *testing.T) {
	reg := telemetry.NewRegistry()
	n := uint64(0)
	reg.Counter("machine.instructions", func() uint64 { n += 50; return n })
	reg.Counter("machine.cycles", func() uint64 { return 1000 })
	reg.Register("machine.ipc", func() float64 { return 0.5 })
	srv := httptest.NewServer(telemetry.NewServeMux(reg, nil))
	defer srv.Close()

	var out, errb bytes.Buffer
	code := run([]string{"-addr", srv.URL, "-interval", "10ms", "-n", "3", "-plain"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if got := strings.Count(out.String(), "mmtop —"); got != 3 {
		t.Errorf("rendered %d frames, want 3:\n%s", got, out.String())
	}
	if strings.Contains(out.String(), "\x1b[") {
		t.Errorf("-plain output contains ANSI escapes")
	}
}

func TestRunBadEndpoint(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-addr", "127.0.0.1:1", "-n", "1"}, &out, &errb); code != 1 {
		t.Errorf("unreachable endpoint exit = %d", code)
	}
}

func TestFramePersistSection(t *testing.T) {
	var d dashboard
	out := d.frame(map[string]float64{
		"machine.cycles":                   100,
		"machine.instructions":             50,
		"persist.captures":                 7,
		"persist.restores":                 1,
		"persist.fallbacks":                1,
		"persist.corrupt_detected":         2,
		"persist.capture_latency_ns.count": 7,
		"persist.capture_latency_ns.p50":   42000,
		"persist.capture_latency_ns.p99":   90000,
		"persist.capture_latency_ns.max":   120000,
	})
	for _, want := range []string{
		"ckpt.gens=7", "ckpt.restores=1", "CKPT-FALLBACKS=1", "CKPT-CORRUPT=2",
		"checkpoint capture (us)", "p50 42",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
	// A run without a checkpoint store must not mention checkpoints.
	clean := (&dashboard{}).frame(map[string]float64{"machine.cycles": 1})
	if strings.Contains(clean, "ckpt") || strings.Contains(clean, "checkpoint") {
		t.Errorf("persist rows leaked into a storeless frame:\n%s", clean)
	}
}

func TestFrameMigrateSection(t *testing.T) {
	var d dashboard
	out := d.frame(map[string]float64{
		"machine.cycles":           100,
		"machine.instructions":     50,
		"migrate.started":          1,
		"migrate.committed":        1,
		"migrate.rounds":           3,
		"migrate.retransmits":      2,
		"migrate.stw_window.count": 1,
		"migrate.stw_window.max":   15,
	})
	for _, want := range []string{"migrate=committed", "rounds=3", "mig.retrans=2", "stw=15cy"} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
	aborted := (&dashboard{}).frame(map[string]float64{
		"machine.cycles":  1,
		"migrate.started": 1,
		"migrate.aborted": 1,
		"migrate.rounds":  2,
	})
	if !strings.Contains(aborted, "migrate=aborted") {
		t.Errorf("aborted migration not shown:\n%s", aborted)
	}
	// A run without an armed migration must not mention one.
	clean := (&dashboard{}).frame(map[string]float64{"machine.cycles": 1})
	if strings.Contains(clean, "migrate") {
		t.Errorf("migration rows leaked into a migration-free frame:\n%s", clean)
	}
}
