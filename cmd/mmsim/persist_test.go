package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// longCountdown runs long enough for -checkpoint-every to commit
// several generations before -max-cycles interrupts it.
const longCountdown = "ldi r3, 2000\nloop: st r1, 0, r3\nld r4, r1, 0\nsubi r3, r3, 1\nbnez r3, loop\nhalt\n"

// regsLine extracts the per-thread register summary from mmsim output.
func regsLine(t *testing.T, out string) string {
	t.Helper()
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "r1=") {
			return strings.TrimSpace(l)
		}
	}
	t.Fatalf("no register line in output:\n%s", out)
	return ""
}

// The headline persistence flow: an interrupted checkpointed run,
// resumed from disk with -restore, finishes with the exact register
// file of an uninterrupted run.
func TestCheckpointThenRestoreMatchesUninterrupted(t *testing.T) {
	dir := t.TempDir()

	code, refOut, errOut := runCLI([]string{"-"}, longCountdown)
	if code != 0 {
		t.Fatalf("reference run exit %d: %s", code, errOut)
	}
	ref := regsLine(t, refOut)

	// "Crash" partway through: the cycle budget cuts the run short, but
	// every committed generation survives on disk.
	code, out, errOut := runCLI([]string{
		"-checkpoint-dir", dir, "-checkpoint-every", "1000", "-max-cycles", "3000", "-"},
		longCountdown)
	if code != 0 {
		t.Fatalf("checkpointed run exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "checkpoint generation(s)") {
		t.Errorf("missing checkpoint summary:\n%s", out)
	}
	if strings.Contains(out, "halted") {
		t.Fatalf("interrupted run should not have finished:\n%s", out)
	}
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) < 4 { // >= 2 generations x (image + marker)
		t.Fatalf("store has %d files (err %v), want several generations", len(ents), err)
	}

	code, out, errOut = runCLI([]string{"-restore", "-checkpoint-dir", dir}, "")
	if code != 0 {
		t.Fatalf("restore run exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "restored generation") {
		t.Errorf("missing restore banner:\n%s", out)
	}
	if !strings.Contains(out, "halted") {
		t.Errorf("restored run did not finish:\n%s", out)
	}
	if got := regsLine(t, out); got != ref {
		t.Errorf("restored run diverged:\n got %s\nwant %s", got, ref)
	}
}

// Restore falls back past a damaged newest generation.
func TestRestoreFallsBackPastDamage(t *testing.T) {
	dir := t.TempDir()
	code, _, errOut := runCLI([]string{
		"-checkpoint-dir", dir, "-checkpoint-every", "1000", "-max-cycles", "3000", "-"},
		longCountdown)
	if code != 0 {
		t.Fatalf("checkpointed run exit %d: %s", code, errOut)
	}
	// Flip one bit in the newest image file.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	newest := ""
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".ckpt") && e.Name() > newest {
			newest = e.Name()
		}
	}
	path := filepath.Join(dir, newest)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	code, out, errOut := runCLI([]string{"-restore", "-checkpoint-dir", dir}, "")
	if code != 0 {
		t.Fatalf("restore after damage exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "restored generation") || !strings.Contains(out, "halted") {
		t.Errorf("fallback restore did not complete:\n%s", out)
	}
}

func TestPersistMetricsVisible(t *testing.T) {
	dir := t.TempDir()
	code, out, errOut := runCLI([]string{
		"-checkpoint-dir", dir, "-checkpoint-every", "1000", "-metrics", "-"},
		longCountdown)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	for _, m := range []string{`"persist.captures"`, `"persist.bytes_written"`, `"persist.delta_pages"`} {
		if !strings.Contains(out, m) {
			t.Errorf("metrics snapshot missing %s:\n%s", m, out)
		}
	}
}

func TestRestoreFlagValidation(t *testing.T) {
	if code, _, errOut := runCLI([]string{"-restore"}, ""); code != 2 ||
		!strings.Contains(errOut, "-checkpoint-dir") {
		t.Errorf("bare -restore: exit %d, stderr %q", code, errOut)
	}
	if code, _, errOut := runCLI([]string{"-restore", "-checkpoint-dir", t.TempDir(), "prog.s"}, ""); code != 2 ||
		!strings.Contains(errOut, "do not pass one") {
		t.Errorf("-restore with program: exit %d, stderr %q", code, errOut)
	}
	// An empty store is a hard error, not a silent fresh boot.
	if code, _, errOut := runCLI([]string{"-restore", "-checkpoint-dir", t.TempDir()}, ""); code != 1 ||
		!strings.Contains(errOut, "restore") {
		t.Errorf("empty store: exit %d, stderr %q", code, errOut)
	}
}
