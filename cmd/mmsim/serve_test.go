package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// lockedBuffer lets the test poll run()'s stdout while run() is still
// writing to it from another goroutine.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var serveAddrRE = regexp.MustCompile(`serving metrics on http://([^/\s]+)/metrics`)

// TestServeFlag: -serve must bring up a live endpoint whose /metrics,
// /metrics.json and /healthz answer while the process is up.
func TestServeFlag(t *testing.T) {
	var out lockedBuffer
	var errb bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-serve", "127.0.0.1:0", "-serve-for", "5s", "-"},
			strings.NewReader(countdown), &out, &errb)
	}()

	var addr string
	deadline := time.Now().Add(3 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("no serve address announced; stdout:\n%s\nstderr:\n%s", out.String(), errb.String())
		}
		if m := serveAddrRE.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}
	code, body := get("/metrics")
	if code != 200 || !strings.Contains(body, "machine_instructions") {
		t.Errorf("/metrics = %d:\n%.400s", code, body)
	}
	if !strings.Contains(body, "machine_hist_remote_rt_bucket") {
		t.Errorf("/metrics lacks histogram series:\n%.400s", body)
	}
	code, body = get("/metrics.json")
	if code != 200 {
		t.Fatalf("/metrics.json = %d", code)
	}
	var snap map[string]float64
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json is not a flat JSON object: %v\n%.400s", err, body)
	}
	if _, ok := snap["machine.cycles"]; !ok {
		t.Errorf("/metrics.json missing machine.cycles: %v", snap)
	}

	// Don't wait out -serve-for: the endpoint checked out, the test is
	// done. The goroutine holds only test-scoped state.
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("run exited %d", code)
		}
	case <-time.After(50 * time.Millisecond):
	}
}

// TestFlightOutOnFault: -flight-out must produce a JSONL dump when the
// program takes an unrecovered fault, and nothing on a clean run.
func TestFlightOutOnFault(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "flight.jsonl")
	code, _, errb := runCLI([]string{"-flight-out", path, "-"},
		"ldi r1, 0x40\nld r2, r1, 0\nhalt\n")
	if code != 1 {
		t.Fatalf("faulting run exit = %d", code)
	}
	if !strings.Contains(errb, "flight recorder dumped") {
		t.Errorf("no dump notice on stderr:\n%s", errb)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"flight":true`) {
		t.Errorf("dump has no flight header:\n%.400s", data)
	}
	var hdr map[string]any
	if err := json.Unmarshal([]byte(strings.SplitN(string(data), "\n", 2)[0]), &hdr); err != nil {
		t.Fatalf("dump header not JSON: %v", err)
	}
	if r, _ := hdr["reason"].(string); !strings.Contains(r, "fault") {
		t.Errorf("dump reason = %q, want a fault", r)
	}

	clean := filepath.Join(dir, "clean.jsonl")
	if code, _, _ := runCLI([]string{"-flight-out", clean, "-"}, countdown); code != 0 {
		t.Fatal("clean run failed")
	}
	if _, err := os.Stat(clean); !os.IsNotExist(err) {
		t.Errorf("clean run wrote a flight dump (err=%v)", err)
	}
}
