package main

import (
	"bytes"
	"encoding/json"
	"os"
	"regexp"
	"strings"
	"testing"
)

func osWriteFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func runCLI(args []string, stdin string) (int, string, string) {
	var out, errb bytes.Buffer
	code := run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

const countdown = "ldi r3, 5\nloop: subi r3, r3, 1\nbnez r3, loop\nhalt\n"

func TestRunSimpleProgram(t *testing.T) {
	code, out, _ := runCLI([]string{"-"}, countdown)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "thread 0: halted") || !strings.Contains(out, "ipc=") {
		t.Errorf("output:\n%s", out)
	}
}

func TestMultipleThreadsAndSchemes(t *testing.T) {
	for _, scheme := range []string{"guarded", "flush-tlb", "flush-all"} {
		code, out, _ := runCLI([]string{"-threads", "3", "-scheme", scheme, "-"}, countdown)
		if code != 0 {
			t.Fatalf("%s: exit %d:\n%s", scheme, code, out)
		}
		if strings.Count(out, "halted") != 3 {
			t.Errorf("%s: expected 3 halted threads:\n%s", scheme, out)
		}
	}
}

func TestTraceAndWideFlags(t *testing.T) {
	code, out, _ := runCLI([]string{"-trace", "-wide", "-"}, countdown)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "subi r3, r3, 1") {
		t.Errorf("trace output missing instructions:\n%s", out)
	}
}

func TestTraceLinesCarryCycleClusterThread(t *testing.T) {
	code, out, _ := runCLI([]string{"-trace", "-"}, countdown)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	// Each trace line is "[   cycle] c<cluster> t<thread> <pc>  <disasm>".
	re := regexp.MustCompile(`\[\s*\d+\] c\d+ t\d+ 0x[0-9a-f]+  subi r3, r3, 1`)
	if !re.MatchString(out) {
		t.Errorf("trace lines missing cycle/cluster/thread:\n%s", out)
	}
}

func TestMetricsFlag(t *testing.T) {
	code, out, _ := runCLI([]string{"-metrics", "-"}, countdown)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	i := strings.Index(out, "metrics:\n")
	if i < 0 {
		t.Fatalf("no metrics block:\n%s", out)
	}
	var snap map[string]float64
	if err := json.Unmarshal([]byte(out[i+len("metrics:\n"):]), &snap); err != nil {
		t.Fatalf("metrics JSON: %v\n%s", err, out)
	}
	for _, name := range []string{"machine.cycles", "machine.instructions", "cache.l1.accesses", "vm.translations", "kernel.segments_allocated"} {
		if _, ok := snap[name]; !ok {
			t.Errorf("metrics missing %s", name)
		}
	}
	if snap["machine.instructions"] <= 0 {
		t.Errorf("machine.instructions = %v", snap["machine.instructions"])
	}
}

func TestTraceOutChromeFormat(t *testing.T) {
	path := t.TempDir() + "/trace.json"
	code, _, errb := runCLI([]string{"-trace-out", path, "-"}, countdown)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			TS   uint64 `json:"ts"`
			PID  int    `json:"pid"`
			TID  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	var slices int
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			slices++
		}
	}
	if slices == 0 {
		t.Errorf("no complete ('X') instruction slices among %d records", len(doc.TraceEvents))
	}
}

func TestTraceOutJSONL(t *testing.T) {
	path := t.TempDir() + "/trace.jsonl"
	code, _, errb := runCLI([]string{"-trace-out", path, "-"}, countdown)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) < 4 {
		t.Fatalf("only %d trace lines", len(lines))
	}
	kinds := map[string]int{}
	for _, l := range lines {
		var ev struct {
			Kind  string `json:"kind"`
			Cycle uint64 `json:"cycle"`
		}
		if err := json.Unmarshal([]byte(l), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", l, err)
		}
		kinds[ev.Kind]++
	}
	if kinds["instr"] == 0 {
		t.Errorf("no instr events in %v", kinds)
	}
}

func TestProfileFlag(t *testing.T) {
	code, out, _ := runCLI([]string{"-profile", "-"}, countdown)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "flat profile") || !strings.Contains(out, "loop") {
		t.Errorf("profile output missing loop label:\n%s", out)
	}
}

func TestVerboseRegisters(t *testing.T) {
	code, out, _ := runCLI([]string{"-v", "-"}, "ldi r7, 99\nhalt\n")
	if code != 0 {
		t.Fatal(code)
	}
	if !strings.Contains(out, "r7 ") {
		t.Errorf("verbose dump missing r7:\n%s", out)
	}
}

func TestFaultingProgramExitCode(t *testing.T) {
	code, out, _ := runCLI([]string{"-"}, "ldi r1, 0x40\nld r2, r1, 0\nhalt\n")
	if code != 1 {
		t.Errorf("faulting program exit = %d:\n%s", code, out)
	}
	if !strings.Contains(out, "tag fault") {
		t.Errorf("fault not reported:\n%s", out)
	}
}

func TestBadUsage(t *testing.T) {
	if code, _, _ := runCLI(nil, ""); code != 2 {
		t.Errorf("no args exit %d", code)
	}
	if code, _, _ := runCLI([]string{"-scheme", "nope", "-"}, countdown); code != 2 {
		t.Errorf("bad scheme exit %d", code)
	}
	if code, _, _ := runCLI([]string{"-"}, "zzz\n"); code != 1 {
		t.Errorf("bad asm exit %d", code)
	}
}

func TestSamplePrograms(t *testing.T) {
	cases := []struct {
		file string
		want string // substring of the register dump
	}{
		{"fib.s", "r4=0x0000000000002ac2"},     // fib = 10946
		{"sieve.s", "r4=0x0000000000000036"},   // 54 primes below 256
		{"crosscheck.s", "halted  instret=13"}, // all pointer ops agreed
	}
	for _, c := range cases {
		code, out, stderr := runCLI([]string{"../../programs/" + c.file}, "")
		if code != 0 {
			t.Fatalf("%s: exit %d\n%s%s", c.file, code, out, stderr)
		}
		if !strings.Contains(out, c.want) {
			t.Errorf("%s: missing %q in:\n%s", c.file, c.want, out)
		}
	}
}

func TestDebugREPL(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/p.s"
	if err := osWriteFile(path, countdown); err != nil {
		t.Fatal(err)
	}
	script := strings.Join([]string{
		"b 0x10000008", // the subi (code loads at region base 0x10000000)
		"c",
		"r",
		"d 0x10000008",
		"s 2",
		"c", "c", "c", // remaining loop iterations + run to halt
		"q",
	}, "\n")
	code, out, _ := runCLI([]string{"-debug", path}, script)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{"breakpoint @0x10000008", "subi r3, r3, 1", "thread 0"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestDebugNeedsFile(t *testing.T) {
	if code, _, _ := runCLI([]string{"-debug", "-"}, countdown); code != 2 {
		t.Errorf("exit %d", code)
	}
}

func TestVerifyFlagRefusesFaultingProgram(t *testing.T) {
	code, _, stderr := runCLI([]string{"-verify", "-"}, "ld r2, r9, 0\nhalt\n")
	if code != 1 {
		t.Errorf("provably faulting program booted: exit %d", code)
	}
	if !strings.Contains(stderr, "refusing to boot") || !strings.Contains(stderr, "<stdin>:1") {
		t.Errorf("refusal diagnostic: %q", stderr)
	}
	// The same gate passes clean programs through to a normal run.
	code, out, _ := runCLI([]string{"-verify", "-"}, countdown)
	if code != 0 || !strings.Contains(out, "halted") {
		t.Errorf("clean program: exit %d out %q", code, out)
	}
}

// TestJITVerifyRefusesBeforeCompiling: the static gate must fire before
// the translator sees a single instruction — `-jit -verify` on a
// provably-faulting program refuses to boot (nothing runs, nothing
// compiles), exactly like `-verify` alone.
func TestJITVerifyRefusesBeforeCompiling(t *testing.T) {
	code, out, stderr := runCLI([]string{"-jit", "-verify", "-"}, "ld r2, r9, 0\nhalt\n")
	if code != 1 {
		t.Errorf("provably faulting program booted under -jit: exit %d", code)
	}
	if !strings.Contains(stderr, "refusing to boot") {
		t.Errorf("refusal diagnostic: %q", stderr)
	}
	if strings.Contains(out, "thread") || strings.Contains(out, "cycles=") {
		t.Errorf("machine booted despite refusal:\n%s", out)
	}
}

// TestJITOutputMatchesInterpreter: the full human-readable report —
// registers, cycles, instructions, cache and TLB counters — must be
// byte-identical with the translator on and off.
func TestJITOutputMatchesInterpreter(t *testing.T) {
	// Hot enough to cross the compile threshold (64).
	hot := "ldi r3, 500\nloop: subi r3, r3, 1\nbnez r3, loop\nldi r4, 77\nhalt\n"
	codeJ, outJ, _ := runCLI([]string{"-jit", "-v", "-"}, hot)
	codeI, outI, _ := runCLI([]string{"-jit=false", "-v", "-"}, hot)
	if codeJ != 0 || codeI != 0 {
		t.Fatalf("exits: jit %d interp %d", codeJ, codeI)
	}
	if outJ != outI {
		t.Errorf("output diverges:\n-- jit --\n%s\n-- interp --\n%s", outJ, outI)
	}
}
