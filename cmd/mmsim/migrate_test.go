package main

import (
	"os"
	"strings"
	"testing"
)

// -checkpoint-ls lists every generation of a store: gen, parent, kind
// (base/delta), capture cycle and byte size.
func TestCheckpointLs(t *testing.T) {
	dir := t.TempDir()
	code, _, errOut := runCLI([]string{
		"-checkpoint-dir", dir, "-checkpoint-every", "500", "-"},
		longCountdown)
	if code != 0 {
		t.Fatalf("checkpointed run exit %d: %s", code, errOut)
	}

	code, out, errOut := runCLI([]string{"-checkpoint-ls", "-checkpoint-dir", dir}, "")
	if code != 0 {
		t.Fatalf("-checkpoint-ls exit %d: %s", code, errOut)
	}
	for _, want := range []string{"gen", "parent", "kind", "cycle", "bytes", "base", "generation(s) in"} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "delta") {
		t.Errorf("no delta generations listed (base-every should have produced some):\n%s", out)
	}
	// One row per generation plus header and summary.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	gens := len(ents) / 2 // image + marker per generation
	if lines := strings.Count(strings.TrimSpace(out), "\n") + 1; lines != gens+2 {
		t.Errorf("listing has %d lines for %d generations:\n%s", lines, gens, out)
	}
}

// The headline migration flow: a run interrupted by a live migration
// finishes on the standby replica with the uninterrupted register
// file, and the committed image restores CROSS-PROCESS via -restore.
func TestMigrateThenRestoreMatchesUninterrupted(t *testing.T) {
	dir := t.TempDir()

	code, refOut, errOut := runCLI([]string{"-"}, longCountdown)
	if code != 0 {
		t.Fatalf("reference run exit %d: %s", code, errOut)
	}
	ref := regsLine(t, refOut)

	code, out, errOut := runCLI([]string{
		"-migrate-at", "2000", "-migrate-to", dir, "-"},
		longCountdown)
	if code != 0 {
		t.Fatalf("migrated run exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "migration committed after") {
		t.Fatalf("missing migration banner:\n%s", out)
	}
	if !strings.Contains(out, "halted") {
		t.Fatalf("migrated run did not finish:\n%s", out)
	}
	if got := regsLine(t, out); got != ref {
		t.Errorf("run diverged after cutover:\n got %s\nwant %s", got, ref)
	}

	// The committed image is an ordinary checkpoint store: a separate
	// process resumes it from the cutover point.
	code, out, errOut = runCLI([]string{"-restore", "-checkpoint-dir", dir}, "")
	if code != 0 {
		t.Fatalf("cross-process restore exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "halted") {
		t.Errorf("restored standby did not finish:\n%s", out)
	}
	if got := regsLine(t, out); got != ref {
		t.Errorf("cross-process resume diverged:\n got %s\nwant %s", got, ref)
	}
}

// A program that halts before the armed cycle reports there was
// nothing to migrate and still finishes normally.
func TestMigrateAfterHaltIsNoop(t *testing.T) {
	dir := t.TempDir()
	code, out, errOut := runCLI([]string{
		"-migrate-at", "40000000", "-migrate-to", dir, "-"},
		longCountdown)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "nothing to migrate") {
		t.Errorf("missing no-op banner:\n%s", out)
	}
	if !strings.Contains(out, "halted") {
		t.Errorf("run did not finish:\n%s", out)
	}
}

func TestMigrateFlagValidation(t *testing.T) {
	if code, _, errOut := runCLI([]string{"-migrate-at", "100", "-"}, "halt\n"); code != 2 ||
		!strings.Contains(errOut, "go together") {
		t.Errorf("-migrate-at without -migrate-to: exit %d, stderr %s", code, errOut)
	}
	if code, _, errOut := runCLI([]string{"-migrate-to", "/tmp/x", "-"}, "halt\n"); code != 2 ||
		!strings.Contains(errOut, "go together") {
		t.Errorf("-migrate-to without -migrate-at: exit %d, stderr %s", code, errOut)
	}
	if code, _, errOut := runCLI([]string{
		"-migrate-at", "100", "-migrate-to", "/tmp/x", "-checkpoint-dir", "/tmp/y", "-"}, "halt\n"); code != 2 ||
		!strings.Contains(errOut, "does not combine") {
		t.Errorf("-migrate-at with -checkpoint-dir: exit %d, stderr %s", code, errOut)
	}
	if code, _, errOut := runCLI([]string{"-checkpoint-ls"}, ""); code != 2 ||
		!strings.Contains(errOut, "needs -checkpoint-dir") {
		t.Errorf("-checkpoint-ls without dir: exit %d, stderr %s", code, errOut)
	}
}
