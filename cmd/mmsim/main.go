// Command mmsim boots the simulated M-Machine, loads an assembled
// program into a fresh code segment, runs it as a user thread, and
// reports the final register file and machine statistics.
//
// The program receives a read/write pointer to a scratch data segment
// in r1 (size set by -data). Multiple copies can be run as concurrent
// threads from distinct protection domains with -threads.
//
// Usage:
//
//	mmsim prog.s
//	mmsim -threads 4 -data 65536 -scheme flush-tlb -wide prog.s
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/asm"
	"repro/internal/capverify"
	"repro/internal/jit"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/migrate"
	"repro/internal/persist"
	"repro/internal/telemetry"
	"repro/internal/word"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mmsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threads := fs.Int("threads", 1, "number of concurrent threads (each its own protection domain)")
	dataBytes := fs.Uint64("data", 4096, "scratch data segment size handed to each thread in r1")
	maxCycles := fs.Uint64("max-cycles", 50_000_000, "cycle budget")
	schemeName := fs.String("scheme", "guarded", "protection scheme: guarded | flush-tlb | flush-all")
	verbose := fs.Bool("v", false, "dump full register file per thread")
	trace := fs.Bool("trace", false, "print every issued instruction (cycle, cluster, thread, pc)")
	traceOut := fs.String("trace-out", "", "write the full event trace to a file: .jsonl suffix = JSON Lines, otherwise Chrome trace_event JSON (load in chrome://tracing or Perfetto)")
	metrics := fs.Bool("metrics", false, "print a JSON snapshot of the metrics registry after the run")
	serveAddr := fs.String("serve", "", "serve live metrics over HTTP while running (host:port; port 0 picks a free port): /metrics, /metrics.json, /healthz, /trace")
	serveFor := fs.Duration("serve-for", 0, "with -serve: keep the endpoint up this long after the run finishes (lets mmtop watch a short program)")
	flightOut := fs.String("flight-out", "", "arm the flight recorder and dump its ring (JSONL) to this file if the machine takes an unrecovered fault")
	profile := fs.Bool("profile", false, "sample executed instruction addresses and print a flat hot-spot profile")
	wide := fs.Bool("wide", false, "enable 3-wide LIW issue per cluster")
	debug := fs.Bool("debug", false, "interactive debugger (program must come from a file, not stdin)")
	verify := fs.Bool("verify", false, "statically verify the program first; refuse to boot it if it provably faults")
	useJIT := fs.Bool("jit", true, "enable the check-eliding superblock translator (bit-identical results; -trace/-profile/-debug fall back to the interpreter)")
	ckptDir := fs.String("checkpoint-dir", "", "write incremental crash-safe checkpoints (base + dirty-page deltas) to this directory while running")
	ckptEvery := fs.Uint64("checkpoint-every", 250_000, "with -checkpoint-dir: cycles between checkpoint generations")
	restore := fs.Bool("restore", false, "boot from the newest intact generation in -checkpoint-dir instead of loading a program (pass the same -scheme/-wide as the original run)")
	ckptLs := fs.Bool("checkpoint-ls", false, "list the generations in -checkpoint-dir (gen, parent, kind, cycle, bytes) and exit")
	migrateAt := fs.Uint64("migrate-at", 0, "live-migrate the machine after this many cycles: iterative pre-copy over a simulated wire, fingerprint handshake, then cut the run over to the standby replica (requires -migrate-to)")
	migrateTo := fs.String("migrate-to", "", "with -migrate-at: commit the migrated image as a checkpoint store in this directory (resume it cross-process with -restore -checkpoint-dir)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *ckptLs {
		if *ckptDir == "" {
			fmt.Fprintln(stderr, "mmsim: -checkpoint-ls needs -checkpoint-dir")
			return 2
		}
		st, err := persist.Open(*ckptDir, 1)
		if err != nil {
			fmt.Fprintln(stderr, "mmsim:", err)
			return 1
		}
		descs, err := st.Describe()
		if err != nil {
			fmt.Fprintln(stderr, "mmsim:", err)
			return 1
		}
		fmt.Fprintf(stdout, "%-5s %-6s %-5s %12s %12s\n", "gen", "parent", "kind", "cycle", "bytes")
		for _, d := range descs {
			kind := "base"
			if d.Delta {
				kind = "delta"
			}
			fmt.Fprintf(stdout, "%-5d %-6d %-5s %12d %12d\n", d.Gen, d.Parent, kind, d.Cycle, d.Bytes)
		}
		fmt.Fprintf(stdout, "mmsim: %d generation(s) in %s\n", len(descs), *ckptDir)
		return 0
	}
	if (*migrateAt == 0) != (*migrateTo == "") {
		fmt.Fprintln(stderr, "mmsim: -migrate-at and -migrate-to go together")
		return 2
	}
	if *migrateAt > 0 && *ckptDir != "" {
		fmt.Fprintln(stderr, "mmsim: -migrate-at does not combine with -checkpoint-dir (the migrated image becomes its own store)")
		return 2
	}
	if *migrateAt > 0 && *debug {
		fmt.Fprintln(stderr, "mmsim: -migrate-at does not combine with -debug")
		return 2
	}
	if *restore {
		if *ckptDir == "" {
			fmt.Fprintln(stderr, "mmsim: -restore needs -checkpoint-dir")
			return 2
		}
		if fs.NArg() != 0 {
			fmt.Fprintln(stderr, "mmsim: -restore resumes the checkpointed program; do not pass one")
			return 2
		}
	} else if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: mmsim [flags] <file.s | ->")
		return 2
	}

	var prog *asm.Program
	if !*restore {
		var src []byte
		var err error
		if name := fs.Arg(0); name == "-" {
			src, err = io.ReadAll(stdin)
		} else {
			src, err = os.ReadFile(name)
		}
		if err != nil {
			fmt.Fprintln(stderr, "mmsim:", err)
			return 1
		}

		display := fs.Arg(0)
		if display == "-" {
			display = "<stdin>"
		}
		prog, err = asm.AssembleNamed(display, string(src))
		if err != nil {
			fmt.Fprintln(stderr, "mmsim:", err)
			return 1
		}
		if *verify {
			rep := capverify.Verify(prog, capverify.Config{DataBytes: *dataBytes})
			if rep.HasFault() {
				for _, d := range rep.Faults() {
					fmt.Fprintln(stderr, "mmsim:", d)
				}
				fmt.Fprintln(stderr, "mmsim: program provably faults; refusing to boot (run mmlint for details)")
				return 1
			}
		}
	}

	cfg := machine.MMachine()
	cfg.WideIssue = *wide
	switch *schemeName {
	case "guarded":
		cfg.Scheme = machine.SchemeGuarded
	case "flush-tlb":
		cfg.Scheme = machine.SchemeFlushTLB
	case "flush-all":
		cfg.Scheme = machine.SchemeFlushAll
	default:
		fmt.Fprintf(stderr, "mmsim: unknown scheme %q\n", *schemeName)
		return 2
	}
	var store *persist.Store
	if *ckptDir != "" {
		st, err := persist.Open(*ckptDir, 1)
		if err != nil {
			fmt.Fprintln(stderr, "mmsim:", err)
			return 1
		}
		store = st
	}
	var k *kernel.Kernel
	if *restore {
		k2, gen, cycle, err := persist.RestoreNewest(store, cfg)
		if err != nil {
			fmt.Fprintln(stderr, "mmsim: restore:", err)
			return 1
		}
		k = k2
		fmt.Fprintf(stdout, "mmsim: restored generation %d (captured at cycle %d) from %s\n", gen, cycle, *ckptDir)
	} else {
		k2, err := kernel.New(cfg)
		if err != nil {
			fmt.Fprintln(stderr, "mmsim:", err)
			return 1
		}
		k = k2
	}
	var saver *persist.Saver
	if store != nil {
		sv, err := persist.NewSaver(store, persist.DefaultBaseEvery)
		if err != nil {
			fmt.Fprintln(stderr, "mmsim:", err)
			return 1
		}
		saver = sv
	}
	if *useJIT {
		// Before RegisterMetrics so the jit.* counters are published.
		k.M.EnableJIT(jit.DefaultConfig())
	}
	// All tracing runs through one telemetry.Tracer: -trace attaches a
	// human-readable sink for instruction events, -trace-out streams the
	// full event set to a file.
	var tracer *telemetry.Tracer
	if *trace || *traceOut != "" {
		tracer = telemetry.NewTracer(telemetry.DefaultRingSize)
		k.SetTracer(tracer)
	}
	if *trace {
		tracer.Enable(telemetry.EvInstr)
		tracer.Attach(telemetry.SinkFunc(func(ev telemetry.Event) {
			if ev.Kind == telemetry.EvInstr {
				fmt.Fprintf(stdout, "[%8d] c%d t%d %#010x  %s\n", ev.Cycle, ev.Cluster, ev.Thread, ev.Addr, ev.Detail)
			}
		}))
	}
	var closeTrace func() error
	if *traceOut != "" {
		tracer.EnableAll()
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(stderr, "mmsim:", err)
			return 1
		}
		if strings.HasSuffix(*traceOut, ".jsonl") {
			sink := telemetry.NewJSONLSink(f)
			tracer.Attach(sink)
			closeTrace = func() error {
				if err := sink.Err(); err != nil {
					f.Close()
					return err
				}
				return f.Close()
			}
		} else {
			sink := telemetry.NewChromeSink(f)
			tracer.Attach(sink)
			closeTrace = func() error {
				if err := sink.Close(); err != nil {
					f.Close()
					return err
				}
				return f.Close()
			}
		}
	}
	var prof *telemetry.Profiler
	if *profile {
		prof = telemetry.NewProfiler(1)
		k.M.Profiler = prof
	}
	var reg *telemetry.Registry
	if *metrics || *serveAddr != "" {
		reg = telemetry.NewRegistry()
		if *serveAddr != "" {
			// A live endpoint wants the latency distributions too.
			k.M.EnableHistograms()
		}
		k.RegisterMetrics(reg)
		if store != nil {
			store.RegisterMetrics(reg, "persist")
		}
	}
	var srv *http.Server
	if *serveAddr != "" {
		s, addr, err := telemetry.Serve(*serveAddr, reg, tracer)
		if err != nil {
			fmt.Fprintln(stderr, "mmsim:", err)
			return 1
		}
		srv = s
		fmt.Fprintf(stdout, "mmsim: serving metrics on http://%s/metrics\n", addr)
	}
	if *flightOut != "" {
		k.M.Flight = telemetry.NewFlightRecorder(telemetry.DefaultFlightSize)
		dumped := false
		k.M.OnFlightDump = func(reason string) {
			if dumped {
				return
			}
			dumped = true
			f, err := os.Create(*flightOut)
			if err != nil {
				fmt.Fprintln(stderr, "mmsim: flight-out:", err)
				return
			}
			defer f.Close()
			if err := k.M.Flight.Dump(f, reason, 0); err != nil {
				fmt.Fprintln(stderr, "mmsim: flight-out:", err)
				return
			}
			fmt.Fprintf(stderr, "mmsim: flight recorder dumped to %s (%s)\n", *flightOut, reason)
		}
	}

	var ths []*machine.Thread
	var code []codeSeg
	if *restore {
		// The checkpoint carries the threads; there is no program to load
		// (and no verifier contract to hand the translator).
		ths = k.M.Threads()
	}
	for i := 0; !*restore && i < *threads; i++ {
		ip, err := k.LoadProgram(prog, false)
		if err != nil {
			fmt.Fprintln(stderr, "mmsim:", err)
			return 1
		}
		seg, err := k.AllocSegment(*dataBytes)
		if err != nil {
			fmt.Fprintln(stderr, "mmsim:", err)
			return 1
		}
		th, err := k.Spawn(k.NewDomain(), ip, map[int]word.Word{1: seg.Word()})
		if err != nil {
			fmt.Fprintln(stderr, "mmsim:", err)
			return 1
		}
		// This loader establishes exactly capverify's entry contract
		// (r1 = RW pointer to a >= -data byte segment, nothing else),
		// so the translator may elide the checks the verifier proved.
		k.M.JITRegister(prog, ip.Addr(), capverify.Config{DataBytes: *dataBytes})
		ths = append(ths, th)
		code = append(code, codeSeg{start: ip.Addr(), size: prog.ByteSize(), thread: th.ID})
	}

	if *debug {
		if fs.Arg(0) == "-" {
			fmt.Fprintln(stderr, "mmsim: -debug needs the program from a file (stdin drives the debugger)")
			return 2
		}
		debugREPL(k, stdin, stdout, *maxCycles)
	} else if *migrateAt > 0 {
		budget := *migrateAt
		if budget > *maxCycles {
			budget = *maxCycles
		}
		ran := k.Run(budget)
		if k.M.Done() {
			fmt.Fprintln(stdout, "mmsim: program finished before -migrate-at; nothing to migrate")
		} else {
			recv := migrate.NewReceiver()
			link := migrate.NewLink(migrate.LinkConfig{})
			link.Deliver = recv.Deliver
			rep, err := migrate.Run(k, link, recv, func(c uint64) { ran += k.Run(c) }, migrate.Config{})
			if err != nil {
				fmt.Fprintln(stderr, "mmsim: migrate:", err)
				return 1
			}
			k2, err := kernel.Restore(cfg, rep.Image)
			if err != nil {
				fmt.Fprintln(stderr, "mmsim: migrate: standby boot:", err)
				return 1
			}
			mst, err := persist.Open(*migrateTo, 1)
			if err != nil {
				fmt.Fprintln(stderr, "mmsim:", err)
				return 1
			}
			sv, err := persist.NewSaver(mst, persist.DefaultBaseEvery)
			if err != nil {
				fmt.Fprintln(stderr, "mmsim:", err)
				return 1
			}
			if _, err := sv.Capture(k2, k.M.Cycle()); err != nil {
				fmt.Fprintln(stderr, "mmsim: migrate: commit image:", err)
				return 1
			}
			fmt.Fprintf(stdout, "mmsim: migration committed after %d rounds (%d pages, %d B on the wire, stw %d cycles); standby image is generation %d in %s\n",
				len(rep.Rounds), rep.TotalPages(), rep.Link.PayloadBytes, rep.STWCycles, sv.Gen(), *migrateTo)
			// Cutover: the rest of the run executes on the standby replica.
			k = k2
			if ran < *maxCycles {
				k.Run(*maxCycles - ran)
			}
			ths = k.M.Threads()
		}
	} else if saver == nil {
		k.Run(*maxCycles)
	} else {
		// Run in checkpoint-sized chunks: after each chunk, capture a
		// generation (a full base when the chain needs re-anchoring,
		// otherwise a dirty-page delta) and commit it atomically.
		for ran := uint64(0); ran < *maxCycles && !k.M.Done(); {
			chunk := *ckptEvery
			if rest := *maxCycles - ran; chunk > rest {
				chunk = rest
			}
			stepped := k.Run(chunk)
			if stepped == 0 {
				break
			}
			ran += stepped
			if _, err := saver.Capture(k, k.M.Cycle()); err != nil {
				fmt.Fprintln(stderr, "mmsim: checkpoint:", err)
				return 1
			}
		}
		fmt.Fprintf(stdout, "mmsim: %d checkpoint generation(s) in %s (newest gen %d)\n",
			store.Stats().Captures, *ckptDir, saver.Gen())
	}

	exit := 0
	for _, th := range ths {
		fmt.Fprintf(stdout, "thread %d: %v", th.ID, th.State)
		if th.Fault != nil {
			fmt.Fprintf(stdout, " (%v)", th.Fault)
			exit = 1
		}
		fmt.Fprintf(stdout, "  instret=%d\n", th.Instret)
		if *verbose {
			for r := 0; r < len(th.Regs); r++ {
				if !th.Regs[r].IsZero() {
					fmt.Fprintf(stdout, "  r%-2d = %v\n", r, th.Regs[r])
				}
			}
		} else {
			fmt.Fprintf(stdout, "  r1=%v r2=%v r3=%v r4=%v\n", th.Reg(1), th.Reg(2), th.Reg(3), th.Reg(4))
		}
	}

	st := k.M.Stats()
	cs := k.M.Cache.Stats()
	ts := k.M.Space.TLB.Stats()
	fmt.Fprintf(stdout, "cycles=%d instructions=%d ipc=%.2f switches=%d domain-swaps=%d stalls=%d\n",
		st.Cycles, st.Instructions, float64(st.Instructions)/float64(st.Cycles),
		st.Switches, st.DomainSwaps, st.StallCycles)
	fmt.Fprintf(stdout, "cache: hits=%d misses=%d conflicts=%d  tlb: hits=%d misses=%d flushes=%d\n",
		cs.Hits, cs.Misses, cs.ConflictCycles, ts.Hits, ts.Misses, ts.Flushes)

	if prof != nil {
		fmt.Fprintf(stdout, "\nflat profile (%d samples):\n%s",
			prof.Samples(), prof.Report(20, symbolizer(prog, code)))
	}
	if reg != nil {
		fmt.Fprintln(stdout, "\nmetrics:")
		if err := reg.Snapshot().WriteJSON(stdout); err != nil {
			fmt.Fprintln(stderr, "mmsim:", err)
			exit = 1
		}
		fmt.Fprintln(stdout)
	}
	if closeTrace != nil {
		if err := closeTrace(); err != nil {
			fmt.Fprintln(stderr, "mmsim: trace-out:", err)
			exit = 1
		}
	}
	if srv != nil {
		if *serveFor > 0 {
			time.Sleep(*serveFor)
		}
		srv.Close()
	}
	return exit
}

// codeSeg records where one thread's copy of the program was loaded, so
// the profiler can map sampled instruction addresses back to labels.
type codeSeg struct {
	start, size uint64
	thread      int
}

// symbolizer resolves a sampled address to "label+words" within the
// loaded program (annotated with the owning thread when several copies
// are loaded), falling back to the raw address.
func symbolizer(prog *asm.Program, code []codeSeg) func(addr uint64) string {
	if prog == nil { // restored run: no program image to symbolize against
		return func(addr uint64) string { return fmt.Sprintf("%#x", addr) }
	}
	type lab struct {
		word int
		name string
	}
	labels := make([]lab, 0, len(prog.Labels))
	for name, idx := range prog.Labels {
		labels = append(labels, lab{word: idx, name: name})
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].word < labels[j].word })
	return func(addr uint64) string {
		for _, cs := range code {
			if addr < cs.start || addr >= cs.start+cs.size {
				continue
			}
			w := int((addr - cs.start) / word.BytesPerWord)
			name := fmt.Sprintf("+%d", w)
			for _, l := range labels {
				if l.word > w {
					break
				}
				name = l.name
				if d := w - l.word; d > 0 {
					name = fmt.Sprintf("%s+%d", l.name, d)
				}
			}
			if len(code) > 1 {
				name = fmt.Sprintf("%s (t%d)", name, cs.thread)
			}
			return name
		}
		return fmt.Sprintf("%#x", addr)
	}
}

// debugREPL drives the machine interactively: b/w set break- and
// watchpoints, c continues, s steps cycles, r dumps registers, d
// disassembles, q quits.
func debugREPL(k *kernel.Kernel, stdin io.Reader, stdout io.Writer, maxCycles uint64) {
	d := machine.Attach(k.M)
	defer d.Detach()
	sc := bufio.NewScanner(stdin)
	fmt.Fprintln(stdout, "(mdb) commands: b <hex> | w <hex> | c | s [n] | r | d <hex> | q")
	for {
		fmt.Fprint(stdout, "(mdb) ")
		if !sc.Scan() {
			return
		}
		f := strings.Fields(sc.Text())
		if len(f) == 0 {
			continue
		}
		arg := func() (uint64, bool) {
			if len(f) < 2 {
				fmt.Fprintln(stdout, "need an address")
				return 0, false
			}
			v, err := strconv.ParseUint(strings.TrimPrefix(f[1], "0x"), 16, 64)
			if err != nil {
				fmt.Fprintln(stdout, "bad address:", f[1])
				return 0, false
			}
			return v, true
		}
		switch f[0] {
		case "q":
			return
		case "b":
			if a, ok := arg(); ok {
				d.SetBreakpoint(a)
				fmt.Fprintf(stdout, "breakpoint @%#x\n", a)
			}
		case "w":
			if a, ok := arg(); ok {
				if err := d.Watch(a); err != nil {
					fmt.Fprintln(stdout, "watch:", err)
				} else {
					fmt.Fprintf(stdout, "watchpoint @%#x\n", a)
				}
			}
		case "c":
			if ev := d.Continue(maxCycles); ev != nil {
				fmt.Fprintln(stdout, ev)
			} else {
				fmt.Fprintf(stdout, "stopped: all threads done (cycle %d)\n", k.M.Cycle())
			}
		case "s":
			n := 1
			if len(f) > 1 {
				if v, err := strconv.Atoi(f[1]); err == nil {
					n = v
				}
			}
			for i := 0; i < n; i++ {
				if ev := d.StepCycle(); ev != nil {
					fmt.Fprintln(stdout, ev)
					break
				}
			}
			fmt.Fprintf(stdout, "cycle %d\n", k.M.Cycle())
		case "r":
			for _, th := range k.M.Threads() {
				fmt.Fprintf(stdout, "thread %d %v ip=%#x\n", th.ID, th.State, th.IP.Addr())
				for r := 0; r < len(th.Regs); r++ {
					if !th.Regs[r].IsZero() {
						fmt.Fprintf(stdout, "  r%-2d = %v\n", r, th.Regs[r])
					}
				}
			}
		case "d":
			if a, ok := arg(); ok {
				if text, err := d.Disassemble(a); err == nil {
					fmt.Fprintf(stdout, "%#x: %s\n", a, text)
				} else {
					fmt.Fprintln(stdout, "disassemble:", err)
				}
			}
		default:
			fmt.Fprintln(stdout, "unknown command")
		}
	}
}
