package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func runCLI(args ...string) (int, string, string) {
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestList(t *testing.T) {
	code, out, _ := runCLI("-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, id := range []string{"E1 ", "E6 ", "E20"} {
		if !strings.Contains(out, id) {
			t.Errorf("list missing %q:\n%s", id, out)
		}
	}
}

func TestRunSingle(t *testing.T) {
	code, out, _ := runCLI("-run", "E1")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "=== E1:") || !strings.Contains(out, "permission") {
		t.Errorf("output:\n%s", out)
	}
}

func TestUnknownID(t *testing.T) {
	code, _, stderr := runCLI("-run", "E99")
	if code != 2 || !strings.Contains(stderr, "unknown id") {
		t.Errorf("exit %d stderr %q", code, stderr)
	}
}

func TestBadFlag(t *testing.T) {
	if code, _, _ := runCLI("-nope"); code != 2 {
		t.Errorf("exit %d", code)
	}
}

func TestJSONSingleExperiment(t *testing.T) {
	path := t.TempDir() + "/e1.json"
	code, _, stderr := runCLI("-run", "E1", "-json", path)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var recs []record
	if err := json.Unmarshal(raw, &recs); err != nil {
		t.Fatalf("json: %v", err)
	}
	if len(recs) != 1 || recs[0].ID != "E1" || recs[0].Title == "" {
		t.Fatalf("records: %+v", recs)
	}
	if len(recs[0].Tables) == 0 || len(recs[0].Tables[0].Rows) == 0 {
		t.Errorf("E1 record has no parsed tables: %+v", recs[0])
	}
}

func TestJSONCarriesTelemetryMetrics(t *testing.T) {
	path := t.TempDir() + "/e22.json"
	code, _, stderr := runCLI("-run", "E22", "-json", path)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var recs []record
	if err := json.Unmarshal(raw, &recs); err != nil {
		t.Fatalf("json: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("records: %d", len(recs))
	}
	// One counter from every layer must survive the round trip.
	for _, name := range []string{"machine.cycles", "cache.l1.accesses", "vm.translations", "noc.msgs"} {
		if recs[0].Metrics[name] <= 0 {
			t.Errorf("metric %s = %v in JSON output", name, recs[0].Metrics[name])
		}
	}
}
