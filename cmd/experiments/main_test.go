package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(args ...string) (int, string, string) {
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestList(t *testing.T) {
	code, out, _ := runCLI("-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, id := range []string{"E1 ", "E6 ", "E20"} {
		if !strings.Contains(out, id) {
			t.Errorf("list missing %q:\n%s", id, out)
		}
	}
}

func TestRunSingle(t *testing.T) {
	code, out, _ := runCLI("-run", "E1")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "=== E1:") || !strings.Contains(out, "permission") {
		t.Errorf("output:\n%s", out)
	}
}

func TestUnknownID(t *testing.T) {
	code, _, stderr := runCLI("-run", "E99")
	if code != 2 || !strings.Contains(stderr, "unknown id") {
		t.Errorf("exit %d stderr %q", code, stderr)
	}
}

func TestBadFlag(t *testing.T) {
	if code, _, _ := runCLI("-nope"); code != 2 {
		t.Errorf("exit %d", code)
	}
}
