// Command experiments regenerates the paper's figures and quantitative
// claims as printed tables (the per-experiment index lives in
// DESIGN.md; paper-vs-measured comparisons in EXPERIMENTS.md).
//
// Usage:
//
//	experiments                      # run everything, E1..E24
//	experiments -run E6              # run one experiment
//	experiments -list                # list experiment ids and titles
//	experiments -json out.json       # also write machine-readable records
//	experiments -run E22 -json -     # JSON for one experiment to stdout
//
// The JSON output contains one record per experiment: its id and title,
// every table of the rendered report recovered as structured rows
// (stats.ParseTables), and — for experiments that export them — a
// telemetry metrics snapshot. docs/OBSERVABILITY.md documents the
// schema and how BENCH_*.json files are derived from it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// record is one experiment's machine-readable result.
type record struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	Tables  []stats.TableData  `json:"tables"`
	Metrics telemetry.Snapshot `json:"metrics,omitempty"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runID := fs.String("run", "", "run a single experiment by id (e.g. E6)")
	list := fs.Bool("list", false, "list experiments and exit")
	jsonOut := fs.String("json", "", `also write machine-readable records to this file ("-" = stdout)`)
	workers := fs.Int("workers", 0, "experiment worker pool size (0 = GOMAXPROCS, 1 = serial); output is identical either way")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var selected []experiments.Experiment
	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "%-4s %s\n", e.ID, e.Title)
		}
		return 0
	case *runID != "":
		e, ok := experiments.Lookup(*runID)
		if !ok {
			fmt.Fprintf(stderr, "experiments: unknown id %q (try -list)\n", *runID)
			return 2
		}
		selected = []experiments.Experiment{e}
	default:
		selected = experiments.All()
	}

	outs, errs := experiments.RunList(selected, *workers)
	var records []record
	for i, e := range selected {
		out, err := outs[i], errs[i]
		if err != nil {
			fmt.Fprintf(stderr, "experiments: %s: %v\n", e.ID, err)
			return 1
		}
		fmt.Fprintf(stdout, "=== %s: %s ===\n%s", e.ID, e.Title, out)
		if len(selected) > 1 {
			fmt.Fprintln(stdout)
		}
		if *jsonOut == "" {
			continue
		}
		rec := record{ID: e.ID, Title: e.Title, Tables: stats.ParseTables(out)}
		if e.Metrics != nil {
			snap, err := e.Metrics()
			if err != nil {
				fmt.Fprintf(stderr, "experiments: %s metrics: %v\n", e.ID, err)
				return 1
			}
			rec.Metrics = snap
		}
		records = append(records, rec)
	}

	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, records, stdout); err != nil {
			fmt.Fprintln(stderr, "experiments:", err)
			return 1
		}
	}
	return 0
}

func writeJSON(path string, records []record, stdout io.Writer) error {
	var w io.Writer = stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}
