// Command experiments regenerates the paper's figures and quantitative
// claims as printed tables (the per-experiment index lives in
// DESIGN.md; paper-vs-measured comparisons in EXPERIMENTS.md).
//
// Usage:
//
//	experiments            # run everything, E1..E21
//	experiments -run E6    # run one experiment
//	experiments -list      # list experiment ids and titles
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runID := fs.String("run", "", "run a single experiment by id (e.g. E6)")
	list := fs.Bool("list", false, "list experiments and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "%-4s %s\n", e.ID, e.Title)
		}
	case *runID != "":
		e, ok := experiments.Lookup(*runID)
		if !ok {
			fmt.Fprintf(stderr, "experiments: unknown id %q (try -list)\n", *runID)
			return 2
		}
		out, err := e.Run()
		if err != nil {
			fmt.Fprintf(stderr, "experiments: %s: %v\n", e.ID, err)
			return 1
		}
		fmt.Fprintf(stdout, "=== %s: %s ===\n%s", e.ID, e.Title, out)
	default:
		out, err := experiments.RunAll()
		fmt.Fprint(stdout, out)
		if err != nil {
			fmt.Fprintln(stderr, "experiments:", err)
			return 1
		}
	}
	return 0
}
