// Command mmlint statically verifies MAP assembly programs against the
// guarded-pointer protection model: it proves which of the hardware's
// dynamic checks (tag, permission, bounds, alignment, privilege,
// control) always pass, and flags check sites that provably fault on
// every execution reaching them — before the program is ever run. The
// capability-flow analysis also reports `leak` diagnostics: pointers a
// protection domain stores or hands across an enter-gated crossing,
// escaping its confinement.
//
// Multiple files are assembled as modules and linked, like mmld.
//
// Exit status: 0 clean (no provable fault), 1 at least one provable
// fault, 2 usage or assembly error. Leaks do not affect the exit
// status: confinement is a property to audit, not an error.
//
// Usage:
//
//	mmlint prog.s                 # verify, print findings
//	mmlint -v prog.s              # also print undischarged (unknown) sites
//	mmlint -stats prog.s          # per-class discharge statistics table
//	mmlint -json main.s lib.s     # link then verify, machine-readable
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/asm"
	"repro/internal/capverify"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// jsonReport is the machine-readable output shape.
type jsonReport struct {
	Programs  []string                    `json:"programs"`
	Abyss     bool                        `json:"abyss"`
	Reachable int                         `json:"reachable_words"`
	Totals    capverify.Counts            `json:"totals"`
	PerClass  map[string]capverify.Counts `json:"per_class"`
	Diags     []capverify.Diag            `json:"diags"`
	Faults    []string                    `json:"faults"`
	Leaks     []capverify.Leak            `json:"leaks"`
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit a machine-readable report")
	verbose := fs.Bool("v", false, "also print unknown (undischarged) check sites")
	stats := fs.Bool("stats", false, "print per-class discharge and retained-site statistics")
	dataBytes := fs.Uint64("data", 4096, "assumed size of the scratch data segment in r1")
	priv := fs.Bool("priv", false, "assume the program starts with an execute-privileged IP")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() < 1 {
		fmt.Fprintln(stderr, "usage: mmlint [-json] [-v] [-stats] [-data n] [-priv] <file.s | -> [file.s ...]")
		return 2
	}

	prog, err := load(fs.Args(), stdin)
	if err != nil {
		fmt.Fprintln(stderr, "mmlint:", err)
		return 2
	}

	rep := capverify.Verify(prog, capverify.Config{DataBytes: *dataBytes, Privileged: *priv})

	switch {
	case *jsonOut:
		out := jsonReport{
			Programs:  fs.Args(),
			Abyss:     rep.Abyss,
			Reachable: rep.ReachableWords,
			Totals:    rep.Totals,
			PerClass:  make(map[string]capverify.Counts),
			Diags:     rep.Diags,
			Faults:    []string{},
			Leaks:     rep.Leaks,
		}
		for c := capverify.Class(0); c < capverify.NumClasses; c++ {
			if rep.PerClass[c].Total() > 0 {
				out.PerClass[c.String()] = rep.PerClass[c]
			}
		}
		for _, d := range rep.Faults() {
			out.Faults = append(out.Faults, d.String())
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "mmlint:", err)
			return 2
		}
	case *stats:
		printStats(stdout, fs.Args(), rep)
	default:
		for _, d := range rep.Diags {
			if d.Verdict == "fault" || *verbose {
				fmt.Fprintln(stdout, d)
			}
		}
		for _, l := range rep.Leaks {
			fmt.Fprintln(stdout, l)
		}
		if rep.Abyss {
			fmt.Fprintln(stdout, "note: an indirect jump could not be bounded; unknown counts are conservative")
		}
		fmt.Fprint(stdout, rep.Summary())
	}

	if rep.HasFault() {
		return 1
	}
	return 0
}

// printStats renders the check-site census the E25/E30 experiments
// compute, for one program, without running an experiment: per-class
// discharge plus every retained (undischarged) site.
func printStats(w io.Writer, names []string, rep *capverify.Report) {
	fmt.Fprintf(w, "program: %s\n", strings.Join(names, "+"))
	fmt.Fprintf(w, "reachable words: %d   discharge: %.0f%%\n",
		rep.ReachableWords, 100*rep.DischargeRatio())
	if rep.Abyss {
		fmt.Fprintln(w, "note: analysis fell into the abyss; numbers are conservative")
	}
	fmt.Fprintf(w, "%-8s %8s %8s %8s %10s\n", "class", "safe", "dynamic", "fault", "discharge")
	for c := capverify.Class(0); c < capverify.NumClasses; c++ {
		n := rep.PerClass[c]
		if n.Total() == 0 {
			continue
		}
		pct := "-"
		if n.Safe+n.Unknown > 0 {
			pct = fmt.Sprintf("%.0f%%", 100*float64(n.Safe)/float64(n.Safe+n.Unknown))
		}
		fmt.Fprintf(w, "%-8s %8d %8d %8d %10s\n", c, n.Safe, n.Unknown, n.Fault, pct)
	}
	fmt.Fprintf(w, "%-8s %8d %8d %8d %10.0f%%\n", "total",
		rep.Totals.Safe, rep.Totals.Unknown, rep.Totals.Fault, 100*rep.DischargeRatio())
	retained := 0
	for _, d := range rep.Diags {
		if d.Verdict == "unknown" {
			if retained == 0 {
				fmt.Fprintln(w, "retained (dynamic) check sites:")
			}
			retained++
			fmt.Fprintf(w, "  %s\n", d)
		}
	}
	if len(rep.Leaks) > 0 {
		fmt.Fprintln(w, "confinement leaks:")
		for _, l := range rep.Leaks {
			fmt.Fprintf(w, "  %s\n", l)
		}
	}
}

// load assembles the inputs: a single module via AssembleNamed (plain
// file:line positions), several via the module assembler plus linker.
func load(names []string, stdin io.Reader) (*asm.Program, error) {
	read := func(name string) (string, error) {
		if name == "-" {
			b, err := io.ReadAll(stdin)
			return string(b), err
		}
		b, err := os.ReadFile(name)
		return string(b), err
	}
	if len(names) == 1 {
		src, err := read(names[0])
		if err != nil {
			return nil, err
		}
		display := names[0]
		if display == "-" {
			display = "<stdin>"
		}
		return asm.AssembleNamed(display, src)
	}
	var modules []*asm.Module
	for _, name := range names {
		src, err := read(name)
		if err != nil {
			return nil, err
		}
		modName := strings.TrimSuffix(filepath.Base(name), filepath.Ext(name))
		m, err := asm.AssembleModule(modName, src)
		if err != nil {
			return nil, err
		}
		modules = append(modules, m)
	}
	return asm.Link(modules...)
}
