package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runLint(t *testing.T, stdin string, args ...string) (int, string, string) {
	t.Helper()
	var out, errb strings.Builder
	code := run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func TestCleanProgramExitsZero(t *testing.T) {
	code, out, _ := runLint(t, "", filepath.Join("..", "..", "programs", "fib.s"))
	if code != 0 {
		t.Fatalf("exit %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "discharged") {
		t.Errorf("summary missing from output:\n%s", out)
	}
}

func TestProvableFaultExitsOne(t *testing.T) {
	code, out, _ := runLint(t, "\tjmp r1\n", "-")
	if code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "<stdin>:1") || !strings.Contains(out, "permission fault") {
		t.Errorf("fault diagnostic missing position or code:\n%s", out)
	}
}

func TestAssembleErrorExitsTwo(t *testing.T) {
	code, _, errb := runLint(t, "bogus r1\n", "-")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb, "<stdin>:1") && !strings.Contains(errb, "line 1") {
		t.Errorf("assemble error lacks position: %q", errb)
	}
}

func TestUsageExitsTwo(t *testing.T) {
	if code, _, _ := runLint(t, ""); code != 2 {
		t.Errorf("no-args exit %d, want 2", code)
	}
}

func TestJSONOutputAndLinking(t *testing.T) {
	code, out, _ := runLint(t, "", "-json",
		filepath.Join("..", "..", "programs", "usemem.s"),
		filepath.Join("..", "..", "programs", "memlib.s"))
	if code != 0 {
		t.Fatalf("exit %d, want 0\n%s", code, out)
	}
	var rep struct {
		Abyss  bool `json:"abyss"`
		Totals struct {
			Safe  int `json:"safe"`
			Fault int `json:"fault"`
		} `json:"totals"`
		Faults []string `json:"faults"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if rep.Abyss || rep.Totals.Fault != 0 || len(rep.Faults) != 0 || rep.Totals.Safe == 0 {
		t.Errorf("unexpected report: %+v", rep)
	}
}

func TestStatsTable(t *testing.T) {
	code, out, _ := runLint(t, "", "-stats", filepath.Join("..", "..", "programs", "sieve.s"))
	if code != 0 {
		t.Fatalf("exit %d, want 0\n%s", code, out)
	}
	for _, want := range []string{"program:", "discharge", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("-stats output missing %q:\n%s", want, out)
		}
	}
}

// leakSrc restricts an execute pointer to enter-only and jumps through
// it: a domain crossing. The callee stores the caller's r1 capability
// into shared memory — the store must surface as a leak diagnostic.
const leakSrc = `	movip r2
	ldi  r4, =sub
	leab r2, r2, r4
	ldi  r5, 6
	restrict r6, r2, r5
	jmp  r6
sub:
	st   r1, 0, r1
	halt
`

func TestLeakDiagnostics(t *testing.T) {
	code, out, _ := runLint(t, leakSrc, "-")
	if code != 0 {
		t.Fatalf("exit %d, want 0 (leaks are not faults)\n%s", code, out)
	}
	if !strings.Contains(out, `store leaks capability in r1 out of domain "sub"`) {
		t.Errorf("store leak missing:\n%s", out)
	}
	if !strings.Contains(out, "crossing leaks capability") {
		t.Errorf("crossing leak missing:\n%s", out)
	}
}

func TestJSONIncludesLeaks(t *testing.T) {
	code, out, _ := runLint(t, leakSrc, "-json", "-")
	if code != 0 {
		t.Fatalf("exit %d, want 0\n%s", code, out)
	}
	var rep struct {
		Leaks []struct {
			Kind string `json:"kind"`
			Reg  int    `json:"reg"`
			Dom  string `json:"dom"`
		} `json:"leaks"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	var stores int
	for _, l := range rep.Leaks {
		if l.Kind == "store" && l.Reg == 1 && l.Dom == "sub" {
			stores++
		}
	}
	if stores != 1 {
		t.Errorf("want exactly one r1 store leak from sub, got leaks %+v", rep.Leaks)
	}
}

func TestVerboseShowsUnknowns(t *testing.T) {
	f := filepath.Join(t.TempDir(), "u.s")
	// r2 is data-dependent: the lea bounds check stays unknown.
	src := "\tld r2, r1, 0\n\tlea r3, r1, r2\n\thalt\n"
	if err := os.WriteFile(f, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	_, quiet, _ := runLint(t, "", f)
	_, loud, _ := runLint(t, "", "-v", f)
	if strings.Contains(quiet, "unknown bounds") {
		t.Errorf("quiet mode printed unknowns:\n%s", quiet)
	}
	if !strings.Contains(loud, "unknown") {
		t.Errorf("-v did not print unknown sites:\n%s", loud)
	}
}
