// Command mmasm assembles MAP assembly source to a loadable image and
// prints either a disassembly listing or the raw words.
//
// Usage:
//
//	mmasm prog.s            # assemble, print listing
//	mmasm -hex prog.s       # assemble, print one hex word per line
//	mmasm -verify prog.s    # refuse programs with provable capability faults
//	mmasm -                 # read source from stdin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/asm"
	"repro/internal/capverify"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mmasm", flag.ContinueOnError)
	fs.SetOutput(stderr)
	hex := fs.Bool("hex", false, "emit hex words instead of a listing")
	verify := fs.Bool("verify", false, "statically verify capability safety; refuse programs that provably fault")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: mmasm [-hex] [-verify] <file.s | ->")
		return 2
	}

	var src []byte
	var err error
	if name := fs.Arg(0); name == "-" {
		src, err = io.ReadAll(stdin)
	} else {
		src, err = os.ReadFile(name)
	}
	if err != nil {
		fmt.Fprintln(stderr, "mmasm:", err)
		return 1
	}

	display := fs.Arg(0)
	if display == "-" {
		display = "<stdin>"
	}
	prog, err := asm.AssembleNamed(display, string(src))
	if err != nil {
		fmt.Fprintln(stderr, "mmasm:", err)
		return 1
	}
	if *verify {
		rep := capverify.Verify(prog, capverify.Config{})
		if rep.HasFault() {
			for _, d := range rep.Faults() {
				fmt.Fprintln(stderr, "mmasm:", d)
			}
			fmt.Fprintln(stderr, "mmasm: program provably faults; refusing to emit (run mmlint for details)")
			return 1
		}
	}
	if *hex {
		for _, w := range prog.Words {
			fmt.Fprintf(stdout, "%016x\n", w.Bits)
		}
		return 0
	}
	fmt.Fprint(stdout, asm.Disassemble(prog))
	fmt.Fprintf(stdout, "; %d words, %d bytes\n", len(prog.Words), prog.ByteSize())
	return 0
}
