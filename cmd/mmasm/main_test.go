package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args []string, stdin string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func TestAssembleFromStdin(t *testing.T) {
	code, out, _ := runCLI(t, []string{"-"}, "ldi r1, 5\nhalt\n")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "ldi r1, 5") || !strings.Contains(out, "2 words") {
		t.Errorf("listing:\n%s", out)
	}
}

func TestHexOutput(t *testing.T) {
	code, out, _ := runCLI(t, []string{"-hex", "-"}, "halt\n")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	lines := strings.Fields(out)
	if len(lines) != 1 || len(lines[0]) != 16 {
		t.Errorf("hex output: %q", out)
	}
}

func TestFileInput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.s")
	os.WriteFile(path, []byte("nop\nhalt\n"), 0o644)
	code, out, _ := runCLI(t, []string{path}, "")
	if code != 0 || !strings.Contains(out, "nop") {
		t.Errorf("exit %d out %q", code, out)
	}
}

func TestErrors(t *testing.T) {
	if code, _, stderr := runCLI(t, []string{"-"}, "bogus op\n"); code != 1 || !strings.Contains(stderr, "unknown mnemonic") {
		t.Errorf("bad source: exit %d stderr %q", code, stderr)
	}
	if code, _, _ := runCLI(t, nil, ""); code != 2 {
		t.Errorf("no args: exit %d", code)
	}
	if code, _, _ := runCLI(t, []string{"/nonexistent/file.s"}, ""); code != 1 {
		t.Errorf("missing file: exit %d", code)
	}
	if code, _, _ := runCLI(t, []string{"-bogusflag", "-"}, ""); code != 2 {
		t.Errorf("bad flag: exit %d", code)
	}
}

func TestVerifyFlag(t *testing.T) {
	// A clean program assembles as usual.
	if code, _, stderr := runCLI(t, []string{"-verify", "-"}, "ldi r2, 1\nhalt\n"); code != 0 {
		t.Errorf("clean program refused: exit %d stderr %q", code, stderr)
	}
	// A provable capability fault is refused with a located diagnostic.
	code, _, stderr := runCLI(t, []string{"-verify", "-"}, "nop\njmp r1\n")
	if code != 1 {
		t.Errorf("faulting program accepted: exit %d", code)
	}
	if !strings.Contains(stderr, "<stdin>:2") || !strings.Contains(stderr, "refusing to emit") {
		t.Errorf("refusal diagnostic missing position: %q", stderr)
	}
}
