package machine

import (
	"testing"

	"repro/internal/core"
	"repro/internal/word"
)

func TestByteLoadStore(t *testing.T) {
	_, th := runOne(t, `
		ldi r2, 0xab
		stb r1, 3, r2      ; unaligned byte store
		ldb r3, r1, 3
		ldb r4, r1, 2      ; neighbouring byte untouched (zero)
		halt
	`, func(m *Machine, th *Thread) {
		th.SetReg(1, dataSeg(t, m, 0x40000, 12).Word())
	})
	if th.State != Halted {
		t.Fatalf("fault: %v", th.Fault)
	}
	if th.Reg(3).Int() != 0xab {
		t.Errorf("ldb = %#x", th.Reg(3).Int())
	}
	if th.Reg(4).Int() != 0 {
		t.Errorf("neighbour byte = %#x", th.Reg(4).Int())
	}
}

func TestByteStoreDestroysCapability(t *testing.T) {
	// Overwriting one byte of a stored capability must clear its tag —
	// otherwise byte stores would be a capability-forging tool.
	_, th := runOne(t, `
		st  r1, 0, r1      ; park the capability in memory
		ldi r2, 0xff
		stb r1, 3, r2      ; corrupt one byte of it
		ld  r3, r1, 0      ; reload the word
		isptr r4, r3
		halt
	`, func(m *Machine, th *Thread) {
		th.SetReg(1, dataSeg(t, m, 0x40000, 12).Word())
	})
	if th.State != Halted {
		t.Fatalf("fault: %v", th.Fault)
	}
	if th.Reg(4).Int() != 0 {
		t.Error("partially overwritten capability kept its tag")
	}
}

func TestSingleByteSegment(t *testing.T) {
	// "one may address 2^54 one-byte segments" (Sec 5.2): a 2^0
	// segment admits exactly its one byte, and word access to it
	// faults (spans the segment).
	_, th := runOne(t, `
		ldi r2, 0x5a
		stb r1, 0, r2
		ldb r3, r1, 0
		ld  r4, r1, 0    ; 8-byte access to a 1-byte segment: bounds fault
		halt
	`, func(m *Machine, th *Thread) {
		m.Space.EnsureMapped(0x40000, 4096)
		oneByte := mustMake(core.PermReadWrite, 0, 0x40005)
		th.SetReg(1, oneByte.Word())
	})
	if th.Reg(3).Int() != 0x5a {
		t.Errorf("byte via 1-byte segment = %#x", th.Reg(3).Int())
	}
	if th.State != Faulted || core.CodeOf(th.Fault) != core.FaultBounds {
		t.Errorf("word access to 1-byte segment: %v %v", th.State, th.Fault)
	}
}

func TestByteBoundsChecked(t *testing.T) {
	_, th := runOne(t, `
		ldb r2, r1, 16   ; one past the end of a 16-byte segment
		halt
	`, func(m *Machine, th *Thread) {
		m.Space.EnsureMapped(0x40000, 4096)
		th.SetReg(1, mustMake(core.PermReadWrite, 4, 0x40000).Word())
	})
	if th.State != Faulted || core.CodeOf(th.Fault) != core.FaultBounds {
		t.Errorf("fault = %v, want bounds", th.Fault)
	}
}

func TestByteStoreNeedsWriteRights(t *testing.T) {
	_, th := runOne(t, `
		stb r1, 0, r2
		halt
	`, func(m *Machine, th *Thread) {
		ro, _ := core.Restrict(dataSeg(t, m, 0x40000, 12), core.PermReadOnly)
		th.SetReg(1, ro.Word())
		th.SetReg(2, word.FromInt(1))
	})
	if th.State != Faulted || core.CodeOf(th.Fault) != core.FaultPerm {
		t.Errorf("fault = %v, want perm", th.Fault)
	}
}

func TestByteLoadZeroExtends(t *testing.T) {
	_, th := runOne(t, `
		ldi r2, -1
		st  r1, 0, r2
		ldb r3, r1, 7    ; the top byte of 0xffff... is 0xff
		halt
	`, func(m *Machine, th *Thread) {
		th.SetReg(1, dataSeg(t, m, 0x40000, 12).Word())
	})
	if th.State != Halted {
		t.Fatal(th.Fault)
	}
	if th.Reg(3).Int() != 0xff {
		t.Errorf("ldb = %d, want 255 (zero-extended)", th.Reg(3).Int())
	}
}
