package machine

import "repro/internal/isa"

// executeWide models the MAP cluster's LIW issue (Sec 3: "the three
// execution units in a cluster are allocated and statically scheduled
// as a long instruction word processor"): up to one instruction per
// unit — integer, memory, floating point — issues from the selected
// thread in one cycle.
//
// The compiler's static schedule is approximated by an in-order packet
// builder with hardware-visible rules: a packet ends at the first
//
//   - repeated unit (two integer ops can't co-issue),
//   - true dependence on a register written earlier in the packet,
//   - control-flow instruction (it may issue as the packet's last op),
//   - undecodable word or faulting/blocking instruction.
//
// Executing the packet serially within the cycle is safe because the
// dependence check forbids exactly the orders where serial execution
// would diverge from parallel-read semantics.
func (m *Machine) executeWide(t *Thread) {
	var unitsUsed [isa.NumUnits]bool
	var written [isa.NumRegs]bool
	var srcs []int

	for slot := 0; slot < isa.NumUnits; slot++ {
		if t.State != Ready {
			return // blocked, halted or faulted mid-packet
		}
		// Peek at the next instruction through the decoded-instruction
		// cache (the address is still translated per peek, so TLB
		// counters match the unaccelerated model); malformed or remote
		// fetches are handled (and faulted) by execute itself on the
		// first slot.
		if t.IP.Addr()%8 != 0 || (m.Remote != nil && m.Remote.IsRemote(t.IP.Addr())) {
			if slot == 0 {
				m.execute(t)
			}
			return
		}
		inst, err := m.fetchDecoded(t.IP.Addr())
		if err != nil {
			if slot == 0 {
				m.execute(t)
			}
			return
		}
		u := inst.Op.Unit()
		if unitsUsed[u] {
			return // structural hazard: unit already claimed this cycle
		}
		if slot > 0 {
			srcs = srcs[:0]
			hazard := false
			for _, r := range inst.SrcRegs(srcs) {
				if written[r] {
					hazard = true
					break
				}
			}
			if d := inst.DestReg(); d >= 0 && written[d] {
				hazard = true // WAW within a packet is also illegal
			}
			if hazard {
				return
			}
		}
		unitsUsed[u] = true
		if d := inst.DestReg(); d >= 0 {
			written[d] = true
		}
		ipBefore := t.IP
		m.execute(t)
		if t.State == Faulted {
			return
		}
		// A taken branch/jump/trap redirects the stream: end the packet.
		if inst.Op.IsControl() {
			return
		}
		// If a fault handler elected to retry (IP unchanged), stop.
		if t.IP == ipBefore {
			return
		}
	}
}
