package machine

import (
	"testing"

	"repro/internal/telemetry"
	"repro/internal/word"
)

// scrubLoop keeps a thread busy long enough for several scrub ticks.
const scrubLoop = `
	ldi  r1, 32
lp:	subi r1, r1, 1
	bnez r1, lp
	halt
`

// The background scrubber sweeps physical memory on the cycle loop and
// repairs injected single-bit flips before anything consumes them.
func TestBackgroundScrubberRepairsFlips(t *testing.T) {
	cfg := testConfig()
	cfg.ScrubEvery = 4
	cfg.ScrubWords = 1 << 20 // whole memory per tick
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ip := loadAt(t, m, scrubLoop, 0x10000, false)
	th, err := m.AddThread(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.SetIP(ip); err != nil {
		t.Fatal(err)
	}
	orig := word.Word{Bits: 0xfeedface, Tag: true}
	if err := m.Space.Phys.WriteWord(0x200, orig); err != nil {
		t.Fatal(err)
	}
	m.Space.Phys.EnableECC()
	if err := m.Space.Phys.FlipBit(0x200, 13); err != nil {
		t.Fatal(err)
	}
	m.Run(100_000)
	st := m.Space.Phys.ECCStats()
	if st.Corrected != 1 {
		t.Fatalf("Corrected = %d, want 1", st.Corrected)
	}
	if st.ScrubWords == 0 {
		t.Fatal("scrubber never swept")
	}
	got, err := m.Space.Phys.ReadWord(0x200)
	if err != nil {
		t.Fatal(err)
	}
	if got != orig {
		t.Fatalf("scrubbed word = %+v, want %+v", got, orig)
	}

	reg := telemetry.NewRegistry()
	m.RegisterMetrics(reg)
	snap := reg.Snapshot()
	if snap["mem.ecc.corrected"] != 1 {
		t.Fatalf("mem.ecc.corrected metric = %v, want 1", snap["mem.ecc.corrected"])
	}
}

// With ScrubEvery zero (the default) the scrubber never runs: the
// disabled path must not touch the memory system at all.
func TestBackgroundScrubberDefaultOff(t *testing.T) {
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ip := loadAt(t, m, scrubLoop, 0x10000, false)
	th, err := m.AddThread(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.SetIP(ip); err != nil {
		t.Fatal(err)
	}
	m.Space.Phys.EnableECC()
	m.Run(100_000)
	if st := m.Space.Phys.ECCStats(); st.ScrubWords != 0 {
		t.Fatalf("scrubber ran %d words with ScrubEvery=0", st.ScrubWords)
	}
}
