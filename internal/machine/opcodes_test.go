package machine

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/word"
)

// TestEveryOpcodeSemantics runs one program touching every integer,
// shift, comparison and conversion opcode and checks the exact result
// values — a complement to the differential test, which checks
// consistency but not absolute correctness.
func TestEveryOpcodeSemantics(t *testing.T) {
	_, th := runOne(t, `
		ldi  r1, 100
		ldi  r2, 7
		add  r3, r1, r2    ; 107
		sub  r4, r1, r2    ; 93
		subi r5, r1, 1     ; 99
		mul  r6, r1, r2    ; 700
		and  r7, r1, r2    ; 100&7 = 4
		or   r8, r1, r2    ; 100|7 = 103
		xor  r9, r1, r2    ; 100^7 = 99
		shl  r10, r2, r2   ; 7<<7 = 896
		shli r11, r2, 2    ; 28
		shr  r12, r1, r2   ; 100>>7 = 0
		shri r13, r1, 2    ; 25
		halt
	`, nil)
	if th.State != Halted {
		t.Fatalf("fault: %v", th.Fault)
	}
	want := map[int]int64{3: 107, 4: 93, 5: 99, 6: 700, 7: 4, 8: 103, 9: 99,
		10: 896, 11: 28, 12: 0, 13: 25}
	for r, v := range want {
		if got := th.Reg(r).Int(); got != v {
			t.Errorf("r%d = %d, want %d", r, got, v)
		}
	}
}

func TestComparisonOpcodes(t *testing.T) {
	_, th := runOne(t, `
		ldi  r1, -5
		ldi  r2, 3
		slt  r3, r1, r2    ; 1 (signed!)
		slt  r4, r2, r1    ; 0
		slti r5, r1, 0     ; 1
		slti r6, r2, 0     ; 0
		seq  r7, r1, r1    ; 1
		seq  r8, r1, r2    ; 0
		seqi r9, r2, 3     ; 1
		seqi r10, r2, 4    ; 0
		halt
	`, nil)
	if th.State != Halted {
		t.Fatal(th.Fault)
	}
	want := map[int]int64{3: 1, 4: 0, 5: 1, 6: 0, 7: 1, 8: 0, 9: 1, 10: 0}
	for r, v := range want {
		if got := th.Reg(r).Int(); got != v {
			t.Errorf("r%d = %d, want %d", r, got, v)
		}
	}
}

func TestNegativeShiftsAndWraparound(t *testing.T) {
	_, th := runOne(t, `
		ldi  r1, -1
		shri r2, r1, 60    ; logical: 0xf
		ldi  r3, 1
		shli r4, r3, 63    ; min int64
		add  r5, r4, r4    ; wraps to 0
		halt
	`, nil)
	if th.State != Halted {
		t.Fatal(th.Fault)
	}
	if th.Reg(2).Int() != 0xf {
		t.Errorf("logical shift = %#x", th.Reg(2).Int())
	}
	if th.Reg(5).Int() != 0 {
		t.Errorf("wrap = %d", th.Reg(5).Int())
	}
}

func TestFPDivisionEdgeCases(t *testing.T) {
	_, th := runOne(t, `
		ldi  r1, 1
		itof r2, r1
		ldi  r3, 0
		itof r4, r3
		fdiv r5, r2, r4    ; 1/0 = +Inf
		fdiv r6, r4, r4    ; 0/0 = NaN
		halt
	`, nil)
	if th.State != Halted {
		t.Fatal(th.Fault)
	}
	if !math.IsInf(math.Float64frombits(th.Reg(5).Uint()), 1) {
		t.Errorf("1/0 = %v", math.Float64frombits(th.Reg(5).Uint()))
	}
	if !math.IsNaN(math.Float64frombits(th.Reg(6).Uint())) {
		t.Errorf("0/0 = %v", math.Float64frombits(th.Reg(6).Uint()))
	}
}

func TestGetPermGetLenOnVariousPointers(t *testing.T) {
	_, th := runOne(t, `
		getperm r3, r1
		getlen  r4, r1
		getperm r5, r2
		getlen  r6, r2
		halt
	`, func(m *Machine, th *Thread) {
		th.SetReg(1, dataSeg(t, m, 0x40000, 12).Word())
		// Enter pointers may be inspected (GETPERM reads, doesn't
		// modify).
		enter := mustEnter(t, m)
		th.SetReg(2, enter)
	})
	if th.State != Halted {
		t.Fatal(th.Fault)
	}
	if th.Reg(3).Int() != 3 || th.Reg(4).Int() != 12 {
		t.Errorf("rw ptr fields: perm=%d len=%d", th.Reg(3).Int(), th.Reg(4).Int())
	}
	if th.Reg(5).Int() != 6 {
		t.Errorf("enter perm = %d", th.Reg(5).Int())
	}
	_ = th.Reg(6)
}

func mustEnter(t *testing.T, m *Machine) word.Word {
	t.Helper()
	p := loadAt(t, m, "halt", 0x60000, false)
	e, err := core.Restrict(p, core.PermEnterUser)
	if err != nil {
		t.Fatal(err)
	}
	return e.Word()
}
