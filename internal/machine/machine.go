// Package machine is a cycle-level simulator of a MAP-like
// multithreaded processor (Sec 3, Fig. 5): several clusters, each with a
// set of resident hardware threads issued cycle-by-cycle, in front of a
// banked virtually-addressed cache and a single external memory
// interface.
//
// Protection is entirely the guarded-pointer checks of internal/core,
// performed in the execution stage before a memory operation issues.
// The simulator can optionally model the *competing* schemes' context-
// switch costs (TLB flush, full purge) so experiment E6 can measure the
// paper's zero-cost-switch claim against page-based protection on
// identical workloads.
//
// Modeling notes (documented substitutions):
//   - each cluster issues one instruction per cycle (the MAP's 3-wide
//     LIW issue within a cluster is folded into that single slot; the
//     protection arguments depend on threads×clusters, not intra-
//     cluster ILP);
//   - instruction fetch is ideal (no I-cache traffic); data references
//     go through the banked cache with full bank/interface arbitration.
package machine

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/jit"
	"repro/internal/telemetry"
	"repro/internal/vm"
	"repro/internal/word"
)

// Scheme selects the context-switch cost model applied when a cluster's
// issue slot moves between threads of different protection domains.
type Scheme int

const (
	// SchemeGuarded is the paper's design: protection travels in
	// pointers, so a domain switch costs nothing.
	SchemeGuarded Scheme = iota
	// SchemeFlushTLB models separate per-process address spaces without
	// ASIDs: each domain switch stalls the cluster and flushes the TLB
	// (Sec 5.1, "the old translations must be flushed from the TLB").
	SchemeFlushTLB
	// SchemeFlushAll additionally purges the (virtually addressed)
	// cache, as required when synonyms would otherwise leak data.
	SchemeFlushAll
)

func (s Scheme) String() string {
	switch s {
	case SchemeGuarded:
		return "guarded-pointers"
	case SchemeFlushTLB:
		return "page-flush-tlb"
	case SchemeFlushAll:
		return "page-flush-all"
	}
	return fmt.Sprintf("scheme(%d)", int(s))
}

// Config fixes the machine geometry and cost knobs.
type Config struct {
	Clusters        int
	SlotsPerCluster int
	PhysBytes       uint64
	TLBEntries      int
	Cache           cache.Config

	Scheme        Scheme
	SwitchPenalty uint64 // cycles to install a new protection domain (non-guarded schemes)
	TrapCost      uint64 // pipeline-drain + vector cost of a TRAP

	// WideIssue enables the MAP's LIW cluster model: up to one
	// instruction per execution unit (integer, memory, floating point)
	// issues per cluster per cycle from the selected thread, subject to
	// dependence checks. Off by default so single-issue experiments are
	// directly comparable with the baseline models.
	WideIssue bool

	// ScrubEvery, when non-zero, runs the background memory scrubber:
	// every ScrubEvery cycles the machine sweeps ScrubWords physical
	// words through the ECC engine (mem.ScrubStep), correcting latent
	// single-bit errors before a demand read can widen them into
	// uncorrectable doubles. Requires mem.EnableECC; a no-op otherwise.
	// The scrubber ticks inside Run (not Step), so zero — the default —
	// leaves the per-cycle hot loop completely untouched.
	ScrubEvery uint64
	// ScrubWords is the sweep chunk per scrub tick; 0 means 64.
	ScrubWords int
}

// MMachine returns the configuration of the chip described in Sec 3:
// 4 clusters × 4 user threads, 128KB 4-banked cache, 8MB memory.
func MMachine() Config {
	return Config{
		Clusters:        4,
		SlotsPerCluster: 4,
		PhysBytes:       8 << 20,
		TLBEntries:      64,
		Cache:           cache.MMachine(),
		Scheme:          SchemeGuarded,
		SwitchPenalty:   24, // page-table-base swap + pipeline refill, used only by baselines
		TrapCost:        100,
	}
}

// Stats aggregates machine-level counters.
type Stats struct {
	Cycles       uint64
	Instructions uint64
	IdleCycles   uint64 // cluster-cycles with no ready thread
	StallCycles  uint64 // cluster-cycles lost to domain-switch penalties
	Switches     uint64 // thread-to-thread issue changes
	DomainSwaps  uint64 // switches that crossed protection domains
	Traps        uint64
	Faults       uint64
	// IssuePackets counts cluster-cycles that issued at least one
	// instruction; Instructions/IssuePackets is the achieved issue
	// width under WideIssue.
	IssuePackets uint64
}

// TrapHandler is the kernel hook invoked by the TRAP instruction. It
// runs with the thread's state already advanced past the trap.
type TrapHandler func(m *Machine, t *Thread, code int64) error

// FaultHandler is the kernel hook for protection faults; returning true
// means the fault was handled and the thread may continue.
type FaultHandler func(m *Machine, t *Thread, err error) bool

type clusterState struct {
	slots      []*Thread
	rr         int
	lastThread *Thread
	stallUntil uint64
}

// Decoded-instruction cache geometry: a direct-mapped array indexed by
// word address. 4096 entries cover 32KB of code, far more than any
// workload in the repo; conflict misses just re-decode.
const (
	decEntries = 4096
	decMask    = decEntries - 1
)

// decEntry caches the decode of one instruction word. key is the word's
// virtual address plus one, so the zero value (key 0) can never match a
// word-aligned fetch address.
type decEntry struct {
	key  uint64
	inst isa.Inst
}

// remoteKind tags a pendingRemote with the operation to complete.
type remoteKind uint8

const (
	remFetch remoteKind = iota
	remLoad
	remStore
	remLoadByte
	remStoreByte
)

// pendingSentinel parks a thread "forever": ServiceRemote is the only
// thing that wakes it.
const pendingSentinel = ^uint64(0)

// NeverDone is the completion cycle a RemoteAccess returns for an
// access that will never complete — the request or reply was consumed
// by the fabric (dropped message, dead home node). The machine commits
// no architectural effect and parks the thread forever; detecting the
// hang is the owner's job (the multicomputer's cycle-deadline
// watchdog).
const NeverDone = ^uint64(0)

// pendingRemote records a remote access issued during Step for
// completion at the multicomputer's cycle barrier. cycle is the issue
// cycle, replayed as m.now during service so every latency computation
// matches an access performed immediately.
type pendingRemote struct {
	kind  remoteKind
	t     *Thread
	addr  uint64
	val   word.Word
	inst  isa.Inst
	cycle uint64
}

// RemoteAccess connects the machine to a multicomputer interconnect:
// addresses whose home is another node are satisfied over the network
// instead of the local cache. The protection checks have already
// happened in the local execution unit by the time these are called —
// capabilities are valid machine-wide because every node shares the
// single 54-bit address space (Sec 3).
type RemoteAccess interface {
	// IsRemote reports whether addr's home is another node.
	IsRemote(addr uint64) bool
	// ReadWord performs a remote load issued at cycle now, returning
	// the word and its completion cycle.
	ReadWord(addr uint64, now uint64) (word.Word, uint64, error)
	// WriteWord performs a remote store issued at cycle now, returning
	// its completion (acknowledge) cycle.
	WriteWord(addr uint64, w word.Word, now uint64) (uint64, error)
}

// Machine is the simulated processor plus its memory system.
type Machine struct {
	cfg      Config
	Space    *vm.Space
	Cache    *cache.Cache
	clusters []*clusterState
	threads  []*Thread
	cycle    uint64
	stats    Stats

	// now is the cycle stamp execution paths use. During Step it equals
	// cycle; while ServiceRemote replays a deferred remote access it is
	// rewound to that access's issue cycle, so blocking and tracing
	// behave exactly as if the access had completed inline.
	now uint64

	// dec is the decoded-instruction cache: locally fetched instruction
	// words skip isa.Decode after their first execution. Stores through
	// the Space invalidate covering entries (see New); remote fetches
	// are never cached.
	dec []decEntry

	// DeferRemote, when set (the multicomputer sets it), makes remote
	// accesses enqueue onto pending instead of calling Remote inline;
	// ServiceRemote completes them at the cycle barrier. This is what
	// lets nodes of a multicomputer step concurrently and still produce
	// bit-identical results: all cross-node traffic is serialized at one
	// point, in one order.
	DeferRemote bool
	servicing   bool
	pending     []pendingRemote

	// Background-scrubber schedule, copied from Config at New so the
	// cycle loop reads fields, not config indirection. scrubEvery == 0
	// (the default) keeps the whole feature to one branch per cycle.
	scrubEvery uint64
	scrubWords int

	// runLimit is the absolute cycle bound of the Run call in progress
	// (0 = none). The compiled-block executor reads it so whole-block
	// chaining stops exactly at the cap — Run(n) consumes the same n
	// cycles with the translator on or off.
	runLimit uint64

	OnTrap  TrapHandler
	OnFault FaultHandler

	// OnIssue, when non-nil, observes every instruction as it issues
	// (tracing/debugging; no architectural effect).
	OnIssue func(t *Thread, inst isa.Inst)

	// Integrity, when non-nil, is consulted before every instruction
	// executes and may veto it with an error (raised as a fault). It
	// models datapath integrity checks — register-file parity in the
	// fault-injection harness: reading a corrupted operand register is a
	// machine check, overwriting it silently repairs it. No architectural
	// effect when nil.
	Integrity func(t *Thread, inst isa.Inst) error

	// Remote, when non-nil, handles references to other nodes of a
	// multicomputer.
	Remote RemoteAccess

	// Tracer, when non-nil, receives cycle-stamped structured events
	// (instructions, faults, traps, domain swaps, TLB flushes; install
	// with SetTracer so the memory system emits too). Nil costs one
	// pointer check per emit site.
	Tracer *telemetry.Tracer

	// hists holds the machine's latency histograms once
	// EnableHistograms has run; nil (the default) costs one pointer
	// check at each rare-event site.
	hists *Hists

	// Flight, when non-nil, is the machine's always-on flight recorder:
	// faults, traps, and lost threads land in its bounded ring so the
	// run-up to a failure can be dumped. All FlightRecorder methods are
	// nil-safe, so emit sites call it unconditionally.
	Flight *telemetry.FlightRecorder

	// OnFlightDump, when non-nil, fires when a thread enters the
	// Faulted state with no handler recovery — the machine-fault
	// auto-dump trigger. The owner decides where the dump goes.
	OnFlightDump func(reason string)

	// Profiler, when non-nil, samples the address of every issued
	// instruction for hot-spot attribution.
	Profiler *telemetry.Profiler

	// jit, when non-nil, is the superblock translator: execute enters
	// compiled blocks at their heads instead of fetching through the
	// interpreter. Installed by EnableJIT (blockexec.go).
	jit *jit.Engine
}

// New builds a machine.
func New(cfg Config) (*Machine, error) {
	if cfg.Clusters <= 0 || cfg.SlotsPerCluster <= 0 {
		return nil, fmt.Errorf("machine: non-positive geometry %+v", cfg)
	}
	space, err := vm.NewSpace(cfg.PhysBytes, cfg.TLBEntries)
	if err != nil {
		return nil, err
	}
	c, err := cache.New(space, cfg.Cache)
	if err != nil {
		return nil, err
	}
	m := &Machine{cfg: cfg, Space: space, Cache: c, dec: make([]decEntry, decEntries),
		scrubEvery: cfg.ScrubEvery, scrubWords: cfg.ScrubWords}
	if m.scrubEvery != 0 && m.scrubWords <= 0 {
		m.scrubWords = 64
	}
	for i := 0; i < cfg.Clusters; i++ {
		m.clusters = append(m.clusters, &clusterState{slots: make([]*Thread, cfg.SlotsPerCluster)})
	}
	// The decoded-instruction cache's invalidation contract: every store
	// through the space (word or byte, including the kernel's loader and
	// GC moves) kills the covering entry, and unmapping any range kills
	// them all. See docs/PERFORMANCE.md.
	space.OnWrite = m.invalidateDecodedWord
	space.OnUnmap = func(vaddr, size uint64) { m.FlushDecoded() }
	return m, nil
}

// invalidateDecodedWord drops the decoded-instruction entry covering
// vaddr, if present.
func (m *Machine) invalidateDecodedWord(vaddr uint64) {
	base := vaddr &^ (word.BytesPerWord - 1)
	e := &m.dec[(base>>3)&decMask]
	if e.key == base+1 {
		e.key = 0
	}
}

// FlushDecoded empties the decoded-instruction cache. Unmapping any
// address range triggers it — the pages behind a decoded entry may be
// recycled for unrelated code.
func (m *Machine) FlushDecoded() {
	for i := range m.dec {
		m.dec[i].key = 0
	}
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// SetTracer installs tr as the event tracer for the machine and its
// whole memory system (cache misses, TLB misses, page faults, swap
// traffic all stamp events with the machine's cycle). Passing nil
// detaches tracing everywhere.
func (m *Machine) SetTracer(tr *telemetry.Tracer) {
	m.Tracer = tr
	m.Cache.Tracer = tr
	m.Space.Tracer = tr
	if tr == nil {
		m.Space.Now = nil
		return
	}
	m.Space.Now = func() uint64 { return m.cycle }
}

// Hists bundles the machine-level latency histograms (EnableHistograms).
type Hists struct {
	// DomainSwitch records the stall cycles each protection-domain
	// switch cost — identically zero under SchemeGuarded, which is the
	// paper's claim rendered as a distribution rather than asserted.
	DomainSwitch *telemetry.Histogram
	// RemoteRT records the round-trip cycles (completion − issue) of
	// every completed remote access: loads, stores, byte variants, and
	// remote instruction fetches.
	RemoteRT *telemetry.Histogram
}

// EnableHistograms allocates the machine's latency histograms — domain
// switch, remote round trip, and the cache's TLB-refill cost — and
// returns them. Subsequent RegisterMetrics calls publish them under
// machine.hist.* / cache.l1.hist.*. Idempotent.
func (m *Machine) EnableHistograms() *Hists {
	if m.hists == nil {
		m.hists = &Hists{
			DomainSwitch: telemetry.NewHistogram(),
			RemoteRT:     telemetry.NewHistogram(),
		}
		m.Cache.HistTLBRefill = telemetry.NewHistogram()
	}
	return m.hists
}

// Hists returns the histograms, or nil before EnableHistograms.
func (m *Machine) Hists() *Hists { return m.hists }

// RegisterMetrics publishes every machine-level counter plus the cache
// and vm counters into reg under the canonical namespace
// (machine.cycles, cache.l1.misses, vm.tlb.misses, …).
func (m *Machine) RegisterMetrics(reg *telemetry.Registry) {
	reg.Counter("machine.cycles", func() uint64 { return m.stats.Cycles })
	reg.Counter("machine.instructions", func() uint64 { return m.stats.Instructions })
	reg.Counter("machine.idle_cycles", func() uint64 { return m.stats.IdleCycles })
	reg.Counter("machine.stall_cycles", func() uint64 { return m.stats.StallCycles })
	reg.Counter("machine.switches", func() uint64 { return m.stats.Switches })
	reg.Counter("machine.domain_swaps", func() uint64 { return m.stats.DomainSwaps })
	reg.Counter("machine.traps", func() uint64 { return m.stats.Traps })
	reg.Counter("machine.faults", func() uint64 { return m.stats.Faults })
	reg.Counter("machine.issue_packets", func() uint64 { return m.stats.IssuePackets })
	reg.Register("machine.ipc", func() float64 {
		if m.stats.Cycles == 0 {
			return 0
		}
		return float64(m.stats.Instructions) / float64(m.stats.Cycles)
	})
	reg.Register("machine.threads", func() float64 { return float64(len(m.threads)) })
	// Outstanding deferred remote accesses — the node's NoC service
	// queue depth as seen between barriers.
	reg.Register("machine.remote_pending", func() float64 { return float64(len(m.pending)) })
	if m.hists != nil {
		reg.RegisterHistogram("machine.hist.domain_switch", m.hists.DomainSwitch)
		reg.RegisterHistogram("machine.hist.remote_rt", m.hists.RemoteRT)
	}
	if m.jit != nil {
		reg.Counter("jit.compiled", func() uint64 { return m.jit.Counters.Compiled })
		reg.Counter("jit.invalidated", func() uint64 { return m.jit.Counters.Invalidated })
		reg.Counter("jit.entries", func() uint64 { return m.jit.Counters.Entries })
		reg.Counter("jit.elided_sites", func() uint64 { return m.jit.Counters.ElidedSites })
		reg.Counter("jit.retained_sites", func() uint64 { return m.jit.Counters.RetainedSites })
		reg.RegisterHistogram("jit.hist.compile_ns", m.jit.CompileLatency)
	}
	reg.Counter("mem.ecc.corrected", func() uint64 { return m.Space.Phys.ECCStats().Corrected })
	reg.Counter("mem.ecc.double_bit", func() uint64 { return m.Space.Phys.ECCStats().DoubleBit })
	reg.Counter("mem.ecc.scrub_words", func() uint64 { return m.Space.Phys.ECCStats().ScrubWords })
	m.Cache.RegisterMetrics(reg, "cache.l1")
	m.Space.RegisterMetrics(reg, "vm")
}

// Cycle returns the current cycle number.
func (m *Machine) Cycle() uint64 { return m.cycle }

// Stats returns a copy of the counters.
func (m *Machine) Stats() Stats { return m.stats }

// Threads returns the resident threads in creation order.
func (m *Machine) Threads() []*Thread { return m.threads }

// RemotePending returns the number of deferred remote accesses parked
// for completion at the next ServiceRemote call. Zero between cycle
// barriers — the quiescence condition a migration cutover requires
// before it may swap the kernel out from under the mesh wiring.
func (m *Machine) RemotePending() int { return len(m.pending) }

// AddThread installs a new hardware thread in the first free slot and
// returns it. The caller (normally the kernel) must set IP and initial
// registers before running.
func (m *Machine) AddThread(domain int) (*Thread, error) {
	for ci, cl := range m.clusters {
		for si, s := range cl.slots {
			if s == nil {
				t := &Thread{
					ID:      len(m.threads),
					Domain:  domain,
					State:   Ready,
					cluster: ci,
					slot:    si,
				}
				cl.slots[si] = t
				m.threads = append(m.threads, t)
				return t, nil
			}
		}
	}
	return nil, fmt.Errorf("machine: all %d thread slots occupied",
		m.cfg.Clusters*m.cfg.SlotsPerCluster)
}

// RemoveThread frees the thread's slot (it must be Done).
func (m *Machine) RemoveThread(t *Thread) error {
	if !t.Done() {
		return fmt.Errorf("machine: removing live thread %d", t.ID)
	}
	cl := m.clusters[t.cluster]
	if cl.slots[t.slot] != t {
		return fmt.Errorf("machine: thread %d not resident", t.ID)
	}
	cl.slots[t.slot] = nil
	if cl.lastThread == t {
		cl.lastThread = nil
	}
	for i, th := range m.threads {
		if th == t {
			m.threads = append(m.threads[:i], m.threads[i+1:]...)
			break
		}
	}
	return nil
}

// Done reports whether every resident thread has halted or faulted.
func (m *Machine) Done() bool {
	if len(m.threads) == 0 {
		return true
	}
	for _, t := range m.threads {
		if !t.Done() {
			return false
		}
	}
	return true
}

// Step advances the machine one cycle: each cluster independently picks
// a ready thread (round-robin) and executes one instruction. With
// DeferRemote set, remote accesses issued this cycle are parked on the
// pending queue; the owner must call ServiceRemote afterwards.
func (m *Machine) Step() {
	m.now = m.cycle
	for _, cl := range m.clusters {
		m.stepCluster(cl)
	}
	m.cycle++
	m.stats.Cycles++
}

// Run steps until every thread is done or maxCycles elapse; it returns
// the number of cycles executed. The background memory scrubber (if
// configured) ticks here rather than in Step so the common
// scrubber-off path adds nothing to the per-cycle hot loop; external
// steppers that drive Step directly (the multicomputer barrier loop)
// bring their own recovery machinery instead.
func (m *Machine) Run(maxCycles uint64) uint64 {
	if m.scrubEvery != 0 {
		return m.runScrubbed(maxCycles)
	}
	start := m.cycle
	if limit := start + maxCycles; limit > start {
		m.runLimit = limit
		defer func() { m.runLimit = 0 }()
	}
	for !m.Done() && m.cycle-start < maxCycles {
		m.Step()
	}
	return m.cycle - start
}

// runScrubbed is Run with the background scrubber armed: every
// scrubEvery cycles, sweep the next scrubWords words of physical
// memory, correcting single-bit decay before anything consumes it.
func (m *Machine) runScrubbed(maxCycles uint64) uint64 {
	start := m.cycle
	for !m.Done() && m.cycle-start < maxCycles {
		m.Step()
		if m.cycle%m.scrubEvery == 0 {
			m.Space.Phys.ScrubStep(m.scrubWords)
		}
	}
	return m.cycle - start
}

func (m *Machine) stepCluster(cl *clusterState) {
	if cl.stallUntil > m.cycle {
		m.stats.StallCycles++
		return
	}
	t := m.pickThread(cl)
	if t == nil {
		m.stats.IdleCycles++
		return
	}
	if t != cl.lastThread {
		if cl.lastThread != nil {
			m.stats.Switches++
			if cl.lastThread.Domain != t.Domain {
				m.stats.DomainSwaps++
				if m.Tracer != nil && m.Tracer.Enabled(telemetry.EvDomainSwap) {
					m.Tracer.Emit(telemetry.Event{Cycle: m.cycle, Kind: telemetry.EvDomainSwap,
						Thread: t.ID, Cluster: t.cluster, Domain: t.Domain,
						Detail: fmt.Sprintf("domain %d -> %d", cl.lastThread.Domain, t.Domain)})
				}
				penalty := m.switchPenalty()
				if m.hists != nil {
					m.hists.DomainSwitch.Observe(penalty)
				}
				if penalty > 0 {
					// A page-based scheme must install the new domain
					// before the thread may issue: stall the cluster
					// and destroy the stale state.
					cl.stallUntil = m.cycle + penalty
					cl.lastThread = t
					m.stats.StallCycles++
					return
				}
			}
		}
		cl.lastThread = t
	}
	m.stats.IssuePackets++
	if m.cfg.WideIssue {
		m.executeWide(t)
		return
	}
	m.execute(t)
}

// switchPenalty applies the selected scheme's domain-switch cost and
// returns the stall length.
func (m *Machine) switchPenalty() uint64 {
	switch m.cfg.Scheme {
	case SchemeFlushTLB:
		m.flushTLBTraced()
		return m.cfg.SwitchPenalty
	case SchemeFlushAll:
		m.flushTLBTraced()
		m.Cache.InvalidateAll()
		return m.cfg.SwitchPenalty
	}
	return 0
}

// flushTLBTraced flushes the TLB, recording how many live translations
// the flush destroyed.
func (m *Machine) flushTLBTraced() {
	live := 0
	if m.Tracer != nil && m.Tracer.Enabled(telemetry.EvTLBFlush) {
		live = m.Space.TLB.Live()
	}
	m.Space.TLB.Flush()
	if m.Tracer != nil && m.Tracer.Enabled(telemetry.EvTLBFlush) {
		m.Tracer.Emit(telemetry.Event{Cycle: m.cycle, Kind: telemetry.EvTLBFlush,
			Thread: -1, Cluster: -1, Domain: -1, Code: int64(live)})
	}
}

// pickThread selects the thread to issue this cycle. The guarded
// scheme round-robins freely — switching threads is free, so fairness
// wins. The flush-based schemes are sticky: they keep issuing from the
// current thread while it is ready, because every cross-domain switch
// costs a stall-and-flush. This is the paper's observation (Sec 1) that
// such schemes "preclude interleaving threads from different protection
// domains" made operational.
func (m *Machine) pickThread(cl *clusterState) *Thread {
	if m.cfg.Scheme != SchemeGuarded && cl.lastThread != nil {
		t := cl.lastThread
		if !t.Done() {
			if t.State == Blocked && m.cycle >= t.blockedUntil {
				t.State = Ready
			}
			if t.State == Ready {
				return t
			}
		}
	}
	n := len(cl.slots)
	for i := 1; i <= n; i++ {
		t := cl.slots[(cl.rr+i)%n]
		if t == nil || t.Done() {
			continue
		}
		if t.State == Blocked {
			if m.cycle < t.blockedUntil {
				continue
			}
			t.State = Ready
		}
		cl.rr = (cl.rr + i) % n
		return t
	}
	return nil
}
