package machine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/word"
)

// TestWideIssueArchitecturallyEquivalent is a differential property
// test: for random programs, the LIW wide-issue machine must produce
// *exactly* the architectural state of the single-issue machine —
// registers, memory, fault-or-halt. Wide issue may only change timing.
func TestWideIssueArchitecturallyEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(20260706))
	for trial := 0; trial < 150; trial++ {
		src := randomProgram(rng)
		a := runIssueMode(t, src, false)
		b := runIssueMode(t, src, true)
		if a.state != b.state {
			t.Fatalf("trial %d: states differ (%v vs %v)\n%s", trial, a.state, b.state, src)
		}
		for r := 0; r < 16; r++ {
			if a.regs[r] != b.regs[r] {
				t.Fatalf("trial %d: r%d differs (%v vs %v)\n%s", trial, r, a.regs[r], b.regs[r], src)
			}
		}
		for i, w := range a.mem {
			if b.mem[i] != w {
				t.Fatalf("trial %d: mem[%d] differs (%v vs %v)\n%s", trial, i, w, b.mem[i], src)
			}
		}
		if b.cycles > a.cycles {
			t.Errorf("trial %d: wide issue slower (%d vs %d cycles)", trial, b.cycles, a.cycles)
		}
	}
}

type archState struct {
	state  ThreadState
	regs   [16]word.Word
	mem    []word.Word
	cycles uint64
}

// randomProgram emits a straight-line mix of integer, FP, memory and
// pointer instructions over registers r2..r11, with r1 holding a 4KB
// data segment. Offsets are always in bounds; the program always ends
// with halt, so any fault is a bug in the machine, not the generator.
func randomProgram(rng *rand.Rand) string {
	n := 10 + rng.Intn(40)
	var b []byte
	app := func(f string, a ...interface{}) {
		b = append(b, fmt.Sprintf(f, a...)...)
		b = append(b, '\n')
	}
	reg := func() int { return 2 + rng.Intn(10) }
	off := func() int { return rng.Intn(512) * 8 }
	for i := 0; i < n; i++ {
		switch rng.Intn(12) {
		case 0:
			app("addi r%d, r%d, %d", reg(), reg(), rng.Intn(1000)-500)
		case 1:
			app("add r%d, r%d, r%d", reg(), reg(), reg())
		case 2:
			app("mul r%d, r%d, r%d", reg(), reg(), reg())
		case 3:
			app("xor r%d, r%d, r%d", reg(), reg(), reg())
		case 4:
			app("shli r%d, r%d, %d", reg(), reg(), rng.Intn(8))
		case 5:
			app("ldi r%d, %d", reg(), rng.Intn(100000))
		case 6:
			app("ld r%d, r1, %d", reg(), off())
		case 7:
			app("st r1, %d, r%d", off(), reg())
		case 8:
			app("fadd r%d, r%d, r%d", reg(), reg(), reg())
		case 9:
			app("itof r%d, r%d", reg(), reg())
		case 10:
			app("slt r%d, r%d, r%d", reg(), reg(), reg())
		case 11:
			app("leai r%d, r1, %d", reg(), off())
		}
	}
	app("halt")
	return string(b)
}

func runIssueMode(t *testing.T, src string, wide bool) archState {
	t.Helper()
	cfg := testConfig()
	cfg.Clusters = 1
	cfg.SlotsPerCluster = 1
	cfg.WideIssue = wide
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ip := loadAt(t, m, src, 0x10000, false)
	seg := dataSeg(t, m, 0x40000, 12)
	th, err := m.AddThread(0)
	if err != nil {
		t.Fatal(err)
	}
	th.SetIP(ip)
	th.SetReg(1, seg.Word())
	m.Run(1_000_000)
	if th.State != Halted {
		t.Fatalf("random program did not halt (%v %v):\n%s", th.State, th.Fault, src)
	}
	st := archState{state: th.State, regs: th.Regs, cycles: m.Stats().Cycles}
	for off := uint64(0); off < 4096; off += 8 {
		w, err := m.Space.ReadWord(0x40000 + off)
		if err != nil {
			t.Fatal(err)
		}
		st.mem = append(st.mem, w)
	}
	return st
}
