package machine

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/word"
)

// Debugger attaches breakpoints, watchpoints and single-stepping to a
// machine, built on the OnIssue observation hook plus its own memory
// snapshots. It is a development facility of the simulator, not an
// architectural feature — a real MAP would implement equivalents with
// privileged exception vectors.
type Debugger struct {
	m *Machine

	breakpoints map[uint64]bool
	watchpoints map[uint64]word.Word // vaddr → last observed value

	// Hit is set when a stop condition fires during Step/Continue.
	Hit *DebugEvent

	prevIssue func(*Thread, isa.Inst)
}

// DebugEvent describes why execution stopped.
type DebugEvent struct {
	Reason string // "breakpoint" or "watchpoint"
	Thread *Thread
	Addr   uint64
	Old    word.Word // watchpoints: previous value
	New    word.Word // watchpoints: observed value
}

func (e *DebugEvent) String() string {
	switch e.Reason {
	case "watchpoint":
		return fmt.Sprintf("watchpoint @%#x: %v -> %v (thread %d)", e.Addr, e.Old, e.New, e.Thread.ID)
	default:
		return fmt.Sprintf("%s @%#x (thread %d)", e.Reason, e.Addr, e.Thread.ID)
	}
}

// Attach creates a debugger on m. Only one debugger should be attached
// at a time; it chains any existing OnIssue hook.
func Attach(m *Machine) *Debugger {
	d := &Debugger{
		m:           m,
		breakpoints: make(map[uint64]bool),
		watchpoints: make(map[uint64]word.Word),
		prevIssue:   m.OnIssue,
	}
	m.OnIssue = d.onIssue
	return d
}

// Detach restores the machine's previous issue hook.
func (d *Debugger) Detach() { d.m.OnIssue = d.prevIssue }

// SetBreakpoint arms a breakpoint at the instruction address.
func (d *Debugger) SetBreakpoint(vaddr uint64) { d.breakpoints[vaddr] = true }

// ClearBreakpoint disarms it.
func (d *Debugger) ClearBreakpoint(vaddr uint64) { delete(d.breakpoints, vaddr) }

// Watch arms a watchpoint on the word at vaddr: execution stops at the
// end of any cycle that changed it.
func (d *Debugger) Watch(vaddr uint64) error {
	w, err := d.m.Space.ReadWord(vaddr)
	if err != nil {
		return err
	}
	d.watchpoints[vaddr] = w
	return nil
}

// Unwatch disarms a watchpoint.
func (d *Debugger) Unwatch(vaddr uint64) { delete(d.watchpoints, vaddr) }

func (d *Debugger) onIssue(t *Thread, inst isa.Inst) {
	if d.prevIssue != nil {
		d.prevIssue(t, inst)
	}
	if d.Hit == nil && d.breakpoints[t.IP.Addr()] {
		d.Hit = &DebugEvent{Reason: "breakpoint", Thread: t, Addr: t.IP.Addr()}
	}
}

// checkWatch scans watchpoints after a cycle; the last writer thread
// is unknown at this granularity, so the event carries the machine's
// most recently issued thread via the breakpoint path only.
func (d *Debugger) checkWatch() {
	if d.Hit != nil {
		return
	}
	for addr, old := range d.watchpoints {
		w, err := d.m.Space.ReadWord(addr)
		if err != nil {
			continue // page swapped/unmapped; keep the old snapshot
		}
		if w != old {
			var th *Thread
			if ts := d.m.Threads(); len(ts) > 0 {
				th = ts[0]
			}
			d.Hit = &DebugEvent{Reason: "watchpoint", Thread: th, Addr: addr, Old: old, New: w}
			d.watchpoints[addr] = w
			return
		}
	}
}

// StepCycle advances the machine one cycle and reports any stop event.
func (d *Debugger) StepCycle() *DebugEvent {
	d.Hit = nil
	d.m.Step()
	d.checkWatch()
	return d.Hit
}

// Continue runs until a breakpoint/watchpoint fires, every thread
// finishes, or maxCycles elapse. It returns the stop event, or nil.
func (d *Debugger) Continue(maxCycles uint64) *DebugEvent {
	d.Hit = nil
	for i := uint64(0); i < maxCycles && !d.m.Done(); i++ {
		d.m.Step()
		d.checkWatch()
		if d.Hit != nil {
			return d.Hit
		}
	}
	return nil
}

// Disassemble returns the instruction at vaddr, if it decodes.
func (d *Debugger) Disassemble(vaddr uint64) (string, error) {
	w, err := d.m.Space.ReadWord(vaddr)
	if err != nil {
		return "", err
	}
	inst, err := isa.Decode(w)
	if err != nil {
		return "", err
	}
	return inst.String(), nil
}
