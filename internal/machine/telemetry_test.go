package machine

import (
	"testing"

	"repro/internal/telemetry"
)

// spawnAt loads src at a fixed base and installs it as a user thread.
func spawnAt(t *testing.T, m *Machine, src string) *Thread {
	t.Helper()
	ip := loadAt(t, m, src, 0x10000, false)
	th, err := m.AddThread(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.SetIP(ip); err != nil {
		t.Fatal(err)
	}
	return th
}

// TestTelemetryWiring drives a real machine with the tracer, profiler
// and metrics registry attached and checks that every layer reports:
// instructions issue events with cycle/thread/cluster, the fault path
// carries the fault code, and the registry namespace covers machine,
// cache and vm.
func TestTelemetryWiring(t *testing.T) {
	cfg := MMachine()
	cfg.Clusters = 1
	cfg.SlotsPerCluster = 1
	cfg.PhysBytes = 1 << 20
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := telemetry.NewTracer(1 << 12)
	tr.EnableAll()
	m.SetTracer(tr)
	prof := telemetry.NewProfiler(1)
	m.Profiler = prof

	reg := telemetry.NewRegistry()
	m.RegisterMetrics(reg)
	start := reg.Snapshot()

	th := spawnAt(t, m, "ld r2, r1, 0\nadd r3, r2, r2\nhalt\n")
	th.SetReg(1, dataSeg(t, m, 0x80000, 12).Word())
	m.Run(1000)
	if th.State != Halted {
		t.Fatalf("thread: %v %v", th.State, th.Fault)
	}

	var instr int
	for _, ev := range tr.Events() {
		if ev.Kind == telemetry.EvInstr {
			instr++
			if ev.Thread != th.ID || ev.Cluster != 0 || ev.Detail == "" {
				t.Errorf("instr event incomplete: %+v", ev)
			}
		}
	}
	if instr != 3 {
		t.Errorf("instr events = %d, want 3", instr)
	}
	if prof.Samples() != 3 {
		t.Errorf("profiler samples = %d, want 3", prof.Samples())
	}

	d := reg.Snapshot().Delta(start)
	if d.Get("machine.instructions") != 3 {
		t.Errorf("machine.instructions delta = %v", d.Get("machine.instructions"))
	}
	for _, name := range []string{"machine.cycles", "cache.l1.accesses", "vm.translations", "vm.tlb.hits"} {
		if d.Get(name) <= 0 {
			t.Errorf("metric %s did not advance (delta %v)", name, d.Get(name))
		}
	}
}

// TestTelemetryFaultEventCarriesCode checks the fault emit site.
func TestTelemetryFaultEventCarriesCode(t *testing.T) {
	cfg := MMachine()
	cfg.Clusters = 1
	cfg.SlotsPerCluster = 1
	cfg.PhysBytes = 1 << 20
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := telemetry.NewTracer(64)
	tr.Enable(telemetry.EvFault)
	m.SetTracer(tr)

	// Loading through an untagged word is a tag fault (FaultTag == 1).
	th := spawnAt(t, m, "ldi r1, 64\nld r2, r1, 0\nhalt\n")
	m.Run(1000)
	if th.State != Faulted {
		t.Fatalf("thread: %v", th.State)
	}
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("fault events = %d, want 1", len(evs))
	}
	if evs[0].Kind != telemetry.EvFault || evs[0].Code != 1 || evs[0].Detail == "" {
		t.Errorf("fault event = %+v", evs[0])
	}
}
