package machine

import (
	"math"
	"testing"

	"repro/internal/word"
)

func TestFloatingPointOps(t *testing.T) {
	_, th := runOne(t, `
		itof r3, r1       ; 6.0
		itof r4, r2       ; 7.0
		fadd r5, r3, r4   ; 13.0
		fmul r6, r3, r4   ; 42.0
		fsub r7, r6, r5   ; 29.0
		fdiv r8, r6, r4   ; 6.0
		fslt r9, r3, r4   ; 1
		ftoi r10, r6      ; 42
		halt
	`, func(m *Machine, th *Thread) {
		th.SetReg(1, word.FromInt(6))
		th.SetReg(2, word.FromInt(7))
	})
	if th.State != Halted {
		t.Fatalf("fault: %v", th.Fault)
	}
	checks := map[int]float64{5: 13, 6: 42, 7: 29, 8: 6}
	for r, want := range checks {
		got := math.Float64frombits(th.Reg(r).Uint())
		if got != want {
			t.Errorf("r%d = %v, want %v", r, got, want)
		}
		if th.Reg(r).Tag {
			t.Errorf("r%d: FP result is tagged", r)
		}
	}
	if th.Reg(9).Int() != 1 {
		t.Errorf("fslt = %d", th.Reg(9).Int())
	}
	if th.Reg(10).Int() != 42 {
		t.Errorf("ftoi = %d", th.Reg(10).Int())
	}
}

func TestFPClearsPointerTag(t *testing.T) {
	_, th := runOne(t, `
		fadd r2, r1, r0
		isptr r3, r2
		halt
	`, func(m *Machine, th *Thread) {
		th.SetReg(1, dataSeg(t, m, 0x40000, 12).Word())
	})
	if th.Reg(3).Int() != 0 {
		t.Error("FP op preserved pointer tag")
	}
}

// wideMachine runs src on a 1-cluster, 1-thread machine with LIW issue.
func runWide(t *testing.T, src string, setup func(*Machine, *Thread)) (*Machine, *Thread) {
	t.Helper()
	cfg := testConfig()
	cfg.Clusters = 1
	cfg.SlotsPerCluster = 1
	cfg.WideIssue = true
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ip := loadAt(t, m, src, 0x10000, false)
	th, err := m.AddThread(0)
	if err != nil {
		t.Fatal(err)
	}
	th.SetIP(ip)
	if setup != nil {
		setup(m, th)
	}
	m.Run(100000)
	return m, th
}

func TestWideIssueIndependentTriple(t *testing.T) {
	// int + mem + fp, all independent: must co-issue (3 instructions,
	// 1 packet) repeatedly.
	m, th := runWide(t, `
		addi r2, r2, 1
		ld   r3, r1, 0
		fadd r4, r5, r5
		addi r6, r6, 1
		ld   r7, r1, 8
		fadd r8, r5, r5
		halt
	`, func(m *Machine, th *Thread) {
		th.SetReg(1, dataSeg(t, m, 0x40000, 12).Word())
	})
	if th.State != Halted {
		t.Fatalf("fault: %v", th.Fault)
	}
	st := m.Stats()
	// 7 instructions. Packets: [addi ld fadd] [addi ld fadd] [halt] —
	// but the first ld misses and blocks the thread, splitting packets.
	// Check achieved width rather than exact packet layout.
	width := float64(st.Instructions) / float64(st.IssuePackets)
	if width < 1.5 {
		t.Errorf("achieved issue width %.2f — wide issue not working (instr=%d packets=%d)",
			width, st.Instructions, st.IssuePackets)
	}
}

func TestWideIssueRespectsDependences(t *testing.T) {
	// A pure dependent chain must issue one per cycle even with wide
	// issue enabled.
	m, th := runWide(t, `
		addi r2, r2, 1
		addi r2, r2, 1
		addi r2, r2, 1
		addi r2, r2, 1
		addi r2, r2, 1
		addi r2, r2, 1
		halt
	`, nil)
	if th.State != Halted {
		t.Fatalf("fault: %v", th.Fault)
	}
	if th.Reg(2).Int() != 6 {
		t.Errorf("r2 = %d, want 6 (dependences violated!)", th.Reg(2).Int())
	}
	st := m.Stats()
	// Chain also hits the structural limit (all integer unit): 1/packet
	// except halt possibly... every packet is 1 instruction.
	width := float64(st.Instructions) / float64(st.IssuePackets)
	if width > 1.01 {
		t.Errorf("dependent chain achieved width %.2f > 1", width)
	}
}

func TestWideIssueStructuralHazard(t *testing.T) {
	// Two independent integer ops cannot co-issue: one integer unit.
	m, th := runWide(t, `
		addi r2, r2, 1
		addi r3, r3, 1
		addi r4, r4, 1
		halt
	`, nil)
	if th.State != Halted {
		t.Fatal(th.Fault)
	}
	st := m.Stats()
	if float64(st.Instructions)/float64(st.IssuePackets) > 1.01 {
		t.Error("two integer ops co-issued on one integer unit")
	}
}

func TestWideIssueStopsAtControl(t *testing.T) {
	// A branch ends its packet; correctness of the loop proves the
	// stream never runs past taken control flow.
	_, th := runWide(t, `
		ldi r2, 5
		ldi r3, 0
	loop:
		addi r3, r3, 2
		subi r2, r2, 1
		bnez r2, loop
		halt
	`, nil)
	if th.State != Halted {
		t.Fatal(th.Fault)
	}
	if th.Reg(3).Int() != 10 {
		t.Errorf("r3 = %d, want 10", th.Reg(3).Int())
	}
}

func TestWideIssueFaultsStillPrecise(t *testing.T) {
	// A protection fault in the middle of a packet must leave earlier
	// results committed and the thread faulted at the right place.
	_, th := runWide(t, `
		addi r2, r2, 7
		ld   r3, r4, 0   ; r4 is an integer: tag fault
		halt
	`, nil)
	if th.State != Faulted {
		t.Fatal("no fault")
	}
	if th.Reg(2).Int() != 7 {
		t.Errorf("earlier packet op lost: r2 = %d", th.Reg(2).Int())
	}
}

func TestWideIssueMixedLoopFasterThanSingle(t *testing.T) {
	src := `
		ldi r2, 200
		ldi r4, 0
		ldi r6, 0
	loop:
		ld   r3, r1, 0    ; mem
		fadd r5, r5, r7   ; fp, independent
		subi r2, r2, 1    ; int
		bnez r2, loop
		halt
	`
	setup := func(m *Machine, th *Thread) {
		th.SetReg(1, dataSeg(t, m, 0x40000, 12).Word())
	}
	mWide, thW := runWide(t, src, setup)
	if thW.State != Halted {
		t.Fatal(thW.Fault)
	}

	cfg := testConfig()
	cfg.Clusters = 1
	cfg.SlotsPerCluster = 1
	m1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ip := loadAt(t, m1, src, 0x10000, false)
	th1, _ := m1.AddThread(0)
	th1.SetIP(ip)
	setup(m1, th1)
	m1.Run(100000)
	if th1.State != Halted {
		t.Fatal(th1.Fault)
	}
	if mWide.Stats().Cycles >= m1.Stats().Cycles {
		t.Errorf("wide %d cycles !< single %d", mWide.Stats().Cycles, m1.Stats().Cycles)
	}
}
