package machine

import (
	"strings"
	"testing"

	"repro/internal/buddy"
	"repro/internal/core"
)

// testConfig is a small machine: 2 clusters × 2 slots, tiny cache.
func testConfig() Config {
	cfg := MMachine()
	cfg.Clusters = 2
	cfg.SlotsPerCluster = 2
	cfg.PhysBytes = 1 << 20
	cfg.TrapCost = 10
	cfg.SwitchPenalty = 8
	return cfg
}

// loadAt assembles src into the machine at base and returns an execute
// pointer (user or privileged) for it.
func loadAt(t *testing.T, m *Machine, src string, base uint64, priv bool) core.Pointer {
	t.Helper()
	p := mustAssemble(src)
	if err := m.Space.EnsureMapped(base, p.ByteSize()); err != nil {
		t.Fatal(err)
	}
	for i, w := range p.Words {
		if err := m.Space.WriteWord(base+uint64(i)*8, w); err != nil {
			t.Fatal(err)
		}
	}
	logLen := buddy.CeilLog2(p.ByteSize())
	if base&(1<<logLen-1) != 0 {
		t.Fatalf("code base %#x not aligned for 2^%d segment", base, logLen)
	}
	perm := core.PermExecuteUser
	if priv {
		perm = core.PermExecutePriv
	}
	return mustMake(perm, logLen, base)
}

// dataSeg maps a 2^logLen segment at base and returns a read/write
// pointer to it.
func dataSeg(t *testing.T, m *Machine, base uint64, logLen uint) core.Pointer {
	t.Helper()
	if err := m.Space.EnsureMapped(base, 1<<logLen); err != nil {
		t.Fatal(err)
	}
	return mustMake(core.PermReadWrite, logLen, base)
}

// runOne loads src as a single user thread and runs it to completion.
func runOne(t *testing.T, src string, setup func(*Machine, *Thread)) (*Machine, *Thread) {
	t.Helper()
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ip := loadAt(t, m, src, 0x10000, false)
	th, err := m.AddThread(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.SetIP(ip); err != nil {
		t.Fatal(err)
	}
	if setup != nil {
		setup(m, th)
	}
	m.Run(100000)
	return m, th
}

func TestArithmeticProgram(t *testing.T) {
	_, th := runOne(t, `
		ldi  r1, 6
		ldi  r2, 7
		mul  r3, r1, r2
		addi r3, r3, 1
		halt
	`, nil)
	if th.State != Halted {
		t.Fatalf("state = %v fault = %v", th.State, th.Fault)
	}
	if got := th.Reg(3).Int(); got != 43 {
		t.Errorf("r3 = %d, want 43", got)
	}
	if th.Instret != 5 {
		t.Errorf("instret = %d, want 5", th.Instret)
	}
}

func TestLoopSum(t *testing.T) {
	_, th := runOne(t, `
		ldi r1, 10   ; i
		ldi r2, 0    ; sum
	loop:
		add  r2, r2, r1
		subi r1, r1, 1
		bnez r1, loop
		halt
	`, nil)
	if th.State != Halted {
		t.Fatalf("fault: %v", th.Fault)
	}
	if got := th.Reg(2).Int(); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestLoadStoreThroughPointer(t *testing.T) {
	_, th := runOne(t, `
		ldi r2, 1234
		st  r1, 16, r2
		ld  r3, r1, 16
		halt
	`, func(m *Machine, th *Thread) {
		th.SetReg(1, dataSeg(t, m, 0x40000, 12).Word())
	})
	if th.State != Halted {
		t.Fatalf("fault: %v", th.Fault)
	}
	if got := th.Reg(3).Int(); got != 1234 {
		t.Errorf("r3 = %d, want 1234", got)
	}
}

func TestStoreThroughReadOnlyFaults(t *testing.T) {
	_, th := runOne(t, `
		ldi r2, 1
		st  r1, 0, r2
		halt
	`, func(m *Machine, th *Thread) {
		ro, _ := core.Restrict(dataSeg(t, m, 0x40000, 12), core.PermReadOnly)
		th.SetReg(1, ro.Word())
	})
	if th.State != Faulted || core.CodeOf(th.Fault) != core.FaultPerm {
		t.Errorf("state=%v fault=%v, want perm fault", th.State, th.Fault)
	}
}

func TestLoadThroughIntegerFaults(t *testing.T) {
	_, th := runOne(t, `
		ldi r1, 0x40000
		ld  r2, r1, 0
		halt
	`, nil)
	if th.State != Faulted || core.CodeOf(th.Fault) != core.FaultTag {
		t.Errorf("state=%v fault=%v, want tag fault", th.State, th.Fault)
	}
}

func TestOutOfBoundsDisplacementFaults(t *testing.T) {
	_, th := runOne(t, `
		ld r2, r1, 4096
		halt
	`, func(m *Machine, th *Thread) {
		th.SetReg(1, dataSeg(t, m, 0x40000, 12).Word())
	})
	if th.State != Faulted || core.CodeOf(th.Fault) != core.FaultBounds {
		t.Errorf("fault = %v, want bounds", th.Fault)
	}
}

func TestPointerArithmeticClearsTag(t *testing.T) {
	// Using a pointer in ADD produces an integer; dereferencing it
	// must then tag-fault. This is the anti-forgery rule of Sec 2.2.
	_, th := runOne(t, `
		add r2, r1, r0   ; r2 = integer image of the pointer
		isptr r3, r2
		ld r4, r2, 0     ; faults: r2 is no longer a pointer
		halt
	`, func(m *Machine, th *Thread) {
		th.SetReg(1, dataSeg(t, m, 0x40000, 12).Word())
	})
	if th.Reg(3).Int() != 0 {
		t.Errorf("isptr after arithmetic = %d, want 0", th.Reg(3).Int())
	}
	if th.State != Faulted || core.CodeOf(th.Fault) != core.FaultTag {
		t.Errorf("fault = %v, want tag", th.Fault)
	}
}

func TestSetPtrPrivileged(t *testing.T) {
	// User mode: SETPTR faults.
	_, th := runOne(t, `
		ldi r1, 0x40000
		setptr r2, r1
		halt
	`, nil)
	if th.State != Faulted || core.CodeOf(th.Fault) != core.FaultPriv {
		t.Errorf("user setptr fault = %v, want priv", th.Fault)
	}

	// Privileged mode: SETPTR succeeds and the result is a usable
	// pointer.
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ip := loadAt(t, m, `
		setptr r2, r1
		getperm r3, r2
		halt
	`, 0x10000, true)
	dataSeg(t, m, 0x40000, 12)
	pt := mustMake(core.PermReadWrite, 12, 0x40000)
	thp, _ := m.AddThread(0)
	thp.SetIP(ip)
	thp.SetReg(1, pt.Word().Untag())
	m.Run(1000)
	if thp.State != Halted {
		t.Fatalf("priv thread fault: %v", thp.Fault)
	}
	if got := thp.Reg(3).Int(); got != int64(core.PermReadWrite) {
		t.Errorf("getperm = %d", got)
	}
	if !thp.Reg(2).Tag {
		t.Error("setptr result untagged")
	}
}

func TestRestrictAndSubsegInstructions(t *testing.T) {
	_, th := runOne(t, `
		ldi r2, 2        ; PermReadOnly
		restrict r3, r1, r2
		getperm r4, r3
		ldi r5, 6
		subseg r6, r1, r5
		getlen r7, r6
		halt
	`, func(m *Machine, th *Thread) {
		th.SetReg(1, dataSeg(t, m, 0x40000, 12).Word())
	})
	if th.State != Halted {
		t.Fatalf("fault: %v", th.Fault)
	}
	if th.Reg(4).Int() != int64(core.PermReadOnly) {
		t.Errorf("restricted perm = %d", th.Reg(4).Int())
	}
	if th.Reg(7).Int() != 6 {
		t.Errorf("subseg len = %d", th.Reg(7).Int())
	}
}

func TestJMPLAndReturn(t *testing.T) {
	_, th := runOne(t, `
		ldi  r1, 0
		movip r2
		leai r2, r2, 32   ; pointer to 'func' (4 instructions ahead)
		jmpl r14, r2
		halt              ; returns here? no — jmpl goes to func, func returns to after jmpl
	func:
		ldi r1, 77
		jmp r14
	`, nil)
	if th.State != Halted {
		t.Fatalf("fault: %v", th.Fault)
	}
	if th.Reg(1).Int() != 77 {
		t.Errorf("r1 = %d, want 77 (function ran)", th.Reg(1).Int())
	}
}

func TestEnterPointerCall(t *testing.T) {
	// The caller holds only an ENTER pointer to the subsystem segment.
	// Jumping through it must convert to execute; the caller cannot
	// read the segment directly beforehand.
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	subIP := loadAt(t, m, `
		ldi r5, 999
		jmp r14
	`, 0x20000, false)
	enter, err := core.Restrict(subIP, core.PermEnterUser)
	if err != nil {
		t.Fatal(err)
	}
	mainIP := loadAt(t, m, `
		ld r6, r1, 0     ; try to read subsystem through enter ptr: faults
		halt
	`, 0x10000, false)
	th, _ := m.AddThread(0)
	th.SetIP(mainIP)
	th.SetReg(1, enter.Word())
	m.Run(1000)
	if th.State != Faulted || core.CodeOf(th.Fault) != core.FaultPerm {
		t.Fatalf("reading through enter pointer: %v", th.Fault)
	}

	// Now the call path.
	m2, _ := New(testConfig())
	subIP2 := loadAt(t, m2, `
		ldi r5, 999
		jmp r14
	`, 0x20000, false)
	enter2, _ := core.Restrict(subIP2, core.PermEnterUser)
	mainIP2 := loadAt(t, m2, `
		jmpl r14, r1
		halt
	`, 0x10000, false)
	th2, _ := m2.AddThread(0)
	th2.SetIP(mainIP2)
	th2.SetReg(1, enter2.Word())
	m2.Run(1000)
	if th2.State != Halted {
		t.Fatalf("enter call fault: %v", th2.Fault)
	}
	if th2.Reg(5).Int() != 999 {
		t.Errorf("subsystem did not run: r5 = %d", th2.Reg(5).Int())
	}
}

func TestJumpToDataPointerFaults(t *testing.T) {
	_, th := runOne(t, `
		jmp r1
		halt
	`, func(m *Machine, th *Thread) {
		th.SetReg(1, dataSeg(t, m, 0x40000, 12).Word())
	})
	if th.State != Faulted || core.CodeOf(th.Fault) != core.FaultPerm {
		t.Errorf("fault = %v, want perm", th.Fault)
	}
}

func TestBranchCannotLeaveSegment(t *testing.T) {
	_, th := runOne(t, `
		br 100000
		halt
	`, nil)
	if th.State != Faulted || core.CodeOf(th.Fault) != core.FaultBounds {
		t.Errorf("fault = %v, want bounds", th.Fault)
	}
}

func TestRunningOffSegmentEndFaults(t *testing.T) {
	_, th := runOne(t, `nop`, nil) // no halt: falls off the end
	if th.State != Faulted {
		t.Errorf("state = %v, want faulted", th.State)
	}
}

func TestTrapHandler(t *testing.T) {
	var gotCode int64
	m, th := runOne(t, `
		trap 42
		ldi r1, 5
		halt
	`, func(m *Machine, th *Thread) {
		m.OnTrap = func(m *Machine, t *Thread, code int64) error {
			gotCode = code
			return nil
		}
	})
	if th.State != Halted {
		t.Fatalf("fault: %v", th.Fault)
	}
	if gotCode != 42 {
		t.Errorf("trap code = %d", gotCode)
	}
	if th.Reg(1).Int() != 5 {
		t.Error("execution did not resume after trap")
	}
	if m.Stats().Traps != 1 {
		t.Errorf("traps = %d", m.Stats().Traps)
	}
}

func TestTrapWithoutHandlerFaults(t *testing.T) {
	_, th := runOne(t, `trap 1
		halt`, nil)
	if th.State != Faulted {
		t.Error("trap without handler did not fault")
	}
}

func TestTrapCostCharged(t *testing.T) {
	// A trap must cost ~TrapCost cycles; the same program without the
	// trap is much faster.
	mTrap, _ := runOne(t, `
		trap 0
		halt
	`, func(m *Machine, th *Thread) {
		m.OnTrap = func(*Machine, *Thread, int64) error { return nil }
	})
	mPlain, _ := runOne(t, `
		nop
		halt
	`, nil)
	d := mTrap.Stats().Cycles - mPlain.Stats().Cycles
	if d < testConfig().TrapCost-2 {
		t.Errorf("trap cost only %d cycles, want ≈%d", d, testConfig().TrapCost)
	}
}

func TestFaultHandlerCanRepairAndRetry(t *testing.T) {
	// Demand paging through the fault hook: the load hits an unmapped
	// page, the handler maps it, the instruction retries and succeeds.
	repairs := 0
	_, th := runOne(t, `
		ld r2, r1, 0
		halt
	`, func(m *Machine, th *Thread) {
		// Hand the thread a pointer to an unmapped segment.
		th.SetReg(1, mustMake(core.PermReadWrite, 12, 0x80000).Word())
		m.OnFault = func(m *Machine, t *Thread, err error) bool {
			if repairs++; repairs > 3 {
				return false
			}
			if strings.Contains(err.Error(), "page fault") {
				m.Space.EnsureMapped(0x80000, 4096)
				return true
			}
			return false
		}
	})
	if th.State != Halted {
		t.Fatalf("fault: %v (repairs=%d)", th.Fault, repairs)
	}
	if repairs != 1 {
		t.Errorf("repairs = %d, want 1", repairs)
	}
}

func TestMultithreadInterleaving(t *testing.T) {
	// Four threads (two clusters × two slots) all make progress.
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	src := `
		ldi r1, 100
	loop:
		subi r1, r1, 1
		bnez r1, loop
		halt
	`
	for i := 0; i < 4; i++ {
		base := uint64(0x10000 + i*0x1000)
		ip := loadAt(t, m, src, base, false)
		th, err := m.AddThread(i)
		if err != nil {
			t.Fatal(err)
		}
		th.SetIP(ip)
	}
	m.Run(100000)
	for _, th := range m.Threads() {
		if th.State != Halted {
			t.Errorf("thread %d: %v %v", th.ID, th.State, th.Fault)
		}
	}
	// Two threads share each cluster: runtime ≈ 2 × single-thread
	// instruction count, far less than 4× (they interleave, not
	// serialize across clusters).
	if c := m.Stats().Cycles; c > 1000 {
		t.Errorf("4 threads took %d cycles", c)
	}
}

func TestZeroCostDomainSwitchGuarded(t *testing.T) {
	m := interleavedDomains(t, SchemeGuarded)
	if m.Stats().StallCycles != 0 {
		t.Errorf("guarded scheme stalled %d cycles", m.Stats().StallCycles)
	}
	if m.Stats().DomainSwaps == 0 {
		t.Error("no domain swaps recorded — test not exercising switches")
	}
	if m.Space.TLB.Stats().Flushes != 0 {
		t.Error("guarded scheme flushed the TLB")
	}
}

func TestFlushTLBSchemeStalls(t *testing.T) {
	m := interleavedDomains(t, SchemeFlushTLB)
	if m.Stats().StallCycles == 0 {
		t.Error("flush scheme did not stall")
	}
	if m.Space.TLB.Stats().Flushes == 0 {
		t.Error("flush scheme did not flush")
	}
	mg := interleavedDomains(t, SchemeGuarded)
	if m.Stats().Cycles <= mg.Stats().Cycles {
		t.Errorf("flush (%d cycles) not slower than guarded (%d)",
			m.Stats().Cycles, mg.Stats().Cycles)
	}
}

func TestFlushAllAlsoPurgesCache(t *testing.T) {
	m := interleavedDomains(t, SchemeFlushAll)
	if m.Cache.Stats().Misses <= interleavedDomains(t, SchemeFlushTLB).Cache.Stats().Misses {
		t.Error("cache purge did not increase misses")
	}
}

// interleavedDomains runs two threads from different domains on one
// cluster, each doing memory work, under the given scheme.
func interleavedDomains(t *testing.T, s Scheme) *Machine {
	t.Helper()
	cfg := testConfig()
	cfg.Clusters = 1
	cfg.SlotsPerCluster = 2
	cfg.Scheme = s
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := `
		ldi r3, 50
	loop:
		ld r2, r1, 0
		ld r2, r1, 8
		subi r3, r3, 1
		bnez r3, loop
		halt
	`
	for i := 0; i < 2; i++ {
		base := uint64(0x10000 + i*0x1000)
		ip := loadAt(t, m, src, base, false)
		th, err := m.AddThread(i) // distinct domains
		if err != nil {
			t.Fatal(err)
		}
		th.SetIP(ip)
		th.SetReg(1, dataSeg(t, m, uint64(0x40000+i*0x1000), 12).Word())
	}
	m.Run(1000000)
	for _, th := range m.Threads() {
		if th.State != Halted {
			t.Fatalf("thread %d: %v %v", th.ID, th.State, th.Fault)
		}
	}
	return m
}

func TestAddThreadOverflowAndRemove(t *testing.T) {
	m, _ := New(testConfig()) // 4 slots
	var ths []*Thread
	for i := 0; i < 4; i++ {
		th, err := m.AddThread(0)
		if err != nil {
			t.Fatal(err)
		}
		ths = append(ths, th)
	}
	if _, err := m.AddThread(0); err == nil {
		t.Error("5th thread accepted on 4-slot machine")
	}
	if err := m.RemoveThread(ths[0]); err == nil {
		t.Error("removed a live thread")
	}
	ths[0].State = Halted
	if err := m.RemoveThread(ths[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddThread(9); err != nil {
		t.Errorf("slot not recycled: %v", err)
	}
	if err := m.RemoveThread(ths[0]); err == nil {
		t.Error("double remove accepted")
	}
}

func TestMOVIPLoadsFromCodeSegment(t *testing.T) {
	// The Fig. 3 idiom: code reads pointers embedded in its own
	// segment via the execute pointer (execute pointers can load).
	_, th := runOne(t, `
		movip r2
		leab  r3, r2, r0   ; base of code segment (r0 = 0)
		ld    r4, r3, =datum
		halt
	datum:
		.word 4242
	`, nil)
	if th.State != Halted {
		t.Fatalf("fault: %v", th.Fault)
	}
	if th.Reg(4).Int() != 4242 {
		t.Errorf("r4 = %d, want 4242", th.Reg(4).Int())
	}
}

func TestSchemeString(t *testing.T) {
	for _, s := range []Scheme{SchemeGuarded, SchemeFlushTLB, SchemeFlushAll, Scheme(9)} {
		if s.String() == "" {
			t.Errorf("empty name for scheme %d", int(s))
		}
	}
	for _, st := range []ThreadState{Ready, Blocked, Halted, Faulted, ThreadState(9)} {
		if st.String() == "" {
			t.Errorf("empty name for state %d", int(st))
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	m, th := runOne(t, `
		ldi r1, 1
		halt
	`, nil)
	if th.State != Halted {
		t.Fatal(th.Fault)
	}
	st := m.Stats()
	if st.Instructions != 2 {
		t.Errorf("instructions = %d, want 2", st.Instructions)
	}
	if st.Cycles == 0 {
		t.Error("no cycles counted")
	}
	// One cluster ran the thread; the other idled.
	if st.IdleCycles == 0 {
		t.Error("idle cluster not counted")
	}
}

func TestSeqComparesTags(t *testing.T) {
	// SEQ on two words compares full tagged identity — a pointer and
	// its integer image differ.
	_, th := runOne(t, `
		add r2, r1, r0  ; integer image
		seq r3, r1, r2
		mov r4, r1
		seq r5, r1, r4
		halt
	`, func(m *Machine, th *Thread) {
		th.SetReg(1, dataSeg(t, m, 0x40000, 12).Word())
	})
	if th.Reg(3).Int() != 0 {
		t.Error("pointer == its integer image")
	}
	if th.Reg(5).Int() != 1 {
		t.Error("pointer != its copy")
	}
}

func TestKeyPointerComparableNotUsable(t *testing.T) {
	// Keys: comparable identity, nothing else (Sec 2.1).
	_, th := runOne(t, `
		seq r3, r1, r2
		ld  r4, r1, 0   ; faults
		halt
	`, func(m *Machine, th *Thread) {
		key := mustMake(core.PermKey, 0, 0x12345)
		th.SetReg(1, key.Word())
		th.SetReg(2, key.Word())
	})
	if th.Reg(3).Int() != 1 {
		t.Error("equal keys not equal")
	}
	if th.State != Faulted || core.CodeOf(th.Fault) != core.FaultPerm {
		t.Errorf("key deref fault = %v, want perm", th.Fault)
	}
}

func TestWordTaggedMemoryRoundTripThroughMachine(t *testing.T) {
	// A pointer stored to memory and loaded back is still a pointer —
	// no special capability storage exists (Sec 5.3).
	_, th := runOne(t, `
		st r1, 0, r1     ; store the pointer through itself
		ld r2, r1, 0
		isptr r3, r2
		ld r4, r2, 0     ; and it still works as an address
		halt
	`, func(m *Machine, th *Thread) {
		th.SetReg(1, dataSeg(t, m, 0x40000, 12).Word())
	})
	if th.State != Halted {
		t.Fatalf("fault: %v", th.Fault)
	}
	if th.Reg(3).Int() != 1 {
		t.Error("pointer lost its tag through memory")
	}
}

func TestConfigAndCycleAccessors(t *testing.T) {
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.Config().Clusters != testConfig().Clusters {
		t.Error("Config accessor mismatch")
	}
	if m.Cycle() != 0 {
		t.Error("fresh machine cycle != 0")
	}
	m.Step()
	if m.Cycle() != 1 {
		t.Errorf("Cycle = %d after one step", m.Cycle())
	}
}
