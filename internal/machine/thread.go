package machine

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/jit"
	"repro/internal/word"
)

// ThreadState is the scheduling state of a hardware thread slot.
type ThreadState int

const (
	// Ready threads compete for their cluster's issue slot each cycle.
	Ready ThreadState = iota
	// Blocked threads are waiting for a memory reference to complete.
	Blocked
	// Halted threads executed HALT.
	Halted
	// Faulted threads took an unhandled protection fault.
	Faulted
)

var stateNames = [...]string{Ready: "ready", Blocked: "blocked", Halted: "halted", Faulted: "faulted"}

func (s ThreadState) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Thread is one resident hardware thread: sixteen tagged general
// registers and an instruction pointer that is itself a guarded execute
// pointer. There is no other per-thread protection state — that absence
// is the paper's zero-cost context switch (Sec 3).
type Thread struct {
	ID     int
	Domain int // protection-domain label, used only by switch-cost models and stats

	Regs [isa.NumRegs]word.Word
	IP   core.Pointer

	State        ThreadState
	Fault        error // terminal fault when State == Faulted
	Instret      uint64
	blockedUntil uint64

	cluster, slot int

	// Compiled-block resume cursor (blockexec.go): when jblk is
	// non-nil, execution resumes at step jidx, revalidated against the
	// IP and the block's Valid flag before use.
	jblk *jit.Block
	jidx int
}

// SetIP installs an execute pointer as the thread's instruction
// pointer. Enter pointers are converted exactly as a hardware jump
// would convert them.
func (t *Thread) SetIP(p core.Pointer) error {
	ip, err := core.JumpTarget(p)
	if err != nil {
		return err
	}
	t.IP = ip
	return nil
}

// Cluster returns the cluster the thread is resident on.
func (t *Thread) Cluster() int { return t.cluster }

// Privileged reports whether the thread currently executes in
// supervisor mode, which in a guarded-pointer machine is nothing more
// than the permission of the instruction pointer (Sec 2.1).
func (t *Thread) Privileged() bool { return t.IP.Perm().Privileged() }

// Reg returns register r as a tagged word.
func (t *Thread) Reg(r int) word.Word { return t.Regs[r] }

// SetReg sets register r.
func (t *Thread) SetReg(r int, w word.Word) { t.Regs[r] = w }

// Done reports whether the thread has left the running states.
func (t *Thread) Done() bool { return t.State == Halted || t.State == Faulted }

// BlockUntil parks the thread until the given cycle (kernel services
// use it to charge fault-handling time). The caller sets State.
func (t *Thread) BlockUntil(cycle uint64) { t.blockedUntil = cycle }
