package machine

import (
	"repro/internal/asm"
	"repro/internal/core"
)

// Test-local stand-ins for the removed library panic helpers:
// production code must handle the errors; statically known test
// fixtures may panic.

func mustAssemble(src string) *asm.Program {
	p, err := asm.Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

func mustMake(p core.Perm, logLen uint, addr uint64) core.Pointer {
	ptr, err := core.Make(p, logLen, addr)
	if err != nil {
		panic(err)
	}
	return ptr
}
