package machine

import (
	"math"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/telemetry"
	"repro/internal/word"
)

// execute runs one instruction for t at the current cycle.
//
// Fault discipline: protection faults are raised *before* any state is
// committed and do not advance the instruction pointer, so a fault
// handler that repairs the cause (e.g. maps a page) can simply return
// true and the instruction re-executes. TRAP is the exception — it
// advances the IP first, so the kernel's return path resumes after the
// trap.
func (m *Machine) execute(t *Thread) {
	if t.IP.Addr()%word.BytesPerWord != 0 {
		m.fault(t, &core.Fault{Code: core.FaultBounds, Op: "FETCH", Msg: "unaligned instruction pointer"})
		return
	}
	var w word.Word
	var err error
	var fetchDone uint64
	if m.Remote != nil && m.Remote.IsRemote(t.IP.Addr()) {
		// Execute pointers are valid machine-wide (Sec 3): running code
		// homed on another node fetches each instruction over the mesh.
		// Correct, and deliberately slow — real software migrates code.
		w, fetchDone, err = m.Remote.ReadWord(t.IP.Addr(), m.cycle)
	} else {
		w, err = m.Space.ReadWord(t.IP.Addr())
	}
	if err != nil {
		m.fault(t, err)
		return
	}
	if fetchDone > 0 {
		defer func() {
			if t.State == Ready && fetchDone > m.cycle+1 {
				t.State = Blocked
				t.blockedUntil = fetchDone
			} else if t.State == Blocked && fetchDone > t.blockedUntil {
				t.blockedUntil = fetchDone
			}
		}()
	}
	inst, err := isa.Decode(w)
	if err != nil {
		m.fault(t, &core.Fault{Code: core.FaultPerm, Op: "FETCH", Msg: err.Error()})
		return
	}
	if m.OnIssue != nil {
		m.OnIssue(t, inst)
	}
	if m.Profiler != nil {
		m.Profiler.Sample(t.IP.Addr())
	}
	if m.Tracer != nil && m.Tracer.Enabled(telemetry.EvInstr) {
		m.Tracer.Emit(telemetry.Event{Cycle: m.cycle, Kind: telemetry.EvInstr,
			Thread: t.ID, Cluster: t.cluster, Domain: t.Domain,
			Addr: t.IP.Addr(), Detail: inst.String()})
	}

	r := &t.Regs
	intA := func() int64 { return r[inst.Ra].Int() }
	intB := func() int64 { return r[inst.Rb].Int() }
	// setInt writes an untagged integer result: any pointer operand of
	// a non-pointer operation has its tag cleared in the result
	// (Sec 2.2).
	setInt := func(v int64) { r[inst.Rd] = word.FromInt(v) }
	setBool := func(b bool) {
		if b {
			setInt(1)
		} else {
			setInt(0)
		}
	}
	// setPtr commits a pointer result from a checked operation.
	setPtr := func(p core.Pointer, err error) bool {
		if err != nil {
			m.fault(t, err)
			return false
		}
		r[inst.Rd] = p.Word()
		return true
	}

	switch inst.Op {
	case isa.NOP:
	case isa.HALT:
		t.State = Halted
		m.retire(t)
		return

	case isa.ADD:
		setInt(intA() + intB())
	case isa.ADDI:
		setInt(intA() + inst.Imm)
	case isa.SUB:
		setInt(intA() - intB())
	case isa.SUBI:
		setInt(intA() - inst.Imm)
	case isa.MUL:
		setInt(intA() * intB())
	case isa.AND:
		setInt(intA() & intB())
	case isa.OR:
		setInt(intA() | intB())
	case isa.XOR:
		setInt(intA() ^ intB())
	case isa.SHL:
		setInt(intA() << (uint64(intB()) & 63))
	case isa.SHLI:
		setInt(intA() << (uint64(inst.Imm) & 63))
	case isa.SHR:
		setInt(int64(uint64(intA()) >> (uint64(intB()) & 63)))
	case isa.SHRI:
		setInt(int64(uint64(intA()) >> (uint64(inst.Imm) & 63)))
	case isa.SLT:
		setBool(intA() < intB())
	case isa.SLTI:
		setBool(intA() < inst.Imm)
	case isa.SEQ:
		setBool(r[inst.Ra] == r[inst.Rb])
	case isa.SEQI:
		setBool(intA() == inst.Imm)
	case isa.MOV:
		r[inst.Rd] = r[inst.Ra] // verbatim copy: copying a capability is legal
	case isa.LDI:
		setInt(inst.Imm)

	case isa.BR:
		m.branch(t, inst.Imm)
		return
	case isa.BEQZ:
		if intA() == 0 {
			m.branch(t, inst.Imm)
			return
		}
	case isa.BNEZ:
		if intA() != 0 {
			m.branch(t, inst.Imm)
			return
		}

	case isa.JMP, isa.JMPL:
		p, err := core.Decode(r[inst.Ra])
		if err != nil {
			m.fault(t, err)
			return
		}
		ip, err := core.JumpTarget(p)
		if err != nil {
			m.fault(t, err)
			return
		}
		if ip.Addr()%word.BytesPerWord != 0 {
			m.fault(t, &core.Fault{Code: core.FaultBounds, Op: "JMP", Msg: "unaligned jump target"})
			return
		}
		if inst.Op == isa.JMPL {
			ret, err := core.LEA(t.IP, word.BytesPerWord)
			if err != nil {
				m.fault(t, err)
				return
			}
			r[inst.Rd] = ret.Word()
		}
		t.IP = ip
		m.retire(t)
		return

	case isa.TRAP:
		// Advance first: the kernel resumes the thread after the trap.
		if !m.advance(t) {
			return
		}
		m.stats.Traps++
		if m.Tracer != nil && m.Tracer.Enabled(telemetry.EvTrap) {
			m.Tracer.Emit(telemetry.Event{Cycle: m.cycle, Kind: telemetry.EvTrap,
				Thread: t.ID, Cluster: t.cluster, Domain: t.Domain, Code: inst.Imm})
		}
		m.retire(t)
		if m.OnTrap == nil {
			m.fault(t, &core.Fault{Code: core.FaultPriv, Op: "TRAP", Msg: "no trap handler installed"})
			return
		}
		if m.cfg.TrapCost > 0 {
			t.State = Blocked
			t.blockedUntil = m.cycle + m.cfg.TrapCost
		}
		if err := m.OnTrap(m, t, inst.Imm); err != nil {
			m.fault(t, err)
		}
		return

	case isa.LD:
		p, ok := m.effectiveAddress(t, inst, false)
		if !ok {
			return
		}
		var v word.Word
		var done uint64
		var err error
		if m.Remote != nil && m.Remote.IsRemote(p.Addr()) {
			v, done, err = m.Remote.ReadWord(p.Addr(), m.cycle)
		} else {
			v, done, err = m.Cache.ReadWord(p.Addr(), m.cycle)
		}
		if err != nil {
			m.fault(t, err)
			return
		}
		r[inst.Rd] = v
		m.block(t, done)
	case isa.ST:
		p, ok := m.effectiveAddress(t, inst, true)
		if !ok {
			return
		}
		var done uint64
		var err error
		if m.Remote != nil && m.Remote.IsRemote(p.Addr()) {
			done, err = m.Remote.WriteWord(p.Addr(), r[inst.Rb], m.cycle)
		} else {
			done, err = m.Cache.WriteWord(p.Addr(), r[inst.Rb], m.cycle)
		}
		if err != nil {
			m.fault(t, err)
			return
		}
		m.block(t, done)

	case isa.LDB:
		p, ok := m.effectiveAddressSized(t, inst, false, 1)
		if !ok {
			return
		}
		var bval byte
		var done uint64
		var err error
		if m.Remote != nil && m.Remote.IsRemote(p.Addr()) {
			var wv word.Word
			wv, done, err = m.Remote.ReadWord(p.Addr()&^7, m.cycle)
			bval = byte(wv.Bits >> ((p.Addr() & 7) * 8))
		} else {
			done, _, err = m.Cache.Access(p.Addr(), false, m.cycle)
			if err == nil {
				bval, err = m.Space.ByteAt(p.Addr())
			}
		}
		if err != nil {
			m.fault(t, err)
			return
		}
		setInt(int64(bval))
		m.block(t, done)
	case isa.STB:
		p, ok := m.effectiveAddressSized(t, inst, true, 1)
		if !ok {
			return
		}
		bval := byte(r[inst.Rb].Bits)
		var done uint64
		var err error
		if m.Remote != nil && m.Remote.IsRemote(p.Addr()) {
			// Remote read-modify-write of the containing word; the tag
			// is cleared like any partial overwrite.
			base := p.Addr() &^ 7
			var wv word.Word
			wv, done, err = m.Remote.ReadWord(base, m.cycle)
			if err == nil {
				shift := (p.Addr() & 7) * 8
				wv.Bits = wv.Bits&^(uint64(0xff)<<shift) | uint64(bval)<<shift
				wv.Tag = false
				done, err = m.Remote.WriteWord(base, wv, done)
			}
		} else {
			done, _, err = m.Cache.Access(p.Addr(), true, m.cycle)
			if err == nil {
				err = m.Space.SetByteAt(p.Addr(), bval)
			}
		}
		if err != nil {
			m.fault(t, err)
			return
		}
		m.block(t, done)

	case isa.LEA, isa.LEAI, isa.LEAB, isa.LEABI:
		p, err := core.Decode(r[inst.Ra])
		if err != nil {
			m.fault(t, err)
			return
		}
		off := inst.Imm
		if inst.Op == isa.LEA || inst.Op == isa.LEAB {
			off = intB()
		}
		if inst.Op == isa.LEA || inst.Op == isa.LEAI {
			if !setPtr(core.LEA(p, off)) {
				return
			}
		} else {
			if !setPtr(core.LEAB(p, off)) {
				return
			}
		}
	case isa.RESTRICT:
		p, err := core.Decode(r[inst.Ra])
		if err != nil {
			m.fault(t, err)
			return
		}
		if !setPtr(core.Restrict(p, core.Perm(r[inst.Rb].Uint()&0xf))) {
			return
		}
	case isa.SUBSEG:
		p, err := core.Decode(r[inst.Ra])
		if err != nil {
			m.fault(t, err)
			return
		}
		if !setPtr(core.SubSeg(p, uint(r[inst.Rb].Uint()&0x3f))) {
			return
		}
	case isa.SETPTR:
		if !setPtr(core.SetPtr(r[inst.Ra], t.Privileged())) {
			return
		}
	case isa.ISPTR:
		setBool(core.IsPointer(r[inst.Ra]))
	case isa.GETPERM:
		p, err := core.Decode(r[inst.Ra])
		if err != nil {
			m.fault(t, err)
			return
		}
		setInt(int64(p.Perm()))
	case isa.GETLEN:
		p, err := core.Decode(r[inst.Ra])
		if err != nil {
			m.fault(t, err)
			return
		}
		setInt(int64(p.LogLen()))
	case isa.MOVIP:
		r[inst.Rd] = t.IP.Word()

	case isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV, isa.FSLT:
		// Floating-point operands ride in untagged words as IEEE-754
		// bits; feeding a pointer to an FP unit clears its tag like any
		// other non-pointer operation.
		a := math.Float64frombits(r[inst.Ra].Uint())
		bv := math.Float64frombits(r[inst.Rb].Uint())
		switch inst.Op {
		case isa.FADD:
			r[inst.Rd] = word.FromUint(math.Float64bits(a + bv))
		case isa.FSUB:
			r[inst.Rd] = word.FromUint(math.Float64bits(a - bv))
		case isa.FMUL:
			r[inst.Rd] = word.FromUint(math.Float64bits(a * bv))
		case isa.FDIV:
			r[inst.Rd] = word.FromUint(math.Float64bits(a / bv))
		case isa.FSLT:
			setBool(a < bv)
		}
	case isa.ITOF:
		r[inst.Rd] = word.FromUint(math.Float64bits(float64(intA())))
	case isa.FTOI:
		setInt(int64(math.Float64frombits(r[inst.Ra].Uint())))
	}

	if m.advance(t) {
		m.retire(t)
	}
}

// effectiveAddress performs the full pre-issue check sequence of
// Sec 2.2 for a word load or store: decode the pointer operand, apply
// the displacement with a bounds-checked LEA, check the permission and
// the access span, and require natural alignment. After it succeeds
// "the access is guaranteed not to cause a protection violation".
func (m *Machine) effectiveAddress(t *Thread, inst isa.Inst, write bool) (core.Pointer, bool) {
	return m.effectiveAddressSized(t, inst, write, word.BytesPerWord)
}

// effectiveAddressSized is effectiveAddress for an access of the given
// size in bytes; byte accesses (size 1) have no alignment requirement,
// which is how single-byte segments become usable.
func (m *Machine) effectiveAddressSized(t *Thread, inst isa.Inst, write bool, size uint64) (core.Pointer, bool) {
	addrWord := t.Regs[inst.Ra]
	if inst.Imm != 0 {
		p, err := core.Decode(addrWord)
		if err != nil {
			m.fault(t, err)
			return core.Pointer{}, false
		}
		p, err = core.LEA(p, inst.Imm)
		if err != nil {
			m.fault(t, err)
			return core.Pointer{}, false
		}
		addrWord = p.Word()
	}
	var p core.Pointer
	var err error
	if write {
		p, err = core.CheckStore(addrWord, size)
	} else {
		p, err = core.CheckLoad(addrWord, size)
	}
	if err != nil {
		m.fault(t, err)
		return core.Pointer{}, false
	}
	if p.Addr()%size != 0 {
		m.fault(t, &core.Fault{Code: core.FaultBounds, Op: "MEM", Msg: "unaligned access"})
		return core.Pointer{}, false
	}
	return p, true
}

// branch moves the IP by imm instructions relative to the *next*
// instruction, through a bounds-checked LEA — control flow cannot leave
// the code segment.
func (m *Machine) branch(t *Thread, imm int64) {
	ip, err := core.LEA(t.IP, (imm+1)*word.BytesPerWord)
	if err != nil {
		m.fault(t, err)
		return
	}
	t.IP = ip
	m.retire(t)
}

// advance steps the IP to the next instruction; a bounds fault here
// means the thread ran off the end of its code segment.
func (m *Machine) advance(t *Thread) bool {
	ip, err := core.LEA(t.IP, word.BytesPerWord)
	if err != nil {
		m.fault(t, err)
		return false
	}
	t.IP = ip
	return true
}

// block parks the thread until its outstanding memory reference
// completes. A thread blocked until cycle+1 is ready again on the very
// next cycle, so single-cycle cache hits sustain one instruction per
// cycle.
func (m *Machine) block(t *Thread, done uint64) {
	if done > m.cycle+1 {
		t.State = Blocked
		t.blockedUntil = done
	}
}

func (m *Machine) retire(t *Thread) {
	t.Instret++
	m.stats.Instructions++
}

// fault routes a protection or translation fault to the kernel handler
// or, absent one, terminates the thread.
func (m *Machine) fault(t *Thread, err error) {
	m.stats.Faults++
	if m.Tracer != nil && m.Tracer.Enabled(telemetry.EvFault) {
		m.Tracer.Emit(telemetry.Event{Cycle: m.cycle, Kind: telemetry.EvFault,
			Thread: t.ID, Cluster: t.cluster, Domain: t.Domain,
			Addr: t.IP.Addr(), Code: int64(core.CodeOf(err)), Detail: err.Error()})
	}
	if m.OnFault != nil && m.OnFault(m, t, err) {
		return
	}
	t.State = Faulted
	t.Fault = err
}
