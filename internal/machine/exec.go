package machine

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/telemetry"
	"repro/internal/word"
)

// execute runs one instruction for t at the current cycle.
//
// Fault discipline: protection faults are raised *before* any state is
// committed and do not advance the instruction pointer, so a fault
// handler that repairs the cause (e.g. maps a page) can simply return
// true and the instruction re-executes. TRAP is the exception — it
// advances the IP first, so the kernel's return path resumes after the
// trap.
func (m *Machine) execute(t *Thread) {
	if t.IP.Addr()%word.BytesPerWord != 0 {
		m.fault(t, &core.Fault{Code: core.FaultBounds, Op: "FETCH", Msg: "unaligned instruction pointer"})
		return
	}
	if m.Remote != nil && m.Remote.IsRemote(t.IP.Addr()) {
		m.executeRemoteFetch(t)
		return
	}
	if m.jit != nil && m.jitStep(t) {
		return
	}
	inst, err := m.fetchDecoded(t.IP.Addr())
	if err != nil {
		m.fault(t, err)
		return
	}
	m.dispatch(t, inst)
}

// fetchDecoded fetches and decodes the local instruction word at vaddr,
// consulting the decoded-instruction cache first. The address is
// translated on every fetch — hit or miss — so translation/TLB counters
// and page-fault behavior are bit-identical to an uncached fetch; a hit
// skips only the physical read and the decode. Decode failures surface
// as FETCH permission faults and are never cached.
func (m *Machine) fetchDecoded(vaddr uint64) (isa.Inst, error) {
	e := &m.dec[(vaddr>>3)&decMask]
	if e.key == vaddr+1 {
		if _, _, err := m.Space.Translate(vaddr); err != nil {
			return isa.Inst{}, err
		}
		return e.inst, nil
	}
	paddr, _, err := m.Space.Translate(vaddr)
	if err != nil {
		return isa.Inst{}, err
	}
	w, err := m.Space.Phys.ReadWord(paddr)
	if err != nil {
		return isa.Inst{}, err
	}
	inst, derr := isa.Decode(w)
	if derr != nil {
		return isa.Inst{}, &core.Fault{Code: core.FaultPerm, Op: "FETCH", Msg: derr.Error()}
	}
	e.key = vaddr + 1
	e.inst = inst
	return inst, nil
}

// executeRemoteFetch handles an instruction fetch whose address is
// homed on another node (execute pointers are valid machine-wide,
// Sec 3: running code homed elsewhere fetches each instruction over the
// mesh — correct, and deliberately slow; real software migrates code).
// Under DeferRemote the fetch is parked for the cycle barrier;
// otherwise it runs inline, exactly the pre-barrier semantics.
func (m *Machine) executeRemoteFetch(t *Thread) {
	if m.deferRemote(remFetch, t, t.IP.Addr(), word.Word{}, isa.Inst{}) {
		return
	}
	w, fetchDone, err := m.Remote.ReadWord(t.IP.Addr(), m.now)
	if err != nil {
		m.fault(t, err)
		return
	}
	if fetchDone == NeverDone {
		m.lose(t)
		return
	}
	m.observeRemoteRT(m.now, fetchDone)
	inst, derr := isa.Decode(w)
	if derr != nil {
		m.fault(t, &core.Fault{Code: core.FaultPerm, Op: "FETCH", Msg: derr.Error()})
		return
	}
	m.dispatch(t, inst)
	m.finishRemoteFetch(t, fetchDone)
}

// observeRemoteRT records a completed remote access's round trip into
// the remote-latency histogram. Call only with done != NeverDone.
func (m *Machine) observeRemoteRT(issue, done uint64) {
	if m.hists != nil {
		m.hists.RemoteRT.Observe(done - issue)
	}
}

// finishRemoteFetch applies the fetch network latency after the
// instruction has executed: a still-ready thread blocks until the fetch
// would have arrived, and a thread already blocked on a slower memory
// reference keeps the later wakeup. (This replaces a per-cycle defer
// that used to do the same on every return path of execute.)
func (m *Machine) finishRemoteFetch(t *Thread, fetchDone uint64) {
	if t.State == Ready && fetchDone > m.now+1 {
		t.State = Blocked
		t.blockedUntil = fetchDone
	} else if t.State == Blocked && fetchDone > t.blockedUntil {
		t.blockedUntil = fetchDone
	}
}

// deferRemote parks a remote access for barrier-time completion and
// blocks the thread; it reports false when the access must instead run
// inline (immediate mode, or already inside ServiceRemote).
func (m *Machine) deferRemote(kind remoteKind, t *Thread, addr uint64, val word.Word, inst isa.Inst) bool {
	if !m.DeferRemote || m.servicing {
		return false
	}
	m.pending = append(m.pending, pendingRemote{
		kind: kind, t: t, addr: addr, val: val, inst: inst, cycle: m.now,
	})
	t.State = Blocked
	t.blockedUntil = pendingSentinel
	return true
}

// ServiceRemote completes every remote access parked during Step. The
// multicomputer calls it at the per-cycle barrier, visiting nodes in id
// order, so cross-node traffic is serialized identically whether the
// nodes stepped serially or in parallel. Each access replays with the
// cycle stamp of its issue (m.now), so latencies, blocking, and traces
// match an inline access exactly. Nested remote accesses made while
// servicing (e.g. a remotely fetched LD to a third node) run inline.
func (m *Machine) ServiceRemote() {
	if len(m.pending) == 0 {
		return
	}
	m.servicing = true
	for i := range m.pending {
		p := m.pending[i]
		m.pending[i] = pendingRemote{} // drop the *Thread reference
		m.now = p.cycle
		m.servicePending(p)
	}
	m.pending = m.pending[:0]
	m.servicing = false
	m.now = m.cycle
}

func (m *Machine) servicePending(p pendingRemote) {
	t := p.t
	t.State = Ready
	t.blockedUntil = 0
	switch p.kind {
	case remFetch:
		w, fetchDone, err := m.Remote.ReadWord(p.addr, p.cycle)
		if err != nil {
			m.fault(t, err)
			return
		}
		if fetchDone == NeverDone {
			m.lose(t)
			return
		}
		m.observeRemoteRT(p.cycle, fetchDone)
		inst, derr := isa.Decode(w)
		if derr != nil {
			m.fault(t, &core.Fault{Code: core.FaultPerm, Op: "FETCH", Msg: derr.Error()})
			return
		}
		m.dispatch(t, inst)
		m.finishRemoteFetch(t, fetchDone)

	case remLoad:
		v, done, err := m.Remote.ReadWord(p.addr, p.cycle)
		if err != nil {
			m.fault(t, err)
			return
		}
		if done == NeverDone {
			m.lose(t)
			return
		}
		m.observeRemoteRT(p.cycle, done)
		t.Regs[p.inst.Rd] = v
		m.block(t, done)
		if m.advance(t) {
			m.retire(t)
		}

	case remStore:
		done, err := m.Remote.WriteWord(p.addr, p.val, p.cycle)
		if err != nil {
			m.fault(t, err)
			return
		}
		if done == NeverDone {
			m.lose(t)
			return
		}
		m.observeRemoteRT(p.cycle, done)
		m.block(t, done)
		if m.advance(t) {
			m.retire(t)
		}

	case remLoadByte:
		wv, done, err := m.Remote.ReadWord(p.addr&^7, p.cycle)
		if err != nil {
			m.fault(t, err)
			return
		}
		if done == NeverDone {
			m.lose(t)
			return
		}
		m.observeRemoteRT(p.cycle, done)
		t.Regs[p.inst.Rd] = word.FromInt(int64(byte(wv.Bits >> ((p.addr & 7) * 8))))
		m.block(t, done)
		if m.advance(t) {
			m.retire(t)
		}

	case remStoreByte:
		// Remote read-modify-write of the containing word; the tag is
		// cleared like any partial overwrite.
		base := p.addr &^ 7
		wv, done, err := m.Remote.ReadWord(base, p.cycle)
		if err == nil && done != NeverDone {
			shift := (p.addr & 7) * 8
			wv.Bits = wv.Bits&^(uint64(0xff)<<shift) | uint64(byte(p.val.Bits))<<shift
			wv.Tag = false
			done, err = m.Remote.WriteWord(base, wv, done)
		}
		if err != nil {
			m.fault(t, err)
			return
		}
		if done == NeverDone {
			m.lose(t)
			return
		}
		m.observeRemoteRT(p.cycle, done)
		m.block(t, done)
		if m.advance(t) {
			m.retire(t)
		}
	}
}

// dispatch executes one decoded instruction for t. It is straight-line
// code — no closures, no defers — because it runs once per simulated
// instruction.
func (m *Machine) dispatch(t *Thread, inst isa.Inst) {
	if m.Integrity != nil {
		if err := m.Integrity(t, inst); err != nil {
			m.fault(t, err)
			return
		}
	}
	if m.OnIssue != nil {
		m.OnIssue(t, inst)
	}
	if m.Profiler != nil {
		m.Profiler.Sample(t.IP.Addr())
	}
	if m.Tracer != nil && m.Tracer.Enabled(telemetry.EvInstr) {
		m.Tracer.Emit(telemetry.Event{Cycle: m.now, Kind: telemetry.EvInstr,
			Thread: t.ID, Cluster: t.cluster, Domain: t.Domain,
			Addr: t.IP.Addr(), Detail: inst.String()})
	}

	r := &t.Regs

	switch inst.Op {
	case isa.NOP:
	case isa.HALT:
		t.State = Halted
		m.retire(t)
		return

	// Integer results are written untagged: any pointer operand of a
	// non-pointer operation has its tag cleared in the result (Sec 2.2).
	case isa.ADD:
		r[inst.Rd] = word.FromInt(r[inst.Ra].Int() + r[inst.Rb].Int())
	case isa.ADDI:
		r[inst.Rd] = word.FromInt(r[inst.Ra].Int() + inst.Imm)
	case isa.SUB:
		r[inst.Rd] = word.FromInt(r[inst.Ra].Int() - r[inst.Rb].Int())
	case isa.SUBI:
		r[inst.Rd] = word.FromInt(r[inst.Ra].Int() - inst.Imm)
	case isa.MUL:
		r[inst.Rd] = word.FromInt(r[inst.Ra].Int() * r[inst.Rb].Int())
	case isa.AND:
		r[inst.Rd] = word.FromInt(r[inst.Ra].Int() & r[inst.Rb].Int())
	case isa.OR:
		r[inst.Rd] = word.FromInt(r[inst.Ra].Int() | r[inst.Rb].Int())
	case isa.XOR:
		r[inst.Rd] = word.FromInt(r[inst.Ra].Int() ^ r[inst.Rb].Int())
	case isa.SHL:
		r[inst.Rd] = word.FromInt(r[inst.Ra].Int() << (uint64(r[inst.Rb].Int()) & 63))
	case isa.SHLI:
		r[inst.Rd] = word.FromInt(r[inst.Ra].Int() << (uint64(inst.Imm) & 63))
	case isa.SHR:
		r[inst.Rd] = word.FromInt(int64(uint64(r[inst.Ra].Int()) >> (uint64(r[inst.Rb].Int()) & 63)))
	case isa.SHRI:
		r[inst.Rd] = word.FromInt(int64(uint64(r[inst.Ra].Int()) >> (uint64(inst.Imm) & 63)))
	case isa.SLT:
		r[inst.Rd] = word.FromBool(r[inst.Ra].Int() < r[inst.Rb].Int())
	case isa.SLTI:
		r[inst.Rd] = word.FromBool(r[inst.Ra].Int() < inst.Imm)
	case isa.SEQ:
		r[inst.Rd] = word.FromBool(r[inst.Ra] == r[inst.Rb])
	case isa.SEQI:
		r[inst.Rd] = word.FromBool(r[inst.Ra].Int() == inst.Imm)
	case isa.MOV:
		r[inst.Rd] = r[inst.Ra] // verbatim copy: copying a capability is legal
	case isa.LDI:
		r[inst.Rd] = word.FromInt(inst.Imm)

	case isa.BR:
		m.branch(t, inst.Imm)
		return
	case isa.BEQZ:
		if r[inst.Ra].Int() == 0 {
			m.branch(t, inst.Imm)
			return
		}
	case isa.BNEZ:
		if r[inst.Ra].Int() != 0 {
			m.branch(t, inst.Imm)
			return
		}

	case isa.JMP, isa.JMPL:
		p, err := core.Decode(r[inst.Ra])
		if err != nil {
			m.fault(t, err)
			return
		}
		ip, err := core.JumpTarget(p)
		if err != nil {
			m.fault(t, err)
			return
		}
		if ip.Addr()%word.BytesPerWord != 0 {
			m.fault(t, &core.Fault{Code: core.FaultBounds, Op: "JMP", Msg: "unaligned jump target"})
			return
		}
		if inst.Op == isa.JMPL {
			ret, err := core.LEA(t.IP, word.BytesPerWord)
			if err != nil {
				m.fault(t, err)
				return
			}
			r[inst.Rd] = ret.Word()
		}
		t.IP = ip
		m.retire(t)
		return

	case isa.TRAP:
		// Advance first: the kernel resumes the thread after the trap.
		if !m.advance(t) {
			return
		}
		m.stats.Traps++
		if m.Tracer != nil && m.Tracer.Enabled(telemetry.EvTrap) {
			m.Tracer.Emit(telemetry.Event{Cycle: m.now, Kind: telemetry.EvTrap,
				Thread: t.ID, Cluster: t.cluster, Domain: t.Domain, Code: inst.Imm})
		}
		if m.Flight != nil {
			m.Flight.Record(telemetry.Event{Cycle: m.now, Kind: telemetry.EvTrap,
				Thread: t.ID, Cluster: t.cluster, Domain: t.Domain, Code: inst.Imm})
		}
		m.retire(t)
		if m.OnTrap == nil {
			m.fault(t, &core.Fault{Code: core.FaultPriv, Op: "TRAP", Msg: "no trap handler installed"})
			return
		}
		if m.cfg.TrapCost > 0 {
			t.State = Blocked
			t.blockedUntil = m.now + m.cfg.TrapCost
		}
		if err := m.OnTrap(m, t, inst.Imm); err != nil {
			m.fault(t, err)
		}
		return

	case isa.LD:
		p, ok := m.effectiveAddress(t, inst, false)
		if !ok {
			return
		}
		if m.Remote != nil && m.Remote.IsRemote(p.Addr()) {
			if m.deferRemote(remLoad, t, p.Addr(), word.Word{}, inst) {
				return
			}
			v, done, err := m.Remote.ReadWord(p.Addr(), m.now)
			if err != nil {
				m.fault(t, err)
				return
			}
			if done == NeverDone {
				m.lose(t)
				return
			}
			m.observeRemoteRT(m.now, done)
			r[inst.Rd] = v
			m.block(t, done)
		} else {
			v, done, err := m.Cache.ReadWord(p.Addr(), m.now)
			if err != nil {
				m.fault(t, err)
				return
			}
			r[inst.Rd] = v
			m.block(t, done)
		}
	case isa.ST:
		p, ok := m.effectiveAddress(t, inst, true)
		if !ok {
			return
		}
		if m.Remote != nil && m.Remote.IsRemote(p.Addr()) {
			if m.deferRemote(remStore, t, p.Addr(), r[inst.Rb], inst) {
				return
			}
			done, err := m.Remote.WriteWord(p.Addr(), r[inst.Rb], m.now)
			if err != nil {
				m.fault(t, err)
				return
			}
			if done == NeverDone {
				m.lose(t)
				return
			}
			m.observeRemoteRT(m.now, done)
			m.block(t, done)
		} else {
			done, err := m.Cache.WriteWord(p.Addr(), r[inst.Rb], m.now)
			if err != nil {
				m.fault(t, err)
				return
			}
			m.block(t, done)
		}

	case isa.LDB:
		p, ok := m.effectiveAddressSized(t, inst, false, 1)
		if !ok {
			return
		}
		if m.Remote != nil && m.Remote.IsRemote(p.Addr()) {
			if m.deferRemote(remLoadByte, t, p.Addr(), word.Word{}, inst) {
				return
			}
			wv, done, err := m.Remote.ReadWord(p.Addr()&^7, m.now)
			if err != nil {
				m.fault(t, err)
				return
			}
			if done == NeverDone {
				m.lose(t)
				return
			}
			m.observeRemoteRT(m.now, done)
			r[inst.Rd] = word.FromInt(int64(byte(wv.Bits >> ((p.Addr() & 7) * 8))))
			m.block(t, done)
		} else {
			done, _, err := m.Cache.Access(p.Addr(), false, m.now)
			var bval byte
			if err == nil {
				bval, err = m.Space.ByteAt(p.Addr())
			}
			if err != nil {
				m.fault(t, err)
				return
			}
			r[inst.Rd] = word.FromInt(int64(bval))
			m.block(t, done)
		}
	case isa.STB:
		p, ok := m.effectiveAddressSized(t, inst, true, 1)
		if !ok {
			return
		}
		bval := byte(r[inst.Rb].Bits)
		if m.Remote != nil && m.Remote.IsRemote(p.Addr()) {
			if m.deferRemote(remStoreByte, t, p.Addr(), r[inst.Rb], inst) {
				return
			}
			// Remote read-modify-write of the containing word; the tag
			// is cleared like any partial overwrite.
			base := p.Addr() &^ 7
			wv, done, err := m.Remote.ReadWord(base, m.now)
			if err == nil && done != NeverDone {
				shift := (p.Addr() & 7) * 8
				wv.Bits = wv.Bits&^(uint64(0xff)<<shift) | uint64(bval)<<shift
				wv.Tag = false
				done, err = m.Remote.WriteWord(base, wv, done)
			}
			if err != nil {
				m.fault(t, err)
				return
			}
			if done == NeverDone {
				m.lose(t)
				return
			}
			m.observeRemoteRT(m.now, done)
			m.block(t, done)
		} else {
			done, _, err := m.Cache.Access(p.Addr(), true, m.now)
			if err == nil {
				err = m.Space.SetByteAt(p.Addr(), bval)
			}
			if err != nil {
				m.fault(t, err)
				return
			}
			m.block(t, done)
		}

	case isa.LEA, isa.LEAI, isa.LEAB, isa.LEABI:
		p, err := core.Decode(r[inst.Ra])
		if err != nil {
			m.fault(t, err)
			return
		}
		off := inst.Imm
		if inst.Op == isa.LEA || inst.Op == isa.LEAB {
			off = r[inst.Rb].Int()
		}
		var q core.Pointer
		if inst.Op == isa.LEA || inst.Op == isa.LEAI {
			q, err = core.LEA(p, off)
		} else {
			q, err = core.LEAB(p, off)
		}
		if err != nil {
			m.fault(t, err)
			return
		}
		r[inst.Rd] = q.Word()
	case isa.RESTRICT:
		p, err := core.Decode(r[inst.Ra])
		if err != nil {
			m.fault(t, err)
			return
		}
		q, err := core.Restrict(p, core.Perm(r[inst.Rb].Uint()&0xf))
		if err != nil {
			m.fault(t, err)
			return
		}
		r[inst.Rd] = q.Word()
	case isa.SUBSEG:
		p, err := core.Decode(r[inst.Ra])
		if err != nil {
			m.fault(t, err)
			return
		}
		q, err := core.SubSeg(p, uint(r[inst.Rb].Uint()&0x3f))
		if err != nil {
			m.fault(t, err)
			return
		}
		r[inst.Rd] = q.Word()
	case isa.SETPTR:
		q, err := core.SetPtr(r[inst.Ra], t.Privileged())
		if err != nil {
			m.fault(t, err)
			return
		}
		r[inst.Rd] = q.Word()
	case isa.ISPTR:
		r[inst.Rd] = word.FromBool(core.IsPointer(r[inst.Ra]))
	case isa.GETPERM:
		p, err := core.Decode(r[inst.Ra])
		if err != nil {
			m.fault(t, err)
			return
		}
		r[inst.Rd] = word.FromInt(int64(p.Perm()))
	case isa.GETLEN:
		p, err := core.Decode(r[inst.Ra])
		if err != nil {
			m.fault(t, err)
			return
		}
		r[inst.Rd] = word.FromInt(int64(p.LogLen()))
	case isa.MOVIP:
		r[inst.Rd] = t.IP.Word()

	case isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV, isa.FSLT:
		// Floating-point operands ride in untagged words as IEEE-754
		// bits; feeding a pointer to an FP unit clears its tag like any
		// other non-pointer operation.
		a := math.Float64frombits(r[inst.Ra].Uint())
		bv := math.Float64frombits(r[inst.Rb].Uint())
		switch inst.Op {
		case isa.FADD:
			r[inst.Rd] = word.FromUint(math.Float64bits(a + bv))
		case isa.FSUB:
			r[inst.Rd] = word.FromUint(math.Float64bits(a - bv))
		case isa.FMUL:
			r[inst.Rd] = word.FromUint(math.Float64bits(a * bv))
		case isa.FDIV:
			r[inst.Rd] = word.FromUint(math.Float64bits(a / bv))
		case isa.FSLT:
			r[inst.Rd] = word.FromBool(a < bv)
		}
	case isa.ITOF:
		r[inst.Rd] = word.FromUint(math.Float64bits(float64(r[inst.Ra].Int())))
	case isa.FTOI:
		r[inst.Rd] = word.FromInt(int64(math.Float64frombits(r[inst.Ra].Uint())))
	}

	if m.advance(t) {
		m.retire(t)
	}
}

// effectiveAddress performs the full pre-issue check sequence of
// Sec 2.2 for a word load or store: decode the pointer operand, apply
// the displacement with a bounds-checked LEA, check the permission and
// the access span, and require natural alignment. After it succeeds
// "the access is guaranteed not to cause a protection violation".
func (m *Machine) effectiveAddress(t *Thread, inst isa.Inst, write bool) (core.Pointer, bool) {
	return m.effectiveAddressSized(t, inst, write, word.BytesPerWord)
}

// effectiveAddressSized is effectiveAddress for an access of the given
// size in bytes; byte accesses (size 1) have no alignment requirement,
// which is how single-byte segments become usable.
func (m *Machine) effectiveAddressSized(t *Thread, inst isa.Inst, write bool, size uint64) (core.Pointer, bool) {
	addrWord := t.Regs[inst.Ra]
	if inst.Imm != 0 {
		p, err := core.Decode(addrWord)
		if err != nil {
			m.fault(t, err)
			return core.Pointer{}, false
		}
		p, err = core.LEA(p, inst.Imm)
		if err != nil {
			m.fault(t, err)
			return core.Pointer{}, false
		}
		addrWord = p.Word()
	}
	var p core.Pointer
	var err error
	if write {
		p, err = core.CheckStore(addrWord, size)
	} else {
		p, err = core.CheckLoad(addrWord, size)
	}
	if err != nil {
		m.fault(t, err)
		return core.Pointer{}, false
	}
	if p.Addr()%size != 0 {
		m.fault(t, &core.Fault{Code: core.FaultBounds, Op: "MEM", Msg: "unaligned access"})
		return core.Pointer{}, false
	}
	return p, true
}

// branch moves the IP by imm instructions relative to the *next*
// instruction, through a bounds-checked LEA — control flow cannot leave
// the code segment.
func (m *Machine) branch(t *Thread, imm int64) {
	ip, err := core.LEA(t.IP, (imm+1)*word.BytesPerWord)
	if err != nil {
		m.fault(t, err)
		return
	}
	t.IP = ip
	if m.jit != nil {
		// Taken-branch targets are the translator's heat signal: hot
		// loop heads cross the compile threshold here.
		m.jit.NoteBranch(ip.Addr())
	}
	m.retire(t)
}

// advance steps the IP to the next instruction; a bounds fault here
// means the thread ran off the end of its code segment.
func (m *Machine) advance(t *Thread) bool {
	ip, err := core.LEA(t.IP, word.BytesPerWord)
	if err != nil {
		m.fault(t, err)
		return false
	}
	t.IP = ip
	return true
}

// lose parks the thread forever: its remote access was consumed by the
// fabric and will never complete. No architectural effect is committed
// — the IP stays on the access, no register or memory changes — so the
// thread hangs exactly where a real node would, waiting for a reply
// that is not coming. The owner's watchdog is what notices.
func (m *Machine) lose(t *Thread) {
	if m.Flight != nil {
		m.Flight.Note(m.now, telemetry.EvNoCMsg,
			fmt.Sprintf("thread %d lost: remote access consumed by fabric", t.ID))
	}
	t.State = Blocked
	t.blockedUntil = NeverDone
}

// block parks the thread until its outstanding memory reference
// completes. A thread blocked until cycle+1 is ready again on the very
// next cycle, so single-cycle cache hits sustain one instruction per
// cycle.
func (m *Machine) block(t *Thread, done uint64) {
	if done > m.now+1 {
		t.State = Blocked
		t.blockedUntil = done
	}
}

func (m *Machine) retire(t *Thread) {
	t.Instret++
	m.stats.Instructions++
}

// fault routes a protection or translation fault to the kernel handler
// or, absent one, terminates the thread.
func (m *Machine) fault(t *Thread, err error) {
	m.stats.Faults++
	if m.Tracer != nil && m.Tracer.Enabled(telemetry.EvFault) {
		m.Tracer.Emit(telemetry.Event{Cycle: m.now, Kind: telemetry.EvFault,
			Thread: t.ID, Cluster: t.cluster, Domain: t.Domain,
			Addr: t.IP.Addr(), Code: int64(core.CodeOf(err)), Detail: err.Error()})
	}
	if m.Flight != nil {
		m.Flight.Record(telemetry.Event{Cycle: m.now, Kind: telemetry.EvFault,
			Thread: t.ID, Cluster: t.cluster, Domain: t.Domain,
			Addr: t.IP.Addr(), Code: int64(core.CodeOf(err)), Detail: err.Error()})
	}
	if m.OnFault != nil && m.OnFault(m, t, err) {
		return
	}
	t.State = Faulted
	t.Fault = err
	if m.OnFlightDump != nil {
		m.OnFlightDump("machine fault: " + err.Error())
	}
}
