package machine

import (
	"repro/internal/asm"
	"repro/internal/capverify"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/jit"
	"repro/internal/telemetry"
	"repro/internal/word"
)

// This file is the executor for internal/jit's compiled superblocks:
// the machine-side half of the compiled execution tier. A Step is pure
// data; running it needs the machine's cache, address space, fault
// routing and cycle accounting, so the per-kind switch lives here.
//
// Equivalence contract with the interpreter (exec.go), per step:
//   - the fetch address is translated exactly once (the decoded-cache
//     hit path), so vm/TLB counters and page-fault behavior match;
//   - elided steps perform the same Cache/Space accesses with the same
//     m.now stamps, writing the same register values the checked path
//     would produce when its checks pass (which capverify proved);
//   - retained steps run the interpreter's own dispatch;
//   - faults, blocking, and retirement use the interpreter's helpers.
// Under that contract architectural state, stats, and cycle counts are
// bit-identical with the translator on or off.

// EnableJIT installs a superblock translator on the machine and returns
// it. The Space invalidation hooks are extended so stores into
// registered code and unmaps invalidate compiled blocks alongside the
// decoded-instruction cache. Call before RegisterMetrics to get the
// jit.* counters published.
func (m *Machine) EnableJIT(cfg jit.Config) *jit.Engine {
	m.jit = jit.New(cfg)
	m.Space.OnWrite = func(vaddr uint64) {
		m.invalidateDecodedWord(vaddr)
		m.jit.InvalidateWrite(vaddr)
	}
	m.Space.OnUnmap = func(vaddr, size uint64) {
		m.FlushDecoded()
		m.jit.InvalidateUnmap(vaddr, size)
	}
	return m.jit
}

// JIT returns the translator, or nil when EnableJIT has not run.
func (m *Machine) JIT() *jit.Engine { return m.jit }

// JITRegister registers a loaded program's code with the translator; a
// no-op without EnableJIT. base is the load address of the program's
// code segment and vcfg must describe the environment the program runs
// under — see jit.Engine.Register for the soundness contract.
func (m *Machine) JITRegister(prog *asm.Program, base uint64, vcfg capverify.Config) {
	if m.jit != nil {
		m.jit.Register(prog, base, vcfg)
	}
}

// jitStep runs the thread's next instruction(s) from a compiled block,
// returning false when the interpreter should run instead: no block
// covers the IP, or a per-instruction observation hook is installed
// (those see every dispatched instruction, which elided steps bypass).
func (m *Machine) jitStep(t *Thread) bool {
	if m.Integrity != nil || m.OnIssue != nil || m.Profiler != nil {
		return false
	}
	if m.Tracer != nil && m.Tracer.Enabled(telemetry.EvInstr) {
		return false
	}
	blk, idx := t.jblk, t.jidx
	if blk != nil {
		t.jblk = nil
		if !blk.Valid || idx >= len(blk.Steps) || blk.Steps[idx].Addr != t.IP.Addr() {
			blk = nil
		}
	}
	if blk == nil {
		blk = m.jit.BlockAt(t.IP.Addr())
		if blk == nil {
			return false
		}
		idx = 0
		m.jit.Counters.Entries++
	}
	if len(m.threads) == 1 && m.Remote == nil && m.scrubEvery == 0 {
		m.runBlockWhole(t, blk, idx)
	} else {
		m.runBlockPaced(t, blk, idx)
	}
	return true
}

// runBlockPaced executes exactly one compiled step per machine cycle,
// leaving all per-cycle accounting to the ordinary Step loop. This is
// the mode for configurations where other agents act between cycles —
// sibling threads, deferred remote traffic, the background scrubber.
func (m *Machine) runBlockPaced(t *Thread, blk *jit.Block, idx int) {
	next, in := m.execStep(t, blk, idx)
	if in && blk.Valid && next < len(blk.Steps) {
		t.jblk, t.jidx = blk, next
	}
}

// runBlockWhole executes as much of the block as it can inside one
// Step call — including chaining a block-ending branch back to the
// block head — applying the cycle accounting the interpreter would
// have accumulated per instruction in one batch: each extra step is
// one more cycle, one more issue packet on this cluster, and one idle
// cycle on each of the others. Exit leaves a resume cursor when the
// block can continue (memory blocking, chain budget).
func (m *Machine) runBlockWhole(t *Thread, blk *jit.Block, idx int) {
	budget := m.jit.ChainBudget()
	issued := 1
	for {
		next, in := m.execStep(t, blk, idx)
		if !in {
			return
		}
		if t.State != Ready || !blk.Valid || next >= len(blk.Steps) {
			if blk.Valid && next < len(blk.Steps) {
				t.jblk, t.jidx = blk, next
			}
			return
		}
		if issued >= budget {
			t.jblk, t.jidx = blk, next
			return
		}
		// The next step would execute at cycle m.cycle+1; a Run cap
		// means the interpreter would have stopped before it.
		if m.runLimit != 0 && m.cycle+1 >= m.runLimit {
			t.jblk, t.jidx = blk, next
			return
		}
		m.cycle++
		m.now = m.cycle
		m.stats.Cycles++
		m.stats.IssuePackets++
		m.stats.IdleCycles += uint64(m.cfg.Clusters - 1)
		issued++
		idx = next
	}
}

// execStep runs blk.Steps[idx] for t at cycle m.now, exactly as the
// interpreter would have. It returns the next step index and whether
// execution may continue inside this block; false after faults, halts,
// control transfers that leave the block, and dispatch divergence.
func (m *Machine) execStep(t *Thread, blk *jit.Block, idx int) (int, bool) {
	s := &blk.Steps[idx]
	// Translate the fetch address every step, hit-path style (see
	// fetchDecoded): keeps TLB counters and fetch page faults
	// bit-identical to the interpreter.
	if _, _, err := m.Space.Translate(s.Addr); err != nil {
		m.fault(t, err)
		return 0, false
	}
	r := &t.Regs
	inst := &s.Inst
	switch s.Kind {
	case jit.KALU:
		switch inst.Op {
		case isa.NOP:
		case isa.ADD:
			r[inst.Rd] = word.FromInt(r[inst.Ra].Int() + r[inst.Rb].Int())
		case isa.ADDI:
			r[inst.Rd] = word.FromInt(r[inst.Ra].Int() + inst.Imm)
		case isa.SUB:
			r[inst.Rd] = word.FromInt(r[inst.Ra].Int() - r[inst.Rb].Int())
		case isa.SUBI:
			r[inst.Rd] = word.FromInt(r[inst.Ra].Int() - inst.Imm)
		case isa.MUL:
			r[inst.Rd] = word.FromInt(r[inst.Ra].Int() * r[inst.Rb].Int())
		case isa.AND:
			r[inst.Rd] = word.FromInt(r[inst.Ra].Int() & r[inst.Rb].Int())
		case isa.OR:
			r[inst.Rd] = word.FromInt(r[inst.Ra].Int() | r[inst.Rb].Int())
		case isa.XOR:
			r[inst.Rd] = word.FromInt(r[inst.Ra].Int() ^ r[inst.Rb].Int())
		case isa.SHL:
			r[inst.Rd] = word.FromInt(r[inst.Ra].Int() << (uint64(r[inst.Rb].Int()) & 63))
		case isa.SHLI:
			r[inst.Rd] = word.FromInt(r[inst.Ra].Int() << (uint64(inst.Imm) & 63))
		case isa.SHR:
			r[inst.Rd] = word.FromInt(int64(uint64(r[inst.Ra].Int()) >> (uint64(r[inst.Rb].Int()) & 63)))
		case isa.SHRI:
			r[inst.Rd] = word.FromInt(int64(uint64(r[inst.Ra].Int()) >> (uint64(inst.Imm) & 63)))
		case isa.SLT:
			r[inst.Rd] = word.FromBool(r[inst.Ra].Int() < r[inst.Rb].Int())
		case isa.SLTI:
			r[inst.Rd] = word.FromBool(r[inst.Ra].Int() < inst.Imm)
		case isa.SEQ:
			r[inst.Rd] = word.FromBool(r[inst.Ra] == r[inst.Rb])
		case isa.SEQI:
			r[inst.Rd] = word.FromBool(r[inst.Ra].Int() == inst.Imm)
		case isa.MOV:
			r[inst.Rd] = r[inst.Ra]
		case isa.LDI:
			r[inst.Rd] = word.FromInt(inst.Imm)
		}

	case jit.KLoad:
		addr := (r[inst.Ra].Bits + uint64(inst.Imm)) & core.AddrMask
		if m.Remote != nil && m.Remote.IsRemote(addr) {
			return m.stepDispatch(t, blk, s, idx)
		}
		v, done, err := m.Cache.ReadWord(addr, m.now)
		if err != nil {
			m.fault(t, err)
			return 0, false
		}
		r[inst.Rd] = v
		m.block(t, done)

	case jit.KStore:
		addr := (r[inst.Ra].Bits + uint64(inst.Imm)) & core.AddrMask
		if m.Remote != nil && m.Remote.IsRemote(addr) {
			return m.stepDispatch(t, blk, s, idx)
		}
		done, err := m.Cache.WriteWord(addr, r[inst.Rb], m.now)
		if err != nil {
			m.fault(t, err)
			return 0, false
		}
		m.block(t, done)

	case jit.KLoadB:
		addr := (r[inst.Ra].Bits + uint64(inst.Imm)) & core.AddrMask
		if m.Remote != nil && m.Remote.IsRemote(addr) {
			return m.stepDispatch(t, blk, s, idx)
		}
		done, _, err := m.Cache.Access(addr, false, m.now)
		var bval byte
		if err == nil {
			bval, err = m.Space.ByteAt(addr)
		}
		if err != nil {
			m.fault(t, err)
			return 0, false
		}
		r[inst.Rd] = word.FromInt(int64(bval))
		m.block(t, done)

	case jit.KStoreB:
		addr := (r[inst.Ra].Bits + uint64(inst.Imm)) & core.AddrMask
		if m.Remote != nil && m.Remote.IsRemote(addr) {
			return m.stepDispatch(t, blk, s, idx)
		}
		done, _, err := m.Cache.Access(addr, true, m.now)
		if err == nil {
			err = m.Space.SetByteAt(addr, byte(r[inst.Rb].Bits))
		}
		if err != nil {
			m.fault(t, err)
			return 0, false
		}
		m.block(t, done)

	case jit.KLea:
		off := inst.Imm
		if inst.Op == isa.LEA || inst.Op == isa.LEAB {
			off = r[inst.Rb].Int()
		}
		if inst.Op == isa.LEA || inst.Op == isa.LEAI {
			r[inst.Rd] = core.UncheckedLEA(r[inst.Ra], off)
		} else {
			r[inst.Rd] = core.UncheckedLEAB(r[inst.Ra], off)
		}

	case jit.KBr:
		t.IP = core.UncheckedAdvance(t.IP, (inst.Imm+1)*word.BytesPerWord)
		m.retire(t)
		return m.branchExit(t, blk)

	case jit.KBeqz, jit.KBnez:
		taken := r[inst.Ra].Int() == 0
		if s.Kind == jit.KBnez {
			taken = !taken
		}
		if taken {
			t.IP = core.UncheckedAdvance(t.IP, (inst.Imm+1)*word.BytesPerWord)
			m.retire(t)
			return m.branchExit(t, blk)
		}

	case jit.KHalt:
		t.State = Halted
		m.retire(t)
		return 0, false

	default: // jit.KDispatch
		return m.stepDispatch(t, blk, s, idx)
	}

	t.IP = core.UncheckedAdvance(t.IP, word.BytesPerWord)
	m.retire(t)
	return idx + 1, true
}

// branchExit decides where a taken elided branch leaves the block: back
// to its own head (chain) or out to the machine loop. Exits feed the
// heat counters so blocks reachable only from compiled code still get
// discovered.
func (m *Machine) branchExit(t *Thread, blk *jit.Block) (int, bool) {
	a := t.IP.Addr()
	if a == blk.Head && blk.Valid {
		return 0, true
	}
	m.jit.NoteBranch(a)
	return 0, false
}

// stepDispatch runs one retained step through the interpreter's
// dispatch, then checks whether execution landed where the block
// expects: on the next step (sequential), or back on the block head (a
// retained branch chaining). Anything else — fault, halt, deferred
// remote (IP not advanced), control transfer out — exits the block
// with all state already committed by dispatch.
func (m *Machine) stepDispatch(t *Thread, blk *jit.Block, s *jit.Step, idx int) (int, bool) {
	m.dispatch(t, s.Inst)
	switch t.IP.Addr() {
	case s.Addr + word.BytesPerWord:
		if t.State == Ready || t.State == Blocked {
			return idx + 1, true
		}
	case blk.Head:
		if t.State == Ready && blk.Valid {
			return 0, true
		}
	}
	return 0, false
}
