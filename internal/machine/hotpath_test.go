package machine

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/word"
)

// fakeRemote serves a flat word store for every address at or above
// base, with a fixed round-trip latency — enough to exercise the remote
// fetch/load/store paths without a mesh.
type fakeRemote struct {
	base    uint64
	latency uint64
	words   map[uint64]word.Word
	reads   int
	writes  int
}

func newFakeRemote(base, latency uint64) *fakeRemote {
	return &fakeRemote{base: base, latency: latency, words: make(map[uint64]word.Word)}
}

func (f *fakeRemote) IsRemote(addr uint64) bool { return addr >= f.base }

func (f *fakeRemote) ReadWord(addr uint64, now uint64) (word.Word, uint64, error) {
	f.reads++
	return f.words[addr], now + f.latency, nil
}

func (f *fakeRemote) WriteWord(addr uint64, w word.Word, now uint64) (uint64, error) {
	f.writes++
	f.words[addr] = w
	return now + f.latency, nil
}

// install copies an assembled program into the fake's store and returns
// an execute pointer for it.
func (f *fakeRemote) install(src string, logLen uint) core.Pointer {
	p := mustAssemble(src)
	for i, w := range p.Words {
		f.words[f.base+uint64(i)*8] = w
	}
	return mustMake(core.PermExecuteUser, logLen, f.base)
}

// TestRemoteFetchBlocksUntilArrival is the regression test for the
// remote-fetch completion logic (formerly a per-cycle defer in
// execute): after each remotely fetched instruction executes, the
// thread must stay blocked until the fetch's network round trip is
// paid, so an L-cycle latency costs ~L cycles per instruction.
func TestRemoteFetchBlocksUntilArrival(t *testing.T) {
	const latency = 20
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := newFakeRemote(1<<30, latency)
	m.Remote = f
	ip := f.install(`
		ldi  r1, 7
		addi r1, r1, 1
		halt
	`, 12)
	th, err := m.AddThread(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.SetIP(ip); err != nil {
		t.Fatal(err)
	}
	cycles := m.Run(10000)
	if th.State != Halted {
		t.Fatalf("state = %v fault = %v", th.State, th.Fault)
	}
	if got := th.Reg(1).Int(); got != 8 {
		t.Errorf("r1 = %d, want 8", got)
	}
	if th.Instret != 3 {
		t.Errorf("instret = %d, want 3", th.Instret)
	}
	// Two inter-instruction waits of `latency` cycles each (the halt
	// ends the thread, so its own latency is not waited out).
	if cycles < 2*latency {
		t.Errorf("ran in %d cycles; remote fetch latency %d not applied", cycles, latency)
	}
	if cycles > 2*latency+10 {
		t.Errorf("ran in %d cycles; remote fetch over-blocked", cycles)
	}
	if f.reads != 3 {
		t.Errorf("remote reads = %d, want 3 (one per fetch)", f.reads)
	}
}

// TestRemoteFetchKeepsSlowerDataBlock: when a remotely fetched
// instruction issues a memory reference that completes *after* the
// fetch would, the later wakeup must win (the old defer's else-branch).
func TestRemoteFetchKeepsSlowerDataBlock(t *testing.T) {
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := newFakeRemote(1<<30, 5)
	m.Remote = f
	// Remote code loads from a remote data segment: the load issues at
	// the same cycle as the fetch completed, so the thread's wakeup is
	// the load's completion, not the (earlier) fetch's.
	data := mustMake(core.PermReadWrite, 12, f.base+(1<<20))
	f.words[data.Base()] = word.FromInt(4242)
	ip := f.install(`
		ld r2, r1, 0
		halt
	`, 12)
	th, _ := m.AddThread(0)
	if err := th.SetIP(ip); err != nil {
		t.Fatal(err)
	}
	th.SetReg(1, data.Word())
	m.Run(10000)
	if th.State != Halted {
		t.Fatalf("state = %v fault = %v", th.State, th.Fault)
	}
	if got := th.Reg(2).Int(); got != 4242 {
		t.Errorf("r2 = %d, want 4242", got)
	}
}

// TestDeferredRemoteMatchesImmediate: stepping with DeferRemote +
// ServiceRemote must leave machine statistics, registers, and the
// remote store bit-identical to inline remote accesses — the property
// the parallel multicomputer scheduler is built on.
func TestDeferredRemoteMatchesImmediate(t *testing.T) {
	run := func(deferred bool) (Stats, [16]word.Word, map[uint64]word.Word) {
		m, err := New(testConfig())
		if err != nil {
			t.Fatal(err)
		}
		f := newFakeRemote(1<<30, 9)
		m.Remote = f
		m.DeferRemote = deferred
		ip := loadAt(t, m, `
			ldi r2, 5
			ldi r3, 0
		loop:
			st  r1, 0, r2      ; remote store
			ld  r4, r1, 0      ; remote load back
			add r3, r3, r4
			subi r2, r2, 1
			bnez r2, loop
			stb r1, 11, r3     ; remote byte store
			ldb r5, r1, 11     ; remote byte load
			halt
		`, 0x10000, false)
		th, err := m.AddThread(0)
		if err != nil {
			t.Fatal(err)
		}
		if err := th.SetIP(ip); err != nil {
			t.Fatal(err)
		}
		th.SetReg(1, mustMake(core.PermReadWrite, 12, f.base).Word())
		for i := 0; i < 100000 && !m.Done(); i++ {
			m.Step()
			m.ServiceRemote()
		}
		if th.State != Halted {
			t.Fatalf("deferred=%v: %v %v", deferred, th.State, th.Fault)
		}
		return m.Stats(), th.Regs, f.words
	}
	imStats, imRegs, imWords := run(false)
	defStats, defRegs, defWords := run(true)
	if imStats != defStats {
		t.Errorf("stats diverge:\nimmediate %+v\ndeferred  %+v", imStats, defStats)
	}
	if imRegs != defRegs {
		t.Errorf("registers diverge:\nimmediate %v\ndeferred  %v", imRegs, defRegs)
	}
	if fmt.Sprint(imWords) != fmt.Sprint(defWords) {
		t.Errorf("remote memory diverges:\nimmediate %v\ndeferred  %v", imWords, defWords)
	}
}

// rerun re-arms a finished thread at ip and runs the machine again.
func rerun(t *testing.T, m *Machine, th *Thread, ip core.Pointer) {
	t.Helper()
	th.State = Ready
	if err := th.SetIP(ip); err != nil {
		t.Fatal(err)
	}
	m.Run(100000)
}

// TestDecodedCacheInvalidatedOnWrite: self-modifying (or reloaded) code
// must not execute from a stale decoded-instruction entry.
func TestDecodedCacheInvalidatedOnWrite(t *testing.T) {
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ip := loadAt(t, m, "ldi r1, 111\nhalt", 0x10000, false)
	th, _ := m.AddThread(0)
	if err := th.SetIP(ip); err != nil {
		t.Fatal(err)
	}
	m.Run(1000)
	if th.State != Halted || th.Reg(1).Int() != 111 {
		t.Fatalf("first run: %v r1=%d", th.State, th.Reg(1).Int())
	}
	// Patch the first instruction through the space, as the kernel's
	// loader would when reusing the code segment.
	patch := mustAssemble("ldi r1, 222\nhalt")
	if err := m.Space.WriteWord(0x10000, patch.Words[0]); err != nil {
		t.Fatal(err)
	}
	rerun(t, m, th, ip)
	if th.State != Halted {
		t.Fatalf("second run: %v %v", th.State, th.Fault)
	}
	if got := th.Reg(1).Int(); got != 222 {
		t.Errorf("r1 = %d after patch, want 222 (stale decoded instruction executed)", got)
	}
}

// TestDecodedCacheInvalidatedOnByteStore: byte stores rewrite
// instruction words too (and clear their tags); the decoded entry for
// the containing word must go.
func TestDecodedCacheInvalidatedOnByteStore(t *testing.T) {
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ip := loadAt(t, m, "ldi r1, 111\nhalt", 0x10000, false)
	th, _ := m.AddThread(0)
	if err := th.SetIP(ip); err != nil {
		t.Fatal(err)
	}
	m.Run(1000)
	if th.State != Halted || th.Reg(1).Int() != 111 {
		t.Fatalf("first run: %v r1=%d", th.State, th.Reg(1).Int())
	}
	// Rewrite the instruction word one byte at a time.
	patch := mustAssemble("ldi r1, 222\nhalt").Words[0]
	for i := uint64(0); i < word.BytesPerWord; i++ {
		if err := m.Space.SetByteAt(0x10000+i, byte(patch.Bits>>(i*8))); err != nil {
			t.Fatal(err)
		}
	}
	rerun(t, m, th, ip)
	if th.State != Halted {
		t.Fatalf("second run: %v %v", th.State, th.Fault)
	}
	if got := th.Reg(1).Int(); got != 222 {
		t.Errorf("r1 = %d after byte patch, want 222", got)
	}
}

// TestDecodedCacheFlushedOnUnmap: unmapping a code range must shoot
// down decoded entries even for words that are never rewritten — the
// recycled page's (zero, = NOP) content must be what executes.
func TestDecodedCacheFlushedOnUnmap(t *testing.T) {
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ip := loadAt(t, m, "loop: br loop", 0x10000, false)
	th, _ := m.AddThread(0)
	if err := th.SetIP(ip); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ { // spin long enough to cache the branch
		m.Step()
	}
	if th.State != Ready || th.IP.Addr() != 0x10000 {
		t.Fatalf("loop not spinning: %v ip=%#x", th.State, th.IP.Addr())
	}
	if _, err := m.Space.UnmapRange(0x10000, 8); err != nil {
		t.Fatal(err)
	}
	if err := m.Space.EnsureMapped(0x10000, 8); err != nil {
		t.Fatal(err)
	}
	// The fresh page is all zeros = NOP: the thread must now advance
	// past the old branch address instead of replaying the stale
	// decoded br.
	for i := 0; i < 8 && th.State == Ready; i++ {
		m.Step()
	}
	if th.State == Ready && th.IP.Addr() == 0x10000 {
		t.Error("stale decoded branch survived unmap: thread still looping at 0x10000")
	}
}
