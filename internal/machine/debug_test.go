package machine

import (
	"testing"

	"repro/internal/word"
)

func debugMachine(t *testing.T, src string) (*Machine, *Thread, *Debugger, uint64) {
	t.Helper()
	cfg := testConfig()
	cfg.Clusters = 1
	cfg.SlotsPerCluster = 1
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const base = 0x10000
	ip := loadAt(t, m, src, base, false)
	th, _ := m.AddThread(0)
	th.SetIP(ip)
	return m, th, Attach(m), base
}

func TestBreakpoint(t *testing.T) {
	_, th, d, base := debugMachine(t, `
		ldi r1, 1
		ldi r2, 2
		ldi r3, 3
		halt
	`)
	d.SetBreakpoint(base + 16) // third instruction
	ev := d.Continue(1000)
	if ev == nil || ev.Reason != "breakpoint" || ev.Addr != base+16 {
		t.Fatalf("event = %v", ev)
	}
	// The breakpointed instruction has issued; r3 set, thread running.
	if th.Reg(3).Int() != 3 {
		t.Errorf("r3 = %d at breakpoint", th.Reg(3).Int())
	}
	if th.State == Halted {
		t.Error("stopped after halt, not at breakpoint")
	}
	// Clearing lets it finish.
	d.ClearBreakpoint(base + 16)
	if ev := d.Continue(1000); ev != nil {
		t.Errorf("spurious stop: %v", ev)
	}
	if th.State != Halted {
		t.Error("program did not complete")
	}
}

func TestBreakpointInLoopHitsRepeatedly(t *testing.T) {
	_, _, d, base := debugMachine(t, `
		ldi r1, 3
	loop:
		subi r1, r1, 1
		bnez r1, loop
		halt
	`)
	d.SetBreakpoint(base + 8) // the subi
	hits := 0
	for {
		ev := d.Continue(1000)
		if ev == nil {
			break
		}
		hits++
		if hits > 10 {
			t.Fatal("runaway breakpoint")
		}
	}
	if hits != 3 {
		t.Errorf("hits = %d, want 3", hits)
	}
}

func TestWatchpoint(t *testing.T) {
	m, th, d, _ := debugMachine(t, `
		ldi r2, 11
		ldi r3, 0
		ldi r3, 0      ; filler
		st  r1, 8, r2  ; fires the watchpoint
		ldi r4, 99
		halt
	`)
	seg := dataSeg(t, m, 0x40000, 12)
	th.SetReg(1, seg.Word())
	if err := d.Watch(0x40008); err != nil {
		t.Fatal(err)
	}
	ev := d.Continue(1000)
	if ev == nil || ev.Reason != "watchpoint" {
		t.Fatalf("event = %v", ev)
	}
	if ev.Addr != 0x40008 || ev.New.Int() != 11 || !ev.Old.IsZero() {
		t.Errorf("event = %v", ev)
	}
	// Execution stopped promptly: the instruction after the store has
	// not set r4 yet... (it stops at end of the same cycle; r4 is set
	// on a later cycle).
	if th.Reg(4).Int() == 99 {
		t.Error("watchpoint fired late")
	}
	d.Unwatch(0x40008)
	if ev := d.Continue(1000); ev != nil {
		t.Errorf("spurious stop: %v", ev)
	}
}

func TestWatchOnBadAddress(t *testing.T) {
	_, _, d, _ := debugMachine(t, "halt")
	if err := d.Watch(0xdead000); err == nil {
		t.Error("watch on unmapped address accepted")
	}
}

func TestStepCycle(t *testing.T) {
	m, th, d, _ := debugMachine(t, `
		ldi r1, 7
		ldi r2, 8
		halt
	`)
	if ev := d.StepCycle(); ev != nil {
		t.Errorf("unexpected event: %v", ev)
	}
	if th.Reg(1).Int() != 7 || th.Reg(2).Int() != 0 {
		t.Errorf("after one cycle: r1=%d r2=%d", th.Reg(1).Int(), th.Reg(2).Int())
	}
	d.StepCycle()
	if th.Reg(2).Int() != 8 {
		t.Error("second cycle did not execute")
	}
	_ = m
}

func TestDisassembleAndDetach(t *testing.T) {
	m, _, d, base := debugMachine(t, "ldi r5, 123\nhalt")
	s, err := d.Disassemble(base)
	if err != nil || s != "ldi r5, 123" {
		t.Errorf("disassemble = %q, %v", s, err)
	}
	if _, err := d.Disassemble(0xbad000); err == nil {
		t.Error("disassemble of unmapped address succeeded")
	}
	d.Detach()
	d.SetBreakpoint(base)
	m.Run(1000)
	if d.Hit != nil {
		t.Error("detached debugger still observed issues")
	}
}

func TestDebugEventString(t *testing.T) {
	th := &Thread{ID: 3}
	bp := &DebugEvent{Reason: "breakpoint", Thread: th, Addr: 0x10}
	wp := &DebugEvent{Reason: "watchpoint", Thread: th, Addr: 0x20,
		Old: word.FromInt(1), New: word.FromInt(2)}
	if bp.String() == "" || wp.String() == "" {
		t.Error("empty event strings")
	}
}
