package machine

import (
	"testing"

	"repro/internal/capverify"
	"repro/internal/jit"
	"repro/internal/word"
)

// These tests extend the self-modifying-code contract of
// hotpath_test.go (decoded-instruction cache shootdown) to the compiled
// tier: a store into a compiled superblock must invalidate it, and
// re-execution — now through the interpreter, since a write into
// registered code voids the verifier's proofs for good — must produce
// the same architectural results.

// smcLoop runs a countdown loop hot enough to cross the compile
// threshold (64) and then reports through r1.
const smcLoop = `
	ldi  r2, 200
loop:
	subi r2, r2, 1
	bnez r2, loop
	ldi  r1, 111
	halt
`

// jitLoadAt is loadAt plus translator registration: program words are
// written first (stores into unregistered space are not SMC), then the
// region is handed to the verifier.
func jitLoadAt(t *testing.T, m *Machine, src string, base uint64) *jit.Engine {
	t.Helper()
	eng := m.EnableJIT(jit.DefaultConfig())
	ip := loadAt(t, m, src, base, false)
	m.JITRegister(mustAssemble(src), base, capverify.Config{})
	th, err := m.AddThread(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.SetIP(ip); err != nil {
		t.Fatal(err)
	}
	return eng
}

// runInterp runs the same source on a translator-free machine and
// returns r1, instret and the stats, the reference for post-patch
// re-execution.
func runInterp(t *testing.T, src string, base uint64, patch func(m *Machine)) (int64, uint64, Stats) {
	t.Helper()
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ip := loadAt(t, m, src, base, false)
	th, _ := m.AddThread(0)
	if err := th.SetIP(ip); err != nil {
		t.Fatal(err)
	}
	m.Run(100000)
	if patch != nil {
		patch(m)
	}
	rerun(t, m, th, ip)
	return th.Reg(1).Int(), th.Instret, m.Stats()
}

// TestJITBlockInvalidatedOnWrite: a word store into a compiled
// superblock must invalidate it; the rerun executes the patched code
// with results identical to a never-compiled machine.
func TestJITBlockInvalidatedOnWrite(t *testing.T) {
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng := jitLoadAt(t, m, smcLoop, 0x10000)
	th := m.threads[0]
	ip := th.IP
	m.Run(100000)
	if th.State != Halted || th.Reg(1).Int() != 111 {
		t.Fatalf("first run: %v r1=%d", th.State, th.Reg(1).Int())
	}
	if eng.Counters.Compiled == 0 || eng.Counters.Entries == 0 {
		t.Fatalf("loop never compiled/entered: %+v", eng.Counters)
	}
	// Patch `ldi r1, 111` (word 3, inside the compiled superblock) to
	// load 222.
	patched := mustAssemble("ldi r1, 222").Words[0]
	if err := m.Space.WriteWord(0x10000+3*8, patched); err != nil {
		t.Fatal(err)
	}
	if eng.Counters.Invalidated == 0 {
		t.Fatalf("store into compiled code did not invalidate: %+v", eng.Counters)
	}
	if !eng.Dead() {
		t.Error("store into registered code must retire the translator (proofs void)")
	}
	rerun(t, m, th, ip)
	if th.State != Halted {
		t.Fatalf("second run: %v %v", th.State, th.Fault)
	}
	if got := th.Reg(1).Int(); got != 222 {
		t.Errorf("r1 = %d after patch, want 222 (stale compiled block executed)", got)
	}
	// The patched rerun must match a machine that never compiled.
	wantR1, wantInstret, _ := runInterp(t, smcLoop, 0x10000, func(m *Machine) {
		if err := m.Space.WriteWord(0x10000+3*8, patched); err != nil {
			t.Fatal(err)
		}
	})
	if th.Reg(1).Int() != wantR1 || th.Instret != wantInstret {
		t.Errorf("post-patch divergence: jit r1=%d instret=%d, interp r1=%d instret=%d",
			th.Reg(1).Int(), th.Instret, wantR1, wantInstret)
	}
}

// TestJITBlockInvalidatedOnByteStore: byte stores rewrite instruction
// words too; the containing compiled block must go the same way.
func TestJITBlockInvalidatedOnByteStore(t *testing.T) {
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng := jitLoadAt(t, m, smcLoop, 0x10000)
	th := m.threads[0]
	ip := th.IP
	m.Run(100000)
	if th.State != Halted || th.Reg(1).Int() != 111 {
		t.Fatalf("first run: %v r1=%d", th.State, th.Reg(1).Int())
	}
	if eng.Counters.Compiled == 0 {
		t.Fatalf("loop never compiled: %+v", eng.Counters)
	}
	patched := mustAssemble("ldi r1, 222").Words[0]
	for i := uint64(0); i < word.BytesPerWord; i++ {
		if err := m.Space.SetByteAt(0x10000+3*8+i, byte(patched.Bits>>(i*8))); err != nil {
			t.Fatal(err)
		}
	}
	if eng.Counters.Invalidated == 0 || !eng.Dead() {
		t.Fatalf("byte store into compiled code did not retire the translator: %+v dead=%v",
			eng.Counters, eng.Dead())
	}
	rerun(t, m, th, ip)
	if th.State != Halted {
		t.Fatalf("second run: %v %v", th.State, th.Fault)
	}
	if got := th.Reg(1).Int(); got != 222 {
		t.Errorf("r1 = %d after byte patch, want 222", got)
	}
}

// TestJITBlockFlushedOnUnmap: unmapping a compiled code range must
// shoot down its blocks mid-flight — the spinning thread escapes to the
// recycled page's NOPs instead of replaying the stale compiled branch.
func TestJITBlockFlushedOnUnmap(t *testing.T) {
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Two words: a single-instruction loop is below the block minimum.
	eng := jitLoadAt(t, m, "loop: addi r3, r3, 1\nbr loop", 0x10000)
	th := m.threads[0]
	for i := 0; i < 256; i++ { // spin long enough to compile the branch
		m.Step()
	}
	if th.State != Ready || th.IP.Addr() != 0x10000 {
		t.Fatalf("loop not spinning: %v ip=%#x", th.State, th.IP.Addr())
	}
	if eng.Counters.Compiled == 0 {
		t.Fatalf("spin loop never compiled: %+v", eng.Counters)
	}
	if _, err := m.Space.UnmapRange(0x10000, 16); err != nil {
		t.Fatal(err)
	}
	if err := m.Space.EnsureMapped(0x10000, 16); err != nil {
		t.Fatal(err)
	}
	if eng.Counters.Invalidated == 0 {
		t.Errorf("unmap did not invalidate the compiled block: %+v", eng.Counters)
	}
	if eng.Dead() {
		t.Error("unmap must drop regions, not retire the translator")
	}
	if eng.Regions() != 0 {
		t.Errorf("unmapped region still registered: %d", eng.Regions())
	}
	for i := 0; i < 8 && th.State == Ready; i++ {
		m.Step()
	}
	if th.State == Ready && th.IP.Addr() == 0x10000 {
		t.Error("stale compiled branch survived unmap: thread still looping at 0x10000")
	}
}

// TestJITMatchesInterpreterStats: with no SMC at all, a full run with
// the translator must leave identical architectural state and identical
// cycle/instruction/idle accounting.
func TestJITMatchesInterpreterStats(t *testing.T) {
	run := func(useJIT bool) (int64, uint64, Stats) {
		m, err := New(testConfig())
		if err != nil {
			t.Fatal(err)
		}
		ip := loadAt(t, m, smcLoop, 0x10000, false)
		if useJIT {
			m.EnableJIT(jit.DefaultConfig())
			m.JITRegister(mustAssemble(smcLoop), 0x10000, capverify.Config{})
		}
		th, _ := m.AddThread(0)
		if err := th.SetIP(ip); err != nil {
			t.Fatal(err)
		}
		m.Run(100000)
		if th.State != Halted {
			t.Fatalf("state %v fault %v", th.State, th.Fault)
		}
		return th.Reg(1).Int(), th.Instret, m.Stats()
	}
	r1i, ii, si := run(false)
	r1j, ij, sj := run(true)
	if r1i != r1j || ii != ij || si != sj {
		t.Errorf("divergence:\ninterp r1=%d instret=%d %+v\njit    r1=%d instret=%d %+v",
			r1i, ii, si, r1j, ij, sj)
	}
}
