package multi

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/noc"
	"repro/internal/word"
)

// watchdogSystem boots a 2×1×1 system: node 0 runs one thread doing
// dependent remote loads from a segment homed on node 1.
func watchdogSystem(t *testing.T, serial bool, watchdog uint64) (*System, *machine.Thread, machine.Config) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Mesh = noc.Config{DimX: 2, DimY: 1, DimZ: 1, RouterLatency: 2, InjectLatency: 1}
	cfg.Node.PhysBytes = 1 << 20
	cfg.Node.Clusters = 1
	cfg.Node.SlotsPerCluster = 1
	cfg.Serial = serial
	cfg.Workers = 2
	cfg.WatchdogCycles = watchdog
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	far, err := s.Nodes[1].K.AllocSegment(4096)
	if err != nil {
		t.Fatal(err)
	}
	prog := mustAssemble(`
		ldi r3, 50
	loop:
		ld   r2, r1, 0
		add  r5, r5, r2
		subi r3, r3, 1
		bnez r3, loop
		halt
	`)
	ip, err := s.Nodes[0].K.LoadProgram(prog, false)
	if err != nil {
		t.Fatal(err)
	}
	th, err := s.Nodes[0].K.Spawn(1, ip, map[int]word.Word{1: far.Word()})
	if err != nil {
		t.Fatal(err)
	}
	return s, th, cfg.Node
}

func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	for _, serial := range []bool{true, false} {
		s, th, _ := watchdogSystem(t, serial, 2000)
		s.Run(200_000)
		if s.Hung() {
			t.Fatalf("serial=%v: watchdog tripped on a healthy run", serial)
		}
		if th.State != machine.Halted {
			t.Fatalf("serial=%v: %v %v", serial, th.State, th.Fault)
		}
	}
}

// TestWatchdogDetectsKilledHomeNode: killing the home node parks the
// issuing thread forever (its reply is never coming); the cycle-
// deadline watchdog must convert that silent spin into a detected hang,
// identically under the serial and parallel schedulers.
func TestWatchdogDetectsKilledHomeNode(t *testing.T) {
	for _, serial := range []bool{true, false} {
		s, th, _ := watchdogSystem(t, serial, 2000)
		s.Run(50) // let the workload get going
		s.Kill(1)
		s.Run(500_000)
		if !s.Hung() {
			t.Fatalf("serial=%v: killed home node not detected", serial)
		}
		if th.Done() {
			t.Fatalf("serial=%v: thread finished without its home node: %v", serial, th.State)
		}
		if c := s.Cycle(); c > 50+10*2000 {
			t.Fatalf("serial=%v: watchdog let the system spin %d cycles", serial, c)
		}
	}
}

func TestWatchdogDetectsKilledIssuer(t *testing.T) {
	s, _, _ := watchdogSystem(t, true, 2000)
	s.Run(50)
	s.Kill(0)
	s.Run(500_000)
	if !s.Hung() {
		t.Fatal("killed issuing node not detected")
	}
}

// TestStallIsTransient: a bounded stall must lose time, not state — the
// run completes with the watchdog quiet.
func TestStallIsTransient(t *testing.T) {
	ref, thRef, _ := watchdogSystem(t, true, 5000)
	ref.Run(200_000)
	if thRef.State != machine.Halted {
		t.Fatalf("reference: %v %v", thRef.State, thRef.Fault)
	}

	s, th, _ := watchdogSystem(t, true, 5000)
	s.Run(50)
	s.Stall(0, s.Cycle()+1500)
	s.Run(200_000)
	if s.Hung() {
		t.Fatal("watchdog tripped on a bounded stall")
	}
	if th.State != machine.Halted {
		t.Fatalf("stalled run: %v %v", th.State, th.Fault)
	}
	if th.Instret != thRef.Instret {
		t.Fatalf("instret %d != reference %d", th.Instret, thRef.Instret)
	}
	for r := 0; r < 16; r++ {
		if th.Reg(r) != thRef.Reg(r) {
			t.Errorf("r%d: %v != reference %v", r, th.Reg(r), thRef.Reg(r))
		}
	}
}

// TestReviveFromCheckpointResumes: kill node 0 mid-run, detect via
// watchdog, rebuild its kernel from a checkpoint taken earlier, revive,
// and finish — final architectural state equals an uninterrupted run.
func TestReviveFromCheckpointResumes(t *testing.T) {
	ref, thRef, _ := watchdogSystem(t, true, 2000)
	ref.Run(200_000)
	if thRef.State != machine.Halted {
		t.Fatalf("reference: %v %v", thRef.State, thRef.Fault)
	}

	s, _, nodeCfg := watchdogSystem(t, true, 2000)
	var cp *kernel.Checkpoint
	s.OnCycle = func(c uint64) {
		if c == 40 {
			var err error
			if cp, err = s.Nodes[0].K.Checkpoint(); err != nil {
				t.Errorf("checkpoint: %v", err)
			}
		}
		if c == 120 {
			s.Kill(0)
		}
	}
	s.Run(500_000)
	if !s.Hung() {
		t.Fatal("kill not detected")
	}
	if cp == nil {
		t.Fatal("checkpoint never taken")
	}
	s.OnCycle = nil
	k2, err := kernel.Restore(nodeCfg, cp)
	if err != nil {
		t.Fatal(err)
	}
	s.Revive(0, k2)
	s.Run(500_000)
	if s.Hung() || !s.Done() {
		t.Fatalf("revived system did not finish (hung=%v)", s.Hung())
	}
	th2 := s.Nodes[0].K.M.Threads()[0]
	if th2.State != machine.Halted {
		t.Fatalf("revived thread: %v %v", th2.State, th2.Fault)
	}
	if th2.Instret != thRef.Instret {
		t.Fatalf("instret %d != reference %d", th2.Instret, thRef.Instret)
	}
	for r := 0; r < 16; r++ {
		if th2.Reg(r) != thRef.Reg(r) {
			t.Errorf("r%d: %v != reference %v", r, th2.Reg(r), thRef.Reg(r))
		}
	}
}
