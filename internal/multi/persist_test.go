package multi

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/machine"
	"repro/internal/noc"
	"repro/internal/telemetry"
	"repro/internal/word"
)

// persistSystem is watchdogSystem with a durable checkpoint store: the
// config must carry PersistDir before New, since New opens the store.
func persistSystem(t *testing.T, mut func(*Config)) (*System, *machine.Thread) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Mesh = noc.Config{DimX: 2, DimY: 1, DimZ: 1, RouterLatency: 2, InjectLatency: 1}
	cfg.Node.PhysBytes = 1 << 20
	cfg.Node.Clusters = 1
	cfg.Node.SlotsPerCluster = 1
	cfg.Serial = true
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	far, err := s.Nodes[1].K.AllocSegment(4096)
	if err != nil {
		t.Fatal(err)
	}
	prog := mustAssemble(`
		ldi r3, 50
	loop:
		ld   r2, r1, 0
		add  r5, r5, r2
		st   r1, 0, r5
		subi r3, r3, 1
		bnez r3, loop
		halt
	`)
	ip, err := s.Nodes[0].K.LoadProgram(prog, false)
	if err != nil {
		t.Fatal(err)
	}
	th, err := s.Nodes[0].K.Spawn(1, ip, map[int]word.Word{1: far.Word()})
	if err != nil {
		t.Fatal(err)
	}
	return s, th
}

// TestPersistWritesIncrementalGenerations: periodic barriers write a
// base followed by deltas, re-basing every PersistBaseEvery, and the
// deltas are materially smaller than the bases.
func TestPersistWritesIncrementalGenerations(t *testing.T) {
	dir := t.TempDir()
	s, _ := persistSystem(t, func(cfg *Config) {
		cfg.PersistDir = dir
		cfg.PersistBaseEvery = 3
		cfg.CheckpointEvery = 40
		cfg.CheckpointKeep = 100 // keep everything for inspection
	})
	s.Run(200_000)
	if !s.Done() {
		t.Fatal("workload did not finish")
	}
	descs, err := s.Store().Describe()
	if err != nil {
		t.Fatal(err)
	}
	if len(descs) < 6 {
		t.Fatalf("only %d generations on disk", len(descs))
	}
	if uint64(len(descs)) != s.Checkpoints() {
		t.Fatalf("%d generations vs %d checkpoints counted", len(descs), s.Checkpoints())
	}
	var baseBytes, deltaBytes, deltas uint64
	for i, d := range descs {
		if d.Gen != uint64(i+1) {
			t.Fatalf("generation numbering: %+v at index %d", d, i)
		}
		wantBase := i%3 == 0
		if d.Delta == wantBase {
			t.Errorf("generation %d: delta=%v, want base=%v", d.Gen, d.Delta, wantBase)
		}
		if d.Delta {
			deltaBytes += d.Bytes
			deltas++
		} else if baseBytes == 0 {
			baseBytes = d.Bytes
		}
	}
	// The workload only spans a handful of pages, so the honest claim is
	// strictly-smaller, not an order of magnitude (E28 measures the big
	// ratio on a wide footprint).
	if deltas == 0 || deltaBytes/deltas >= baseBytes {
		t.Errorf("mean delta %d bytes vs base %d bytes — not incremental",
			deltaBytes/deltas, baseBytes)
	}
	st := s.Store().Stats()
	if st.Captures != s.Checkpoints() || st.BytesWritten == 0 {
		t.Errorf("store stats %+v", st)
	}
	// Every generation — base or delta — materializes and loads.
	for _, d := range descs {
		if _, _, err := s.Store().LoadGeneration(d.Gen); err != nil {
			t.Errorf("generation %d unloadable: %v", d.Gen, err)
		}
	}
}

// TestPersistAutoRecoverFromDisk is the durable twin of
// TestAutoRecoverFromKilledNode: the restore source is the on-disk
// store, and the final state still matches an uninterrupted reference.
func TestPersistAutoRecoverFromDisk(t *testing.T) {
	ref, thRef := persistSystem(t, nil)
	ref.Run(200_000)
	if thRef.State != machine.Halted {
		t.Fatalf("reference: %v %v", thRef.State, thRef.Fault)
	}

	s, _ := persistSystem(t, func(cfg *Config) {
		cfg.PersistDir = t.TempDir()
		cfg.PersistBaseEvery = 3
		cfg.CheckpointEvery = 40
		cfg.WatchdogCycles = 2000
		cfg.AutoRecover = true
	})
	s.OnCycle = func(c uint64) {
		if c == 100 {
			if err := s.Kill(1); err != nil {
				t.Errorf("kill: %v", err)
			}
			s.OnCycle = nil
		}
	}
	s.Run(500_000)
	if s.Hung() || !s.Done() {
		t.Fatalf("disk recovery failed (hung=%v done=%v)", s.Hung(), s.Done())
	}
	if s.Restores() == 0 || s.Store().Stats().Restores == 0 {
		t.Fatal("no restore performed through the store")
	}
	th := s.Nodes[0].K.M.Threads()[0]
	for r := 0; r < 16; r++ {
		if th.Reg(r) != thRef.Reg(r) {
			t.Errorf("r%d: %v != reference %v", r, th.Reg(r), thRef.Reg(r))
		}
	}
}

// TestPersistRecoveryFallsBackPastDamage: recovery with a bit-rotted
// newest generation restores from an older intact one instead of
// failing.
func TestPersistRecoveryFallsBackPastDamage(t *testing.T) {
	dir := t.TempDir()
	s, _ := persistSystem(t, func(cfg *Config) {
		cfg.PersistDir = dir
		cfg.PersistBaseEvery = 3
		cfg.CheckpointEvery = 40
		cfg.CheckpointKeep = 100
		cfg.WatchdogCycles = 2000
		cfg.AutoRecover = true
	})
	var killed bool
	s.OnCycle = func(c uint64) {
		if c == 250 && !killed {
			killed = true
			// Damage the newest generation's node-0 image on disk, then
			// kill a node: the watchdog's restore must fall back.
			gen, err := s.Store().MaxGen()
			if err != nil || gen < 2 {
				t.Errorf("MaxGen = %d, %v — need ≥ 2 generations by cycle 250", gen, err)
				return
			}
			path := filepath.Join(dir, fmt.Sprintf("gen%08d-node%02d.ckpt", gen, 0))
			data, err := os.ReadFile(path)
			if err != nil {
				t.Errorf("read image: %v", err)
				return
			}
			data[len(data)/3] ^= 0x20
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Errorf("write image: %v", err)
				return
			}
			if err := s.Kill(1); err != nil {
				t.Errorf("kill: %v", err)
			}
		}
	}
	s.Run(500_000)
	if s.Hung() || !s.Done() {
		t.Fatalf("fallback recovery failed (hung=%v done=%v)", s.Hung(), s.Done())
	}
	st := s.Store().Stats()
	if st.Fallbacks == 0 || st.CorruptDetected == 0 {
		t.Fatalf("store stats %+v: damage was not detected and skipped", st)
	}
	th := s.Nodes[0].K.M.Threads()[0]
	if th.State != machine.Halted {
		t.Fatalf("recovered thread %v %v", th.State, th.Fault)
	}
}

// TestPersistPruneRetainsChains: CheckpointKeep prunes the store each
// barrier, but a delta generation inside the window pins its base
// outside it — everything still on disk must load.
func TestPersistPruneRetainsChains(t *testing.T) {
	s, _ := persistSystem(t, func(cfg *Config) {
		cfg.PersistDir = t.TempDir()
		cfg.PersistBaseEvery = 3
		cfg.CheckpointEvery = 40
		cfg.CheckpointKeep = 2
	})
	s.Run(200_000)
	if s.Checkpoints() < 6 {
		t.Fatalf("only %d generations captured", s.Checkpoints())
	}
	gens, err := s.Store().Generations()
	if err != nil {
		t.Fatal(err)
	}
	// At most the 2 retained plus one pinned base.
	if len(gens) == 0 || len(gens) > 3 {
		t.Fatalf("after pruning: %v generations on disk", gens)
	}
	newest := gens[len(gens)-1]
	if newest != s.Checkpoints() {
		t.Fatalf("newest on disk is %d, captured %d", newest, s.Checkpoints())
	}
	for _, g := range gens {
		if _, _, err := s.Store().LoadGeneration(g); err != nil {
			t.Errorf("retained generation %d unloadable: %v", g, err)
		}
	}
	if _, _, _, err := s.Store().LoadNewestIntact(); err != nil {
		t.Errorf("newest intact: %v", err)
	}
}

// TestPersistDeadNodeWindowSkipsCapture: while any node is dead the
// barrier writes nothing (the set would be inconsistent); capture
// resumes after Revive and the chain stays restorable.
func TestPersistDeadNodeWindowSkipsCapture(t *testing.T) {
	s, _ := persistSystem(t, func(cfg *Config) {
		cfg.PersistDir = t.TempDir()
		cfg.PersistBaseEvery = 3
		cfg.CheckpointEvery = 20
		cfg.CheckpointKeep = 100
	})
	if err := s.Kill(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ { // five barriers with a dead node
		s.Step()
	}
	if s.Checkpoints() != 0 {
		t.Fatalf("%d generations captured across a dead-node window", s.Checkpoints())
	}
	if gens, _ := s.Store().Generations(); len(gens) != 0 {
		t.Fatalf("generations on disk during dead window: %v", gens)
	}
	if err := s.Revive(1, nil); err != nil {
		t.Fatal(err)
	}
	// The issuing thread may be parked on the access the dead node ate;
	// capture resumption doesn't need it — just cross more barriers.
	for i := 0; i < 200; i++ {
		s.Step()
	}
	if s.Checkpoints() == 0 {
		t.Fatal("capture did not resume after revive")
	}
	cps, _, _, err := s.Store().LoadNewestIntact()
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) != 2 {
		t.Fatalf("restored %d node images, want 2", len(cps))
	}
}

// TestPersistSurvivesReboot: a second System opened on the same
// directory resumes generation numbering, and — the crash-safety
// story — can auto-recover state written by the first boot before
// capturing anything itself.
func TestPersistSurvivesReboot(t *testing.T) {
	dir := t.TempDir()
	ref, thRef := persistSystem(t, nil)
	ref.Run(200_000)
	if thRef.State != machine.Halted {
		t.Fatalf("reference: %v %v", thRef.State, thRef.Fault)
	}

	s1, _ := persistSystem(t, func(cfg *Config) {
		cfg.PersistDir = dir
		cfg.PersistBaseEvery = 3
		cfg.CheckpointEvery = 40
		cfg.CheckpointKeep = 100
	})
	for i := 0; i < 200; i++ {
		s1.Step()
	}
	first := s1.Checkpoints()
	if first == 0 {
		t.Fatal("first boot captured nothing")
	}

	// "Reboot": a fresh system on the same directory. Its workload is
	// never started — recovery must come entirely from disk.
	s2, _ := persistSystem(t, func(cfg *Config) {
		cfg.PersistDir = dir
		cfg.PersistBaseEvery = 3
		cfg.WatchdogCycles = 500
		cfg.AutoRecover = true
	})
	// Numbering resumes: the next generation extends the old line.
	if err := s2.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	gens, err := s2.Store().Generations()
	if err != nil {
		t.Fatal(err)
	}
	if gens[len(gens)-1] != first+1 {
		t.Fatalf("reboot wrote generation %d, want %d", gens[len(gens)-1], first+1)
	}

	// Recover the FIRST boot's machine state on the second boot: kill
	// the fresh workload's home node; the watchdog restores from disk.
	s3, _ := persistSystem(t, func(cfg *Config) {
		cfg.PersistDir = dir
		cfg.WatchdogCycles = 500
		cfg.AutoRecover = true
	})
	if err := s3.Kill(1); err != nil {
		t.Fatal(err)
	}
	s3.Run(500_000)
	if s3.Hung() || !s3.Done() {
		t.Fatalf("cross-boot recovery failed (hung=%v done=%v)", s3.Hung(), s3.Done())
	}
	th := s3.Nodes[0].K.M.Threads()[0]
	if th.State != machine.Halted {
		t.Fatalf("cross-boot thread %v %v", th.State, th.Fault)
	}
	for r := 0; r < 16; r++ {
		if th.Reg(r) != thRef.Reg(r) {
			t.Errorf("cross-boot r%d: %v != reference %v", r, th.Reg(r), thRef.Reg(r))
		}
	}
}

// TestPersistMetricsPublished: the persist.* namespace appears in the
// registry when (and only when) a store is attached.
func TestPersistMetricsPublished(t *testing.T) {
	s, _ := persistSystem(t, func(cfg *Config) {
		cfg.PersistDir = t.TempDir()
		cfg.CheckpointEvery = 40
	})
	reg := telemetry.NewRegistry()
	s.RegisterMetrics(reg)
	s.Run(200_000)
	snap := reg.Snapshot()
	if snap["persist.captures"] == 0 || snap["persist.bytes_written"] == 0 {
		t.Fatalf("persist counters missing or zero: captures=%v bytes=%v",
			snap["persist.captures"], snap["persist.bytes_written"])
	}

	plain, _ := persistSystem(t, nil)
	reg2 := telemetry.NewRegistry()
	plain.RegisterMetrics(reg2)
	if _, ok := reg2.Snapshot()["persist.captures"]; ok {
		t.Fatal("persist namespace registered without a store")
	}
}
