package multi

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/machine"
	"repro/internal/migrate"
	"repro/internal/noc"
	"repro/internal/telemetry"
	"repro/internal/word"
)

// fastLink keeps pre-copy transfers to a few dozen stepped cycles so
// the workload is still live at cutover.
func fastLink() migrate.LinkConfig {
	return migrate.LinkConfig{LatencyCycles: 4, BytesPerCycle: 1024, RetransmitTimeout: 16}
}

// migrateSystem boots a 2-node mesh whose node-0 thread hammers node
// 1's segment remotely — the migrating node holds live cross-node
// state, the hardest case for a role swap.
func migrateSystem(t *testing.T, mut func(*Config)) (*System, *machine.Thread) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Mesh = noc.Config{DimX: 2, DimY: 1, DimZ: 1, RouterLatency: 2, InjectLatency: 1}
	cfg.Node.PhysBytes = 1 << 20
	cfg.Node.Clusters = 1
	cfg.Node.SlotsPerCluster = 2
	cfg.Serial = true
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	far, err := s.Nodes[1].K.AllocSegment(4096)
	if err != nil {
		t.Fatal(err)
	}
	local, err := s.Nodes[0].K.AllocSegment(4096)
	if err != nil {
		t.Fatal(err)
	}
	prog := mustAssemble(`
		ldi r3, 120
	loop:
		ld   r2, r1, 0
		add  r5, r5, r2
		st   r1, 0, r5
		st   r6, 0, r5
		ld   r7, r6, 0
		add  r5, r5, r7
		subi r3, r3, 1
		bnez r3, loop
		halt
	`)
	ip, err := s.Nodes[0].K.LoadProgram(prog, false)
	if err != nil {
		t.Fatal(err)
	}
	th, err := s.Nodes[0].K.Spawn(1, ip, map[int]word.Word{1: far.Word(), 6: local.Word()})
	if err != nil {
		t.Fatal(err)
	}
	return s, th
}

// migrateOutcome is the timing-excluded architectural outcome of a
// finished run: every thread's state, retired instructions and
// registers, read through whatever kernel each node currently holds —
// the migrated node's kernel is a different object after the swap, so
// pre-swap thread handles are stale.
func migrateOutcome(t *testing.T, s *System) string {
	t.Helper()
	var out string
	for id, n := range s.Nodes {
		for _, th := range n.K.M.Threads() {
			if th.State != machine.Halted {
				t.Fatalf("node %d thread did not halt: %v fault=%v", id, th.State, th.Fault)
			}
			out += fmt.Sprintf("node%d: instret=%d regs=%v\n", id, th.Instret, th.Regs)
		}
	}
	return out
}

// fullFingerprint is the EXACT run fingerprint — cycles and stats
// included — for the abort-invariance gate, where the aborted run must
// be bit-identical to the never-migrated one.
func fullFingerprint(t *testing.T, s *System, cycles uint64) string {
	t.Helper()
	fp := fmt.Sprintf("cycles=%d syscycle=%d stats=%+v net=%+v\n", cycles, s.cycle, s.Stats(), s.Net.Stats())
	fp += migrateOutcome(t, s)
	for _, n := range s.Nodes {
		st := n.K.M.Stats()
		fp += fmt.Sprintf("node: %+v\n", st)
	}
	return fp
}

// readStoreBytes snapshots every file in a persist dir.
func readStoreBytes(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := map[string]string{}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = string(b)
	}
	return out
}

// TestMigrateSwapsNodeAndPreservesOutcome: a migration armed mid-run
// commits, swaps node 0's kernel, and the run completes with the
// never-migrated architectural outcome — under both schedulers.
func TestMigrateSwapsNodeAndPreservesOutcome(t *testing.T) {
	ref, _ := migrateSystem(t, nil)
	ref.Run(300_000)
	want := migrateOutcome(t, ref)

	for _, serial := range []bool{true, false} {
		s, _ := migrateSystem(t, func(c *Config) {
			c.Serial = serial
			c.Workers = 2
			c.MigrateAt = 200
			c.Migrate = migrate.Config{Link: fastLink()}
		})
		before := s.Nodes[0].K
		s.Run(300_000)
		rep := s.MigrateReport()
		if rep == nil || !rep.Committed {
			t.Fatalf("serial=%v: migration did not commit: %+v", serial, rep)
		}
		if s.Nodes[0].K == before {
			t.Fatalf("serial=%v: kernel not swapped", serial)
		}
		if len(rep.Rounds) < 2 {
			t.Fatalf("serial=%v: no iterative pre-copy: %d rounds", serial, len(rep.Rounds))
		}
		if got := migrateOutcome(t, s); got != want {
			t.Errorf("serial=%v: outcome diverged after migration:\n got %s\nwant %s", serial, got, want)
		}
		if s.migrateMetrics.Committed != 1 || s.migrateMetrics.STW.Count() != 1 {
			t.Fatalf("serial=%v: metrics not recorded: %+v", serial, s.migrateMetrics)
		}
	}
}

// TestMigrateAbortInvarianceSystem aborts the armed migration at every
// round boundary and mid-cutover; each aborted run must be
// bit-identical — cycles, stats, registers, memory, AND the on-disk
// persist store — to a run that never migrated. Serial and parallel.
func TestMigrateAbortInvarianceSystem(t *testing.T) {
	for _, serial := range []bool{true, false} {
		// Reference: never migrated, persist armed.
		refDir := t.TempDir()
		ref, _ := migrateSystem(t, func(c *Config) {
			c.Serial = serial
			c.Workers = 2
			c.CheckpointEvery = 150
			c.PersistDir = refDir
		})
		refCycles := ref.Run(300_000)
		want := fullFingerprint(t, ref, refCycles)
		wantStore := readStoreBytes(t, refDir)

		// Probe: how many rounds does a committed migration take here?
		probe, _ := migrateSystem(t, func(c *Config) {
			c.Serial = serial
			c.Workers = 2
			c.MigrateAt = 200
			c.Migrate = migrate.Config{Link: fastLink()}
		})
		probe.Run(300_000)
		probeRep := probe.MigrateReport()
		if probeRep == nil || !probeRep.Committed {
			t.Fatalf("serial=%v: probe migration failed: %+v", serial, probeRep)
		}

		abortCfgs := map[string]migrate.Config{}
		for r := 1; r <= len(probeRep.Rounds); r++ {
			abortCfgs[fmt.Sprintf("round-%d", r)] = migrate.Config{Link: fastLink(), AbortAtRound: r}
		}
		abortCfgs["mid-cutover"] = migrate.Config{Link: fastLink(), AbortAtCutover: true}

		for name, mcfg := range abortCfgs {
			dir := t.TempDir()
			s, _ := migrateSystem(t, func(c *Config) {
				c.Serial = serial
				c.Workers = 2
				c.CheckpointEvery = 150
				c.PersistDir = dir
				c.MigrateAt = 200
				c.MigrateNode = 0
				c.Migrate = mcfg
			})
			cycles := s.Run(300_000)
			rep := s.MigrateReport()
			if rep == nil || rep.Committed {
				t.Fatalf("serial=%v %s: expected aborted migration, got %+v", serial, name, rep)
			}
			if got := fullFingerprint(t, s, cycles); got != want {
				t.Errorf("serial=%v %s: aborted run diverged from never-migrated run:\n got %s\nwant %s", serial, name, got, want)
			}
			gotStore := readStoreBytes(t, dir)
			if len(gotStore) != len(wantStore) {
				t.Fatalf("serial=%v %s: store shape differs: %d files vs %d", serial, name, len(gotStore), len(wantStore))
			}
			for f, b := range wantStore {
				if gotStore[f] != b {
					t.Errorf("serial=%v %s: store file %s differs after aborted migration", serial, name, f)
				}
			}
		}
	}
}

// TestMigrateSourceKilledMidRoundAborts: killing the source during
// pre-copy aborts the migration instead of committing a stale image.
func TestMigrateSourceKilledMidRoundAborts(t *testing.T) {
	s, _ := migrateSystem(t, func(c *Config) {
		c.MigrateAt = 200
		c.Migrate = migrate.Config{Link: fastLink()}
		c.WatchdogCycles = 2000
	})
	killed := false
	s.OnCycle = func(cycle uint64) {
		// Fires inside the migration's step hook (pre-copy overlaps
		// execution), so the kill lands mid-round.
		if cycle > 210 && !killed {
			killed = true
			if err := s.Kill(0); err != nil {
				t.Errorf("kill: %v", err)
			}
		}
	}
	s.Run(300_000)
	rep := s.MigrateReport()
	if rep == nil {
		t.Fatal("migration never ran")
	}
	if rep.Committed {
		t.Fatalf("migration committed after source death: %+v", rep)
	}
	if rep.Reason != "source-failed" {
		t.Fatalf("reason = %q", rep.Reason)
	}
}

// TestMigrateLossyWireCommits: the armed migration rides a wire that
// loses every fifth frame and still commits via retransmission.
func TestMigrateLossyWireCommits(t *testing.T) {
	ref, _ := migrateSystem(t, nil)
	ref.Run(300_000)
	want := migrateOutcome(t, ref)

	s, _ := migrateSystem(t, func(c *Config) {
		c.MigrateAt = 200
		c.Migrate = migrate.Config{Link: fastLink()}
	})
	s.OnMigrate = func(link *migrate.Link, recv *migrate.Receiver) {
		link.Intercept = func(f *migrate.Frame, attempt int) migrate.Fate {
			return migrate.Fate{Drop: attempt == 0 && f.Seq%5 == 0}
		}
	}
	s.Run(300_000)
	rep := s.MigrateReport()
	if rep == nil || !rep.Committed {
		t.Fatalf("lossy wire did not commit: %+v", rep)
	}
	if rep.Link.Retransmits == 0 {
		t.Fatal("no retransmissions recorded")
	}
	if got := migrateOutcome(t, s); got != want {
		t.Errorf("lossy migration diverged:\n got %s\nwant %s", got, want)
	}
}

// TestMigrateMetricsRegistered: arming a migration publishes migrate.*
// counters and the STW histogram in the registry.
func TestMigrateMetricsRegistered(t *testing.T) {
	s, _ := migrateSystem(t, func(c *Config) {
		c.MigrateAt = 200
		c.Migrate = migrate.Config{Link: fastLink()}
	})
	reg := telemetry.NewRegistry()
	s.RegisterMetrics(reg)
	s.Run(300_000)
	snap := reg.Snapshot()
	if snap.Get("migrate.committed") != 1 {
		t.Fatalf("migrate.committed = %v", snap.Get("migrate.committed"))
	}
	if snap.Get("migrate.rounds") < 2 {
		t.Fatalf("migrate.rounds = %v", snap.Get("migrate.rounds"))
	}
	hists := reg.Histograms()
	h, ok := hists["migrate.stw_window"]
	if !ok || h.Count() != 1 {
		t.Fatalf("stw histogram missing or empty: %v", hists)
	}
}
