package multi

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/word"
)

// CollectAddressSpace garbage-collects the entire machine-wide virtual
// address space: the mark phase chases tag bits across node boundaries
// (a capability on node A keeps a segment on node B alive), then every
// node frees its unmarked segments. This is the Sec 4.3 procedure —
// "recursively scanning the reachable segments from all live processes"
// — applied to the multicomputer's single global space, where it needs
// no coordination protocol beyond reading memory: reachability is a
// property of the data itself.
func (s *System) CollectAddressSpace(roots []word.Word) (GCStats, error) {
	var st GCStats
	marked := make(map[uint64]bool) // segment bases are globally unique
	var queue []uint64

	mark := func(w word.Word) {
		if !w.Tag {
			return
		}
		p, err := core.Decode(w)
		if err != nil {
			return
		}
		home := HomeOf(p.Addr())
		if home >= len(s.Nodes) {
			return
		}
		base, _, _, ok := s.Nodes[home].K.SegmentAt(p.Addr())
		if !ok || marked[base] {
			return
		}
		marked[base] = true
		queue = append(queue, base)
	}

	for _, w := range roots {
		st.RootPointers++
		mark(w)
	}
	for _, n := range s.Nodes {
		for _, t := range n.K.M.Threads() {
			mark(t.IP.Word())
			for _, w := range t.Regs {
				mark(w)
			}
		}
	}

	for len(queue) > 0 {
		base := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		home := HomeOf(base)
		k := s.Nodes[home].K
		_, logLen, revoked, ok := k.SegmentAt(base)
		if !ok {
			return st, fmt.Errorf("multi: marked segment %#x vanished", base)
		}
		if revoked {
			continue // unmapped contents: nothing to scan
		}
		size := uint64(1) << logLen
		for off := uint64(0); off < size; off += word.BytesPerWord {
			w, err := k.M.Space.ReadWord(base + off)
			if err != nil {
				return st, err
			}
			st.WordsScanned++
			mark(w)
		}
	}

	st.LiveSegments = len(marked)
	for _, n := range s.Nodes {
		for _, base := range n.K.SegmentBases() {
			if marked[base] {
				continue
			}
			_, logLen, _, _ := n.K.SegmentAt(base)
			p, err := core.Make(core.PermReadWrite, logLen, base)
			if err != nil {
				return st, err
			}
			if err := n.K.FreeSegment(p); err != nil {
				return st, err
			}
			st.FreedSegments++
		}
	}
	return st, nil
}

// GCStats mirrors kernel.GCStats for the machine-wide collection.
type GCStats struct {
	RootPointers  int
	LiveSegments  int
	FreedSegments int
	WordsScanned  uint64
}
