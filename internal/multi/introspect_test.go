package multi

import (
	"bufio"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/telemetry"
)

// TestNodeMetricsNamespaced: RegisterMetrics must publish every node's
// machine metrics under node.<id>.* — one snapshot of the shared
// registry shows all nodes side by side.
func TestNodeMetricsNamespaced(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Node.PhysBytes = 1 << 20
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.EnableHistograms()
	reg := telemetry.NewRegistry()
	s.RegisterMetrics(reg)
	snap := reg.Snapshot()
	for _, n := range s.Nodes {
		for _, suffix := range []string{
			"machine.instructions", "machine.cycles", "cache.l1.hits",
			"vm.tlb.hits", "machine.hist.remote_rt.count",
		} {
			name := fmt.Sprintf("node.%d.%s", n.ID, suffix)
			if _, ok := snap[name]; !ok {
				t.Errorf("snapshot missing %q", name)
			}
		}
	}
	// The un-namespaced system counters must still be there.
	for _, name := range []string{"multi.remote_reads", "recovery.restores", "noc.msgs"} {
		if _, ok := snap[name]; !ok {
			t.Errorf("snapshot missing system counter %q", name)
		}
	}
}

// TestNodeMetricsSurviveRestore: after an auto-recovery the node.<id>.*
// samplers must read the restored kernels, not the discarded ones.
func TestNodeMetricsSurviveRestore(t *testing.T) {
	s, th, _ := watchdogSystem(t, true, 400)
	s.cfg.CheckpointEvery = 100
	s.cfg.AutoRecover = true
	reg := telemetry.NewRegistry()
	s.RegisterMetrics(reg)
	if err := s.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	if err := s.Kill(1); err != nil {
		t.Fatal(err)
	}
	s.Run(100_000)
	if s.Restores() == 0 {
		t.Fatal("expected an auto-recovery")
	}
	if th.State != machine.Halted {
		// The original thread object belongs to the pre-restore kernel;
		// what matters below is that the samplers follow the swap.
		t.Logf("pre-restore thread: %v", th.State)
	}
	snap := reg.Snapshot()
	got := snap["node.0.machine.instructions"]
	want := float64(s.Nodes[0].K.M.Stats().Instructions)
	if got != want {
		t.Fatalf("node.0.machine.instructions = %v, want %v (restored kernel)", got, want)
	}
	if want == 0 {
		t.Fatal("restored kernel retired no instructions")
	}
}

// spanTrace renders the span events of a trace into a canonical string
// for comparison.
func spanTrace(tr *telemetry.Tracer) string {
	var b strings.Builder
	for _, ev := range tr.Events() {
		if ev.Kind != telemetry.EvSpanBegin && ev.Kind != telemetry.EvSpanEnd {
			continue
		}
		fmt.Fprintf(&b, "%d %v trace=%d span=%d parent=%d node=%d %s\n",
			ev.Cycle, ev.Kind, ev.Trace, ev.Span, ev.Parent, ev.Cluster, ev.Detail)
	}
	return b.String()
}

// TestSpansDeterministicAndFree: with spans enabled, (a) the machine
// fingerprint is byte-identical to the spans-off baseline — tracing
// must not change timing — and (b) the serial and parallel schedulers
// produce the identical span stream, ids included.
func TestSpansDeterministicAndFree(t *testing.T) {
	baseline := runCrossNodeWorkload(t, true, 0)

	var serialTr, parTr *telemetry.Tracer
	mk := func(dst **telemetry.Tracer) func(*System) {
		return func(s *System) {
			tr := telemetry.NewTracer(1 << 16)
			tr.Enable(telemetry.EvSpanBegin, telemetry.EvSpanEnd)
			s.EnableSpans(tr)
			*dst = tr
		}
	}
	serial := runCrossNodeWorkloadWith(t, true, 0, mk(&serialTr))
	parallel := runCrossNodeWorkloadWith(t, false, 4, mk(&parTr))

	for name, fp := range map[string]fingerprint{"serial": serial, "parallel": parallel} {
		if fp.cycles != baseline.cycles || fp.sys != baseline.sys ||
			fp.net != baseline.net || fp.threads != baseline.threads ||
			fp.memory != baseline.memory {
			t.Errorf("enabling spans changed the %s run:\nbaseline %+v\nspans    %+v", name, baseline.sys, fp.sys)
		}
	}
	st, pt := spanTrace(serialTr), spanTrace(parTr)
	if st == "" {
		t.Fatal("no span events recorded")
	}
	if st != pt {
		t.Errorf("span streams diverge:\nserial:\n%.600s\nparallel:\n%.600s", st, pt)
	}

	// Structural checks: every root span that ended has matching ids,
	// every leg names a live parent.
	begun := map[uint64]telemetry.Event{}
	legs, roots, ended := 0, 0, 0
	for _, ev := range serialTr.Events() {
		switch ev.Kind {
		case telemetry.EvSpanBegin:
			begun[ev.Span] = ev
			if ev.Parent == 0 {
				roots++
			} else {
				legs++
				if _, ok := begun[ev.Parent]; !ok {
					t.Fatalf("leg span %d begins before its parent %d", ev.Span, ev.Parent)
				}
			}
		case telemetry.EvSpanEnd:
			ended++
			b, ok := begun[ev.Span]
			if !ok {
				t.Fatalf("span %d ends without beginning", ev.Span)
			}
			if ev.Cycle < b.Cycle {
				t.Fatalf("span %d ends at %d before it begins at %d", ev.Span, ev.Cycle, b.Cycle)
			}
		}
	}
	if roots == 0 || legs == 0 || ended == 0 {
		t.Fatalf("degenerate trace: roots=%d legs=%d ended=%d", roots, legs, ended)
	}
	// Two legs per completed root (request + reply).
	if legs != 2*roots {
		t.Errorf("legs=%d want 2×roots=%d", legs, 2*roots)
	}
}

// TestFlightDumpOnWatchdog: a hung run must fire OnFlightDump with a
// watchdog reason, and FlightDump must emit one parseable JSONL
// section per node plus the mesh section.
func TestFlightDumpOnWatchdog(t *testing.T) {
	s, _, _ := watchdogSystem(t, true, 300)
	s.EnableFlight(64)
	var reasons []string
	s.OnFlightDump = func(reason string) { reasons = append(reasons, reason) }
	if err := s.Kill(1); err != nil {
		t.Fatal(err)
	}
	s.Run(50_000)
	if !s.Hung() {
		t.Fatal("expected the watchdog to trip")
	}
	if len(reasons) == 0 || !strings.Contains(reasons[0], "watchdog") {
		t.Fatalf("OnFlightDump reasons = %q, want a watchdog escalation", reasons)
	}

	var buf strings.Builder
	if err := s.FlightDump(&buf, reasons[0]); err != nil {
		t.Fatal(err)
	}
	headers := 0
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	for sc.Scan() {
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("non-JSON flight line %q: %v", sc.Text(), err)
		}
		if f, ok := obj["flight"].(bool); ok && f {
			headers++
			if obj["reason"] != reasons[0] {
				t.Errorf("header reason = %v, want %q", obj["reason"], reasons[0])
			}
		}
	}
	want := len(s.Nodes) + 1 // every node + the mesh transport
	if headers != want {
		t.Fatalf("flight dump has %d section headers, want %d", headers, want)
	}
}

// TestFlightDumpDisabledIsNoop: FlightDump without EnableFlight writes
// nothing and reports no error.
func TestFlightDumpDisabledIsNoop(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Node.PhysBytes = 1 << 20
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := s.FlightDump(&buf, "nothing"); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("disabled FlightDump wrote %q", buf.String())
	}
}
