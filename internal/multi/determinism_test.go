package multi

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/noc"
	"repro/internal/word"
)

// fingerprint captures everything externally observable about a
// finished multicomputer run: cycles, the aggregate and per-node
// counters, every thread's architectural state, and the memory words
// the workload touched.
type fingerprint struct {
	cycles    uint64
	sys       Stats
	net       noc.Stats
	nodeStats []machine.Stats
	threads   string
	memory    string
}

// runCrossNodeWorkload boots a system where every node runs a thread
// hammering its ring successor's segment with remote stores and loads —
// each cycle's barrier has traffic from many nodes, so any
// serial/parallel divergence in delivery order or link contention shows
// up in the counters and final state.
func runCrossNodeWorkload(t *testing.T, serial bool, workers int) fingerprint {
	t.Helper()
	return runCrossNodeWorkloadWith(t, serial, workers, nil)
}

// runCrossNodeWorkloadWith is runCrossNodeWorkload with a hook that
// configures the freshly booted system before any workload is loaded
// (the introspection tests enable spans/flight from here).
func runCrossNodeWorkloadWith(t *testing.T, serial bool, workers int, setup func(*System)) fingerprint {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Node.PhysBytes = 1 << 20
	cfg.Serial = serial
	cfg.Workers = workers
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if setup != nil {
		setup(s)
	}
	n := len(s.Nodes)
	segs := make([]core.Pointer, n)
	for i, nd := range s.Nodes {
		p, err := nd.K.AllocSegment(4096)
		if err != nil {
			t.Fatal(err)
		}
		segs[i] = p
	}
	prog := mustAssemble(`
		ldi r3, 0          ; accumulator
	loop:
		st  r1, 0, r2      ; remote store of the loop counter
		ld  r4, r1, 0      ; remote load back
		add r3, r3, r4
		st  r1, 8, r3      ; second remote word: the running sum
		subi r2, r2, 1
		bnez r2, loop
		halt
	`)
	var ths []*machine.Thread
	for i, nd := range s.Nodes {
		ip, err := nd.K.LoadProgram(prog, false)
		if err != nil {
			t.Fatal(err)
		}
		th, err := nd.K.Spawn(1, ip, map[int]word.Word{
			1: segs[(i+1)%n].Word(),         // ring successor's segment
			2: word.FromInt(int64(4 + i%3)), // staggered trip counts
		})
		if err != nil {
			t.Fatal(err)
		}
		ths = append(ths, th)
	}
	fp := fingerprint{cycles: s.Run(200000), sys: s.Stats(), net: s.Net.Stats()}
	for _, nd := range s.Nodes {
		fp.nodeStats = append(fp.nodeStats, nd.K.M.Stats())
	}
	for i, th := range ths {
		if th.State != machine.Halted {
			t.Fatalf("serial=%v: node %d thread %v fault=%v", serial, i, th.State, th.Fault)
		}
		fp.threads += fmt.Sprintf("%d: %v instret=%d regs=%v\n", i, th.State, th.Instret, th.Regs)
	}
	for i, nd := range s.Nodes {
		home := segs[i].Base()
		for off := uint64(0); off < 16; off += 8 {
			w, err := nd.K.M.Space.ReadWord(home + off)
			if err != nil {
				t.Fatal(err)
			}
			fp.memory += fmt.Sprintf("%d+%d: %v\n", i, off, w)
		}
	}
	return fp
}

// TestParallelRunMatchesSerial: the parallel scheduler must be
// bit-identical to serial stepping — same cycle count, same machine and
// network statistics, same registers, same memory. Workers is forced
// above 1 so runParallel is exercised even on a single-core host; the
// Makefile race gate runs this under -race.
func TestParallelRunMatchesSerial(t *testing.T) {
	serial := runCrossNodeWorkload(t, true, 0)
	parallel := runCrossNodeWorkload(t, false, 4)
	if serial.cycles != parallel.cycles {
		t.Errorf("cycles: serial %d parallel %d", serial.cycles, parallel.cycles)
	}
	if serial.sys != parallel.sys {
		t.Errorf("system stats:\nserial   %+v\nparallel %+v", serial.sys, parallel.sys)
	}
	if serial.net != parallel.net {
		t.Errorf("network stats:\nserial   %+v\nparallel %+v", serial.net, parallel.net)
	}
	for i := range serial.nodeStats {
		if serial.nodeStats[i] != parallel.nodeStats[i] {
			t.Errorf("node %d stats:\nserial   %+v\nparallel %+v", i, serial.nodeStats[i], parallel.nodeStats[i])
		}
	}
	if serial.threads != parallel.threads {
		t.Errorf("thread state:\nserial:\n%sparallel:\n%s", serial.threads, parallel.threads)
	}
	if serial.memory != parallel.memory {
		t.Errorf("memory:\nserial:\n%sparallel:\n%s", serial.memory, parallel.memory)
	}
}

// TestParallelRunMatchesSerialAcrossWorkerCounts: determinism must not
// depend on how nodes are partitioned over workers.
func TestParallelRunMatchesSerialAcrossWorkerCounts(t *testing.T) {
	base := runCrossNodeWorkload(t, true, 0)
	for _, w := range []int{2, 3, 8} {
		got := runCrossNodeWorkload(t, false, w)
		if base.cycles != got.cycles || base.sys != got.sys || base.net != got.net ||
			base.threads != got.threads || base.memory != got.memory {
			t.Errorf("workers=%d diverges from serial", w)
		}
	}
}
