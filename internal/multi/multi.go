// Package multi assembles the full M-Machine multicomputer of Sec 3:
// multithreaded MAP nodes on a 3-dimensional mesh, all sharing one
// 54-bit byte-addressable global address space.
//
// The address space is partitioned by high address bits: node i is the
// home of addresses [i·2^NodeShift, (i+1)·2^NodeShift). A guarded
// pointer minted on any node is valid machine-wide — when a thread
// dereferences an address homed elsewhere, the (already protection-
// checked) access travels the mesh as a read/write transaction and is
// serviced by the home node's banked cache. No inter-node protection
// state exists: capability transfer between nodes is just sending a
// tagged word.
package multi

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/jit"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/migrate"
	"repro/internal/noc"
	"repro/internal/persist"
	"repro/internal/telemetry"
	"repro/internal/word"
)

// Typed misuse errors for the node lifecycle API. A corrupted node id
// or a double fault-injection must degrade into an accountable error,
// not silent success or an index panic.
var (
	// ErrNodeID reports a node id outside the mesh.
	ErrNodeID = errors.New("multi: node id out of range")
	// ErrNodeDead reports an operation needing a live node (double
	// Kill, Stall of a dead node).
	ErrNodeDead = errors.New("multi: node is dead")
	// ErrNodeAlive reports a Revive of a node that was never killed.
	ErrNodeAlive = errors.New("multi: node is alive")
)

// NodeShift is the number of address bits each node owns: 4GB per
// node, leaving room for 2^22 nodes in the 54-bit space.
const NodeShift = 32

// Config fixes the multicomputer geometry.
type Config struct {
	Mesh noc.Config
	Node machine.Config
	// RegionLog is the per-node kernel segment region order (within
	// the node's 2^NodeShift slice).
	RegionLog uint
	// Serial forces Run to step nodes on the calling goroutine
	// (debugging aid); the default parallel scheduler is bit-identical
	// to it.
	Serial bool
	// Workers bounds the parallel scheduler's worker count; 0 means
	// min(GOMAXPROCS, nodes).
	Workers int
	// JIT enables the check-eliding superblock translator on every
	// node's machine (see internal/jit). Nodes run it in paced mode —
	// one compiled step per cycle, so the lockstep barrier and remote
	// delivery order are untouched and results stay bit-identical to
	// the interpreter. Off by default: the fault-injection campaigns
	// corrupt state under the verifier's feet, so they keep the
	// interpreter. Callers load programs through Node.K and then
	// register them with k.M.JITRegister.
	JIT bool
	// WatchdogCycles, when non-zero, arms a cycle-deadline watchdog:
	// if that many cycles elapse with no node retiring an instruction
	// (or taking a fault), Run stops and Hung reports true. This is how
	// a killed node or a dropped message — a thread parked forever on a
	// reply that is not coming — becomes a detected failure instead of
	// a silent maxCycles spin.
	WatchdogCycles uint64

	// CheckpointEvery, when non-zero, takes a coordinated checkpoint of
	// every node's kernel at each multiple of this many cycles — at the
	// cycle barrier, after remote delivery, so the set is globally
	// consistent. Generations are kept in a ring of the last
	// CheckpointKeep. Checkpoints are skipped while any node is dead
	// (the set would not be consistent).
	CheckpointEvery uint64
	// CheckpointKeep is the checkpoint ring size; 0 means 2.
	CheckpointKeep int
	// AutoRecover escalates the watchdog from detection to repair: when
	// the cycle-deadline trips and a checkpoint generation exists, the
	// system restores every node from the newest generation and resumes
	// instead of stopping with Hung. Requires CheckpointEvery (or a
	// manual CheckpointNow) to have captured at least one generation.
	AutoRecover bool
	// MaxRestores bounds automatic recoveries per Run — a persistently
	// failing machine must eventually surface as Hung, not livelock
	// through the same checkpoint forever. 0 means 4.
	MaxRestores int

	// PersistDir, when non-empty, replaces the in-memory checkpoint ring
	// with a durable on-disk store (internal/persist): each coordinated
	// generation is written as incremental dirty-page deltas with
	// per-section checksums and a commit marker, pruned to CheckpointKeep
	// (delta chains pin their base images beyond the window), and
	// auto-recovery restores from the newest generation on disk whose
	// whole chain verifies — a torn or bit-rotted newest generation
	// falls back to an older intact one.
	PersistDir string
	// PersistBaseEvery bounds delta-chain length in the durable store: a
	// fresh base image every Nth generation. 0 means
	// persist.DefaultBaseEvery; 1 writes only base images.
	PersistBaseEvery int

	// MigrateAt, when non-zero, arms one live migration during Run:
	// when the system reaches this cycle count, node MigrateNode is
	// migrated onto a standby replica by iterative pre-copy
	// (internal/migrate) and, on commit, atomically swapped in. The
	// source keeps executing its normal schedule during pre-copy, so an
	// aborted (or never-started) migration is bit-identical to this
	// knob being off.
	MigrateAt uint64
	// MigrateNode is the node to migrate when MigrateAt trips.
	MigrateNode int
	// Migrate parameterizes the armed migration (rounds, convergence,
	// link shape). Zero values take the migrate package defaults.
	Migrate migrate.Config
}

// DefaultConfig is a 2×2×2-node machine of M-Machine nodes.
func DefaultConfig() Config {
	nodeCfg := machine.MMachine()
	nodeCfg.PhysBytes = 4 << 20 // keep 8 nodes affordable to simulate
	return Config{
		Mesh:      noc.DefaultConfig(),
		Node:      nodeCfg,
		RegionLog: 26,
	}
}

// System is the whole multicomputer.
type System struct {
	Net   *noc.Network
	Nodes []*Node
	cfg   Config
	stats Stats

	// OnCycle, when non-nil, runs after each cycle's barrier delivery
	// with the completed-cycle count. It executes on the coordinating
	// goroutine between barriers, so it may safely inspect or mutate
	// any node (the fault-injection campaigns checkpoint and kill nodes
	// from here).
	OnCycle func(cycle uint64)

	// OnRestore, when non-nil, runs after auto-recovery rewires each
	// restored node, before execution resumes — the hook for per-node
	// environment the checkpoint image does not capture (ECC planes,
	// integrity hooks, tracers).
	OnRestore func(id int, k *kernel.Kernel)

	// OnFlightDump, when non-nil, fires when the system crosses an
	// unrecoverable boundary — the watchdog trips with no repair left, a
	// node machine faults with no handler, or the reliable transport
	// gives a message up — with a human-readable reason. The canonical
	// handler calls FlightDump to persist the recorders' last events.
	// Fires at most once per Run escalation site; requires EnableFlight.
	OnFlightDump func(reason string)

	cycle      uint64   // completed cycles since boot
	dead       []bool   // killed nodes: never step, never service
	stallUntil []uint64 // frozen until this cycle count (transient stall)
	hung       bool     // the watchdog tripped

	lastProgress      uint64 // instret+faults sum at the last progress check
	lastProgressCycle uint64

	// Auto-recovery state: the ring of coordinated checkpoint
	// generations and the repair counters.
	ckpts       []ckptGen
	checkpoints uint64 // generations captured (recovery.checkpoints)
	restores    uint64 // automatic recoveries performed (recovery.restores)

	// Durable persistence state (Config.PersistDir): the on-disk store
	// and the per-node incremental capture baselines. A nil entry in
	// capStates forces the next generation to be a full base.
	store      *persist.Store
	capStates  []*kernel.CaptureState
	persistGen uint64 // newest generation committed to the store
	sinceBase  int    // deltas since the last base image

	// Live-migration state (Config.MigrateAt). OnMigrate, when non-nil,
	// runs just before the armed migration starts, with the wire link
	// and the standby receiver — the fault campaign's handle for frame
	// fates and standby crashes.
	OnMigrate      func(link *migrate.Link, recv *migrate.Receiver)
	migrated       bool             // the armed migration has run
	migrateMetrics *migrate.Metrics // non-nil iff MigrateAt is armed
	migrateReport  *migrate.Report  // outcome of the armed migration

	// Introspection state (all optional, all off by default).
	spans      *spanState                  // EnableSpans: causal-span allocator
	flights    []*telemetry.FlightRecorder // EnableFlight: per-node rings
	meshFlight *telemetry.FlightRecorder   // EnableFlight: transport ring
	histsOn    bool                        // EnableHistograms was called
	reg        *telemetry.Registry         // RegisterMetrics target, kept for re-registration after restore
}

// spanState is the deterministic span-id allocator. IDs are handed out
// only on the coordinating goroutine — Node.ReadWord/WriteWord run
// inside ServiceRemote at the cycle barrier, in node-id order — so the
// id sequence, and with it the whole trace, is identical under the
// serial and parallel schedulers.
type spanState struct {
	tr   *telemetry.Tracer
	next uint64
}

// ckptGen is one coordinated checkpoint generation: every node's kernel
// image, captured at the same barrier cycle.
type ckptGen struct {
	cycle uint64
	cps   []*kernel.Checkpoint
}

// Stats counts cross-node traffic.
type Stats struct {
	RemoteReads  uint64
	RemoteWrites uint64
}

// Node is one mesh node: a kernel-managed MAP machine plus its network
// interface.
type Node struct {
	ID  int
	K   *kernel.Kernel
	sys *System
}

// HomeOf returns the node id owning addr.
func HomeOf(addr uint64) int { return int(addr >> NodeShift) }

// New boots the multicomputer: one kernel+machine per mesh node, each
// with a segment region inside its slice of the global space, wired to
// the mesh for remote access.
func New(cfg Config) (*System, error) {
	net, err := noc.New(cfg.Mesh)
	if err != nil {
		return nil, err
	}
	if cfg.RegionLog >= NodeShift {
		return nil, fmt.Errorf("multi: region 2^%d exceeds node slice 2^%d", cfg.RegionLog, NodeShift)
	}
	s := &System{Net: net, cfg: cfg}
	s.dead = make([]bool, net.Nodes())
	s.stallUntil = make([]uint64, net.Nodes())
	for i := 0; i < net.Nodes(); i++ {
		base := uint64(i) << NodeShift // aligned on any region ≤ 2^NodeShift
		k, err := kernel.NewWithRegion(cfg.Node, base, cfg.RegionLog)
		if err != nil {
			return nil, err
		}
		n := &Node{ID: i, K: k, sys: s}
		k.M.Remote = n
		// Remote accesses park on the issuing node and complete at the
		// cycle barrier (deliver), in node order — the serialization
		// point that makes parallel and serial stepping bit-identical.
		k.M.DeferRemote = true
		if cfg.JIT {
			k.M.EnableJIT(jit.DefaultConfig())
		}
		s.Nodes = append(s.Nodes, n)
	}
	if cfg.PersistDir != "" {
		st, err := persist.Open(cfg.PersistDir, net.Nodes())
		if err != nil {
			return nil, err
		}
		gen, err := st.MaxGen()
		if err != nil {
			return nil, err
		}
		s.store = st
		s.persistGen = gen // numbering resumes after a reboot
		s.capStates = make([]*kernel.CaptureState, net.Nodes())
	}
	if cfg.MigrateAt != 0 {
		if cfg.MigrateNode < 0 || cfg.MigrateNode >= net.Nodes() {
			return nil, fmt.Errorf("multi: migrate node %d out of range [0,%d)", cfg.MigrateNode, net.Nodes())
		}
		s.migrateMetrics = migrate.NewMetrics()
	}
	return s, nil
}

// Store returns the durable checkpoint store, or nil when the system
// runs with the in-memory ring (Config.PersistDir empty).
func (s *System) Store() *persist.Store { return s.store }

// Stats returns a copy of the cross-node counters.
func (s *System) Stats() Stats { return s.stats }

// Step advances every live node one cycle in lockstep, then delivers
// the cycle's remote traffic at the barrier.
func (s *System) Step() {
	for i, n := range s.Nodes {
		if s.skip(i) {
			continue
		}
		n.K.M.Step()
	}
	s.deliver()
}

// skip reports whether node i sits out this cycle: killed, or frozen by
// a transient stall.
func (s *System) skip(i int) bool {
	return s.dead[i] || s.stallUntil[i] > s.cycle
}

// deliver completes every remote access issued this cycle, visiting
// nodes in id order. During the step phase nodes touch only their own
// state (remote references are parked, not performed), so all
// cross-node effects — mesh link reservations, home-cache contention,
// traffic counters — happen here, in one deterministic order, no
// matter how the step phase was scheduled. It then retires the cycle:
// the watchdog progress check and the OnCycle hook both run here, on
// the coordinating goroutine.
func (s *System) deliver() {
	for i, n := range s.Nodes {
		if s.dead[i] {
			continue
		}
		n.K.M.ServiceRemote()
	}
	s.cycle++
	if s.cfg.CheckpointEvery != 0 && s.cycle%s.cfg.CheckpointEvery == 0 {
		s.checkpointAll()
	}
	if s.cfg.WatchdogCycles > 0 && s.cycle&63 == 0 {
		s.checkProgress()
	}
	if s.OnCycle != nil {
		s.OnCycle(s.cycle)
	}
}

// checkProgress trips the watchdog if WatchdogCycles have elapsed since
// any node last retired an instruction or took a fault. (Faults count
// as progress: a demand-paging storm is slow, not hung.)
func (s *System) checkProgress() {
	var p uint64
	for _, n := range s.Nodes {
		st := n.K.M.Stats()
		p += st.Instructions + st.Faults
	}
	if p != s.lastProgress {
		s.lastProgress = p
		s.lastProgressCycle = s.cycle
		return
	}
	if s.cycle-s.lastProgressCycle >= s.cfg.WatchdogCycles {
		// Escalation: with AutoRecover armed and a consistent
		// generation banked, the watchdog repairs instead of reporting.
		if s.cfg.AutoRecover && s.recoverAll() {
			return
		}
		s.hung = true
		s.fireFlightDump(fmt.Sprintf(
			"watchdog: no progress for %d cycles at cycle %d", s.cycle-s.lastProgressCycle, s.cycle))
	}
}

// maxRestores resolves Config.MaxRestores.
func (s *System) maxRestores() uint64 {
	if s.cfg.MaxRestores > 0 {
		return uint64(s.cfg.MaxRestores)
	}
	return 4
}

// checkpointKeep resolves Config.CheckpointKeep.
func (s *System) checkpointKeep() int {
	if s.cfg.CheckpointKeep > 0 {
		return s.cfg.CheckpointKeep
	}
	return 2
}

// checkpointAll captures one coordinated generation — every node's
// kernel at this barrier cycle — into the ring. Skipped while any node
// is dead: the set would not be globally consistent. Capture reads
// memory through the ECC plane (kernel.Checkpoint goes through
// mem.ReadWord), so latent single-bit errors are healed on the way into
// the image and a generation is never poisoned by correctable decay.
func (s *System) checkpointAll() {
	for _, d := range s.dead {
		if d {
			return
		}
	}
	if s.store != nil {
		s.persistCheckpoint()
		return
	}
	g := ckptGen{cycle: s.cycle, cps: make([]*kernel.Checkpoint, len(s.Nodes))}
	for i, n := range s.Nodes {
		cp, err := n.K.Checkpoint()
		if err != nil {
			return // e.g. uncorrectable memory: keep the older generations
		}
		g.cps[i] = cp
	}
	s.ckpts = append(s.ckpts, g)
	if keep := s.checkpointKeep(); len(s.ckpts) > keep {
		copy(s.ckpts, s.ckpts[len(s.ckpts)-keep:])
		s.ckpts = s.ckpts[:keep]
	}
	s.checkpoints++
}

// persistBaseEvery resolves Config.PersistBaseEvery.
func (s *System) persistBaseEvery() int {
	if s.cfg.PersistBaseEvery > 0 {
		return s.cfg.PersistBaseEvery
	}
	return persist.DefaultBaseEvery
}

// persistCheckpoint writes one coordinated generation to the durable
// store. All nodes must capture the same kind, so the whole generation
// re-bases when any node's baseline is missing or stale (first capture,
// a Revive that swapped a kernel, a previous error) or the delta chain
// reached PersistBaseEvery. On ANY error every baseline is dropped:
// the failed generation never got a commit marker, so the next capture
// starts a fresh base — dirty bits cleared by a failed capture are
// swallowed by the full image, never lost.
func (s *System) persistCheckpoint() {
	full := s.sinceBase >= s.persistBaseEvery()-1
	for i, n := range s.Nodes {
		if !s.capStates[i].Matches(n.K) {
			full = true
		}
	}
	cps := make([]*kernel.Checkpoint, len(s.Nodes))
	ncaps := make([]*kernel.CaptureState, len(s.Nodes))
	for i, n := range s.Nodes {
		prev := s.capStates[i]
		if full {
			prev = nil
		}
		cp, ncap, err := n.K.CheckpointIncremental(prev)
		if err != nil {
			s.resetCapStates()
			return
		}
		cps[i] = cp
		ncaps[i] = ncap
	}
	gen := s.persistGen + 1
	if err := s.store.WriteGeneration(gen, s.persistGen, s.cycle, cps); err != nil {
		s.resetCapStates()
		return
	}
	copy(s.capStates, ncaps)
	s.persistGen = gen
	if full {
		s.sinceBase = 0
	} else {
		s.sinceBase++
	}
	s.checkpoints++
	// Prune inside the barrier, like the in-memory ring: retention is
	// part of the generation commit. Prune never removes a base a
	// retained delta still replays from.
	if err := s.store.Prune(s.checkpointKeep()); err != nil {
		s.resetCapStates() // disk trouble: re-base defensively
	}
}

// resetCapStates drops every incremental baseline: the next generation
// is a full base.
func (s *System) resetCapStates() {
	for i := range s.capStates {
		s.capStates[i] = nil
	}
	s.sinceBase = 0
}

// CheckpointNow captures a coordinated generation immediately — the
// caller's chance to seed the ring after workload setup, before any
// periodic boundary. Fails if a node is dead or a capture errors.
func (s *System) CheckpointNow() error {
	for i, d := range s.dead {
		if d {
			return fmt.Errorf("%w: node %d", ErrNodeDead, i)
		}
	}
	before := s.checkpoints
	s.checkpointAll()
	if s.checkpoints == before {
		return fmt.Errorf("multi: checkpoint capture failed")
	}
	return nil
}

// recoverAll restores every node from the newest coordinated generation
// and resumes: kernels are rebuilt from their images, rewired to the
// mesh, dead and stalled nodes brought back, and the watchdog rearmed.
// The generation is consistent by construction — all images were taken
// at one barrier with every in-flight remote access already committed —
// so threads that were parked on a lost reply simply re-issue from
// their checkpointed IP. Returns false (leaving the watchdog to report
// Hung) when no generation exists, the restore budget is spent, or a
// rebuild fails.
func (s *System) recoverAll() bool {
	if s.restores >= s.maxRestores() {
		return false
	}
	var cps []*kernel.Checkpoint
	if s.store != nil {
		// Durable path: newest generation on disk whose whole delta
		// chain verifies. A damaged newest generation is skipped (and
		// counted) in favor of an older intact one.
		loaded, _, _, err := s.store.LoadNewestIntact()
		if err != nil {
			return false
		}
		cps = loaded
		// The restored kernels have fresh Spaces: every incremental
		// baseline is stale, so the next generation re-bases.
		s.resetCapStates()
	} else {
		if len(s.ckpts) == 0 {
			return false
		}
		cps = s.ckpts[len(s.ckpts)-1].cps
	}
	for i := range s.Nodes {
		k, err := kernel.Restore(s.cfg.Node, cps[i])
		if err != nil {
			return false
		}
		s.installKernel(i, k)
		if s.OnRestore != nil {
			s.OnRestore(i, k)
		}
	}
	s.restores++
	s.hung = false
	// Reset the progress baseline to the restored machines' counters so
	// the next watchdog window measures fresh execution.
	var p uint64
	for _, n := range s.Nodes {
		st := n.K.M.Stats()
		p += st.Instructions + st.Faults
	}
	s.lastProgress = p
	s.lastProgressCycle = s.cycle
	return true
}

// installKernel rewires node id around kernel k exactly as New wired
// the original, clearing kill/stall status. Internal: the public Revive
// enforces the liveness contract on top.
func (s *System) installKernel(id int, k *kernel.Kernel) {
	n := s.Nodes[id]
	n.K = k
	k.M.Remote = n
	k.M.DeferRemote = true
	if s.cfg.JIT {
		// Fresh engine: compiled blocks describe code the restored image
		// may not contain, and the kernel re-registers nothing — the
		// translator rewarms from interpreter heat. OnRestore may call
		// JITRegister to resupply verifier proofs.
		k.M.EnableJIT(jit.DefaultConfig())
	}
	s.dead[id] = false
	s.stallUntil[id] = 0
	// Re-apply the introspection wiring the checkpoint image does not
	// capture: histograms (fresh, the old samples described a machine
	// that no longer exists), the flight ring (the same one — its tail
	// is the story of why this restore happened), and the metric
	// samplers under node.<id>.*.
	if s.histsOn {
		k.M.EnableHistograms()
	}
	s.attachFlight(id, k.M)
	s.registerNode(id)
}

// Checkpoints returns the number of coordinated generations captured.
func (s *System) Checkpoints() uint64 { return s.checkpoints }

// Restores returns the number of automatic recoveries performed.
func (s *System) Restores() uint64 { return s.restores }

// --- Live migration ----------------------------------------------------

// MigrateReport returns the outcome of the armed migration, or nil if
// it has not run.
func (s *System) MigrateReport() *migrate.Report { return s.migrateReport }

// MigrateMetrics returns the migration telemetry block, or nil when no
// migration is armed.
func (s *System) MigrateMetrics() *migrate.Metrics { return s.migrateMetrics }

// maybeMigrate fires the armed migration once the cycle threshold is
// reached, between Step calls on the coordinating goroutine. It
// returns how many cycles the migration stepped the system (counted
// against Run's budget).
func (s *System) maybeMigrate() uint64 {
	if s.migrated || s.cfg.MigrateAt == 0 || s.cycle < s.cfg.MigrateAt || s.hung {
		return 0
	}
	s.migrated = true
	rep, _ := s.MigrateNode(s.cfg.MigrateNode, s.cfg.Migrate)
	if rep == nil {
		return 0
	}
	return rep.SteppedCycles
}

// MigrateNode live-migrates node id onto a fresh standby replica:
// iterative pre-copy while the whole system keeps stepping its normal
// schedule, then a cutover barrier (final delta, fingerprint
// handshake, commit) and an atomic role swap via installKernel. On
// abort — wire gave up, standby died, source killed, or a configured
// abort point — the standby is discarded and the system is untouched:
// the source only ever executed the exact Step schedule it would have
// executed anyway.
//
// Must be called between cycle barriers on the coordinating goroutine
// (the run loops call it via maybeMigrate; tests may call it directly
// when the system is not running).
func (s *System) MigrateNode(id int, mcfg migrate.Config) (*migrate.Report, error) {
	if id < 0 || id >= len(s.Nodes) {
		return nil, fmt.Errorf("multi: migrate node %d out of range", id)
	}
	if s.dead[id] {
		return nil, fmt.Errorf("multi: migrate node %d is dead", id)
	}
	n := s.Nodes[id]
	recv := migrate.NewReceiver()
	link := migrate.NewLink(mcfg.Link)
	link.Deliver = recv.Deliver
	if s.OnMigrate != nil {
		s.OnMigrate(link, recv)
	}
	mcfg.Node = id
	prevAbort := mcfg.AbortIf
	mcfg.AbortIf = func() bool {
		return s.dead[id] || s.hung || (prevAbort != nil && prevAbort())
	}
	rep, err := migrate.Run(n.K, link, recv, func(cycles uint64) {
		for i := uint64(0); i < cycles && !s.Done() && !s.hung; i++ {
			s.Step()
		}
	}, mcfg)
	s.migrateReport = rep
	defer s.migrateMetrics.Note(rep)
	if err != nil || !rep.Committed {
		return rep, err
	}
	// Quiescence check: between barriers every deferred remote access
	// has completed, so the mesh wiring can be swapped safely. A
	// non-empty queue here means the caller violated the barrier
	// contract — refuse the swap, keep the source.
	if pend := n.K.M.RemotePending(); pend != 0 {
		rep.Committed = false
		rep.Reason = "not-quiescent"
		return rep, fmt.Errorf("multi: migrate node %d: %d remote accesses pending at cutover", id, pend)
	}
	k2, err := kernel.Restore(s.cfg.Node, rep.Image)
	if err != nil {
		rep.Committed = false
		rep.Reason = "restore-failed"
		return rep, err
	}
	s.installKernel(id, k2)
	return rep, nil
}

// --- Introspection: spans, histograms, flight recorders ----------------

// EnableSpans turns on causal spans for remote operations: every
// remote read/write emits a root span on the issuing node and one
// child span per mesh leg (request and reply), all tied together by
// trace/span/parent ids in tr's event stream. Span-carrying transport
// frames are flagged FlagTraced. Span ids are allocated at the cycle
// barrier in node-id order, so traces are bit-identical under the
// serial and parallel schedulers. Spans change no timing: the traced
// delivery path is cycle-for-cycle the untraced one.
func (s *System) EnableSpans(tr *telemetry.Tracer) {
	s.spans = &spanState{tr: tr}
	s.Net.Tracer = tr
}

// EnableHistograms allocates the latency histograms on every node
// (domain-switch penalty, remote-access round trip, TLB-refill cost)
// plus the mesh's retransmit-delay histogram. Idempotent; survives
// auto-recovery (installKernel re-enables on restored machines).
func (s *System) EnableHistograms() {
	s.histsOn = true
	for _, n := range s.Nodes {
		n.K.M.EnableHistograms()
	}
	if s.Net.HistRetransmit == nil {
		s.Net.HistRetransmit = telemetry.NewHistogram()
	}
}

// EnableFlight arms an always-on bounded flight recorder on every node
// (faults, traps, lost threads) and one on the mesh transport
// (retransmits, give-ups). size ≤ 0 selects DefaultFlightSize. The
// rings themselves survive auto-recovery — a restored machine keeps
// appending to the same ring, so a post-recovery dump still shows the
// events that led to the restore.
func (s *System) EnableFlight(size int) {
	if size <= 0 {
		size = telemetry.DefaultFlightSize
	}
	if s.flights == nil {
		s.flights = make([]*telemetry.FlightRecorder, len(s.Nodes))
		for i := range s.flights {
			s.flights[i] = telemetry.NewFlightRecorder(size)
		}
		s.meshFlight = telemetry.NewFlightRecorder(size)
	}
	s.Net.Flight = s.meshFlight
	s.Net.OnGiveUp = func(k noc.Kind, src, dst int, now uint64) {
		s.fireFlightDump(fmt.Sprintf("transport give-up: %v %d->%d at cycle %d", k, src, dst, now))
	}
	for i, n := range s.Nodes {
		s.attachFlight(i, n.K.M)
	}
}

// attachFlight wires node id's machine to its flight ring and dump
// escalation (shared by EnableFlight and installKernel).
func (s *System) attachFlight(id int, m *machine.Machine) {
	if s.flights == nil {
		return
	}
	m.Flight = s.flights[id]
	node := id
	m.OnFlightDump = func(reason string) {
		s.fireFlightDump(fmt.Sprintf("node %d %s", node, reason))
	}
}

// fireFlightDump forwards an escalation reason to OnFlightDump.
func (s *System) fireFlightDump(reason string) {
	if s.OnFlightDump != nil {
		s.OnFlightDump(reason)
	}
}

// FlightDump writes every flight recorder — one JSONL section per
// node, then the mesh transport's as node -1 — to w, each section
// headed by a {"flight":true,...} line carrying the reason. A no-op
// (and nil error) when EnableFlight was never called.
func (s *System) FlightDump(w io.Writer, reason string) error {
	for i, fr := range s.flights {
		if err := fr.Dump(w, reason, i); err != nil {
			return err
		}
	}
	if s.meshFlight != nil {
		return s.meshFlight.Dump(w, reason, -1)
	}
	return nil
}

// beginRemoteSpan opens the root span of one remote operation (the
// issuing node's view: begin at issue, end at completion). Returns the
// zero SpanContext — and emits nothing — when spans are off.
func (s *System) beginRemoteSpan(detail string, src, home int, now uint64) noc.SpanContext {
	sp := s.spans
	if sp == nil || sp.tr == nil || !sp.tr.Enabled(telemetry.EvSpanBegin) {
		return noc.SpanContext{}
	}
	sp.next++
	sc := noc.SpanContext{Trace: sp.next, Span: sp.next}
	sp.tr.Emit(telemetry.Event{Cycle: now, Kind: telemetry.EvSpanBegin,
		Thread: -1, Cluster: src, Domain: -1, Code: int64(home), Detail: detail,
		Trace: sc.Trace, Span: sc.Span})
	return sc
}

// legSpan allocates a child span of sc for one mesh leg.
func (s *System) legSpan(sc noc.SpanContext) noc.SpanContext {
	if sc.Span == 0 {
		return noc.SpanContext{}
	}
	s.spans.next++
	return noc.SpanContext{Trace: sc.Trace, Span: s.spans.next, Parent: sc.Span}
}

// endRemoteSpan closes a root span at cycle on node id. An operation
// that never completes (lost reply, dead home) leaves its span open —
// exactly what a hung trace should look like.
func (s *System) endRemoteSpan(sc noc.SpanContext, detail string, id int, cycle uint64) {
	if sc.Span == 0 {
		return
	}
	s.spans.tr.Emit(telemetry.Event{Cycle: cycle, Kind: telemetry.EvSpanEnd,
		Thread: -1, Cluster: id, Domain: -1, Detail: detail,
		Trace: sc.Trace, Span: sc.Span})
}

// RegisterMetrics publishes the multicomputer's cross-node and
// recovery counters plus the mesh's under the canonical namespaces
// (multi.*, recovery.*, noc.*), and every node's full machine metric
// set namespaced under node.<id>.* (node.3.machine.instructions,
// node.3.cache.l1.hits, ...). The registry is remembered: after an
// auto-recovery the restored kernels' samplers replace the dead ones
// under the same names, so a long-lived scrape endpoint never serves
// counters from a discarded machine.
func (s *System) RegisterMetrics(reg *telemetry.Registry) {
	s.reg = reg
	reg.Counter("multi.remote_reads", func() uint64 { return s.stats.RemoteReads })
	reg.Counter("multi.remote_writes", func() uint64 { return s.stats.RemoteWrites })
	reg.Counter("multi.cycle", func() uint64 { return s.cycle })
	reg.Counter("recovery.checkpoints", func() uint64 { return s.checkpoints })
	reg.Counter("recovery.restores", func() uint64 { return s.restores })
	if s.store != nil {
		s.store.RegisterMetrics(reg, "persist")
	}
	if s.migrateMetrics != nil {
		s.migrateMetrics.RegisterMetrics(reg, "migrate")
	}
	s.Net.RegisterMetrics(reg, "noc")
	for _, n := range s.Nodes {
		s.registerNode(n.ID)
	}
}

// registerNode (re-)publishes node id's machine metrics under
// node.<id>.*. Safe to call again after installKernel swaps the
// kernel: Register replaces samplers name-for-name.
func (s *System) registerNode(id int) {
	if s.reg == nil {
		return
	}
	sub := s.reg.Sub(fmt.Sprintf("node.%d.", id))
	s.Nodes[id].K.M.RegisterMetrics(sub)
}

// Hung reports whether the cycle-deadline watchdog stopped the last
// Run: some thread was waiting on a completion that can never arrive
// (killed node, message lost in the fabric).
func (s *System) Hung() bool { return s.hung }

// Cycle returns the number of completed system cycles since boot.
func (s *System) Cycle() uint64 { return s.cycle }

// checkID validates a node id against the mesh.
func (s *System) checkID(id int) error {
	if id < 0 || id >= len(s.Nodes) {
		return fmt.Errorf("%w: %d of %d", ErrNodeID, id, len(s.Nodes))
	}
	return nil
}

// Kill fails node id hard: it stops stepping, stops servicing remote
// requests, and every message homed there vanishes. Threads elsewhere
// that wait on it hang until the watchdog notices. Restore service with
// Revive. Killing a node that is already dead is a caller bug and
// returns ErrNodeDead.
func (s *System) Kill(id int) error {
	if err := s.checkID(id); err != nil {
		return err
	}
	if s.dead[id] {
		return fmt.Errorf("%w: double kill of node %d", ErrNodeDead, id)
	}
	s.dead[id] = true
	return nil
}

// Stall freezes node id until the given system cycle count (a transient
// fault: the node loses time but no state). A dead node cannot stall —
// it is not running at all.
func (s *System) Stall(id int, until uint64) error {
	if err := s.checkID(id); err != nil {
		return err
	}
	if s.dead[id] {
		return fmt.Errorf("%w: stall of dead node %d", ErrNodeDead, id)
	}
	s.stallUntil[id] = until
	return nil
}

// Revive brings a killed node back, optionally replacing its kernel
// with one rebuilt from a checkpoint (kernel.Restore). The new kernel's
// machine is rewired to the mesh exactly as New wired the original, and
// the watchdog is disarmed so the run can resume. Pass nil to revive
// the node with its old (pre-kill) state intact. Reviving a live node
// returns ErrNodeAlive — silently swapping a running kernel would
// destroy state the caller did not mean to lose.
func (s *System) Revive(id int, k *kernel.Kernel) error {
	if err := s.checkID(id); err != nil {
		return err
	}
	if !s.dead[id] {
		return fmt.Errorf("%w: revive of live node %d", ErrNodeAlive, id)
	}
	if k != nil {
		s.installKernel(id, k)
	} else {
		s.dead[id] = false
	}
	s.hung = false
	s.lastProgressCycle = s.cycle
	return nil
}

// Run steps until every node's threads are done or maxCycles elapse,
// returning cycles executed. Nodes are stepped by a pool of persistent
// workers meeting at a per-cycle barrier; Config.Serial selects the
// single-goroutine scheduler instead. Both produce bit-identical
// machines.
func (s *System) Run(maxCycles uint64) uint64 {
	if !s.cfg.Serial && s.workerCount() > 1 {
		return s.runParallel(maxCycles)
	}
	return s.runSerial(maxCycles)
}

func (s *System) runSerial(maxCycles uint64) uint64 {
	var c uint64
	for c < maxCycles && !s.Done() && !s.hung {
		s.Step()
		c++
		// The armed migration steps the system itself (pre-copy overlaps
		// execution); those cycles count against this Run's budget.
		c += s.maybeMigrate()
	}
	return c
}

// workerCount resolves Config.Workers: bounded by the node count, and
// by GOMAXPROCS when unset.
func (s *System) workerCount() int {
	w := s.cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(s.Nodes) {
		w = len(s.Nodes)
	}
	return w
}

// runParallel is Run on nw persistent workers. Each cycle has two
// phases separated by barriers: workers step a static partition of the
// nodes (node state is disjoint; remote accesses only enqueue on the
// issuing node), then the coordinator alone runs deliver() and the
// termination check. The stop flag is written by the coordinator
// between barriers and read by workers after one, so the barrier's lock
// ordering publishes it.
func (s *System) runParallel(maxCycles uint64) uint64 {
	nw := s.workerCount()
	b := newBarrier(nw + 1)
	stop := false
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				b.await() // cycle start: coordinator has set stop
				if stop {
					return
				}
				for i := w; i < len(s.Nodes); i += nw {
					// skip() reads dead/stallUntil/cycle, all written
					// only between barriers (coordinator or pre-Run
					// caller), so the barrier publishes them.
					if s.skip(i) {
						continue
					}
					s.Nodes[i].K.M.Step()
				}
				b.await() // cycle end: all nodes stepped
			}
		}(w)
	}
	var c uint64
	for {
		if c >= maxCycles || s.Done() || s.hung {
			stop = true
			b.await() // release workers to observe stop
			break
		}
		b.await() // start the cycle
		b.await() // wait for every node's step
		s.deliver()
		c++
		// Workers are parked at the cycle-start barrier, so the armed
		// migration may step the system serially from here — bit-identical
		// to the parallel schedule by the package invariant.
		c += s.maybeMigrate()
	}
	wg.Wait()
	return c
}

// barrier is a reusable sense-reversing barrier for n participants.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	arrived int
	phase   uint64
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until all n participants have arrived, then releases
// them together.
func (b *barrier) await() {
	b.mu.Lock()
	p := b.phase
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.phase++
		b.cond.Broadcast()
	} else {
		for b.phase == p {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}

// Done reports whether all threads on all nodes have finished.
func (s *System) Done() bool {
	for _, n := range s.Nodes {
		if !n.K.M.Done() {
			return false
		}
	}
	return true
}

// --- Node as the machine's RemoteAccess --------------------------------

// IsRemote implements machine.RemoteAccess.
func (n *Node) IsRemote(addr uint64) bool {
	return HomeOf(addr) != n.ID
}

// ReadWord implements machine.RemoteAccess: a read request travels to
// the home node, is serviced by the home's banked cache (contending
// with the home's own threads), and the reply travels back. Both legs
// go through the mesh's fault-interception point: a dropped leg — or a
// dead home node — returns machine.NeverDone, parking the issuing
// thread on a reply that will never arrive; a corrupted leg surfaces
// the link-CRC error to fault the issuer.
func (n *Node) ReadWord(addr uint64, now uint64) (word.Word, uint64, error) {
	home := HomeOf(addr)
	if home >= len(n.sys.Nodes) {
		return word.Word{}, now, fmt.Errorf("multi: address %#x homed on nonexistent node %d", addr, home)
	}
	n.sys.stats.RemoteReads++
	sc := n.sys.beginRemoteSpan("remote-read", n.ID, home, now)
	reqArrive, delivered, err := n.sys.Net.DeliverSpan(noc.ReadReq, n.ID, home, now, n.sys.legSpan(sc))
	if err != nil {
		return word.Word{}, now, err
	}
	if !delivered || n.sys.dead[home] {
		return word.Word{}, machine.NeverDone, nil
	}
	w, served, err := n.sys.Nodes[home].K.M.Cache.ReadWord(addr, reqArrive)
	if err != nil {
		return word.Word{}, served, err
	}
	repArrive, delivered, err := n.sys.Net.DeliverSpan(noc.ReadReply, home, n.ID, served, n.sys.legSpan(sc))
	if err != nil {
		return word.Word{}, served, err
	}
	if !delivered {
		return word.Word{}, machine.NeverDone, nil
	}
	n.sys.endRemoteSpan(sc, "remote-read", n.ID, repArrive)
	return w, repArrive, nil
}

// WriteWord implements machine.RemoteAccess; fault semantics as in
// ReadWord, with one asymmetry: a write whose request leg arrives but
// whose ACK is lost HAS happened at the home — only the issuer hangs.
func (n *Node) WriteWord(addr uint64, w word.Word, now uint64) (uint64, error) {
	home := HomeOf(addr)
	if home >= len(n.sys.Nodes) {
		return now, fmt.Errorf("multi: address %#x homed on nonexistent node %d", addr, home)
	}
	n.sys.stats.RemoteWrites++
	sc := n.sys.beginRemoteSpan("remote-write", n.ID, home, now)
	reqArrive, delivered, err := n.sys.Net.DeliverSpan(noc.WriteReq, n.ID, home, now, n.sys.legSpan(sc))
	if err != nil {
		return now, err
	}
	if !delivered || n.sys.dead[home] {
		return machine.NeverDone, nil
	}
	served, err := n.sys.Nodes[home].K.M.Cache.WriteWord(addr, w, reqArrive)
	if err != nil {
		return served, err
	}
	ackArrive, delivered, err := n.sys.Net.DeliverSpan(noc.WriteAck, home, n.ID, served, n.sys.legSpan(sc))
	if err != nil {
		return served, err
	}
	if !delivered {
		return machine.NeverDone, nil
	}
	n.sys.endRemoteSpan(sc, "remote-write", n.ID, ackArrive)
	return ackArrive, nil
}
