// Package multi assembles the full M-Machine multicomputer of Sec 3:
// multithreaded MAP nodes on a 3-dimensional mesh, all sharing one
// 54-bit byte-addressable global address space.
//
// The address space is partitioned by high address bits: node i is the
// home of addresses [i·2^NodeShift, (i+1)·2^NodeShift). A guarded
// pointer minted on any node is valid machine-wide — when a thread
// dereferences an address homed elsewhere, the (already protection-
// checked) access travels the mesh as a read/write transaction and is
// serviced by the home node's banked cache. No inter-node protection
// state exists: capability transfer between nodes is just sending a
// tagged word.
package multi

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/noc"
	"repro/internal/word"
)

// NodeShift is the number of address bits each node owns: 4GB per
// node, leaving room for 2^22 nodes in the 54-bit space.
const NodeShift = 32

// Config fixes the multicomputer geometry.
type Config struct {
	Mesh noc.Config
	Node machine.Config
	// RegionLog is the per-node kernel segment region order (within
	// the node's 2^NodeShift slice).
	RegionLog uint
	// Serial forces Run to step nodes on the calling goroutine
	// (debugging aid); the default parallel scheduler is bit-identical
	// to it.
	Serial bool
	// Workers bounds the parallel scheduler's worker count; 0 means
	// min(GOMAXPROCS, nodes).
	Workers int
}

// DefaultConfig is a 2×2×2-node machine of M-Machine nodes.
func DefaultConfig() Config {
	nodeCfg := machine.MMachine()
	nodeCfg.PhysBytes = 4 << 20 // keep 8 nodes affordable to simulate
	return Config{
		Mesh:      noc.DefaultConfig(),
		Node:      nodeCfg,
		RegionLog: 26,
	}
}

// System is the whole multicomputer.
type System struct {
	Net   *noc.Network
	Nodes []*Node
	cfg   Config
	stats Stats
}

// Stats counts cross-node traffic.
type Stats struct {
	RemoteReads  uint64
	RemoteWrites uint64
}

// Node is one mesh node: a kernel-managed MAP machine plus its network
// interface.
type Node struct {
	ID  int
	K   *kernel.Kernel
	sys *System
}

// HomeOf returns the node id owning addr.
func HomeOf(addr uint64) int { return int(addr >> NodeShift) }

// New boots the multicomputer: one kernel+machine per mesh node, each
// with a segment region inside its slice of the global space, wired to
// the mesh for remote access.
func New(cfg Config) (*System, error) {
	net, err := noc.New(cfg.Mesh)
	if err != nil {
		return nil, err
	}
	if cfg.RegionLog >= NodeShift {
		return nil, fmt.Errorf("multi: region 2^%d exceeds node slice 2^%d", cfg.RegionLog, NodeShift)
	}
	s := &System{Net: net, cfg: cfg}
	for i := 0; i < net.Nodes(); i++ {
		base := uint64(i) << NodeShift // aligned on any region ≤ 2^NodeShift
		k, err := kernel.NewWithRegion(cfg.Node, base, cfg.RegionLog)
		if err != nil {
			return nil, err
		}
		n := &Node{ID: i, K: k, sys: s}
		k.M.Remote = n
		// Remote accesses park on the issuing node and complete at the
		// cycle barrier (deliver), in node order — the serialization
		// point that makes parallel and serial stepping bit-identical.
		k.M.DeferRemote = true
		s.Nodes = append(s.Nodes, n)
	}
	return s, nil
}

// Stats returns a copy of the cross-node counters.
func (s *System) Stats() Stats { return s.stats }

// Step advances every node one cycle in lockstep, then delivers the
// cycle's remote traffic at the barrier.
func (s *System) Step() {
	for _, n := range s.Nodes {
		n.K.M.Step()
	}
	s.deliver()
}

// deliver completes every remote access issued this cycle, visiting
// nodes in id order. During the step phase nodes touch only their own
// state (remote references are parked, not performed), so all
// cross-node effects — mesh link reservations, home-cache contention,
// traffic counters — happen here, in one deterministic order, no
// matter how the step phase was scheduled.
func (s *System) deliver() {
	for _, n := range s.Nodes {
		n.K.M.ServiceRemote()
	}
}

// Run steps until every node's threads are done or maxCycles elapse,
// returning cycles executed. Nodes are stepped by a pool of persistent
// workers meeting at a per-cycle barrier; Config.Serial selects the
// single-goroutine scheduler instead. Both produce bit-identical
// machines.
func (s *System) Run(maxCycles uint64) uint64 {
	if !s.cfg.Serial && s.workerCount() > 1 {
		return s.runParallel(maxCycles)
	}
	return s.runSerial(maxCycles)
}

func (s *System) runSerial(maxCycles uint64) uint64 {
	var c uint64
	for c = 0; c < maxCycles && !s.Done(); c++ {
		s.Step()
	}
	return c
}

// workerCount resolves Config.Workers: bounded by the node count, and
// by GOMAXPROCS when unset.
func (s *System) workerCount() int {
	w := s.cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(s.Nodes) {
		w = len(s.Nodes)
	}
	return w
}

// runParallel is Run on nw persistent workers. Each cycle has two
// phases separated by barriers: workers step a static partition of the
// nodes (node state is disjoint; remote accesses only enqueue on the
// issuing node), then the coordinator alone runs deliver() and the
// termination check. The stop flag is written by the coordinator
// between barriers and read by workers after one, so the barrier's lock
// ordering publishes it.
func (s *System) runParallel(maxCycles uint64) uint64 {
	nw := s.workerCount()
	b := newBarrier(nw + 1)
	stop := false
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				b.await() // cycle start: coordinator has set stop
				if stop {
					return
				}
				for i := w; i < len(s.Nodes); i += nw {
					s.Nodes[i].K.M.Step()
				}
				b.await() // cycle end: all nodes stepped
			}
		}(w)
	}
	var c uint64
	for {
		if c >= maxCycles || s.Done() {
			stop = true
			b.await() // release workers to observe stop
			break
		}
		b.await() // start the cycle
		b.await() // wait for every node's step
		s.deliver()
		c++
	}
	wg.Wait()
	return c
}

// barrier is a reusable sense-reversing barrier for n participants.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	arrived int
	phase   uint64
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until all n participants have arrived, then releases
// them together.
func (b *barrier) await() {
	b.mu.Lock()
	p := b.phase
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.phase++
		b.cond.Broadcast()
	} else {
		for b.phase == p {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}

// Done reports whether all threads on all nodes have finished.
func (s *System) Done() bool {
	for _, n := range s.Nodes {
		if !n.K.M.Done() {
			return false
		}
	}
	return true
}

// --- Node as the machine's RemoteAccess --------------------------------

// IsRemote implements machine.RemoteAccess.
func (n *Node) IsRemote(addr uint64) bool {
	return HomeOf(addr) != n.ID
}

// ReadWord implements machine.RemoteAccess: a read request travels to
// the home node, is serviced by the home's banked cache (contending
// with the home's own threads), and the reply travels back.
func (n *Node) ReadWord(addr uint64, now uint64) (word.Word, uint64, error) {
	home := HomeOf(addr)
	if home >= len(n.sys.Nodes) {
		return word.Word{}, now, fmt.Errorf("multi: address %#x homed on nonexistent node %d", addr, home)
	}
	n.sys.stats.RemoteReads++
	reqArrive := n.sys.Net.Send(n.ID, home, now)
	w, served, err := n.sys.Nodes[home].K.M.Cache.ReadWord(addr, reqArrive)
	if err != nil {
		return word.Word{}, served, err
	}
	return w, n.sys.Net.Send(home, n.ID, served), nil
}

// WriteWord implements machine.RemoteAccess.
func (n *Node) WriteWord(addr uint64, w word.Word, now uint64) (uint64, error) {
	home := HomeOf(addr)
	if home >= len(n.sys.Nodes) {
		return now, fmt.Errorf("multi: address %#x homed on nonexistent node %d", addr, home)
	}
	n.sys.stats.RemoteWrites++
	reqArrive := n.sys.Net.Send(n.ID, home, now)
	served, err := n.sys.Nodes[home].K.M.Cache.WriteWord(addr, w, reqArrive)
	if err != nil {
		return served, err
	}
	return n.sys.Net.Send(home, n.ID, served), nil
}
