package multi

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/noc"
	"repro/internal/word"
)

func testSystem(t *testing.T) *System {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Node.PhysBytes = 1 << 20
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestHomePartitioning(t *testing.T) {
	if HomeOf(0) != 0 {
		t.Error("address 0 not homed on node 0")
	}
	if HomeOf(uint64(3)<<NodeShift|0x1234) != 3 {
		t.Error("home extraction broken")
	}
}

func TestNewValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RegionLog = 40
	if _, err := New(cfg); err == nil {
		t.Error("oversized region accepted")
	}
	cfg = DefaultConfig()
	cfg.Mesh.DimX = 0
	if _, err := New(cfg); err == nil {
		t.Error("bad mesh accepted")
	}
}

func TestNodesGetDisjointRegions(t *testing.T) {
	s := testSystem(t)
	if len(s.Nodes) != 8 {
		t.Fatalf("nodes = %d", len(s.Nodes))
	}
	var ptrs []core.Pointer
	for _, n := range s.Nodes {
		p, err := n.K.AllocSegment(4096)
		if err != nil {
			t.Fatal(err)
		}
		if HomeOf(p.Base()) != n.ID {
			t.Errorf("node %d allocated segment homed on %d", n.ID, HomeOf(p.Base()))
		}
		for _, q := range ptrs {
			if p.Overlaps(q) {
				t.Errorf("segments overlap across nodes: %v %v", p, q)
			}
		}
		ptrs = append(ptrs, p)
	}
}

func TestRemoteLoadStoreFunctional(t *testing.T) {
	// A thread on node 0 dereferences a capability minted on node 5:
	// the single global address space means it just works, with the
	// access travelling the mesh.
	s := testSystem(t)
	remoteSeg, err := s.Nodes[5].K.AllocSegment(4096)
	if err != nil {
		t.Fatal(err)
	}
	prog := mustAssemble(`
		ldi r2, 777
		st  r1, 0, r2     ; remote store to node 5
		ld  r3, r1, 0     ; remote load back
		halt
	`)
	ip, err := s.Nodes[0].K.LoadProgram(prog, false)
	if err != nil {
		t.Fatal(err)
	}
	th, err := s.Nodes[0].K.Spawn(1, ip, map[int]word.Word{1: remoteSeg.Word()})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(100000)
	if th.State != machine.Halted {
		t.Fatalf("thread: %v %v", th.State, th.Fault)
	}
	if th.Reg(3).Int() != 777 {
		t.Errorf("r3 = %d", th.Reg(3).Int())
	}
	// The word physically lives in node 5's memory.
	w, err := s.Nodes[5].K.ReadWord(remoteSeg)
	if err != nil || w.Int() != 777 {
		t.Errorf("home memory = %v, %v", w, err)
	}
	st := s.Stats()
	if st.RemoteReads != 1 || st.RemoteWrites != 1 {
		t.Errorf("remote traffic = %+v", st)
	}
	if s.Net.Stats().Messages != 4 { // req+reply × 2
		t.Errorf("messages = %d", s.Net.Stats().Messages)
	}
}

func TestProtectionChecksApplyToRemoteAccess(t *testing.T) {
	// Restricting a remote capability to read-only is enforced on the
	// *issuing* node before anything touches the network.
	s := testSystem(t)
	remoteSeg, _ := s.Nodes[3].K.AllocSegment(4096)
	ro, err := core.Restrict(remoteSeg, core.PermReadOnly)
	if err != nil {
		t.Fatal(err)
	}
	prog := mustAssemble(`
		st r1, 0, r1
		halt
	`)
	ip, _ := s.Nodes[0].K.LoadProgram(prog, false)
	th, _ := s.Nodes[0].K.Spawn(1, ip, map[int]word.Word{1: ro.Word()})
	s.Run(100000)
	if th.State != machine.Faulted || core.CodeOf(th.Fault) != core.FaultPerm {
		t.Errorf("remote store via ro pointer: %v %v", th.State, th.Fault)
	}
	if s.Stats().RemoteWrites != 0 {
		t.Error("faulting access reached the network")
	}
}

func TestCapabilityTransferBetweenNodes(t *testing.T) {
	// Node 1's thread publishes a capability into a node-0 mailbox;
	// node 0's thread picks it up and uses it. Sharing across nodes is
	// literally one word of data (Sec 6: "threads in different
	// protection domains can share data merely by owning copies of a
	// pointer").
	s := testSystem(t)
	mailbox, err := s.Nodes[0].K.AllocSegment(64)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := s.Nodes[1].K.AllocSegment(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Nodes[1].K.WriteWords(payload, []word.Word{word.FromInt(4242)}); err != nil {
		t.Fatal(err)
	}

	producer := mustAssemble(`
		st r1, 0, r2      ; publish capability into the mailbox
		halt
	`)
	consumer := mustAssemble(`
	wait:
		ld  r3, r1, 0     ; poll the mailbox
		isptr r4, r3
		beqz r4, wait
		ld  r5, r3, 0     ; dereference the received capability (remote)
		halt
	`)
	pIP, _ := s.Nodes[1].K.LoadProgram(producer, false)
	if _, err := s.Nodes[1].K.Spawn(1, pIP, map[int]word.Word{
		1: mailbox.Word(), 2: payload.Word(),
	}); err != nil {
		t.Fatal(err)
	}
	cIP, _ := s.Nodes[0].K.LoadProgram(consumer, false)
	cTh, err := s.Nodes[0].K.Spawn(2, cIP, map[int]word.Word{1: mailbox.Word()})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(1_000_000)
	if cTh.State != machine.Halted {
		t.Fatalf("consumer: %v %v", cTh.State, cTh.Fault)
	}
	if cTh.Reg(5).Int() != 4242 {
		t.Errorf("consumer read %d through transferred capability", cTh.Reg(5).Int())
	}
}

func TestRemoteLatencyGrowsWithDistance(t *testing.T) {
	// One-dimensional mesh: remote access cost grows with hop count.
	cfg := DefaultConfig()
	cfg.Mesh = noc.Config{DimX: 4, DimY: 1, DimZ: 1, RouterLatency: 3, InjectLatency: 1}
	cfg.Node.PhysBytes = 1 << 20
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prog := mustAssemble(`
		ldi r3, 50
	loop:
		ld r2, r1, 0
		subi r3, r3, 1
		bnez r3, loop
		halt
	`)
	var cycles []uint64
	for dst := 1; dst < 4; dst++ {
		cfg := cfg
		s, err = New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		seg, err := s.Nodes[dst].K.AllocSegment(4096)
		if err != nil {
			t.Fatal(err)
		}
		ip, _ := s.Nodes[0].K.LoadProgram(prog, false)
		th, _ := s.Nodes[0].K.Spawn(1, ip, map[int]word.Word{1: seg.Word()})
		c := s.Run(1_000_000)
		if th.State != machine.Halted {
			t.Fatalf("dst %d: %v %v", dst, th.State, th.Fault)
		}
		cycles = append(cycles, c)
	}
	if !(cycles[0] < cycles[1] && cycles[1] < cycles[2]) {
		t.Errorf("latency not monotone in distance: %v", cycles)
	}
}

func TestDanglingHomeRejected(t *testing.T) {
	s := testSystem(t)
	// Forge (with kernel authority) a pointer homed past the mesh.
	far := mustMake(core.PermReadWrite, 12, uint64(50)<<NodeShift)
	prog := mustAssemble("ld r2, r1, 0\nhalt")
	ip, _ := s.Nodes[0].K.LoadProgram(prog, false)
	th, _ := s.Nodes[0].K.Spawn(1, ip, map[int]word.Word{1: far.Word()})
	s.Run(100000)
	if th.State != machine.Faulted {
		t.Error("access to nonexistent node did not fault")
	}
}

func TestLocalAccessesBypassNetwork(t *testing.T) {
	s := testSystem(t)
	seg, _ := s.Nodes[2].K.AllocSegment(4096)
	prog := mustAssemble(`
		ldi r2, 5
		st r1, 0, r2
		ld r3, r1, 0
		halt
	`)
	ip, _ := s.Nodes[2].K.LoadProgram(prog, false)
	th, _ := s.Nodes[2].K.Spawn(1, ip, map[int]word.Word{1: seg.Word()})
	s.Run(100000)
	if th.State != machine.Halted {
		t.Fatalf("%v %v", th.State, th.Fault)
	}
	if s.Net.Stats().Messages != 0 {
		t.Errorf("local accesses generated %d network messages", s.Net.Stats().Messages)
	}
}

func TestCrossNodeProtectedCall(t *testing.T) {
	// A protected subsystem installed on node 2 is entered by a thread
	// on node 0 through a global enter pointer: every instruction of
	// the subsystem is fetched over the mesh, and its embedded private
	// capability (to node-2 data) works from the caller's node.
	s := testSystem(t)
	private, err := s.Nodes[2].K.AllocSegment(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Nodes[2].K.WriteWords(private, []word.Word{word.FromInt(2468)}); err != nil {
		t.Fatal(err)
	}
	sub := mustAssemble(`
	entry:
		movip r10
		leab  r10, r10, r0
		ld    r11, r10, =gp1
		ld    r5,  r11, 0
		ldi   r10, 0
		ldi   r11, 0
		jmp   r14
	gp1:
		.word 0
	`)
	enter, err := s.Nodes[2].K.InstallSubsystem(sub, "entry", map[string]core.Pointer{"gp1": private})
	if err != nil {
		t.Fatal(err)
	}
	caller := mustAssemble(`
		jmpl r14, r1
		halt
	`)
	ip, err := s.Nodes[0].K.LoadProgram(caller, false)
	if err != nil {
		t.Fatal(err)
	}
	th, err := s.Nodes[0].K.Spawn(1, ip, map[int]word.Word{1: enter.Word()})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(1_000_000)
	if th.State != machine.Halted {
		t.Fatalf("%v %v", th.State, th.Fault)
	}
	if th.Reg(5).Int() != 2468 {
		t.Errorf("cross-node subsystem returned %d", th.Reg(5).Int())
	}
	if s.Net.Stats().Messages == 0 {
		t.Error("no mesh traffic for remote execution")
	}
}

func TestRemoteExecutionSlowerThanLocal(t *testing.T) {
	// Remote instruction fetch pays the mesh round trip per
	// instruction: the same loop homed remotely must be much slower.
	prog := mustAssemble(`
		ldi r3, 50
	loop:
		subi r3, r3, 1
		bnez r3, loop
		halt
	`)
	run := func(codeNode int) uint64 {
		s := testSystem(t)
		ip, err := s.Nodes[codeNode].K.LoadProgram(prog, false)
		if err != nil {
			t.Fatal(err)
		}
		th, err := s.Nodes[0].K.Spawn(1, ip, nil)
		if err != nil {
			t.Fatal(err)
		}
		c := s.Run(1_000_000)
		if th.State != machine.Halted {
			t.Fatalf("%v %v", th.State, th.Fault)
		}
		return c
	}
	local := run(0)
	remote := run(7)
	if remote < 3*local {
		t.Errorf("remote execution %d cycles vs local %d — mesh cost missing", remote, local)
	}
}

func TestMachineWideGC(t *testing.T) {
	// A cross-node reachability chain: root (node 0) → seg on node 3 →
	// seg on node 6. Garbage lives on nodes 1 and 3 (cyclic). The
	// machine-wide collector must keep exactly the chain.
	s := testSystem(t)
	a, err := s.Nodes[0].K.AllocSegment(256)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Nodes[3].K.AllocSegment(256)
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Nodes[6].K.AllocSegment(256)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := s.Nodes[1].K.AllocSegment(256)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := s.Nodes[3].K.AllocSegment(256)
	if err != nil {
		t.Fatal(err)
	}
	// live chain
	s.Nodes[0].K.WriteWords(a, []word.Word{b.Word()})
	s.Nodes[3].K.WriteWords(b, []word.Word{c.Word()})
	// garbage cycle across nodes
	s.Nodes[1].K.WriteWords(g1, []word.Word{g2.Word()})
	s.Nodes[3].K.WriteWords(g2, []word.Word{g1.Word()})

	st, err := s.CollectAddressSpace([]word.Word{a.Word()})
	if err != nil {
		t.Fatal(err)
	}
	if st.LiveSegments != 3 {
		t.Errorf("live = %d, want 3", st.LiveSegments)
	}
	if st.FreedSegments != 2 {
		t.Errorf("freed = %d, want 2", st.FreedSegments)
	}
	// The chain still works end to end (remote read through b to c).
	w, err := s.Nodes[3].K.ReadWord(b)
	if err != nil || !w.Tag {
		t.Fatalf("chain broken: %v %v", w, err)
	}
	if s.Nodes[1].K.Segments() != 0 {
		t.Error("garbage survived on node 1")
	}
}

func TestMachineWideGCKeepsThreadReachable(t *testing.T) {
	s := testSystem(t)
	seg, err := s.Nodes[4].K.AllocSegment(256)
	if err != nil {
		t.Fatal(err)
	}
	// A thread on node 0 holds the only reference (in a register).
	ip, err := s.Nodes[0].K.LoadProgram(mustAssemble("loop: br loop"), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Nodes[0].K.Spawn(1, ip, map[int]word.Word{7: seg.Word()}); err != nil {
		t.Fatal(err)
	}
	st, err := s.CollectAddressSpace(nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.FreedSegments != 0 {
		t.Errorf("GC freed %d segments reachable from a remote thread", st.FreedSegments)
	}
	if s.Nodes[4].K.Segments() != 1 {
		t.Error("register-held remote segment collected")
	}
}

func TestRemoteByteAccess(t *testing.T) {
	s := testSystem(t)
	seg, err := s.Nodes[5].K.AllocSegment(64)
	if err != nil {
		t.Fatal(err)
	}
	prog := mustAssemble(`
		st  r1, 0, r1    ; park the capability remotely
		ldi r2, 0x7e
		stb r1, 3, r2    ; remote byte store into the same word
		ld  r3, r1, 0
		isptr r4, r3     ; tag must be gone (partial overwrite, remotely)
		ldb r5, r1, 3
		halt
	`)
	ip, _ := s.Nodes[0].K.LoadProgram(prog, false)
	th, _ := s.Nodes[0].K.Spawn(1, ip, map[int]word.Word{1: seg.Word()})
	s.Run(1_000_000)
	if th.State != machine.Halted {
		t.Fatalf("%v %v", th.State, th.Fault)
	}
	if th.Reg(4).Int() != 0 {
		t.Error("remote partial overwrite preserved the tag")
	}
	if th.Reg(5).Int() != 0x7e {
		t.Errorf("remote ldb = %#x", th.Reg(5).Int())
	}
}
