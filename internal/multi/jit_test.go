package multi

import (
	"fmt"
	"testing"

	"repro/internal/capverify"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/word"
)

// runCrossNodeHot is the determinism workload with a trip count high
// enough to cross the translator's compile threshold, optionally run
// with Config.JIT. Nodes run compiled blocks in paced mode — one step
// per cycle — so the barrier schedule is untouched; the fingerprint
// must not depend on the tier, the scheduler, or the worker count.
func runCrossNodeHot(t *testing.T, serial bool, workers int, useJIT bool) fingerprint {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Node.PhysBytes = 1 << 20
	cfg.Serial = serial
	cfg.Workers = workers
	cfg.JIT = useJIT
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := len(s.Nodes)
	segs := make([]core.Pointer, n)
	for i, nd := range s.Nodes {
		p, err := nd.K.AllocSegment(4096)
		if err != nil {
			t.Fatal(err)
		}
		segs[i] = p
	}
	prog := mustAssemble(`
		ldi r3, 0          ; accumulator
	loop:
		st  r1, 0, r2      ; remote store of the loop counter
		ld  r4, r1, 0      ; remote load back
		add r3, r3, r4
		st  r1, 8, r3      ; second remote word: the running sum
		subi r2, r2, 1
		bnez r2, loop
		halt
	`)
	var ths []*machine.Thread
	for i, nd := range s.Nodes {
		ip, err := nd.K.LoadProgram(prog, false)
		if err != nil {
			t.Fatal(err)
		}
		th, err := nd.K.Spawn(1, ip, map[int]word.Word{
			1: segs[(i+1)%n].Word(),           // ring successor's segment
			2: word.FromInt(int64(200 + i%3)), // hot, staggered trip counts
		})
		if err != nil {
			t.Fatal(err)
		}
		// The loader satisfies capverify's entry contract: r1 is an RW
		// pointer to a 4096-byte segment; everything else the verifier
		// treats as unknown.
		nd.K.M.JITRegister(prog, ip.Addr(), capverify.Config{DataBytes: 4096})
		ths = append(ths, th)
	}
	fp := fingerprint{cycles: s.Run(400000), sys: s.Stats(), net: s.Net.Stats()}
	for _, nd := range s.Nodes {
		fp.nodeStats = append(fp.nodeStats, nd.K.M.Stats())
	}
	for i, th := range ths {
		if th.State != machine.Halted {
			t.Fatalf("serial=%v jit=%v: node %d thread %v fault=%v", serial, useJIT, i, th.State, th.Fault)
		}
		fp.threads += fmt.Sprintf("%d: %v instret=%d regs=%v\n", i, th.State, th.Instret, th.Regs)
	}
	for i, nd := range s.Nodes {
		home := segs[i].Base()
		for off := uint64(0); off < 16; off += 8 {
			w, err := nd.K.M.Space.ReadWord(home + off)
			if err != nil {
				t.Fatal(err)
			}
			fp.memory += fmt.Sprintf("%d+%d: %v\n", i, off, w)
		}
	}
	if useJIT {
		for i, nd := range s.Nodes {
			c := nd.K.M.JIT().Counters
			if c.Compiled == 0 || c.Entries == 0 {
				t.Fatalf("node %d: translator never engaged: %+v", i, c)
			}
		}
	}
	return fp
}

// TestJITMatchesInterpreterAcrossSchedulers: enabling the translator on
// the multicomputer must leave the entire fingerprint — cycles, machine
// and network counters, registers, memory — bit-identical to the
// interpreter, under both the serial and parallel schedulers.
func TestJITMatchesInterpreterAcrossSchedulers(t *testing.T) {
	base := runCrossNodeHot(t, true, 0, false)
	for _, c := range []struct {
		name           string
		serial, useJIT bool
		workers        int
	}{
		{"parallel-interp", false, false, 4},
		{"serial-jit", true, true, 0},
		{"parallel-jit", false, true, 4},
	} {
		got := runCrossNodeHot(t, c.serial, c.workers, c.useJIT)
		if base.cycles != got.cycles {
			t.Errorf("%s: cycles %d, want %d", c.name, got.cycles, base.cycles)
		}
		if base.sys != got.sys || base.net != got.net {
			t.Errorf("%s: system/network stats diverge:\nbase %+v %+v\ngot  %+v %+v",
				c.name, base.sys, base.net, got.sys, got.net)
		}
		for i := range base.nodeStats {
			if base.nodeStats[i] != got.nodeStats[i] {
				t.Errorf("%s: node %d stats:\nbase %+v\ngot  %+v", c.name, i, base.nodeStats[i], got.nodeStats[i])
			}
		}
		if base.threads != got.threads {
			t.Errorf("%s: thread state diverges:\nbase:\n%sgot:\n%s", c.name, base.threads, got.threads)
		}
		if base.memory != got.memory {
			t.Errorf("%s: memory diverges:\nbase:\n%sgot:\n%s", c.name, base.memory, got.memory)
		}
	}
}
