package multi

import (
	"errors"
	"testing"

	"repro/internal/machine"
)

// Node-lifecycle misuse must surface as typed errors, not silent
// success or an index panic.
func TestLifecycleMisuse(t *testing.T) {
	cases := []struct {
		name string
		op   func(s *System) error
		want error
	}{
		{"kill-negative", func(s *System) error { return s.Kill(-1) }, ErrNodeID},
		{"kill-past-end", func(s *System) error { return s.Kill(2) }, ErrNodeID},
		{"kill-huge", func(s *System) error { return s.Kill(1 << 20) }, ErrNodeID},
		{"double-kill", func(s *System) error {
			if err := s.Kill(1); err != nil {
				return err
			}
			return s.Kill(1)
		}, ErrNodeDead},
		{"stall-negative", func(s *System) error { return s.Stall(-1, 100) }, ErrNodeID},
		{"stall-past-end", func(s *System) error { return s.Stall(7, 100) }, ErrNodeID},
		{"stall-dead", func(s *System) error {
			if err := s.Kill(0); err != nil {
				return err
			}
			return s.Stall(0, 100)
		}, ErrNodeDead},
		{"revive-negative", func(s *System) error { return s.Revive(-1, nil) }, ErrNodeID},
		{"revive-past-end", func(s *System) error { return s.Revive(2, nil) }, ErrNodeID},
		{"revive-live", func(s *System) error { return s.Revive(0, nil) }, ErrNodeAlive},
		{"revive-twice", func(s *System) error {
			if err := s.Kill(1); err != nil {
				return err
			}
			if err := s.Revive(1, nil); err != nil {
				return err
			}
			return s.Revive(1, nil)
		}, ErrNodeAlive},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s, _, _ := watchdogSystem(t, true, 0)
			if err := c.op(s); !errors.Is(err, c.want) {
				t.Fatalf("err = %v, want %v", err, c.want)
			}
		})
	}
}

// The happy path still works and returns nil errors.
func TestLifecycleHappyPath(t *testing.T) {
	s, _, _ := watchdogSystem(t, true, 0)
	if err := s.Kill(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Revive(1, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Stall(0, 100); err != nil {
		t.Fatal(err)
	}
}

// Auto-recovery closed loop: with periodic coordinated checkpoints and
// AutoRecover armed, a killed node is detected by the watchdog,
// every node is restored from the newest consistent generation, and the
// run completes with final architectural state equal to an
// uninterrupted reference — no caller intervention at all.
func TestAutoRecoverFromKilledNode(t *testing.T) {
	for _, victim := range []int{0, 1} {
		for _, serial := range []bool{true, false} {
			ref, thRef, _ := watchdogSystem(t, serial, 2000)
			ref.Run(200_000)
			if thRef.State != machine.Halted {
				t.Fatalf("reference: %v %v", thRef.State, thRef.Fault)
			}

			s, _, _ := watchdogSystem(t, serial, 2000)
			s.cfg.CheckpointEvery = 40
			s.cfg.AutoRecover = true
			s.OnCycle = func(c uint64) {
				if c == 100 {
					if err := s.Kill(victim); err != nil {
						t.Errorf("kill: %v", err)
					}
					s.OnCycle = nil
				}
			}
			s.Run(500_000)
			if s.Hung() {
				t.Fatalf("victim=%d serial=%v: auto-recovery left the system hung", victim, serial)
			}
			if !s.Done() {
				t.Fatalf("victim=%d serial=%v: system did not finish", victim, serial)
			}
			if s.Restores() == 0 {
				t.Fatalf("victim=%d serial=%v: no restore performed", victim, serial)
			}
			if s.Checkpoints() == 0 {
				t.Fatalf("victim=%d serial=%v: no checkpoints captured", victim, serial)
			}
			th := s.Nodes[0].K.M.Threads()[0]
			if th.State != machine.Halted {
				t.Fatalf("victim=%d serial=%v: recovered thread %v %v", victim, serial, th.State, th.Fault)
			}
			if th.Instret != thRef.Instret {
				t.Fatalf("victim=%d serial=%v: instret %d != reference %d", victim, serial, th.Instret, thRef.Instret)
			}
			for r := 0; r < 16; r++ {
				if th.Reg(r) != thRef.Reg(r) {
					t.Errorf("victim=%d serial=%v r%d: %v != %v", victim, serial, r, th.Reg(r), thRef.Reg(r))
				}
			}
		}
	}
}

// The restore budget bounds livelock: a node killed over and over
// eventually surfaces as Hung instead of cycling through the same
// checkpoint forever.
func TestAutoRecoverBudgetBounds(t *testing.T) {
	s, _, _ := watchdogSystem(t, true, 1000)
	s.cfg.CheckpointEvery = 40
	s.cfg.AutoRecover = true
	s.cfg.MaxRestores = 2
	s.OnCycle = func(c uint64) {
		// Re-kill node 1 forever: no recovery can stick.
		if !s.dead[1] && c > 100 {
			if err := s.Kill(1); err != nil {
				t.Errorf("kill: %v", err)
			}
		}
	}
	s.Run(500_000)
	if !s.Hung() {
		t.Fatal("persistent failure never surfaced as Hung")
	}
	if got := s.Restores(); got != 2 {
		t.Fatalf("Restores = %d, want exactly the budget of 2", got)
	}
}

// CheckpointNow seeds generation zero before any periodic boundary, so
// a fault in the first interval is still recoverable.
func TestCheckpointNowSeedsRing(t *testing.T) {
	s, _, _ := watchdogSystem(t, true, 2000)
	s.cfg.AutoRecover = true // no CheckpointEvery: only the manual seed
	if err := s.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	if s.Checkpoints() != 1 {
		t.Fatalf("Checkpoints = %d, want 1", s.Checkpoints())
	}
	s.OnCycle = func(c uint64) {
		if c == 100 {
			if err := s.Kill(1); err != nil {
				t.Errorf("kill: %v", err)
			}
			s.OnCycle = nil
		}
	}
	s.Run(500_000)
	if s.Hung() || !s.Done() {
		t.Fatalf("recovery from the seeded generation failed (hung=%v)", s.Hung())
	}
	if s.Restores() != 1 {
		t.Fatalf("Restores = %d, want 1", s.Restores())
	}
	// A dead node blocks a consistent capture.
	if err := s.Kill(0); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckpointNow(); !errors.Is(err, ErrNodeDead) {
		t.Fatalf("CheckpointNow with dead node: %v, want ErrNodeDead", err)
	}
}
