package isa

import (
	"testing"

	"repro/internal/word"
)

// The library must report hostile or malformed inputs as errors, never
// panic: these are the paths the fault injector and fuzzers lean on.

func TestEncodeRejectsBadFields(t *testing.T) {
	cases := []struct {
		name string
		inst Inst
	}{
		{"invalid opcode", Inst{Op: Op(0xff)}},
		{"rd out of range", Inst{Op: ADD, Rd: NumRegs}},
		{"ra negative", Inst{Op: ADD, Ra: -1}},
		{"rb out of range", Inst{Op: ADD, Rb: 99}},
		{"imm too large", Inst{Op: LDI, Imm: MaxImm + 1}},
		{"imm too small", Inst{Op: LDI, Imm: MinImm - 1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Encode(c.inst); err == nil {
				t.Fatalf("Encode(%+v): want error, got nil", c.inst)
			}
		})
	}
}

func TestDecodeRejectsHostileWords(t *testing.T) {
	// A tagged word is a pointer, not an instruction.
	if _, err := Decode(word.Word{Bits: 0, Tag: true}); err == nil {
		t.Fatal("Decode(tagged word): want error, got nil")
	}
	// Undefined opcode in the high byte.
	if _, err := Decode(word.FromUint(uint64(0xee) << 56)); err == nil {
		t.Fatal("Decode(undefined opcode): want error, got nil")
	}
}
