// Package isa defines the instruction set of the simulated MAP
// processor: a compact 64-bit-word RISC encoding carrying the paper's
// pointer-manipulation instructions (LEA, LEAB, RESTRICT, SUBSEG,
// SETPTR, ISPOINTER) alongside the conventional integer, branch and
// memory operations a real program needs (Sec 2.2: "implementing
// guarded pointers requires adding a small number of pointer
// manipulation instructions to the architecture of a conventional
// machine").
//
// Instructions are stored as ordinary untagged words in memory; an
// execute pointer is what makes a segment runnable. The fixed format is
//
//	bits 56..63  opcode
//	bits 52..55  rd   (destination register)
//	bits 48..51  ra   (first source register)
//	bits 44..47  rb   (second source register)
//	bits  0..43  imm  (44-bit signed immediate)
package isa

import (
	"fmt"

	"repro/internal/word"
)

// NumRegs is the size of the general register file. Every register
// holds a full tagged word, so pointers and data share the same file —
// "guarded pointers concentrate process state in general purpose
// registers instead of auxiliary or special memory" (Sec 6).
const NumRegs = 16

// Op is an opcode.
type Op uint8

// The instruction set. Ops marked (ptr) are the guarded-pointer
// additions; SETPTR is the single privileged operation in the
// architecture.
const (
	NOP  Op = iota
	HALT    // stop this thread

	// Integer ALU. Register forms use ra, rb; immediate forms use ra,
	// imm (sign-extended 44 bits).
	ADD
	ADDI
	SUB
	SUBI
	MUL
	AND
	OR
	XOR
	SHL
	SHLI
	SHR
	SHRI
	SLT  // rd = (ra < rb) signed
	SLTI // rd = (ra < imm)
	SEQ  // rd = (ra == rb)
	SEQI
	MOV // rd = ra
	LDI // rd = imm

	// Control. Branch displacements are in instructions (words),
	// applied to the instruction pointer with a bounds-checked LEA —
	// control flow cannot leave the code segment.
	BR   // IP += imm
	BEQZ // if ra == 0: IP += imm
	BNEZ // if ra != 0: IP += imm
	JMP  // IP = ra (execute or enter pointer)
	JMPL // rd = return execute pointer (IP+1 instr); IP = ra
	TRAP // software trap into the kernel, code = imm

	// Memory. The address operand must be a guarded pointer; the
	// effective address ra+imm is produced by a checked LEA and the
	// permission check happens before issue.
	LD  // rd = Mem[ra + imm]            (64-bit word, aligned)
	ST  // Mem[ra + imm] = rb
	LDB // rd = zero-extended byte at ra+imm (any alignment)
	STB // byte at ra+imm = low byte of rb; clears the word's tag

	// Pointer manipulation (ptr).
	LEA      // rd = LEA(ra, rb)
	LEAI     // rd = LEA(ra, imm)
	LEAB     // rd = LEAB(ra, rb)
	LEABI    // rd = LEAB(ra, imm)
	RESTRICT // rd = RESTRICT(ra, perm rb)
	SUBSEG   // rd = SUBSEG(ra, log-length rb)
	SETPTR   // rd = tagged(ra)            [privileged]
	ISPTR    // rd = tag(ra) ? 1 : 0
	GETPERM  // rd = permission field of ra (integer)
	GETLEN   // rd = length field of ra (integer)
	MOVIP    // rd = current execute pointer (for Fig. 3 data loads)

	// Floating point (the cluster's third execution unit, Sec 3).
	// Values are IEEE-754 doubles carried in untagged words.
	FADD // rd = ra + rb
	FSUB // rd = ra - rb
	FMUL // rd = ra * rb
	FDIV // rd = ra / rb
	FSLT // rd = (ra < rb) as integer 0/1
	ITOF // rd = float64(int ra)
	FTOI // rd = int64(float ra), truncating

	numOps
)

// NumOps is the count of defined opcodes. Tools that must cover the
// whole instruction set exhaustively — the static verifier's
// transfer-function table, metadata tests — iterate Op(0)..Op(NumOps-1).
const NumOps = int(numOps)

var opNames = [...]string{
	NOP: "nop", HALT: "halt",
	ADD: "add", ADDI: "addi", SUB: "sub", SUBI: "subi", MUL: "mul",
	AND: "and", OR: "or", XOR: "xor",
	SHL: "shl", SHLI: "shli", SHR: "shr", SHRI: "shri",
	SLT: "slt", SLTI: "slti", SEQ: "seq", SEQI: "seqi",
	MOV: "mov", LDI: "ldi",
	BR: "br", BEQZ: "beqz", BNEZ: "bnez", JMP: "jmp", JMPL: "jmpl", TRAP: "trap",
	LD: "ld", ST: "st", LDB: "ldb", STB: "stb",
	LEA: "lea", LEAI: "leai", LEAB: "leab", LEABI: "leabi",
	RESTRICT: "restrict", SUBSEG: "subseg", SETPTR: "setptr", ISPTR: "isptr",
	GETPERM: "getperm", GETLEN: "getlen", MOVIP: "movip",
	FADD: "fadd", FSUB: "fsub", FMUL: "fmul", FDIV: "fdiv", FSLT: "fslt",
	ITOF: "itof", FTOI: "ftoi",
}

// Unit identifies which of a cluster's three execution units an
// instruction occupies: the MAP groups an integer unit, a memory unit,
// and a floating-point unit per cluster and statically schedules them
// as a long-instruction-word processor (Sec 3).
type Unit uint8

const (
	// UnitInt executes integer ALU, pointer-manipulation and control
	// instructions.
	UnitInt Unit = iota
	// UnitMem executes loads and stores.
	UnitMem
	// UnitFP executes floating-point instructions.
	UnitFP
	// NumUnits is the number of units in a cluster.
	NumUnits = 3
)

func (u Unit) String() string {
	switch u {
	case UnitInt:
		return "int"
	case UnitMem:
		return "mem"
	case UnitFP:
		return "fp"
	}
	return "unit?"
}

// Unit returns the execution unit class of the opcode.
func (o Op) Unit() Unit {
	switch o {
	case LD, ST, LDB, STB:
		return UnitMem
	case FADD, FSUB, FMUL, FDIV, FSLT, ITOF, FTOI:
		return UnitFP
	default:
		return UnitInt
	}
}

// IsControl reports whether the instruction can redirect or stop the
// instruction stream; a wide-issue packet ends at the first such
// instruction.
func (o Op) IsControl() bool {
	switch o {
	case BR, BEQZ, BNEZ, JMP, JMPL, TRAP, HALT:
		return true
	}
	return false
}

// DestReg returns the register an instruction writes, or -1 if it
// writes none. The wide-issue hazard check uses this.
func (i Inst) DestReg() int {
	switch i.Op {
	case NOP, HALT, BR, BEQZ, BNEZ, JMP, TRAP, ST, STB:
		return -1
	default:
		return i.Rd
	}
}

// SrcRegs appends the registers an instruction reads to dst and
// returns it.
func (i Inst) SrcRegs(dst []int) []int {
	switch i.Op {
	case NOP, HALT, BR, TRAP, LDI, MOVIP:
		return dst
	case ADD, SUB, MUL, AND, OR, XOR, SHL, SHR, SLT, SEQ,
		LEA, LEAB, RESTRICT, SUBSEG,
		FADD, FSUB, FMUL, FDIV, FSLT:
		return append(dst, i.Ra, i.Rb)
	case ST, STB:
		return append(dst, i.Ra, i.Rb)
	case BEQZ, BNEZ, JMP, JMPL:
		return append(dst, i.Ra)
	default: // single-source register forms
		return append(dst, i.Ra)
	}
}

// String returns the assembler mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o < numOps }

// OpByName maps mnemonics back to opcodes (built once at init).
var OpByName = func() map[string]Op {
	m := make(map[string]Op, numOps)
	for op := NOP; op < numOps; op++ {
		m[op.String()] = op
	}
	return m
}()

// Inst is a decoded instruction.
type Inst struct {
	Op         Op
	Rd, Ra, Rb int
	Imm        int64 // sign-extended 44-bit immediate
}

// Field geometry.
const (
	immBits = 44
	immMask = (1 << immBits) - 1
	immSign = 1 << (immBits - 1)

	// MaxImm and MinImm bound the encodable immediate.
	MaxImm = immSign - 1
	MinImm = -immSign
)

// Encode packs the instruction into an untagged machine word. It
// returns an error if a field is out of range.
func Encode(i Inst) (word.Word, error) {
	if !i.Op.Valid() {
		return word.Word{}, fmt.Errorf("isa: invalid opcode %d", i.Op)
	}
	if !regOK(i.Rd) || !regOK(i.Ra) || !regOK(i.Rb) {
		return word.Word{}, fmt.Errorf("isa: register out of range in %+v", i)
	}
	if i.Imm < MinImm || i.Imm > MaxImm {
		return word.Word{}, fmt.Errorf("isa: immediate %d out of 44-bit range", i.Imm)
	}
	bits := uint64(i.Op)<<56 |
		uint64(i.Rd)<<52 |
		uint64(i.Ra)<<48 |
		uint64(i.Rb)<<44 |
		uint64(i.Imm)&immMask
	return word.FromUint(bits), nil
}

func regOK(r int) bool { return r >= 0 && r < NumRegs }

// Decode unpacks a machine word into an instruction. Tagged words are
// not instructions (executing a pointer is meaningless) and undefined
// opcodes are rejected; both produce an error the machine turns into an
// illegal-instruction fault.
func Decode(w word.Word) (Inst, error) {
	if w.Tag {
		return Inst{}, fmt.Errorf("isa: cannot execute a pointer word %s", w)
	}
	op := Op(w.Bits >> 56)
	if !op.Valid() {
		return Inst{}, fmt.Errorf("isa: undefined opcode %d", op)
	}
	imm := int64(w.Bits & immMask)
	if imm&immSign != 0 {
		imm -= 1 << immBits
	}
	return Inst{
		Op:  op,
		Rd:  int(w.Bits >> 52 & 0xf),
		Ra:  int(w.Bits >> 48 & 0xf),
		Rb:  int(w.Bits >> 44 & 0xf),
		Imm: imm,
	}, nil
}

// String disassembles the instruction.
func (i Inst) String() string {
	switch i.Op {
	case NOP, HALT:
		return i.Op.String()
	case ADD, SUB, MUL, AND, OR, XOR, SHL, SHR, SLT, SEQ, LEA, LEAB,
		FADD, FSUB, FMUL, FDIV, FSLT:
		return fmt.Sprintf("%s r%d, r%d, r%d", i.Op, i.Rd, i.Ra, i.Rb)
	case RESTRICT, SUBSEG:
		return fmt.Sprintf("%s r%d, r%d, r%d", i.Op, i.Rd, i.Ra, i.Rb)
	case ADDI, SUBI, SHLI, SHRI, SLTI, SEQI, LEAI, LEABI:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Rd, i.Ra, i.Imm)
	case MOV, SETPTR, ISPTR, GETPERM, GETLEN, ITOF, FTOI:
		return fmt.Sprintf("%s r%d, r%d", i.Op, i.Rd, i.Ra)
	case MOVIP:
		return fmt.Sprintf("%s r%d", i.Op, i.Rd)
	case LDI:
		return fmt.Sprintf("%s r%d, %d", i.Op, i.Rd, i.Imm)
	case BR:
		return fmt.Sprintf("%s %d", i.Op, i.Imm)
	case BEQZ, BNEZ:
		return fmt.Sprintf("%s r%d, %d", i.Op, i.Ra, i.Imm)
	case JMP:
		return fmt.Sprintf("%s r%d", i.Op, i.Ra)
	case JMPL:
		return fmt.Sprintf("%s r%d, r%d", i.Op, i.Rd, i.Ra)
	case TRAP:
		return fmt.Sprintf("%s %d", i.Op, i.Imm)
	case LD, LDB:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Rd, i.Ra, i.Imm)
	case ST, STB:
		return fmt.Sprintf("%s r%d, %d, r%d", i.Op, i.Ra, i.Imm, i.Rb)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d, %d", i.Op, i.Rd, i.Ra, i.Rb, i.Imm)
	}
}
