package isa

import "repro/internal/word"

// mustEncode is the test-local stand-in for the removed library
// MustEncode: statically valid test fixtures may panic.
func mustEncode(i Inst) word.Word {
	w, err := Encode(i)
	if err != nil {
		panic(err)
	}
	return w
}
