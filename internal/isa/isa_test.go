package isa

import (
	"testing"
	"testing/quick"

	"repro/internal/word"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(op uint8, rd, ra, rb uint8, imm int32) bool {
		i := Inst{
			Op:  Op(op) % numOps,
			Rd:  int(rd) % NumRegs,
			Ra:  int(ra) % NumRegs,
			Rb:  int(rb) % NumRegs,
			Imm: int64(imm),
		}
		w, err := Encode(i)
		if err != nil {
			return false
		}
		j, err := Decode(w)
		return err == nil && i == j
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestImmediateRange(t *testing.T) {
	for _, imm := range []int64{MaxImm, MinImm, 0, -1, 1} {
		i := Inst{Op: LDI, Imm: imm}
		w, err := Encode(i)
		if err != nil {
			t.Fatalf("Encode(imm=%d): %v", imm, err)
		}
		j, _ := Decode(w)
		if j.Imm != imm {
			t.Errorf("imm %d round-tripped to %d", imm, j.Imm)
		}
	}
	if _, err := Encode(Inst{Op: LDI, Imm: MaxImm + 1}); err == nil {
		t.Error("over-range immediate accepted")
	}
	if _, err := Encode(Inst{Op: LDI, Imm: MinImm - 1}); err == nil {
		t.Error("under-range immediate accepted")
	}
}

func TestEncodeValidation(t *testing.T) {
	if _, err := Encode(Inst{Op: numOps}); err == nil {
		t.Error("invalid opcode accepted")
	}
	if _, err := Encode(Inst{Op: ADD, Rd: 16}); err == nil {
		t.Error("register 16 accepted")
	}
	if _, err := Encode(Inst{Op: ADD, Ra: -1}); err == nil {
		t.Error("negative register accepted")
	}
}

func TestDecodeRejectsTaggedWord(t *testing.T) {
	if _, err := Decode(word.Tagged(0)); err == nil {
		t.Error("decoded a pointer as an instruction")
	}
}

func TestDecodeRejectsUndefinedOpcode(t *testing.T) {
	if _, err := Decode(word.FromUint(uint64(200) << 56)); err == nil {
		t.Error("undefined opcode decoded")
	}
}

func TestOpNamesComplete(t *testing.T) {
	seen := map[string]bool{}
	for op := NOP; op < numOps; op++ {
		name := op.String()
		if name == "" || name[0] == 'o' && name[1] == 'p' && name[2] == '(' {
			t.Errorf("opcode %d has no mnemonic", op)
		}
		if seen[name] {
			t.Errorf("duplicate mnemonic %q", name)
		}
		seen[name] = true
		if OpByName[name] != op {
			t.Errorf("OpByName[%q] = %v, want %v", name, OpByName[name], op)
		}
	}
	if Op(250).String() != "op(250)" {
		t.Errorf("invalid op name: %s", Op(250))
	}
	if Op(250).Valid() {
		t.Error("Op(250).Valid() = true")
	}
}

func TestMustEncodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustEncode did not panic on bad instruction")
		}
	}()
	mustEncode(Inst{Op: numOps})
}

func TestStringCoversAllOps(t *testing.T) {
	for op := NOP; op < numOps; op++ {
		i := Inst{Op: op, Rd: 1, Ra: 2, Rb: 3, Imm: 4}
		if i.String() == "" {
			t.Errorf("empty disassembly for %v", op)
		}
	}
}

func TestUnitClassification(t *testing.T) {
	cases := map[Op]Unit{
		ADD: UnitInt, LDI: UnitInt, BR: UnitInt, JMP: UnitInt,
		LEA: UnitInt, RESTRICT: UnitInt, SETPTR: UnitInt,
		LD: UnitMem, ST: UnitMem,
		FADD: UnitFP, FSUB: UnitFP, FMUL: UnitFP, FDIV: UnitFP,
		FSLT: UnitFP, ITOF: UnitFP, FTOI: UnitFP,
	}
	for op, want := range cases {
		if got := op.Unit(); got != want {
			t.Errorf("%v.Unit() = %v, want %v", op, got, want)
		}
	}
	for _, u := range []Unit{UnitInt, UnitMem, UnitFP, Unit(9)} {
		if u.String() == "" {
			t.Errorf("unit %d unnamed", u)
		}
	}
}

func TestIsControl(t *testing.T) {
	control := []Op{BR, BEQZ, BNEZ, JMP, JMPL, TRAP, HALT}
	for _, op := range control {
		if !op.IsControl() {
			t.Errorf("%v not control", op)
		}
	}
	for _, op := range []Op{ADD, LD, ST, LEA, NOP, FADD, MOVIP} {
		if op.IsControl() {
			t.Errorf("%v is control", op)
		}
	}
}

func TestDestReg(t *testing.T) {
	noDest := []Op{NOP, HALT, BR, BEQZ, BNEZ, JMP, TRAP, ST}
	for _, op := range noDest {
		if (Inst{Op: op, Rd: 5}).DestReg() != -1 {
			t.Errorf("%v has a dest", op)
		}
	}
	for _, op := range []Op{ADD, LD, LEA, MOV, LDI, JMPL, SETPTR, FADD, MOVIP} {
		if (Inst{Op: op, Rd: 5}).DestReg() != 5 {
			t.Errorf("%v dest != rd", op)
		}
	}
}

func TestSrcRegs(t *testing.T) {
	check := func(i Inst, want ...int) {
		t.Helper()
		got := i.SrcRegs(nil)
		if len(got) != len(want) {
			t.Errorf("%v: srcs = %v, want %v", i.Op, got, want)
			return
		}
		for j := range want {
			if got[j] != want[j] {
				t.Errorf("%v: srcs = %v, want %v", i.Op, got, want)
			}
		}
	}
	check(Inst{Op: ADD, Ra: 1, Rb: 2}, 1, 2)
	check(Inst{Op: ST, Ra: 3, Rb: 4}, 3, 4)
	check(Inst{Op: FADD, Ra: 5, Rb: 6}, 5, 6)
	check(Inst{Op: LD, Ra: 7}, 7)
	check(Inst{Op: BEQZ, Ra: 8}, 8)
	check(Inst{Op: JMPL, Ra: 9}, 9)
	check(Inst{Op: MOV, Ra: 2}, 2)
	check(Inst{Op: LDI})
	check(Inst{Op: NOP})
	check(Inst{Op: MOVIP})
	check(Inst{Op: HALT})
	// Appends to an existing slice.
	base := []int{15}
	if got := (Inst{Op: ADD, Ra: 1, Rb: 2}).SrcRegs(base); len(got) != 3 || got[0] != 15 {
		t.Errorf("SrcRegs append = %v", got)
	}
}
