package isa

import (
	"testing"

	"repro/internal/word"
)

// FuzzDecode: Decode must never panic on an arbitrary machine word;
// when it succeeds, re-encoding must round-trip bit-exactly.
func FuzzDecode(f *testing.F) {
	f.Add(uint64(0), false)
	f.Add(^uint64(0), false)
	f.Add(uint64(0x1234), true) // tagged word: a pointer, not an instruction
	w, err := Encode(Inst{Op: ADD, Rd: 1, Ra: 2, Rb: 3})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(w.Bits, w.Tag)
	w, err = Encode(Inst{Op: LDI, Rd: 4, Imm: MinImm})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(w.Bits, w.Tag)
	f.Add(uint64(0xee)<<56, false) // undefined opcode

	f.Fuzz(func(t *testing.T, bits uint64, tag bool) {
		inst, err := Decode(word.Word{Bits: bits, Tag: tag})
		if err != nil {
			return // rejected: that is the defined fate of hostile words
		}
		enc, err := Encode(inst)
		if err != nil {
			t.Fatalf("Decode accepted %#x (tag=%v) but Encode(%+v) failed: %v", bits, tag, inst, err)
		}
		back, err := Decode(enc)
		if err != nil || back != inst {
			t.Fatalf("round trip: %+v -> %v -> %+v (%v)", inst, enc, back, err)
		}
	})
}
