package persist

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/telemetry"
)

// Store is a directory of checkpoint generations. One generation is
// one image file per node plus a commit marker ("genNNNNNNNN.ok")
// written LAST: a crash or torn write anywhere in the set leaves no
// marker (or a marker whose member CRCs disagree), and the generation
// is simply not there. Every file lands via write-temp, fsync, rename.
//
// Restore resolves the newest generation whose whole delta chain —
// back to its base image — is intact, skipping (and counting) corrupt
// or torn generations on the way down.
type Store struct {
	dir   string
	nodes int
	stats Stats
	hist  *telemetry.Histogram // capture latency, wall nanoseconds
}

// Stats counts the store's work. BytesWritten includes markers.
type Stats struct {
	Captures        uint64 // generations committed
	DeltaPages      uint64 // pages carried by delta images
	BytesWritten    uint64
	Restores        uint64 // successful generation loads
	Fallbacks       uint64 // restores that had to skip newer generations
	CorruptDetected uint64 // generations rejected as torn/corrupt/incomplete
}

// Open creates (if needed) and opens a store directory for a system of
// the given node count.
func Open(dir string, nodes int) (*Store, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("persist: store needs at least one node, got %d", nodes)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: open store: %w", err)
	}
	return &Store{dir: dir, nodes: nodes, hist: telemetry.NewHistogram()}, nil
}

// Dir returns the store's directory.
func (st *Store) Dir() string { return st.dir }

// Nodes returns the per-generation image count the store was opened
// with.
func (st *Store) Nodes() int { return st.nodes }

// Stats returns a copy of the counters.
func (st *Store) Stats() Stats { return st.stats }

// HistCapture returns the capture-latency histogram (wall nanoseconds
// per committed generation).
func (st *Store) HistCapture() *telemetry.Histogram { return st.hist }

// RegisterMetrics publishes the store's counters and the capture
// latency histogram under prefix (canonically "persist").
func (st *Store) RegisterMetrics(reg *telemetry.Registry, prefix string) {
	reg.Counter(prefix+".captures", func() uint64 { return st.stats.Captures })
	reg.Counter(prefix+".delta_pages", func() uint64 { return st.stats.DeltaPages })
	reg.Counter(prefix+".bytes_written", func() uint64 { return st.stats.BytesWritten })
	reg.Counter(prefix+".restores", func() uint64 { return st.stats.Restores })
	reg.Counter(prefix+".fallbacks", func() uint64 { return st.stats.Fallbacks })
	reg.Counter(prefix+".corrupt_detected", func() uint64 { return st.stats.CorruptDetected })
	reg.RegisterHistogram(prefix+".capture_latency_ns", st.hist)
}

func imageName(gen uint64, node int) string {
	return fmt.Sprintf("gen%08d-node%02d.ckpt", gen, node)
}

func markerName(gen uint64) string {
	return fmt.Sprintf("gen%08d.ok", gen)
}

// writeAtomic lands data at path via temp + fsync + rename, then syncs
// the directory so the rename itself is durable.
func (st *Store) writeAtomic(name string, data []byte) error {
	path := filepath.Join(st.dir, name)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if d, err := os.Open(st.dir); err == nil {
		d.Sync()
		d.Close()
	}
	st.stats.BytesWritten += uint64(len(data))
	return nil
}

// genInfo is one committed generation as described by its marker.
type genInfo struct {
	gen    uint64
	parent uint64
	cycle  uint64
	delta  bool
	files  []memberInfo
}

type memberInfo struct {
	name string
	size uint64
	crc  uint32
}

// encodeMarker serializes a commit marker: magic, gen, parent, cycle,
// kind, member table, trailing CRC over everything before it.
func encodeMarker(g *genInfo) []byte {
	b := make([]byte, 0, 64+len(g.files)*64)
	b = append(b, magicMarker...)
	b = binary.LittleEndian.AppendUint64(b, g.gen)
	b = binary.LittleEndian.AppendUint64(b, g.parent)
	b = binary.LittleEndian.AppendUint64(b, g.cycle)
	kind := byte(kindBase)
	if g.delta {
		kind = kindDelta
	}
	b = append(b, kind)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(g.files)))
	for _, m := range g.files {
		b = binary.LittleEndian.AppendUint16(b, uint16(len(m.name)))
		b = append(b, m.name...)
		b = binary.LittleEndian.AppendUint64(b, m.size)
		b = binary.LittleEndian.AppendUint32(b, m.crc)
	}
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// decodeMarker parses a commit marker; any malformation is a
// *FormatError.
func decodeMarker(data []byte) (*genInfo, error) {
	if len(data) < 4 {
		return nil, formatErrf("marker too short")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, formatErrf("marker checksum mismatch")
	}
	r := &reader{b: body}
	magic, ok := r.bytes(8)
	if !ok || string(magic) != magicMarker {
		return nil, formatErrf("bad marker magic")
	}
	g := &genInfo{}
	var ok1, ok2, ok3 bool
	g.gen, ok1 = r.u64()
	g.parent, ok2 = r.u64()
	g.cycle, ok3 = r.u64()
	kind, ok4 := r.u8()
	n, ok5 := r.u32()
	if !(ok1 && ok2 && ok3 && ok4 && ok5) {
		return nil, formatErrf("truncated marker")
	}
	if kind != kindBase && kind != kindDelta {
		return nil, formatErrf("marker with unknown kind %d", kind)
	}
	g.delta = kind == kindDelta
	for i := uint32(0); i < n; i++ {
		nl, ok := r.u32x16()
		if !ok {
			return nil, formatErrf("truncated marker member %d", i)
		}
		name, ok1 := r.bytes(int(nl))
		size, ok2 := r.u64()
		crc, ok3 := r.u32()
		if !(ok1 && ok2 && ok3) {
			return nil, formatErrf("truncated marker member %d", i)
		}
		g.files = append(g.files, memberInfo{name: string(name), size: size, crc: crc})
	}
	if r.remaining() != 0 {
		return nil, formatErrf("trailing bytes in marker")
	}
	return g, nil
}

// u32x16 reads a u16 (marker member name length).
func (r *reader) u32x16() (uint16, bool) {
	if r.remaining() < 2 {
		return 0, false
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v, true
}

// WriteGeneration commits one coordinated generation: one checkpoint
// per node (all the same kind), parent naming the previous generation
// for deltas (pass parent == gen for a base). Image files land first,
// the marker last — a crash mid-write leaves no marker and the
// generation never existed.
func (st *Store) WriteGeneration(gen, parent, cycle uint64, cps []*kernel.Checkpoint) error {
	t0 := time.Now()
	if len(cps) != st.nodes {
		return fmt.Errorf("persist: generation %d has %d images, store expects %d", gen, len(cps), st.nodes)
	}
	if gen == 0 {
		return fmt.Errorf("persist: generation numbers are 1-based")
	}
	delta := cps[0].Delta
	for i, cp := range cps {
		if cp.Delta != delta {
			return fmt.Errorf("persist: generation %d mixes base and delta images (node %d)", gen, i)
		}
	}
	if !delta {
		parent = gen
	} else if parent >= gen {
		return fmt.Errorf("persist: delta generation %d needs parent < gen, got %d", gen, parent)
	}

	g := &genInfo{gen: gen, parent: parent, cycle: cycle, delta: delta}
	for i, cp := range cps {
		var buf bytes.Buffer
		hdr := Header{Node: uint32(i), Gen: gen, Parent: parent, Cycle: cycle, Delta: delta}
		if err := Encode(&buf, hdr, cp); err != nil {
			return err
		}
		name := imageName(gen, i)
		if err := st.writeAtomic(name, buf.Bytes()); err != nil {
			return fmt.Errorf("persist: write %s: %w", name, err)
		}
		g.files = append(g.files, memberInfo{
			name: name, size: uint64(buf.Len()), crc: crc32.ChecksumIEEE(buf.Bytes()),
		})
		if delta {
			st.stats.DeltaPages += uint64(len(cp.Resident) + len(cp.Swapped))
		}
	}
	if err := st.writeAtomic(markerName(gen), encodeMarker(g)); err != nil {
		return fmt.Errorf("persist: write marker for generation %d: %w", gen, err)
	}
	st.stats.Captures++
	st.hist.Observe(uint64(time.Since(t0).Nanoseconds()))
	return nil
}

// scan reads every commit marker in the directory. Markers that fail to
// decode are ignored here (the restore path counts them when it trips
// over them).
func (st *Store) scan() (map[uint64]*genInfo, error) {
	ents, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, fmt.Errorf("persist: scan store: %w", err)
	}
	gens := make(map[uint64]*genInfo)
	for _, e := range ents {
		var gen uint64
		if _, err := fmt.Sscanf(e.Name(), "gen%d.ok", &gen); err != nil || filepath.Ext(e.Name()) != ".ok" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(st.dir, e.Name()))
		if err != nil {
			continue
		}
		g, err := decodeMarker(data)
		if err != nil || g.gen != gen {
			continue
		}
		gens[g.gen] = g
	}
	return gens, nil
}

// Generations lists the committed generation numbers, ascending. It
// reports commit markers only — an entry may still fail verification at
// load time.
func (st *Store) Generations() ([]uint64, error) {
	gens, err := st.scan()
	if err != nil {
		return nil, err
	}
	out := make([]uint64, 0, len(gens))
	for g := range gens {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// MaxGen returns the highest committed generation number (0 when the
// store is empty), so a reopened store continues its numbering.
func (st *Store) MaxGen() (uint64, error) {
	gens, err := st.Generations()
	if err != nil || len(gens) == 0 {
		return 0, err
	}
	return gens[len(gens)-1], nil
}

// chainOf resolves gen's chain back to its base, oldest first. Missing
// links (a pruned-away or damaged ancestor) report false.
func chainOf(gens map[uint64]*genInfo, gen uint64) ([]uint64, bool) {
	var rev []uint64
	g, ok := gens[gen]
	for ok {
		rev = append(rev, g.gen)
		if !g.delta {
			out := make([]uint64, len(rev))
			for i, v := range rev {
				out[len(rev)-1-i] = v
			}
			return out, true
		}
		if g.parent >= g.gen || len(rev) > len(gens) {
			return nil, false // cyclic or impossible marker
		}
		g, ok = gens[g.parent]
	}
	return nil, false
}

// loadImages reads and fully verifies one generation's image files:
// marker membership, sizes, CRCs, decodability, and header identity.
func (st *Store) loadImages(g *genInfo) ([]*kernel.Checkpoint, error) {
	if len(g.files) != st.nodes {
		return nil, formatErrf("generation %d has %d members, store expects %d", g.gen, len(g.files), st.nodes)
	}
	cps := make([]*kernel.Checkpoint, st.nodes)
	for i, m := range g.files {
		data, err := os.ReadFile(filepath.Join(st.dir, m.name))
		if err != nil {
			return nil, formatErrf("generation %d member %s unreadable: %v", g.gen, m.name, err)
		}
		if uint64(len(data)) != m.size || crc32.ChecksumIEEE(data) != m.crc {
			return nil, formatErrf("generation %d member %s fails marker verification", g.gen, m.name)
		}
		hdr, cp, err := Decode(data)
		if err != nil {
			return nil, err
		}
		if hdr.Gen != g.gen || hdr.Node != uint32(i) || hdr.Delta != g.delta {
			return nil, formatErrf("generation %d member %s has mismatched identity", g.gen, m.name)
		}
		cps[i] = cp
	}
	return cps, nil
}

// LoadImages returns one generation's raw (unmaterialized) per-node
// images, fully verified.
func (st *Store) LoadImages(gen uint64) ([]*kernel.Checkpoint, *GenDesc, error) {
	gens, err := st.scan()
	if err != nil {
		return nil, nil, err
	}
	g, ok := gens[gen]
	if !ok {
		return nil, nil, formatErrf("generation %d has no commit marker", gen)
	}
	cps, err := st.loadImages(g)
	if err != nil {
		return nil, nil, err
	}
	return cps, descOf(g), nil
}

// GenDesc describes one committed generation.
type GenDesc struct {
	Gen    uint64
	Parent uint64
	Cycle  uint64
	Delta  bool
	Bytes  uint64 // image bytes (markers excluded)
}

func descOf(g *genInfo) *GenDesc {
	d := &GenDesc{Gen: g.gen, Parent: g.parent, Cycle: g.cycle, Delta: g.delta}
	for _, m := range g.files {
		d.Bytes += m.size
	}
	return d
}

// Describe lists every committed generation, ascending.
func (st *Store) Describe() ([]*GenDesc, error) {
	gens, err := st.scan()
	if err != nil {
		return nil, err
	}
	out := make([]*GenDesc, 0, len(gens))
	for _, g := range gens {
		out = append(out, descOf(g))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Gen < out[j].Gen })
	return out, nil
}

// LoadGeneration materializes generation gen: its chain is resolved
// back to the base, every member verified, and the deltas replayed —
// returning one self-contained checkpoint per node plus the barrier
// cycle. Fails (with a *FormatError) if any link is damaged.
func (st *Store) LoadGeneration(gen uint64) ([]*kernel.Checkpoint, uint64, error) {
	gens, err := st.scan()
	if err != nil {
		return nil, 0, err
	}
	g, ok := gens[gen]
	if !ok {
		return nil, 0, formatErrf("generation %d has no commit marker", gen)
	}
	cps, err := st.materialize(gens, g)
	if err != nil {
		return nil, 0, err
	}
	st.stats.Restores++
	return cps, g.cycle, nil
}

// materialize loads gen's whole chain and flattens it per node.
func (st *Store) materialize(gens map[uint64]*genInfo, g *genInfo) ([]*kernel.Checkpoint, error) {
	chain, ok := chainOf(gens, g.gen)
	if !ok {
		return nil, formatErrf("generation %d has a broken delta chain", g.gen)
	}
	perNode := make([][]*kernel.Checkpoint, st.nodes)
	for _, cg := range chain {
		cps, err := st.loadImages(gens[cg])
		if err != nil {
			return nil, err
		}
		for i, cp := range cps {
			perNode[i] = append(perNode[i], cp)
		}
	}
	out := make([]*kernel.Checkpoint, st.nodes)
	for i, ch := range perNode {
		cp, err := kernel.Materialize(ch)
		if err != nil {
			return nil, err
		}
		out[i] = cp
	}
	return out, nil
}

// LoadNewestIntact restores the newest generation whose whole chain is
// intact, walking older generations (counting each rejected one) until
// one verifies. This is the corruption-fallback path: a torn or
// bit-rotted newest generation costs recency, never recoverability.
func (st *Store) LoadNewestIntact() ([]*kernel.Checkpoint, uint64, uint64, error) {
	gens, err := st.scan()
	if err != nil {
		return nil, 0, 0, err
	}
	order := make([]uint64, 0, len(gens))
	for g := range gens {
		order = append(order, g)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] > order[j] })
	skipped := false
	for _, gn := range order {
		cps, err := st.materialize(gens, gens[gn])
		if err != nil {
			st.stats.CorruptDetected++
			skipped = true
			continue
		}
		st.stats.Restores++
		if skipped {
			st.stats.Fallbacks++
		}
		return cps, gn, gens[gn].cycle, nil
	}
	return nil, 0, 0, formatErrf("no intact generation in %s", st.dir)
}

// Prune removes generations beyond the newest keep, but NEVER a
// generation some retained generation's chain still depends on — a
// base image outlives its retention slot for as long as any retained
// delta needs it to replay.
func (st *Store) Prune(keep int) error {
	if keep <= 0 {
		return nil
	}
	gens, err := st.scan()
	if err != nil {
		return err
	}
	order := make([]uint64, 0, len(gens))
	for g := range gens {
		order = append(order, g)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] > order[j] })
	required := make(map[uint64]bool)
	for i, gn := range order {
		if i >= keep {
			break
		}
		chain, ok := chainOf(gens, gn)
		if !ok {
			// A damaged chain still pins whatever links remain: the
			// fallback path may need an older intact prefix.
			required[gn] = true
			continue
		}
		for _, cg := range chain {
			required[cg] = true
		}
	}
	for _, gn := range order {
		if required[gn] {
			continue
		}
		// Marker first: a crash mid-removal leaves orphan image files
		// (harmless, unreferenced), never a marker pointing at nothing.
		if err := os.Remove(filepath.Join(st.dir, markerName(gn))); err != nil {
			return fmt.Errorf("persist: prune generation %d: %w", gn, err)
		}
		for _, m := range gens[gn].files {
			os.Remove(filepath.Join(st.dir, m.name))
		}
	}
	return nil
}

// --- single-kernel convenience: Saver and RestoreNewest ----------------

// Saver drives one kernel's incremental chain into a store: each
// Capture writes the next generation, re-basing every baseEvery
// generations to bound chain length.
type Saver struct {
	st        *Store
	cap       *kernel.CaptureState
	gen       uint64
	sinceBase int
	baseEvery int
}

// DefaultBaseEvery bounds delta chains when the caller does not choose:
// a fresh base image every 8th generation.
const DefaultBaseEvery = 8

// NewSaver starts (or resumes — numbering continues after the store's
// newest generation) a saver. baseEvery <= 0 selects DefaultBaseEvery;
// baseEvery == 1 writes only base images.
func NewSaver(st *Store, baseEvery int) (*Saver, error) {
	if st.nodes != 1 {
		return nil, fmt.Errorf("persist: Saver drives single-kernel stores; this store expects %d nodes", st.nodes)
	}
	if baseEvery <= 0 {
		baseEvery = DefaultBaseEvery
	}
	gen, err := st.MaxGen()
	if err != nil {
		return nil, err
	}
	return &Saver{st: st, gen: gen, baseEvery: baseEvery}, nil
}

// Capture writes the next generation of k's chain and returns its
// number. Call with the machine quiescent. On any error the chain
// re-bases at the next capture — a failed write never leaves a delta
// whose baseline was lost.
func (sv *Saver) Capture(k *kernel.Kernel, cycle uint64) (uint64, error) {
	full := sv.cap == nil || sv.sinceBase >= sv.baseEvery-1
	var prev *kernel.CaptureState
	if !full {
		prev = sv.cap
	}
	cp, ncap, err := k.CheckpointIncremental(prev)
	if err != nil {
		sv.cap = nil
		return 0, err
	}
	gen := sv.gen + 1
	if err := sv.st.WriteGeneration(gen, sv.gen, cycle, []*kernel.Checkpoint{cp}); err != nil {
		sv.cap = nil
		return 0, err
	}
	if cp.Delta {
		sv.sinceBase++
	} else {
		sv.sinceBase = 0
	}
	sv.cap = ncap
	sv.gen = gen
	return gen, nil
}

// Gen returns the last generation Capture committed.
func (sv *Saver) Gen() uint64 { return sv.gen }

// RestoreNewest rebuilds a kernel from the store's newest intact
// generation (single-kernel stores), returning the kernel, the
// generation restored, and its barrier cycle.
func RestoreNewest(st *Store, cfg machine.Config) (*kernel.Kernel, uint64, uint64, error) {
	cps, gen, cycle, err := st.LoadNewestIntact()
	if err != nil {
		return nil, 0, 0, err
	}
	if len(cps) != 1 {
		return nil, 0, 0, fmt.Errorf("persist: RestoreNewest on a %d-node store", len(cps))
	}
	k, err := kernel.Restore(cfg, cps[0])
	if err != nil {
		return nil, 0, 0, err
	}
	return k, gen, cycle, nil
}
