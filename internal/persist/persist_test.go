package persist

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/asm"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/vm"
	"repro/internal/word"
)

func testCfg() machine.Config {
	cfg := machine.MMachine()
	cfg.Clusters = 2
	cfg.SlotsPerCluster = 2
	cfg.PhysBytes = 4 << 20
	cfg.TrapCost = 10
	return cfg
}

// persistKernel builds a store-heavy workload whose restored outcome we
// can compare register-for-register against a clean run.
func persistKernel(t *testing.T) (*kernel.Kernel, *machine.Thread) {
	t.Helper()
	prog, err := asm.Assemble(`
		ldi r2, 120
		ldi r4, 0
	loop:
		ld   r5, r1, 0
		add  r5, r5, r2
		st   r1, 0, r5
		add  r4, r4, r5
		st   r1, 8, r4
		leai r6, r1, 16
		st   r6, 0, r6
		subi r2, r2, 1
		bnez r2, loop
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernel.New(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	ip, err := k.LoadProgram(prog, false)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := k.AllocSegment(4096)
	if err != nil {
		t.Fatal(err)
	}
	th, err := k.Spawn(3, ip, map[int]word.Word{1: seg.Word()})
	if err != nil {
		t.Fatal(err)
	}
	return k, th
}

// syntheticImage builds a fully-populated checkpoint by hand — no
// machine required — for format round-trip tests.
func syntheticImage(delta bool) *kernel.Checkpoint {
	wordsPerPage := vm.PageSize / word.BytesPerWord
	mkPage := func(va, frame, seed uint64) kernel.PageImage {
		img := kernel.PageImage{VAddr: va, Frame: frame, Words: make([]word.Word, wordsPerPage)}
		for i := range img.Words {
			img.Words[i] = word.Word{Bits: seed + uint64(i)*3, Tag: i%7 == 0}
		}
		return img
	}
	cp := &kernel.Checkpoint{
		RegionBase: 1 << 40,
		RegionLog:  40,
		Segments:   map[uint64]uint{0x10000: 12, 0x20000: 13},
		Revoked:    map[uint64]bool{0x30000: true},
		NextDomain: 7,
		Resident: []kernel.PageImage{
			mkPage(0x10000, 0x4000, 101),
			mkPage(0x11000, 0x5000, 202),
		},
		Swapped: []kernel.PageImage{mkPage(0x21000, 0, 303)},
		Delta:   delta,
	}
	cp.Swapped[0].Frame = 0
	if delta {
		cp.Dropped = []uint64{0x12000, 0x13000}
		cp.SwapDropped = []uint64{0x22000}
	}
	var regs [16]word.Word
	for i := range regs {
		regs[i] = word.Word{Bits: uint64(i) * 17, Tag: i == 1}
	}
	cp.Threads = []kernel.ThreadImage{
		{Domain: 3, State: machine.Ready, IPWord: word.Word{Bits: 0x1234, Tag: true}, Regs: regs, Instret: 99},
		{Domain: 4, State: machine.Halted, IPWord: word.Word{Bits: 0x5678, Tag: true}, Regs: regs, Instret: 1},
	}
	return cp
}

func encodeImage(t *testing.T, hdr Header, cp *kernel.Checkpoint) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, hdr, cp); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, delta := range []bool{false, true} {
		hdr := Header{Node: 2, Gen: 9, Parent: 8, Cycle: 12345, Delta: delta}
		if !delta {
			hdr.Parent = 9
		}
		cp := syntheticImage(delta)
		enc := encodeImage(t, hdr, cp)
		gotHdr, got, err := Decode(enc)
		if err != nil {
			t.Fatalf("delta=%v: %v", delta, err)
		}
		if gotHdr != hdr {
			t.Errorf("delta=%v header: got %+v want %+v", delta, gotHdr, hdr)
		}
		// Re-encoding the decoded image must reproduce the bytes exactly:
		// the format is canonical.
		re := encodeImage(t, gotHdr, got)
		if !bytes.Equal(enc, re) {
			t.Errorf("delta=%v: decode→encode not canonical (%d vs %d bytes)", delta, len(enc), len(re))
		}
		if got.NextDomain != cp.NextDomain || len(got.Resident) != len(cp.Resident) ||
			len(got.Threads) != len(cp.Threads) || got.Delta != delta {
			t.Errorf("delta=%v: image fields lost in round trip", delta)
		}
		if got.Resident[0].Words[7].Tag != cp.Resident[0].Words[7].Tag {
			t.Errorf("delta=%v: tag bits lost", delta)
		}
	}
}

// TestDecodeRejectsDamage flips every 97th byte of a valid image and
// demands a typed error — never a panic, never silent acceptance.
func TestDecodeRejectsDamage(t *testing.T) {
	hdr := Header{Node: 0, Gen: 3, Parent: 2, Cycle: 7, Delta: true}
	enc := encodeImage(t, hdr, syntheticImage(true))
	for off := 0; off < len(enc); off += 97 {
		mut := append([]byte(nil), enc...)
		mut[off] ^= 0x40
		_, _, err := Decode(mut)
		if err == nil {
			t.Fatalf("bit flip at offset %d accepted", off)
		}
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Fatalf("bit flip at offset %d: error %T is not *FormatError", off, err)
		}
		if !fe.CorruptionDetected() {
			t.Fatalf("offset %d: corruption not flagged", off)
		}
	}
	for _, n := range []int{0, 1, 7, 8, 40, len(enc) - 1} {
		if _, _, err := Decode(enc[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}

func TestMarkerRoundTrip(t *testing.T) {
	g := &genInfo{gen: 5, parent: 4, cycle: 999, delta: true,
		files: []memberInfo{{name: "gen00000005-node00.ckpt", size: 4242, crc: 0xdeadbeef}}}
	enc := encodeMarker(g)
	got, err := decodeMarker(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.gen != g.gen || got.parent != g.parent || got.cycle != g.cycle ||
		got.delta != g.delta || len(got.files) != 1 || got.files[0] != g.files[0] {
		t.Fatalf("marker round trip lost fields: %+v", got)
	}
	for off := 0; off < len(enc); off++ {
		mut := append([]byte(nil), enc...)
		mut[off] ^= 1
		if _, err := decodeMarker(mut); err == nil {
			t.Fatalf("marker bit flip at %d accepted", off)
		}
	}
}

// saveChain drives a Saver through steps×gens of a live workload and
// returns the store, the reference kernel run to completion, and the
// committed generation numbers.
func saveChain(t *testing.T, dir string, gens, baseEvery int) (*Store, *machine.Thread, []uint64) {
	t.Helper()
	kRef, thRef := persistKernel(t)
	kRef.Run(1_000_000)
	if thRef.State != machine.Halted {
		t.Fatalf("reference: %v %v", thRef.State, thRef.Fault)
	}

	st, err := Open(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	sv, err := NewSaver(st, baseEvery)
	if err != nil {
		t.Fatal(err)
	}
	k, th := persistKernel(t)
	var out []uint64
	for g := 0; g < gens; g++ {
		for i := 0; i < 60; i++ {
			k.M.Step()
		}
		gen, err := sv.Capture(k, uint64(60*(g+1)))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, gen)
	}
	if th.Done() {
		t.Fatal("workload finished before the chain was captured — lengthen it")
	}
	return st, thRef, out
}

func TestStoreChainRestoreEveryGeneration(t *testing.T) {
	dir := t.TempDir()
	st, thRef, gens := saveChain(t, dir, 5, 3)
	if len(gens) != 5 || gens[0] != 1 {
		t.Fatalf("generations %v", gens)
	}
	descs, err := st.Describe()
	if err != nil {
		t.Fatal(err)
	}
	wantBase := map[uint64]bool{1: true, 4: true}
	for _, d := range descs {
		if d.Delta == wantBase[d.Gen] {
			t.Errorf("generation %d delta=%v, want base=%v", d.Gen, d.Delta, wantBase[d.Gen])
		}
	}
	for _, g := range gens {
		cps, _, err := st.LoadGeneration(g)
		if err != nil {
			t.Fatalf("generation %d: %v", g, err)
		}
		k2, err := kernel.Restore(testCfg(), cps[0])
		if err != nil {
			t.Fatalf("generation %d: %v", g, err)
		}
		k2.Run(1_000_000)
		th2 := k2.M.Threads()[0]
		if th2.State != machine.Halted {
			t.Fatalf("generation %d: restored run %v %v", g, th2.State, th2.Fault)
		}
		for r := 0; r < 16; r++ {
			if th2.Reg(r) != thRef.Reg(r) {
				t.Errorf("generation %d r%d: %v vs reference %v", g, r, th2.Reg(r), thRef.Reg(r))
			}
		}
	}
	if s := st.Stats(); s.Captures != 5 || s.Restores != 5 || s.DeltaPages == 0 || s.BytesWritten == 0 {
		t.Errorf("stats %+v", st.Stats())
	}
}

func TestStoreFallbackOnDamagedNewest(t *testing.T) {
	dir := t.TempDir()
	st, thRef, gens := saveChain(t, dir, 3, 8)
	newest := gens[len(gens)-1]

	// Flip one bit in the newest generation's image: the marker CRC now
	// disagrees and the whole generation must be rejected.
	path := filepath.Join(dir, imageName(newest, 0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x08
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	cps, gen, _, err := st.LoadNewestIntact()
	if err != nil {
		t.Fatal(err)
	}
	if gen != newest-1 {
		t.Fatalf("fell back to generation %d, want %d", gen, newest-1)
	}
	s := st.Stats()
	if s.Fallbacks != 1 || s.CorruptDetected != 1 {
		t.Errorf("stats %+v, want one fallback and one corrupt detection", s)
	}
	k2, err := kernel.Restore(testCfg(), cps[0])
	if err != nil {
		t.Fatal(err)
	}
	k2.Run(1_000_000)
	th2 := k2.M.Threads()[0]
	if th2.State != machine.Halted {
		t.Fatalf("fallback restore: %v %v", th2.State, th2.Fault)
	}
	for r := 0; r < 16; r++ {
		if th2.Reg(r) != thRef.Reg(r) {
			t.Errorf("fallback r%d: %v vs reference %v", r, th2.Reg(r), thRef.Reg(r))
		}
	}

	// Direct load of the damaged generation is a typed failure.
	if _, _, err := st.LoadGeneration(newest); err == nil {
		t.Error("damaged generation loaded directly")
	}
}

func TestStoreDamagedBaseIsUnrecoverable(t *testing.T) {
	dir := t.TempDir()
	st, _, _ := saveChain(t, dir, 3, 8) // base gen 1 + deltas 2, 3
	path := filepath.Join(dir, imageName(1, 0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[100] ^= 0x80
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, _, err = st.LoadNewestIntact()
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("damaged base: got %v, want *FormatError", err)
	}
	if st.Stats().CorruptDetected != 3 {
		t.Errorf("corrupt detections %d, want 3 (every chain broken)", st.Stats().CorruptDetected)
	}
}

// TestStoreTornGenerationInvisible: image files without a commit marker
// (the crash-mid-write shape) are simply not a generation.
func TestStoreTornGenerationInvisible(t *testing.T) {
	dir := t.TempDir()
	st, _, gens := saveChain(t, dir, 2, 8)
	newest := gens[len(gens)-1]
	// A torn generation 99: image present, marker never written.
	if err := os.WriteFile(filepath.Join(dir, imageName(99, 0)), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	// And a half-written marker for generation 98.
	if err := os.WriteFile(filepath.Join(dir, markerName(98)), []byte("MMCKOK01 trunc"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, gen, _, err := st.LoadNewestIntact()
	if err != nil {
		t.Fatal(err)
	}
	if gen != newest {
		t.Fatalf("restored generation %d, want %d", gen, newest)
	}
	if got, err := st.MaxGen(); err != nil || got != newest {
		t.Fatalf("MaxGen = %d, %v; want %d", got, err, newest)
	}
}

func TestStorePruneKeepsChainBases(t *testing.T) {
	dir := t.TempDir()
	st, _, gens := saveChain(t, dir, 6, 3) // bases at 1 and 4
	if len(gens) != 6 {
		t.Fatalf("generations %v", gens)
	}
	if err := st.Prune(2); err != nil {
		t.Fatal(err)
	}
	left, err := st.Generations()
	if err != nil {
		t.Fatal(err)
	}
	// Keep 6 and 5; both are deltas on base 4, which MUST survive even
	// though it is outside the retention window.
	want := []uint64{4, 5, 6}
	if len(left) != len(want) {
		t.Fatalf("after prune: %v, want %v", left, want)
	}
	for i, g := range want {
		if left[i] != g {
			t.Fatalf("after prune: %v, want %v", left, want)
		}
	}
	for _, g := range want {
		if _, _, err := st.LoadGeneration(g); err != nil {
			t.Errorf("retained generation %d unloadable after prune: %v", g, err)
		}
	}
	// Pruned generations' files are actually gone.
	if _, err := os.Stat(filepath.Join(dir, imageName(1, 0))); !os.IsNotExist(err) {
		t.Error("pruned base image still on disk")
	}
}

func TestSaverResumesNumbering(t *testing.T) {
	dir := t.TempDir()
	_, _, gens := saveChain(t, dir, 3, 8)
	st2, err := Open(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	sv, err := NewSaver(st2, 8)
	if err != nil {
		t.Fatal(err)
	}
	k, _ := persistKernel(t)
	k.M.Step()
	gen, err := sv.Capture(k, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want := gens[len(gens)-1] + 1; gen != want {
		t.Fatalf("resumed numbering at %d, want %d", gen, want)
	}
	// A fresh Saver has no capture state: this must have been a base.
	descs, err := st2.Describe()
	if err != nil {
		t.Fatal(err)
	}
	if d := descs[len(descs)-1]; d.Gen != gen || d.Delta {
		t.Fatalf("resumed capture %+v, want a base image", d)
	}
}

func TestRestoreNewestConvenience(t *testing.T) {
	dir := t.TempDir()
	st, thRef, gens := saveChain(t, dir, 4, 2)
	k2, gen, _, err := RestoreNewest(st, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if gen != gens[len(gens)-1] {
		t.Fatalf("restored generation %d, want %d", gen, gens[len(gens)-1])
	}
	k2.Run(1_000_000)
	th2 := k2.M.Threads()[0]
	if th2.State != machine.Halted || th2.Reg(4) != thRef.Reg(4) {
		t.Fatalf("restored run diverged: %v r4=%v want %v", th2.State, th2.Reg(4), thRef.Reg(4))
	}
}

func TestWriteGenerationValidation(t *testing.T) {
	st, err := Open(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	base := syntheticImage(false)
	delta := syntheticImage(true)
	if err := st.WriteGeneration(0, 0, 0, []*kernel.Checkpoint{base, base}); err == nil {
		t.Error("generation 0 accepted")
	}
	if err := st.WriteGeneration(1, 1, 0, []*kernel.Checkpoint{base}); err == nil {
		t.Error("wrong node count accepted")
	}
	if err := st.WriteGeneration(1, 1, 0, []*kernel.Checkpoint{base, delta}); err == nil {
		t.Error("mixed base/delta generation accepted")
	}
	if err := st.WriteGeneration(1, 1, 0, []*kernel.Checkpoint{delta, delta}); err == nil {
		t.Error("delta with parent == gen accepted")
	}
	if err := st.WriteGeneration(1, 1, 0, []*kernel.Checkpoint{base, base}); err != nil {
		t.Errorf("valid base generation rejected: %v", err)
	}
}
