package persist

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/kernel"
)

func encodeTB(hdr Header, cp *kernel.Checkpoint) ([]byte, error) {
	var buf bytes.Buffer
	if err := Encode(&buf, hdr, cp); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func emptyImage() *kernel.Checkpoint {
	return &kernel.Checkpoint{Segments: map[uint64]uint{}, Revoked: map[uint64]bool{}}
}

// fuzzSeeds are the interesting shapes: a base image, a delta image
// with tombstones, an empty image, and a commit marker (wrong magic for
// Decode, but it exercises the early paths).
func fuzzSeeds(t testing.TB) [][]byte {
	var out [][]byte
	for _, delta := range []bool{false, true} {
		hdr := Header{Node: 0, Gen: 2, Parent: 1, Cycle: 100, Delta: delta}
		if !delta {
			hdr.Parent = 2
		}
		cp := syntheticImage(delta)
		enc, err := encodeTB(hdr, cp)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, enc)
	}
	empty, err := encodeTB(Header{Gen: 1, Parent: 1}, emptyImage())
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, empty)
	out = append(out, encodeMarker(&genInfo{gen: 1, parent: 1, cycle: 5,
		files: []memberInfo{{name: "gen00000001-node00.ckpt", size: 10, crc: 1}}}))
	out = append(out, []byte(magicImage), nil)
	return out
}

// FuzzCheckpointDecode: arbitrary bytes must never panic the decoder,
// and every rejection must be a typed *FormatError. Valid inputs must
// re-encode canonically.
func FuzzCheckpointDecode(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, cp, err := Decode(data)
		if err != nil {
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("decode error %T is not *FormatError: %v", err, err)
			}
			return
		}
		// Anything the decoder accepts must survive a canonical round
		// trip — otherwise corrupt-but-accepted states could propagate.
		if _, err := encodeTB(hdr, cp); err != nil {
			t.Fatalf("accepted image fails re-encode: %v", err)
		}
		// Marker decoding shares the reader; throw the bytes at it too.
		if _, err := decodeMarker(data); err != nil {
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("marker error %T is not *FormatError: %v", err, err)
			}
		}
	})
}

// TestSeedCorpusCommitted keeps the committed corpus honest: every file
// under testdata/fuzz/FuzzCheckpointDecode must be a well-formed corpus
// entry whose bytes run through the fuzz property without failing.
func TestSeedCorpusCommitted(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzCheckpointDecode")
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("committed seed corpus missing: %v", err)
	}
	if len(ents) == 0 {
		t.Fatal("committed seed corpus is empty")
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		body, err := corpusBytes(data)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if _, _, err := Decode(body); err != nil {
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("%s: error %T is not *FormatError", e.Name(), err)
			}
		}
	}
}

// corpusBytes parses the "go test fuzz v1" single-[]byte entry format.
func corpusBytes(data []byte) ([]byte, error) {
	lines := splitLines(string(data))
	if len(lines) < 2 || lines[0] != "go test fuzz v1" {
		return nil, fmt.Errorf("not a v1 corpus entry")
	}
	var s string
	if _, err := fmt.Sscanf(lines[1], "[]byte(%q)", &s); err != nil {
		// Quoted strings with escapes need Unquote, not Sscanf.
		raw := lines[1]
		if len(raw) < len("[]byte()") || raw[:7] != "[]byte(" || raw[len(raw)-1] != ')' {
			return nil, fmt.Errorf("entry is not a []byte literal")
		}
		u, err := strconv.Unquote(raw[7 : len(raw)-1])
		if err != nil {
			return nil, err
		}
		return []byte(u), nil
	}
	return []byte(s), nil
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// TestWriteSeedCorpus regenerates testdata/fuzz/FuzzCheckpointDecode
// from fuzzSeeds. Gated: run with PERSIST_WRITE_CORPUS=1 after a format
// change, then commit the result.
func TestWriteSeedCorpus(t *testing.T) {
	if os.Getenv("PERSIST_WRITE_CORPUS") == "" {
		t.Skip("corpus generator; set PERSIST_WRITE_CORPUS=1 to regenerate")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzCheckpointDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range fuzzSeeds(t) {
		entry := "go test fuzz v1\n[]byte(" + strconv.Quote(string(s)) + ")\n"
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(entry), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
