// Package persist is the durable side of checkpointing: a versioned,
// checksummed, crash-safe on-disk store for incremental checkpoint
// chains (kernel.CheckpointIncremental).
//
// Layout of one image file (all integers little-endian):
//
//	magic   "MMCKPT01"                       8 bytes
//	kind    u8   (1 = base, 2 = delta)
//	node    u32  (node id within the generation)
//	gen     u64  (generation number, 1-based)
//	parent  u64  (previous generation; == gen for a base)
//	cycle   u64  (barrier cycle the generation was captured at)
//	nsect   u32  (always 6)
//	hcrc    u32  (CRC-32/IEEE of every header byte above)
//	6 ×  section: id u8, len u64, crc u32 (of payload), payload
//
// Sections appear in a fixed order — meta(1), threads(2), resident(3),
// swapped(4), dropped(5), swapdropped(6) — and every record has a fixed
// size, so the decoder can validate counts against payload lengths
// exactly. Decode never panics on arbitrary bytes; every malformed
// input produces a typed *FormatError (FuzzCheckpointDecode holds the
// line).
//
// A generation is a set of image files (one per node) plus a commit
// marker written last (store.go); torn or corrupted generations are
// detected by the marker/CRCs and restore falls back to an older intact
// one.
package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/vm"
	"repro/internal/word"
)

// sortedKeysU64U returns m's keys ascending (deterministic encoding).
func sortedKeysU64U(m map[uint64]uint) []uint64 {
	ks := make([]uint64, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

func sortedKeysU64B(m map[uint64]bool) []uint64 {
	ks := make([]uint64, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

const (
	magicImage  = "MMCKPT01"
	magicMarker = "MMCKOK01"

	kindBase  = 1
	kindDelta = 2

	secMeta        = 1
	secThreads     = 2
	secResident    = 3
	secSwapped     = 4
	secDropped     = 5
	secSwapDropped = 6
	numSections    = 6

	wordsPerPage = vm.PageSize / word.BytesPerWord // 512
	tagmapBytes  = wordsPerPage / 8                // 64
	pageBytes    = tagmapBytes + wordsPerPage*8    // packed page payload

	headerBytes = 8 + 1 + 4 + 8 + 8 + 8 + 4 // magic..nsect, before hcrc

	threadRecBytes = 8 + 1 + 8 + 9 + 16*9 // domain, state, instret, ip, regs
)

// FormatError is the decoder's only failure mode: every torn,
// truncated, bit-rotted or impossible input maps to one, never a panic
// and never a partially-populated image.
type FormatError struct {
	Msg string
}

func (e *FormatError) Error() string { return "persist: " + e.Msg }

func formatErrf(format string, args ...any) *FormatError {
	return &FormatError{Msg: fmt.Sprintf(format, args...)}
}

// CorruptionDetected marks decode failures as explicit corruption
// detections for the fault-injection audit (docs/ROBUSTNESS.md).
func (e *FormatError) CorruptionDetected() bool { return true }

// Header is the identity of one image file within a store.
type Header struct {
	Node   uint32
	Gen    uint64
	Parent uint64 // == Gen for a base image
	Cycle  uint64
	Delta  bool
}

// --- encoding ----------------------------------------------------------

type sectionBuf struct {
	id  byte
	buf []byte
}

func (s *sectionBuf) u8(v byte) { s.buf = append(s.buf, v) }
func (s *sectionBuf) u32(v uint32) {
	s.buf = binary.LittleEndian.AppendUint32(s.buf, v)
}
func (s *sectionBuf) u64(v uint64) {
	s.buf = binary.LittleEndian.AppendUint64(s.buf, v)
}

func (s *sectionBuf) word(w word.Word) {
	if w.Tag {
		s.u8(1)
	} else {
		s.u8(0)
	}
	s.u64(w.Bits)
}

// page appends one page record: vaddr, frame (resident only), packed
// tag bitmap, then the 512 data words.
func (s *sectionBuf) page(img kernel.PageImage, withFrame bool) {
	s.u64(img.VAddr)
	if withFrame {
		s.u64(img.Frame)
	}
	var tags [tagmapBytes]byte
	for i, w := range img.Words {
		if w.Tag {
			tags[i/8] |= 1 << (i % 8)
		}
	}
	s.buf = append(s.buf, tags[:]...)
	for _, w := range img.Words {
		s.u64(w.Bits)
	}
}

// Encode writes cp as one image file body. Page images must hold
// exactly one page of words (kernel captures always do).
func Encode(w io.Writer, hdr Header, cp *kernel.Checkpoint) error {
	for _, img := range cp.Resident {
		if len(img.Words) != wordsPerPage {
			return formatErrf("encode: resident page %#x has %d words, want %d", img.VAddr, len(img.Words), wordsPerPage)
		}
	}
	for _, img := range cp.Swapped {
		if len(img.Words) != wordsPerPage {
			return formatErrf("encode: swapped page %#x has %d words, want %d", img.VAddr, len(img.Words), wordsPerPage)
		}
	}
	if hdr.Delta != cp.Delta {
		return formatErrf("encode: header kind disagrees with image (delta=%v vs %v)", hdr.Delta, cp.Delta)
	}

	meta := sectionBuf{id: secMeta}
	meta.u64(cp.RegionBase)
	meta.u64(uint64(cp.RegionLog))
	meta.u64(uint64(cp.NextDomain))
	meta.u32(uint32(len(cp.Segments)))
	for _, b := range sortedKeysU64U(cp.Segments) {
		meta.u64(b)
		meta.u64(uint64(cp.Segments[b]))
	}
	meta.u32(uint32(len(cp.Revoked)))
	for _, b := range sortedKeysU64B(cp.Revoked) {
		meta.u64(b)
	}

	ths := sectionBuf{id: secThreads}
	ths.u32(uint32(len(cp.Threads)))
	for _, ti := range cp.Threads {
		ths.u64(uint64(ti.Domain))
		ths.u8(byte(ti.State))
		ths.u64(ti.Instret)
		ths.word(ti.IPWord)
		for _, r := range ti.Regs {
			ths.word(r)
		}
	}

	res := sectionBuf{id: secResident}
	res.u32(uint32(len(cp.Resident)))
	for _, img := range cp.Resident {
		res.page(img, true)
	}
	swp := sectionBuf{id: secSwapped}
	swp.u32(uint32(len(cp.Swapped)))
	for _, img := range cp.Swapped {
		swp.page(img, false)
	}
	drp := sectionBuf{id: secDropped}
	drp.u32(uint32(len(cp.Dropped)))
	for _, p := range cp.Dropped {
		drp.u64(p)
	}
	sdr := sectionBuf{id: secSwapDropped}
	sdr.u32(uint32(len(cp.SwapDropped)))
	for _, p := range cp.SwapDropped {
		sdr.u64(p)
	}

	hb := make([]byte, 0, headerBytes+4)
	hb = append(hb, magicImage...)
	kind := byte(kindBase)
	if cp.Delta {
		kind = kindDelta
	}
	hb = append(hb, kind)
	hb = binary.LittleEndian.AppendUint32(hb, hdr.Node)
	hb = binary.LittleEndian.AppendUint64(hb, hdr.Gen)
	hb = binary.LittleEndian.AppendUint64(hb, hdr.Parent)
	hb = binary.LittleEndian.AppendUint64(hb, hdr.Cycle)
	hb = binary.LittleEndian.AppendUint32(hb, numSections)
	hb = binary.LittleEndian.AppendUint32(hb, crc32.ChecksumIEEE(hb))
	if _, err := w.Write(hb); err != nil {
		return err
	}
	for _, s := range []*sectionBuf{&meta, &ths, &res, &swp, &drp, &sdr} {
		sh := make([]byte, 0, 13)
		sh = append(sh, s.id)
		sh = binary.LittleEndian.AppendUint64(sh, uint64(len(s.buf)))
		sh = binary.LittleEndian.AppendUint32(sh, crc32.ChecksumIEEE(s.buf))
		if _, err := w.Write(sh); err != nil {
			return err
		}
		if _, err := w.Write(s.buf); err != nil {
			return err
		}
	}
	return nil
}

// --- decoding ----------------------------------------------------------

// reader is a bounds-checked cursor over the raw bytes; every read that
// would run past the end reports false instead of slicing out of range.
type reader struct {
	b   []byte
	off int
}

func (r *reader) remaining() int { return len(r.b) - r.off }

func (r *reader) u8() (byte, bool) {
	if r.remaining() < 1 {
		return 0, false
	}
	v := r.b[r.off]
	r.off++
	return v, true
}

func (r *reader) u32() (uint32, bool) {
	if r.remaining() < 4 {
		return 0, false
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, true
}

func (r *reader) u64() (uint64, bool) {
	if r.remaining() < 8 {
		return 0, false
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, true
}

func (r *reader) bytes(n int) ([]byte, bool) {
	if n < 0 || r.remaining() < n {
		return nil, false
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v, true
}

func (r *reader) word() (word.Word, bool) {
	tag, ok := r.u8()
	if !ok || tag > 1 {
		return word.Word{}, false
	}
	bits, ok := r.u64()
	if !ok {
		return word.Word{}, false
	}
	return word.Word{Bits: bits, Tag: tag == 1}, true
}

// decodePage reads one page record from a section payload.
func (r *reader) decodePage(withFrame bool) (kernel.PageImage, bool) {
	var img kernel.PageImage
	var ok bool
	if img.VAddr, ok = r.u64(); !ok {
		return img, false
	}
	if withFrame {
		if img.Frame, ok = r.u64(); !ok {
			return img, false
		}
	}
	tags, ok := r.bytes(tagmapBytes)
	if !ok {
		return img, false
	}
	img.Words = make([]word.Word, wordsPerPage)
	for i := range img.Words {
		bits, ok := r.u64()
		if !ok {
			return img, false
		}
		img.Words[i] = word.Word{Bits: bits, Tag: tags[i/8]&(1<<(i%8)) != 0}
	}
	return img, true
}

// Decode parses one image file body. Arbitrary input never panics: any
// malformed byte stream yields a *FormatError.
func Decode(data []byte) (Header, *kernel.Checkpoint, error) {
	var hdr Header
	r := &reader{b: data}
	magic, ok := r.bytes(8)
	if !ok || string(magic) != magicImage {
		return hdr, nil, formatErrf("bad magic")
	}
	kind, ok1 := r.u8()
	node, ok2 := r.u32()
	gen, ok3 := r.u64()
	parent, ok4 := r.u64()
	cycle, ok5 := r.u64()
	nsect, ok6 := r.u32()
	hcrc, ok7 := r.u32()
	if !(ok1 && ok2 && ok3 && ok4 && ok5 && ok6 && ok7) {
		return hdr, nil, formatErrf("truncated header")
	}
	if crc32.ChecksumIEEE(data[:headerBytes]) != hcrc {
		return hdr, nil, formatErrf("header checksum mismatch")
	}
	if kind != kindBase && kind != kindDelta {
		return hdr, nil, formatErrf("unknown image kind %d", kind)
	}
	if nsect != numSections {
		return hdr, nil, formatErrf("image declares %d sections, want %d", nsect, numSections)
	}
	hdr = Header{Node: node, Gen: gen, Parent: parent, Cycle: cycle, Delta: kind == kindDelta}
	if !hdr.Delta && hdr.Parent != hdr.Gen {
		return hdr, nil, formatErrf("base image with parent %d != gen %d", hdr.Parent, hdr.Gen)
	}

	cp := &kernel.Checkpoint{Delta: hdr.Delta}
	for want := byte(secMeta); want <= secSwapDropped; want++ {
		id, ok1 := r.u8()
		slen, ok2 := r.u64()
		scrc, ok3 := r.u32()
		if !(ok1 && ok2 && ok3) {
			return hdr, nil, formatErrf("truncated section header (section %d)", want)
		}
		if id != want {
			return hdr, nil, formatErrf("section %d out of order (got id %d)", want, id)
		}
		if slen > uint64(r.remaining()) {
			return hdr, nil, formatErrf("section %d claims %d bytes, %d remain", id, slen, r.remaining())
		}
		payload, _ := r.bytes(int(slen))
		if crc32.ChecksumIEEE(payload) != scrc {
			return hdr, nil, formatErrf("section %d checksum mismatch", id)
		}
		if err := decodeSection(cp, id, payload); err != nil {
			return hdr, nil, err
		}
	}
	if r.remaining() != 0 {
		return hdr, nil, formatErrf("%d trailing bytes after last section", r.remaining())
	}
	return hdr, cp, nil
}

// decodeSection parses one section payload into cp; the payload must be
// consumed exactly.
func decodeSection(cp *kernel.Checkpoint, id byte, payload []byte) error {
	r := &reader{b: payload}
	switch id {
	case secMeta:
		rb, ok1 := r.u64()
		rl, ok2 := r.u64()
		nd, ok3 := r.u64()
		if !(ok1 && ok2 && ok3) {
			return formatErrf("truncated meta section")
		}
		if rl > 64 {
			return formatErrf("impossible region log %d", rl)
		}
		cp.RegionBase, cp.RegionLog, cp.NextDomain = rb, uint(rl), int(nd)
		nseg, ok := r.u32()
		if !ok || uint64(nseg)*16 > uint64(r.remaining()) {
			return formatErrf("truncated segment table")
		}
		cp.Segments = make(map[uint64]uint, nseg)
		for i := uint32(0); i < nseg; i++ {
			base, _ := r.u64()
			logLen, ok := r.u64()
			if !ok || logLen > 64 {
				return formatErrf("bad segment record %d", i)
			}
			cp.Segments[base] = uint(logLen)
		}
		nrev, ok := r.u32()
		if !ok || uint64(nrev)*8 != uint64(r.remaining()) {
			return formatErrf("revocation list length mismatch")
		}
		cp.Revoked = make(map[uint64]bool, nrev)
		for i := uint32(0); i < nrev; i++ {
			base, _ := r.u64()
			cp.Revoked[base] = true
		}
	case secThreads:
		n, ok := r.u32()
		if !ok || uint64(n)*threadRecBytes != uint64(r.remaining()) {
			return formatErrf("thread section length mismatch")
		}
		for i := uint32(0); i < n; i++ {
			var ti kernel.ThreadImage
			dom, _ := r.u64()
			state, _ := r.u8()
			if state > byte(machine.Faulted) {
				return formatErrf("thread %d has impossible state %d", i, state)
			}
			ti.Domain = int(dom)
			ti.State = machine.ThreadState(state)
			ti.Instret, _ = r.u64()
			var ok bool
			if ti.IPWord, ok = r.word(); !ok {
				return formatErrf("thread %d has malformed IP word", i)
			}
			for j := range ti.Regs {
				if ti.Regs[j], ok = r.word(); !ok {
					return formatErrf("thread %d has malformed register %d", i, j)
				}
			}
			cp.Threads = append(cp.Threads, ti)
		}
	case secResident, secSwapped:
		withFrame := id == secResident
		rec := pageBytes + 8
		if withFrame {
			rec += 8
		}
		n, ok := r.u32()
		if !ok || uint64(n)*uint64(rec) != uint64(r.remaining()) {
			return formatErrf("page section %d length mismatch", id)
		}
		for i := uint32(0); i < n; i++ {
			img, ok := r.decodePage(withFrame)
			if !ok {
				return formatErrf("truncated page record %d in section %d", i, id)
			}
			if img.VAddr&vm.PageMask != 0 || (withFrame && img.Frame&vm.PageMask != 0) {
				return formatErrf("unaligned page record %d in section %d", i, id)
			}
			if withFrame {
				cp.Resident = append(cp.Resident, img)
			} else {
				cp.Swapped = append(cp.Swapped, img)
			}
		}
	case secDropped, secSwapDropped:
		n, ok := r.u32()
		if !ok || uint64(n)*8 != uint64(r.remaining()) {
			return formatErrf("tombstone section %d length mismatch", id)
		}
		for i := uint32(0); i < n; i++ {
			p, _ := r.u64()
			if p&vm.PageMask != 0 {
				return formatErrf("unaligned tombstone in section %d", id)
			}
			if id == secDropped {
				cp.Dropped = append(cp.Dropped, p)
			} else {
				cp.SwapDropped = append(cp.SwapDropped, p)
			}
		}
	}
	return nil
}
