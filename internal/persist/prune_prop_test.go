package persist

import "testing"

// pruneRNG is a tiny deterministic xorshift64* generator so the
// property sweep is reproducible from its seed alone.
type pruneRNG uint64

func (r *pruneRNG) next() uint64 {
	x := uint64(*r)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = pruneRNG(x)
	return x * 0x2545F4914F6CDD1D
}

func (r *pruneRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// TestStorePrunePropertyNeverStrandsBase sweeps randomized
// (baseEvery, generations, keep) triples and checks the Prune
// contract on every one:
//
//  1. the newest keep generations all survive,
//  2. every surviving delta's parent chain resolves, link by link,
//     down to a surviving base (pruning never strands a delta), and
//  3. the store stays restorable: LoadNewestIntact returns the newest
//     generation and every retained generation materializes.
func TestStorePrunePropertyNeverStrandsBase(t *testing.T) {
	rng := pruneRNG(0x9E3779B97F4A7C15)
	for trial := 0; trial < 24; trial++ {
		baseEvery := 1 + rng.intn(5) // 1..5
		gens := 1 + rng.intn(10)     // 1..10
		keep := 1 + rng.intn(gens+2) // 1..gens+2 (over-keep must be a no-op)

		dir := t.TempDir()
		st, err := Open(dir, 1)
		if err != nil {
			t.Fatal(err)
		}
		sv, err := NewSaver(st, baseEvery)
		if err != nil {
			t.Fatal(err)
		}
		k, th := persistKernel(t)
		for g := 0; g < gens; g++ {
			for i := 0; i < 40; i++ {
				k.M.Step()
			}
			if _, err := sv.Capture(k, uint64(40*(g+1))); err != nil {
				t.Fatal(err)
			}
		}
		if th.Done() {
			t.Fatal("workload finished before the chain was captured — lengthen it")
		}

		if err := st.Prune(keep); err != nil {
			t.Fatalf("trial %d (baseEvery=%d gens=%d keep=%d): Prune: %v",
				trial, baseEvery, gens, keep, err)
		}
		descs, err := st.Describe()
		if err != nil {
			t.Fatal(err)
		}
		left := make(map[uint64]*GenDesc, len(descs))
		for _, d := range descs {
			left[d.Gen] = d
		}

		// Property 1: the newest keep generations survive untouched.
		wantKeep := keep
		if wantKeep > gens {
			wantKeep = gens
		}
		for g := gens - wantKeep + 1; g <= gens; g++ {
			if _, ok := left[uint64(g)]; !ok {
				t.Fatalf("trial %d (baseEvery=%d gens=%d keep=%d): retained generation %d pruned; left %v",
					trial, baseEvery, gens, keep, g, genNums(descs))
			}
		}

		// Property 2: every surviving delta's chain walks to a
		// surviving base — no retained generation is ever stranded.
		for _, d := range descs {
			cur := d
			for hops := 0; cur.Delta; hops++ {
				if hops > gens {
					t.Fatalf("trial %d: parent cycle at generation %d", trial, d.Gen)
				}
				parent, ok := left[cur.Parent]
				if !ok {
					t.Fatalf("trial %d (baseEvery=%d gens=%d keep=%d): generation %d stranded — parent %d pruned; left %v",
						trial, baseEvery, gens, keep, d.Gen, cur.Parent, genNums(descs))
				}
				cur = parent
			}
		}

		// Property 3: the store is still fully restorable.
		for _, d := range descs {
			if _, _, err := st.LoadGeneration(d.Gen); err != nil {
				t.Fatalf("trial %d: retained generation %d unloadable: %v", trial, d.Gen, err)
			}
		}
		cps, newest, _, err := st.LoadNewestIntact()
		if err != nil {
			t.Fatalf("trial %d (baseEvery=%d gens=%d keep=%d): LoadNewestIntact: %v",
				trial, baseEvery, gens, keep, err)
		}
		if newest != uint64(gens) {
			t.Fatalf("trial %d: LoadNewestIntact restored %d, want %d", trial, newest, gens)
		}
		if len(cps) != 1 || cps[0] == nil {
			t.Fatalf("trial %d: LoadNewestIntact returned %d checkpoints", trial, len(cps))
		}
	}
}

func genNums(descs []*GenDesc) []uint64 {
	out := make([]uint64, len(descs))
	for i, d := range descs {
		out[i] = d.Gen
	}
	return out
}
