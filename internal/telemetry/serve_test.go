package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestIntrospection(t *testing.T) (*httptest.Server, *Tracer) {
	t.Helper()
	reg := NewRegistry()
	var cycles uint64 = 1234
	reg.Counter("machine.cycles", func() uint64 { return cycles })
	h := NewHistogram()
	h.Observe(5)
	reg.RegisterHistogram("machine.hist.domain_switch", h)
	tr := NewTracer(16)
	tr.EnableAll()
	for i := 0; i < 5; i++ {
		tr.Emit(Event{Cycle: uint64(i), Kind: EvFault, Thread: -1, Cluster: -1, Domain: -1})
	}
	ts := httptest.NewServer(NewServeMux(reg, tr))
	t.Cleanup(ts.Close)
	return ts, tr
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServeEndpoints(t *testing.T) {
	ts, _ := newTestIntrospection(t)

	code, body := get(t, ts.URL+"/healthz")
	if code != 200 || body != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}

	code, body = get(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	s := parsePromText(t, body)
	if s["machine_cycles"] != 1234 {
		t.Errorf("machine_cycles = %v\n%s", s["machine_cycles"], body)
	}
	if s["machine_hist_domain_switch_count"] != 1 {
		t.Errorf("histogram count = %v", s["machine_hist_domain_switch_count"])
	}

	code, body = get(t, ts.URL+"/metrics.json")
	if code != 200 {
		t.Fatalf("/metrics.json = %d", code)
	}
	var snap map[string]float64
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("metrics.json does not parse: %v", err)
	}
	if snap["machine.cycles"] != 1234 {
		t.Errorf("json machine.cycles = %v", snap["machine.cycles"])
	}

	code, body = get(t, ts.URL+"/trace?n=3")
	if code != 200 {
		t.Fatalf("/trace = %d", code)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 3 {
		t.Fatalf("trace lines = %d, want 3", len(lines))
	}
	var ev struct {
		Cycle uint64 `json:"cycle"`
		Kind  string `json:"kind"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Cycle != 2 || ev.Kind != "fault" {
		t.Errorf("first trace line = %+v (want the 3rd-from-last event)", ev)
	}

	if code, _ := get(t, ts.URL+"/trace?n=bogus"); code != http.StatusBadRequest {
		t.Errorf("bad n = %d, want 400", code)
	}
}

func TestServeBindsAndCloses(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x", func() uint64 { return 1 })
	srv, addr, err := Serve("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, body := get(t, "http://"+addr.String()+"/metrics")
	if code != 200 || !strings.Contains(body, "x 1") {
		t.Errorf("served metrics = %d %q", code, body)
	}
	code, body = get(t, "http://"+addr.String()+"/trace")
	if code != 200 || strings.TrimSpace(body) != "" {
		t.Errorf("nil-tracer trace = %d %q", code, body)
	}
}
