package telemetry

import (
	"net"
	"net/http"
	"strconv"
)

// NewServeMux builds the introspection HTTP mux over a registry and an
// optional tracer:
//
//	/metrics       Prometheus text exposition (gauges + histograms)
//	/metrics.json  one indented JSON snapshot object
//	/healthz       "ok" — liveness for scrapers and the mmtop smoke test
//	/trace?n=K     last K retained tracer events as JSON Lines (all
//	               retained events when n is absent; empty without a tracer)
//
// Handlers only read: they snapshot the registry and copy the tracer
// ring, both safe against a concurrently running simulation, so the
// server can be mounted on a live mmsim without a stop-the-world.
func NewServeMux(reg *Registry, tr *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, reg)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.Snapshot().WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		var events []Event
		if tr != nil {
			events = tr.Events()
		}
		if s := req.URL.Query().Get("n"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			if n < len(events) {
				events = events[len(events)-n:]
			}
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = WriteJSONLines(w, events)
	})
	return mux
}

// Serve binds addr (":0" picks a free port) and serves the
// introspection mux on it in a background goroutine. It returns the
// server — shut it down with (*http.Server).Close — and the bound
// address, so callers that asked for :0 can report where they landed.
func Serve(addr string, reg *Registry, tr *Tracer) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: NewServeMux(reg, tr)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}
