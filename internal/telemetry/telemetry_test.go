package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestRegistrySnapshotAndDelta(t *testing.T) {
	reg := NewRegistry()
	var cycles uint64
	reg.Counter("machine.cycles", func() uint64 { return cycles })
	reg.Register("machine.ipc", func() float64 { return 0.5 })

	s1 := reg.Snapshot()
	if got := s1.Get("machine.cycles"); got != 0 {
		t.Errorf("cycles = %v, want 0", got)
	}
	cycles = 40
	s2 := reg.Snapshot()
	d := s2.Delta(s1)
	if d.Get("machine.cycles") != 40 {
		t.Errorf("delta cycles = %v, want 40", d.Get("machine.cycles"))
	}
	if d.Get("machine.ipc") != 0 {
		t.Errorf("delta ipc = %v, want 0", d.Get("machine.ipc"))
	}
	if names := reg.Names(); len(names) != 2 || names[0] != "machine.cycles" {
		t.Errorf("names = %v", names)
	}
}

func TestRegistryReregisterReplaces(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x", func() uint64 { return 1 })
	reg.Counter("x", func() uint64 { return 2 })
	if len(reg.Names()) != 1 {
		t.Fatalf("names = %v", reg.Names())
	}
	if v := reg.Snapshot().Get("x"); v != 2 {
		t.Errorf("x = %v, want 2 (replaced sampler)", v)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	s := Snapshot{"machine.cycles": 100, "cache.l1.misses": 7}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back map[string]float64
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back["machine.cycles"] != 100 || back["cache.l1.misses"] != 7 {
		t.Errorf("round trip = %v", back)
	}
	if !strings.Contains(s.String(), "machine.cycles 100") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestTracerMaskAndRing(t *testing.T) {
	tr := NewTracer(4)
	tr.Emit(Event{Kind: EvFault}) // nothing enabled: dropped
	if tr.Total() != 0 {
		t.Fatal("disabled kind recorded")
	}
	tr.Enable(EvFault)
	if !tr.Enabled(EvFault) || tr.Enabled(EvTrap) {
		t.Fatal("mask wrong")
	}
	for i := 0; i < 6; i++ {
		tr.Emit(Event{Cycle: uint64(i), Kind: EvFault})
	}
	tr.Emit(Event{Kind: EvTrap}) // still disabled
	evs := tr.Events()
	if len(evs) != 4 || evs[0].Cycle != 2 || evs[3].Cycle != 5 {
		t.Errorf("ring = %+v", evs)
	}
	if tr.Total() != 6 {
		t.Errorf("total = %d, want 6", tr.Total())
	}
	tr.Disable(EvFault)
	if tr.Enabled(EvFault) {
		t.Fatal("disable failed")
	}
}

func TestTracerSinkReceivesEvents(t *testing.T) {
	tr := NewTracer(8)
	tr.EnableAll()
	var got []Event
	tr.Attach(SinkFunc(func(ev Event) { got = append(got, ev) }))
	tr.Emit(Event{Cycle: 9, Kind: EvTrap, Thread: 1, Cluster: 0, Domain: 2, Code: 16})
	if len(got) != 1 || got[0].Code != 16 {
		t.Fatalf("sink got %+v", got)
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	tr := NewTracer(1024)
	tr.EnableAll()
	var n int
	tr.Attach(SinkFunc(func(Event) { n++ })) // serialized under the tracer lock
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Emit(Event{Cycle: uint64(i), Kind: Kind(i % int(numKinds)), Thread: g})
			}
		}(g)
	}
	wg.Wait()
	if tr.Total() != 4000 || n != 4000 {
		t.Errorf("total = %d, sink saw %d, want 4000", tr.Total(), n)
	}
}

func TestEventJSONHasKindName(t *testing.T) {
	b, err := json.Marshal(Event{Cycle: 3, Kind: EvTLBMiss, Thread: -1, Cluster: -1, Domain: -1, Addr: 0x1000})
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, want := range []string{`"kind":"tlb-miss"`, `"cycle":3`, `"addr":4096`} {
		if !strings.Contains(s, want) {
			t.Errorf("json %s missing %s", s, want)
		}
	}
}

func TestJSONLinesExport(t *testing.T) {
	var buf bytes.Buffer
	evs := []Event{
		{Cycle: 1, Kind: EvInstr, Detail: "addi r2, r2, 1"},
		{Cycle: 2, Kind: EvFault, Code: 1, Detail: "tag fault"},
	}
	if err := WriteJSONLines(&buf, evs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	for _, l := range lines {
		var m map[string]interface{}
		if err := json.Unmarshal([]byte(l), &m); err != nil {
			t.Fatalf("line %q: %v", l, err)
		}
	}
}

func TestChromeTraceExportParses(t *testing.T) {
	var buf bytes.Buffer
	evs := []Event{
		{Cycle: 1, Kind: EvInstr, Thread: 0, Cluster: 0, Domain: 1, Detail: "ld r2, r1, 0"},
		{Cycle: 2, Kind: EvTLBMiss, Thread: 0, Cluster: 0, Domain: -1, Addr: 0x2000},
		{Cycle: 3, Kind: EvGCPhase, Thread: -1, Cluster: -1, Domain: -1, Code: 1, Detail: "mark"},
		{Cycle: 9, Kind: EvGCPhase, Thread: -1, Cluster: -1, Domain: -1, Code: 0, Detail: "mark"},
	}
	if err := WriteChromeTrace(&buf, evs); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			TS    uint64 `json:"ts"`
			PID   int    `json:"pid"`
			TID   int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace does not parse: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("records = %d, want 4", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Phase != "X" || doc.TraceEvents[0].Name != "ld r2, r1, 0" {
		t.Errorf("instr record = %+v", doc.TraceEvents[0])
	}
	if doc.TraceEvents[2].Phase != "B" || doc.TraceEvents[3].Phase != "E" {
		t.Errorf("gc phases = %+v %+v", doc.TraceEvents[2], doc.TraceEvents[3])
	}
}

func TestProfilerFlatReport(t *testing.T) {
	p := NewProfiler(1)
	for i := 0; i < 90; i++ {
		p.Sample(0x1000)
	}
	for i := 0; i < 10; i++ {
		p.Sample(0x2000)
	}
	top := p.Top(1, nil)
	if len(top) != 1 || top[0].Addr != 0x1000 || top[0].Samples != 90 {
		t.Fatalf("top = %+v", top)
	}
	rep := p.Report(10, func(addr uint64) string {
		if addr == 0x1000 {
			return "loop+0x0"
		}
		return ""
	})
	for _, want := range []string{"100 samples", "loop+0x0", "90.0%", "0x2000"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestProfilerInterval(t *testing.T) {
	p := NewProfiler(10)
	for i := 0; i < 100; i++ {
		p.Sample(uint64(0x100))
	}
	if p.Samples() != 10 {
		t.Errorf("samples = %d, want 10", p.Samples())
	}
}

func TestProfilerConcurrent(t *testing.T) {
	p := NewProfiler(1)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				p.Sample(uint64(i % 7))
			}
		}()
	}
	wg.Wait()
	if p.Samples() != 4000 {
		t.Errorf("samples = %d", p.Samples())
	}
}
