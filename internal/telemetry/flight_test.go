package telemetry

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
)

func TestFlightRecorderRingAndDump(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 6; i++ {
		f.Record(Event{Cycle: uint64(i), Kind: EvFault, Thread: -1, Cluster: -1, Domain: -1})
	}
	evs := f.Events()
	if len(evs) != 4 || evs[0].Cycle != 2 || evs[3].Cycle != 5 {
		t.Fatalf("ring = %+v", evs)
	}
	if f.Total() != 6 {
		t.Errorf("total = %d", f.Total())
	}

	dump := f.DumpString("machine fault", 3)
	sc := bufio.NewScanner(strings.NewReader(dump))
	if !sc.Scan() {
		t.Fatal("empty dump")
	}
	var hdr struct {
		Flight bool   `json:"flight"`
		Reason string `json:"reason"`
		Node   int    `json:"node"`
		Events int    `json:"events"`
		Total  uint64 `json:"total"`
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		t.Fatalf("header %q: %v", sc.Text(), err)
	}
	if !hdr.Flight || hdr.Reason != "machine fault" || hdr.Node != 3 || hdr.Events != 4 || hdr.Total != 6 {
		t.Errorf("header = %+v", hdr)
	}
	n := 0
	for sc.Scan() {
		var m map[string]interface{}
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("event line %q: %v", sc.Text(), err)
		}
		n++
	}
	if n != 4 {
		t.Errorf("dump carried %d events, want 4", n)
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record(Event{Kind: EvFault})
	f.Note(1, EvFault, "nothing")
	if f.Events() != nil || f.Total() != 0 {
		t.Error("nil recorder retained events")
	}
	dump := f.DumpString("give-up", -1)
	if !strings.Contains(dump, `"events":0`) {
		t.Errorf("nil dump = %q", dump)
	}
}

func TestFlightRecorderNote(t *testing.T) {
	f := NewFlightRecorder(8)
	f.Note(42, EvNoCMsg, "transport give-up dst=3")
	evs := f.Events()
	if len(evs) != 1 || evs[0].Cycle != 42 || evs[0].Detail != "transport give-up dst=3" {
		t.Errorf("note = %+v", evs)
	}
}
