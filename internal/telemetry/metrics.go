package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Registry maps hierarchical metric names ("machine.cycles",
// "cache.l1.misses", "vm.tlb.misses", …) to sampler functions over the
// live counters of each subsystem. Sampling is pull-based: registering
// costs one closure, and the counters themselves stay plain struct
// fields on the hot path — a Snapshot reads them all at once.
type Registry struct {
	mu       sync.Mutex
	names    []string
	samplers map[string]func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{samplers: make(map[string]func() float64)}
}

// Register binds name to a gauge sampler. Re-registering a name
// replaces its sampler (a machine rebuilt between runs re-registers).
func (r *Registry) Register(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.samplers[name]; !ok {
		r.names = append(r.names, name)
	}
	r.samplers[name] = fn
}

// Counter binds name to a monotone uint64 counter sampler.
func (r *Registry) Counter(name string, fn func() uint64) {
	r.Register(name, func() float64 { return float64(fn()) })
}

// Names returns the registered metric names in sorted order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]string(nil), r.names...)
	sort.Strings(out)
	return out
}

// Snapshot samples every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := make(Snapshot, len(r.samplers))
	for name, fn := range r.samplers {
		s[name] = fn()
	}
	return s
}

// Snapshot is one point-in-time sample of a registry: metric name →
// value. It marshals to JSON with sorted keys (encoding/json orders map
// keys), so snapshots diff cleanly.
type Snapshot map[string]float64

// Delta returns s − prev per metric. Metrics absent from prev are
// treated as starting at zero; metrics absent from s are dropped (the
// sampler went away with its subsystem).
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	out := make(Snapshot, len(s))
	for name, v := range s {
		out[name] = v - prev[name]
	}
	return out
}

// Get returns the value of name, or 0 if absent.
func (s Snapshot) Get(name string) float64 { return s[name] }

// WriteJSON writes the snapshot as one indented JSON object.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// String renders "name value" lines in sorted order — the human flavor
// of WriteJSON.
func (s Snapshot) String() string {
	names := make([]string, 0, len(s))
	for name := range s {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		v := s[name]
		if v == float64(int64(v)) {
			fmt.Fprintf(&b, "%s %d\n", name, int64(v))
		} else {
			fmt.Fprintf(&b, "%s %g\n", name, v)
		}
	}
	return b.String()
}
