package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Registry maps hierarchical metric names ("machine.cycles",
// "cache.l1.misses", "vm.tlb.misses", …) to sampler functions over the
// live counters of each subsystem. Sampling is pull-based: registering
// costs one closure, and the counters themselves stay plain struct
// fields on the hot path — a Snapshot reads them all at once.
//
// A Registry value is a view onto shared state: Sub returns a view that
// prepends a prefix to every name it registers, so one subsystem's
// RegisterMetrics can be mounted several times under distinct subtrees
// (the multicomputer mounts each node's machine under "node.<id>.").
type Registry struct {
	prefix string
	s      *regState
}

// regState is the storage every view of a registry shares.
type regState struct {
	mu       sync.Mutex
	names    []string
	samplers map[string]func() float64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{s: &regState{samplers: make(map[string]func() float64)}}
}

// Sub returns a view of the registry that registers every name under
// prefix (the caller includes any separator: "node.3."). Snapshots,
// Names and exposition are shared with the parent — a Sub is an
// addressing convenience, not a second registry.
func (r *Registry) Sub(prefix string) *Registry {
	return &Registry{prefix: r.prefix + prefix, s: r.s}
}

// Register binds name to a gauge sampler. Re-registering a name
// replaces its sampler (a machine rebuilt between runs re-registers).
func (r *Registry) Register(name string, fn func() float64) {
	name = r.prefix + name
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	if _, ok := r.s.samplers[name]; !ok {
		r.s.names = append(r.s.names, name)
	}
	r.s.samplers[name] = fn
}

// Counter binds name to a monotone uint64 counter sampler.
func (r *Registry) Counter(name string, fn func() uint64) {
	r.Register(name, func() float64 { return float64(fn()) })
}

// RegisterHistogram publishes h under name: derived summary gauges
// (name.count, name.sum, name.mean, name.p50, name.p95, name.p99,
// name.max) appear in every Snapshot, and the Prometheus exposition
// additionally renders the full cumulative bucket series
// (WritePrometheus). Re-registering a name replaces the histogram.
func (r *Registry) RegisterHistogram(name string, h *Histogram) {
	name = r.prefix + name
	r.s.mu.Lock()
	if r.s.hists == nil {
		r.s.hists = make(map[string]*Histogram)
	}
	r.s.hists[name] = h
	r.s.mu.Unlock()
	// The derived gauges go through the plain sampler path so JSON
	// snapshots, deltas, and mmtop see them without special cases.
	sub := &Registry{s: r.s}
	sub.Counter(name+".count", h.Count)
	sub.Counter(name+".sum", h.Sum)
	sub.Register(name+".mean", h.Mean)
	sub.Counter(name+".p50", func() uint64 { return h.Quantile(0.50) })
	sub.Counter(name+".p95", func() uint64 { return h.Quantile(0.95) })
	sub.Counter(name+".p99", func() uint64 { return h.Quantile(0.99) })
	sub.Counter(name+".max", h.Max)
}

// Histograms returns the registered histograms by name (a copy of the
// table; the histograms themselves are live).
func (r *Registry) Histograms() map[string]*Histogram {
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	out := make(map[string]*Histogram, len(r.s.hists))
	for name, h := range r.s.hists {
		out[name] = h
	}
	return out
}

// Names returns the registered metric names in sorted order.
func (r *Registry) Names() []string {
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	out := append([]string(nil), r.s.names...)
	sort.Strings(out)
	return out
}

// Snapshot samples every registered metric. The sampler table is copied
// under the registry lock but the samplers run unlocked, so a sampler
// may itself use the registry (register, snapshot, sub-view) without
// deadlocking, and a slow sampler never blocks concurrent registration.
func (r *Registry) Snapshot() Snapshot {
	r.s.mu.Lock()
	type namedSampler struct {
		name string
		fn   func() float64
	}
	table := make([]namedSampler, 0, len(r.s.samplers))
	for name, fn := range r.s.samplers {
		table = append(table, namedSampler{name, fn})
	}
	r.s.mu.Unlock()
	s := make(Snapshot, len(table))
	for _, ns := range table {
		s[ns.name] = ns.fn()
	}
	return s
}

// Snapshot is one point-in-time sample of a registry: metric name →
// value. It marshals to JSON with sorted keys (encoding/json orders map
// keys), so snapshots diff cleanly.
type Snapshot map[string]float64

// Delta returns s − prev per metric. Metrics absent from prev are
// treated as starting at zero; metrics absent from s are dropped (the
// sampler went away with its subsystem).
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	out := make(Snapshot, len(s))
	for name, v := range s {
		out[name] = v - prev[name]
	}
	return out
}

// Get returns the value of name, or 0 if absent.
func (s Snapshot) Get(name string) float64 { return s[name] }

// WriteJSON writes the snapshot as one indented JSON object.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// String renders "name value" lines in sorted order — the human flavor
// of WriteJSON.
func (s Snapshot) String() string {
	names := make([]string, 0, len(s))
	for name := range s {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		v := s[name]
		if v == float64(int64(v)) {
			fmt.Fprintf(&b, "%s %d\n", name, int64(v))
		} else {
			fmt.Fprintf(&b, "%s %g\n", name, v)
		}
	}
	return b.String()
}
