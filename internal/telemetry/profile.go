package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Profiler attributes issue slots to instruction addresses by sampling
// every Interval-th Sample call (Interval 1 records everything, which
// on a one-instruction-per-cycle machine is an exact cycle
// attribution). The simulator calls Sample at instruction issue; the
// flat report ranks addresses — or symbols, when the caller can map
// addresses back to labels — by attributed samples.
type Profiler struct {
	mu       sync.Mutex
	interval uint64
	n        uint64
	counts   map[uint64]uint64
	total    uint64
}

// NewProfiler returns a profiler sampling every interval-th event
// (interval < 1 means every event).
func NewProfiler(interval uint64) *Profiler {
	if interval < 1 {
		interval = 1
	}
	return &Profiler{interval: interval, counts: make(map[uint64]uint64)}
}

// Sample records one issue at addr (subject to the sampling interval).
func (p *Profiler) Sample(addr uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.n++
	if p.n%p.interval != 0 {
		return
	}
	p.counts[addr]++
	p.total++
}

// Samples returns the number of recorded (post-interval) samples.
func (p *Profiler) Samples() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total
}

// HotSpot is one profile entry.
type HotSpot struct {
	Addr    uint64
	Symbol  string
	Samples uint64
}

// Top returns the top-n addresses by samples (all of them if n <= 0),
// symbolized through symbolize when non-nil.
func (p *Profiler) Top(n int, symbolize func(addr uint64) string) []HotSpot {
	p.mu.Lock()
	spots := make([]HotSpot, 0, len(p.counts))
	for addr, c := range p.counts {
		spots = append(spots, HotSpot{Addr: addr, Samples: c})
	}
	p.mu.Unlock()
	sort.Slice(spots, func(i, j int) bool {
		if spots[i].Samples != spots[j].Samples {
			return spots[i].Samples > spots[j].Samples
		}
		return spots[i].Addr < spots[j].Addr
	})
	if n > 0 && len(spots) > n {
		spots = spots[:n]
	}
	for i := range spots {
		if symbolize != nil {
			spots[i].Symbol = symbolize(spots[i].Addr)
		}
		if spots[i].Symbol == "" {
			spots[i].Symbol = fmt.Sprintf("%#x", spots[i].Addr)
		}
	}
	return spots
}

// Report renders a flat hot-spot profile of the top-n addresses with
// per-entry and cumulative percentages.
func (p *Profiler) Report(n int, symbolize func(addr uint64) string) string {
	total := p.Samples()
	var b strings.Builder
	fmt.Fprintf(&b, "flat profile: %d samples\n", total)
	if total == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%8s  %6s  %6s  %s\n", "samples", "flat%", "cum%", "location")
	var cum uint64
	for _, s := range p.Top(n, symbolize) {
		cum += s.Samples
		fmt.Fprintf(&b, "%8d  %5.1f%%  %5.1f%%  %s\n",
			s.Samples, 100*float64(s.Samples)/float64(total), 100*float64(cum)/float64(total), s.Symbol)
	}
	return b.String()
}
