package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram()
	h.Observe(0)
	h.Observe(1)
	h.Observe(2)
	h.Observe(3)
	h.Observe(4)
	if got := h.Bucket(0); got != 1 {
		t.Errorf("bucket 0 = %d, want 1 (exactly zero)", got)
	}
	if got := h.Bucket(1); got != 1 {
		t.Errorf("bucket 1 = %d, want 1 ({1})", got)
	}
	if got := h.Bucket(2); got != 2 {
		t.Errorf("bucket 2 = %d, want 2 ([2,3])", got)
	}
	if got := h.Bucket(3); got != 1 {
		t.Errorf("bucket 3 = %d, want 1 ([4,7])", got)
	}
	if h.Count() != 5 || h.Sum() != 10 || h.Max() != 4 {
		t.Errorf("count/sum/max = %d/%d/%d", h.Count(), h.Sum(), h.Max())
	}
}

func TestHistogramExtremes(t *testing.T) {
	h := NewHistogram()
	h.Observe(^uint64(0)) // must not panic or misindex
	if got := h.Bucket(64); got != 1 {
		t.Errorf("top bucket = %d, want 1", got)
	}
	if h.Max() != ^uint64(0) {
		t.Errorf("max = %d", h.Max())
	}
	if q := h.Quantile(1); q != ^uint64(0) {
		t.Errorf("q1 = %d", q)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	// 90 fast observations, 10 slow ones: the p95 must land in the
	// slow bucket — exactly the tail the scalar mean hides.
	for i := 0; i < 90; i++ {
		h.Observe(10) // bucket [8,15]
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000) // bucket [512,1023]
	}
	if q := h.Quantile(0.50); q != 15 {
		t.Errorf("p50 = %d, want 15", q)
	}
	if q := h.Quantile(0.95); q != 1023 {
		t.Errorf("p95 = %d, want 1023", q)
	}
	if q := h.Quantile(0.99); q != 1023 {
		t.Errorf("p99 = %d, want 1023", q)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Observe(5)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Bucket(3) != 0 {
		t.Errorf("reset left state: %s", h.Summary())
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram()
	if !strings.Contains(h.String(), "empty") {
		t.Errorf("empty render = %q", h.String())
	}
	h.Observe(3)
	h.Observe(100)
	s := h.String()
	if !strings.Contains(s, "#") {
		t.Errorf("render has no bars: %q", s)
	}
	sum := h.Summary()
	for _, want := range []string{"count=2", "p50=", "p95=", "max=100"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary %q missing %q", sum, want)
		}
	}
}

// TestHistogramConcurrent drives observers against readers under the
// race detector: the scrape path (Count, Quantile, Bucket) must be
// safe while the hot path records.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				h.Observe(uint64(g*1000 + i))
			}
		}(g)
	}
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = h.Quantile(0.99)
				_ = h.Mean()
				_ = h.Summary()
			}
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()
	if h.Count() != 40000 {
		t.Errorf("count = %d, want 40000", h.Count())
	}
}
