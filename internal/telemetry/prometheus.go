package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// SanitizeMetricName maps a registry name onto the Prometheus metric
// name charset [a-zA-Z_:][a-zA-Z0-9_:]*: dots (the registry's
// hierarchy separator) and every other invalid rune become
// underscores, and a leading digit gains an underscore prefix.
// "node.3.machine.cycles" → "node_3_machine_cycles".
func SanitizeMetricName(name string) string {
	var sb strings.Builder
	sb.Grow(len(name) + 1)
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			sb.WriteByte('_')
			sb.WriteRune(r)
			continue
		}
		if ok {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	if sb.Len() == 0 {
		return "_"
	}
	return sb.String()
}

// formatPromValue renders a sample value the way the Prometheus text
// format expects: shortest exact decimal, exponent notation where Go
// chooses it (the format accepts Go float syntax), so large counters
// round-trip without trailing-zero noise.
func formatPromValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): every plain sampler as a gauge,
// every registered histogram as a native histogram series with
// cumulative le-labelled buckets at the log2 edges plus _sum and
// _count. The derived .count/.sum summary gauges a histogram also
// registers are suppressed here — the histogram series carries them —
// while .mean/.p50/.p95/.p99/.max stay as gauges. Output is sorted by
// name, so consecutive scrapes diff cleanly.
func WritePrometheus(w io.Writer, r *Registry) error {
	snap := r.Snapshot()
	hists := r.Histograms()

	// Names whose value the histogram exposition already carries.
	shadow := make(map[string]bool, 2*len(hists))
	for name := range hists {
		shadow[name+".count"] = true
		shadow[name+".sum"] = true
	}

	names := make([]string, 0, len(snap))
	for name := range snap {
		if !shadow[name] {
			names = append(names, name)
		}
	}
	for name := range hists {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		pname := SanitizeMetricName(name)
		if h, ok := hists[name]; ok {
			if err := writePromHistogram(w, pname, h); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n",
			pname, pname, formatPromValue(snap[name])); err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram renders one histogram as cumulative buckets. The
// log2 bucket edges are emitted up to the last populated bucket; the
// top bucket (values ≥ 2^63) folds into +Inf, which every histogram
// carries regardless.
func writePromHistogram(w io.Writer, pname string, h *Histogram) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pname); err != nil {
		return err
	}
	count := h.Count()
	var cum uint64
	for b := 0; b < HistBuckets-1; b++ {
		cum += h.Bucket(b)
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pname, BucketUpper(b), cum); err != nil {
			return err
		}
		if cum == count {
			break
		}
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
		pname, count, pname, h.Sum(), pname, count)
	return err
}
