package telemetry

import (
	"testing"
	"time"
)

// TestSnapshotSamplerMayUseRegistry is the regression test for the
// Snapshot deadlock: samplers used to run under the registry mutex, so
// any sampler that touched the registry — registering a lazy metric,
// taking a nested snapshot — deadlocked the scrape. Samplers now run
// on a copied table outside the lock.
func TestSnapshotSamplerMayUseRegistry(t *testing.T) {
	reg := NewRegistry()
	reg.Register("self.names", func() float64 { return float64(len(reg.Names())) })
	var nesting bool
	reg.Register("self.nested", func() float64 {
		// A nested snapshot re-enters the registry completely (guarded
		// so the sampler does not recurse into itself forever).
		if nesting {
			return 0
		}
		nesting = true
		defer func() { nesting = false }()
		return reg.Snapshot().Get("self.names")
	})
	reg.Register("self.lazy", func() float64 {
		reg.Counter("self.registered_late", func() uint64 { return 1 })
		return 1
	})

	done := make(chan Snapshot, 1)
	go func() { done <- reg.Snapshot() }()
	select {
	case s := <-done:
		// 3 samplers, plus one more if self.lazy happened to run first
		// (sampler order follows map iteration).
		if n := s.Get("self.names"); n != 3 && n != 4 {
			t.Errorf("self.names = %v, want 3 or 4", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Snapshot deadlocked with a registry-touching sampler")
	}
	if reg.Snapshot().Get("self.registered_late") != 1 {
		t.Error("lazily registered metric missing from later snapshot")
	}
}

func TestRegistrySubPrefixesNames(t *testing.T) {
	reg := NewRegistry()
	for id := 0; id < 3; id++ {
		id := id
		sub := reg.Sub("node." + string(rune('0'+id)) + ".")
		sub.Counter("machine.cycles", func() uint64 { return uint64(100 + id) })
	}
	s := reg.Snapshot()
	for id := 0; id < 3; id++ {
		name := "node." + string(rune('0'+id)) + ".machine.cycles"
		if s.Get(name) != float64(100+id) {
			t.Errorf("%s = %v, want %d", name, s.Get(name), 100+id)
		}
	}
	// Nested subs compose prefixes.
	reg.Sub("a.").Sub("b.").Counter("x", func() uint64 { return 7 })
	if reg.Snapshot().Get("a.b.x") != 7 {
		t.Errorf("nested sub: %v", reg.Snapshot())
	}
}

func TestRegisterHistogramDerivedGauges(t *testing.T) {
	reg := NewRegistry()
	h := NewHistogram()
	reg.RegisterHistogram("machine.hist.remote_rt", h)
	for v := uint64(1); v <= 100; v++ {
		h.Observe(v)
	}
	s := reg.Snapshot()
	if got := s.Get("machine.hist.remote_rt.count"); got != 100 {
		t.Errorf("count = %v", got)
	}
	if got := s.Get("machine.hist.remote_rt.sum"); got != 5050 {
		t.Errorf("sum = %v", got)
	}
	if got := s.Get("machine.hist.remote_rt.mean"); got != 50.5 {
		t.Errorf("mean = %v", got)
	}
	if got := s.Get("machine.hist.remote_rt.max"); got != 100 {
		t.Errorf("max = %v", got)
	}
	// p50 of 1..100 lands in the bucket covering 50 → upper edge 63.
	if got := s.Get("machine.hist.remote_rt.p50"); got != 63 {
		t.Errorf("p50 = %v, want 63", got)
	}
	if got := s.Get("machine.hist.remote_rt.p99"); got != 127 {
		t.Errorf("p99 = %v, want 127", got)
	}
	if hs := reg.Histograms(); hs["machine.hist.remote_rt"] != h {
		t.Error("Histograms() does not return the registered histogram")
	}
}

func TestRegisterHistogramUnderSub(t *testing.T) {
	reg := NewRegistry()
	h := NewHistogram()
	reg.Sub("node.5.").RegisterHistogram("noc.hist.retransmit", h)
	h.Observe(8)
	if got := reg.Snapshot().Get("node.5.noc.hist.retransmit.count"); got != 1 {
		t.Errorf("prefixed histogram count = %v", got)
	}
	if _, ok := reg.Histograms()["node.5.noc.hist.retransmit"]; !ok {
		t.Errorf("prefixed histogram missing from Histograms(): %v", reg.Histograms())
	}
}
