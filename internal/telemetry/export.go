package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSONLSink streams each event as one JSON object per line (JSON
// Lines). Attach it to a tracer, then check Err after the run.
type JSONLSink struct {
	w   io.Writer
	err error
}

// NewJSONLSink wraps w.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

// Emit writes one line; the first write error sticks and suppresses
// further output.
func (s *JSONLSink) Emit(ev Event) {
	if s.err != nil {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		s.err = err
		return
	}
	b = append(b, '\n')
	_, s.err = s.w.Write(b)
}

// Err returns the first write or marshal error.
func (s *JSONLSink) Err() error { return s.err }

// ChromeSink streams events in Chrome trace_event JSON ("JSON Array
// Format"), loadable in chrome://tracing and Perfetto. Cycles map to
// microsecond timestamps 1:1, clusters to pids and threads to tids, so
// the viewer lays issued instructions out per thread with protection
// events as instant markers. Close finishes the array.
type ChromeSink struct {
	w   io.Writer
	n   int
	err error
}

// NewChromeSink writes the trace header to w.
func NewChromeSink(w io.Writer) *ChromeSink {
	s := &ChromeSink{w: w}
	_, s.err = io.WriteString(w, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	return s
}

// Emit appends one trace record.
func (s *ChromeSink) Emit(ev Event) {
	if s.err != nil {
		return
	}
	rec := chromeRecord(ev)
	b, err := json.Marshal(rec)
	if err != nil {
		s.err = err
		return
	}
	if s.n > 0 {
		b = append([]byte(",\n"), b...)
	}
	s.n++
	_, s.err = s.w.Write(b)
}

// Close terminates the JSON array; the sink must not be used after.
func (s *ChromeSink) Close() error {
	if s.err != nil {
		return s.err
	}
	_, s.err = io.WriteString(s.w, "\n]}\n")
	return s.err
}

// Err returns the first write or marshal error.
func (s *ChromeSink) Err() error { return s.err }

// chromeEvent is one trace_event record.
type chromeEvent struct {
	Name  string                 `json:"name"`
	Cat   string                 `json:"cat"`
	Phase string                 `json:"ph"`
	TS    uint64                 `json:"ts"`
	Dur   uint64                 `json:"dur,omitempty"`
	PID   int                    `json:"pid"`
	TID   int                    `json:"tid"`
	Scope string                 `json:"s,omitempty"`
	ID    string                 `json:"id,omitempty"`
	Args  map[string]interface{} `json:"args,omitempty"`
}

// chromeRecord maps an Event onto the trace_event schema: instructions
// become 1-cycle complete ("X") slices, GC phases become begin/end
// ("B"/"E") slices, causal spans become async begin/end ("b"/"e")
// records keyed by the span ID — the viewer draws the requesting side
// and the remote work it caused as one nestable flow even though they
// land on different pid/tid lanes — and everything else a thread-scoped
// instant ("i").
func chromeRecord(ev Event) chromeEvent {
	rec := chromeEvent{
		Cat:   ev.Kind.String(),
		TS:    ev.Cycle,
		PID:   ev.Cluster,
		TID:   ev.Thread,
		Phase: "i",
		Scope: "t",
	}
	if rec.PID < 0 {
		rec.PID = 0
	}
	if rec.TID < 0 {
		rec.TID = 0
	}
	name := ev.Kind.String()
	if ev.Detail != "" {
		name = ev.Detail
	}
	rec.Name = name
	switch ev.Kind {
	case EvInstr:
		rec.Phase, rec.Scope, rec.Dur = "X", "", 1
	case EvGCPhase:
		rec.Scope = ""
		if ev.Code != 0 {
			rec.Phase = "B"
		} else {
			rec.Phase = "E"
		}
	case EvSpanBegin, EvSpanEnd:
		rec.Scope = ""
		rec.Cat = "span"
		rec.ID = fmt.Sprintf("%#x", ev.Span)
		if ev.Kind == EvSpanBegin {
			rec.Phase = "b"
		} else {
			rec.Phase = "e"
		}
	}
	args := map[string]interface{}{}
	if ev.Addr != 0 {
		args["addr"] = fmt.Sprintf("%#x", ev.Addr)
	}
	if ev.Code != 0 && ev.Kind != EvGCPhase {
		args["code"] = ev.Code
	}
	if ev.Trace != 0 {
		args["trace"] = fmt.Sprintf("%#x", ev.Trace)
	}
	if ev.Parent != 0 {
		args["parent"] = fmt.Sprintf("%#x", ev.Parent)
	}
	if ev.Domain >= 0 {
		args["domain"] = ev.Domain
	}
	if len(args) > 0 {
		rec.Args = args
	}
	return rec
}

// WriteJSONLines writes events as JSON Lines to w.
func WriteJSONLines(w io.Writer, events []Event) error {
	s := NewJSONLSink(w)
	for _, ev := range events {
		s.Emit(ev)
	}
	return s.Err()
}

// WriteChromeTrace writes events as one Chrome trace_event document.
func WriteChromeTrace(w io.Writer, events []Event) error {
	s := NewChromeSink(w)
	for _, ev := range events {
		s.Emit(ev)
	}
	return s.Close()
}
