package telemetry

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"
)

// HistBuckets is the fixed bucket count of a Histogram: bucket b holds
// observations v with bits.Len64(v) == b, i.e. bucket 0 is exactly
// {0}, bucket b ≥ 1 is [2^(b-1), 2^b). 65 buckets cover the full
// uint64 range, so Observe never range-checks.
const HistBuckets = 65

// Histogram is a fixed-bucket log2 latency histogram. Observe is
// allocation-free and wait-free (three uncontended atomic adds), so
// rare-event paths — a domain switch, a remote round trip, a TLB
// refill, a transport retransmit — can record into it while a metrics
// server scrapes concurrently. The log2 buckets trade fine resolution
// for zero configuration: cycle-latency distributions in this simulator
// span five orders of magnitude, and the paper's claims are about the
// shape of the tail, which powers of two resolve.
//
// The zero value is ready to use. All methods are safe for concurrent
// use; readers see each observation's count/sum/bucket effects settle
// independently, which for monotone counters only ever under-reports a
// scrape taken mid-observation by one sample.
type Histogram struct {
	buckets [HistBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketOf maps an observation to its bucket index.
func bucketOf(v uint64) int { return bits.Len64(v) }

// BucketUpper returns the inclusive upper edge of bucket b (the value
// reported for quantiles resolved to that bucket).
func BucketUpper(b int) uint64 {
	if b <= 0 {
		return 0
	}
	if b >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(b) - 1
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Max returns the largest observed value (0 when empty).
func (h *Histogram) Max() uint64 { return h.max.Load() }

// Mean returns the arithmetic mean of the observations (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Bucket returns the count in bucket b.
func (h *Histogram) Bucket(b int) uint64 {
	if b < 0 || b >= HistBuckets {
		return 0
	}
	return h.buckets[b].Load()
}

// Quantile returns an upper bound for the q-quantile (0 < q ≤ 1): the
// upper edge of the first bucket at which the cumulative count reaches
// q·Count. Returns 0 when the histogram is empty. The bound is exact
// to within the bucket's factor-of-two width, which is the resolution
// the log2 layout buys.
func (h *Histogram) Quantile(q float64) uint64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// ceil(q·total) without float rounding surprises at the edges.
	rank := uint64(q * float64(total))
	if float64(rank) < q*float64(total) || rank == 0 {
		rank++
	}
	var cum uint64
	for b := 0; b < HistBuckets; b++ {
		cum += h.buckets[b].Load()
		if cum >= rank {
			return BucketUpper(b)
		}
	}
	return h.max.Load()
}

// Reset zeroes the histogram. Not atomic with respect to concurrent
// Observe calls; callers quiesce writers first (experiment harness use).
func (h *Histogram) Reset() {
	for b := range h.buckets {
		h.buckets[b].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}

// Summary renders a one-line "count=… mean=… p50=… p95=… p99=… max=…"
// digest, the text face of the derived gauges RegisterHistogram exports.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("count=%d mean=%.1f p50=%d p95=%d p99=%d max=%d",
		h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max())
}

// String renders the populated buckets as "[lo,hi] count" lines with a
// proportional bar, for quick terminal inspection.
func (h *Histogram) String() string {
	total := h.Count()
	if total == 0 {
		return "(empty)\n"
	}
	var peak uint64
	for b := 0; b < HistBuckets; b++ {
		if n := h.Bucket(b); n > peak {
			peak = n
		}
	}
	var sb strings.Builder
	for b := 0; b < HistBuckets; b++ {
		n := h.Bucket(b)
		if n == 0 {
			continue
		}
		lo := uint64(0)
		if b > 0 {
			lo = BucketUpper(b-1) + 1
		}
		bar := strings.Repeat("#", int(1+n*39/peak))
		fmt.Fprintf(&sb, "[%12d,%12d] %10d %s\n", lo, BucketUpper(b), n, bar)
	}
	return sb.String()
}
