package telemetry

import (
	"encoding/json"
	"io"
	"strings"
	"sync"
)

// FlightRecorder keeps the last few hundred events of one node in a
// bounded ring so that when something dies — a machine fault, a hung
// watchdog, a transport give-up — the moments leading up to it can be
// dumped and attached to the failure report. Unlike a Tracer it has no
// kind mask, no sinks and no export pipeline: it is meant to run
// always-on, recording a deliberately sparse event stream (faults,
// traps, domain swaps, retransmits, notes) whose per-event cost is one
// mutex acquisition and one slot store.
//
// A nil *FlightRecorder is legal at every method; the disabled path is
// a nil check, mirroring the Tracer convention.
type FlightRecorder struct {
	mu    sync.Mutex
	ring  []Event
	next  int
	full  bool
	total uint64
}

// DefaultFlightSize bounds the retained history when the caller does
// not choose one — enough to cover the interesting run-up to a crash
// without holding a whole trace.
const DefaultFlightSize = 256

// NewFlightRecorder returns a recorder retaining the last size events
// (DefaultFlightSize if size <= 0).
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		size = DefaultFlightSize
	}
	return &FlightRecorder{ring: make([]Event, size)}
}

// Record appends one event, overwriting the oldest when full.
func (f *FlightRecorder) Record(ev Event) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.ring[f.next] = ev
	f.next++
	if f.next == len(f.ring) {
		f.next = 0
		f.full = true
	}
	f.total++
	f.mu.Unlock()
}

// Note records a free-form annotation — the recorder's printf — stamped
// with the given cycle and kind.
func (f *FlightRecorder) Note(cycle uint64, kind Kind, detail string) {
	f.Record(Event{Cycle: cycle, Kind: kind, Thread: -1, Cluster: -1, Domain: -1, Detail: detail})
}

// Total returns the number of events recorded since creation (including
// those the ring has overwritten). Zero on a nil recorder.
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// Events returns the retained events in recording order (nil on a nil
// recorder).
func (f *FlightRecorder) Events() []Event {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.full {
		return append([]Event(nil), f.ring[:f.next]...)
	}
	out := make([]Event, 0, len(f.ring))
	out = append(out, f.ring[f.next:]...)
	out = append(out, f.ring[:f.next]...)
	return out
}

// flightHeader is the first line of a dump: why it was taken and how
// much history follows.
type flightHeader struct {
	Flight bool   `json:"flight"`
	Reason string `json:"reason"`
	Node   int    `json:"node"`
	Events int    `json:"events"`
	Total  uint64 `json:"total"`
}

// Dump writes the retained history as JSON Lines: one header object
// ({"flight":true,"reason":…,"node":…,"events":…,"total":…}) followed
// by one event per line, oldest first. node identifies the recorder's
// owner in a multi-node dump (-1 when standalone). A nil recorder dumps
// a header with zero events, so failure paths never special-case it.
func (f *FlightRecorder) Dump(w io.Writer, reason string, node int) error {
	events := f.Events()
	enc := json.NewEncoder(w)
	hdr := flightHeader{Flight: true, Reason: reason, Node: node, Events: len(events), Total: f.Total()}
	if err := enc.Encode(hdr); err != nil {
		return err
	}
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// DumpString is Dump into a string, for attaching to error reports.
func (f *FlightRecorder) DumpString(reason string, node int) string {
	var sb strings.Builder
	_ = f.Dump(&sb, reason, node) // strings.Builder writes cannot fail
	return sb.String()
}
