package telemetry

import (
	"sync"
	"sync/atomic"
)

// Sink receives every enabled event as it is emitted. Sinks run inline
// on the emitting goroutine under the tracer's lock, so they must not
// call back into the tracer.
type Sink interface {
	Emit(ev Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(ev Event)

// Emit calls f.
func (f SinkFunc) Emit(ev Event) { f(ev) }

// Tracer records cycle-stamped events into a bounded ring buffer and
// fans them out to attached sinks. The zero kind mask records nothing;
// Enabled is a single atomic load, so emit sites can gate the cost of
// building an Event on it. A nil *Tracer is legal at every call site
// that checks for it, which is how the simulator's disabled path stays
// free.
type Tracer struct {
	mask atomic.Uint32 // bitmask of enabled kinds

	mu    sync.Mutex
	ring  []Event
	next  int
	full  bool
	total uint64
	sinks []Sink
}

// DefaultRingSize bounds the in-memory event history when the caller
// does not choose one.
const DefaultRingSize = 1 << 16

// NewTracer returns a tracer retaining the last ringSize events
// (DefaultRingSize if ringSize <= 0). No kinds are enabled yet.
func NewTracer(ringSize int) *Tracer {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	return &Tracer{ring: make([]Event, ringSize)}
}

// Enable turns on recording for the given kinds.
func (t *Tracer) Enable(kinds ...Kind) {
	for {
		old := t.mask.Load()
		m := old
		for _, k := range kinds {
			m |= 1 << uint(k)
		}
		if t.mask.CompareAndSwap(old, m) {
			return
		}
	}
}

// EnableAll turns on every declared kind.
func (t *Tracer) EnableAll() { t.Enable(Kinds()...) }

// Disable turns off recording for the given kinds.
func (t *Tracer) Disable(kinds ...Kind) {
	for {
		old := t.mask.Load()
		m := old
		for _, k := range kinds {
			m &^= 1 << uint(k)
		}
		if t.mask.CompareAndSwap(old, m) {
			return
		}
	}
}

// Enabled reports whether events of kind k are currently recorded.
// Emit sites should gate Event construction on it.
func (t *Tracer) Enabled(k Kind) bool {
	return t.mask.Load()&(1<<uint(k)) != 0
}

// Attach adds a sink that will receive every subsequently emitted
// enabled event.
func (t *Tracer) Attach(s Sink) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sinks = append(t.sinks, s)
}

// Emit records ev if its kind is enabled.
func (t *Tracer) Emit(ev Event) {
	if !t.Enabled(ev.Kind) {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ring[t.next] = ev
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.total++
	for _, s := range t.sinks {
		s.Emit(ev)
	}
}

// Total returns the number of events recorded since creation (including
// those the ring has since overwritten).
func (t *Tracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Events returns the retained ring contents in emission order.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]Event(nil), t.ring[:t.next]...)
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}
