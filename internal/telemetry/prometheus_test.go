package telemetry

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// parsePromText is a strict parser for the subset of the Prometheus
// text exposition format WritePrometheus emits: "# TYPE name kind"
// headers and "name[{labels}] value" samples. It fails the test on any
// line that a real Prometheus scraper would reject — bad metric-name
// charset, unparsable value, sample without a preceding TYPE.
func parsePromText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	typed := map[string]string{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "TYPE" {
				t.Fatalf("line %d: bad comment %q", ln+1, line)
			}
			typed[fields[2]] = fields[3]
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator in %q", ln+1, line)
		}
		key, valStr := line[:sp], line[sp+1:]
		name := key
		if br := strings.IndexByte(key, '{'); br >= 0 {
			name = key[:br]
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("line %d: unterminated labels in %q", ln+1, line)
			}
		}
		for i, r := range name {
			ok := r == '_' || r == ':' ||
				(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
				(r >= '0' && r <= '9' && i > 0)
			if !ok {
				t.Fatalf("line %d: invalid metric name %q", ln+1, name)
			}
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if b := strings.TrimSuffix(name, suffix); b != name && typed[b] == "histogram" {
				base = b
			}
		}
		if typed[base] == "" {
			t.Fatalf("line %d: sample %q without TYPE header", ln+1, name)
		}
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
		}
		samples[key] = v
	}
	return samples
}

func TestPrometheusNameSanitization(t *testing.T) {
	cases := map[string]string{
		"machine.cycles":       "machine_cycles",
		"node.3.cache.misses":  "node_3_cache_misses",
		"3starts.with.digit":   "_3starts_with_digit",
		"weird-name/with vals": "weird_name_with_vals",
		"already_fine:colon":   "already_fine:colon",
		"":                     "_",
	}
	for in, want := range cases {
		if got := SanitizeMetricName(in); got != want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPrometheusLargeCounterFormatting(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("big.counter", func() uint64 { return 1 << 62 })
	reg.Counter("max.counter", func() uint64 { return ^uint64(0) })
	reg.Register("small.frac", func() float64 { return 0.25 })
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg); err != nil {
		t.Fatal(err)
	}
	s := parsePromText(t, buf.String())
	if s["big_counter"] != float64(uint64(1)<<62) {
		t.Errorf("big_counter = %v", s["big_counter"])
	}
	if s["max_counter"] != float64(^uint64(0)) {
		t.Errorf("max_counter = %v", s["max_counter"])
	}
	if s["small_frac"] != 0.25 {
		t.Errorf("small_frac = %v", s["small_frac"])
	}
}

func TestPrometheusEmptyRegistry(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, NewRegistry()); err != nil {
		t.Fatal(err)
	}
	if s := parsePromText(t, buf.String()); len(s) != 0 {
		t.Errorf("empty registry produced samples: %v", s)
	}
}

func TestPrometheusHistogramSeries(t *testing.T) {
	reg := NewRegistry()
	h := NewHistogram()
	reg.RegisterHistogram("machine.hist.tlb_refill", h)
	h.Observe(3)  // bucket [2,3]
	h.Observe(3)  // bucket [2,3]
	h.Observe(10) // bucket [8,15]
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	s := parsePromText(t, out)
	if s[`machine_hist_tlb_refill_bucket{le="3"}`] != 2 {
		t.Errorf("le=3 bucket = %v\n%s", s[`machine_hist_tlb_refill_bucket{le="3"}`], out)
	}
	if s[`machine_hist_tlb_refill_bucket{le="15"}`] != 3 {
		t.Errorf("le=15 bucket = %v", s[`machine_hist_tlb_refill_bucket{le="15"}`])
	}
	if s[`machine_hist_tlb_refill_bucket{le="+Inf"}`] != 3 {
		t.Errorf("+Inf bucket = %v", s[`machine_hist_tlb_refill_bucket{le="+Inf"}`])
	}
	if s["machine_hist_tlb_refill_sum"] != 16 || s["machine_hist_tlb_refill_count"] != 3 {
		t.Errorf("sum/count = %v/%v", s["machine_hist_tlb_refill_sum"], s["machine_hist_tlb_refill_count"])
	}
	// The derived .count/.sum gauges are suppressed in favor of the
	// histogram series (they would collide after sanitization), while
	// the quantile gauges come through.
	if strings.Contains(out, "# TYPE machine_hist_tlb_refill_count gauge") {
		t.Error("derived count gauge not suppressed")
	}
	if _, ok := s["machine_hist_tlb_refill_p95"]; !ok {
		t.Error("p95 gauge missing")
	}
	// Cumulative buckets must be monotone.
	if s[`machine_hist_tlb_refill_bucket{le="3"}`] > s[`machine_hist_tlb_refill_bucket{le="15"}`] {
		t.Error("bucket series not cumulative")
	}
}

// TestPrometheusConcurrentScrape scrapes the exposition while samplers'
// backing counters and a histogram are being hammered, under -race:
// the scrape path must be safe against a live simulation.
func TestPrometheusConcurrentScrape(t *testing.T) {
	reg := NewRegistry()
	var cycles atomic.Uint64
	h := NewHistogram()
	reg.Counter("machine.cycles", cycles.Load)
	reg.RegisterHistogram("machine.hist.remote_rt", h)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
				cycles.Add(1)
				h.Observe(i % 4096)
			}
		}
	}()
	wg.Add(1)
	go func() { // registration races the scrape too
		defer wg.Done()
		for i := 0; i < 100; i++ {
			i := i
			reg.Counter(fmt.Sprintf("late.%d", i), func() uint64 { return uint64(i) })
		}
	}()
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := WritePrometheus(&buf, reg); err != nil {
			t.Fatal(err)
		}
		parsePromText(t, buf.String())
	}
	close(stop)
	wg.Wait()
}
