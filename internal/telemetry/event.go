// Package telemetry is the simulator's unified observability layer:
//
//   - a metrics Registry that snapshots every subsystem counter into
//     one hierarchical, named namespace (machine.cycles,
//     cache.l1.misses, vm.tlb.misses, noc.msgs, …) with JSON export and
//     delta support;
//   - a cycle-stamped structured event Tracer (bounded ring buffer,
//     pluggable sinks) covering the protection events the paper's
//     evaluation attributes cycles to — faults, traps, domain swaps,
//     TLB misses/flushes, page faults, swap traffic, GC phases, and
//     NoC messages — exportable as JSON Lines and Chrome trace_event
//     JSON;
//   - a sampling Profiler attributing cycles to instruction addresses.
//
// The package is a leaf: it imports only the standard library, so every
// layer of the stack (machine, cache, vm, noc, kernel) can emit into it
// without import cycles. All types are safe for concurrent use; the
// disabled path (nil tracer / empty mask) is a single pointer or atomic
// check so instrumentation costs nothing when off.
package telemetry

import (
	"encoding/json"
	"fmt"
)

// Kind classifies a traced event.
type Kind uint8

const (
	// EvInstr is one issued instruction (Detail holds the disassembly).
	EvInstr Kind = iota
	// EvFault is a protection or translation fault (Code holds the
	// core.FaultCode value, Detail the error text).
	EvFault
	// EvTrap is a TRAP instruction entering the kernel (Code holds the
	// trap code).
	EvTrap
	// EvDomainSwap is a cluster's issue slot crossing protection
	// domains (Domain holds the incoming domain).
	EvDomainSwap
	// EvTLBMiss is a translation that missed the TLB.
	EvTLBMiss
	// EvTLBFlush is a full TLB flush (Code holds the entries destroyed).
	EvTLBFlush
	// EvPageFault is a reference to a non-resident page.
	EvPageFault
	// EvSwapIn / EvSwapOut are backing-store transfers of one page.
	EvSwapIn
	EvSwapOut
	// EvGCPhase brackets a kernel maintenance phase (Detail names it;
	// Code is 1 for begin, 0 for end).
	EvGCPhase
	// EvNoCMsg is one message injected into the mesh (Code holds the
	// destination node, Addr the source node).
	EvNoCMsg
	// EvCacheMiss is a cache miss that went to the external interface.
	EvCacheMiss
	// EvSpanBegin / EvSpanEnd bracket one leg of a causal span — a
	// remote access or protection crossing whose Trace/Span/Parent IDs
	// tie the requesting side to the work it caused elsewhere (Detail
	// names the operation, Code carries the remote node).
	EvSpanBegin
	EvSpanEnd

	numKinds
)

var kindNames = [...]string{
	EvInstr:      "instr",
	EvFault:      "fault",
	EvTrap:       "trap",
	EvDomainSwap: "domain-swap",
	EvTLBMiss:    "tlb-miss",
	EvTLBFlush:   "tlb-flush",
	EvPageFault:  "page-fault",
	EvSwapIn:     "swap-in",
	EvSwapOut:    "swap-out",
	EvGCPhase:    "gc-phase",
	EvNoCMsg:     "noc-msg",
	EvCacheMiss:  "cache-miss",
	EvSpanBegin:  "span-begin",
	EvSpanEnd:    "span-end",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Kinds returns every declared event kind.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// Event is one cycle-stamped occurrence. Thread, Cluster and Domain are
// -1 when not applicable.
type Event struct {
	Cycle   uint64 `json:"cycle"`
	Kind    Kind   `json:"-"`
	Thread  int    `json:"thread"`
	Cluster int    `json:"cluster"`
	Domain  int    `json:"domain"`
	Addr    uint64 `json:"addr,omitempty"`
	Code    int64  `json:"code,omitempty"`
	Detail  string `json:"detail,omitempty"`

	// Trace/Span/Parent carry causal-span identity on EvSpanBegin /
	// EvSpanEnd events (zero — and omitted from JSON — on every other
	// kind): Trace names the whole causal flow, Span this leg of it, and
	// Parent the span that caused this one (0 for a root).
	Trace  uint64 `json:"trace,omitempty"`
	Span   uint64 `json:"span,omitempty"`
	Parent uint64 `json:"parent,omitempty"`
}

// eventNoMethods drops Event's methods so the embedded marshal below
// does not recurse.
type eventNoMethods Event

// eventJSON is Event with the kind rendered as its name.
type eventJSON struct {
	Kind string `json:"kind"`
	eventNoMethods
}

// MarshalJSON renders the kind as a readable name rather than a number.
func (e Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(eventJSON{Kind: e.Kind.String(), eventNoMethods: eventNoMethods(e)})
}
