package faultinject

import (
	"errors"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/vm"
)

// flightRingSize is the per-recorder flight-ring capacity for trials:
// big enough to hold the events leading to an escape, small enough to
// be free across tens of thousands of injections.
const flightRingSize = 128

// trialResult is one classified injection.
type trialResult struct {
	outcome Outcome
	detail  string // fine-grained mechanism tag for the breakdown table
	// flight is the trial's flight-recorder dump (JSONL), attached only
	// when the outcome is Escaped or an unrecovered detection — the
	// evidence trail for exactly the trials the audit cannot explain.
	flight string

	// Tolerance-stack accounting, all zero in baseline campaigns:
	// repair work the stack performed during the trial.
	restores    uint64 // checkpoint rollbacks
	checkpoints uint64 // verified checkpoints captured
	eccFixed    uint64 // single-bit memory errors corrected
	retransmits uint64 // transport frames re-sent
	dupSupp     uint64 // duplicate frames suppressed

	// Persistence-trial accounting (persist.go), zero elsewhere.
	persistCorrupt  uint64 // generations rejected by checksums/markers
	persistFallback uint64 // restores that fell back past damage

	// Migration-trial accounting (migrate.go), zero elsewhere.
	migrateRetrans uint64 // migration wire frames re-sent
	migrateDupSupp uint64 // duplicate migration frames suppressed
	migrateAborts  uint64 // migrations aborted with the source intact
}

// classifyFault maps a faulted thread's error to an outcome. Explicit
// corruption detections (parity, CRC, machine check) and valid guarded-
// pointer fault codes both count as detected; anything else escaped.
func classifyFault(err error) trialResult {
	if IsCorruptionDetected(err) {
		var (
			pe *mem.ParityError
			te *vm.TLBParityError
			ce *CorruptionError
			ne *noc.PayloadError
		)
		switch {
		case errors.As(err, &pe):
			return trialResult{outcome: Detected, detail: "mem-parity"}
		case errors.As(err, &te):
			return trialResult{outcome: Detected, detail: "tlb-parity"}
		case errors.As(err, &ce):
			return trialResult{outcome: Detected, detail: "reg-parity"}
		case errors.As(err, &ne):
			return trialResult{outcome: Detected, detail: "link-crc"}
		}
		return trialResult{outcome: Detected, detail: "machine-check"}
	}
	if code := core.CodeOf(err); code != core.FaultNone {
		return trialResult{outcome: Detected, detail: "fault-" + code.String()}
	}
	return trialResult{outcome: Escaped, detail: "unexpected-fault"}
}

// runLocalTrial executes one single-node injection: boot the workload,
// run to a seed-chosen cycle, inject one fault of the given class, run
// to completion, classify. Panics anywhere in the trial classify as
// escaped — a fault must never crash the simulator.
func runLocalTrial(w *workload, class Class, seed uint64) (res trialResult) {
	defer func() {
		if r := recover(); r != nil {
			res = trialResult{outcome: Escaped, detail: "panic"}
		}
	}()
	rng := NewRNG(seed)
	k, inj, segs, err := buildLocal(w)
	if err != nil {
		return trialResult{outcome: Escaped, detail: "build-error"}
	}
	defer func() {
		if res.outcome == Escaped && res.flight == "" {
			res.flight = k.M.Flight.DumpString("escaped: "+res.detail, 0)
		}
	}()
	injectAt := 1 + rng.Uint64n(w.clean.cycles)
	k.Run(injectAt)
	detail := injectLocal(class, k, inj, segs, rng)
	k.Run(w.budget)

	for _, t := range k.M.Threads() {
		if t.State == machine.Faulted {
			return classifyFault(t.Fault)
		}
	}
	if !k.M.Done() {
		return trialResult{outcome: Escaped, detail: "hang"}
	}
	// Retirement scrub: latent corruption the run never touched is
	// still explicitly detectable — memory parity sweep, TLB parity
	// sweep, register-file parity.
	if k.M.Space.Phys.Scrub() > 0 {
		return trialResult{outcome: Detected, detail: "scrub-mem"}
	}
	if k.M.Space.TLB.PoisonedEntries() > 0 {
		return trialResult{outcome: Detected, detail: "scrub-tlb"}
	}
	if inj.Armed() {
		return trialResult{outcome: Detected, detail: "scrub-reg"}
	}
	if fingerprintThreads(k.M.Threads()) == w.clean.fp {
		return trialResult{outcome: Masked, detail: detail}
	}
	return trialResult{outcome: Escaped, detail: "silent-divergence"}
}

// injectLocal performs the class's state mutation and returns a detail
// tag describing what was hit (used only for masked-outcome breakdowns;
// detected outcomes are re-tagged by the detection mechanism).
func injectLocal(class Class, k *kernel.Kernel, inj *Injector, segs []core.Pointer, rng *RNG) string {
	switch class {
	case MemBit:
		var paddr uint64
		if len(segs) > 0 && rng.Intn(2) == 0 {
			// Target live data: a word of some thread's segment.
			seg := segs[rng.Intn(len(segs))]
			off := rng.Uint64n(seg.SegSize()/8) * 8
			pa, _, err := k.M.Space.Translate(seg.Addr() + off)
			if err != nil {
				return "no-target"
			}
			paddr = pa
		} else {
			// Anywhere in physical memory (code, tables, free space).
			paddr = rng.Uint64n(k.M.Space.Phys.Words()) * 8
		}
		bit := uint(rng.Intn(65))
		if err := k.M.Space.Phys.FlipBit(paddr, bit); err != nil {
			return "no-target"
		}
		if bit == 64 {
			return "mem-tag-bit"
		}
		return "mem-data-bit"

	case RegBit:
		t := pickLiveThread(k, rng)
		if t == nil {
			return "no-target"
		}
		r := rng.Intn(isa.NumRegs)
		bit := uint(rng.Intn(65))
		w := t.Reg(r)
		if bit == 64 {
			w.Tag = !w.Tag
		} else {
			w.Bits ^= 1 << bit
		}
		t.SetReg(r, w)
		inj.Arm(t, r)
		return "reg-bit"

	case PtrField:
		t := pickLiveThread(k, rng)
		if t == nil {
			return "no-target"
		}
		r := findPointerReg(t, rng)
		if r < 0 {
			return "no-target"
		}
		var bit uint
		var tag string
		switch rng.Intn(3) {
		case 0:
			bit = uint(core.AddrBits+core.LenBits) + uint(rng.Intn(core.PermBits))
			tag = "ptr-perm"
		case 1:
			bit = uint(core.AddrBits) + uint(rng.Intn(core.LenBits))
			tag = "ptr-len"
		default:
			bit = uint(rng.Intn(core.AddrBits))
			tag = "ptr-addr"
		}
		w := t.Reg(r)
		w.Bits ^= 1 << bit
		t.SetReg(r, w)
		inj.Arm(t, r)
		return tag

	case TLBEntry:
		tlb := k.M.Space.TLB
		n := tlb.Size()
		start := rng.Intn(n)
		var xorVPN, xorFrame uint64
		var tag string
		if rng.Intn(2) == 0 {
			xorVPN = 1 << rng.Intn(30)
			tag = "tlb-vpn"
		} else {
			xorFrame = 1 << rng.Intn(20)
			tag = "tlb-frame"
		}
		for j := 0; j < n; j++ {
			if tlb.CorruptEntry((start+j)%n, xorVPN, xorFrame) {
				return tag
			}
		}
		return "no-target"
	}
	return "no-target"
}

// pickLiveThread chooses a not-yet-done thread, or nil if all finished.
func pickLiveThread(k *kernel.Kernel, rng *RNG) *machine.Thread {
	var live []*machine.Thread
	for _, t := range k.M.Threads() {
		if !t.Done() {
			live = append(live, t)
		}
	}
	if len(live) == 0 {
		return nil
	}
	return live[rng.Intn(len(live))]
}

// findPointerReg returns a register of t currently holding a tagged
// word, scanning from a random offset; -1 if none.
func findPointerReg(t *machine.Thread, rng *RNG) int {
	start := rng.Intn(isa.NumRegs)
	for j := 0; j < isa.NumRegs; j++ {
		r := (start + j) % isa.NumRegs
		if t.Reg(r).Tag {
			return r
		}
	}
	return -1
}
