package faultinject

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/telemetry"
	"repro/internal/word"
)

// A workload is one known-good program the campaign injects faults
// into. Each spawned thread gets its own 4KB data segment in r1; every
// workload halts on its own within budget cycles.
type workload struct {
	name    string
	src     string
	threads int
	budget  uint64

	// clean is the uninjected reference run, computed once per
	// campaign: total cycles to completion and the architectural
	// fingerprint every masked trial must reproduce.
	clean cleanRun
}

type cleanRun struct {
	cycles uint64
	fp     uint64
}

// localWorkloads returns the single-node workload set. Fresh instances
// every call: clean-run state is campaign-local.
func localWorkloads() []*workload {
	return []*workload{
		{name: "sweep-sum", threads: 2, budget: 40_000, src: `
			ldi r3, 64
			mov r4, r1
			ldi r5, 7
		wr:	st   r4, 0, r5
			addi r5, r5, 3
			leai r4, r4, 8
			subi r3, r3, 1
			bnez r3, wr
			ldi r3, 64
			mov r4, r1
			ldi r2, 0
		rd:	ld   r6, r4, 0
			add  r2, r2, r6
			leai r4, r4, 8
			subi r3, r3, 1
			bnez r3, rd
			halt
		`},
		{name: "ptr-chase", threads: 2, budget: 40_000, src: `
			ldi r3, 32
			mov r4, r1
		bld:	leai r5, r4, 8
			st   r4, 0, r5
			mov  r4, r5
			subi r3, r3, 1
			bnez r3, bld
			st   r4, 0, r1
			ldi  r3, 200
			mov  r4, r1
		ch:	ld   r4, r4, 0
			subi r3, r3, 1
			bnez r3, ch
			halt
		`},
		{name: "alu-mix", threads: 2, budget: 40_000, src: `
			ldi r3, 300
			ldi r2, 1
			ldi r5, 0
		lp:	add  r5, r5, r2
			addi r2, r2, 3
			xor  r5, r5, r2
			shli r6, r5, 1
			add  r5, r5, r6
			subi r3, r3, 1
			bnez r3, lp
			halt
		`},
		{name: "derive", threads: 2, budget: 40_000, src: fmt.Sprintf(`
			ldi r3, 150
			ldi r2, %d
			mov r6, r1
		lp:	restrict r7, r6, r2
			ld   r8, r7, 0
			leai r6, r6, 8
			subi r3, r3, 1
			bnez r3, lp
			halt
		`, int64(core.PermReadOnly))},
		{name: "byte-ops", threads: 2, budget: 40_000, src: `
			ldi r3, 100
			mov r4, r1
		lp:	ldi  r5, 171
			stb  r4, 0, r5
			ldb  r6, r4, 1
			add  r7, r7, r6
			leai r4, r4, 8
			subi r3, r3, 1
			bnez r3, lp
			halt
		`},
	}
}

// WorkloadSources exposes the campaign workloads' assembly sources by
// name, so the static verifier's experiments and soundness tests can
// analyze the exact programs the injection campaign executes.
func WorkloadSources() map[string]string {
	out := make(map[string]string)
	for _, w := range localWorkloads() {
		out[w.name] = w.src
	}
	return out
}

// buildLocal boots a single-node kernel running w: one cluster, two
// slots, one thread per domain with its own data segment, parity plane
// armed, register-file integrity hook installed.
func buildLocal(w *workload) (*kernel.Kernel, *Injector, []core.Pointer, error) {
	cfg := machine.MMachine()
	cfg.Clusters = 1
	cfg.SlotsPerCluster = 2
	cfg.PhysBytes = 1 << 20
	k, inj, segs, err := buildLocalWith(w, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	k.M.Space.Phys.EnableParity()
	return k, inj, segs, nil
}

// buildLocalWith boots the workload on an arbitrary machine config with
// no memory-protection plane enabled — the caller picks parity
// (baseline campaigns) or ECC (tolerant campaigns) afterwards.
func buildLocalWith(w *workload, cfg machine.Config) (*kernel.Kernel, *Injector, []core.Pointer, error) {
	k, err := kernel.New(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	prog, err := asm.Assemble(w.src)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("faultinject: workload %s: %w", w.name, err)
	}
	inj := &Injector{}
	k.M.Integrity = inj.CheckInst
	// Always-on flight ring: dumped into the trial result only when the
	// outcome escapes classification.
	k.M.Flight = telemetry.NewFlightRecorder(flightRingSize)
	var segs []core.Pointer
	for d := 1; d <= w.threads; d++ {
		ip, err := k.LoadProgram(prog, false)
		if err != nil {
			return nil, nil, nil, err
		}
		seg, err := k.AllocSegment(4096)
		if err != nil {
			return nil, nil, nil, err
		}
		if _, err := k.Spawn(d, ip, map[int]word.Word{1: seg.Word()}); err != nil {
			return nil, nil, nil, err
		}
		segs = append(segs, seg)
	}
	return k, inj, segs, nil
}

// prepare computes the workload's clean reference run.
func (w *workload) prepare() error {
	k, _, _, err := buildLocal(w)
	if err != nil {
		return err
	}
	cycles := k.Run(w.budget)
	if !k.M.Done() {
		return fmt.Errorf("faultinject: workload %s did not finish in %d cycles", w.name, w.budget)
	}
	for _, t := range k.M.Threads() {
		if t.State != machine.Halted {
			return fmt.Errorf("faultinject: workload %s thread %d: %v %v", w.name, t.ID, t.State, t.Fault)
		}
	}
	w.clean = cleanRun{cycles: cycles, fp: fingerprintThreads(k.M.Threads())}
	return nil
}

// fingerprintThreads hashes the architectural outcome of a thread set:
// per-thread state, instruction-pointer address, retired-instruction
// count and full register file (bits and tag). Timing — cycle counts,
// latencies — is deliberately excluded, so delay-class faults that
// change when things happen but not what happened classify as masked.
func fingerprintThreads(threads []*machine.Thread) uint64 {
	h := uint64(1469598103934665603) // FNV-1a offset basis
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	for _, t := range threads {
		mix(uint64(t.ID))
		mix(uint64(t.State))
		mix(t.Instret)
		mix(t.IP.Addr())
		for _, r := range t.Regs {
			mix(r.Bits)
			if r.Tag {
				mix(1)
			} else {
				mix(0)
			}
		}
	}
	return h
}
