package faultinject

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/machine"
	"repro/internal/multi"
	"repro/internal/noc"
	"repro/internal/word"
)

// The mesh workload: a 4×1×1 multicomputer where node 0 runs one
// thread doing dependent remote loads from a segment homed on node 3
// and one thread sweeping a local segment. Nodes 1 and 2 carry no
// threads — they are route-through fabric and, for the node-kill
// class, genuinely redundant hardware.
const meshWatchdog = 6000

type meshClean struct {
	cycles   uint64
	fp       uint64
	messages uint64
}

var meshRemoteSrc = `
	ldi r3, 60
loop:
	ld   r2, r1, 0
	ld   r4, r1, 8
	add  r5, r5, r2
	add  r5, r5, r4
	subi r3, r3, 1
	bnez r3, loop
	halt
`

var meshLocalSrc = `
	ldi r3, 48
	mov r4, r1
	ldi r5, 11
wr:	st   r4, 0, r5
	addi r5, r5, 5
	leai r4, r4, 8
	subi r3, r3, 1
	bnez r3, wr
	ldi r3, 48
	mov r4, r1
rd:	ld   r6, r4, 0
	add  r7, r7, r6
	leai r4, r4, 8
	subi r3, r3, 1
	bnez r3, rd
	halt
`

// buildMesh boots the fault-campaign multicomputer with the watchdog
// armed and, optionally, an interceptor on the fabric.
func buildMesh(ic noc.Interceptor) (*multi.System, error) {
	cfg := multi.DefaultConfig()
	cfg.Mesh = noc.Config{DimX: 4, DimY: 1, DimZ: 1, RouterLatency: 2, InjectLatency: 1}
	cfg.Node.PhysBytes = 1 << 20
	cfg.Node.Clusters = 1
	cfg.Node.SlotsPerCluster = 2
	cfg.WatchdogCycles = meshWatchdog
	s, err := multi.New(cfg)
	if err != nil {
		return nil, err
	}
	s.Net.Interceptor = ic
	s.EnableFlight(flightRingSize)
	if err := loadMeshWorkload(s, 3); err != nil {
		return nil, err
	}
	return s, nil
}

// loadMeshWorkload places the two-thread mesh workload on node 0 with
// the remote thread's segment homed on node farNode.
func loadMeshWorkload(s *multi.System, farNode int) error {
	far, err := s.Nodes[farNode].K.AllocSegment(4096)
	if err != nil {
		return err
	}
	remote, err := asm.Assemble(meshRemoteSrc)
	if err != nil {
		return err
	}
	local, err := asm.Assemble(meshLocalSrc)
	if err != nil {
		return err
	}
	ipR, err := s.Nodes[0].K.LoadProgram(remote, false)
	if err != nil {
		return err
	}
	if _, err := s.Nodes[0].K.Spawn(1, ipR, map[int]word.Word{1: far.Word()}); err != nil {
		return err
	}
	near, err := s.Nodes[0].K.AllocSegment(4096)
	if err != nil {
		return err
	}
	ipL, err := s.Nodes[0].K.LoadProgram(local, false)
	if err != nil {
		return err
	}
	if _, err := s.Nodes[0].K.Spawn(2, ipL, map[int]word.Word{1: near.Word()}); err != nil {
		return err
	}
	return nil
}

// meshThreads collects every thread in the system for fingerprinting.
func meshThreads(s *multi.System) []*machine.Thread {
	var all []*machine.Thread
	for _, n := range s.Nodes {
		all = append(all, n.K.M.Threads()...)
	}
	return all
}

// prepareMesh runs the uninjected mesh workload once: reference cycle
// count, fingerprint, and total message count (the NoC classes pick
// their victim message out of this population).
func prepareMesh() (*meshClean, error) {
	s, err := buildMesh(nil)
	if err != nil {
		return nil, err
	}
	cycles := s.Run(1_000_000)
	if !s.Done() || s.Hung() {
		return nil, fmt.Errorf("faultinject: clean mesh run did not finish (hung=%v)", s.Hung())
	}
	for _, t := range meshThreads(s) {
		if t.State != machine.Halted {
			return nil, fmt.Errorf("faultinject: clean mesh thread %d: %v %v", t.ID, t.State, t.Fault)
		}
	}
	return &meshClean{
		cycles:   cycles,
		fp:       fingerprintThreads(meshThreads(s)),
		messages: s.Net.Stats().Messages,
	}, nil
}

// classifyMesh classifies a completed (or stopped) mesh trial,
// attaching the system's flight-recorder dump to escaped outcomes.
func classifyMesh(s *multi.System, clean *meshClean, maskDetail string) trialResult {
	return attachMeshFlight(s, classifyMeshBare(s, clean, maskDetail))
}

func classifyMeshBare(s *multi.System, clean *meshClean, maskDetail string) trialResult {
	for _, t := range meshThreads(s) {
		if t.State == machine.Faulted {
			return classifyFault(t.Fault)
		}
	}
	if s.Hung() {
		return trialResult{outcome: Detected, detail: "watchdog"}
	}
	if !s.Done() {
		return trialResult{outcome: Escaped, detail: "timeout"}
	}
	if fingerprintThreads(meshThreads(s)) == clean.fp {
		return trialResult{outcome: Masked, detail: maskDetail}
	}
	return trialResult{outcome: Escaped, detail: "silent-divergence"}
}

// attachMeshFlight captures every flight recorder in the system into r
// when r is an outcome the audit cannot explain away: an escape, or a
// detection the tolerance stack should have repaired but did not.
func attachMeshFlight(s *multi.System, r trialResult) trialResult {
	if r.outcome == Escaped || strings.HasPrefix(r.detail, "unrecovered-") {
		var b strings.Builder
		if err := s.FlightDump(&b, r.detail); err == nil {
			r.flight = b.String()
		}
	}
	return r
}

// runNoCTrial injects one message fault of the given class into the
// mesh workload and classifies the outcome.
func runNoCTrial(class Class, clean *meshClean, seed uint64) (res trialResult) {
	defer func() {
		if r := recover(); r != nil {
			res = trialResult{outcome: Escaped, detail: "panic"}
		}
	}()
	rng := NewRNG(seed)
	var fate noc.Fate
	var maskDetail string
	switch class {
	case NoCDrop:
		fate.Drop = true
		maskDetail = "drop"
	case NoCDuplicate:
		fate.Duplicate = true
		maskDetail = "duplicate"
	case NoCCorrupt:
		fate.Corrupt = true
		maskDetail = "corrupt"
	case NoCDelay:
		fate.Delay = 1 + rng.Uint64n(400)
		maskDetail = "delay"
	default:
		return trialResult{outcome: Escaped, detail: "bad-class"}
	}
	mf := &MessageFaulter{Target: rng.Uint64n(clean.messages), Fate: fate}
	s, err := buildMesh(mf)
	if err != nil {
		return trialResult{outcome: Escaped, detail: "build-error"}
	}
	s.Run(clean.cycles*3 + 4*meshWatchdog)
	return classifyMesh(s, clean, maskDetail)
}

// runNodeTrial kills or stalls one node mid-run and classifies the
// outcome: a load-bearing node trips the watchdog (detected), an idle
// node's death is survivable redundancy (masked), and a bounded stall
// is a transient the fabric rides out (masked).
func runNodeTrial(class Class, clean *meshClean, seed uint64) (res trialResult) {
	defer func() {
		if r := recover(); r != nil {
			res = trialResult{outcome: Escaped, detail: "panic"}
		}
	}()
	rng := NewRNG(seed)
	s, err := buildMesh(nil)
	if err != nil {
		return trialResult{outcome: Escaped, detail: "build-error"}
	}
	injectAt := 1 + rng.Uint64n(clean.cycles*3/4)
	s.Run(injectAt)
	victim := rng.Intn(len(s.Nodes))
	var maskDetail string
	switch class {
	case NodeKill:
		s.Kill(victim)
		maskDetail = fmt.Sprintf("kill-node%d", victim)
	case NodeStall:
		s.Stall(victim, s.Cycle()+1+rng.Uint64n(2000))
		maskDetail = "stall"
	default:
		return trialResult{outcome: Escaped, detail: "bad-class"}
	}
	s.Run(clean.cycles*3 + 4*meshWatchdog)
	return classifyMesh(s, clean, maskDetail)
}
