package faultinject

import (
	"strings"
	"testing"
)

// The migration-fault campaign's gate: every class is Tolerated — the
// lossy-wire classes commit by retransmission (never by restarting the
// migration), the source/standby/cutover classes abort with the source
// intact and the run finishing on the never-migrated fingerprint. Zero
// unrecovered, zero divergence, zero masked (every trial must actually
// exercise its fault).
func TestMigrateCampaignGate(t *testing.T) {
	cfg := DefaultMigrateCampaign()
	cfg.MigrateTrials = 5 // full 25/class is E29's job
	res, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(migrateClasses) * cfg.MigrateTrials; res.Trials != want {
		t.Fatalf("trials = %d, want %d", res.Trials, want)
	}
	if res.Detected != 0 {
		t.Errorf("%d unrecovered migration faults", res.Detected)
	}
	if res.Escaped != 0 {
		t.Errorf("%d escapes (divergence, stale commit, or hang)", res.Escaped)
	}
	if res.Tolerated != res.Trials {
		t.Errorf("tolerated %d of %d trials", res.Tolerated, res.Trials)
	}
	if res.MigrateRetransmits == 0 {
		t.Error("no lossy-wire trial recovered by retransmission")
	}
	if res.MigrateDupSupp == 0 {
		t.Error("no duplicate-frame trial exercised suppression")
	}
	// src-kill, standby-crash and cutover trials all abort.
	if want := uint64(3 * cfg.MigrateTrials); res.MigrateAborts != want {
		t.Errorf("aborts = %d, want %d", res.MigrateAborts, want)
	}
	for _, c := range migrateClasses {
		if res.Classes[c].Trials != cfg.MigrateTrials {
			t.Errorf("class %v ran %d trials, want %d", c, res.Classes[c].Trials, cfg.MigrateTrials)
		}
	}
	tbl := res.Table()
	for _, want := range []string{"migrate-src-kill", "migration frames retransmitted", "migration aborts rolled back"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
}

// Same seed → byte-identical campaign table, workers notwithstanding.
func TestMigrateCampaignDeterministic(t *testing.T) {
	cfg := DefaultMigrateCampaign()
	cfg.MigrateTrials = 3
	a, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1
	b, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Table() != b.Table() {
		t.Fatalf("campaign not deterministic:\n%s\nvs\n%s", a.Table(), b.Table())
	}
}

// A campaign without migration trials must not mention them — E23/E24/
// E28 tables stay byte-identical to the pre-migration audit.
func TestMigrateRowsAbsentWithoutTrials(t *testing.T) {
	cfg := DefaultTolerantCampaign()
	cfg.LocalTrials, cfg.MeshTrials, cfg.NodeTrials = 8, 4, 2
	res, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Table()
	if strings.Contains(tbl, "migrat") {
		t.Fatalf("migration rows leaked into a non-migration campaign:\n%s", tbl)
	}
}

// Fixture invariant: the unfaulted probe migration must be iterative
// (≥2 rounds) and wide enough (≥5 frames) that every fault class has a
// real population to aim at.
func TestMigrateFixtureShape(t *testing.T) {
	fx, err := prepareMigrateFixture()
	if err != nil {
		t.Fatal(err)
	}
	if fx.fp == 0 {
		t.Error("fixture fingerprint is zero")
	}
	if fx.rounds < 2 {
		t.Errorf("probe migration took %d rounds, want iterative pre-copy", fx.rounds)
	}
	if fx.frames < 5 {
		t.Errorf("probe migration sent %d frames", fx.frames)
	}
}
