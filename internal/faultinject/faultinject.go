// Package faultinject is a deterministic fault injector and
// protection-audit harness for the guarded-pointer machine.
//
// A campaign (see audit.go) runs thousands of trials; each trial boots
// a fresh system, runs a known-good workload to a pseudo-random cycle,
// injects exactly one fault, runs to completion and classifies the
// outcome:
//
//   - Detected — the system raised an explicit corruption signal: a
//     parity/CRC machine check, a guarded-pointer protection fault with
//     a valid FaultCode, the multicomputer watchdog, or an end-of-run
//     scrub of the parity planes.
//   - Masked — the run completed and its architectural fingerprint
//     equals the uninjected run's (the fault was overwritten, evicted,
//     or landed in dead state).
//   - Escaped — anything else: silent divergence, an unexplained hang,
//     or a panic. A healthy protection system shows zero escapes.
//
// Everything is replayable: all randomness comes from an explicit
// xorshift64* generator keyed by the trial seed (never math/rand global
// state), so the same seed produces a byte-identical campaign table.
package faultinject

import (
	"errors"
	"fmt"

	"repro/internal/isa"
	"repro/internal/machine"
)

// RNG is the injector's private xorshift64* generator — the same
// recurrence the workload package uses, duplicated here so the two
// streams can never entangle.
type RNG struct{ s uint64 }

// NewRNG seeds a generator; seed 0 is remapped to a fixed odd constant
// because xorshift has an all-zeroes fixed point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{s: seed}
}

// Next returns the next pseudo-random 64-bit value.
func (r *RNG) Next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// Uint64n returns a value in [0, n); n == 0 returns 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return r.Next() % n
}

// Intn returns a value in [0, n); n <= 0 returns 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64n(uint64(n)))
}

// mixSeed derives an independent per-trial seed from the campaign seed
// and the trial coordinates (splitmix64 finalizer).
func mixSeed(seed uint64, parts ...uint64) uint64 {
	z := seed
	for _, p := range parts {
		z += p*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
	}
	return z
}

// Class enumerates the fault classes the injector can raise.
type Class int

const (
	// MemBit flips one bit of a physical memory word — any of the 64
	// data bits or the tag bit — underneath the parity plane.
	MemBit Class = iota
	// RegBit flips one bit (data or tag) of a live thread's register
	// and arms the register-file parity model.
	RegBit
	// PtrField corrupts a register currently holding a guarded pointer
	// in a chosen subfield (permission, segment length, or address),
	// again under register-file parity.
	PtrField
	// TLBEntry XORs bits into a valid TLB slot's VPN or frame, marking
	// the slot's parity poisoned.
	TLBEntry
	// NoCDrop loses one mesh message in the fabric.
	NoCDrop
	// NoCDuplicate delivers one mesh message twice.
	NoCDuplicate
	// NoCCorrupt flips payload bits in one mesh message; the link CRC
	// rejects it on arrival.
	NoCCorrupt
	// NoCDelay holds one mesh message for extra cycles.
	NoCDelay
	// NodeKill fails one multicomputer node hard, mid-run.
	NodeKill
	// NodeStall freezes one node for a bounded number of cycles.
	NodeStall
	// PersistTorn truncates one file of the NEWEST on-disk checkpoint
	// generation at a random offset — the shape a crash leaves behind
	// mid-write.
	PersistTorn
	// PersistTrunc truncates a random file of ANY generation in the
	// store.
	PersistTrunc
	// PersistRot flips one random bit somewhere in the store — media
	// decay after the write committed.
	PersistRot
	// PersistMissing deletes every file of one generation — an
	// over-eager cleanup or a lost directory entry.
	PersistMissing
	// MigrateFrameDrop loses live-migration wire frames during the
	// pre-copy transfer; the link must recover by retransmission.
	MigrateFrameDrop
	// MigrateFrameCorrupt flips payload bits in migration frames; the
	// frame CRC must reject them and the link must retransmit.
	MigrateFrameCorrupt
	// MigrateFrameDup delivers migration frames twice; the sequenced
	// link must suppress the duplicates.
	MigrateFrameDup
	// MigrateFrameTrunc tears migration frames short on the wire; the
	// decoder must reject the torn frame and the link retransmit.
	MigrateFrameTrunc
	// MigrateSrcKill kills the source node mid-round during pre-copy;
	// the migration must abort rather than commit a stale image, and
	// the watchdog-driven recovery stack must finish the run.
	MigrateSrcKill
	// MigrateStandbyCrash crashes the standby partway through the
	// transfer; the migration must abort with the source unharmed.
	MigrateStandbyCrash
	// MigrateCutover interrupts the migration at the cutover barrier,
	// after the fingerprint handshake but before commit; the abort
	// must leave the source bit-identical to never having migrated.
	MigrateCutover

	NumClasses int = iota
)

var classNames = [...]string{
	MemBit:         "mem-bit",
	RegBit:         "reg-bit",
	PtrField:       "ptr-field",
	TLBEntry:       "tlb-entry",
	NoCDrop:        "noc-drop",
	NoCDuplicate:   "noc-duplicate",
	NoCCorrupt:     "noc-corrupt",
	NoCDelay:       "noc-delay",
	NodeKill:       "node-kill",
	NodeStall:      "node-stall",
	PersistTorn:    "persist-torn",
	PersistTrunc:   "persist-trunc",
	PersistRot:     "persist-rot",
	PersistMissing: "persist-missing",

	MigrateFrameDrop:    "migrate-frame-drop",
	MigrateFrameCorrupt: "migrate-frame-corrupt",
	MigrateFrameDup:     "migrate-frame-dup",
	MigrateFrameTrunc:   "migrate-frame-trunc",
	MigrateSrcKill:      "migrate-src-kill",
	MigrateStandbyCrash: "migrate-standby-crash",
	MigrateCutover:      "migrate-cutover",
}

func (c Class) String() string {
	if c >= 0 && int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Outcome is the audit's classification of one trial. The baseline
// campaign uses the first three; tolerant campaigns (tolerance.go) add
// Tolerated: the fault was detected AND repaired — ECC correction,
// transport retransmission, checkpoint rollback — and the run finished
// with the clean fingerprint. In a tolerant campaign a final Detected
// means the stack saw the fault but could not recover it.
type Outcome int

const (
	Detected Outcome = iota
	Masked
	Escaped
	Tolerated
)

func (o Outcome) String() string {
	switch o {
	case Detected:
		return "detected"
	case Masked:
		return "masked"
	case Escaped:
		return "escaped"
	case Tolerated:
		return "tolerated"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// CorruptionError is the register-file machine check: an instruction
// read an operand register whose contents were corrupted since its
// last write. It satisfies the CorruptionDetected convention shared
// with mem.ParityError, vm.TLBParityError and noc.PayloadError.
type CorruptionError struct {
	Thread, Reg int
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("faultinject: register-file parity error: thread %d read r%d while corrupted", e.Thread, e.Reg)
}

// CorruptionDetected marks this as an explicit hardware detection.
func (e *CorruptionError) CorruptionDetected() bool { return true }

// corruptionDetector is the interface every explicit-detection error in
// the repo implements.
type corruptionDetector interface{ CorruptionDetected() bool }

// IsCorruptionDetected reports whether err (or anything it wraps) is an
// explicit corruption-detection signal.
func IsCorruptionDetected(err error) bool {
	var cd corruptionDetector
	return errors.As(err, &cd) && cd.CorruptionDetected()
}

// Injector carries the armed-register state behind the machine's
// Integrity hook. The model is register-file parity: corrupting a
// register arms it; the first instruction that READS the register takes
// a machine check (CorruptionError), while an instruction that WRITES
// it first silently repairs the damage (the fault was masked).
type Injector struct {
	thread *machine.Thread
	reg    int
	armed  bool
}

// Arm marks register reg of thread t as corrupted.
func (in *Injector) Arm(t *machine.Thread, reg int) {
	in.thread, in.reg, in.armed = t, reg, true
}

// Armed reports whether a corrupted register is still live (never read,
// never overwritten) — a latent fault a register-file scrub would find.
func (in *Injector) Armed() bool { return in.armed }

// Disarm clears the armed-register state without classifying it — the
// tolerant driver calls it after rolling the machine back to a
// checkpoint that predates the corruption, making the parity state
// consistent with the restored register file.
func (in *Injector) Disarm() { in.armed = false }

// CheckInst is the machine.Integrity hook: it vets every instruction of
// the armed thread before it executes.
func (in *Injector) CheckInst(t *machine.Thread, inst isa.Inst) error {
	if !in.armed || t != in.thread {
		return nil
	}
	if readsReg(inst, in.reg) {
		in.armed = false
		return &CorruptionError{Thread: t.ID, Reg: in.reg}
	}
	if writesReg(inst, in.reg) {
		in.armed = false // overwrite repairs: parity is recomputed on write
	}
	return nil
}

// readsReg reports whether inst reads register r as an operand.
func readsReg(i isa.Inst, r int) bool {
	switch i.Op {
	case isa.NOP, isa.HALT, isa.LDI, isa.BR, isa.TRAP, isa.MOVIP:
		return false
	case isa.ADD, isa.SUB, isa.MUL, isa.AND, isa.OR, isa.XOR,
		isa.SHL, isa.SHR, isa.SLT, isa.SEQ,
		isa.LEA, isa.LEAB, isa.RESTRICT, isa.SUBSEG,
		isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV, isa.FSLT,
		isa.ST, isa.STB:
		return i.Ra == r || i.Rb == r
	case isa.ADDI, isa.SUBI, isa.SHLI, isa.SHRI, isa.SLTI, isa.SEQI,
		isa.MOV, isa.LEAI, isa.LEABI, isa.SETPTR, isa.ISPTR,
		isa.GETPERM, isa.GETLEN, isa.ITOF, isa.FTOI,
		isa.BEQZ, isa.BNEZ, isa.JMP, isa.JMPL, isa.LD, isa.LDB:
		return i.Ra == r
	}
	// Unknown opcode: assume the worst (both operand fields read).
	return i.Ra == r || i.Rb == r
}

// writesReg reports whether inst writes register r as its destination.
func writesReg(i isa.Inst, r int) bool {
	switch i.Op {
	case isa.NOP, isa.HALT, isa.BR, isa.BEQZ, isa.BNEZ,
		isa.JMP, isa.TRAP, isa.ST, isa.STB:
		return false
	}
	return i.Rd == r
}
