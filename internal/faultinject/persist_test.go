package faultinject

import (
	"strings"
	"testing"
)

// The persistence-fault campaign's gate: every seeded damage class is
// either masked (newest generation unaffected or damage invisible) or
// tolerated (corruption detected, recovery fell back to an intact
// generation with the clean fingerprint). Zero unrecovered, zero
// divergence.
func TestPersistCampaignGate(t *testing.T) {
	cfg := DefaultPersistCampaign()
	cfg.PersistTrials = 10 // full 40/class is E28's job
	res, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 4*cfg.PersistTrials {
		t.Fatalf("trials = %d, want %d", res.Trials, 4*cfg.PersistTrials)
	}
	if res.Detected != 0 {
		t.Errorf("%d unrecovered persistence faults", res.Detected)
	}
	if res.Escaped != 0 {
		t.Errorf("%d escapes (divergence or hang)", res.Escaped)
	}
	if res.Tolerated == 0 {
		t.Error("no trial exercised the corruption-fallback path")
	}
	if res.Masked == 0 {
		t.Error("no trial left the newest generation intact")
	}
	if res.Tolerated > 0 && (res.PersistCorrupt == 0 || res.PersistFallbacks == 0) {
		t.Errorf("tolerated=%d but corrupt=%d fallbacks=%d — accounting lost",
			res.Tolerated, res.PersistCorrupt, res.PersistFallbacks)
	}
	for _, c := range persistClasses {
		if res.Classes[c].Trials != cfg.PersistTrials {
			t.Errorf("class %v ran %d trials, want %d", c, res.Classes[c].Trials, cfg.PersistTrials)
		}
	}
	// The repair table carries the persistence rows for this campaign.
	tbl := res.Table()
	for _, want := range []string{"persist-torn", "persist fallback restores", "persist corrupt generations detected"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
}

// Same seed → byte-identical campaign table, workers notwithstanding.
func TestPersistCampaignDeterministic(t *testing.T) {
	cfg := DefaultPersistCampaign()
	cfg.PersistTrials = 6
	a, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1
	b, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Table() != b.Table() {
		t.Fatalf("campaign not deterministic:\n%s\nvs\n%s", a.Table(), b.Table())
	}
}

// A campaign without persistence trials must not mention them — E23/E24
// tables stay byte-identical to the pre-durability audit.
func TestPersistRowsAbsentWithoutTrials(t *testing.T) {
	cfg := DefaultTolerantCampaign()
	cfg.LocalTrials, cfg.MeshTrials, cfg.NodeTrials = 8, 4, 2
	res, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Table()
	if strings.Contains(tbl, "persist") {
		t.Fatalf("persistence rows leaked into a non-persistence campaign:\n%s", tbl)
	}
}

// Fixture invariant: the pristine store must hold bases at generations
// 1 and 4 so any single-generation damage leaves an intact chain.
func TestPersistFixtureShape(t *testing.T) {
	dir := t.TempDir()
	fx, err := preparePersistFixture(dir)
	if err != nil {
		t.Fatal(err)
	}
	if fx.fp == 0 {
		t.Error("fixture fingerprint is zero")
	}
	byGen, gens, err := storeFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != persistFixtureGens {
		t.Fatalf("fixture has %d generations, want %d", len(gens), persistFixtureGens)
	}
	for _, g := range gens {
		if len(byGen[g]) != 2 { // image + marker
			t.Errorf("generation %d has %d files, want 2", g, len(byGen[g]))
		}
	}
}
