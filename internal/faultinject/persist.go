package faultinject

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/persist"
)

// Persistence-fault trials (E28): each trial takes a pristine on-disk
// checkpoint store, damages it in one seeded way — torn write,
// truncation, bit rot, missing generation — and demands that recovery
// either restores the newest generation untouched by the damage
// (Masked), detects the corruption and falls back to an older intact
// generation whose restored run still reproduces the clean
// architectural fingerprint (Tolerated), or at the very least reports
// a typed failure. An unrecoverable store is Detected with detail
// "persist-unrecovered"; a restore that silently diverges from the
// clean fingerprint is Escaped "persist-divergence". The E28 gate
// demands zero of both.

// persistFixtureGens is the generation count of the pristine store.
// With persistFixtureBaseEvery = 3 the bases sit at generations 1 and
// 4, so damaging any SINGLE generation always leaves at least one
// intact chain — every trial is recoverable by construction, and an
// unrecovered outcome is a store bug, not fixture bad luck.
const (
	persistFixtureGens      = 6
	persistFixtureBaseEvery = 3
	persistCaptureStride    = 60 // cycles between fixture captures
)

// persistFixture is the campaign-wide pristine store plus the clean
// run's outcome. Trials copy it; nobody mutates it.
type persistFixture struct {
	dir    string
	cfg    machine.Config
	budget uint64
	fp     uint64 // fingerprint of the uninjected run's final state
}

// preparePersistFixture runs the sweep-sum workload under a Saver,
// committing persistFixtureGens generations, then finishes the run to
// compute the reference fingerprint every trial must reproduce.
func preparePersistFixture(dir string) (*persistFixture, error) {
	w := localWorkloads()[0]
	cfg := machine.MMachine()
	cfg.Clusters = 1
	cfg.SlotsPerCluster = 2
	cfg.PhysBytes = 1 << 20
	k, _, _, err := buildLocalWith(w, cfg)
	if err != nil {
		return nil, err
	}
	st, err := persist.Open(dir, 1)
	if err != nil {
		return nil, err
	}
	sv, err := persist.NewSaver(st, persistFixtureBaseEvery)
	if err != nil {
		return nil, err
	}
	var cycle uint64
	for g := 0; g < persistFixtureGens; g++ {
		cycle += k.Run(persistCaptureStride)
		if k.M.Done() {
			return nil, fmt.Errorf("faultinject: persist fixture workload finished before generation %d", g+1)
		}
		if _, err := sv.Capture(k, cycle); err != nil {
			return nil, err
		}
	}
	k.Run(w.budget)
	if !k.M.Done() {
		return nil, fmt.Errorf("faultinject: persist fixture workload did not finish")
	}
	return &persistFixture{dir: dir, cfg: cfg, budget: w.budget,
		fp: fingerprintThreads(k.M.Threads())}, nil
}

// copyDir copies the fixture's flat file set into dst.
func copyDir(src, dst string) error {
	ents, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// storeFiles lists a store directory's files grouped by generation
// number (parsed from the gen%08d prefix), plus the sorted generation
// list.
func storeFiles(dir string) (map[uint64][]string, []uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	byGen := make(map[uint64][]string)
	for _, e := range ents {
		var gen uint64
		if _, err := fmt.Sscanf(e.Name(), "gen%d", &gen); err != nil {
			continue
		}
		byGen[gen] = append(byGen[gen], e.Name())
	}
	var gens []uint64
	for g := range byGen {
		gens = append(gens, g)
	}
	for i := 1; i < len(gens); i++ { // insertion sort: tiny list
		for j := i; j > 0 && gens[j] < gens[j-1]; j-- {
			gens[j], gens[j-1] = gens[j-1], gens[j]
		}
	}
	return byGen, gens, nil
}

// damagePersist applies class's seeded damage to one store directory.
func damagePersist(dir string, class Class, rng *RNG) error {
	byGen, gens, err := storeFiles(dir)
	if err != nil {
		return err
	}
	if len(gens) == 0 {
		return fmt.Errorf("faultinject: empty persist store")
	}
	pickGen := gens[rng.Intn(len(gens))]
	if class == PersistTorn {
		pickGen = gens[len(gens)-1] // torn writes hit the newest
	}
	files := byGen[pickGen]
	pick := filepath.Join(dir, files[rng.Intn(len(files))])
	switch class {
	case PersistTorn, PersistTrunc:
		info, err := os.Stat(pick)
		if err != nil {
			return err
		}
		return os.Truncate(pick, int64(rng.Uint64n(uint64(info.Size()))))
	case PersistRot:
		data, err := os.ReadFile(pick)
		if err != nil {
			return err
		}
		if len(data) == 0 {
			return nil
		}
		data[rng.Intn(len(data))] ^= byte(1) << rng.Intn(8)
		return os.WriteFile(pick, data, 0o644)
	case PersistMissing:
		for _, f := range files {
			if err := os.Remove(filepath.Join(dir, f)); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("faultinject: %v is not a persistence class", class)
}

// runPersistTrial copies the fixture, injects one seeded damage, and
// classifies the recovery.
func runPersistTrial(fx *persistFixture, class Class, seed uint64) trialResult {
	rng := NewRNG(seed)
	tmp, err := os.MkdirTemp("", "mmpersist-trial-")
	if err != nil {
		return trialResult{outcome: Escaped, detail: "persist-harness"}
	}
	defer os.RemoveAll(tmp)
	if err := copyDir(fx.dir, tmp); err != nil {
		return trialResult{outcome: Escaped, detail: "persist-harness"}
	}
	if err := damagePersist(tmp, class, rng); err != nil {
		return trialResult{outcome: Escaped, detail: "persist-harness"}
	}

	st, err := persist.Open(tmp, 1)
	if err != nil {
		return trialResult{outcome: Escaped, detail: "persist-harness"}
	}
	cps, gen, _, err := st.LoadNewestIntact()
	if err != nil {
		// The store could not produce ANY intact generation: an
		// unrecovered persistence fault. The fixture guarantees one
		// intact chain under every single-generation damage, so the E28
		// gate demands zero of these.
		return trialResult{outcome: Detected, detail: "persist-unrecovered",
			persistCorrupt: st.Stats().CorruptDetected}
	}
	k, err := kernel.Restore(fx.cfg, cps[0])
	if err != nil {
		return trialResult{outcome: Detected, detail: "persist-unrecovered",
			persistCorrupt: st.Stats().CorruptDetected}
	}
	k.Run(fx.budget)
	if !k.M.Done() {
		return trialResult{outcome: Escaped, detail: "persist-hang"}
	}
	stats := st.Stats()
	res := trialResult{
		persistFallback: stats.Fallbacks,
		persistCorrupt:  stats.CorruptDetected,
	}
	if fingerprintThreads(k.M.Threads()) != fx.fp {
		res.outcome = Escaped
		res.detail = "persist-divergence"
		return res
	}
	switch {
	case stats.CorruptDetected > 0:
		// Damage was detected by checksums/markers and recovery fell
		// back to an older intact generation: detected AND repaired.
		res.outcome = Tolerated
		res.detail = "persist-fallback"
	case gen < persistFixtureGens:
		// The damaged generation vanished without tripping a checksum
		// (e.g. its commit marker was destroyed): recovery silently got
		// an older generation — correct state, no detection signal.
		res.outcome = Masked
		res.detail = "persist-invisible"
	default:
		// The newest generation survived untouched (damage landed on a
		// file no retained chain needed).
		res.outcome = Masked
		res.detail = "persist-newest-intact"
	}
	return res
}
