package faultinject

import "repro/internal/noc"

// MessageFaulter is a deterministic noc.Interceptor: it counts every
// message entering the fabric and applies one planned Fate to exactly
// the target-th message, leaving all others untouched. Because delivery
// order at the multicomputer's cycle barrier is deterministic, the same
// (target, fate) pair always hits the same message.
type MessageFaulter struct {
	Target uint64   // 0-based index of the message to fault
	Fate   noc.Fate // what happens to it

	n     uint64
	fired bool
}

// Intercept implements noc.Interceptor.
func (f *MessageFaulter) Intercept(k noc.Kind, src, dst int, now uint64) noc.Fate {
	i := f.n
	f.n++
	if i == f.Target {
		f.fired = true
		return f.Fate
	}
	return noc.Fate{}
}

// Fired reports whether the planned fault was actually applied (false
// means the run ended before message Target was sent).
func (f *MessageFaulter) Fired() bool { return f.fired }

// Messages returns how many messages the interceptor has seen.
func (f *MessageFaulter) Messages() uint64 { return f.n }
