package faultinject

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/noc"
	"repro/internal/word"
)

func TestRNGDeterministicAndNonZero(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		va, vb := a.Next(), b.Next()
		if va != vb {
			t.Fatalf("step %d: %#x != %#x", i, va, vb)
		}
		if va == 0 {
			t.Fatalf("step %d: produced 0", i)
		}
	}
	if NewRNG(0).Next() == 0 {
		t.Fatal("seed 0 must be remapped, not absorbed")
	}
}

func TestMixSeedSeparatesTrials(t *testing.T) {
	seen := make(map[uint64]bool)
	for c := uint64(0); c < 10; c++ {
		for i := uint64(0); i < 100; i++ {
			s := mixSeed(1, c, i)
			if seen[s] {
				t.Fatalf("seed collision at class %d trial %d", c, i)
			}
			seen[s] = true
		}
	}
	if mixSeed(1, 3, 4) != mixSeed(1, 3, 4) {
		t.Fatal("mixSeed not deterministic")
	}
}

func TestInjectorReadDetectsWriteRepairs(t *testing.T) {
	th := &machine.Thread{ID: 7}
	other := &machine.Thread{ID: 8}

	// Reading the armed register is a machine check.
	inj := &Injector{}
	inj.Arm(th, 5)
	if err := inj.CheckInst(other, isa.Inst{Op: isa.ADD, Rd: 1, Ra: 5, Rb: 5}); err != nil {
		t.Fatalf("other thread read must not trip: %v", err)
	}
	if err := inj.CheckInst(th, isa.Inst{Op: isa.ADD, Rd: 1, Ra: 5, Rb: 2}); err == nil {
		t.Fatal("read of armed register: want CorruptionError")
	} else if !IsCorruptionDetected(err) {
		t.Fatalf("error %v must satisfy CorruptionDetected", err)
	}
	if inj.Armed() {
		t.Fatal("detection must disarm")
	}

	// Overwriting the armed register repairs it silently.
	inj = &Injector{}
	inj.Arm(th, 5)
	if err := inj.CheckInst(th, isa.Inst{Op: isa.LDI, Rd: 5, Imm: 1}); err != nil {
		t.Fatalf("overwrite must not trip: %v", err)
	}
	if inj.Armed() {
		t.Fatal("overwrite must disarm")
	}
	if err := inj.CheckInst(th, isa.Inst{Op: isa.ADD, Rd: 1, Ra: 5, Rb: 2}); err != nil {
		t.Fatalf("read after repair must pass: %v", err)
	}

	// Store reads both Ra and Rb; it never writes a register.
	inj = &Injector{}
	inj.Arm(th, 3)
	if err := inj.CheckInst(th, isa.Inst{Op: isa.ST, Ra: 1, Rb: 3}); err == nil {
		t.Fatal("store of armed register: want CorruptionError")
	}
}

func TestRegSets(t *testing.T) {
	cases := []struct {
		inst   isa.Inst
		reads  []int
		writes []int
	}{
		{isa.Inst{Op: isa.ADD, Rd: 1, Ra: 2, Rb: 3}, []int{2, 3}, []int{1}},
		{isa.Inst{Op: isa.LDI, Rd: 4}, nil, []int{4}},
		{isa.Inst{Op: isa.ST, Ra: 5, Rb: 6}, []int{5, 6}, nil},
		{isa.Inst{Op: isa.LD, Rd: 7, Ra: 8}, []int{8}, []int{7}},
		{isa.Inst{Op: isa.BNEZ, Ra: 9}, []int{9}, nil},
		{isa.Inst{Op: isa.JMPL, Rd: 14, Ra: 2}, []int{2}, []int{14}},
		{isa.Inst{Op: isa.HALT}, nil, nil},
	}
	for _, c := range cases {
		for r := 0; r < isa.NumRegs; r++ {
			wantR, wantW := false, false
			for _, x := range c.reads {
				if x == r {
					wantR = true
				}
			}
			for _, x := range c.writes {
				if x == r {
					wantW = true
				}
			}
			if got := readsReg(c.inst, r); got != wantR {
				t.Errorf("%v readsReg(%d) = %v, want %v", c.inst.Op, r, got, wantR)
			}
			if got := writesReg(c.inst, r); got != wantW {
				t.Errorf("%v writesReg(%d) = %v, want %v", c.inst.Op, r, got, wantW)
			}
		}
	}
}

func TestWorkloadsPrepare(t *testing.T) {
	for _, w := range localWorkloads() {
		if err := w.prepare(); err != nil {
			t.Fatalf("%s: %v", w.name, err)
		}
		if w.clean.cycles == 0 || w.clean.fp == 0 {
			t.Fatalf("%s: degenerate clean run %+v", w.name, w.clean)
		}
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	a := []*machine.Thread{{ID: 1, Instret: 10}}
	b := []*machine.Thread{{ID: 1, Instret: 11}}
	if fingerprintThreads(a) == fingerprintThreads(b) {
		t.Fatal("fingerprint must see instret")
	}
	c := []*machine.Thread{{ID: 1, Instret: 10}}
	c[0].Regs[3] = word.FromUint(9)
	if fingerprintThreads(a) == fingerprintThreads(c) {
		t.Fatal("fingerprint must see register contents")
	}
}

// TestSmallCampaignZeroEscapes is the heart of the audit contract: a
// reduced but class-complete campaign must classify every injection as
// detected or masked — never escaped, never a panic.
func TestSmallCampaignZeroEscapes(t *testing.T) {
	cfg := CampaignConfig{Seed: 3, LocalTrials: 60, MeshTrials: 12, NodeTrials: 8, Recovery: true}
	res, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Escaped != 0 {
		for _, cs := range res.Classes {
			if cs.Escaped > 0 {
				t.Errorf("class %v: %d escapes (details %v)", cs.Class, cs.Escaped, cs.Details)
			}
		}
		t.Fatalf("campaign had %d escapes\n%s", res.Escaped, res.Table())
	}
	if res.Trials != 4*60+4*12+2*8 {
		t.Fatalf("trials = %d", res.Trials)
	}
	for _, cs := range res.Classes {
		if cs.Trials > 0 && cs.Detected == 0 && cs.Class != NodeStall && cs.Class != NoCDelay && cs.Class != NoCDuplicate {
			t.Errorf("class %v never detected anything (details %v)", cs.Class, cs.Details)
		}
	}
	if res.Recovery == nil || !res.Recovery.Match {
		t.Fatalf("recovery failed: %+v", res.Recovery)
	}
}

// TestCampaignDeterministic: identical seeds must render byte-identical
// audit tables even though trials run on a racing worker pool.
func TestCampaignDeterministic(t *testing.T) {
	cfg := CampaignConfig{Seed: 9, LocalTrials: 25, MeshTrials: 6, NodeTrials: 4}
	a, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1
	b, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Table() != b.Table() {
		t.Fatalf("same seed, different tables:\n--- pool ---\n%s\n--- serial ---\n%s", a.Table(), b.Table())
	}
}

func TestRecoveryTrialMatchesUninterruptedRun(t *testing.T) {
	for _, seed := range []uint64{1, 7, 1234} {
		rec, err := RecoveryTrial(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !rec.WatchdogTripped {
			t.Errorf("seed %d: node kill not detected by watchdog (%s)", seed, rec)
		}
		if !rec.Match {
			t.Errorf("seed %d: recovered fingerprint diverged (%s)", seed, rec)
		}
	}
}

func TestMessageFaulterHitsExactTarget(t *testing.T) {
	mf := &MessageFaulter{Target: 2, Fate: noc.Fate{Drop: true}}
	for i := 0; i < 5; i++ {
		fate := mf.Intercept(noc.ReadReq, 0, 1, uint64(i))
		if got, want := fate.Drop, i == 2; got != want {
			t.Fatalf("message %d: drop = %v, want %v", i, got, want)
		}
	}
	if !mf.Fired() || mf.Messages() != 5 {
		t.Fatalf("fired=%v messages=%d", mf.Fired(), mf.Messages())
	}
}
