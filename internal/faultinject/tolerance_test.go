package faultinject

import (
	"strings"
	"testing"
)

// smallTolerant is a fast tolerant campaign exercising all ten classes.
func smallTolerant() CampaignConfig {
	return CampaignConfig{
		Seed:        7,
		LocalTrials: 12,
		MeshTrials:  6,
		NodeTrials:  4,
		Recovery:    true,
		Tolerate:    true,
	}
}

// The tolerant campaign's contract: no fault escapes AND no detected
// fault goes unrecovered — every trial ends Tolerated or Masked with
// the clean fingerprint.
func TestTolerantCampaignZeroUnrecovered(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign too slow for -short")
	}
	res, err := RunCampaign(smallTolerant())
	if err != nil {
		t.Fatal(err)
	}
	if res.Escaped != 0 {
		t.Errorf("Escaped = %d, want 0\n%s", res.Escaped, res.Table())
	}
	if res.Detected != 0 {
		t.Errorf("unrecovered (Detected) = %d, want 0\n%s", res.Detected, res.Table())
	}
	if res.Tolerated+res.Masked != res.Trials {
		t.Errorf("tolerated %d + masked %d != trials %d", res.Tolerated, res.Masked, res.Trials)
	}
	if res.Tolerated == 0 {
		t.Error("no trial was actively repaired — the stack never engaged")
	}
	if res.Checkpoints == 0 {
		t.Error("no verified checkpoints captured")
	}
	if res.Recovery == nil || !res.Recovery.Match {
		t.Errorf("auto-recovery fingerprint mismatch: %v", res.Recovery)
	}
	if !res.Recovery.WatchdogTripped {
		t.Error("auto-recovery never tripped the watchdog")
	}
}

// Same seed, serial pool vs parallel pool: byte-identical table. The
// worker count must change wall-clock only, never the result.
func TestTolerantCampaignDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign too slow for -short")
	}
	cfg := smallTolerant()
	cfg.Recovery = false

	cfg.Workers = 1
	serial, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	pool, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Table() != pool.Table() {
		t.Fatalf("serial and pooled tolerant campaigns diverge:\n--- serial ---\n%s\n--- pool ---\n%s",
			serial.Table(), pool.Table())
	}
}

// The tolerant table gains the tolerated/unrecovered columns and the
// repair-work summary; the baseline table is untouched by this PR.
func TestCampaignTableShape(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign too slow for -short")
	}
	cfg := smallTolerant()
	cfg.Recovery = false
	tol, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fault-tolerance audit", "tolerated", "unrecovered", "Tolerance-stack repair work"} {
		if !strings.Contains(tol.Table(), want) {
			t.Errorf("tolerant table missing %q:\n%s", want, tol.Table())
		}
	}

	cfg.Tolerate = false
	base, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, forbid := range []string{"tolerated", "Tolerance-stack"} {
		if strings.Contains(base.Table(), forbid) {
			t.Errorf("baseline table leaked tolerant column %q:\n%s", forbid, base.Table())
		}
	}
	if !strings.Contains(base.Table(), "Fault-injection audit") {
		t.Errorf("baseline table lost its title:\n%s", base.Table())
	}
}
