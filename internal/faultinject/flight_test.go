package faultinject

import (
	"strings"
	"testing"
)

// TestEscapedMeshTrialCapturesFlight: a mesh trial the audit cannot
// classify (here: stopped mid-run, so neither done nor hung — a
// timeout escape) must carry the system's flight-recorder dump.
func TestEscapedMeshTrialCapturesFlight(t *testing.T) {
	s, err := buildMesh(nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(50)
	r := classifyMesh(s, &meshClean{}, "x")
	if r.outcome != Escaped || r.detail != "timeout" {
		t.Fatalf("outcome = %v/%s, want escaped/timeout", r.outcome, r.detail)
	}
	if r.flight == "" {
		t.Fatal("escaped trial has no flight dump")
	}
	if got := strings.Count(r.flight, `"flight":true`); got != len(s.Nodes)+1 {
		t.Fatalf("flight dump has %d section headers, want %d (nodes + mesh)\n%s",
			got, len(s.Nodes)+1, r.flight)
	}
	if !strings.Contains(r.flight, `"reason":"timeout"`) {
		t.Errorf("flight dump does not carry the escape reason:\n%.400s", r.flight)
	}
}

// TestMaskedMeshTrialCarriesNoFlight: explained outcomes must stay
// lean — no dump attached to a clean (masked) finish.
func TestMaskedMeshTrialCarriesNoFlight(t *testing.T) {
	s, err := buildMesh(nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(1_000_000)
	clean := &meshClean{fp: fingerprintThreads(meshThreads(s))}
	r := classifyMesh(s, clean, "clean")
	if r.outcome != Masked {
		t.Fatalf("outcome = %v/%s, want masked", r.outcome, r.detail)
	}
	if r.flight != "" {
		t.Fatalf("masked trial carries a %d-byte flight dump", len(r.flight))
	}
}

// TestUnrecoveredTolerantTrialCapturesFlight: under the tolerance
// classifier, a hang the stack failed to repair (unrecovered-hang) is
// exactly the outcome that must ship its evidence.
func TestUnrecoveredTolerantTrialCapturesFlight(t *testing.T) {
	s, err := buildMesh(nil) // watchdog armed, no checkpoints → no repair
	if err != nil {
		t.Fatal(err)
	}
	s.Run(100)
	if err := s.Kill(3); err != nil { // home of the remote segment
		t.Fatal(err)
	}
	s.Run(20 * meshWatchdog)
	if !s.Hung() {
		t.Fatal("expected the watchdog to trip")
	}
	r := classifyMeshTolerant(s, &meshClean{}, "x")
	if r.outcome != Detected || r.detail != "unrecovered-hang" {
		t.Fatalf("outcome = %v/%s, want detected/unrecovered-hang", r.outcome, r.detail)
	}
	if r.flight == "" || !strings.Contains(r.flight, `"flight":true`) {
		t.Fatalf("unrecovered trial has no flight dump: %q", r.flight)
	}
}
