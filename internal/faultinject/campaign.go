package faultinject

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/stats"
	"repro/internal/telemetry"
)

// CampaignConfig sizes a campaign. Every trial's seed is derived from
// Seed and the trial's (class, index) coordinates, so trials are
// independent and the campaign is replayable and order-insensitive —
// the worker pool changes wall-clock time, never the table.
type CampaignConfig struct {
	Seed uint64
	// LocalTrials is the trial count for each single-node class
	// (mem-bit, reg-bit, ptr-field, tlb-entry).
	LocalTrials int
	// MeshTrials is the trial count for each NoC class (drop,
	// duplicate, corrupt, delay).
	MeshTrials int
	// NodeTrials is the trial count for each node class (kill, stall).
	NodeTrials int
	// Workers bounds trial concurrency; 0 means GOMAXPROCS.
	Workers int
	// Recovery additionally runs the checkpoint/kill/restore trial.
	Recovery bool
}

// DefaultCampaign is the E23 configuration: ≥10k injections across all
// ten classes plus the recovery exercise.
func DefaultCampaign() CampaignConfig {
	return CampaignConfig{
		Seed:        1,
		LocalTrials: 2200,
		MeshTrials:  300,
		NodeTrials:  150,
		Recovery:    true,
	}
}

// ClassStats aggregates one class's outcomes.
type ClassStats struct {
	Class    Class
	Trials   int
	Detected int
	Masked   int
	Escaped  int
	// Details counts fine-grained mechanism tags ("mem-parity",
	// "watchdog", "scrub-mem", ...).
	Details map[string]int
}

// Result is a finished campaign.
type Result struct {
	Seed     uint64
	Classes  []ClassStats // indexed by Class
	Trials   int
	Detected int
	Masked   int
	Escaped  int
	Recovery *RecoveryResult // nil unless CampaignConfig.Recovery
}

type trialSpec struct {
	class Class
	wl    *workload // nil for mesh/node classes
	seed  uint64
}

var localClasses = []Class{MemBit, RegBit, PtrField, TLBEntry}
var nocClasses = []Class{NoCDrop, NoCDuplicate, NoCCorrupt, NoCDelay}
var nodeClasses = []Class{NodeKill, NodeStall}

// RunCampaign executes the full audit: prepares the clean reference
// runs, fans the trial list across a worker pool, and aggregates the
// outcomes in deterministic (class, index) order.
func RunCampaign(cfg CampaignConfig) (*Result, error) {
	wls := localWorkloads()
	for _, w := range wls {
		if err := w.prepare(); err != nil {
			return nil, err
		}
	}
	needMesh := cfg.MeshTrials > 0 || cfg.NodeTrials > 0
	var mesh *meshClean
	if needMesh {
		var err error
		if mesh, err = prepareMesh(); err != nil {
			return nil, err
		}
	}

	var specs []trialSpec
	for _, c := range localClasses {
		for i := 0; i < cfg.LocalTrials; i++ {
			specs = append(specs, trialSpec{
				class: c,
				wl:    wls[i%len(wls)],
				seed:  mixSeed(cfg.Seed, uint64(c), uint64(i)),
			})
		}
	}
	for _, c := range nocClasses {
		for i := 0; i < cfg.MeshTrials; i++ {
			specs = append(specs, trialSpec{class: c, seed: mixSeed(cfg.Seed, uint64(c), uint64(i))})
		}
	}
	for _, c := range nodeClasses {
		for i := 0; i < cfg.NodeTrials; i++ {
			specs = append(specs, trialSpec{class: c, seed: mixSeed(cfg.Seed, uint64(c), uint64(i))})
		}
	}

	results := make([]trialResult, len(specs))
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(specs) {
					return
				}
				sp := specs[i]
				switch {
				case sp.wl != nil:
					results[i] = runLocalTrial(sp.wl, sp.class, sp.seed)
				case sp.class == NodeKill || sp.class == NodeStall:
					results[i] = runNodeTrial(sp.class, mesh, sp.seed)
				default:
					results[i] = runNoCTrial(sp.class, mesh, sp.seed)
				}
			}
		}()
	}
	wg.Wait()

	res := &Result{Seed: cfg.Seed, Classes: make([]ClassStats, NumClasses)}
	for c := range res.Classes {
		res.Classes[c].Class = Class(c)
		res.Classes[c].Details = make(map[string]int)
	}
	for i, sp := range specs {
		cs := &res.Classes[sp.class]
		cs.Trials++
		res.Trials++
		switch results[i].outcome {
		case Detected:
			cs.Detected++
			res.Detected++
		case Masked:
			cs.Masked++
			res.Masked++
		case Escaped:
			cs.Escaped++
			res.Escaped++
		}
		cs.Details[results[i].detail]++
	}
	if cfg.Recovery {
		rec, err := RecoveryTrial(cfg.Seed)
		if err != nil {
			return nil, err
		}
		res.Recovery = rec
	}
	return res, nil
}

// Table renders the campaign as the audit table: one row per exercised
// class, a totals row, and a detection-mechanism breakdown. Same seed →
// byte-identical string.
func (r *Result) Table() string {
	var b strings.Builder
	tbl := stats.NewTable(
		fmt.Sprintf("Fault-injection audit (seed %d, %d injections)", r.Seed, r.Trials),
		"class", "trials", "detected", "masked", "escaped")
	for _, cs := range r.Classes {
		if cs.Trials == 0 {
			continue
		}
		tbl.AddRow(cs.Class.String(), cs.Trials, cs.Detected, cs.Masked, cs.Escaped)
	}
	tbl.AddRow("total", r.Trials, r.Detected, r.Masked, r.Escaped)
	b.WriteString(tbl.String())

	mech := make(map[string]int)
	for _, cs := range r.Classes {
		for d, n := range cs.Details {
			mech[d] += n
		}
	}
	var names []string
	for d := range mech {
		names = append(names, d)
	}
	sort.Strings(names)
	mt := stats.NewTable("\nOutcome mechanisms (detection signal or masking path)", "mechanism", "trials")
	for _, d := range names {
		mt.AddRow(d, mech[d])
	}
	b.WriteString(mt.String())

	if r.Recovery != nil {
		fmt.Fprintf(&b, "\ncheckpoint recovery: %s\n", r.Recovery)
	}
	return b.String()
}

// RegisterMetrics exposes the campaign on a telemetry registry under
// the faultinject.* namespace.
func (r *Result) RegisterMetrics(reg *telemetry.Registry) {
	add := func(name string, v int) {
		n := uint64(v)
		reg.Counter("faultinject."+name, func() uint64 { return n })
	}
	add("trials", r.Trials)
	add("detected", r.Detected)
	add("masked", r.Masked)
	add("escaped", r.Escaped)
	for _, cs := range r.Classes {
		if cs.Trials == 0 {
			continue
		}
		slug := strings.ReplaceAll(cs.Class.String(), "-", "_")
		add(slug+".trials", cs.Trials)
		add(slug+".detected", cs.Detected)
		add(slug+".masked", cs.Masked)
		add(slug+".escaped", cs.Escaped)
	}
	if r.Recovery != nil {
		match := 0
		if r.Recovery.Match {
			match = 1
		}
		add("recovery.match", match)
		wd := 0
		if r.Recovery.WatchdogTripped {
			wd = 1
		}
		add("recovery.watchdog", wd)
	}
}
