package faultinject

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/stats"
	"repro/internal/telemetry"
)

// CampaignConfig sizes a campaign. Every trial's seed is derived from
// Seed and the trial's (class, index) coordinates, so trials are
// independent and the campaign is replayable and order-insensitive —
// the worker pool changes wall-clock time, never the table.
type CampaignConfig struct {
	Seed uint64
	// LocalTrials is the trial count for each single-node class
	// (mem-bit, reg-bit, ptr-field, tlb-entry).
	LocalTrials int
	// MeshTrials is the trial count for each NoC class (drop,
	// duplicate, corrupt, delay).
	MeshTrials int
	// NodeTrials is the trial count for each node class (kill, stall).
	NodeTrials int
	// Workers bounds trial concurrency; 0 means GOMAXPROCS.
	Workers int
	// PersistTrials is the trial count for each persistence class
	// (persist-torn, persist-trunc, persist-rot, persist-missing): each
	// trial damages a copy of a pristine on-disk checkpoint store and
	// audits the recovery path (see persist.go).
	PersistTrials int
	// MigrateTrials is the trial count for each live-migration class
	// (frame drop/corrupt/dup/trunc on the migration wire, source kill,
	// standby crash, cutover interruption): each trial arms a live
	// migration mid-run and attacks one stage of it (see migrate.go).
	MigrateTrials int
	// Recovery additionally runs the checkpoint/kill/restore trial.
	Recovery bool
	// Tolerate runs every trial with the self-healing stack enabled
	// (ECC scrubbing, reliable NoC transport, checkpoint rollback) and
	// adds the Tolerated outcome; Recovery then uses the watchdog-driven
	// AutoRecoveryTrial instead of the manual RecoveryTrial.
	Tolerate bool
}

// DefaultCampaign is the E23 configuration: ≥10k injections across all
// ten classes plus the recovery exercise.
func DefaultCampaign() CampaignConfig {
	return CampaignConfig{
		Seed:        1,
		LocalTrials: 2200,
		MeshTrials:  300,
		NodeTrials:  150,
		Recovery:    true,
	}
}

// DefaultTolerantCampaign is the E24 configuration: the same ten-class
// fault mix rerun under the tolerance stack. Per-class counts are
// smaller than E23's because every tolerant trial also pays for
// checkpoint capture and (on faults) rollback re-execution.
func DefaultTolerantCampaign() CampaignConfig {
	return CampaignConfig{
		Seed:        1,
		LocalTrials: 500,
		MeshTrials:  120,
		NodeTrials:  60,
		Recovery:    true,
		Tolerate:    true,
	}
}

// DefaultPersistCampaign is the E28 persistence-fault configuration:
// every durability damage class against the pristine checkpoint store,
// with the tolerance semantics (a detected-and-repaired fallback counts
// as Tolerated). The gate is zero unrecovered detections and zero
// escapes.
func DefaultPersistCampaign() CampaignConfig {
	return CampaignConfig{
		Seed:          1,
		PersistTrials: 40,
		Tolerate:      true,
	}
}

// DefaultMigrateCampaign is the E29 live-migration fault
// configuration: every migration-stage damage class against an armed
// mid-run migration, with the tolerance semantics. The gate is zero
// unrecovered detections and zero escapes: lossy-wire trials must
// commit by retransmission and every interrupted migration must abort
// with the source bit-identical to never having migrated.
func DefaultMigrateCampaign() CampaignConfig {
	return CampaignConfig{
		Seed:          1,
		MigrateTrials: 25,
		Tolerate:      true,
	}
}

// ClassStats aggregates one class's outcomes.
type ClassStats struct {
	Class     Class
	Trials    int
	Detected  int
	Masked    int
	Escaped   int
	Tolerated int // always 0 in baseline campaigns
	// Details counts fine-grained mechanism tags ("mem-parity",
	// "watchdog", "scrub-mem", ...).
	Details map[string]int
}

// Result is a finished campaign.
type Result struct {
	Seed      uint64
	Classes   []ClassStats // indexed by Class
	Trials    int
	Detected  int
	Masked    int
	Escaped   int
	Tolerated int
	Recovery  *RecoveryResult // nil unless CampaignConfig.Recovery

	// Tolerant marks a campaign run with the self-healing stack; the
	// repair totals below sum the stack's work across all trials.
	Tolerant    bool
	Restores    uint64 // checkpoint rollbacks performed
	Checkpoints uint64 // verified checkpoints captured
	EccFixed    uint64 // single-bit memory errors corrected
	Retransmits uint64 // transport frames re-sent
	DupSupp     uint64 // duplicate frames suppressed
	// Persistence-trial repair work (zero unless PersistTrials ran).
	PersistCorrupt   uint64 // generations rejected by checksums/markers
	PersistFallbacks uint64 // restores that fell back past damage
	// Migration-trial repair work (zero unless MigrateTrials ran).
	MigrateRetransmits uint64 // migration wire frames re-sent
	MigrateDupSupp     uint64 // duplicate migration frames suppressed
	MigrateAborts      uint64 // migrations aborted with the source intact

	// Flights holds the flight-recorder dumps of the first
	// MaxFlightCaptures trials whose outcome the audit could not explain
	// (escaped, or an unrecovered detection under the tolerance stack) —
	// the post-mortem evidence for exactly the rows that demand one.
	Flights []FlightCapture
}

// MaxFlightCaptures bounds how many escaped-trial dumps a campaign
// retains; escapes are supposed to be rare, and a pathological run must
// not hold ten thousand dumps in memory.
const MaxFlightCaptures = 8

// FlightCapture is one unexplained trial's flight-recorder dump.
type FlightCapture struct {
	Class  Class
	Seed   uint64
	Detail string
	Dump   string // JSONL: one {"flight":true,...}-headed section per recorder
}

type trialSpec struct {
	class Class
	wl    *workload // nil for mesh/node classes
	seed  uint64
}

var localClasses = []Class{MemBit, RegBit, PtrField, TLBEntry}
var nocClasses = []Class{NoCDrop, NoCDuplicate, NoCCorrupt, NoCDelay}
var nodeClasses = []Class{NodeKill, NodeStall}
var persistClasses = []Class{PersistTorn, PersistTrunc, PersistRot, PersistMissing}
var migrateClasses = []Class{
	MigrateFrameDrop, MigrateFrameCorrupt, MigrateFrameDup, MigrateFrameTrunc,
	MigrateSrcKill, MigrateStandbyCrash, MigrateCutover,
}

// RunCampaign executes the full audit: prepares the clean reference
// runs, fans the trial list across a worker pool, and aggregates the
// outcomes in deterministic (class, index) order.
func RunCampaign(cfg CampaignConfig) (*Result, error) {
	wls := localWorkloads()
	for _, w := range wls {
		if err := w.prepare(); err != nil {
			return nil, err
		}
	}
	needMesh := cfg.MeshTrials > 0 || cfg.NodeTrials > 0
	var mesh *meshClean
	if needMesh {
		var err error
		if mesh, err = prepareMesh(); err != nil {
			return nil, err
		}
	}
	var fx *persistFixture
	if cfg.PersistTrials > 0 {
		fxDir, err := os.MkdirTemp("", "mmpersist-fixture-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(fxDir)
		if fx, err = preparePersistFixture(fxDir); err != nil {
			return nil, err
		}
	}
	var mfx *migrateClean
	if cfg.MigrateTrials > 0 {
		var err error
		if mfx, err = prepareMigrateFixture(); err != nil {
			return nil, err
		}
	}

	var specs []trialSpec
	for _, c := range localClasses {
		for i := 0; i < cfg.LocalTrials; i++ {
			specs = append(specs, trialSpec{
				class: c,
				wl:    wls[i%len(wls)],
				seed:  mixSeed(cfg.Seed, uint64(c), uint64(i)),
			})
		}
	}
	for _, c := range nocClasses {
		for i := 0; i < cfg.MeshTrials; i++ {
			specs = append(specs, trialSpec{class: c, seed: mixSeed(cfg.Seed, uint64(c), uint64(i))})
		}
	}
	for _, c := range nodeClasses {
		for i := 0; i < cfg.NodeTrials; i++ {
			specs = append(specs, trialSpec{class: c, seed: mixSeed(cfg.Seed, uint64(c), uint64(i))})
		}
	}
	for _, c := range persistClasses {
		for i := 0; i < cfg.PersistTrials; i++ {
			specs = append(specs, trialSpec{class: c, seed: mixSeed(cfg.Seed, uint64(c), uint64(i))})
		}
	}
	for _, c := range migrateClasses {
		for i := 0; i < cfg.MigrateTrials; i++ {
			specs = append(specs, trialSpec{class: c, seed: mixSeed(cfg.Seed, uint64(c), uint64(i))})
		}
	}

	results := make([]trialResult, len(specs))
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(specs) {
					return
				}
				sp := specs[i]
				switch {
				case sp.class >= MigrateFrameDrop:
					results[i] = runMigrateTrial(mfx, sp.class, sp.seed)
				case sp.class >= PersistTorn:
					results[i] = runPersistTrial(fx, sp.class, sp.seed)
				case sp.wl != nil && cfg.Tolerate:
					results[i] = runLocalTolerantTrial(sp.wl, sp.class, sp.seed)
				case sp.wl != nil:
					results[i] = runLocalTrial(sp.wl, sp.class, sp.seed)
				case sp.class == NodeKill || sp.class == NodeStall:
					if cfg.Tolerate {
						results[i] = runNodeTolerantTrial(sp.class, mesh, sp.seed)
					} else {
						results[i] = runNodeTrial(sp.class, mesh, sp.seed)
					}
				case cfg.Tolerate:
					results[i] = runNoCTolerantTrial(sp.class, mesh, sp.seed)
				default:
					results[i] = runNoCTrial(sp.class, mesh, sp.seed)
				}
			}
		}()
	}
	wg.Wait()

	res := &Result{Seed: cfg.Seed, Tolerant: cfg.Tolerate, Classes: make([]ClassStats, NumClasses)}
	for c := range res.Classes {
		res.Classes[c].Class = Class(c)
		res.Classes[c].Details = make(map[string]int)
	}
	for i, sp := range specs {
		cs := &res.Classes[sp.class]
		cs.Trials++
		res.Trials++
		switch results[i].outcome {
		case Detected:
			cs.Detected++
			res.Detected++
		case Masked:
			cs.Masked++
			res.Masked++
		case Escaped:
			cs.Escaped++
			res.Escaped++
		case Tolerated:
			cs.Tolerated++
			res.Tolerated++
		}
		cs.Details[results[i].detail]++
		if results[i].flight != "" && len(res.Flights) < MaxFlightCaptures {
			res.Flights = append(res.Flights, FlightCapture{
				Class: sp.class, Seed: sp.seed,
				Detail: results[i].detail, Dump: results[i].flight,
			})
		}
		res.Restores += results[i].restores
		res.Checkpoints += results[i].checkpoints
		res.EccFixed += results[i].eccFixed
		res.Retransmits += results[i].retransmits
		res.DupSupp += results[i].dupSupp
		res.PersistCorrupt += results[i].persistCorrupt
		res.PersistFallbacks += results[i].persistFallback
		res.MigrateRetransmits += results[i].migrateRetrans
		res.MigrateDupSupp += results[i].migrateDupSupp
		res.MigrateAborts += results[i].migrateAborts
	}
	if cfg.Recovery {
		var rec *RecoveryResult
		var err error
		if cfg.Tolerate {
			rec, err = AutoRecoveryTrial(cfg.Seed)
		} else {
			rec, err = RecoveryTrial(cfg.Seed)
		}
		if err != nil {
			return nil, err
		}
		res.Recovery = rec
	}
	return res, nil
}

// Table renders the campaign as the audit table: one row per exercised
// class, a totals row, and a detection-mechanism breakdown. Same seed →
// byte-identical string.
func (r *Result) Table() string {
	var b strings.Builder
	var tbl *stats.Table
	if r.Tolerant {
		tbl = stats.NewTable(
			fmt.Sprintf("Fault-tolerance audit (seed %d, %d injections, self-healing stack on)", r.Seed, r.Trials),
			"class", "trials", "tolerated", "masked", "unrecovered", "escaped")
		for _, cs := range r.Classes {
			if cs.Trials == 0 {
				continue
			}
			tbl.AddRow(cs.Class.String(), cs.Trials, cs.Tolerated, cs.Masked, cs.Detected, cs.Escaped)
		}
		tbl.AddRow("total", r.Trials, r.Tolerated, r.Masked, r.Detected, r.Escaped)
	} else {
		tbl = stats.NewTable(
			fmt.Sprintf("Fault-injection audit (seed %d, %d injections)", r.Seed, r.Trials),
			"class", "trials", "detected", "masked", "escaped")
		for _, cs := range r.Classes {
			if cs.Trials == 0 {
				continue
			}
			tbl.AddRow(cs.Class.String(), cs.Trials, cs.Detected, cs.Masked, cs.Escaped)
		}
		tbl.AddRow("total", r.Trials, r.Detected, r.Masked, r.Escaped)
	}
	b.WriteString(tbl.String())

	if r.Tolerant {
		rt := stats.NewTable("\nTolerance-stack repair work (summed over all trials)", "mechanism", "repairs")
		rt.AddRow("checkpoint rollbacks", int(r.Restores))
		rt.AddRow("verified checkpoints", int(r.Checkpoints))
		rt.AddRow("ecc single-bit corrections", int(r.EccFixed))
		rt.AddRow("transport retransmits", int(r.Retransmits))
		rt.AddRow("duplicates suppressed", int(r.DupSupp))
		// Persistence rows appear only when persistence classes ran, so
		// campaigns without them (E24) render byte-identically to before
		// the durability audit existed.
		if r.persistTrials() > 0 {
			rt.AddRow("persist corrupt generations detected", int(r.PersistCorrupt))
			rt.AddRow("persist fallback restores", int(r.PersistFallbacks))
		}
		// Migration rows likewise appear only when migration classes
		// ran, keeping earlier campaigns' tables byte-identical.
		if r.migrateTrials() > 0 {
			rt.AddRow("migration frames retransmitted", int(r.MigrateRetransmits))
			rt.AddRow("migration duplicates suppressed", int(r.MigrateDupSupp))
			rt.AddRow("migration aborts rolled back", int(r.MigrateAborts))
		}
		b.WriteString(rt.String())
	}

	mech := make(map[string]int)
	for _, cs := range r.Classes {
		for d, n := range cs.Details {
			mech[d] += n
		}
	}
	var names []string
	for d := range mech {
		names = append(names, d)
	}
	sort.Strings(names)
	mt := stats.NewTable("\nOutcome mechanisms (detection signal or masking path)", "mechanism", "trials")
	for _, d := range names {
		mt.AddRow(d, mech[d])
	}
	b.WriteString(mt.String())

	if r.Recovery != nil {
		label := "checkpoint recovery"
		if r.Tolerant {
			label = "watchdog auto-recovery"
		}
		fmt.Fprintf(&b, "\n%s: %s\n", label, r.Recovery)
	}
	return b.String()
}

// persistTrials sums the persistence classes' trial counts.
func (r *Result) persistTrials() int {
	n := 0
	for _, c := range persistClasses {
		if int(c) < len(r.Classes) {
			n += r.Classes[c].Trials
		}
	}
	return n
}

// migrateTrials sums the live-migration classes' trial counts.
func (r *Result) migrateTrials() int {
	n := 0
	for _, c := range migrateClasses {
		if int(c) < len(r.Classes) {
			n += r.Classes[c].Trials
		}
	}
	return n
}

// RegisterMetrics exposes the campaign on a telemetry registry under
// the faultinject.* namespace.
func (r *Result) RegisterMetrics(reg *telemetry.Registry) {
	add := func(name string, v int) {
		n := uint64(v)
		reg.Counter("faultinject."+name, func() uint64 { return n })
	}
	add("trials", r.Trials)
	add("detected", r.Detected)
	add("masked", r.Masked)
	add("escaped", r.Escaped)
	if r.Tolerant {
		add("tolerated", r.Tolerated)
		add64 := func(name string, v uint64) {
			reg.Counter("faultinject."+name, func() uint64 { return v })
		}
		add64("recovery.checkpoints", r.Checkpoints)
		add64("recovery.restores", r.Restores)
		add64("mem.ecc.corrected", r.EccFixed)
		add64("noc.transport.retransmits", r.Retransmits)
		add64("noc.transport.dup_suppressed", r.DupSupp)
		if r.persistTrials() > 0 {
			add64("persist.corrupt_detected", r.PersistCorrupt)
			add64("persist.fallbacks", r.PersistFallbacks)
		}
		if r.migrateTrials() > 0 {
			add64("migrate.retransmits", r.MigrateRetransmits)
			add64("migrate.dup_suppressed", r.MigrateDupSupp)
			add64("migrate.aborts", r.MigrateAborts)
		}
	}
	for _, cs := range r.Classes {
		if cs.Trials == 0 {
			continue
		}
		slug := strings.ReplaceAll(cs.Class.String(), "-", "_")
		add(slug+".trials", cs.Trials)
		add(slug+".detected", cs.Detected)
		add(slug+".masked", cs.Masked)
		add(slug+".escaped", cs.Escaped)
	}
	if r.Recovery != nil {
		match := 0
		if r.Recovery.Match {
			match = 1
		}
		add("recovery.match", match)
		wd := 0
		if r.Recovery.WatchdogTripped {
			wd = 1
		}
		add("recovery.watchdog", wd)
	}
}
