package faultinject

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/machine"
	"repro/internal/migrate"
	"repro/internal/multi"
	"repro/internal/noc"
	"repro/internal/word"
)

// The migration fault campaign: a 2-node mesh whose node-0 thread
// holds live cross-node state (remote loads and stores against node
// 1's segment) while a live migration of node 0 is armed mid-run. Each
// class attacks a different stage of the migration — wire frames
// during pre-copy, the source, the standby, the cutover barrier — and
// the gate is uniform: the run must finish with the never-migrated
// architectural fingerprint. Lossy-wire classes must additionally
// commit (recovering by retransmission, not by restarting the
// migration); source/standby/cutover classes must abort with the
// source untouched.
const (
	migrateWatchdog  = 6000
	migrateCkptEvery = 150
	// migrateCampaignAt arms the migration at a fixed cycle so the
	// clean probe's frame count and stepped window hold for every
	// trial; the per-trial randomness lives in the fault placement.
	migrateCampaignAt = 200
	// srcKillWindow bounds how far after the arming cycle the source
	// kill lands. The campaign wire needs >srcKillWindow cycles to
	// carry the base image, so the kill always lands mid-round-1.
	srcKillWindow = 256
)

// migrateCampaignLink is the campaign wire: slow enough that pre-copy
// genuinely overlaps execution (the source steps ~1k cycles per round)
// and the source-kill window always falls inside a round.
func migrateCampaignLink() migrate.LinkConfig {
	return migrate.LinkConfig{LatencyCycles: 16, BytesPerCycle: 8, RetransmitTimeout: 64}
}

// migrateClean is the fixture: the uninjected run's outcome plus the
// shape of an unfaulted committed migration, which the fault classes
// use to place their damage.
type migrateClean struct {
	cycles uint64 // clean full-run cycle count, no migration armed
	fp     uint64 // timing-excluded architectural fingerprint
	frames uint64 // frames a committed migration sends on the campaign wire
	rounds int    // pre-copy rounds that migration took
}

var migrateSrc = `
	ldi r3, 120
loop:
	ld   r2, r1, 0
	add  r5, r5, r2
	st   r1, 0, r5
	st   r6, 0, r5
	ld   r7, r6, 0
	add  r5, r5, r7
	subi r3, r3, 1
	bnez r3, loop
	halt
`

// buildMigrateMesh boots the migration-campaign multicomputer with the
// tolerance stack armed (checkpoint ring + watchdog auto-recovery, so
// a killed source is survivable) and a generation banked at cycle 0.
func buildMigrateMesh(mut func(*multi.Config)) (*multi.System, error) {
	cfg := multi.DefaultConfig()
	cfg.Mesh = noc.Config{DimX: 2, DimY: 1, DimZ: 1, RouterLatency: 2, InjectLatency: 1}
	cfg.Node.PhysBytes = 1 << 20
	cfg.Node.Clusters = 1
	cfg.Node.SlotsPerCluster = 2
	cfg.WatchdogCycles = migrateWatchdog
	cfg.CheckpointEvery = migrateCkptEvery
	cfg.CheckpointKeep = tolCkptKeep
	cfg.AutoRecover = true
	cfg.MaxRestores = tolMaxRestores
	if mut != nil {
		mut(&cfg)
	}
	s, err := multi.New(cfg)
	if err != nil {
		return nil, err
	}
	s.EnableFlight(flightRingSize)
	far, err := s.Nodes[1].K.AllocSegment(4096)
	if err != nil {
		return nil, err
	}
	local, err := s.Nodes[0].K.AllocSegment(4096)
	if err != nil {
		return nil, err
	}
	prog, err := asm.Assemble(migrateSrc)
	if err != nil {
		return nil, err
	}
	ip, err := s.Nodes[0].K.LoadProgram(prog, false)
	if err != nil {
		return nil, err
	}
	if _, err := s.Nodes[0].K.Spawn(1, ip, map[int]word.Word{1: far.Word(), 6: local.Word()}); err != nil {
		return nil, err
	}
	if err := s.CheckpointNow(); err != nil {
		return nil, err
	}
	return s, nil
}

// prepareMigrateFixture runs the workload clean (no migration) for the
// reference fingerprint, then runs one unfaulted armed migration to
// learn the committed transfer's frame count and round shape.
func prepareMigrateFixture() (*migrateClean, error) {
	s, err := buildMigrateMesh(nil)
	if err != nil {
		return nil, err
	}
	cycles := s.Run(1_000_000)
	if !s.Done() || s.Hung() {
		return nil, fmt.Errorf("faultinject: clean migrate run did not finish (hung=%v)", s.Hung())
	}
	fx := &migrateClean{cycles: cycles, fp: fingerprintThreads(meshThreads(s))}

	p, err := buildMigrateMesh(func(c *multi.Config) {
		c.MigrateAt = migrateCampaignAt
		c.Migrate = migrate.Config{Link: migrateCampaignLink()}
	})
	if err != nil {
		return nil, err
	}
	p.Run(fx.cycles*(tolMaxRestores+2) + 8*migrateWatchdog)
	rep := p.MigrateReport()
	if rep == nil || !rep.Committed {
		return nil, fmt.Errorf("faultinject: probe migration did not commit: %+v", rep)
	}
	if !p.Done() || fingerprintThreads(meshThreads(p)) != fx.fp {
		return nil, fmt.Errorf("faultinject: probe migration diverged from clean run")
	}
	if rep.Link.FramesSent < 5 {
		return nil, fmt.Errorf("faultinject: probe migration sent only %d frames", rep.Link.FramesSent)
	}
	fx.frames = rep.Link.FramesSent
	fx.rounds = len(rep.Rounds)
	return fx, nil
}

// classifyMigrate is the uniform back half of every migration trial:
// faults and hangs are unrecovered detections, divergence from the
// never-migrated fingerprint is an escape, and a clean finish is
// Tolerated under okDetail. Repair counters ride along.
func classifyMigrate(s *multi.System, fx *migrateClean, okDetail string) trialResult {
	counters := func(r trialResult) trialResult {
		r = attachMeshFlight(s, r)
		r.restores = s.Restores()
		r.checkpoints = s.Checkpoints()
		if rep := s.MigrateReport(); rep != nil {
			r.migrateRetrans = rep.Link.Retransmits
			r.migrateDupSupp = rep.Link.DupSuppressed
			if !rep.Committed {
				r.migrateAborts = 1
			}
		}
		return r
	}
	for _, t := range meshThreads(s) {
		if t.State == machine.Faulted {
			r := classifyFault(t.Fault)
			r.detail = "unrecovered-" + r.detail
			return counters(r)
		}
	}
	if s.Hung() {
		return counters(trialResult{outcome: Detected, detail: "unrecovered-hang"})
	}
	if !s.Done() {
		return counters(trialResult{outcome: Escaped, detail: "timeout"})
	}
	if fingerprintThreads(meshThreads(s)) != fx.fp {
		return counters(trialResult{outcome: Escaped, detail: "silent-divergence"})
	}
	return counters(trialResult{outcome: Tolerated, detail: okDetail})
}

// runMigrateTrial injects one migration-stage fault and audits the
// whole run: the lossy-wire classes must still commit (via
// retransmission/dedup, never by restarting), the source/standby/
// cutover classes must abort with the source bit-untouched, and every
// trial must finish with the clean architectural fingerprint.
func runMigrateTrial(fx *migrateClean, class Class, seed uint64) (res trialResult) {
	defer func() {
		if r := recover(); r != nil {
			res = trialResult{outcome: Escaped, detail: "panic"}
		}
	}()
	rng := NewRNG(seed)
	mcfg := migrate.Config{Link: migrateCampaignLink()}
	wantCommit := false
	var detail string
	var onMigrate func(*migrate.Link, *migrate.Receiver)
	var killAt uint64

	switch class {
	case MigrateFrameDrop, MigrateFrameCorrupt, MigrateFrameDup, MigrateFrameTrunc:
		// Fault every stride-th first transmission attempt; retries ride
		// a clean wire, so the link must converge by retransmission.
		wantCommit = true
		stride := 3 + rng.Uint64n(4)
		phase := rng.Uint64n(stride)
		var fate migrate.Fate
		switch class {
		case MigrateFrameDrop:
			fate.Drop = true
			detail = "migrate-retransmit"
		case MigrateFrameCorrupt:
			fate.Corrupt = true
			detail = "migrate-retransmit"
		case MigrateFrameTrunc:
			fate.Truncate = true
			detail = "migrate-retransmit"
		case MigrateFrameDup:
			fate.Duplicate = true
			detail = "migrate-dup-suppressed"
		}
		onMigrate = func(link *migrate.Link, recv *migrate.Receiver) {
			link.Intercept = func(f *migrate.Frame, attempt int) migrate.Fate {
				if attempt == 0 && f.Seq%stride == phase {
					return fate
				}
				return migrate.Fate{}
			}
		}
	case MigrateSrcKill:
		killAt = migrateCampaignAt + 1 + rng.Uint64n(srcKillWindow)
		detail = "migrate-src-kill"
	case MigrateStandbyCrash:
		// Crash the standby after a random pre-commit frame: the
		// receiver dies mid-transfer and every later delivery fails.
		crashAfter := 1 + rng.Uint64n(fx.frames-2)
		onMigrate = func(link *migrate.Link, recv *migrate.Receiver) {
			orig := link.Deliver
			var delivered uint64
			link.Deliver = func(f *migrate.Frame) error {
				delivered++
				if delivered == crashAfter {
					recv.Crashed = true
				}
				return orig(f)
			}
		}
		detail = "migrate-standby-crash"
	case MigrateCutover:
		mcfg.AbortAtCutover = true
		detail = "migrate-cutover-abort"
	default:
		return trialResult{outcome: Escaped, detail: "bad-class"}
	}

	s, err := buildMigrateMesh(func(c *multi.Config) {
		c.MigrateAt = migrateCampaignAt
		c.Migrate = mcfg
	})
	if err != nil {
		return trialResult{outcome: Escaped, detail: "build-error"}
	}
	s.OnMigrate = onMigrate
	if class == MigrateSrcKill {
		killed := false
		s.OnCycle = func(cycle uint64) {
			// Fires inside the migration's step hook — pre-copy overlaps
			// execution — so the kill lands mid-round. The guard keeps the
			// post-recovery re-execution from re-killing.
			if cycle >= killAt && !killed {
				killed = true
				_ = s.Kill(0)
			}
		}
	}
	s.Run(fx.cycles*(tolMaxRestores+2) + 8*migrateWatchdog)

	// Protocol checks first — they are stricter than the generic
	// fingerprint gate — then the uniform classification.
	fail := func(o Outcome, d string) trialResult {
		r := classifyMigrate(s, fx, d)
		r.outcome = o
		r.detail = d
		return attachMeshFlight(s, r)
	}
	rep := s.MigrateReport()
	switch {
	case rep == nil:
		return fail(Escaped, "migrate-never-ran")
	case wantCommit && !rep.Committed:
		return fail(Detected, "migrate-gave-up")
	case !wantCommit && rep.Committed:
		return fail(Escaped, "migrate-stale-commit")
	case class == MigrateSrcKill && rep.Reason != "source-failed":
		return fail(Escaped, "migrate-wrong-abort")
	case wantCommit && rep.Link.Retransmits == 0 && rep.Link.DupSuppressed == 0:
		// The fault never landed on the wire — nothing was exercised.
		return fail(Masked, "migrate-fault-missed")
	}
	return classifyMigrate(s, fx, detail)
}
