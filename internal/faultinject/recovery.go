package faultinject

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/multi"
	"repro/internal/noc"
)

// RecoveryResult reports one checkpoint/kill/restore exercise.
type RecoveryResult struct {
	CheckpointCycle uint64 // system cycle the checkpoint was taken at
	KillCycle       uint64 // system cycle the node was killed at
	WatchdogTripped bool   // the kill was detected by the cycle-deadline watchdog
	CleanFP         uint64 // fingerprint of the uninterrupted run
	RecoveredFP     uint64 // fingerprint after restore + re-execution
	Recovered       bool   // run completed after revival
	Match           bool   // RecoveredFP == CleanFP
}

func (r *RecoveryResult) String() string {
	return fmt.Sprintf("checkpoint@%d kill@%d watchdog=%v recovered=%v fingerprint-match=%v",
		r.CheckpointCycle, r.KillCycle, r.WatchdogTripped, r.Recovered, r.Match)
}

// buildRecovery boots the recovery scenario: a 2-node mesh where node 0
// runs one thread doing remote reads from node 1 plus one local-sweep
// thread, and node 1 is a passive home node. All mutable state lives on
// node 0, so restoring node 0 from a checkpoint rewinds the entire
// computation — re-execution after restore is idempotent by
// construction (remote traffic is read-only).
func buildRecovery() (*multi.System, machine.Config, error) {
	cfg := multi.DefaultConfig()
	cfg.Mesh = noc.Config{DimX: 2, DimY: 1, DimZ: 1, RouterLatency: 2, InjectLatency: 1}
	cfg.Node.PhysBytes = 1 << 20
	cfg.Node.Clusters = 1
	cfg.Node.SlotsPerCluster = 2
	cfg.WatchdogCycles = meshWatchdog
	s, err := multi.New(cfg)
	if err != nil {
		return nil, machine.Config{}, err
	}
	if err := loadMeshWorkload(s, 1); err != nil {
		return nil, machine.Config{}, err
	}
	return s, cfg.Node, nil
}

// RecoveryTrial runs the full graceful-recovery loop: checkpoint node 0
// mid-run, kill it later, let the watchdog detect the hang, rebuild the
// node's kernel from the checkpoint, revive it, and run to completion.
// Success means the resumed run's architectural fingerprint equals an
// uninterrupted run's.
func RecoveryTrial(seed uint64) (*RecoveryResult, error) {
	rng := NewRNG(seed)

	// Reference: the uninterrupted run.
	s1, _, err := buildRecovery()
	if err != nil {
		return nil, err
	}
	cycles := s1.Run(1_000_000)
	if !s1.Done() || s1.Hung() {
		return nil, fmt.Errorf("faultinject: recovery reference run did not finish (hung=%v)", s1.Hung())
	}
	cleanFP := fingerprintThreads(s1.Nodes[0].K.M.Threads())

	// Faulted run: checkpoint, then kill, then watchdog.
	s2, nodeCfg, err := buildRecovery()
	if err != nil {
		return nil, err
	}
	ckAt := 1 + rng.Uint64n(cycles/2)
	killAt := ckAt + 1 + rng.Uint64n(cycles/4)
	var cp *kernel.Checkpoint
	var cpErr error
	s2.OnCycle = func(c uint64) {
		switch c {
		case ckAt:
			cp, cpErr = s2.Nodes[0].K.Checkpoint()
		case killAt:
			s2.Kill(0)
		}
	}
	budget := cycles*3 + 4*meshWatchdog
	s2.Run(budget)
	if cpErr != nil {
		return nil, fmt.Errorf("faultinject: checkpoint: %w", cpErr)
	}
	if cp == nil {
		return nil, fmt.Errorf("faultinject: checkpoint cycle %d never reached", ckAt)
	}
	res := &RecoveryResult{
		CheckpointCycle: ckAt,
		KillCycle:       killAt,
		WatchdogTripped: s2.Hung(),
		CleanFP:         cleanFP,
	}

	// Recover: rebuild node 0 from the checkpoint and resume.
	k2, err := kernel.Restore(nodeCfg, cp)
	if err != nil {
		return nil, fmt.Errorf("faultinject: restore: %w", err)
	}
	s2.OnCycle = nil
	s2.Revive(0, k2)
	s2.Run(budget)
	res.Recovered = s2.Done() && !s2.Hung()
	res.RecoveredFP = fingerprintThreads(s2.Nodes[0].K.M.Threads())
	res.Match = res.Recovered && res.RecoveredFP == res.CleanFP
	return res, nil
}
