// Tolerant campaign: the PR 3 fault mix rerun with the self-healing
// stack enabled.
//
// The baseline audit (audit.go, mesh.go) proves every fault is
// *detected* or masked. This file proves every detectable fault is
// *recovered*: single-node trials run under SECDED ECC with the
// machine's background scrubber and a ring of verified checkpoints that
// roll the kernel back through register/TLB machine checks; mesh trials
// run with the NoC reliable transport retransmitting through
// drop/corrupt faults and suppressing duplicates; node trials run with
// the multicomputer's coordinated checkpoints and watchdog-driven
// auto-recovery. A trial classifies Tolerated when the stack actually
// repaired something and the final architectural fingerprint equals the
// clean run's; a final Detected outcome means the fault was seen but
// not recovered — the E24 gate requires zero of those and zero escapes.
package faultinject

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/multi"
	"repro/internal/noc"
)

// Tolerant-driver tuning: checkpoint cadence and rollback budget for
// single-node trials, background-scrubber cadence for the machine.
const (
	tolCkptInterval = 400 // cycles between verified checkpoints
	tolCkptKeep     = 2   // checkpoint ring size
	tolMaxRestores  = 4   // rollback budget per trial
	tolScrubEvery   = 64  // machine cycles between scrub sweeps
	tolScrubWords   = 256 // words per sweep
)

// tolerantNodeConfig is the buildLocal machine geometry with the
// tolerance stack's memory knobs: the ECC scrubber on the cycle loop.
func tolerantNodeConfig() machine.Config {
	cfg := machine.MMachine()
	cfg.Clusters = 1
	cfg.SlotsPerCluster = 2
	cfg.PhysBytes = 1 << 20
	cfg.ScrubEvery = tolScrubEvery
	cfg.ScrubWords = tolScrubWords
	return cfg
}

// tolDriver drives one single-node tolerant trial: chunked execution
// with a ring of verified checkpoints, rolling back through detected
// faults. "Verified" means a generation is captured only when the
// armed-register model is quiet — and kernel.Checkpoint reads memory
// through the ECC plane, healing correctable decay on the way into the
// image — so by induction every banked generation is clean.
type tolDriver struct {
	cfg      machine.Config
	k        *kernel.Kernel
	inj      *Injector
	ring     []*kernel.Checkpoint
	restores uint64
	banked   uint64 // checkpoints captured
	failed   bool   // rollback budget exhausted or restore error
}

// maybeCheckpoint banks a generation if the current state verifies.
func (d *tolDriver) maybeCheckpoint() {
	if d.inj.Armed() {
		return // latent register corruption: do not poison the ring
	}
	cp, err := d.k.Checkpoint()
	if err != nil {
		return // uncorrectable memory: keep the older generations
	}
	d.ring = append(d.ring, cp)
	if len(d.ring) > tolCkptKeep {
		d.ring = d.ring[len(d.ring)-tolCkptKeep:]
	}
	d.banked++
}

// restore rolls the kernel back to the newest banked generation and
// rearms the tolerance environment the image does not capture: the ECC
// plane, the integrity hook, and a disarmed injector (the restored
// register file predates the corruption).
func (d *tolDriver) restore() bool {
	if len(d.ring) == 0 || d.restores >= tolMaxRestores {
		return false
	}
	k2, err := kernel.Restore(d.cfg, d.ring[len(d.ring)-1])
	if err != nil {
		return false
	}
	d.k = k2
	d.k.M.Space.Phys.EnableECC()
	d.k.M.Integrity = d.inj.CheckInst
	d.inj.Disarm()
	d.restores++
	return true
}

// faultedThread returns the first faulted thread, if any.
func faultedThread(k *kernel.Kernel) *machine.Thread {
	for _, t := range k.M.Threads() {
		if t.State == machine.Faulted {
			return t
		}
	}
	return nil
}

// run executes up to total cycles in checkpoint-interval chunks,
// rolling back whenever a machine check faults a thread. Sets failed
// when the rollback budget runs dry.
func (d *tolDriver) run(total uint64) {
	var executed uint64
	for executed < total && !d.k.M.Done() {
		chunk := uint64(tolCkptInterval)
		if rem := total - executed; chunk > rem {
			chunk = rem
		}
		executed += d.k.Run(chunk)
		if faultedThread(d.k) != nil {
			if !d.restore() {
				d.failed = true
				return
			}
			continue
		}
		if !d.k.M.Done() {
			d.maybeCheckpoint()
		}
	}
}

// runLocalTolerantTrial is runLocalTrial with the stack enabled: same
// workloads, same per-trial seed stream, same injection — but ECC
// corrects memory flips, the scrubber sweeps in the background, and
// detected register/TLB faults roll back to a verified checkpoint
// instead of ending the run.
func runLocalTolerantTrial(w *workload, class Class, seed uint64) (res trialResult) {
	defer func() {
		if r := recover(); r != nil {
			res = trialResult{outcome: Escaped, detail: "panic"}
		}
	}()
	rng := NewRNG(seed)
	d, segs, err := buildLocalTolerant(w)
	if err != nil {
		return trialResult{outcome: Escaped, detail: "build-error"}
	}
	injectAt := 1 + rng.Uint64n(w.clean.cycles)
	d.maybeCheckpoint() // generation 0: the booted, unfaulted machine
	d.run(injectAt)
	detail := injectLocal(class, d.k, d.inj, segs, rng)
	d.run(w.budget * (tolMaxRestores + 2))

	counters := func(r trialResult) trialResult {
		r.restores = d.restores
		r.checkpoints = d.banked
		r.eccFixed = d.k.M.Space.Phys.ECCStats().Corrected
		return r
	}
	if d.failed {
		return counters(trialResult{outcome: Detected, detail: "unrecovered"})
	}
	if !d.k.M.Done() {
		return counters(trialResult{outcome: Detected, detail: "unrecovered-hang"})
	}
	tolerated := d.restores > 0
	if d.restores > 0 {
		detail = "rollback"
	}
	// Retirement healing: latent damage the run never consumed is
	// repaired, not merely reported.
	if bad := d.k.M.Space.Phys.Scrub(); bad > 0 {
		// Multi-bit decay from a single injected flip cannot happen;
		// if it ever does, it is an unrecovered detection.
		return counters(trialResult{outcome: Detected, detail: "unrecovered-mem"})
	}
	if st := d.k.M.Space.Phys.ECCStats(); st.Corrected > 0 {
		tolerated = true
		detail = "ecc-corrected"
	}
	if d.k.M.Space.TLB.PoisonedEntries() > 0 {
		// A poisoned-but-unused entry: flushing it re-fetches clean
		// translations from the page table.
		d.k.M.Space.TLB.Flush()
		tolerated = true
		detail = "tlb-flushed"
	}
	if d.inj.Armed() {
		// Latent register corruption (never read, never overwritten):
		// the newest verified generation predates it by construction —
		// roll back and re-execute clean.
		if !d.restore() {
			return counters(trialResult{outcome: Detected, detail: "unrecovered"})
		}
		d.run(w.budget * 2)
		if d.failed || !d.k.M.Done() {
			return counters(trialResult{outcome: Detected, detail: "unrecovered"})
		}
		tolerated = true
		detail = "reg-rollback"
	}
	if fingerprintThreads(d.k.M.Threads()) != w.clean.fp {
		return counters(trialResult{outcome: Escaped, detail: "silent-divergence"})
	}
	if tolerated {
		return counters(trialResult{outcome: Tolerated, detail: detail})
	}
	return counters(trialResult{outcome: Masked, detail: detail})
}

// buildLocalTolerant boots the workload under the tolerance stack: same
// geometry and thread layout as buildLocal, but with the SECDED plane
// in place of detect-only parity and the background scrubber running.
func buildLocalTolerant(w *workload) (*tolDriver, []core.Pointer, error) {
	cfg := tolerantNodeConfig()
	k, inj, segs, err := buildLocalWith(w, cfg)
	if err != nil {
		return nil, nil, err
	}
	k.M.Space.Phys.EnableECC() // supersedes buildLocal's parity plane
	return &tolDriver{cfg: cfg, k: k, inj: inj}, segs, nil
}

// buildMeshTolerant is buildMesh with the stack enabled: reliable
// transport on the fabric, coordinated checkpoints in a ring, and
// watchdog-escalated auto-recovery.
func buildMeshTolerant(ic noc.Interceptor) (*multi.System, error) {
	cfg := multi.DefaultConfig()
	cfg.Mesh = noc.Config{DimX: 4, DimY: 1, DimZ: 1, RouterLatency: 2, InjectLatency: 1}
	cfg.Mesh.Transport.Enabled = true
	cfg.Node.PhysBytes = 1 << 20
	cfg.Node.Clusters = 1
	cfg.Node.SlotsPerCluster = 2
	cfg.WatchdogCycles = meshWatchdog
	cfg.CheckpointEvery = tolCkptInterval
	cfg.CheckpointKeep = tolCkptKeep
	cfg.AutoRecover = true
	cfg.MaxRestores = tolMaxRestores
	s, err := multi.New(cfg)
	if err != nil {
		return nil, err
	}
	s.Net.Interceptor = ic
	s.EnableFlight(flightRingSize)
	if err := loadMeshWorkload(s, 3); err != nil {
		return nil, err
	}
	if err := s.CheckpointNow(); err != nil {
		return nil, err
	}
	return s, nil
}

// classifyMeshTolerant classifies a tolerant mesh trial, attaching the
// stack's repair counters, and — for escapes and unrecovered
// detections — the flight-recorder dump.
func classifyMeshTolerant(s *multi.System, clean *meshClean, maskDetail string) trialResult {
	counters := func(r trialResult) trialResult {
		r = attachMeshFlight(s, r)
		st := s.Net.Stats()
		r.restores = s.Restores()
		r.checkpoints = s.Checkpoints()
		r.retransmits = st.Retransmits
		r.dupSupp = st.DupSuppressed
		return r
	}
	for _, t := range meshThreads(s) {
		if t.State == machine.Faulted {
			// The transport is supposed to absorb every link fault; a
			// surviving machine check is an unrecovered detection.
			r := classifyFault(t.Fault)
			r.detail = "unrecovered-" + r.detail
			return counters(r)
		}
	}
	if s.Hung() {
		return counters(trialResult{outcome: Detected, detail: "unrecovered-hang"})
	}
	if !s.Done() {
		return counters(trialResult{outcome: Escaped, detail: "timeout"})
	}
	if fingerprintThreads(meshThreads(s)) != clean.fp {
		return counters(trialResult{outcome: Escaped, detail: "silent-divergence"})
	}
	st := s.Net.Stats()
	switch {
	case st.Retransmits > 0:
		return counters(trialResult{outcome: Tolerated, detail: "retransmit"})
	case st.DupSuppressed > 0:
		return counters(trialResult{outcome: Tolerated, detail: "dup-suppressed"})
	case s.Restores() > 0:
		return counters(trialResult{outcome: Tolerated, detail: "auto-restore"})
	}
	return counters(trialResult{outcome: Masked, detail: maskDetail})
}

// runNoCTolerantTrial is runNoCTrial against the reliable transport:
// the same seeded message fault is injected, and the transport must
// hide it.
func runNoCTolerantTrial(class Class, clean *meshClean, seed uint64) (res trialResult) {
	defer func() {
		if r := recover(); r != nil {
			res = trialResult{outcome: Escaped, detail: "panic"}
		}
	}()
	rng := NewRNG(seed)
	var fate noc.Fate
	var maskDetail string
	switch class {
	case NoCDrop:
		fate.Drop = true
		maskDetail = "drop"
	case NoCDuplicate:
		fate.Duplicate = true
		maskDetail = "duplicate"
	case NoCCorrupt:
		fate.Corrupt = true
		maskDetail = "corrupt"
	case NoCDelay:
		fate.Delay = 1 + rng.Uint64n(400)
		maskDetail = "delay"
	default:
		return trialResult{outcome: Escaped, detail: "bad-class"}
	}
	mf := &MessageFaulter{Target: rng.Uint64n(clean.messages), Fate: fate}
	s, err := buildMeshTolerant(mf)
	if err != nil {
		return trialResult{outcome: Escaped, detail: "build-error"}
	}
	s.Run(clean.cycles*(tolMaxRestores+2) + 8*meshWatchdog)
	return classifyMeshTolerant(s, clean, maskDetail)
}

// runNodeTolerantTrial is runNodeTrial with auto-recovery armed: a
// killed load-bearing node trips the watchdog, which restores every
// node from the newest coordinated generation and resumes — no caller
// intervention.
func runNodeTolerantTrial(class Class, clean *meshClean, seed uint64) (res trialResult) {
	defer func() {
		if r := recover(); r != nil {
			res = trialResult{outcome: Escaped, detail: "panic"}
		}
	}()
	rng := NewRNG(seed)
	s, err := buildMeshTolerant(nil)
	if err != nil {
		return trialResult{outcome: Escaped, detail: "build-error"}
	}
	injectAt := 1 + rng.Uint64n(clean.cycles*3/4)
	s.Run(injectAt)
	victim := rng.Intn(len(s.Nodes))
	var maskDetail string
	switch class {
	case NodeKill:
		if err := s.Kill(victim); err != nil {
			return trialResult{outcome: Escaped, detail: "build-error"}
		}
		maskDetail = fmt.Sprintf("kill-node%d", victim)
	case NodeStall:
		if err := s.Stall(victim, s.Cycle()+1+rng.Uint64n(2000)); err != nil {
			return trialResult{outcome: Escaped, detail: "build-error"}
		}
		maskDetail = "stall"
	default:
		return trialResult{outcome: Escaped, detail: "bad-class"}
	}
	s.Run(clean.cycles*(tolMaxRestores+2) + 8*meshWatchdog)
	return classifyMeshTolerant(s, clean, maskDetail)
}

// AutoRecoveryTrial is RecoveryTrial's closed-loop counterpart: the
// same checkpoint/kill scenario, but the system checkpoints itself on a
// cadence and the watchdog performs the restore — the harness only
// injects the kill and verifies the fingerprint.
func AutoRecoveryTrial(seed uint64) (*RecoveryResult, error) {
	rng := NewRNG(seed)

	// Reference: the uninterrupted run (stack off — the fingerprint is
	// architectural, and this keeps the reference identical to
	// RecoveryTrial's).
	s1, _, err := buildRecovery()
	if err != nil {
		return nil, err
	}
	cycles := s1.Run(1_000_000)
	if !s1.Done() || s1.Hung() {
		return nil, fmt.Errorf("faultinject: auto-recovery reference run did not finish (hung=%v)", s1.Hung())
	}
	cleanFP := fingerprintThreads(s1.Nodes[0].K.M.Threads())

	s2, _, err := buildRecoveryTolerant()
	if err != nil {
		return nil, err
	}
	killAt := 1 + rng.Uint64n(cycles*3/4)
	s2.OnCycle = func(c uint64) {
		if c == killAt {
			if err := s2.Kill(0); err == nil {
				s2.OnCycle = nil
			}
		}
	}
	s2.Run(cycles*(tolMaxRestores+2) + 8*meshWatchdog)
	res := &RecoveryResult{
		CheckpointCycle: killAt / tolCkptInterval * tolCkptInterval,
		KillCycle:       killAt,
		WatchdogTripped: s2.Restores() > 0,
		CleanFP:         cleanFP,
		Recovered:       s2.Done() && !s2.Hung(),
		RecoveredFP:     fingerprintThreads(s2.Nodes[0].K.M.Threads()),
	}
	res.Match = res.Recovered && res.RecoveredFP == res.CleanFP
	return res, nil
}

// buildRecoveryTolerant is buildRecovery with the self-healing stack:
// coordinated checkpoints, auto-recovery, reliable transport.
func buildRecoveryTolerant() (*multi.System, machine.Config, error) {
	cfg := multi.DefaultConfig()
	cfg.Mesh = noc.Config{DimX: 2, DimY: 1, DimZ: 1, RouterLatency: 2, InjectLatency: 1}
	cfg.Mesh.Transport.Enabled = true
	cfg.Node.PhysBytes = 1 << 20
	cfg.Node.Clusters = 1
	cfg.Node.SlotsPerCluster = 2
	cfg.WatchdogCycles = meshWatchdog
	cfg.CheckpointEvery = tolCkptInterval
	cfg.CheckpointKeep = tolCkptKeep
	cfg.AutoRecover = true
	cfg.MaxRestores = tolMaxRestores
	s, err := multi.New(cfg)
	if err != nil {
		return nil, machine.Config{}, err
	}
	if err := loadMeshWorkload(s, 1); err != nil {
		return nil, machine.Config{}, err
	}
	if err := s.CheckpointNow(); err != nil {
		return nil, machine.Config{}, err
	}
	return s, cfg.Node, nil
}
