package capverify

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

// dptr builds a read/write data pointer with an exact word offset.
func dptr(off uint64) Value {
	return PtrExact(core.PermReadWrite, 12, off, RegData)
}

// rptr builds a data pointer whose offset ranges over [lo, hi] with the
// given congruence (mod 0 leaves the join-computed congruence alone).
func rptr(lo, hi, mod, rem uint64) Value {
	v := dptr(lo)
	v.OffHi = hi
	if mod != 0 {
		v.Mod, v.Rem = mod, rem
	}
	return v.canon()
}

func TestStoreStrongReload(t *testing.T) {
	var m mstore
	cap := dptr(64)
	m = m.storeWord(dptr(8), cap)
	got := m.loadWord(dptr(8))
	if got != cap {
		t.Errorf("strong store/reload: got %s, want %s", got, cap)
	}
	// Overwrite strongly with an integer: the old value must not linger.
	m = m.storeWord(dptr(8), IntExact(7))
	if got := m.loadWord(dptr(8)); got != IntExact(7) {
		t.Errorf("strong overwrite: got %s, want 7", got)
	}
	// An untouched slot is unknown, not zero.
	if got := m.loadWord(dptr(16)); got.Kind != KTop {
		t.Errorf("absent slot: got %s, want top", got)
	}
}

func TestStoreWeakUpdateJoins(t *testing.T) {
	var m mstore
	m = m.storeWord(dptr(8), IntExact(1))
	m = m.storeWord(dptr(16), IntExact(2))
	// A store somewhere in [8,16] may hit either cell: both must absorb
	// the new value, neither may be replaced by it.
	m = m.storeWord(rptr(8, 16, 8, 0), IntExact(9))
	for off, old := range map[uint64]int64{8: 1, 16: 2} {
		got := m.loadWord(dptr(off))
		if !Leq(IntExact(old), got) || !Leq(IntExact(9), got) {
			t.Errorf("weak update at %d: got %s, want a cover of {%d, 9}", off, got, old)
		}
	}
	// The congruence class excludes offset 24: an aligned store over
	// [8,24] with mod 16 rem 8 must leave a mod-16-rem-0 cell alone.
	var m2 mstore
	m2 = m2.storeWord(dptr(16), IntExact(5))
	m2 = m2.storeWord(rptr(8, 24, 16, 8), IntExact(9))
	if got := m2.loadWord(dptr(16)); got != IntExact(5) {
		t.Errorf("congruence-disjoint weak update clobbered cell: got %s, want 5", got)
	}
}

func TestStoreByteClearsTag(t *testing.T) {
	var m mstore
	m = m.storeWord(dptr(8), dptr(0))
	m = m.storeByte(dptr(11)) // byte 3 of word 8
	got := m.loadWord(dptr(8))
	if got.Kind == KPtr {
		t.Errorf("byte store left a capability in the word: %s", got)
	}
}

func TestStoreCodeRegionDisjoint(t *testing.T) {
	var m mstore
	m = m.storeWord(dptr(8), IntExact(3))
	cp := PtrExact(core.PermExecuteUser, 12, 8, RegCode)
	m = m.storeWord(cp, IntExact(99))
	if got := m.loadWord(dptr(8)); got != IntExact(3) {
		t.Errorf("code store aliased a data cell: got %s, want 3", got)
	}
}

// TestStoreSoundnessDifferential runs random store/load sequences
// against a concrete memory: every abstract load must over-approximate
// the concrete word it models.
func TestStoreSoundnessDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		var m mstore
		conc := make(map[uint64]int64) // concrete words actually written
		for step := 0; step < 40; step++ {
			off := uint64(rng.Intn(32)) * 8
			val := int64(rng.Intn(100))
			if rng.Intn(4) == 0 {
				// Inexact store: abstractly anywhere in [off, off+span],
				// concretely at one address we pick from that set.
				span := uint64(rng.Intn(4)) * 8
				pick := off + uint64(rng.Int63n(int64(span/8)+1))*8
				conc[pick] = val
				m = m.storeWord(rptr(off, off+span, 8, 0), IntExact(val))
			} else {
				conc[off] = val
				m = m.storeWord(dptr(off), IntExact(val))
			}
		}
		for off, want := range conc {
			got := m.loadWord(dptr(off))
			if !Leq(IntExact(want), got) {
				t.Fatalf("trial %d: load at %d: abstract %s does not cover concrete %d",
					trial, off, got, want)
			}
		}
	}
}

// TestJoinMemKeyShrinkage pins the termination argument: the key set of
// joinMem(a, b) is a subset of a's keys, so iterated joins along a loop
// can only shrink or stabilize the tracked-cell set.
func TestJoinMemKeyShrinkage(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	mk := func() mstore {
		var m mstore
		for i := 0; i < rng.Intn(10); i++ {
			m = m.setStrong(uint64(rng.Intn(16))*8, IntExact(int64(rng.Intn(50))))
		}
		return m
	}
	keys := func(m mstore) map[uint64]bool {
		out := make(map[uint64]bool)
		for _, c := range m.cells {
			out[c.off] = true
		}
		return out
	}
	for trial := 0; trial < 200; trial++ {
		a, b := mk(), mk()
		j := joinMem(a, b, trial%2 == 0, []int64{0, 8, 64})
		ka := keys(a)
		for _, c := range j.cells {
			if !ka[c.off] {
				t.Fatalf("joinMem invented key %d absent from a", c.off)
			}
			// Pointwise soundness: the joined cell bounds both inputs.
			if av := a.get(c.off); !Leq(av, c.val) {
				t.Fatalf("joined cell %d = %s does not bound a's %s", c.off, c.val, av)
			}
			if bv := b.get(c.off); !Leq(bv, c.val) {
				t.Fatalf("joined cell %d = %s does not bound b's %s", c.off, c.val, bv)
			}
		}
	}
}

// TestJoinMemStabilizes: iterating widen-joins against a stream of
// stores reaches a fixpoint (the loop-head termination argument).
func TestJoinMemStabilizes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ths := []int64{0, 1, 8, 256}
	for trial := 0; trial < 50; trial++ {
		var acc mstore
		for i := 0; i < 8; i++ {
			acc = acc.setStrong(uint64(i)*8, IntExact(int64(rng.Intn(10))))
		}
		changes := 0
		for i := 0; i < 100; i++ {
			next := acc.storeWord(rptr(0, 56, 8, 0), IntExact(int64(rng.Intn(1000))))
			j := joinMem(acc, next, true, ths)
			if !memEq(j, acc) {
				changes++
				acc = j
			}
		}
		if changes > 40 {
			t.Fatalf("widen-join chain changed %d times; expected stabilization", changes)
		}
	}
}
