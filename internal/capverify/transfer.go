package capverify

import (
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/word"
)

// opKind classifies every opcode for the verifier's dispatch. The
// exhaustive ISA metadata test asserts that no opcode maps to
// kUnclassified, so adding an instruction without teaching the
// verifier about it fails the build's tests.
type opKind uint8

const (
	kUnclassified opKind = iota
	kNop
	kHalt
	kALU    // integer/compare ALU forms, register or immediate
	kBr     // unconditional relative branch
	kCondBr // BEQZ / BNEZ
	kJump   // JMP / JMPL
	kTrap
	kMem      // LD / ST / LDB / STB
	kLea      // LEA / LEAI / LEAB / LEABI
	kRestrict // RESTRICT
	kSubseg   // SUBSEG
	kSetptr   // SETPTR
	kIsptr    // ISPTR
	kGetMeta  // GETPERM / GETLEN
	kMovip    // MOVIP
	kFP       // floating point, incl. ITOF/FTOI
)

var opKinds = [isa.NumOps]opKind{
	isa.NOP:  kNop,
	isa.HALT: kHalt,

	isa.ADD: kALU, isa.ADDI: kALU, isa.SUB: kALU, isa.SUBI: kALU,
	isa.MUL: kALU, isa.AND: kALU, isa.OR: kALU, isa.XOR: kALU,
	isa.SHL: kALU, isa.SHLI: kALU, isa.SHR: kALU, isa.SHRI: kALU,
	isa.SLT: kALU, isa.SLTI: kALU, isa.SEQ: kALU, isa.SEQI: kALU,
	isa.MOV: kALU, isa.LDI: kALU,

	isa.BR: kBr, isa.BEQZ: kCondBr, isa.BNEZ: kCondBr,
	isa.JMP: kJump, isa.JMPL: kJump, isa.TRAP: kTrap,

	isa.LD: kMem, isa.ST: kMem, isa.LDB: kMem, isa.STB: kMem,

	isa.LEA: kLea, isa.LEAI: kLea, isa.LEAB: kLea, isa.LEABI: kLea,
	isa.RESTRICT: kRestrict, isa.SUBSEG: kSubseg,
	isa.SETPTR: kSetptr, isa.ISPTR: kIsptr,
	isa.GETPERM: kGetMeta, isa.GETLEN: kGetMeta, isa.MOVIP: kMovip,

	isa.FADD: kFP, isa.FSUB: kFP, isa.FMUL: kFP, isa.FDIV: kFP,
	isa.FSLT: kFP, isa.ITOF: kFP, isa.FTOI: kFP,
}

// Handles reports whether the verifier has a transfer function for op.
func Handles(op isa.Op) bool {
	return int(op) < len(opKinds) && opKinds[op] != kUnclassified
}

// execPtrValue builds the abstract execute pointer installed in a
// register or implied by the IP at word index pc, under privilege mask
// priv.
func (v *verifier) execPtrValue(pc int, priv uint8) Value {
	off := uint64(pc) * word.BytesPerWord
	res := Value{
		Kind:  KPtr,
		LenLo: uint8(v.img.CodeLog), LenHi: uint8(v.img.CodeLog),
		OffLo: off, OffHi: off,
		Mod: exactMod, Rem: off & (exactMod - 1),
		Region: RegCode,
	}
	if priv&privUser != 0 {
		res.Perms |= 1 << core.PermExecuteUser
	}
	if priv&privPriv != 0 {
		res.Perms |= 1 << core.PermExecutePriv
	}
	return res.canon()
}

// fallthru emits the sequential-advance check and, when it passes, the
// pc+1 edge.
func (v *verifier) fallthru(out *stepOut, pc int, st state) {
	if ctrlCheck(out, pc+1, v.img.SegWords(), "sequential advance") {
		out.edges = append(out.edges, edge{pc: pc + 1, st: st})
	}
}

// step abstractly executes the decodable instruction at pc over the
// in-state, producing successor edges and the verdicts of every
// dynamic check the hardware would perform.
func (v *verifier) step(pc int, in state) stepOut {
	var out stepOut
	inst := v.img.Insts[pc]
	segWords := v.img.SegWords()

	switch opKinds[inst.Op] {
	case kNop:
		v.fallthru(&out, pc, in)

	case kHalt:
		// stops the thread; no checks, no successors

	case kALU:
		v.stepALU(&out, pc, in, inst)

	case kBr:
		t := pc + 1 + int(inst.Imm)
		if ctrlCheck(&out, t, segWords, "branch target") {
			out.edges = append(out.edges, edge{pc: t, st: in})
		}

	case kCondBr:
		v.stepCondBr(&out, pc, in, inst)

	case kJump:
		v.stepJump(&out, pc, in, inst)

	case kTrap:
		// TRAP advances the IP before entering the kernel, which may
		// rewrite the entire register file before resuming.
		if ctrlCheck(&out, pc+1, segWords, "trap return advance") {
			st := in
			havocRegs(&st)
			out.edges = append(out.edges, edge{pc: pc + 1, st: st})
		}

	case kMem:
		v.stepMem(&out, pc, in, inst)

	case kLea:
		v.stepLea(&out, pc, in, inst)

	case kRestrict:
		v.stepRestrict(&out, pc, in, inst)

	case kSubseg:
		v.stepSubseg(&out, pc, in, inst)

	case kSetptr:
		v.stepSetptr(&out, pc, in, inst)

	case kIsptr:
		var res Value
		switch in.regs[inst.Ra].Kind {
		case KPtr:
			res = IntExact(1)
		case KInt, KUninit:
			res = IntExact(0)
		default:
			res = IntRange(0, 1)
		}
		st := in
		st.def(inst.Rd, pc, res, pred{kind: pIsPtr, src: int8(inst.Ra), srcDef: in.defs[inst.Ra]})
		v.fallthru(&out, pc, st)

	case kGetMeta:
		pv, ok := ptrCheck(&out, in.regs[inst.Ra], inst.Ra, inst.Op.String())
		if !ok {
			return out
		}
		var res Value
		if inst.Op == isa.GETPERM {
			lo, hi := 15, 0
			for p := 0; p < 16; p++ {
				if pv.Perms&(1<<p) != 0 {
					if p < lo {
						lo = p
					}
					if p > hi {
						hi = p
					}
				}
			}
			res = IntRange(int64(lo), int64(hi))
		} else {
			res = IntRange(int64(pv.LenLo), int64(pv.LenHi))
		}
		st := in
		st.def(inst.Rd, pc, res, pred{})
		v.fallthru(&out, pc, st)

	case kMovip:
		st := in
		st.def(inst.Rd, pc, v.execPtrValue(pc, in.priv), pred{})
		v.fallthru(&out, pc, st)

	case kFP:
		var res Value
		if inst.Op == isa.FSLT {
			res = IntRange(0, 1)
		} else {
			res = IntAny()
		}
		st := in
		st.def(inst.Rd, pc, res, pred{})
		v.fallthru(&out, pc, st)
	}
	return out
}

// stepALU covers the integer, compare, MOV and LDI forms: pure
// register writes that cannot fault.
func (v *verifier) stepALU(out *stepOut, pc int, in state, inst isa.Inst) {
	st := in
	a := asInt(in.regs[inst.Ra])
	b := func() Value { return asInt(in.regs[inst.Rb]) }
	var res Value
	var pr pred

	switch inst.Op {
	case isa.ADD:
		res = addInt(a, b())
	case isa.ADDI:
		res = addInt(a, IntExact(inst.Imm))
	case isa.SUB:
		res = subInt(a, b())
	case isa.SUBI:
		res = subInt(a, IntExact(inst.Imm))
	case isa.MUL:
		res = mulInt(a, b())
	case isa.AND:
		res = bitwiseInt('&', a, b())
	case isa.OR:
		res = bitwiseInt('|', a, b())
	case isa.XOR:
		res = bitwiseInt('^', a, b())
	case isa.SHL:
		res = shlInt(a, b())
	case isa.SHLI:
		res = shlInt(a, IntExact(inst.Imm))
	case isa.SHR:
		res = shrInt(a, b())
	case isa.SHRI:
		res = shrInt(a, IntExact(inst.Imm))

	case isa.SLT, isa.SLTI:
		bv := IntExact(inst.Imm)
		if inst.Op == isa.SLT {
			bv = b()
		}
		always, never := intLt(a, bv)
		res = boolVal(always, never)
		if k, ok := bv.IsExactInt(); ok {
			pr = pred{kind: pLtK, src: int8(inst.Ra), srcDef: in.defs[inst.Ra], k: k}
		}

	case isa.SEQ:
		always, never := seqVals(in.regs[inst.Ra], in.regs[inst.Rb])
		res = boolVal(always, never)
		if k, ok := b().IsExactInt(); ok {
			pr = pred{kind: pEqK, src: int8(inst.Ra), srcDef: in.defs[inst.Ra], k: k}
		}
	case isa.SEQI:
		// Compares the bit image only (tags are ignored by SEQI).
		eqAlways := false
		if x, ok := a.IsExactInt(); ok && x == inst.Imm {
			eqAlways = true
		}
		eqNever := inst.Imm < a.Lo || inst.Imm > a.Hi ||
			(a.Mod > 1 && uint64(inst.Imm)&(a.Mod-1) != a.Rem)
		res = boolVal(eqAlways, eqNever)
		pr = pred{kind: pEqK, src: int8(inst.Ra), srcDef: in.defs[inst.Ra], k: inst.Imm}

	case isa.MOV:
		// A verbatim copy: capabilities, provenance and predicate facts
		// all travel with the value.
		st.regs[inst.Rd] = in.regs[inst.Ra]
		st.defs[inst.Rd] = in.defs[inst.Ra]
		st.preds[inst.Rd] = in.preds[inst.Ra]
		st.rels.kill(int8(inst.Rd))
		st.rels.derive(int8(inst.Rd), int8(inst.Ra), 0)
		v.fallthru(out, pc, st)
		return
	case isa.LDI:
		res = IntExact(inst.Imm)
	}

	if (inst.Op == isa.ADDI || inst.Op == isa.SUBI) && inst.Rd == inst.Ra {
		// A self-increment of a loop counter: maintain affine relations
		// through the write instead of killing them (rel.go).
		k := inst.Imm
		if inst.Op == isa.SUBI {
			k = -inst.Imm
		}
		saved := st.rels
		saved.shiftCtr(int8(inst.Rd), k)
		st.def(inst.Rd, pc, res, pr)
		st.rels = saved
		v.fallthru(out, pc, st)
		return
	}

	st.def(inst.Rd, pc, res, pr)
	v.fallthru(out, pc, st)
}

// seqVals decides full-word equality (SEQ compares tag and bits).
func seqVals(a, b Value) (always, never bool) {
	ax, aInt := a.IsExactInt() // KUninit or exact KInt: untagged, known bits
	bx, bInt := b.IsExactInt()
	if aInt && bInt {
		return ax == bx, ax != bx
	}
	aPtr, bPtr := a.Kind == KPtr, b.Kind == KPtr
	aData := a.Kind == KInt || a.Kind == KUninit
	bData := b.Kind == KInt || b.Kind == KUninit
	if (aPtr && bData) || (bPtr && aData) {
		return false, true // tags differ
	}
	if aPtr && bPtr {
		if a.Perms&b.Perms == 0 ||
			a.LenHi < b.LenLo || b.LenHi < a.LenLo ||
			a.OffHi < b.OffLo || b.OffHi < a.OffLo {
			return false, true
		}
		if a.Region != RegAny && b.Region != RegAny && a.Region != b.Region {
			return false, true
		}
		ap, aOne := a.SinglePerm()
		bp, bOne := b.SinglePerm()
		aOff, aExact := a.ExactOff()
		bOff, bExact := b.ExactOff()
		if aOne && bOne && ap == bp &&
			a.LenLo == a.LenHi && b.LenLo == b.LenHi && a.LenLo == b.LenLo &&
			aExact && bExact && aOff == bOff &&
			a.Region == b.Region && a.Region != RegAny {
			return true, false
		}
	}
	return false, false
}

// stepCondBr handles BEQZ/BNEZ: the branch-target LEA check only
// executes on taken paths, the advance check only on fall-through
// paths, and each surviving edge is refined by the condition and any
// predicate fact attached to the tested register.
func (v *verifier) stepCondBr(out *stepOut, pc int, in state, inst isa.Inst) {
	segWords := v.img.SegWords()
	cv := in.regs[inst.Ra]
	zeroTaken := inst.Op == isa.BEQZ

	takenPossible := canBeNonzero(cv)
	fallPossible := canBeZero(cv)
	if zeroTaken {
		takenPossible, fallPossible = fallPossible, takenPossible
	}

	if takenPossible {
		t := pc + 1 + int(inst.Imm)
		if ctrlCheck(out, t, segWords, "branch target") {
			st := in
			if refineEdge(&st, inst.Ra, zeroTaken) {
				out.edges = append(out.edges, edge{pc: t, st: st})
			}
		}
	}
	if fallPossible {
		if ctrlCheck(out, pc+1, segWords, "sequential advance") {
			st := in
			if refineEdge(&st, inst.Ra, !zeroTaken) {
				out.edges = append(out.edges, edge{pc: pc + 1, st: st})
			}
		}
	}
}

// refineEdge narrows the branched-on register to zero/nonzero and
// applies its predicate fact; false means the edge is infeasible.
func refineEdge(st *state, ra int, condZero bool) bool {
	var ok bool
	if condZero {
		st.regs[ra], ok = refineZero(st.regs[ra])
	} else {
		st.regs[ra], ok = refineNonzero(st.regs[ra])
	}
	if !ok {
		return false
	}
	p := st.preds[ra]
	if p.kind != pNone && st.defs[int(p.src)] == p.srcDef {
		// The comparison producers emit only 0 or 1, so nonzero means
		// the predicate held.
		return applyPred(st, p, !condZero)
	}
	return true
}

// applyPred narrows the predicate's source register given that the
// predicate evaluated to truth; false means contradiction (dead edge).
func applyPred(st *state, p pred, truth bool) bool {
	src := int(p.src)
	v := st.regs[src]
	switch p.kind {
	case pLtK:
		if v.Kind == KUninit {
			return truth == (0 < p.k)
		}
		if v.Kind != KInt {
			return true
		}
		if truth {
			if v.Lo >= p.k {
				return false
			}
			if v.Hi > p.k-1 {
				v.Hi = p.k - 1
			}
		} else {
			if v.Hi < p.k {
				return false
			}
			if v.Lo < p.k {
				v.Lo = p.k
			}
		}
		v = v.canon()
		if v.Kind == KBottom {
			return false
		}
		st.regs[src] = v

	case pEqK:
		if truth {
			switch v.Kind {
			case KUninit:
				return p.k == 0
			case KInt:
				if p.k < v.Lo || p.k > v.Hi ||
					(v.Mod > 1 && uint64(p.k)&(v.Mod-1) != v.Rem) {
					return false
				}
				st.regs[src] = IntExact(p.k)
			case KPtr:
				// A pointer's bit image has a nonzero permission field.
				if uint64(p.k)>>60 == 0 {
					return false
				}
			}
		} else {
			switch v.Kind {
			case KUninit:
				return p.k != 0
			case KInt:
				if v.Lo == v.Hi && v.Lo == p.k {
					return false
				}
				if v.Lo == p.k {
					v.Lo++
				}
				if v.Hi == p.k {
					v.Hi--
				}
				v = v.canon()
				if v.Kind == KBottom {
					return false
				}
				st.regs[src] = v
			}
		}

	case pIsPtr:
		if truth {
			switch v.Kind {
			case KUninit, KInt:
				return false
			case KTop:
				st.regs[src] = PtrAny(RegAny)
			}
		} else {
			switch v.Kind {
			case KPtr:
				return false
			case KTop:
				st.regs[src] = IntAny()
			}
		}
	}
	return true
}

// stepMem handles LD/ST/LDB/STB with the machine's exact check order:
// decode, displacement LEA (immutability then bounds), permission,
// span, alignment.
func (v *verifier) stepMem(out *stepOut, pc int, in state, inst isa.Inst) {
	write := inst.Op == isa.ST || inst.Op == isa.STB
	size := int64(word.BytesPerWord)
	if inst.Op == isa.LDB || inst.Op == isa.STB {
		size = 1
	}
	what := "load"
	mask := loadableMask
	if write {
		what = "store"
		mask = storableMask
	}

	pv, ok := ptrCheck(out, in.regs[inst.Ra], inst.Ra, what)
	if !ok {
		return
	}
	// An affine relation to a live loop counter can tighten the offset
	// interval well below what widening left behind.
	pv = relRefine(&in, int8(inst.Ra), pv)
	if inst.Imm != 0 {
		pv, ok = permCheck(out, pv, modifiableMask, core.FaultImmutable, inst.Ra, "address displacement")
		if !ok {
			return
		}
		pv, ok = leaBounds(out, pv, IntExact(inst.Imm), false, inst.Ra, what)
		if !ok {
			return
		}
	}
	pv, ok = permCheck(out, pv, mask, core.FaultPerm, inst.Ra, what)
	if !ok {
		return
	}
	pv, ok = spanCheck(out, pv, size, inst.Ra, what)
	if !ok {
		return
	}
	if size == word.BytesPerWord {
		pv, ok = alignCheck(out, pv, inst.Ra, what)
		if !ok {
			return
		}
	}

	st := in
	if inst.Imm == 0 {
		// The refined pointer is the register's value on every
		// continuing execution.
		st.regs[inst.Ra] = pv
	}
	switch inst.Op {
	case isa.LD:
		res := Top()
		if !v.cfg.RegistersOnly {
			res = st.mem.loadWord(pv)
		}
		st.def(inst.Rd, pc, res, pred{})
	case isa.LDB:
		st.def(inst.Rd, pc, IntRange(0, 255), pred{})
	case isa.ST:
		if !v.cfg.RegistersOnly {
			val := in.regs[inst.Rb]
			if val.Kind == KUninit {
				val = IntExact(0) // an unwritten register stores untagged 0
			}
			st.mem = st.mem.storeWord(pv, val)
		}
	case isa.STB:
		if !v.cfg.RegistersOnly {
			st.mem = st.mem.storeByte(pv)
		}
	}
	v.fallthru(out, pc, st)
}

// stepLea handles the four LEA forms.
func (v *verifier) stepLea(out *stepOut, pc int, in state, inst isa.Inst) {
	fromBase := inst.Op == isa.LEAB || inst.Op == isa.LEABI
	var off Value
	if inst.Op == isa.LEA || inst.Op == isa.LEAB {
		off = asInt(in.regs[inst.Rb])
	} else {
		off = IntExact(inst.Imm)
	}
	name := inst.Op.String()
	pv, ok := ptrCheck(out, in.regs[inst.Ra], inst.Ra, name)
	if !ok {
		return
	}
	pv, ok = permCheck(out, pv, modifiableMask, core.FaultImmutable, inst.Ra, name)
	if !ok {
		return
	}
	pv = relRefine(&in, int8(inst.Ra), pv)
	res, ok := leaBounds(out, pv, off, fromBase, inst.Ra, name)
	if !ok {
		return
	}
	st := in
	if k, exact := off.IsExactInt(); exact && !fromBase {
		if inst.Rd == inst.Ra {
			// A self-advancing induction pointer: shift affine relations
			// through the write instead of killing them (rel.go).
			saved := st.rels
			saved.shiftPtr(int8(inst.Rd), k)
			st.def(inst.Rd, pc, res, pred{})
			st.rels = saved
			v.fallthru(out, pc, st)
			return
		}
		// A derived pointer at a fixed displacement inherits the
		// source's affine relations, displaced.
		st.def(inst.Rd, pc, res, pred{})
		st.rels.derive(int8(inst.Rd), int8(inst.Ra), k)
		v.fallthru(out, pc, st)
		return
	}
	st.def(inst.Rd, pc, res, pred{})
	v.fallthru(out, pc, st)
}

func (v *verifier) stepRestrict(out *stepOut, pc int, in state, inst isa.Inst) {
	pv, ok := ptrCheck(out, in.regs[inst.Ra], inst.Ra, "restrict")
	if !ok {
		return
	}
	pv, ok = permCheck(out, pv, modifiableMask, core.FaultImmutable, inst.Ra, "restrict")
	if !ok {
		return
	}
	res := pv
	if t, exact := asInt(in.regs[inst.Rb]).IsExactInt(); exact {
		tp := core.Perm(uint64(t) & 0xf)
		var okMask uint16
		for p := core.Perm(0); p < core.NumPerms; p++ {
			if pv.Perms&(1<<p) != 0 && core.StrictSubset(tp, p) {
				okMask |= 1 << p
			}
		}
		switch {
		case okMask == pv.Perms:
			out.add(ClassPerm, VerdictSafe, core.FaultNone, inst.Ra,
				"restrict to %s is always a strict subset of r%d's rights", tp, inst.Ra)
		case okMask == 0:
			out.add(ClassPerm, VerdictFault, core.FaultPerm, inst.Ra,
				"restrict to %s is never a strict subset of %s", tp, permsString(pv.Perms))
			return
		default:
			out.add(ClassPerm, VerdictUnknown, core.FaultNone, inst.Ra,
				"restrict to %s may not be a strict subset of r%d's rights", tp, inst.Ra)
		}
		res.Perms = 1 << tp
	} else {
		out.add(ClassPerm, VerdictUnknown, core.FaultNone, inst.Rb,
			"restrict target permission in r%d is not statically known", inst.Rb)
		var mask uint16
		for p := core.Perm(0); p < core.NumPerms; p++ {
			if pv.Perms&(1<<p) == 0 {
				continue
			}
			for t := core.Perm(0); t < core.NumPerms; t++ {
				if core.StrictSubset(t, p) {
					mask |= 1 << t
				}
			}
		}
		res.Perms = mask
	}
	res = res.canon()
	if res.Kind == KBottom {
		return
	}
	st := in
	st.def(inst.Rd, pc, res, pred{})
	// RESTRICT keeps the offset: the derived capability inherits the
	// source's affine relations unchanged.
	st.rels.derive(int8(inst.Rd), int8(inst.Ra), 0)
	v.fallthru(out, pc, st)
}

func (v *verifier) stepSubseg(out *stepOut, pc int, in state, inst isa.Inst) {
	pv, ok := ptrCheck(out, in.regs[inst.Ra], inst.Ra, "subseg")
	if !ok {
		return
	}
	pv, ok = permCheck(out, pv, modifiableMask, core.FaultImmutable, inst.Ra, "subseg")
	if !ok {
		return
	}
	lv := asInt(in.regs[inst.Rb])
	lLo, lHi := lv.Lo, lv.Hi
	if lLo < 0 || lHi > 63 {
		lLo, lHi = 0, 63 // the machine masks with 0x3f
	}
	switch {
	case lHi < int64(pv.LenLo):
		out.add(ClassPerm, VerdictSafe, core.FaultNone, inst.Ra,
			"subseg to 2^[%d,%d] always shrinks r%d's segment", lLo, lHi, inst.Ra)
	case lLo >= int64(pv.LenHi):
		out.add(ClassPerm, VerdictFault, core.FaultLength, inst.Ra,
			"subseg to 2^[%d,%d] never shrinks r%d's 2^[%d,%d]-byte segment",
			lLo, lHi, inst.Ra, pv.LenLo, pv.LenHi)
		return
	default:
		out.add(ClassPerm, VerdictUnknown, core.FaultNone, inst.Ra,
			"subseg to 2^[%d,%d] may not shrink r%d's segment", lLo, lHi, inst.Ra)
		if lHi >= int64(pv.LenHi) {
			lHi = int64(pv.LenHi) - 1
		}
	}
	res := pv
	res.LenLo, res.LenHi = uint8(lLo), uint8(lHi)
	res.Region = RegAny // the sub-segment is a different protection unit
	if lLo == lHi && pv.OffHi < uint64(1)<<uint(lLo) {
		// Offset fits the new segment unchanged.
	} else {
		res.OffLo, res.OffHi = 0, uint64(1)<<uint(lHi)-1
		res.Mod = minU64(pv.Mod, uint64(1)<<uint(lLo))
		if res.Mod == 0 {
			res.Mod = 1
		}
		res.Rem = pv.Rem & (res.Mod - 1)
	}
	res = res.canon()
	if res.Kind == KBottom {
		return
	}
	st := in
	st.def(inst.Rd, pc, res, pred{})
	v.fallthru(out, pc, st)
}

func (v *verifier) stepSetptr(out *stepOut, pc int, in state, inst isa.Inst) {
	switch in.priv {
	case privPriv:
		out.add(ClassPriv, VerdictSafe, core.FaultNone, -1,
			"setptr always executes under an execute-privileged IP")
	case privUser:
		out.add(ClassPriv, VerdictFault, core.FaultPriv, -1,
			"setptr always executes in user mode")
		return
	default:
		out.add(ClassPriv, VerdictUnknown, core.FaultNone, -1,
			"setptr may execute in user mode")
	}

	var res Value
	if bitsv, exact := asInt(in.regs[inst.Ra]).IsExactInt(); exact {
		perm := core.Perm(uint64(bitsv) >> 60 & 0xf)
		logLen := uint(uint64(bitsv) >> 54 & 0x3f)
		switch {
		case !perm.Valid():
			out.add(ClassPerm, VerdictFault, core.FaultPerm, inst.Ra,
				"setptr source always encodes invalid permission %d", perm)
			return
		case logLen > core.MaxLogLen:
			out.add(ClassPerm, VerdictFault, core.FaultLength, inst.Ra,
				"setptr source always encodes segment length 2^%d", logLen)
			return
		}
		out.add(ClassPerm, VerdictSafe, core.FaultNone, inst.Ra,
			"setptr source is always a structurally valid pointer image")
		addr := uint64(bitsv) & core.AddrMask
		res = PtrExact(perm, logLen, addr&(uint64(1)<<logLen-1), RegAny)
	} else {
		out.add(ClassPerm, VerdictUnknown, core.FaultNone, inst.Ra,
			"setptr source r%d is not statically known", inst.Ra)
		res = PtrAny(RegAny)
	}
	st := in
	st.def(inst.Rd, pc, res, pred{})
	v.fallthru(out, pc, st)
}

// stepJump handles JMP/JMPL: decode, jump-permission, alignment, the
// JMPL link-pointer LEA, then target resolution. Exact code-segment
// pointers become precise edges; bounded inexact ones fan out to
// candidate targets; anything else is the abyss (every instruction
// reachable with unknown state).
func (v *verifier) stepJump(out *stepOut, pc int, in state, inst isa.Inst) {
	tv, ok := ptrCheck(out, in.regs[inst.Ra], inst.Ra, "jump")
	if !ok {
		return
	}
	tv, ok = permCheck(out, tv, jumpableMask, core.FaultPerm, inst.Ra, "jump")
	if !ok {
		return
	}
	tv, ok = alignCheck(out, tv, inst.Ra, "jump")
	if !ok {
		return
	}

	st := in
	if inst.Op == isa.JMPL {
		if !ctrlCheck(out, pc+1, v.img.SegWords(), "link-address advance") {
			return
		}
		st.def(inst.Rd, pc, v.execPtrValue(pc+1, in.priv), pred{})
	}

	var nPriv uint8
	if tv.Perms&privPermsMask != 0 {
		nPriv |= privPriv
	}
	if tv.Perms&^privPermsMask != 0 {
		nPriv |= privUser
	}
	st.priv = nPriv

	if tv.Region != RegCode ||
		tv.LenLo != uint8(v.img.CodeLog) || tv.LenHi != tv.LenLo ||
		tv.Mod < word.BytesPerWord {
		out.abyss = true
		return
	}
	maxT := uint64(v.maxTargets)
	if (tv.OffHi-tv.OffLo)/tv.Mod+1 > maxT {
		out.abyss = true
		return
	}
	exact := tv.OffLo == tv.OffHi
	// A jump through a pointer carrying only enter permissions is a
	// protection-domain crossing; an exact JMPL is an interprocedural
	// call the engine can analyse in the callee's own context.
	enter := tv.Perms != 0 &&
		tv.Perms&^(uint16(1)<<core.PermEnterUser|uint16(1)<<core.PermEnterPriv) == 0
	for off := tv.OffLo; off <= tv.OffHi; off += tv.Mod {
		t := int(off / word.BytesPerWord)
		if t >= v.img.SegWords() {
			break
		}
		out.edges = append(out.edges, edge{pc: t, st: st, spec: !exact,
			call:  exact && inst.Op == isa.JMPL,
			enter: exact && enter,
		})
	}
}
