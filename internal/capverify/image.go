package capverify

import (
	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/word"
)

// Config fixes the execution environment the verifier assumes: it must
// match how the program will be loaded (cmd/mmsim's defaults) for the
// verdicts to be meaningful.
type Config struct {
	// DataBytes is the size of the scratch data segment handed to the
	// program in r1 (mmsim's -data flag; 0 means the default 4096).
	// The kernel rounds it up to a power of two of at least one word.
	DataBytes uint64

	// Privileged analyzes the program as if loaded with an
	// execute-privileged pointer (LoadProgram's priv argument).
	Privileged bool

	// MaxTargets caps how many candidate targets an indirect jump with
	// an inexact pointer may fan out to before the verifier gives up on
	// tracking it (0 means a sensible default). Beyond the cap the jump
	// is treated as reaching every instruction with unknown state.
	MaxTargets int

	// RegistersOnly disables the whole-program machinery — the abstract
	// store, affine register relations, and interprocedural call
	// contexts — restoring the original per-register analysis. Used by
	// differential tests and `mmlint -stats` to measure what the flow
	// analysis buys; every RegistersOnly fact is also a fact of the full
	// analysis.
	RegistersOnly bool
}

// minSegLog mirrors kernel.MinSegLog: the kernel never allocates a
// segment smaller than one word. (Not imported to keep capverify's
// dependencies to asm/isa/core/word.)
const minSegLog = 3

// ceilLog2 returns the smallest l with 2^l ≥ n (n ≥ 1).
func ceilLog2(n uint64) uint {
	l := uint(0)
	for uint64(1)<<l < n {
		l++
	}
	return l
}

// segLogFor returns the segment-length exponent the kernel would grant
// for an n-byte allocation.
func segLogFor(n uint64) uint {
	if n == 0 {
		n = 1
	}
	l := ceilLog2(n)
	if l < minSegLog {
		l = minSegLog
	}
	return l
}

// Image is the analyzed form of a loaded program: the code segment's
// words padded to the allocated power-of-two size, pre-decoded, plus
// the source map.
type Image struct {
	Words   []word.Word  // padded to 2^CodeLog bytes
	Insts   []isa.Inst   // decoded form; valid iff Decodable[i]
	Decodes []bool       // word decodes as an instruction
	Origins []asm.Origin // source position per program word (not padding)
	Labels  map[string]int

	ProgWords int  // words before padding
	CodeLog   uint // code segment length exponent
	DataLog   uint // data segment length exponent
}

// NewImage lays out prog the way kernel.LoadProgram does: into a
// power-of-two segment whose padding words are zero (and therefore
// decode as NOPs).
func NewImage(prog *asm.Program, cfg Config) *Image {
	dataBytes := cfg.DataBytes
	if dataBytes == 0 {
		dataBytes = 4096
	}
	img := &Image{
		Labels:    prog.Labels,
		ProgWords: len(prog.Words),
		CodeLog:   segLogFor(prog.ByteSize()),
		DataLog:   segLogFor(dataBytes),
	}
	segWords := int(uint64(1) << img.CodeLog / word.BytesPerWord)
	img.Words = make([]word.Word, segWords)
	copy(img.Words, prog.Words)
	img.Origins = prog.Origins
	img.Insts = make([]isa.Inst, segWords)
	img.Decodes = make([]bool, segWords)
	for i, w := range img.Words {
		inst, err := isa.Decode(w)
		if err == nil {
			img.Insts[i] = inst
			img.Decodes[i] = true
		}
	}
	return img
}

// SegWords returns the number of word slots in the code segment.
func (img *Image) SegWords() int { return len(img.Words) }

// Origin returns the source position of program word i, or a zero
// Origin for padding or data words.
func (img *Image) Origin(i int) asm.Origin {
	if i >= 0 && i < len(img.Origins) {
		return img.Origins[i]
	}
	return asm.Origin{}
}
