package capverify

import "sort"

// Abstract store: the memory half of the capability-flow analysis.
//
// The machine's data segment is modelled as a partial map from word
// offset to abstract Value. A cell that is *absent* means "unknown
// contents" (⊤) — initial memory holds whatever the loader left there,
// so absence is the sound default and the zero mstore is the fully
// unknown store. Precision comes only from stores the analysis has
// itself observed:
//
//   - A store through a pointer with a provably exact offset performs a
//     *strong update*: the cell now holds exactly the stored value.
//     This is what lets a capability spilled to a stack slot come back
//     with its perm/len/offset facts intact instead of as ⊤.
//   - A store through an inexact pointer performs a *weak update*: the
//     stored value is joined into every existing cell the pointer's
//     offset interval ∩ congruence class may alias. No new cells are
//     created (the unwritten remainder is already ⊤ by absence).
//   - A store through a pointer of unknown region (or a byte store with
//     unknown address) clobbers conservatively: joined into everything
//     it may touch.
//
// Soundness mirrors machine/exec.go exactly: word stores/loads are
// 8-byte aligned (the align check faults otherwise, and the analysis
// only models the post-check state), byte stores clear the tag of the
// containing word, and code/data segments are disjoint so a RegCode
// store cannot alias a data cell. Imprecision always degrades to
// absence (⊤), never to a wrong value.
//
// All operations are functional — they return a new mstore and never
// mutate shared backing arrays — because states are copied by value and
// the cells slice header would otherwise alias across program points.

// mcell is one tracked word: the data-segment word offset and the
// abstract value it holds.
type mcell struct {
	off uint64
	val Value
}

// maxCells bounds the store's footprint. On overflow new cells are
// simply not created (absent = ⊤, sound); existing cells keep their
// precision.
const maxCells = 256

// mstore is a sorted-by-offset set of tracked cells. The zero value is
// the all-unknown store.
type mstore struct {
	cells []mcell
}

// find returns the index of off in m.cells, or (insertion point, false).
func (m mstore) find(off uint64) (int, bool) {
	i := sort.Search(len(m.cells), func(i int) bool { return m.cells[i].off >= off })
	if i < len(m.cells) && m.cells[i].off == off {
		return i, true
	}
	return i, false
}

// get returns the abstract value at word offset off (⊤ if untracked).
func (m mstore) get(off uint64) Value {
	if i, ok := m.find(off); ok {
		return m.cells[i].val
	}
	return Top()
}

// setStrong records a strong update: the cell at off now holds exactly
// v. Storing ⊤ removes the cell (absence already means ⊤).
func (m mstore) setStrong(off uint64, v Value) mstore {
	i, ok := m.find(off)
	if v.Kind == KTop {
		if !ok {
			return m
		}
		out := make([]mcell, 0, len(m.cells)-1)
		out = append(out, m.cells[:i]...)
		out = append(out, m.cells[i+1:]...)
		return mstore{cells: out}
	}
	if ok {
		out := append([]mcell(nil), m.cells...)
		out[i].val = v
		return mstore{cells: out}
	}
	if len(m.cells) >= maxCells {
		return m // capacity: leave absent (⊤), sound
	}
	out := make([]mcell, 0, len(m.cells)+1)
	out = append(out, m.cells[:i]...)
	out = append(out, mcell{off: off, val: v})
	out = append(out, m.cells[i:]...)
	return mstore{cells: out}
}

// weakJoin joins v into every existing cell whose offset lies in
// [lo, hi] and matches the congruence class off ≡ rem (mod mod). Cells
// outside the may-alias set are untouched; absent cells stay absent.
func (m mstore) weakJoin(lo, hi uint64, mod, rem uint64, v Value) mstore {
	var out []mcell
	for i, c := range m.cells {
		if c.off < lo || c.off > hi {
			continue
		}
		if mod > 1 && c.off%mod != rem%mod {
			continue
		}
		nv := Join(c.val, v)
		if nv == c.val {
			continue
		}
		if out == nil {
			out = append([]mcell(nil), m.cells...)
		}
		out[i].val = nv
	}
	if out == nil {
		return m
	}
	return mstore{cells: dropTop(out)}
}

// clobber joins v into every tracked cell — the store's response to a
// write it cannot localise at all.
func (m mstore) clobber(v Value) mstore {
	if len(m.cells) == 0 {
		return m
	}
	out := make([]mcell, 0, len(m.cells))
	for _, c := range m.cells {
		nv := Join(c.val, v)
		if nv.Kind == KTop {
			continue
		}
		out = append(out, mcell{off: c.off, val: nv})
	}
	return mstore{cells: out}
}

// dropTop removes cells that have risen to ⊤ (absence is cheaper).
func dropTop(cells []mcell) []mcell {
	out := cells[:0]
	for _, c := range cells {
		if c.val.Kind != KTop {
			out = append(out, c)
		}
	}
	return out
}

// storeWord models `st` through pointer pv storing value val, in the
// post-check state (alignment and bounds already passed, so on every
// surviving path the concrete address is 8-aligned and in-segment).
func (m mstore) storeWord(pv, val Value) mstore {
	switch pv.Region {
	case RegCode:
		// Code and data segments are disjoint: a code-segment store
		// cannot alias any data cell. (Such a store faults anyway —
		// execute perms are not storable — but soundness must not
		// depend on that.)
		return m
	case RegData:
		if pv.OffLo == pv.OffHi {
			return m.setStrong(pv.OffLo&^7, val)
		}
		mod, rem := pv.Mod, pv.Rem
		if mod == exactMod || mod < 8 || mod%8 != 0 || rem%8 != 0 {
			// Congruence class not usable for word addressing: fall back
			// to "any word in range" (mod 1 matches every cell).
			mod, rem = 1, 0
		}
		return m.weakJoin(pv.OffLo&^7, pv.OffHi, mod, rem, val)
	default:
		// Unknown region: may alias anything.
		return m.clobber(val)
	}
}

// storeByte models `stb` through pv: the containing word's tag is
// cleared, so the cell degrades to an unknown integer.
func (m mstore) storeByte(pv Value) mstore {
	if pv.Region == RegCode {
		return m
	}
	if pv.Region == RegData && pv.OffLo == pv.OffHi {
		return m.setStrong(pv.OffLo&^7, IntAny())
	}
	if pv.Region == RegData {
		return m.weakJoin(pv.OffLo&^7, pv.OffHi, 1, 0, IntAny())
	}
	return m.clobber(IntAny())
}

// loadWord models `ld` through pv in the post-check state: the result
// is the tracked value at an exact address, the join over a small
// may-read set, or ⊤.
func (m mstore) loadWord(pv Value) Value {
	if pv.Region != RegData {
		return Top()
	}
	if pv.OffLo == pv.OffHi {
		return m.get(pv.OffLo)
	}
	step := pv.Mod
	lo := pv.OffLo
	if step == exactMod || step < 8 || step%8 != 0 || pv.Rem%8 != 0 {
		// Congruence unusable for word addressing: scan every aligned
		// word in range (a superset of the true may-read set).
		step = 8
		lo = (lo + 7) &^ 7
	}
	if lo > pv.OffHi || (pv.OffHi-lo)/step >= 64 {
		return Top() // wide may-read set: any absent cell is ⊤ anyway
	}
	acc := Bottom()
	for off := lo; off <= pv.OffHi; off += step {
		i, ok := m.find(off)
		if !ok {
			return Top()
		}
		acc = Join(acc, m.cells[i].val)
		if acc.Kind == KTop {
			return acc
		}
	}
	return acc
}

// joinMem merges two stores at a control-flow join. Only cells tracked
// on *both* sides survive (a cell absent on one side is ⊤ there, and
// x ⊔ ⊤ = ⊤ = absent); surviving cells join pointwise, with threshold
// widening under widen. Termination: the merged key set is a subset of
// a's keys, so keys only ever shrink along a chain of joins, and each
// cell's value chain is finite by the Value lattice's own widening.
func joinMem(a, b mstore, widen bool, ths []int64) mstore {
	if len(a.cells) == 0 || len(b.cells) == 0 {
		return mstore{}
	}
	var out []mcell
	i, j := 0, 0
	for i < len(a.cells) && j < len(b.cells) {
		ca, cb := a.cells[i], b.cells[j]
		switch {
		case ca.off < cb.off:
			i++
		case ca.off > cb.off:
			j++
		default:
			var nv Value
			if widen {
				nv = widenTo(ca.val, cb.val, ths)
			} else {
				nv = Join(ca.val, cb.val)
			}
			if nv.Kind != KTop {
				out = append(out, mcell{off: ca.off, val: nv})
			}
			i++
			j++
		}
	}
	return mstore{cells: out}
}

// memEq reports structural equality of two stores.
func memEq(a, b mstore) bool {
	if len(a.cells) != len(b.cells) {
		return false
	}
	for i := range a.cells {
		if a.cells[i] != b.cells[i] {
			return false
		}
	}
	return true
}
