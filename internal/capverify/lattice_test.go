package capverify

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// sampleValues builds a deterministic, corner-heavy population of
// lattice values for the property tests.
func sampleValues() []Value {
	vals := []Value{
		Bottom(), Uninit(), Top(), IntAny(), PtrAny(RegAny),
		IntExact(0), IntExact(1), IntExact(-1),
		IntExact(math.MaxInt64), IntExact(math.MinInt64),
		IntRange(0, 7), IntRange(-8, 8), IntRange(100, 4096),
		PtrExact(core.PermReadWrite, 12, 0, RegData),
		PtrExact(core.PermReadOnly, 12, 8, RegData),
		PtrExact(core.PermExecuteUser, 6, 16, RegCode),
		PtrExact(core.PermKey, 3, 0, RegAny),
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 60; i++ {
		lo := rng.Int63n(1<<20) - 1<<19
		hi := lo + rng.Int63n(1<<16)
		v := IntRange(lo, hi)
		if rng.Intn(2) == 0 {
			// Give it a congruence by anchoring to a power-of-two grid.
			m := uint64(1) << uint(rng.Intn(6))
			v.Mod, v.Rem = m, uint64(rng.Int63())&(m-1)
			v = v.canon()
		}
		vals = append(vals, v)
	}
	for i := 0; i < 40; i++ {
		var p Value
		p.Kind = KPtr
		p.Perms = uint16(rng.Intn(254)+1) & validPermMask
		if p.Perms == 0 {
			p.Perms = 1 << core.PermReadWrite
		}
		p.LenLo = uint8(rng.Intn(13) + 3)
		p.LenHi = p.LenLo + uint8(rng.Intn(3))
		p.OffLo = uint64(rng.Int63n(1 << p.LenLo))
		p.OffHi = p.OffLo + uint64(rng.Int63n(64))
		m := uint64(1) << uint(rng.Intn(4))
		p.Mod, p.Rem = m, p.OffLo&(m-1)
		p.Region = Region(rng.Intn(3))
		vals = append(vals, p.canon())
	}
	return vals
}

// eqAsSets compares values up to mutual ordering.
func eqAsSets(a, b Value) bool { return Leq(a, b) && Leq(b, a) }

func TestJoinLaws(t *testing.T) {
	vals := sampleValues()
	for _, a := range vals {
		if !eqAsSets(Join(a, a), a) {
			t.Fatalf("join not idempotent: %s ⊔ %s = %s", a, a, Join(a, a))
		}
		if !Leq(a, a) {
			t.Fatalf("Leq not reflexive on %s", a)
		}
		if !Leq(Bottom(), a) || !Leq(a, Top()) {
			t.Fatalf("%s not between ⊥ and ⊤", a)
		}
		for _, b := range vals {
			ab, ba := Join(a, b), Join(b, a)
			if ab != ba {
				t.Fatalf("join not commutative: %s ⊔ %s: %s vs %s", a, b, ab, ba)
			}
			if !Leq(a, ab) || !Leq(b, ab) {
				t.Fatalf("join not an upper bound: %s ⊔ %s = %s", a, b, ab)
			}
			if Leq(a, b) && !eqAsSets(ab, b) {
				t.Fatalf("a ⊑ b but a ⊔ b ≠ b: a=%s b=%s join=%s", a, b, ab)
			}
			w := Widen(a, b)
			if !Leq(ab, w) {
				t.Fatalf("widening below join: %s ∇ %s = %s < join %s", a, b, w, ab)
			}
		}
	}
}

func TestJoinAssociativeUpToOrder(t *testing.T) {
	vals := sampleValues()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 4000; i++ {
		a := vals[rng.Intn(len(vals))]
		b := vals[rng.Intn(len(vals))]
		c := vals[rng.Intn(len(vals))]
		l := Join(Join(a, b), c)
		r := Join(a, Join(b, c))
		if !eqAsSets(l, r) {
			t.Fatalf("join not associative: (%s ⊔ %s) ⊔ %s = %s, %s ⊔ (%s ⊔ %s) = %s",
				a, b, c, l, a, b, c, r)
		}
	}
}

// TestTransferMonotone samples ordered pairs a ⊑ a' and checks the
// abstract integer operators preserve the order (the property the
// worklist fixpoint's soundness rests on).
func TestTransferMonotone(t *testing.T) {
	vals := sampleValues()
	unary := map[string]func(Value) Value{
		"asInt": asInt,
		"refineNZ": func(v Value) Value {
			out, ok := refineNonzero(v)
			if !ok {
				return Bottom()
			}
			return out
		},
	}
	binary := map[string]func(a, b Value) Value{
		"add": addInt, "sub": subInt, "mul": mulInt,
		"and": func(a, b Value) Value { return bitwiseInt('&', a, b) },
		"or":  func(a, b Value) Value { return bitwiseInt('|', a, b) },
		"xor": func(a, b Value) Value { return bitwiseInt('^', a, b) },
		"shl": shlInt, "shr": shrInt,
	}
	for _, a := range vals {
		for _, b := range vals {
			if !Leq(a, b) {
				continue
			}
			for name, f := range unary {
				if !Leq(f(asInt(a)), f(asInt(b))) {
					t.Fatalf("%s not monotone: %s ⊑ %s but %s ⋢ %s",
						name, a, b, f(asInt(a)), f(asInt(b)))
				}
			}
			c := IntExact(8)
			for name, f := range binary {
				if !Leq(f(asInt(a), c), f(asInt(b), c)) {
					t.Fatalf("%s not monotone in lhs: %s ⊑ %s", name, a, b)
				}
				if !Leq(f(c, asInt(a)), f(c, asInt(b))) {
					t.Fatalf("%s not monotone in rhs: %s ⊑ %s", name, a, b)
				}
			}
		}
	}
}

// TestWideningTerminates drives a worst-case ascending chain through
// the widening operator and requires it to stabilize quickly.
func TestWideningTerminates(t *testing.T) {
	vals := sampleValues()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		acc := vals[rng.Intn(len(vals))]
		changes := 0
		for i := 0; i < 200; i++ {
			next := Widen(acc, vals[rng.Intn(len(vals))])
			if next != acc {
				changes++
				acc = next
			}
		}
		if changes > 24 {
			t.Fatalf("widening chain changed %d times; expected fast stabilization", changes)
		}
	}
}

// TestCanonIdempotent: canon is a normal form.
func TestCanonIdempotent(t *testing.T) {
	for _, v := range sampleValues() {
		if c := v.canon(); c != c.canon() {
			t.Fatalf("canon not idempotent on %s: %s vs %s", v, c, c.canon())
		}
	}
}

// TestThresholdWideningTerminates: widening through a threshold set
// still stabilizes fast — each change either lands on one of the
// finitely many thresholds or escapes to ±∞, so chains stay short.
func TestThresholdWideningTerminates(t *testing.T) {
	vals := sampleValues()
	ths := []int64{-1, 0, 1, 7, 8, 255, 256, 4095, 4096, 1 << 20}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		acc := vals[rng.Intn(len(vals))]
		changes := 0
		for i := 0; i < 200; i++ {
			next := widenTo(acc, vals[rng.Intn(len(vals))], ths)
			if next != acc {
				changes++
				acc = next
			}
		}
		if changes > 30 {
			t.Fatalf("threshold widening chain changed %d times; expected fast stabilization", changes)
		}
	}
}

// TestThresholdWideningSound: widening over-approximates the join —
// Join(a,b) ⊑ widenTo(a,b,ths) for every pair and threshold set,
// including the empty set (plain Widen).
func TestThresholdWideningSound(t *testing.T) {
	vals := sampleValues()
	sets := [][]int64{nil, {0}, {-1, 0, 1, 256, 4096}}
	for _, ths := range sets {
		for _, a := range vals {
			for _, b := range vals {
				j, w := Join(a, b), widenTo(a, b, ths)
				if !Leq(j, w) {
					t.Fatalf("widenTo(%s, %s, %v) = %s does not bound join %s", a, b, ths, w, j)
				}
			}
		}
	}
}
