package capverify_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/asm"
	"repro/internal/capverify"
	"repro/internal/faultinject"
)

// sitesCorpus assembles every shipped program and campaign workload —
// the population whose per-site tables the translator consumes.
func sitesCorpus(t *testing.T) map[string]*asm.Program {
	t.Helper()
	out := map[string]*asm.Program{}
	files, _ := filepath.Glob(filepath.Join("..", "..", "programs", "*.s"))
	for _, file := range files {
		if filepath.Base(file) == "memlib.s" {
			continue // library, not a program
		}
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := asm.AssembleNamed(filepath.Base(file), string(src))
		if err != nil {
			// usemem.s needs linking; covered via the workloads and the
			// root differential suite.
			continue
		}
		out[filepath.Base(file)] = prog
	}
	for name, src := range faultinject.WorkloadSources() {
		prog, err := asm.AssembleNamed(name+".s", src)
		if err != nil {
			t.Fatal(err)
		}
		out["wl:"+name] = prog
	}
	if len(out) < 3 {
		t.Fatalf("corpus too small: %d programs", len(out))
	}
	return out
}

// TestSiteChecksAccountForEveryCheck: the per-site table must be the
// same population the report's totals tally — every check counted in
// Totals appears at exactly one site with the same verdict.
func TestSiteChecksAccountForEveryCheck(t *testing.T) {
	for name, prog := range sitesCorpus(t) {
		rep := capverify.Verify(prog, capverify.Config{})
		var got capverify.Counts
		reachable := 0
		img := capverify.NewImage(prog, capverify.Config{})
		for pc := 0; pc < img.SegWords(); pc++ {
			checks := rep.SiteChecks(pc)
			if checks == nil {
				continue
			}
			reachable++
			for _, c := range checks {
				switch c.Verdict {
				case capverify.VerdictSafe:
					got.Safe++
				case capverify.VerdictUnknown:
					got.Unknown++
				case capverify.VerdictFault:
					got.Fault++
				}
			}
		}
		if got != rep.Totals {
			t.Errorf("%s: per-site tally %+v != report totals %+v", name, got, rep.Totals)
		}
		if reachable != rep.ReachableWords {
			t.Errorf("%s: %d non-nil sites, report says %d reachable words", name, reachable, rep.ReachableWords)
		}
	}
}

// TestSiteTableMatchesSiteChecks: the address-keyed view must agree
// with the pc-keyed view at every word, and reject unaligned and
// out-of-segment addresses.
func TestSiteTableMatchesSiteChecks(t *testing.T) {
	const base = 0x40000
	for name, prog := range sitesCorpus(t) {
		rep := capverify.Verify(prog, capverify.Config{})
		tbl := rep.Sites(base)
		if tbl.Base() != base {
			t.Fatalf("%s: Base() = %#x", name, tbl.Base())
		}
		img := capverify.NewImage(prog, capverify.Config{})
		for pc := 0; pc < img.SegWords(); pc++ {
			vaddr := uint64(base + pc*8)
			want := rep.SiteChecks(pc)
			got := tbl.Checks(vaddr)
			if len(got) != len(want) || (got == nil) != (want == nil) {
				t.Fatalf("%s pc=%d: Checks(%#x) = %v, want %v", name, pc, vaddr, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s pc=%d check %d: %+v != %+v", name, pc, i, got[i], want[i])
				}
			}
			if tbl.Reachable(vaddr) != (want != nil) {
				t.Errorf("%s pc=%d: Reachable(%#x) = %v, sites nil=%v", name, pc, vaddr, tbl.Reachable(vaddr), want == nil)
			}
			allSafe := want != nil
			for _, c := range want {
				if c.Verdict != capverify.VerdictSafe {
					allSafe = false
				}
			}
			if tbl.AllSafe(vaddr) != allSafe {
				t.Errorf("%s pc=%d: AllSafe(%#x) = %v, want %v (checks %v)", name, pc, vaddr, tbl.AllSafe(vaddr), allSafe, want)
			}
			// Unaligned addresses inside the word carry no verdict.
			if tbl.Checks(vaddr+4) != nil || tbl.AllSafe(vaddr+4) || tbl.Reachable(vaddr+4) {
				t.Errorf("%s pc=%d: unaligned address %#x yields a verdict", name, pc, vaddr+4)
			}
		}
		// Below and beyond the segment: no verdicts.
		end := uint64(base + img.SegWords()*8)
		for _, bad := range []uint64{base - 8, end, end + 4096} {
			if tbl.Checks(bad) != nil || tbl.AllSafe(bad) || tbl.Reachable(bad) {
				t.Errorf("%s: out-of-segment address %#x yields a verdict", name, bad)
			}
		}
	}
}

// TestSiteChecksReachableVersusNil: reachable instructions carry a
// non-nil check list (possibly empty — the nil/non-nil distinction is
// liveness), unreachable words and out-of-range indices return nil.
func TestSiteChecksReachableVersusNil(t *testing.T) {
	prog, err := asm.Assemble(`
	ldi r2, 1
	halt
	br  dead       ; unreachable: nothing ever branches here
dead:
	ld  r3, r1, 0
`)
	if err != nil {
		t.Fatal(err)
	}
	rep := capverify.Verify(prog, capverify.Config{})
	for pc := 0; pc <= 1; pc++ {
		if c := rep.SiteChecks(pc); c == nil {
			t.Errorf("reachable pc %d: nil, want a (possibly empty) check list", pc)
		}
	}
	for pc := 2; pc <= 3; pc++ {
		if c := rep.SiteChecks(pc); c != nil {
			t.Errorf("unreachable pc %d: %v, want nil", pc, c)
		}
	}
	if c := rep.SiteChecks(-1); c != nil {
		t.Errorf("pc -1: %v, want nil", c)
	}
	if c := rep.SiteChecks(1 << 20); c != nil {
		t.Errorf("out-of-range pc: %v, want nil", c)
	}
	// An elision consumer must see HALT/LDI as all-safe at a load
	// address and the unreachable load as not elidable.
	tbl := rep.Sites(0x1000)
	if !tbl.AllSafe(0x1000) || !tbl.AllSafe(0x1008) {
		t.Error("reachable safe sites not AllSafe")
	}
	if tbl.AllSafe(0x1018) {
		t.Error("unreachable site reported AllSafe: no proof exists there")
	}
}
