// Package capverify is a static capability-safety verifier for MAP
// assembly programs: a worklist abstract interpretation over the
// guarded-pointer register file.
//
// The paper's thesis is that protection travels inside the pointer
// (Carter, Keckler & Dally, ASPLOS 1994), which makes capability
// misuse decidable for a large class of programs before a single cycle
// runs: a store through a read-only pointer, a jump through a
// non-execute word, a SETPTR outside privileged code, or an LEA that
// provably leaves its segment can all be reported — with source line
// and register provenance — by a dataflow pass over the instruction
// stream. Conversely, checks the analysis discharges statically are
// checks a compiler could have elided, the static analogue of the
// Sec 5 software-fault-isolation overhead comparison.
//
// The abstract domain is a per-register lattice:
//
//	⊥  —  unreachable / no value
//	uninit  —  never written; concretely the untagged integer 0
//	int[lo,hi] (mod m, rem r)  —  untagged word, signed interval plus a
//	        power-of-two congruence for alignment reasoning
//	ptr{perm set, log-len interval, offset interval (mod m, rem r)}  —
//	        guarded pointer whose permission is one of a set and whose
//	        byte offset within its (power-of-two) segment is bounded
//	⊤  —  any word, tagged or not
//
// Offsets rather than absolute addresses are tracked because segments
// are aligned on their own size (Fig. 1): base bits never change under
// LEA, so the offset interval is exactly what the masked comparator of
// Fig. 2 checks.
package capverify

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/core"
)

// Kind discriminates the lattice elements.
type Kind uint8

const (
	KBottom Kind = iota // unreachable
	KUninit             // never written (concretely untagged 0)
	KInt                // untagged integer
	KPtr                // guarded pointer
	KTop                // any word
)

func (k Kind) String() string {
	switch k {
	case KBottom:
		return "⊥"
	case KUninit:
		return "uninit"
	case KInt:
		return "int"
	case KPtr:
		return "ptr"
	case KTop:
		return "⊤"
	}
	return "kind?"
}

// Region records which segment a pointer is derived from, for
// diagnostics and for resolving jump targets into the analyzed code
// image. It is provenance, not a lattice of values: joining distinct
// regions yields RegAny.
type Region uint8

const (
	RegNone Region = iota
	RegData        // the r1 scratch data segment
	RegCode        // the program's code segment (MOVIP / jump return values)
	RegAny         // unknown or mixed
)

func (r Region) String() string {
	switch r {
	case RegData:
		return "data"
	case RegCode:
		return "code"
	case RegAny:
		return "any"
	}
	return "-"
}

// exactMod is the congruence modulus attached to singleton values: a
// value known exactly satisfies x ≡ x (mod 2^62), the strongest
// congruence the domain represents.
const exactMod = uint64(1) << 62

// Value is one element of the abstract word lattice.
type Value struct {
	Kind Kind

	// KInt: signed interval [Lo,Hi] plus congruence Bits ≡ Rem (mod Mod)
	// over the unsigned bit pattern; Mod is a power of two (1 = no
	// congruence information).
	Lo, Hi int64

	// KPtr fields.
	Perms        uint16 // bitmask over core.Perm 0..15 of possible permissions
	LenLo, LenHi uint8  // segment log2-length interval
	OffLo, OffHi uint64 // byte offset within the segment
	Region       Region

	// Congruence of the offset (KPtr) or bit pattern (KInt):
	// value ≡ Rem (mod Mod), Mod a power of two ≥ 1.
	Mod, Rem uint64
}

// Canonical constructors.

// Bottom is the unreachable value.
func Bottom() Value { return Value{Kind: KBottom} }

// Uninit is the never-written register value.
func Uninit() Value { return Value{Kind: KUninit} }

// Top is the unconstrained value.
func Top() Value { return Value{Kind: KTop} }

// IntExact is the singleton integer v.
func IntExact(v int64) Value {
	return Value{Kind: KInt, Lo: v, Hi: v, Mod: exactMod, Rem: uint64(v) % exactMod}.canon()
}

// IntRange is the integer interval [lo,hi] with no congruence.
func IntRange(lo, hi int64) Value {
	return Value{Kind: KInt, Lo: lo, Hi: hi, Mod: 1}.canon()
}

// IntAny is the full integer range.
func IntAny() Value { return IntRange(math.MinInt64, math.MaxInt64) }

// PtrExact is a pointer with a single permission, exact segment length
// and exact offset.
func PtrExact(p core.Perm, logLen uint, off uint64, region Region) Value {
	return Value{
		Kind:  KPtr,
		Perms: 1 << p,
		LenLo: uint8(logLen), LenHi: uint8(logLen),
		OffLo: off, OffHi: off,
		Mod: exactMod, Rem: off % exactMod,
		Region: region,
	}.canon()
}

// PtrAny is a pointer about which nothing but structural validity is
// known: any valid permission, any segment length, any offset.
func PtrAny(region Region) Value {
	return Value{
		Kind:  KPtr,
		Perms: validPermMask,
		LenLo: 0, LenHi: uint8(core.MaxLogLen),
		OffLo: 0, OffHi: (uint64(1) << core.MaxLogLen) - 1,
		Mod: 1, Region: region,
	}.canon()
}

// validPermMask is the bitmask of architecturally valid permissions
// (PermNone excluded: Decode rejects it, so a live pointer never
// carries it).
const validPermMask uint16 = (1<<core.PermKey | 1<<core.PermReadOnly |
	1<<core.PermReadWrite | 1<<core.PermExecuteUser | 1<<core.PermExecutePriv |
	1<<core.PermEnterUser | 1<<core.PermEnterPriv)

// IsExactInt reports whether v is the single integer value it returns.
func (v Value) IsExactInt() (int64, bool) {
	if v.Kind == KInt && v.Lo == v.Hi {
		return v.Lo, true
	}
	if v.Kind == KUninit {
		return 0, true
	}
	return 0, false
}

// ExactOff reports whether a pointer's offset is a single value.
func (v Value) ExactOff() (uint64, bool) {
	if v.Kind == KPtr && v.OffLo == v.OffHi {
		return v.OffLo, true
	}
	return 0, false
}

// SinglePerm reports whether exactly one permission is possible.
func (v Value) SinglePerm() (core.Perm, bool) {
	if v.Kind == KPtr && bits.OnesCount16(v.Perms) == 1 {
		return core.Perm(bits.TrailingZeros16(v.Perms)), true
	}
	return core.PermNone, false
}

// canon normalizes a value: empty intervals collapse to ⊥, pointer
// offsets are clamped into the largest possible segment and tightened
// to their congruence class, and singletons carry the strongest
// congruence.
func (v Value) canon() Value {
	switch v.Kind {
	case KInt:
		if v.Lo > v.Hi {
			return Bottom()
		}
		if v.Mod == 0 {
			v.Mod = 1
		}
		v.Rem &= v.Mod - 1
		if v.Lo == v.Hi {
			v.Mod = exactMod
			v.Rem = uint64(v.Lo) & (exactMod - 1)
		}
		return v
	case KPtr:
		if v.Perms&validPermMask == 0 {
			return Bottom()
		}
		v.Perms &= validPermMask
		if v.LenHi > uint8(core.MaxLogLen) {
			v.LenHi = uint8(core.MaxLogLen)
		}
		if v.LenLo > v.LenHi {
			return Bottom()
		}
		if v.Mod == 0 {
			v.Mod = 1
		}
		v.Rem &= v.Mod - 1
		// Offsets live in [0, 2^LenHi).
		maxOff := (uint64(1) << v.LenHi) - 1
		if v.OffHi > maxOff {
			v.OffHi = maxOff
		}
		// Tighten the interval to the congruence class.
		if v.Mod > 1 {
			if r := v.OffLo & (v.Mod - 1); r != v.Rem {
				// Smallest value ≥ OffLo with the right remainder.
				delta := (v.Rem - r) & (v.Mod - 1)
				if v.OffLo > maxOff-delta { // would overflow the segment
					return Bottom()
				}
				v.OffLo += delta
			}
			if r := v.OffHi & (v.Mod - 1); r != v.Rem {
				delta := (r - v.Rem) & (v.Mod - 1)
				if v.OffHi < delta {
					return Bottom()
				}
				v.OffHi -= delta
			}
		}
		if v.OffLo > v.OffHi {
			return Bottom()
		}
		if v.OffLo == v.OffHi {
			v.Mod = exactMod
			v.Rem = v.OffLo & (exactMod - 1)
		}
		return v
	default:
		// ⊥, uninit, ⊤ carry no fields.
		return Value{Kind: v.Kind}
	}
}

// congJoin joins two power-of-two congruences (m1,r1) and (m2,r2): the
// strongest congruence implied by both. Trailing zeros of the
// remainder difference bound how much agreement survives.
func congJoin(m1, r1, m2, r2 uint64) (uint64, uint64) {
	m := m1
	if m2 < m {
		m = m2
	}
	if d := r1 ^ r2; d != 0 {
		if agree := uint64(1) << bits.TrailingZeros64(d); agree < m {
			m = agree
		}
	}
	if m == 0 {
		m = 1
	}
	return m, r1 & (m - 1)
}

// congLeq reports whether congruence (m1,r1) implies (m2,r2).
func congLeq(m1, r1, m2, r2 uint64) bool {
	if m2 <= 1 {
		return true
	}
	return m1 >= m2 && m1%m2 == 0 && r1&(m2-1) == r2
}

// Join returns the least upper bound of a and b.
func Join(a, b Value) Value {
	if a.Kind == KBottom {
		return b
	}
	if b.Kind == KBottom {
		return a
	}
	if a.Kind == KTop || b.Kind == KTop {
		return Top()
	}
	// Uninit is the singleton untagged 0: absorb it into integer
	// intervals, but an uninit/pointer mix needs ⊤.
	if a.Kind == KUninit && b.Kind == KUninit {
		return Uninit()
	}
	if a.Kind == KUninit {
		a = IntExact(0)
	}
	if b.Kind == KUninit {
		b = IntExact(0)
	}
	if a.Kind != b.Kind {
		return Top() // int ⊔ ptr: tagged-ness itself is unknown
	}
	switch a.Kind {
	case KInt:
		out := Value{Kind: KInt, Lo: minI(a.Lo, b.Lo), Hi: maxI(a.Hi, b.Hi)}
		out.Mod, out.Rem = congJoin(a.Mod, a.Rem, b.Mod, b.Rem)
		return out.canon()
	case KPtr:
		out := Value{
			Kind:  KPtr,
			Perms: a.Perms | b.Perms,
			LenLo: minU8(a.LenLo, b.LenLo), LenHi: maxU8(a.LenHi, b.LenHi),
			OffLo: minU64(a.OffLo, b.OffLo), OffHi: maxU64(a.OffHi, b.OffHi),
		}
		out.Mod, out.Rem = congJoin(a.Mod, a.Rem, b.Mod, b.Rem)
		if a.Region == b.Region {
			out.Region = a.Region
		} else {
			out.Region = RegAny
		}
		return out.canon()
	}
	return Top()
}

// Widen accelerates convergence at join points: any bound still moving
// after repeated visits jumps to its extreme. Offsets are bounded by
// the segment, so pointer widening stays finite and precise-ish;
// integer bounds go to the full 64-bit range. Congruences, permission
// sets and length intervals are finite-height and never widened.
func Widen(old, new Value) Value {
	return widenTo(old, new, nil)
}

// widenTo is Widen with threshold sets: a moving bound lands on the
// nearest enclosing threshold instead of jumping straight to ±∞. The
// verifier harvests thresholds from comparison immediates (SLTI/SEQI),
// which is exactly where loop bounds live, so counter intervals
// stabilise at the loop bound rather than the full 64-bit range.
// Thresholds must be sorted ascending. ths == nil degrades to classic
// widening. Termination: each application either returns old or strictly
// grows a bound to a value from the finite set ths ∪ {±∞}, so any chain
// of widenings per bound is finite.
func widenTo(old, new Value, ths []int64) Value {
	j := Join(old, new)
	if j == old {
		return old
	}
	switch j.Kind {
	case KInt:
		if old.Kind == KInt {
			if j.Lo < old.Lo {
				j.Lo = thLo(j.Lo, ths)
			}
			if j.Hi > old.Hi {
				j.Hi = thHi(j.Hi, ths)
			}
		} else {
			j.Lo, j.Hi = math.MinInt64, math.MaxInt64
		}
		return j.canon()
	case KPtr:
		if old.Kind == KPtr {
			if j.OffLo < old.OffLo {
				j.OffLo = 0
			}
			if j.OffHi > old.OffHi {
				j.OffHi = (uint64(1) << j.LenHi) - 1
			}
		} else {
			j.OffLo, j.OffHi = 0, (uint64(1)<<j.LenHi)-1
		}
		return j.canon()
	}
	return j
}

// thLo returns the largest threshold <= lo, or MinInt64 if none.
func thLo(lo int64, ths []int64) int64 {
	out := int64(math.MinInt64)
	for _, t := range ths {
		if t > lo {
			break
		}
		out = t
	}
	return out
}

// thHi returns the smallest threshold >= hi, or MaxInt64 if none.
func thHi(hi int64, ths []int64) int64 {
	for _, t := range ths {
		if t >= hi {
			return t
		}
	}
	return math.MaxInt64
}

// Leq reports a ⊑ b: every concrete word described by a is described
// by b.
func Leq(a, b Value) bool {
	if a.Kind == KBottom || b.Kind == KTop {
		return true
	}
	if b.Kind == KBottom || a.Kind == KTop {
		return false
	}
	if a.Kind == KUninit {
		switch b.Kind {
		case KUninit:
			return true
		case KInt:
			return b.Lo <= 0 && 0 <= b.Hi && congLeq(exactMod, 0, b.Mod, b.Rem)
		}
		return false
	}
	if b.Kind == KUninit {
		return a.Kind == KInt && a.Lo == 0 && a.Hi == 0
	}
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case KInt:
		return b.Lo <= a.Lo && a.Hi <= b.Hi && congLeq(a.Mod, a.Rem, b.Mod, b.Rem)
	case KPtr:
		if a.Perms&^b.Perms != 0 {
			return false
		}
		if a.LenLo < b.LenLo || a.LenHi > b.LenHi {
			return false
		}
		if a.OffLo < b.OffLo || a.OffHi > b.OffHi {
			return false
		}
		if !congLeq(a.Mod, a.Rem, b.Mod, b.Rem) {
			return false
		}
		return b.Region == RegAny || a.Region == b.Region
	}
	return true
}

// String renders the value for diagnostics.
func (v Value) String() string {
	switch v.Kind {
	case KBottom, KUninit, KTop:
		return v.Kind.String()
	case KInt:
		if v.Lo == v.Hi {
			return fmt.Sprintf("int %d", v.Lo)
		}
		s := fmt.Sprintf("int [%s,%s]", boundStr(v.Lo), boundStr(v.Hi))
		if v.Mod > 1 && v.Mod != exactMod {
			s += fmt.Sprintf(" ≡%d (mod %d)", v.Rem, v.Mod)
		}
		return s
	case KPtr:
		perms := ""
		for p := core.Perm(0); p < core.NumPerms; p++ {
			if v.Perms&(1<<p) != 0 {
				if perms != "" {
					perms += "|"
				}
				perms += p.String()
			}
		}
		ln := fmt.Sprintf("2^%d", v.LenLo)
		if v.LenLo != v.LenHi {
			ln = fmt.Sprintf("2^[%d,%d]", v.LenLo, v.LenHi)
		}
		off := fmt.Sprintf("+%#x", v.OffLo)
		if v.OffLo != v.OffHi {
			off = fmt.Sprintf("+[%#x,%#x]", v.OffLo, v.OffHi)
			if v.Mod > 1 && v.Mod != exactMod {
				off += fmt.Sprintf(" ≡%d (mod %d)", v.Rem, v.Mod)
			}
		}
		return fmt.Sprintf("ptr{%s %s %s %s}", perms, ln, off, v.Region)
	}
	return "value?"
}

func boundStr(v int64) string {
	switch v {
	case math.MinInt64:
		return "-inf"
	case math.MaxInt64:
		return "+inf"
	}
	return fmt.Sprintf("%d", v)
}

func minI(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
func maxI(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
func minU8(a, b uint8) uint8 {
	if a < b {
		return a
	}
	return b
}
func maxU8(a, b uint8) uint8 {
	if a > b {
		return a
	}
	return b
}

// satAdd adds with saturation at the int64 extremes; offset and bounds
// arithmetic never needs exact wraparound (the segment check fires
// long before ±2^62).
func satAdd(a, b int64) int64 {
	s, carry := bits.Add64(uint64(a), uint64(b), 0)
	_ = carry
	r := int64(s)
	if a >= 0 && b >= 0 && r < 0 {
		return math.MaxInt64
	}
	if a < 0 && b < 0 && r >= 0 {
		return math.MinInt64
	}
	return r
}
