package capverify_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/asm"
	"repro/internal/capverify"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/word"
)

// runProgram boots prog exactly as cmd/mmsim does (one user thread,
// 4KB scratch segment in r1) and runs it to completion.
func runProgram(t *testing.T, prog *asm.Program) *machine.Thread {
	t.Helper()
	k, err := kernel.New(machine.MMachine())
	if err != nil {
		t.Fatal(err)
	}
	ip, err := k.LoadProgram(prog, false)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := k.AllocSegment(4096)
	if err != nil {
		t.Fatal(err)
	}
	th, err := k.Spawn(k.NewDomain(), ip, map[int]word.Word{1: seg.Word()})
	if err != nil {
		t.Fatal(err)
	}
	k.Run(2_000_000)
	return th
}

// shippedPrograms assembles every program under programs/, linking
// usemem.s against memlib.s the way cmd/mmld does.
func shippedPrograms(t *testing.T) map[string]*asm.Program {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("..", "..", "programs", "*.s"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no shipped programs found: %v", err)
	}
	read := func(f string) string {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		return string(src)
	}
	out := make(map[string]*asm.Program)
	for _, f := range files {
		name := filepath.Base(f)
		switch name {
		case "memlib.s":
			continue // a library; linked into usemem.s below
		case "usemem.s":
			m1, err := asm.AssembleModule("usemem", read(f))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			m2, err := asm.AssembleModule("memlib", read(filepath.Join("..", "..", "programs", "memlib.s")))
			if err != nil {
				t.Fatalf("memlib.s: %v", err)
			}
			prog, err := asm.Link(m1, m2)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			out[name] = prog
		default:
			prog, err := asm.AssembleNamed(name, read(f))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			out[name] = prog
		}
	}
	return out
}

// TestShippedProgramsSound is the fault-free half of the differential
// soundness argument: no shipped program may be flagged with a provable
// fault, and each must in fact run to a clean halt on the simulator.
func TestShippedProgramsSound(t *testing.T) {
	for name, prog := range shippedPrograms(t) {
		rep := capverify.Verify(prog, capverify.Config{})
		for _, d := range rep.Faults() {
			t.Errorf("%s: false provable fault: %s", name, d)
		}
		th := runProgram(t, prog)
		if th.State != machine.Halted || th.Fault != nil {
			t.Errorf("%s: dynamic run ended %v (fault %v), want clean halt", name, th.State, th.Fault)
		}
		t.Logf("%s: %d/%d checks discharged (%.0f%%)", name,
			rep.Totals.Safe, rep.Totals.Safe+rep.Totals.Unknown, 100*rep.DischargeRatio())
	}
}

// TestWorkloadsSound runs the same argument over the fault-injection
// campaign's workloads: the programs the campaign injects faults into
// are themselves verifiably fault-free.
func TestWorkloadsSound(t *testing.T) {
	for name, src := range faultinject.WorkloadSources() {
		rep, err := capverify.VerifySource(name+".s", src, capverify.Config{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Abyss {
			t.Errorf("%s: analysis fell into the abyss (unbounded indirect jump)", name)
		}
		for _, d := range rep.Faults() {
			t.Errorf("%s: false provable fault: %s", name, d)
		}
		prog, err := asm.AssembleNamed(name+".s", src)
		if err != nil {
			t.Fatal(err)
		}
		th := runProgram(t, prog)
		if th.State != machine.Halted || th.Fault != nil {
			t.Errorf("%s: dynamic run ended %v (fault %v), want clean halt", name, th.State, th.Fault)
		}
	}
}

// badProgram is a crafted capability violation with the fault code the
// hardware raises for it.
type badProgram struct {
	name string
	src  string
	want core.FaultCode
}

// badPrograms covers every fault code and every check class at least
// once. The differential test requires each to be flagged as a provable
// fault with the right predicted code, and to raise exactly that code
// when run.
var badPrograms = []badProgram{
	{"store-through-readonly", `
		ldi r2, 2            ; PermReadOnly
		restrict r3, r1, r2
		st r3, 0, r2         ; store through a read-only pointer
		halt
	`, core.FaultPerm},
	{"lea-on-key", `
		ldi r2, 1            ; PermKey
		restrict r3, r1, r2
		st r3, 8, r2         ; displacement LEA on an immutable key
		halt
	`, core.FaultImmutable},
	{"jmp-data-pointer", `
		jmp r1               ; r1 is read/write, not executable
	`, core.FaultPerm},
	{"jmp-untagged", `
		ldi r2, 16
		jmp r2               ; jump through a plain integer
	`, core.FaultTag},
	{"setptr-in-user-mode", `
		ldi r2, 8
		setptr r3, r2        ; privileged instruction, user IP
		halt
	`, core.FaultPriv},
	{"lea-out-of-segment", `
		leai r2, r1, 8192    ; 4KB data segment
		halt
	`, core.FaultBounds},
	{"load-uninitialized", `
		ld r2, r9, 0         ; r9 was never written: untagged 0
		halt
	`, core.FaultTag},
	{"subseg-grow", `
		ldi r2, 13
		subseg r3, r1, r2    ; 2^13 > the 2^12 segment
		halt
	`, core.FaultLength},
	{"restrict-not-subset", `
		ldi r2, 4            ; PermExecuteUser
		restrict r3, r1, r2  ; execute is not a subset of read/write
		halt
	`, core.FaultPerm},
	{"unaligned-load", `
		leai r2, r1, 4
		ld r3, r2, 0         ; word access at offset 4
		halt
	`, core.FaultBounds},
	{"store-through-execute", `
		movip r2
		st r2, 0, r1         ; store through the execute pointer
		halt
	`, core.FaultPerm},
	{"run-off-segment-end", `
		ldi r2, 1            ; no halt: falls through NOP padding
	`, core.FaultBounds},
}

// TestBadProgramsDifferential is the fault half of the soundness
// argument: every crafted violation is a provable static fault with the
// right code, and the simulator raises exactly that code at runtime.
func TestBadProgramsDifferential(t *testing.T) {
	for _, bp := range badPrograms {
		rep, err := capverify.VerifySource(bp.name+".s", bp.src, capverify.Config{})
		if err != nil {
			t.Fatalf("%s: assemble: %v", bp.name, err)
		}
		if !rep.HasFault() {
			t.Errorf("%s: verifier found no provable fault, want %v", bp.name, bp.want)
			continue
		}
		if got := rep.FirstFaultCode(); got != bp.want {
			t.Errorf("%s: predicted fault %v, want %v", bp.name, got, bp.want)
		}
		for _, d := range rep.Faults() {
			if d.File != bp.name+".s" || d.Line <= 0 {
				t.Errorf("%s: fault diagnostic lacks source position: %q line %d", bp.name, d.File, d.Line)
			}
		}

		prog, err := asm.AssembleNamed(bp.name+".s", bp.src)
		if err != nil {
			t.Fatal(err)
		}
		th := runProgram(t, prog)
		if th.State != machine.Faulted {
			t.Errorf("%s: dynamic run ended %v, want a fault", bp.name, th.State)
			continue
		}
		if got := core.CodeOf(th.Fault); got != bp.want {
			t.Errorf("%s: dynamic fault %v (%v), predicted %v", bp.name, got, th.Fault, bp.want)
		}
	}
}

// TestFibDischarge pins the headline claim: on fib.s well over half of
// the dynamic permission/bounds checks are statically discharged.
func TestFibDischarge(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "programs", "fib.s"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := capverify.VerifySource("fib.s", string(src), capverify.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r := rep.DischargeRatio(); r < 0.5 {
		t.Errorf("fib.s discharge ratio %.2f, want >= 0.5", r)
	}
	if rep.HasFault() || rep.Abyss {
		t.Errorf("fib.s: fault=%v abyss=%v, want neither", rep.HasFault(), rep.Abyss)
	}
}

// TestRegisterProvenance checks that a register-borne fault names the
// definition site of the offending register.
func TestRegisterProvenance(t *testing.T) {
	src := `
	ldi r4, 99
	mov r5, r4
	ld r6, r5, 0
	halt
`
	rep, err := capverify.VerifySource("prov.s", src, capverify.Config{})
	if err != nil {
		t.Fatal(err)
	}
	faults := rep.Faults()
	if len(faults) == 0 {
		t.Fatal("want a provable tag fault")
	}
	d := faults[0]
	if d.Reg != 5 {
		t.Errorf("fault blames r%d, want r5", d.Reg)
	}
	// MOV propagates value provenance: the culprit is the LDI on line 2.
	if d.RegFile != "prov.s" || d.RegLine != 2 {
		t.Errorf("register provenance %s:%d, want prov.s:2", d.RegFile, d.RegLine)
	}
}
