package capverify_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/asm"
	"repro/internal/capverify"
	"repro/internal/faultinject"
)

// FuzzVerify feeds arbitrary assembler-accepted programs to the
// verifier: whatever the assembler emits, the analysis must terminate
// without panicking. Seeds are the shipped programs, the campaign
// workloads, and the crafted violations.
func FuzzVerify(f *testing.F) {
	files, _ := filepath.Glob(filepath.Join("..", "..", "programs", "*.s"))
	for _, file := range files {
		if src, err := os.ReadFile(file); err == nil {
			f.Add(string(src))
		}
	}
	for _, src := range faultinject.WorkloadSources() {
		f.Add(src)
	}
	for _, bp := range badPrograms {
		f.Add(bp.src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := asm.AssembleNamed("fuzz.s", src)
		if err != nil {
			return // not assemblable: out of scope
		}
		for _, cfg := range []capverify.Config{{}, {Privileged: true}, {DataBytes: 64}} {
			rep := capverify.Verify(prog, cfg)
			if rep == nil {
				t.Fatal("nil report")
			}
			_ = rep.Summary()
		}
	})
}
