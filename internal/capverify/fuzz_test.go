package capverify_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/asm"
	"repro/internal/capverify"
	"repro/internal/faultinject"
)

// FuzzVerify feeds arbitrary assembler-accepted programs to the
// verifier: whatever the assembler emits, the analysis must terminate
// without panicking. Seeds are the shipped programs, the campaign
// workloads, the crafted violations, and the flow/leak scenarios that
// exercise the abstract store and call contexts.
//
// Beyond no-panic, the fuzz oracle checks the two analyses stay
// *compatible*: the flow analysis must never prove a fault at a site
// the register-only analysis proved safe, or vice versa. (Strict
// safe-count monotonicity is NOT a fuzz invariant — threshold widening
// is not monotone in general — so exact counts are only pinned in the
// deterministic differential suite and E30.)
func FuzzVerify(f *testing.F) {
	files, _ := filepath.Glob(filepath.Join("..", "..", "programs", "*.s"))
	for _, file := range files {
		if src, err := os.ReadFile(file); err == nil {
			f.Add(string(src))
		}
	}
	for _, src := range faultinject.WorkloadSources() {
		f.Add(src)
	}
	for _, bp := range badPrograms {
		f.Add(bp.src)
	}
	for _, fp := range flowPrograms {
		f.Add(fp.src)
	}
	for _, lp := range leakPrograms {
		f.Add(lp.src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := asm.AssembleNamed("fuzz.s", src)
		if err != nil {
			return // not assemblable: out of scope
		}
		for _, cfg := range []capverify.Config{{}, {Privileged: true}, {DataBytes: 64}} {
			rep := capverify.Verify(prog, cfg)
			if rep == nil {
				t.Fatal("nil report")
			}
			_ = rep.Summary()

			regCfg := cfg
			regCfg.RegistersOnly = true
			reg := capverify.Verify(prog, regCfg)
			if reg == nil {
				t.Fatal("nil register-only report")
			}
			if len(reg.Leaks) != 0 {
				t.Fatalf("register-only analysis produced leaks: %v", reg.Leaks)
			}
			assertCompatible(t, "fuzz", rep, reg)
		}
	})
}
