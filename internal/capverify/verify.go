package capverify

import (
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/isa"
)

// verifier holds one analysis run.
type verifier struct {
	img        *Image
	cfg        Config
	maxTargets int
}

const (
	// widenAfter is how many times a program point is re-joined before
	// the join switches to the widening operator.
	widenAfter = 8

	// maxSteps caps fixpoint iterations. Widening guarantees
	// termination; the cap is a second line of defense for the fuzzer.
	maxSteps = 1 << 20
)

// Verify analyzes an assembled (or linked) program under cfg and
// returns the report. It never executes the program.
func Verify(prog *asm.Program, cfg Config) *Report {
	return newVerifier(prog, cfg).run()
}

// VerifySource assembles a single module and verifies it.
func VerifySource(name, src string, cfg Config) (*Report, error) {
	prog, err := asm.AssembleNamed(name, src)
	if err != nil {
		return nil, err
	}
	return Verify(prog, cfg), nil
}

func newVerifier(prog *asm.Program, cfg Config) *verifier {
	mt := cfg.MaxTargets
	if mt <= 0 {
		mt = 64
	}
	return &verifier{img: NewImage(prog, cfg), cfg: cfg, maxTargets: mt}
}

// run drives the worklist to fixpoint, then replays every reachable
// instruction once over its final in-state to collect verdicts.
func (v *verifier) run() *Report {
	n := v.img.SegWords()
	states := make([]state, n)     // in-state at each word
	visits := make([]int, n)       // join count, for widening
	staticReach := make([]bool, n) // certainly reached (no speculative hop)
	inWork := make([]bool, n)

	work := make([]int, 0, n)
	push := func(pc int) {
		if !inWork[pc] {
			inWork[pc] = true
			work = append(work, pc)
		}
	}

	// prop merges an edge's post-state into its target.
	prop := func(t int, st state, static bool) {
		changed := false
		if static && !staticReach[t] {
			staticReach[t] = true
			changed = true
		}
		old := states[t]
		merged := joinState(old, st, old.live && visits[t] >= widenAfter)
		if merged != old {
			states[t] = merged
			visits[t]++
			changed = true
		}
		if changed {
			push(t)
		}
	}

	prop(0, v.entryState(), true)

	abyss := false
	for steps := 0; len(work) > 0 && steps < maxSteps; steps++ {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[pc] = false
		in := states[pc]
		if !in.live || !v.img.Decodes[pc] {
			continue // unreachable, or fetch faults: no successors
		}
		out := v.step(pc, in)
		if out.abyss && !abyss {
			// An indirect jump could not be bounded: from here, any
			// instruction may execute with any state. Inject the havoc
			// state everywhere, once (it is the lattice top, so a second
			// injection could not change anything).
			abyss = true
			h := havocState()
			for t := 0; t < n; t++ {
				prop(t, h, false)
			}
		}
		for _, e := range out.edges {
			prop(e.pc, e.st, staticReach[pc] && !e.spec)
		}
	}

	// Report pass: replay each reachable word over its fixpoint
	// in-state and record the check verdicts.
	rep := &Report{Abyss: abyss, sites: make([][]SiteCheck, n)}
	for pc := 0; pc < n; pc++ {
		in := states[pc]
		if !in.live {
			continue
		}
		rep.ReachableWords++
		rep.sites[pc] = []SiteCheck{} // reachable, even if check-free
		if !v.img.Decodes[pc] {
			// Fetching this word faults. Provable only when the word is
			// certainly reached; a speculative or havoc path makes it an
			// unknown on the fetch check.
			verdict := VerdictUnknown
			msg := "execution may reach a word that does not decode as an instruction"
			if staticReach[pc] {
				verdict = VerdictFault
				msg = "execution reaches a word that does not decode as an instruction"
			}
			c := check{
				class: ClassCtrl, verdict: verdict, code: core.FaultPerm,
				msg: msg, reg: -1,
			}
			rep.add(v.diag(pc, in, c))
			rep.sites[pc] = append(rep.sites[pc], SiteCheck{Class: c.class, Verdict: c.verdict})
			continue
		}
		out := v.step(pc, in)
		for _, c := range out.checks {
			rep.add(v.diag(pc, in, c))
			rep.sites[pc] = append(rep.sites[pc], SiteCheck{Class: c.class, Verdict: c.verdict})
		}
	}
	rep.sortDiags()
	return rep
}

// diag attaches source provenance to a check verdict: the instruction's
// own origin, plus — when the check blames a register defined at a
// known instruction — the origin of that definition.
func (v *verifier) diag(pc int, in state, c check) Diag {
	o := v.img.Origin(pc)
	d := Diag{
		PC: pc, File: o.File, Line: o.Line,
		Class: c.class.String(), Verdict: c.verdict.String(),
		Code: c.code, Msg: c.msg, Reg: c.reg,
		verdict: c.verdict, class: c.class,
	}
	if v.img.Decodes[pc] {
		d.Inst = v.img.Insts[pc].String()
	}
	if c.verdict == VerdictFault && c.code != core.FaultNone {
		d.Fault = c.code.String()
	}
	if c.reg >= 0 && c.reg < isa.NumRegs {
		if def := in.defs[c.reg]; def >= 0 {
			ro := v.img.Origin(int(def))
			d.RegFile, d.RegLine = ro.File, ro.Line
		}
	}
	return d
}
