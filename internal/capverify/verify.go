package capverify

import (
	"sort"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/isa"
)

// verifier holds one analysis run.
type verifier struct {
	img        *Image
	cfg        Config
	maxTargets int
	ths        []int64 // widening thresholds harvested from comparisons
}

const (
	// widenAfter is how many times a program point is re-joined before
	// the join switches to the widening operator.
	widenAfter = 8

	// maxSteps caps fixpoint iterations. Widening guarantees
	// termination; the cap is a second line of defense for the fuzzer.
	maxSteps = 1 << 20

	// maxCtxs caps how many interprocedural contexts the engine creates
	// (one per exact call/enter site). Beyond the cap a call degrades to
	// a plain local edge — the original single-space semantics, which is
	// sound, just less precise.
	maxCtxs = 32
)

// Domain sentinels for ctxInfo.dom: a context either executes in the
// root protection domain, in the domain named by the enter-gated entry
// point it crossed into, or in an unresolvable mix of parents.
const (
	domRoot  int32 = -1
	domMixed int32 = -2
)

// ctxInfo is one interprocedural analysis context: the abstract state
// space of a callee as entered from one exact call or enter site.
// Contexts are 1-level call strings — each exact JMPL (or enter-gated
// jump) site gets its own copy of the callee's state space, so the
// callee's registers are not smeared across unrelated callers and its
// exit state can be returned to exactly the right continuation.
type ctxInfo struct {
	site    int32        // creating call-site pc; -1 for the root context
	retPC   int32        // continuation pc in the caller; -1 if none
	dom     int32        // protection domain (entry pc), domRoot or domMixed
	noRet   bool         // enter via plain JMP: no return continuation
	parents map[int]bool // contexts that call through this site
}

// Verify analyzes an assembled (or linked) program under cfg and
// returns the report. It never executes the program.
func Verify(prog *asm.Program, cfg Config) *Report {
	return newVerifier(prog, cfg).run()
}

// VerifySource assembles a single module and verifies it.
func VerifySource(name, src string, cfg Config) (*Report, error) {
	prog, err := asm.AssembleNamed(name, src)
	if err != nil {
		return nil, err
	}
	return Verify(prog, cfg), nil
}

func newVerifier(prog *asm.Program, cfg Config) *verifier {
	mt := cfg.MaxTargets
	if mt <= 0 {
		mt = 64
	}
	v := &verifier{img: NewImage(prog, cfg), cfg: cfg, maxTargets: mt}
	v.ths = collectThresholds(v.img)
	return v
}

// collectThresholds harvests widening thresholds from the program text:
// every SLTI/SEQI immediate is a bound some loop or guard compares
// against, so a counter interval that is still moving should land there
// (±1 for the strict/inclusive variants) rather than racing to ±∞.
// Bounds are also scaled by every SHLI shift amount in the program:
// counters are routinely scaled to word offsets (`shli r4, r2, 3`), and
// the scaled offset interval needs the scaled bound to stabilise on.
func collectThresholds(img *Image) []int64 {
	bounds := map[int64]bool{-1: true, 0: true, 1: true}
	shifts := map[int64]bool{}
	for i, ok := range img.Decodes {
		if !ok {
			continue
		}
		inst := img.Insts[i]
		switch inst.Op {
		case isa.SLTI, isa.SEQI:
			bounds[inst.Imm-1] = true
			bounds[inst.Imm] = true
			bounds[inst.Imm+1] = true
		case isa.SHLI:
			if inst.Imm > 0 && inst.Imm < 16 {
				shifts[inst.Imm] = true
			}
		}
	}
	set := map[int64]bool{}
	for b := range bounds {
		set[b] = true
		for s := range shifts {
			scaled := b << uint(s)
			if scaled>>uint(s) == b { // no overflow
				set[scaled] = true
			}
		}
	}
	out := make([]int64, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// run drives the interprocedural worklist to fixpoint, then replays
// every reachable instruction in every live context over its final
// in-state, merging the per-context verdicts into one site table.
func (v *verifier) run() *Report {
	n := v.img.SegWords()

	ctxs := []ctxInfo{{site: -1, retPC: -1, dom: domRoot}}
	states := [][]state{make([]state, n)} // in-state per (ctx, word)
	visits := [][]int{make([]int, n)}     // join counts, for widening
	staticReach := [][]bool{make([]bool, n)}
	inWork := [][]bool{make([]bool, n)}
	rets := []state{{}}         // joined return state per context
	retStatic := []bool{false}  // whether any return edge was static
	byCallSite := map[int]int{} // call-site pc -> context index

	type item struct{ c, pc int }
	work := make([]item, 0, n)
	push := func(c, pc int) {
		if !inWork[c][pc] {
			inWork[c][pc] = true
			work = append(work, item{c, pc})
		}
	}

	// prop merges an edge's post-state into (c, t).
	prop := func(c, t int, st state, static bool) {
		changed := false
		if static && !staticReach[c][t] {
			staticReach[c][t] = true
			changed = true
		}
		old := states[c][t]
		merged := v.joinState(old, st, old.live && visits[c][t] >= widenAfter)
		if !stateEq(merged, old) {
			states[c][t] = merged
			visits[c][t]++
			changed = true
		}
		if changed {
			push(c, t)
		}
	}

	// newCtx allocates a fresh context for call-site pc.
	newCtx := func(site, retPC, dom int32, noRet bool) int {
		ctxs = append(ctxs, ctxInfo{site: site, retPC: retPC, dom: dom,
			noRet: noRet, parents: map[int]bool{}})
		states = append(states, make([]state, n))
		visits = append(visits, make([]int, n))
		staticReach = append(staticReach, make([]bool, n))
		inWork = append(inWork, make([]bool, n))
		rets = append(rets, state{})
		retStatic = append(retStatic, false)
		byCallSite[int(site)] = len(ctxs) - 1
		return len(ctxs) - 1
	}

	prop(0, 0, v.entryState(), true)

	abyss := false
	for steps := 0; len(work) > 0 && steps < maxSteps; steps++ {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		c, pc := it.c, it.pc
		inWork[c][pc] = false
		in := states[c][pc]
		if !in.live || !v.img.Decodes[pc] {
			continue // unreachable, or fetch faults: no successors
		}
		out := v.step(pc, in)
		if out.abyss && !abyss {
			// An indirect jump could not be bounded: from here, any
			// instruction may execute with any state. Inject the havoc
			// state everywhere, once (it is the lattice top, so a second
			// injection could not change anything), and stop creating
			// contexts — precision is gone anyway.
			abyss = true
			h := havocState()
			for cc := range ctxs {
				for t := 0; t < n; t++ {
					prop(cc, t, h, false)
				}
			}
		}
		for _, e := range out.edges {
			static := staticReach[c][pc] && !e.spec

			// Interprocedural call/enter edge: analyse the callee in a
			// context keyed by this call site. A call to its own return
			// address is degenerate — left as a local edge — but an
			// enter-gated crossing is a domain transition wherever it
			// lands.
			if (e.call || e.enter) && !abyss && !v.cfg.RegistersOnly &&
				!(e.call && !e.enter && e.pc == pc+1) {
				cc, ok := byCallSite[pc]
				if !ok && len(ctxs) < maxCtxs {
					retPC := int32(pc + 1)
					noRet := false
					if !e.call {
						retPC, noRet = -1, true // plain JMP through enter: no continuation
					}
					dom := ctxs[c].dom
					if e.enter {
						dom = int32(e.pc)
					}
					cc = newCtx(int32(pc), retPC, dom, noRet)
					ok = true
				}
				if ok {
					if e.enter && ctxs[cc].dom != int32(e.pc) {
						ctxs[cc].dom = domMixed
					}
					if !e.enter && ctxs[cc].dom != ctxs[c].dom {
						ctxs[cc].dom = domMixed
					}
					if !ctxs[cc].parents[c] {
						ctxs[cc].parents[c] = true
						// A parent attaching after the callee already
						// returned gets the known exit state replayed.
						if rp := ctxs[cc].retPC; rp >= 0 && rets[cc].live {
							prop(c, int(rp), rets[cc], retStatic[cc])
						}
					}
					prop(cc, e.pc, e.st, static)
					continue
				}
				// Context cap reached: fall through to a local edge.
			}

			// Return edge: a non-call jump out of a callee context to its
			// continuation resumes every caller at the call's return pc.
			if ci := &ctxs[c]; ci.site >= 0 && !ci.noRet && !e.call && int32(e.pc) == ci.retPC {
				rets[c] = v.joinState(rets[c], e.st, false)
				if static {
					retStatic[c] = true
				}
				for p := range ci.parents {
					prop(p, e.pc, e.st, static)
				}
				continue
			}

			prop(c, e.pc, e.st, static)
		}
	}

	// Report pass: replay each reachable word in every live context over
	// its fixpoint in-state, merge the per-context verdicts, and collect
	// confinement leaks.
	rep := &Report{Abyss: abyss, sites: make([][]SiteCheck, n)}
	live := make([]int, 0, len(ctxs))
	for pc := 0; pc < n; pc++ {
		live = live[:0]
		for c := range ctxs {
			if states[c][pc].live {
				live = append(live, c)
			}
		}
		if len(live) == 0 {
			continue
		}
		rep.ReachableWords++
		rep.sites[pc] = []SiteCheck{} // reachable, even if check-free
		baseIn := states[live[0]][pc]
		if !v.img.Decodes[pc] {
			// Fetching this word faults. Provable only when the word is
			// certainly reached; a speculative or havoc path makes it an
			// unknown on the fetch check.
			anyStatic := false
			for _, c := range live {
				anyStatic = anyStatic || staticReach[c][pc]
			}
			verdict := VerdictUnknown
			msg := "execution may reach a word that does not decode as an instruction"
			if anyStatic {
				verdict = VerdictFault
				msg = "execution reaches a word that does not decode as an instruction"
			}
			c := check{
				class: ClassCtrl, verdict: verdict, code: core.FaultPerm,
				msg: msg, reg: -1,
			}
			rep.add(v.diag(pc, baseIn, c))
			rep.sites[pc] = append(rep.sites[pc], SiteCheck{Class: c.class, Verdict: c.verdict})
			continue
		}
		var merged []check
		for _, c := range live {
			out := v.step(pc, states[c][pc])
			if !v.cfg.RegistersOnly {
				v.collectLeaks(rep, pc, ctxs[c].dom, states[c][pc], &out)
			}
			merged = mergeChecks(merged, out.checks)
		}
		for _, c := range merged {
			rep.add(v.diag(pc, baseIn, c))
			rep.sites[pc] = append(rep.sites[pc], SiteCheck{Class: c.class, Verdict: c.verdict})
		}
	}
	rep.sortDiags()
	rep.sortLeaks()
	return rep
}

// mergeChecks folds one context's check list into the running merged
// list for a site. Lists from different contexts may differ in length
// (an early provable fault cuts a context's list short; a one-sided
// branch emits only its side's control check); the merge keeps the
// longer list and joins verdicts positionwise — agreeing verdicts
// stand, disagreeing ones degrade to unknown. This is sound for the
// JIT's all-safe test: the merged list is all-safe only if every
// context proved every check it emits, and each dynamic instance's
// checks are covered by the context that abstracts it.
func mergeChecks(a, b []check) []check {
	if a == nil {
		return b
	}
	long, short := a, b
	if len(b) > len(a) {
		long, short = b, a
	}
	out := append([]check(nil), long...)
	for i := range short {
		if out[i].verdict == short[i].verdict {
			continue
		}
		pick := out[i]
		if pick.verdict == VerdictSafe {
			pick = short[i] // prefer the side that saw a problem
		}
		pick.verdict = VerdictUnknown
		pick.code = core.FaultNone
		out[i] = pick
	}
	return out
}

// diag attaches source provenance to a check verdict: the instruction's
// own origin, plus — when the check blames a register defined at a
// known instruction — the origin of that definition.
func (v *verifier) diag(pc int, in state, c check) Diag {
	o := v.img.Origin(pc)
	d := Diag{
		PC: pc, File: o.File, Line: o.Line,
		Class: c.class.String(), Verdict: c.verdict.String(),
		Code: c.code, Msg: c.msg, Reg: c.reg,
		verdict: c.verdict, class: c.class,
	}
	if v.img.Decodes[pc] {
		d.Inst = v.img.Insts[pc].String()
	}
	if c.verdict == VerdictFault && c.code != core.FaultNone {
		d.Fault = c.code.String()
	}
	if c.reg >= 0 && c.reg < isa.NumRegs {
		if def := in.defs[c.reg]; def >= 0 {
			ro := v.img.Origin(int(def))
			d.RegFile, d.RegLine = ro.File, ro.Line
		}
	}
	return d
}
