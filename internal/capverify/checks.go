package capverify

import (
	"fmt"

	"repro/internal/core"
)

// Permission-set masks for the hardware checks.
const (
	// dataPerm is the permission of the scratch segment in r1.
	dataPerm = core.PermReadWrite

	// modifiableMask: perms LEA/LEAB/RESTRICT/SUBSEG accept.
	modifiableMask uint16 = 1<<core.PermReadOnly | 1<<core.PermReadWrite |
		1<<core.PermExecuteUser | 1<<core.PermExecutePriv

	// loadableMask: perms CheckLoad accepts (execute pointers read).
	loadableMask = modifiableMask

	// storableMask: perms CheckStore accepts.
	storableMask uint16 = 1 << core.PermReadWrite

	// jumpableMask: perms JumpTarget accepts.
	jumpableMask uint16 = 1<<core.PermExecuteUser | 1<<core.PermExecutePriv |
		1<<core.PermEnterUser | 1<<core.PermEnterPriv

	// privPermsMask: perms that install supervisor mode when jumped to.
	privPermsMask uint16 = 1<<core.PermExecutePriv | 1<<core.PermEnterPriv
)

// check is one evaluated dynamic-check site within an instruction.
type check struct {
	class   Class
	verdict Verdict
	code    core.FaultCode // predicted code when verdict == VerdictFault
	msg     string
	reg     int // offending register, -1
}

// edge is one control-flow successor with its post-state. spec marks a
// speculative candidate of an imprecise indirect jump: the target is
// possible, not certain, so reaching a non-decodable word through it is
// an unknown rather than a provable fetch fault. call marks a JMPL with
// a single exact target (an interprocedural call the engine analyses in
// its own context); enter marks an exact jump through a provably
// enter-only pointer (a protection-domain crossing).
type edge struct {
	pc    int
	st    state
	spec  bool
	call  bool
	enter bool
}

// stepOut is everything one instruction's abstract execution produces.
type stepOut struct {
	edges  []edge
	checks []check
	abyss  bool // an indirect jump could not be bounded
}

func (o *stepOut) add(class Class, verdict Verdict, code core.FaultCode, reg int, format string, args ...interface{}) Verdict {
	o.checks = append(o.checks, check{
		class: class, verdict: verdict, code: code, reg: reg,
		msg: fmt.Sprintf(format, args...),
	})
	return verdict
}

// permsString names a permission set for diagnostics.
func permsString(mask uint16) string {
	s := ""
	for p := core.Perm(0); p < core.NumPerms; p++ {
		if mask&(1<<p) != 0 {
			if s != "" {
				s += "|"
			}
			s += p.String()
		}
	}
	if s == "" {
		return "(none)"
	}
	return s
}

// ptrCheck evaluates the Decode (tag) check for using val as a pointer
// operand. It returns the refined pointer view and whether execution
// can continue past the check.
func ptrCheck(out *stepOut, val Value, reg int, op string) (Value, bool) {
	switch val.Kind {
	case KPtr:
		out.add(ClassTag, VerdictSafe, core.FaultNone, reg, "%s operand r%d is always a pointer", op, reg)
		return val, true
	case KUninit:
		out.add(ClassTag, VerdictFault, core.FaultTag, reg,
			"%s through r%d, which is never initialized (untagged 0)", op, reg)
		return Value{}, false
	case KInt:
		out.add(ClassTag, VerdictFault, core.FaultTag, reg,
			"%s through r%d, which always holds an untagged integer (%s)", op, reg, val)
		return Value{}, false
	default: // KTop
		out.add(ClassTag, VerdictUnknown, core.FaultNone, reg,
			"%s operand r%d may not carry the pointer tag", op, reg)
		return PtrAny(RegAny), true
	}
}

// permCheck evaluates a permission-subset check: the pointer's
// permission must be inside allowed. Returns the refined value.
func permCheck(out *stepOut, pv Value, allowed uint16, code core.FaultCode, reg int, what string) (Value, bool) {
	switch {
	case pv.Perms&^allowed == 0:
		out.add(ClassPerm, VerdictSafe, core.FaultNone, reg,
			"%s: r%d permission is always %s", what, reg, permsString(pv.Perms))
		return pv, true
	case pv.Perms&allowed == 0:
		out.add(ClassPerm, VerdictFault, code, reg,
			"%s through a %s pointer in r%d", what, permsString(pv.Perms), reg)
		return Value{}, false
	default:
		out.add(ClassPerm, VerdictUnknown, core.FaultNone, reg,
			"%s: r%d permission may be %s", what, reg, permsString(pv.Perms&^allowed))
		pv.Perms &= allowed
		return pv.canon(), true
	}
}

// leaBounds evaluates the Fig. 2 masked-comparator check of an
// address-forming add: the new offset must stay inside [0, segment
// size). off is the integer displacement; fromBase selects LEAB
// semantics (displacement from the segment base rather than the
// current offset). Returns the post-add pointer, refined by the
// pass assumption.
func leaBounds(out *stepOut, pv Value, off Value, fromBase bool, reg int, op string) (Value, bool) {
	var sumLo, sumHi int64
	if fromBase {
		sumLo, sumHi = off.Lo, off.Hi
	} else {
		sumLo = satAdd(int64(pv.OffLo), off.Lo)
		sumHi = satAdd(int64(pv.OffHi), off.Hi)
	}
	segMin := int64(1) << pv.LenLo
	segMax := int64(1) << pv.LenHi

	res := pv
	if fromBase {
		res.Mod, res.Rem = off.Mod, off.Rem&(off.Mod-1)
	} else {
		m := minU64(pv.Mod, off.Mod)
		res.Mod, res.Rem = m, (pv.Rem+off.Rem)&(m-1)
	}

	switch {
	case sumLo >= 0 && sumHi < segMin:
		out.add(ClassBounds, VerdictSafe, core.FaultNone, reg,
			"%s offset always lands in [%d,%d] inside the 2^%d-byte segment of r%d", op, sumLo, sumHi, pv.LenLo, reg)
	case sumHi < 0 || sumLo >= segMax:
		out.add(ClassBounds, VerdictFault, core.FaultBounds, reg,
			"%s offset %s always leaves the 2^[%d,%d]-byte segment of r%d", op,
			rangeStr(sumLo, sumHi), pv.LenLo, pv.LenHi, reg)
		return Value{}, false
	default:
		out.add(ClassBounds, VerdictUnknown, core.FaultNone, reg,
			"%s offset %s may leave the 2^[%d,%d]-byte segment of r%d", op,
			rangeStr(sumLo, sumHi), pv.LenLo, pv.LenHi, reg)
	}
	if sumLo < 0 {
		sumLo = 0
	}
	if sumHi > segMax-1 {
		sumHi = segMax - 1
	}
	res.OffLo, res.OffHi = uint64(sumLo), uint64(sumHi)
	res = res.canon()
	if res.Kind == KBottom {
		// The pass assumption is unsatisfiable under the congruence:
		// treat as an (already-reported) dead path.
		return Value{}, false
	}
	return res, true
}

func rangeStr(lo, hi int64) string {
	if lo == hi {
		return fmt.Sprintf("%d", lo)
	}
	return fmt.Sprintf("[%s,%s]", boundStr(lo), boundStr(hi))
}

// spanCheck evaluates checkSpan: size bytes at the pointer's offset
// must fit in the segment.
func spanCheck(out *stepOut, pv Value, size int64, reg int, op string) (Value, bool) {
	segMin := int64(1) << pv.LenLo
	segMax := int64(1) << pv.LenHi
	switch {
	case satAdd(int64(pv.OffHi), size) <= segMin:
		out.add(ClassBounds, VerdictSafe, core.FaultNone, reg,
			"%s span: offset+%d ≤ %d always fits r%d's segment", op, size, segMin, reg)
	case satAdd(int64(pv.OffLo), size) > segMax:
		out.add(ClassBounds, VerdictFault, core.FaultBounds, reg,
			"%d-byte %s at offset %s always exceeds r%d's 2^[%d,%d]-byte segment",
			size, op, rangeStr(int64(pv.OffLo), int64(pv.OffHi)), reg, pv.LenLo, pv.LenHi)
		return Value{}, false
	default:
		out.add(ClassBounds, VerdictUnknown, core.FaultNone, reg,
			"%d-byte %s at offset %s may exceed r%d's 2^[%d,%d]-byte segment",
			size, op, rangeStr(int64(pv.OffLo), int64(pv.OffHi)), reg, pv.LenLo, pv.LenHi)
	}
	if int64(pv.OffHi) > segMax-size {
		pv.OffHi = uint64(segMax - size)
		pv = pv.canon()
		if pv.Kind == KBottom {
			return Value{}, false
		}
	}
	return pv, true
}

// alignCheck evaluates the natural-alignment check of a word access or
// jump target: the absolute address must be 0 mod 8. The base of a
// segment is aligned on the segment size, so for segments of at least
// a word the offset congruence decides alignment.
func alignCheck(out *stepOut, pv Value, reg int, op string) (Value, bool) {
	// g is how far the congruence pins the absolute address's low bits.
	g := minU64(pv.Mod, uint64(1)<<pv.LenLo)
	if g > 8 {
		g = 8
	}
	if g == 0 {
		g = 1
	}
	switch {
	case g == 8 && pv.Rem&7 == 0:
		out.add(ClassAlign, VerdictSafe, core.FaultNone, reg,
			"%s address through r%d is always 8-aligned", op, reg)
	case pv.Rem&(g-1) != 0:
		out.add(ClassAlign, VerdictFault, core.FaultBounds, reg,
			"%s address through r%d is never 8-aligned (offset ≡ %d mod %d)", op, reg, pv.Rem&(g-1), g)
		return Value{}, false
	default:
		out.add(ClassAlign, VerdictUnknown, core.FaultNone, reg,
			"%s address through r%d may be unaligned", op, reg)
		// On the pass path the offset is 8-aligned, as long as the
		// segment itself is at least word-aligned.
		if pv.LenLo >= 3 && pv.Mod < 8 && pv.Rem == 0 {
			pv.Mod, pv.Rem = 8, 0
			pv = pv.canon()
			if pv.Kind == KBottom {
				return Value{}, false
			}
		}
	}
	return pv, true
}

// ctrlCheck evaluates an instruction-pointer move to word index target
// (the LEA on the IP that branch and sequential advance perform). The
// IP's offset and segment are exact, so this check always decides.
func ctrlCheck(out *stepOut, target, segWords int, what string) bool {
	if target >= 0 && target < segWords {
		out.add(ClassCtrl, VerdictSafe, core.FaultNone, -1,
			"%s stays inside the code segment", what)
		return true
	}
	out.add(ClassCtrl, VerdictFault, core.FaultBounds, -1,
		"%s leaves the code segment (word %d of %d)", what, target, segWords)
	return false
}
