package capverify

import (
	"math"
	"math/bits"

	"repro/internal/core"
)

// This file holds the abstract integer transfer functions: interval
// plus power-of-two congruence arithmetic over the bits-as-int64 view
// of a word, mirroring word.Word.Int() semantics (the tag is ignored;
// feeding a pointer to the ALU reads its raw bit image).

// asInt converts any lattice value to the KInt view of its 64-bit
// pattern. An uninitialized register reads as 0; a guarded pointer's
// image is dominated by its permission field (perm ≥ 1 puts the bits
// in [2^60, 2^63)), and its low bits follow the offset congruence as
// far as the segment alignment guarantees them.
func asInt(v Value) Value {
	switch v.Kind {
	case KBottom:
		return v
	case KUninit:
		return IntExact(0)
	case KInt:
		return v
	case KPtr:
		minPerm, maxPerm := 15, 0
		for p := 0; p < 16; p++ {
			if v.Perms&(1<<p) != 0 {
				if p < minPerm {
					minPerm = p
				}
				if p > maxPerm {
					maxPerm = p
				}
			}
		}
		out := Value{
			Kind: KInt,
			Lo:   int64(minPerm) << 60,
			Hi:   int64(maxPerm+1)<<60 - 1,
		}
		// base ≡ 0 (mod 2^LenLo), so the address — and the whole bit
		// image, below bit 54 — keeps the offset congruence up to the
		// segment alignment.
		out.Mod = minU64(v.Mod, uint64(1)<<v.LenLo)
		if out.Mod > uint64(1)<<core.AddrBits {
			out.Mod = uint64(1) << core.AddrBits
		}
		if out.Mod == 0 {
			out.Mod = 1
		}
		out.Rem = v.Rem & (out.Mod - 1)
		return out.canon()
	case KTop:
		return IntAny()
	}
	return IntAny()
}

func addInt(a, b Value) Value {
	if a.Kind == KBottom || b.Kind == KBottom {
		return Bottom()
	}
	out := Value{Kind: KInt, Lo: satAdd(a.Lo, b.Lo), Hi: satAdd(a.Hi, b.Hi)}
	m := minU64(a.Mod, b.Mod)
	out.Mod, out.Rem = m, (a.Rem+b.Rem)&(m-1)
	return out.canon()
}

func subInt(a, b Value) Value {
	if a.Kind == KBottom || b.Kind == KBottom {
		return Bottom()
	}
	out := Value{Kind: KInt, Lo: satAdd(a.Lo, negSat(b.Hi)), Hi: satAdd(a.Hi, negSat(b.Lo))}
	m := minU64(a.Mod, b.Mod)
	out.Mod, out.Rem = m, (a.Rem-b.Rem)&(m-1)
	return out.canon()
}

// negSat negates with saturation (-MinInt64 would overflow).
func negSat(x int64) int64 {
	if x == math.MinInt64 {
		return math.MaxInt64
	}
	return -x
}

func mulInt(a, b Value) Value {
	if a.Kind == KBottom || b.Kind == KBottom {
		return Bottom()
	}
	if x, ok := a.IsExactInt(); ok {
		if y, ok := b.IsExactInt(); ok {
			return IntExact(x * y) // wraps exactly as the machine does
		}
	}
	out := IntAny()
	const small = int64(1) << 31
	if a.Lo > -small && a.Hi < small && b.Lo > -small && b.Hi < small {
		c := [4]int64{a.Lo * b.Lo, a.Lo * b.Hi, a.Hi * b.Lo, a.Hi * b.Hi}
		lo, hi := c[0], c[0]
		for _, x := range c[1:] {
			lo, hi = minI(lo, x), maxI(hi, x)
		}
		out.Lo, out.Hi = lo, hi
	}
	// Low bits of a product are determined by low bits of the factors.
	m := minU64(a.Mod, b.Mod)
	out.Mod, out.Rem = m, (a.Rem*b.Rem)&(m-1)
	return out.canon()
}

func bitwiseInt(op byte, a, b Value) Value {
	if a.Kind == KBottom || b.Kind == KBottom {
		return Bottom()
	}
	if x, ok := a.IsExactInt(); ok {
		if y, ok := b.IsExactInt(); ok {
			switch op {
			case '&':
				return IntExact(x & y)
			case '|':
				return IntExact(x | y)
			}
			return IntExact(x ^ y)
		}
	}
	out := IntAny()
	if a.Lo >= 0 && b.Lo >= 0 {
		switch op {
		case '&':
			out.Lo, out.Hi = 0, minI(a.Hi, b.Hi)
		case '|':
			out.Lo, out.Hi = maxI(a.Lo, b.Lo), satAdd(a.Hi, b.Hi)
		case '^':
			out.Lo, out.Hi = 0, satAdd(a.Hi, b.Hi)
		}
	} else if op == '&' {
		// AND with a known non-negative mask bounds the result even if
		// the other side may be negative.
		if x, ok := a.IsExactInt(); ok && x >= 0 {
			out.Lo, out.Hi = 0, x
		} else if y, ok := b.IsExactInt(); ok && y >= 0 {
			out.Lo, out.Hi = 0, y
		}
	}
	m := minU64(a.Mod, b.Mod)
	var r uint64
	switch op {
	case '&':
		r = a.Rem & b.Rem
	case '|':
		r = a.Rem | b.Rem
	default:
		r = a.Rem ^ b.Rem
	}
	out.Mod, out.Rem = m, r&(m-1)
	return out.canon()
}

// shlInt models rd = a << (s & 63). Low result bits are determined by
// low input bits, so the congruence survives even when the interval
// overflows.
func shlInt(a, s Value) Value {
	if a.Kind == KBottom || s.Kind == KBottom {
		return Bottom()
	}
	sh, exact := s.IsExactInt()
	if !exact {
		return IntAny()
	}
	n := uint(sh) & 63
	if x, ok := a.IsExactInt(); ok {
		return IntExact(x << n)
	}
	out := IntAny()
	if n <= 62 && a.Lo >= 0 && a.Hi <= math.MaxInt64>>n {
		out.Lo, out.Hi = a.Lo<<n, a.Hi<<n
	}
	// a ≡ r (mod m) ⟹ a<<n ≡ r<<n (mod min(m<<n, 2^62)).
	m := a.Mod
	if n >= 62 || m > exactMod>>n {
		m = exactMod
	} else {
		m <<= n
	}
	out.Mod = m
	out.Rem = (a.Rem << n) & (m - 1)
	return out.canon()
}

// shrInt models rd = logical-shift-right(a, s & 63).
func shrInt(a, s Value) Value {
	if a.Kind == KBottom || s.Kind == KBottom {
		return Bottom()
	}
	sh, exact := s.IsExactInt()
	if !exact {
		return IntAny()
	}
	n := uint(sh) & 63
	if x, ok := a.IsExactInt(); ok {
		return IntExact(int64(uint64(x) >> n))
	}
	if n == 0 {
		return a
	}
	out := IntAny()
	if a.Lo >= 0 {
		out.Lo, out.Hi = a.Lo>>n, a.Hi>>n
	} else {
		// Negative inputs shift to large positives; only the width
		// bound survives.
		out.Lo, out.Hi = 0, int64((^uint64(0))>>n)
	}
	return out.canon()
}

// intLt reports whether a < b always / never holds over the abstract
// operands.
func intLt(a, b Value) (always, never bool) {
	return a.Hi < b.Lo, a.Lo >= b.Hi
}

// boolVal builds the 0/1 result of a comparison from its tri-state.
func boolVal(always, never bool) Value {
	switch {
	case always:
		return IntExact(1)
	case never:
		return IntExact(0)
	}
	return IntRange(0, 1)
}

// canBeZero reports whether the abstract value admits the concrete
// bits-zero word (the branch condition of BEQZ). A guarded pointer's
// permission field is nonzero, so pointers are never zero; top admits
// zero.
func canBeZero(v Value) bool {
	switch v.Kind {
	case KUninit:
		return true
	case KInt:
		return v.Lo <= 0 && 0 <= v.Hi && (v.Mod <= 1 || v.Rem == 0)
	case KPtr:
		return false
	}
	return true // KTop
}

// canBeNonzero reports whether the value admits any nonzero bits.
func canBeNonzero(v Value) bool {
	switch v.Kind {
	case KUninit:
		return false
	case KInt:
		return v.Lo != 0 || v.Hi != 0
	}
	return true
}

// refineZero narrows v to the zero word, reporting false if that is
// impossible.
func refineZero(v Value) (Value, bool) {
	switch v.Kind {
	case KUninit:
		return v, true
	case KInt:
		if !canBeZero(v) {
			return v, false
		}
		return IntExact(0), true
	case KPtr:
		return v, false
	}
	return IntExact(0), true // KTop: a valid pointer is never zero
}

// refineNonzero narrows v to exclude the zero word.
func refineNonzero(v Value) (Value, bool) {
	switch v.Kind {
	case KUninit:
		return v, false
	case KInt:
		if v.Lo == 0 && v.Hi == 0 {
			return v, false
		}
		if v.Lo == 0 {
			v.Lo = 1
		}
		if v.Hi == 0 {
			v.Hi = -1
		}
		return v.canon(), true
	}
	return v, true
}

// popcount16 counts set bits (tiny helper aliasing math/bits).
func popcount16(m uint16) int { return bits.OnesCount16(m) }
