package capverify

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/isa"
)

// Confinement pass: which capabilities can escape a protection domain?
//
// A protection domain in the analysis is the code reached through an
// enter-gated crossing (an exact jump through a pointer holding only
// enter permissions — the guarded-pointer protected-subsystem entry of
// Sec 3.2). Code running inside such a domain can leak a capability in
// two ways the confinement report tracks:
//
//   - store leak: the domain stores a tagged pointer into the shared
//     data segment, where any later holder of a data pointer can reload
//     it with full rights;
//   - crossing leak: a register still holds a tagged pointer at the
//     moment control crosses into another domain, handing that domain
//     the capability directly.
//
// Code in the root domain cannot leak — it owns everything it holds —
// so shipped single-domain programs produce an empty table. Leaks are
// may-analysis diagnostics (never faults): a Definite leak stores a
// value that is a pointer on every path; an indefinite one stores a
// value the analysis cannot prove untagged.

// Leak is one capability-escape diagnostic.
type Leak struct {
	PC   int    `json:"pc"`
	File string `json:"file,omitempty"`
	Line int    `json:"line,omitempty"`
	Inst string `json:"inst,omitempty"`

	// Kind is "store" (a pointer written to shared memory) or
	// "crossing" (a pointer live in a register at a domain transition).
	Kind string `json:"kind"`

	// Reg is the register holding the escaping capability.
	Reg int `json:"reg"`

	// Definite reports whether the escaping value is provably a tagged
	// pointer (as opposed to merely not provably untagged).
	Definite bool `json:"definite"`

	// Dom names the protection domain the capability escapes from: the
	// label of its enter entry point, or "mixed" when the context is
	// reachable from several domains.
	Dom string `json:"dom"`

	// Perms is the escaping pointer's possible permission set, rendered.
	Perms string `json:"perms,omitempty"`

	// ValFile/ValLine locate the escaping value's definition site.
	ValFile string `json:"val_file,omitempty"`
	ValLine int    `json:"val_line,omitempty"`
}

func (l Leak) String() string {
	def := "may leak"
	if l.Definite {
		def = "leaks"
	}
	s := fmt.Sprintf("%s:%d: leak: %s %s capability in r%d out of domain %q",
		l.File, l.Line, l.Kind, def, l.Reg, l.Dom)
	if l.Perms != "" {
		s += fmt.Sprintf(" (perms %s)", l.Perms)
	}
	if l.ValFile != "" {
		s += fmt.Sprintf("; value defined at %s:%d", l.ValFile, l.ValLine)
	}
	return s
}

// domName renders a context's protection-domain identifier: the label
// at its enter entry point, or "label+k" when the entry sits k words
// past the nearest preceding label (an enter pointer need not land
// exactly on one).
func (v *verifier) domName(dom int32) string {
	if dom == domRoot {
		return "root"
	}
	if dom == domMixed {
		return "mixed"
	}
	if sym := asm.Symbolize(v.img.Labels, int(dom)); sym != "" {
		return sym
	}
	return fmt.Sprintf("word%d", dom)
}

// collectLeaks inspects one (context, pc) replay for capability escapes
// and records them on the report. dom is the context's protection
// domain; the root domain never leaks.
func (v *verifier) collectLeaks(rep *Report, pc int, dom int32, in state, out *stepOut) {
	if !v.img.Decodes[pc] {
		return
	}
	inst := v.img.Insts[pc]

	// Store leak: a confined domain writes a (possible) pointer to the
	// shared data segment and the store completes on some path.
	if dom != domRoot && inst.Op == isa.ST && len(out.edges) > 0 {
		val := in.regs[inst.Rb]
		if val.Kind == KPtr || val.Kind == KTop {
			v.addLeak(rep, pc, in, Leak{
				Kind: "store", Reg: int(inst.Rb),
				Definite: val.Kind == KPtr,
				Dom:      v.domName(dom),
			}, val)
		}
	}

	// Crossing leak: at a domain transition, every register still
	// holding a provable pointer — other than the jump target itself and
	// the JMPL link — is handed to the target domain.
	for _, e := range out.edges {
		if !e.enter {
			continue
		}
		for r := 0; r < isa.NumRegs; r++ {
			if r == int(inst.Ra) || (inst.Op == isa.JMPL && r == int(inst.Rd)) {
				continue
			}
			val := in.regs[r]
			if val.Kind != KPtr {
				continue
			}
			v.addLeak(rep, pc, in, Leak{
				Kind: "crossing", Reg: r,
				Definite: true,
				Dom:      v.domName(dom),
			}, val)
		}
		break // edges of one enter jump share the register file
	}
}

// addLeak fills provenance and appends, deduplicating the (pc, reg,
// kind) triple across contexts.
func (v *verifier) addLeak(rep *Report, pc int, in state, l Leak, val Value) {
	for _, have := range rep.Leaks {
		if have.PC == pc && have.Reg == l.Reg && have.Kind == l.Kind {
			return
		}
	}
	o := v.img.Origin(pc)
	l.PC, l.File, l.Line = pc, o.File, o.Line
	l.Inst = v.img.Insts[pc].String()
	if val.Kind == KPtr {
		l.Perms = permsString(val.Perms)
	}
	if l.Reg >= 0 && l.Reg < isa.NumRegs {
		if def := in.defs[l.Reg]; def >= 0 {
			vo := v.img.Origin(int(def))
			l.ValFile, l.ValLine = vo.File, vo.Line
		}
	}
	rep.Leaks = append(rep.Leaks, l)
}
