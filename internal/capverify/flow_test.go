package capverify_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/capverify"
	"repro/internal/faultinject"
	"repro/internal/machine"
)

// flowProgram is a crafted store/reload/alias/call scenario for the
// differential soundness suite: the whole-program analysis must never
// be worse than the register-only analysis of PR 5, and the program
// must still halt cleanly on the real machine.
type flowProgram struct {
	name string
	src  string
	// beats requires the flow analysis to strictly discharge more
	// checks than the register-only analysis — the scenarios the
	// abstract store and call contexts exist for.
	beats bool
}

var flowPrograms = []flowProgram{
	{"spill-reload", `
	st   r1, 0, r1       ; spill the data capability
	ld   r3, r1, 0       ; reload it
	ld   r4, r3, 8       ; dereference the reloaded capability
	halt
`, true},
	{"strong-update", `
	ldi  r2, 7
	st   r1, 0, r2       ; an integer sits in the slot
	st   r1, 0, r1       ; strong update: a capability replaces it
	ld   r3, r1, 0
	ld   r4, r3, 16      ; provably in-bounds through the reload
	halt
`, true},
	{"loop-spill", `
	st   r1, 0, r1       ; spill once
	ldi  r2, 0
loop:
	ld   r3, r1, 0       ; reload every iteration
	ld   r4, r3, 8
	addi r2, r2, 1
	slti r5, r2, 4
	bnez r5, loop
	halt
`, true},
	{"alias-weak", `
	ld   r2, r1, 0       ; data-dependent selector (memory starts zeroed)
	leai r3, r1, 8
	bnez r2, pick
	leai r3, r1, 16      ; r3 aliases slot 8 or slot 16
pick:
	st   r3, 0, r1       ; weak update: both slots may hold the cap
	ld   r4, r1, 8       ; reload through one alias
	halt
`, false},
	{"byte-clobber", `
	st   r1, 0, r1       ; capability in the slot
	stb  r1, 3, r2       ; byte store strips the tag
	ld   r3, r1, 0       ; reload sees a non-capability word
	halt
`, false},
	{"two-calls", `
	ldi  r2, =ldat
	movip r3
	leab r3, r3, r2
	mov  r4, r1
	jmpl r14, r3         ; first call
	jmpl r14, r3         ; second call, same callee
	st   r1, 0, r5
	halt
ldat:
	ld   r5, r4, 0       ; callee dereferences the argument capability
	jmp  r14
`, false},
	// Context sensitivity proper: the index access after the first call
	// is in-bounds only because r7 is exactly 8 there. A context-free
	// analysis joins the second caller's r7=1000 into the callee's exit
	// state, so the joined index [8,1000] escapes the segment.
	{"call-context", `
	ldi  r2, =id
	movip r3
	leab r3, r3, r2
	ldi  r7, 8
	jmpl r14, r3         ; first call
	shli r8, r7, 3
	lea  r9, r1, r8      ; provable only per-context
	ld   r10, r9, 0
	ldi  r7, 1000
	jmpl r14, r3         ; second call: same callee, huge index
	halt
id:
	jmp  r14
`, true},
}

// TestFlowDifferentialCrafted runs each crafted scenario through both
// analyses: the flow analysis must keep every register-only safety
// proof (monotone safe counts, no contradicted verdicts), never invent
// a fault, and — where the scenario was built for it — strictly beat
// the register-only discharge. Each program must also halt cleanly, so
// the extra precision is checked against ground truth.
func TestFlowDifferentialCrafted(t *testing.T) {
	for _, fp := range flowPrograms {
		full, err := capverify.VerifySource(fp.name+".s", fp.src, capverify.Config{})
		if err != nil {
			t.Fatalf("%s: %v", fp.name, err)
		}
		reg, err := capverify.VerifySource(fp.name+".s", fp.src, capverify.Config{RegistersOnly: true})
		if err != nil {
			t.Fatalf("%s: %v", fp.name, err)
		}
		if full.HasFault() {
			t.Errorf("%s: flow analysis invented a fault: %v", fp.name, full.Faults())
		}
		if full.Abyss {
			t.Errorf("%s: flow analysis fell into the abyss", fp.name)
		}
		if full.Totals.Safe < reg.Totals.Safe {
			t.Errorf("%s: flow analysis lost precision: %d safe vs register-only %d",
				fp.name, full.Totals.Safe, reg.Totals.Safe)
		}
		if fp.beats && full.Totals.Safe <= reg.Totals.Safe {
			t.Errorf("%s: flow analysis did not beat register-only: %d safe vs %d",
				fp.name, full.Totals.Safe, reg.Totals.Safe)
		}
		assertCompatible(t, fp.name, full, reg)

		prog, err := asm.AssembleNamed(fp.name+".s", fp.src)
		if err != nil {
			t.Fatal(err)
		}
		th := runProgram(t, prog)
		if th.State != machine.Halted || th.Fault != nil {
			t.Errorf("%s: dynamic run ended %v (fault %v), want clean halt",
				fp.name, th.State, th.Fault)
		}
	}
}

// assertCompatible checks the two reports never contradict each other:
// at a check site both analyses evaluated, one must not say "passes on
// every execution" (safe) while the other says "fails on every
// execution" (fault). Sites only one analysis reaches carry no
// contradiction — the more precise analysis may prune paths entirely.
func assertCompatible(t *testing.T, name string, full, reg *capverify.Report) {
	t.Helper()
	for pc := 0; pc < 1<<15; pc++ {
		fc, rc := full.SiteChecks(pc), reg.SiteChecks(pc)
		if fc == nil || rc == nil {
			continue // unreachable under at least one analysis
		}
		n := len(fc)
		if len(rc) < n {
			n = len(rc)
		}
		for i := 0; i < n; i++ {
			if fc[i].Class != rc[i].Class {
				continue
			}
			fv, rv := fc[i].Verdict, rc[i].Verdict
			if (fv == capverify.VerdictSafe && rv == capverify.VerdictFault) ||
				(fv == capverify.VerdictFault && rv == capverify.VerdictSafe) {
				t.Errorf("%s: contradictory verdicts at pc %d %s check: flow=%v register-only=%v",
					name, pc, fc[i].Class, fv, rv)
			}
		}
	}
}

// TestFlowDifferentialShipped extends the monotonicity argument to the
// real corpus: on every shipped program and campaign workload, the flow
// analysis discharges at least as many checks as register-only, with no
// new faults and no new abyss.
func TestFlowDifferentialShipped(t *testing.T) {
	type cfgPair struct {
		name string
		prog *asm.Program
	}
	var corpus []cfgPair
	for name, prog := range shippedPrograms(t) {
		corpus = append(corpus, cfgPair{name, prog})
	}
	for name, src := range faultinject.WorkloadSources() {
		prog, err := asm.AssembleNamed(name+".s", src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		corpus = append(corpus, cfgPair{"wl:" + name, prog})
	}
	for _, c := range corpus {
		full := capverify.Verify(c.prog, capverify.Config{})
		reg := capverify.Verify(c.prog, capverify.Config{RegistersOnly: true})
		if full.HasFault() {
			t.Errorf("%s: flow analysis invented a fault: %v", c.name, full.Faults())
		}
		if full.Abyss && !reg.Abyss {
			t.Errorf("%s: flow analysis fell into the abyss where register-only did not", c.name)
		}
		if full.Totals.Safe < reg.Totals.Safe {
			t.Errorf("%s: flow analysis lost precision: %d safe vs register-only %d",
				c.name, full.Totals.Safe, reg.Totals.Safe)
		}
		if len(full.Leaks) != 0 {
			t.Errorf("%s: unexpected confinement leaks in clean corpus: %v", c.name, full.Leaks)
		}
	}
}

// leakProgram is a crafted confinement violation: a capability escapes
// a protection domain through a store or an enter-gated crossing.
type leakProgram struct {
	name string
	src  string
	line int    // line of the escaping instruction
	kind string // "store" or "crossing"
	reg  int
	dom  string
}

var leakPrograms = []leakProgram{
	// The callee behind an enter-only pointer stores the caller's
	// read/write capability into memory both domains can reach.
	{"enter-store", `	movip r2
	ldi  r4, =sub
	leab r2, r2, r4
	ldi  r5, 6
	restrict r6, r2, r5  ; enter-only pointer to sub
	jmp  r6
sub:
	st   r1, 0, r1       ; line 8: the store that leaks
	halt
`, 8, "store", 1, "sub"},
	// An enter pointer need not land exactly on a label: entering one
	// word past `sub` names the domain by its nearest preceding label.
	{"enter-store-offset", `	movip r2
	ldi  r4, =sub
	leab r2, r2, r4
	leai r2, r2, 8       ; entry point one word past the label
	ldi  r5, 6
	restrict r6, r2, r5
	jmp  r6
sub:
	nop
	st   r1, 0, r1       ; line 10: leaks out of domain "sub+1"
	halt
`, 10, "store", 1, "sub+1"},
	// The crossing itself leaks every capability left in registers.
	{"enter-crossing", `	movip r2
	ldi  r4, =sub
	leab r2, r2, r4
	ldi  r5, 6
	restrict r6, r2, r5
	jmp  r6              ; line 6: r1 crosses into sub
sub:
	halt
`, 6, "crossing", 1, "root"},
}

// TestConfinementLeaks checks the crafted leak programs are flagged at
// the exact escaping site with the right register and domain — and that
// a leak is an audit finding, not a fault.
func TestConfinementLeaks(t *testing.T) {
	for _, lp := range leakPrograms {
		rep, err := capverify.VerifySource(lp.name+".s", lp.src, capverify.Config{})
		if err != nil {
			t.Fatalf("%s: %v", lp.name, err)
		}
		if rep.HasFault() {
			t.Errorf("%s: leak program flagged as faulting: %v", lp.name, rep.Faults())
		}
		found := false
		for _, l := range rep.Leaks {
			if l.Line == lp.line && l.Kind == lp.kind && l.Reg == lp.reg && l.Dom == lp.dom {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no %s leak of r%d from %q at line %d; got %v",
				lp.name, lp.kind, lp.reg, lp.dom, lp.line, rep.Leaks)
		}
	}
}

// TestFlowHalts is the termination backstop: widening plus the store
// key-shrinkage argument must bring every crafted scenario to a
// fixpoint well inside the step budget (Verify would report Abyss or
// hang otherwise; the test timing out is the failure signal).
func TestFlowHalts(t *testing.T) {
	srcs := make(map[string]string)
	for _, fp := range flowPrograms {
		srcs[fp.name] = fp.src
	}
	for _, lp := range leakPrograms {
		srcs[lp.name] = lp.src
	}
	for name, src := range srcs {
		for _, cfg := range []capverify.Config{{}, {Privileged: true}, {DataBytes: 64}, {RegistersOnly: true}} {
			if _, err := capverify.VerifySource(name+".s", src, cfg); err != nil {
				t.Errorf("%s (%+v): %v", name, cfg, err)
			}
		}
	}
}
