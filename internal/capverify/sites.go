package capverify

// This file is the verifier's interface to execution machinery that
// wants to *act* on verdicts rather than report them: the per-site
// check table. The superblock translator (internal/jit) asks, for each
// instruction it compiles, which hardware checks the analysis proved
// safe; provably-safe checks are elided from the compiled code and
// everything else keeps the full dynamic check sequence.
//
// Soundness contract: verdicts are relative to the Config the report
// was computed under (the entry state: r1 a read/write pointer to a
// >= DataBytes scratch segment, every other register uninitialized).
// A caller eliding checks must run the program under exactly that
// contract — handing the program a smaller segment, or extra
// capabilities in other registers, voids the proof.

// SiteCheck is one dynamic check at one instruction site: which
// hardware check class it is and what the analysis concluded.
type SiteCheck struct {
	Class   Class
	Verdict Verdict
}

// SiteChecks returns the checks evaluated at word index pc, in the
// order the hardware performs them. The result is nil when pc is
// unreachable (or out of range) and non-nil-but-empty when pc is
// reachable and performs no dynamic checks (HALT, for example) — the
// distinction carries liveness, so callers can tell "no checks needed"
// from "never analyzed".
func (r *Report) SiteChecks(pc int) []SiteCheck {
	if pc < 0 || pc >= len(r.sites) {
		return nil
	}
	return r.sites[pc]
}

// Sites keys the report's per-site table by virtual address: base is
// the address the program's code segment was loaded at (the Addr of
// the pointer kernel.LoadProgram returned). This is the form the
// block translator uses — it discovers hot code by fetch address, not
// word index.
func (r *Report) Sites(base uint64) *SiteTable {
	return &SiteTable{base: base, rep: r}
}

// SiteTable is a Report's check-site table viewed through the load
// address of the code segment.
type SiteTable struct {
	base uint64
	rep  *Report
}

// Base returns the load address the table was keyed with.
func (t *SiteTable) Base() uint64 { return t.base }

// pc converts a fetch address to a word index; ok is false for
// unaligned or out-of-segment addresses.
func (t *SiteTable) pc(vaddr uint64) (int, bool) {
	if vaddr < t.base || (vaddr-t.base)%8 != 0 {
		return 0, false
	}
	pc := int((vaddr - t.base) / 8)
	if pc >= len(t.rep.sites) {
		return 0, false
	}
	return pc, true
}

// Checks returns the check verdicts for the instruction fetched from
// vaddr (see Report.SiteChecks for the nil/empty distinction).
func (t *SiteTable) Checks(vaddr uint64) []SiteCheck {
	pc, ok := t.pc(vaddr)
	if !ok {
		return nil
	}
	return t.rep.SiteChecks(pc)
}

// Reachable reports whether the analysis found the instruction at
// vaddr reachable at all.
func (t *SiteTable) Reachable(vaddr uint64) bool {
	pc, ok := t.pc(vaddr)
	return ok && t.rep.sites[pc] != nil
}

// AllSafe reports whether every dynamic check at vaddr is provably
// safe — the condition under which a translator may elide the site's
// checks entirely. False for unreachable sites: no proof exists there.
func (t *SiteTable) AllSafe(vaddr uint64) bool {
	pc, ok := t.pc(vaddr)
	if !ok || t.rep.sites[pc] == nil {
		return false
	}
	for _, c := range t.rep.sites[pc] {
		if c.Verdict != VerdictSafe {
			return false
		}
	}
	return true
}
