package capverify

// Affine relations between registers. The interval domain alone cannot
// prove `lea r8, r8, 8` in-bounds inside a counted loop: after widening
// the pointer offset races to the segment end even though the loop
// counter bounds it. A relation off(r_p) = a·int(r_c) + b ties the
// moving pointer to the counter, so the counter's (threshold-widened,
// branch-refined) interval transfers to the pointer offset at each
// memory access. This is a tiny relational domain in the spirit of
// Karr's linear equalities, specialised to one pointer/counter pair per
// relation and a fixed capacity, which keeps the state comparable and
// join cheap.
//
// Soundness: a relation is only ever *inferred* from two distinct exact
// points at a join (two points determine the line, and both operands
// provably lie on it), and only *kept* through a join if the other side
// either carries the identical relation or verifies it with exact
// values. Transfer functions either maintain the relation exactly
// (overflow-checked — an overflowing maintenance step kills the
// relation rather than saturating, since saturation would falsify an
// exact equality) or kill it. Refinement intersects intervals and skips
// on any doubt, so relations can only tighten facts, never invent them.

// rel records off(r_p) = a·int(r_c) + b, valid on every concrete
// execution reaching the program point that carries it.
type rel struct {
	ok   bool
	p, c int8
	a, b int64
}

// relCap is the number of simultaneous relations tracked per state.
// Loops have one induction pointer and one counter; a handful covers
// nested loops with room to spare.
const relCap = 4

type rels [relCap]rel

// kill drops every relation mentioning register r (as pointer or
// counter). Any write to r invalidates both roles.
func (rs *rels) kill(r int8) {
	for i := range rs {
		if rs[i].ok && (rs[i].p == r || rs[i].c == r) {
			rs[i] = rel{}
		}
	}
}

// shiftPtr maintains relations across `lea rp, rp, k`: the pointer
// offset moved by k, so b moves by k. Relations using rp as a counter
// are killed (the register's integer image changed non-trivially).
func (rs *rels) shiftPtr(rp int8, k int64) {
	for i := range rs {
		if !rs[i].ok {
			continue
		}
		if rs[i].c == rp {
			rs[i] = rel{}
			continue
		}
		if rs[i].p == rp {
			nb, ok := addExact(rs[i].b, k)
			if !ok {
				rs[i] = rel{}
				continue
			}
			rs[i].b = nb
		}
	}
}

// shiftCtr maintains relations across `addi rc, rc, k` (k negative for
// SUBI): rc_new = rc_old + k, so off = a·rc_old + b = a·rc_new + (b −
// a·k). Relations using rc as the pointer are killed (rc is an integer
// now).
func (rs *rels) shiftCtr(rc int8, k int64) {
	for i := range rs {
		if !rs[i].ok {
			continue
		}
		if rs[i].p == rc {
			rs[i] = rel{}
			continue
		}
		if rs[i].c == rc {
			ak, ok1 := mulExact(rs[i].a, k)
			nb, ok2 := addExact(rs[i].b, -ak)
			if !ok1 || !ok2 || ak == minInt64 {
				rs[i] = rel{}
				continue
			}
			rs[i].b = nb
		}
	}
}

// derive copies src's relations to dst with the offset displaced by k:
// after `lea dst, src, k` (or a MOV with k = 0, or a RESTRICT, which
// keeps the offset), off(dst) = off(src) + k = a·c + (b + k). dst's own
// relations must already be dead (def() killed them). Relations whose
// counter is dst itself cannot transfer (dst was just overwritten).
func (rs *rels) derive(dst, src int8, k int64) {
	if dst == src {
		return
	}
	for _, r := range *rs {
		if !r.ok || r.p != src || r.c == dst {
			continue
		}
		nb, ok := addExact(r.b, k)
		if !ok {
			continue
		}
		for i := range rs {
			if !rs[i].ok {
				rs[i] = rel{ok: true, p: dst, c: r.c, a: r.a, b: nb}
				break
			}
		}
	}
}

// holdsIn reports whether state s verifies r outright: both registers
// exact and on the line.
func holdsIn(r rel, s *state) bool {
	pv, cv := s.regs[r.p], s.regs[r.c]
	if pv.Kind != KPtr || pv.OffLo != pv.OffHi || pv.OffHi > maxOff {
		return false
	}
	if cv.Kind != KInt || cv.Lo != cv.Hi {
		return false
	}
	ac, ok1 := mulExact(r.a, cv.Lo)
	off, ok2 := addExact(ac, r.b)
	return ok1 && ok2 && off == int64(pv.OffLo)
}

// maxOff bounds offsets representable as int64 with headroom for the
// affine arithmetic; segment offsets fit in 54 bits architecturally.
const maxOff = uint64(1) << 54

const minInt64 = -1 << 63

// inferRel tries to derive off(r_p) = a·int(r_c) + b from two exact
// points (one per joined state). Two distinct counter values determine
// the line; the division must be exact or there is no integer relation.
func inferRel(p, c int8, sa, sb *state) (rel, bool) {
	pa, ca := sa.regs[p], sa.regs[c]
	pb, cb := sb.regs[p], sb.regs[c]
	if pa.Kind != KPtr || pa.OffLo != pa.OffHi || pa.OffHi > maxOff {
		return rel{}, false
	}
	if pb.Kind != KPtr || pb.OffLo != pb.OffHi || pb.OffHi > maxOff {
		return rel{}, false
	}
	if ca.Kind != KInt || ca.Lo != ca.Hi || cb.Kind != KInt || cb.Lo != cb.Hi {
		return rel{}, false
	}
	dc := ca.Lo - cb.Lo
	if dc == 0 {
		return rel{}, false
	}
	doff := int64(pa.OffLo) - int64(pb.OffLo)
	if doff%dc != 0 {
		return rel{}, false
	}
	a := doff / dc
	ac, ok1 := mulExact(a, ca.Lo)
	b, ok2 := addExact(int64(pa.OffLo), -ac)
	if !ok1 || !ok2 || ac == minInt64 {
		return rel{}, false
	}
	return rel{ok: true, p: p, c: c, a: a, b: b}, true
}

// joinRels merges the relation sets of two states meeting at a join
// point. A relation survives iff both sides agree on it — either
// textually or because the other side's exact values verify it. Free
// slots are filled by inference from exact register pairs, which is how
// loop relations are born at the first back-edge join.
func joinRels(sa, sb *state) rels {
	var out rels
	n := 0
	add := func(r rel) {
		for i := 0; i < n; i++ {
			if out[i].p == r.p && out[i].c == r.c {
				return
			}
		}
		if n < relCap {
			out[n] = r
			n++
		}
	}
	for _, r := range sa.rels {
		if !r.ok {
			continue
		}
		if hasRel(&sb.rels, r) || holdsIn(r, sb) {
			add(r)
		}
	}
	for _, r := range sb.rels {
		if !r.ok {
			continue
		}
		if holdsIn(r, sa) {
			add(r)
		}
	}
	if n < relCap {
		// Infer fresh relations from exact pointer/counter pairs.
		for p := int8(0); p < 16 && n < relCap; p++ {
			if sa.regs[p].Kind != KPtr {
				continue
			}
			for c := int8(0); c < 16 && n < relCap; c++ {
				if c == p || sa.regs[c].Kind != KInt {
					continue
				}
				if r, ok := inferRel(p, c, sa, sb); ok {
					add(r)
				}
			}
		}
	}
	return out
}

func hasRel(rs *rels, r rel) bool {
	for _, x := range rs {
		if x == r {
			return true
		}
	}
	return false
}

// relRefine tightens the offset interval of pointer register ra's value
// pv using any relation off(ra) = a·c + b together with the counter's
// current interval. Refinement is pure intersection: it skips on
// overflow, on an empty intersection, or if canonicalisation would
// bottom out — a relation may sharpen a check, never manufacture a
// fault or kill a path.
func relRefine(st *state, ra int8, pv Value) Value {
	if pv.Kind != KPtr {
		return pv
	}
	for _, r := range st.rels {
		if !r.ok || r.p != ra {
			continue
		}
		cv := st.regs[r.c]
		if cv.Kind != KInt {
			continue
		}
		e0, ok1 := affine(r.a, cv.Lo, r.b)
		e1, ok2 := affine(r.a, cv.Hi, r.b)
		if !ok1 || !ok2 {
			continue
		}
		lo, hi := e0, e1
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo < 0 {
			lo = 0
		}
		if hi < 0 || uint64(lo) > pv.OffHi || pv.OffLo > uint64(hi) {
			continue // empty intersection: stale interval, don't kill the path
		}
		nv := pv
		if uint64(lo) > nv.OffLo {
			nv.OffLo = uint64(lo)
		}
		if uint64(hi) < nv.OffHi {
			nv.OffHi = uint64(hi)
		}
		nv = nv.canon()
		if nv.Kind == KPtr {
			pv = nv
		}
	}
	return pv
}

// affine computes a·c + b with overflow checking.
func affine(a, c, b int64) (int64, bool) {
	ac, ok := mulExact(a, c)
	if !ok {
		return 0, false
	}
	return addExact(ac, b)
}

// addExact returns x+y, reporting overflow.
func addExact(x, y int64) (int64, bool) {
	s := x + y
	if (y > 0 && s < x) || (y < 0 && s > x) {
		return 0, false
	}
	return s, true
}

// mulExact returns x·y, reporting overflow.
func mulExact(x, y int64) (int64, bool) {
	if x == 0 || y == 0 {
		return 0, true
	}
	p := x * y
	if p/y != x || (x == minInt64 && y == -1) || (y == minInt64 && x == -1) {
		return 0, false
	}
	return p, true
}
