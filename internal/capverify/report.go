package capverify

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/asm"
	"repro/internal/core"
)

// Class names the dynamic check a verdict is about — one per hardware
// check the guarded-pointer pipeline performs (Sec 2.2).
type Class uint8

const (
	// ClassTag: the operand must carry the pointer tag (Decode).
	ClassTag Class = iota
	// ClassPerm: the permission field must allow the operation —
	// includes immutability (LEA on enter/key), RESTRICT subset and
	// SUBSEG shrink discipline.
	ClassPerm
	// ClassBounds: an address-forming add must stay in the segment and
	// the access span must fit (the Fig. 2 masked comparator).
	ClassBounds
	// ClassAlign: word accesses and jump targets must be 8-aligned.
	ClassAlign
	// ClassPriv: the instruction requires an execute-privileged IP.
	ClassPriv
	// ClassCtrl: sequential or branch instruction-pointer movement must
	// stay inside the code segment, and the fetched word must decode.
	ClassCtrl

	// NumClasses is the count of check classes.
	NumClasses = 6
)

var classNames = [NumClasses]string{"tag", "perm", "bounds", "align", "priv", "ctrl"}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "class?"
}

// Verdict is the verifier's conclusion about one check at one site.
type Verdict uint8

const (
	// VerdictSafe: the check passes on every execution reaching the
	// site — a compiler could elide the hardware check.
	VerdictSafe Verdict = iota
	// VerdictUnknown: the analysis cannot decide; the dynamic check is
	// load-bearing.
	VerdictUnknown
	// VerdictFault: the check fails on every execution that reaches the
	// site — running the program faults here (if the site is reached).
	VerdictFault
)

func (v Verdict) String() string {
	switch v {
	case VerdictSafe:
		return "safe"
	case VerdictUnknown:
		return "unknown"
	case VerdictFault:
		return "fault"
	}
	return "verdict?"
}

// Diag is one check site's verdict, with enough provenance to act on:
// the instruction's source position and, for register-borne faults, the
// position that defined the offending register.
type Diag struct {
	PC      int            `json:"pc"`   // word index in the image
	File    string         `json:"file"` // source position of the instruction
	Line    int            `json:"line"`
	Inst    string         `json:"inst"` // disassembly
	Class   string         `json:"class"`
	Verdict string         `json:"verdict"`
	Code    core.FaultCode `json:"-"` // predicted fault code (VerdictFault)
	Fault   string         `json:"fault,omitempty"`
	Msg     string         `json:"msg"`
	Reg     int            `json:"reg"`                // offending register, -1 if none
	RegFile string         `json:"reg_file,omitempty"` // where that register was defined
	RegLine int            `json:"reg_line,omitempty"`

	verdict Verdict
	class   Class
}

// Pos renders the diagnostic's source position.
func (d Diag) Pos() string {
	o := asm.Origin{File: d.File, Line: d.Line}
	return o.String()
}

func (d Diag) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s %s: %s", d.Pos(), d.Verdict, d.Class, d.Msg)
	if d.Verdict == VerdictFault.String() && d.Fault != "" {
		fmt.Fprintf(&b, " [%s fault]", d.Fault)
	}
	if d.Reg >= 0 && d.RegLine > 0 {
		fmt.Fprintf(&b, " (r%d defined at %s)", d.Reg,
			asm.Origin{File: d.RegFile, Line: d.RegLine})
	}
	return b.String()
}

// Counts tallies check sites by verdict.
type Counts struct {
	Safe    int `json:"safe"`
	Unknown int `json:"unknown"`
	Fault   int `json:"fault"`
}

// Total is the number of check sites counted.
func (c Counts) Total() int { return c.Safe + c.Unknown + c.Fault }

// Report is the result of verifying one program.
type Report struct {
	// Diags holds every non-safe check site (faults and unknowns), in
	// program order. Safe sites are only counted, not materialized.
	Diags []Diag

	// PerClass tallies check sites by class; Totals sums them.
	PerClass [NumClasses]Counts
	Totals   Counts

	// ReachableWords counts instruction words the analysis found
	// reachable (of SegWords).
	ReachableWords int

	// Abyss reports that some indirect jump's target could not be
	// bounded: every instruction was assumed reachable with unknown
	// state, so unknown verdicts are inflated (but faults remain real).
	Abyss bool

	// Leaks holds the confinement pass's capability-escape diagnostics
	// (confine.go), in program order. Empty for single-domain programs.
	Leaks []Leak

	// sites holds, per word index, the checks evaluated there (nil for
	// unreachable words, empty-non-nil for reachable check-free ones).
	// Exposed through SiteChecks and Sites (sites.go).
	sites [][]SiteCheck
}

// Faults returns the provable-fault diagnostics.
func (r *Report) Faults() []Diag {
	var out []Diag
	for _, d := range r.Diags {
		if d.verdict == VerdictFault {
			out = append(out, d)
		}
	}
	return out
}

// HasFault reports whether any site is a provable fault.
func (r *Report) HasFault() bool {
	for _, d := range r.Diags {
		if d.verdict == VerdictFault {
			return true
		}
	}
	return false
}

// FirstFaultCode returns the predicted fault code of the first provable
// fault in program order, or FaultNone.
func (r *Report) FirstFaultCode() core.FaultCode {
	for _, d := range r.Diags {
		if d.verdict == VerdictFault {
			return d.Code
		}
	}
	return core.FaultNone
}

// DischargeRatio returns the fraction of non-fault check sites proven
// safe: what a trusting compiler could elide.
func (r *Report) DischargeRatio() float64 {
	n := r.Totals.Safe + r.Totals.Unknown
	if n == 0 {
		return 1
	}
	return float64(r.Totals.Safe) / float64(n)
}

// add records one evaluated check site.
func (r *Report) add(d Diag) {
	r.PerClass[d.class].bump(d.verdict)
	r.Totals.bump(d.verdict)
	if d.verdict != VerdictSafe {
		r.Diags = append(r.Diags, d)
	}
}

func (c *Counts) bump(v Verdict) {
	switch v {
	case VerdictSafe:
		c.Safe++
	case VerdictUnknown:
		c.Unknown++
	case VerdictFault:
		c.Fault++
	}
}

// sortLeaks puts leaks in (pc, reg, kind) order for stable output.
func (r *Report) sortLeaks() {
	sort.SliceStable(r.Leaks, func(i, j int) bool {
		if r.Leaks[i].PC != r.Leaks[j].PC {
			return r.Leaks[i].PC < r.Leaks[j].PC
		}
		if r.Leaks[i].Reg != r.Leaks[j].Reg {
			return r.Leaks[i].Reg < r.Leaks[j].Reg
		}
		return r.Leaks[i].Kind < r.Leaks[j].Kind
	})
}

// sortDiags puts diagnostics in (pc, class) order for stable output.
func (r *Report) sortDiags() {
	sort.SliceStable(r.Diags, func(i, j int) bool {
		if r.Diags[i].PC != r.Diags[j].PC {
			return r.Diags[i].PC < r.Diags[j].PC
		}
		return r.Diags[i].class < r.Diags[j].class
	})
}

// Summary renders the per-class tallies as one line per class.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %8s %8s %8s\n", "check", "safe", "unknown", "fault")
	for c := Class(0); c < NumClasses; c++ {
		n := r.PerClass[c]
		if n.Total() == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-8s %8d %8d %8d\n", c, n.Safe, n.Unknown, n.Fault)
	}
	fmt.Fprintf(&b, "%-8s %8d %8d %8d  (%.0f%% discharged)\n", "total",
		r.Totals.Safe, r.Totals.Unknown, r.Totals.Fault, 100*r.DischargeRatio())
	return b.String()
}
