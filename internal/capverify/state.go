package capverify

import "repro/internal/isa"

// Privilege mask bits: which IP permissions can reach a program point.
// Privileged mode is a property of the instruction pointer (Sec 2.1),
// so it is per-pc state, not a global.
const (
	privUser uint8 = 1 << iota // may execute under PermExecuteUser
	privPriv                   // may execute under PermExecutePriv
)

// predKind classifies the relational fact a comparison result carries.
type predKind uint8

const (
	pNone  predKind = iota
	pLtK            // reg holds (src < k): 1 or 0
	pEqK            // reg holds (src == k)
	pIsPtr          // reg holds isptr(src)
)

// pred records what a 0/1 comparison result says about its source
// register, so BEQZ/BNEZ on the result can refine the source on each
// edge ("slti r3, r2, 256; beqz r3, out" bounds r2 on the loop edge).
// The fact is only valid while the source register still holds the
// value produced at srcDef; defs tracking invalidates it otherwise.
type pred struct {
	kind   predKind
	src    int8
	srcDef int32 // defs[src] when the predicate was computed
	k      int64
}

// Def-site sentinels for the defs provenance array.
const (
	defEntry  int32 = -1 // register holds its thread-start value
	defMerged int32 = -2 // joined from multiple definitions
)

// state is the abstract machine state at one program point: one lattice
// value per register, plus definition provenance, predicate facts,
// affine register relations, the abstract store, and the privilege
// mask. The zero value is "unreachable".
//
// state is copied by value throughout the analysis; mem's backing array
// is shared across copies, so every mstore operation is functional
// (copy-on-write) — see store.go.
type state struct {
	live  bool
	priv  uint8
	regs  [isa.NumRegs]Value
	defs  [isa.NumRegs]int32
	preds [isa.NumRegs]pred
	rels  rels
	mem   mstore
}

// stateEq reports whether two states are observably identical to the
// fixpoint engine. The mem slice makes state non-comparable with ==, so
// propagation uses this instead.
func stateEq(a, b state) bool {
	return a.live == b.live && a.priv == b.priv &&
		a.regs == b.regs && a.defs == b.defs &&
		a.preds == b.preds && a.rels == b.rels &&
		memEq(a.mem, b.mem)
}

// entryState is the thread-start state cmd/mmsim establishes: every
// register the untagged 0 it was never written with, except r1 holding
// a read/write pointer to the base of the scratch data segment.
func (v *verifier) entryState() state {
	var st state
	st.live = true
	if v.cfg.Privileged {
		st.priv = privPriv
	} else {
		st.priv = privUser
	}
	for i := range st.regs {
		st.regs[i] = Uninit()
		st.defs[i] = defEntry
	}
	st.regs[1] = PtrExact(dataPerm, v.img.DataLog, 0, RegData)
	return st
}

// havocState is the all-⊤ state used when an indirect jump cannot be
// bounded: any register content, any privilege.
func havocState() state {
	var st state
	st.live = true
	st.priv = privUser | privPriv
	for i := range st.regs {
		st.regs[i] = Top()
		st.defs[i] = defMerged
	}
	return st
}

// havocRegs clobbers every register of st in place (the effect of a
// TRAP: the kernel may rewrite the whole register file — and, through
// its own pointers, any memory).
func havocRegs(st *state) {
	for i := range st.regs {
		st.regs[i] = Top()
		st.defs[i] = defMerged
		st.preds[i] = pred{}
	}
	st.rels = rels{}
	st.mem = mstore{}
}

// joinState merges b into a (the least upper bound); widen switches the
// register and store joins to the (threshold) widening operator.
func (v *verifier) joinState(a, b state, widen bool) state {
	if !a.live {
		return b
	}
	if !b.live {
		return a
	}
	var out state
	out.live = true
	out.priv = a.priv | b.priv
	for i := range out.regs {
		if widen {
			out.regs[i] = widenTo(a.regs[i], b.regs[i], v.ths)
		} else {
			out.regs[i] = Join(a.regs[i], b.regs[i])
		}
		if a.defs[i] == b.defs[i] {
			out.defs[i] = a.defs[i]
		} else {
			out.defs[i] = defMerged
		}
	}
	for i := range out.preds {
		pa, pb := a.preds[i], b.preds[i]
		switch {
		case pa == pb:
			out.preds[i] = pa
		case pa.kind != pNone && pa.kind == pb.kind && pa.src == pb.src && pa.k == pb.k &&
			a.defs[pa.src] == pa.srcDef && b.defs[pb.src] == pb.srcDef:
			// Both sides carry the same live fact about the same source
			// register; only the def-site anchor differs (typical at a
			// loop head, where the source's def joins to defMerged).
			// Re-anchor to the joined def so the fact survives the join.
			out.preds[i] = pred{kind: pa.kind, src: pa.src, srcDef: out.defs[pa.src], k: pa.k}
		}
	}
	if !v.cfg.RegistersOnly {
		out.rels = joinRels(&a, &b)
		out.mem = joinMem(a.mem, b.mem, widen, v.ths)
	}
	return out
}

// def records a register write: value, definition site, and optionally
// the predicate fact the value carries. Any write invalidates affine
// relations mentioning the register.
func (st *state) def(rd, pc int, v Value, p pred) {
	st.regs[rd] = v
	st.defs[rd] = int32(pc)
	st.preds[rd] = p
	st.rels.kill(int8(rd))
}
