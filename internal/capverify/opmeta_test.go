package capverify

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

// TestEveryOpcodeClassified is the exhaustiveness gate: every
// architecturally defined opcode must have a mnemonic, an execution
// unit, and a transfer function in the verifier. Adding an instruction
// to the ISA without teaching the static verifier about it fails here.
func TestEveryOpcodeClassified(t *testing.T) {
	if isa.NumOps == 0 {
		t.Fatal("no opcodes defined")
	}
	for op := isa.Op(0); int(op) < isa.NumOps; op++ {
		if !op.Valid() {
			t.Errorf("op %d below NumOps but not Valid()", op)
		}
		name := op.String()
		if name == "" || strings.HasPrefix(name, "op(") {
			t.Errorf("op %d has no mnemonic (String() = %q)", op, name)
		}
		if u := op.Unit(); u != isa.UnitInt && u != isa.UnitMem && u != isa.UnitFP {
			t.Errorf("op %s has no execution unit (Unit() = %v)", name, u)
		}
		if !Handles(op) {
			t.Errorf("op %s is not classified in the verifier's transfer-function table", name)
		}
	}
	// And the converse: nothing beyond NumOps pretends to be handled.
	if Handles(isa.Op(isa.NumOps)) {
		t.Errorf("op %d is past NumOps but Handles() accepts it", isa.NumOps)
	}
}
