// Package jit is the check-eliding superblock translator: the compiled
// execution tier above the internal/machine interpreter.
//
// The paper's thesis is that capability checks can be made (near) free
// in hardware; the software reproduction pays for every tag, permission,
// bounds, and alignment check on every dispatched instruction. This
// package cashes in internal/capverify's static proofs instead: hot
// straight-line regions (discovered by per-branch-target execution
// counters) are compiled into flat step slices in which every check the
// verifier proved safe is elided, and every site it could not prove
// keeps the interpreter's full dynamic check sequence by dispatching
// through the ordinary path.
//
// The translator produces *data*, not code: a Block is a slice of Steps
// each tagged with a specialization kind; the executor that interprets
// them lives in internal/machine (blockexec.go) because each step needs
// the machine's cache, address space, fault and accounting machinery.
// Correctness bar: architectural state, vm/cache statistics, and cycle
// accounting are bit-identical to the interpreter on every program.
//
// Soundness: a verdict is a proof about the registered program's code
// under capverify's entry contract (see Engine.Register). The proofs are
// void the moment registered code is modified, so a store into any
// registered region invalidates every compiled block and permanently
// disables the translator (Space.OnWrite fan-out); unmapping a region
// drops it. Self-modifying programs simply run interpreted.
package jit

import (
	"time"

	"repro/internal/asm"
	"repro/internal/capverify"
	"repro/internal/isa"
	"repro/internal/telemetry"
)

// Kind selects the specialized executor for one compiled step. Every
// kind other than KDispatch has all of its site checks statically
// discharged; KDispatch retains the full dynamic sequence by running
// the interpreter's dispatch for that one instruction.
type Kind uint8

const (
	// KDispatch runs the instruction through the interpreter's dispatch
	// switch: all dynamic checks retained.
	KDispatch Kind = iota
	// KALU is an integer ALU / move / load-immediate instruction with a
	// provably-safe sequential IP advance.
	KALU
	// KLoad / KStore are word memory accesses with every check (tag,
	// perm, bounds, span, align, ctrl) proven safe.
	KLoad
	KStore
	// KLoadB / KStoreB are the byte-access forms.
	KLoadB
	KStoreB
	// KLea covers LEA/LEAI/LEAB/LEABI with immutability and bounds
	// proven; the pointer arithmetic runs unchecked.
	KLea
	// KBr is an unconditional branch whose target provably stays in the
	// code segment. It always ends its block.
	KBr
	// KBeqz / KBnez are conditional branches with a safe target; the
	// fall-through continues inside the block, a taken branch exits it
	// (or chains back to the block head).
	KBeqz
	KBnez
	// KHalt stops the thread. It always ends its block.
	KHalt
)

// Step is one compiled instruction: the executor switches on Kind and
// reads operands from Inst. Addr is the instruction's fetch address —
// the executor re-translates it each step so TLB behavior matches the
// interpreter exactly.
type Step struct {
	Kind Kind
	Addr uint64
	Inst isa.Inst
}

// Block is one compiled superblock: straight-line code entered only at
// Head. Valid is cleared (never reset) when an invalidation covers the
// block; executors must re-check it after every potentially-writing
// step. Elided and Retained count the capverify check sites the
// compiled form skips and keeps, respectively.
type Block struct {
	Head  uint64
	Steps []Step
	Valid bool

	Elided   int
	Retained int
}

// end returns the first address past the block's last instruction.
func (b *Block) end() uint64 { return b.Head + uint64(len(b.Steps))*8 }

// region is one registered program: its analyzed image and report, at
// its load address.
type region struct {
	base   uint64
	size   uint64 // code segment bytes (2^CodeLog)
	img    *capverify.Image
	sites  *capverify.SiteTable
	dirty  []bool // word was overwritten after registration
	blocks []*Block
}

// Config fixes the translator's thresholds.
type Config struct {
	// Threshold is how many times an address must be a taken-branch
	// target before compilation triggers. 0 means the default (64).
	Threshold int
	// MaxBlock caps a block's length in instructions (default 64).
	MaxBlock int
	// ChainBudget caps how many steps a whole-block executor may run
	// per machine-loop entry, bounding loop-chaining (default 256).
	ChainBudget int
}

// DefaultConfig returns the standard thresholds.
func DefaultConfig() Config {
	return Config{Threshold: 64, MaxBlock: 64, ChainBudget: 256}
}

func (c Config) withDefaults() Config {
	if c.Threshold <= 0 {
		c.Threshold = 64
	}
	if c.MaxBlock <= 0 {
		c.MaxBlock = 64
	}
	if c.ChainBudget <= 0 {
		c.ChainBudget = 256
	}
	return c
}

// Counters are the translator's telemetry: exported fields so the
// machine's executor can bump Entries without a call.
type Counters struct {
	Compiled      uint64 // blocks compiled
	Invalidated   uint64 // blocks invalidated by code writes or unmaps
	Entries       uint64 // block entries from the dispatch fast path
	ElidedSites   uint64 // check sites elided across compiled blocks
	RetainedSites uint64 // check sites retained across compiled blocks
}

// Direct-mapped table geometry, mirroring the machine's decoded-
// instruction cache: indexed by word address, keyed by vaddr+1 so the
// zero value is empty.
const (
	headEntries = 4096
	headMask    = headEntries - 1
	heatEntries = 4096
	heatMask    = heatEntries - 1
)

type headEntry struct {
	key uint64
	blk *Block
}

type heatEntry struct {
	key   uint64
	count uint32
}

// Engine is one machine's translator instance. It is confined to the
// machine's goroutine like the rest of the simulator core.
type Engine struct {
	cfg     Config
	regions []*region
	heads   [headEntries]headEntry
	heat    [heatEntries]heatEntry
	dead    bool

	Counters Counters
	// CompileLatency observes wall-clock nanoseconds per compilation.
	// Telemetry only: it never feeds back into simulated time.
	CompileLatency *telemetry.Histogram
}

// New returns an engine with the given thresholds (zero fields take
// defaults).
func New(cfg Config) *Engine {
	return &Engine{cfg: cfg.withDefaults(), CompileLatency: telemetry.NewHistogram()}
}

// ChainBudget returns the per-entry step budget for whole-block
// execution.
func (e *Engine) ChainBudget() int { return e.cfg.ChainBudget }

// Dead reports whether a write into registered code voided all proofs
// and permanently disabled the translator.
func (e *Engine) Dead() bool { return e.dead }

// Register makes a loaded program's code eligible for compilation.
// base is the address its code segment was loaded at (the pointer
// kernel.LoadProgram returned); cfg must describe the environment the
// program actually runs under.
//
// Soundness contract: capverify's verdicts assume the program starts at
// its first word with r1 holding a read/write pointer to a segment of
// at least cfg.DataBytes bytes and every other register empty. Callers
// must guarantee that contract (mmsim's loader does); registering a
// program that is entered differently, or with extra capabilities in
// registers, would elide checks the verifier never proved.
func (e *Engine) Register(prog *asm.Program, base uint64, cfg capverify.Config) {
	if e.dead {
		return
	}
	img := capverify.NewImage(prog, cfg)
	rep := capverify.Verify(prog, cfg)
	size := uint64(img.SegWords()) * 8
	// A reload over a stale registration replaces it.
	e.InvalidateUnmap(base, size)
	e.regions = append(e.regions, &region{
		base:  base,
		size:  size,
		img:   img,
		sites: rep.Sites(base),
		dirty: make([]bool, img.SegWords()),
	})
}

// Regions returns how many programs are currently registered.
func (e *Engine) Regions() int { return len(e.regions) }

// BlockAt returns the valid compiled block headed at addr, or nil.
func (e *Engine) BlockAt(addr uint64) *Block {
	h := &e.heads[(addr>>3)&headMask]
	if h.key != addr+1 {
		return nil
	}
	if b := h.blk; b.Valid {
		return b
	}
	h.key, h.blk = 0, nil
	return nil
}

// NoteBranch records a taken-branch target; crossing the heat threshold
// triggers compilation at that head.
func (e *Engine) NoteBranch(addr uint64) {
	if e.dead || len(e.regions) == 0 {
		return
	}
	h := &e.heat[(addr>>3)&heatMask]
	if h.key != addr+1 {
		h.key, h.count = addr+1, 1
		return
	}
	h.count++
	if h.count == uint32(e.cfg.Threshold) {
		e.compileAt(addr)
	}
}

// InvalidateWrite handles a store at vaddr (Space.OnWrite fan-out). A
// store outside every registered region is ordinary data traffic; a
// store *into* one is self-modifying code, which voids every proof the
// verifier ever produced for this engine — the written instruction can
// compute register states the fixpoint never saw, and those states flow
// into every block. All blocks die and the translator disables itself.
func (e *Engine) InvalidateWrite(vaddr uint64) {
	if e.dead || len(e.regions) == 0 {
		return
	}
	w := vaddr &^ 7
	for _, r := range e.regions {
		if w >= r.base && w < r.base+r.size {
			r.dirty[(w-r.base)>>3] = true
			e.flushAll()
			e.dead = true
			return
		}
	}
}

// InvalidateUnmap handles an address-range unmap (Space.OnUnmap
// fan-out): regions overlapping the range are dropped and their blocks
// invalidated. Unlike a code write this is not self-modification — the
// remaining regions' proofs still hold.
func (e *Engine) InvalidateUnmap(vaddr, size uint64) {
	if e.dead {
		return
	}
	keep := e.regions[:0]
	for _, r := range e.regions {
		if r.base+r.size <= vaddr || vaddr+size <= r.base {
			keep = append(keep, r)
			continue
		}
		for _, b := range r.blocks {
			if b.Valid {
				b.Valid = false
				e.Counters.Invalidated++
			}
		}
	}
	e.regions = keep
}

// flushAll invalidates every block and clears the lookup tables.
func (e *Engine) flushAll() {
	for _, r := range e.regions {
		for _, b := range r.blocks {
			if b.Valid {
				b.Valid = false
				e.Counters.Invalidated++
			}
		}
	}
	e.heads = [headEntries]headEntry{}
	e.heat = [heatEntries]heatEntry{}
	e.regions = nil
}

// regionFor finds the registered region containing addr.
func (e *Engine) regionFor(addr uint64) *region {
	for _, r := range e.regions {
		if addr >= r.base && addr < r.base+r.size {
			return r
		}
	}
	return nil
}

// compileAt builds and installs a block headed at addr, if possible.
func (e *Engine) compileAt(addr uint64) {
	if e.BlockAt(addr) != nil {
		return
	}
	r := e.regionFor(addr)
	if r == nil || (addr-r.base)%8 != 0 {
		return
	}
	start := time.Now()
	blk := e.build(r, addr)
	if blk == nil {
		return
	}
	e.CompileLatency.Observe(uint64(time.Since(start)))
	e.Counters.Compiled++
	e.Counters.ElidedSites += uint64(blk.Elided)
	e.Counters.RetainedSites += uint64(blk.Retained)
	r.blocks = append(r.blocks, blk)
	h := &e.heads[(addr>>3)&headMask]
	h.key, h.blk = addr+1, blk
}

// build compiles the straight-line region starting at head. The block
// ends at the first JMP/JMPL/TRAP (excluded — their control transfer
// and kernel interaction stay interpreted), at BR or HALT (included),
// at any word the verifier found unreachable or undecodable, or at
// MaxBlock steps. Conditional branches stay inside the block: their
// fall-through continues, a taken branch exits.
func (e *Engine) build(r *region, head uint64) *Block {
	pc := int((head - r.base) >> 3)
	n := r.img.SegWords()
	blk := &Block{Head: head, Valid: true}
	for len(blk.Steps) < e.cfg.MaxBlock && pc < n {
		if r.dirty[pc] || !r.img.Decodes[pc] {
			break
		}
		checks := r.sites.Checks(r.base + uint64(pc)*8)
		if checks == nil {
			break // unreachable per the verifier: no proof exists here
		}
		kind, ends, ok := classify(r.img.Insts[pc], allSafe(checks))
		if !ok {
			break
		}
		blk.Steps = append(blk.Steps, Step{
			Kind: kind,
			Addr: r.base + uint64(pc)*8,
			Inst: r.img.Insts[pc],
		})
		if kind == KDispatch {
			blk.Retained += len(checks)
		} else {
			blk.Elided += len(checks)
		}
		if ends {
			break
		}
		pc++
	}
	if len(blk.Steps) < 2 {
		return nil
	}
	return blk
}

// allSafe reports whether every check at a site is provably safe.
func allSafe(checks []capverify.SiteCheck) bool {
	for _, c := range checks {
		if c.Verdict != capverify.VerdictSafe {
			return false
		}
	}
	return true
}

// classify maps one instruction to its step kind: a specialized
// (check-elided) kind when every site check is safe and the executor
// has a fast form for it, KDispatch otherwise. ends marks block
// enders; ok false excludes the instruction from blocks entirely.
func classify(inst isa.Inst, safe bool) (kind Kind, ends, ok bool) {
	switch inst.Op {
	case isa.JMP, isa.JMPL, isa.TRAP:
		return 0, false, false
	case isa.HALT:
		return KHalt, true, true
	case isa.BR:
		if safe {
			return KBr, true, true
		}
		return KDispatch, true, true
	case isa.BEQZ:
		if safe {
			return KBeqz, false, true
		}
	case isa.BNEZ:
		if safe {
			return KBnez, false, true
		}
	case isa.NOP, isa.ADD, isa.ADDI, isa.SUB, isa.SUBI, isa.MUL,
		isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHLI, isa.SHR, isa.SHRI,
		isa.SLT, isa.SLTI, isa.SEQ, isa.SEQI, isa.MOV, isa.LDI:
		if safe {
			return KALU, false, true
		}
	case isa.LD:
		if safe {
			return KLoad, false, true
		}
	case isa.ST:
		if safe {
			return KStore, false, true
		}
	case isa.LDB:
		if safe {
			return KLoadB, false, true
		}
	case isa.STB:
		if safe {
			return KStoreB, false, true
		}
	case isa.LEA, isa.LEAI, isa.LEAB, isa.LEABI:
		if safe {
			return KLea, false, true
		}
	}
	// Everything else — unsafe sites, pointer-field ops, floating
	// point, MOVIP — keeps the interpreter's checks for this one
	// instruction.
	return KDispatch, false, true
}
