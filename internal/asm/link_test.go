package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestAssembleModuleExports(t *testing.T) {
	m, err := AssembleModule("lib", `
		.export fn
		nop
	fn:
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if m.Exports["fn"] != 1 {
		t.Errorf("export fn = %d", m.Exports["fn"])
	}
	if _, err := AssembleModule("lib", ".export nothere\nnop"); err == nil {
		t.Error("export of undefined label accepted")
	}
	if _, err := AssembleModule("lib", ".import 9bad\nnop"); err == nil {
		t.Error("bad import name accepted")
	}
}

func TestLinkTwoModules(t *testing.T) {
	// main calls lib.fn by loading its linked byte offset, building a
	// pointer with LEAB, and jumping.
	main, err := AssembleModule("main", `
		.import fn
		ldi  r2, =fn       ; linked byte offset of fn
		movip r3
		leab r3, r3, r2    ; pointer to fn
		jmpl r14, r3
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := AssembleModule("lib", `
		.export fn
	fn:
		ldi r5, 777
		jmp r14
	`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Link(main, lib)
	if err != nil {
		t.Fatal(err)
	}
	// main is 5 words; fn is the 6th word (index 5).
	if prog.Labels["fn"] != 5 || prog.Labels["lib.fn"] != 5 {
		t.Errorf("labels = %v", prog.Labels)
	}
	// The ldi must have been patched to fn's byte offset.
	inst, _ := isa.Decode(prog.Words[0])
	if inst.Op != isa.LDI || inst.Imm != 40 {
		t.Errorf("patched ldi = %v, want imm 40", inst)
	}
	if !strings.Contains(Disassemble(prog), "lib.fn:") {
		t.Error("module-qualified labels missing from listing")
	}
}

func TestLinkErrors(t *testing.T) {
	if _, err := Link(); err == nil {
		t.Error("empty link accepted")
	}
	a, _ := AssembleModule("a", ".export x\nx: nop")
	b, _ := AssembleModule("b", ".export x\nx: nop")
	if _, err := Link(a, b); err == nil {
		t.Error("duplicate export accepted")
	}
	c, _ := AssembleModule("c", ".import missing\nldi r1, =missing\nhalt")
	if _, err := Link(c); err == nil {
		t.Error("undefined import accepted")
	}
}

func TestLocalLabelsStillWork(t *testing.T) {
	m, err := AssembleModule("m", `
		.import ext
		br skip
		.word 1
	skip:
		ldi r1, =ext
		ld  r2, r3, =data  ; local =label unaffected by import machinery
		halt
	data:
		.word 42
	`)
	if err != nil {
		t.Fatal(err)
	}
	lib, _ := AssembleModule("lib", ".export ext\next: halt")
	prog, err := Link(m, lib)
	if err != nil {
		t.Fatal(err)
	}
	// data is local at word 5 (br, .word, ldi, ld, halt, data) → byte 40.
	ld, _ := isa.Decode(prog.Words[3])
	if ld.Op != isa.LD || ld.Imm != 40 {
		t.Errorf("local =data = %v", ld)
	}
	// ext is at word 6 (m is 6 words) → byte 48.
	ldi, _ := isa.Decode(prog.Words[2])
	if ldi.Imm != 48 {
		t.Errorf("=ext patched to %d, want 48", ldi.Imm)
	}
}

// --- diagnostics plumbing ---------------------------------------------

func TestAssembleNamedErrorPosition(t *testing.T) {
	_, err := AssembleNamed("prog.s", "nop\nbogus r1\nhalt")
	if err == nil {
		t.Fatal("bad mnemonic accepted")
	}
	if !strings.Contains(err.Error(), "prog.s:2:") {
		t.Errorf("error %q does not carry file:line prog.s:2", err)
	}
}

func TestLinkErrorPositions(t *testing.T) {
	// Undefined export: the error names the module and the .export line.
	if _, err := AssembleModule("mod", "nop\n.export missing\nhalt"); err == nil ||
		!strings.Contains(err.Error(), "mod:2:") {
		t.Errorf("undefined export error %v, want mod:2 position", err)
	}

	// Duplicate export: both module names appear.
	a, _ := AssembleModule("first", ".export x\nx: nop")
	b, _ := AssembleModule("second", ".export x\nx: nop")
	_, err := Link(a, b)
	if err == nil || !strings.Contains(err.Error(), "first") || !strings.Contains(err.Error(), "second") {
		t.Errorf("duplicate export error %v, want both module names", err)
	}

	// Undefined import: the error points at the use site.
	c, _ := AssembleModule("user", ".import missing\nnop\nldi r2, =missing\nhalt")
	_, err = Link(c)
	if err == nil || !strings.Contains(err.Error(), "user:3") {
		t.Errorf("undefined import error %v, want user:3 position", err)
	}
}

func TestOriginsThroughAssembleAndLink(t *testing.T) {
	prog, err := AssembleNamed("one.s", "\nnop\n\nldi r2, 7\nhalt\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Origins) != len(prog.Words) {
		t.Fatalf("origins %d != words %d", len(prog.Origins), len(prog.Words))
	}
	wantLines := []int{2, 4, 5}
	for i, want := range wantLines {
		if o := prog.Origin(i); o.File != "one.s" || o.Line != want {
			t.Errorf("word %d origin %s, want one.s:%d", i, o, want)
		}
	}
	// Out-of-range lookups are harmless zero origins.
	if o := prog.Origin(99); o.File != "" || o.Line != 0 {
		t.Errorf("out-of-range origin %v, want zero", o)
	}

	m1, _ := AssembleModule("main", ".import fn\nldi r14, =fn\nhalt")
	m2, _ := AssembleModule("lib", ".export fn\nfn: nop\nhalt")
	linked, err := Link(m1, m2)
	if err != nil {
		t.Fatal(err)
	}
	if len(linked.Origins) != len(linked.Words) {
		t.Fatalf("linked origins %d != words %d", len(linked.Origins), len(linked.Words))
	}
	// Word 2 is lib's first word: origin must cross the module boundary.
	if o := linked.Origin(2); o.File != "lib" || o.Line != 2 {
		t.Errorf("linked word 2 origin %s, want lib:2", o)
	}
}
