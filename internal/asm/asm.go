// Package asm is a small two-pass assembler for the simulated MAP
// instruction set. It exists so examples, tests and benchmarks can
// express the paper's code sequences (protected subsystem entry, cast
// sequences, array loops) as real programs executed by the machine
// rather than as hand-constructed word arrays.
//
// Syntax, one statement per line:
//
//	; comment   or   # comment
//	label:                    ; define a label at the next word
//	    ldi   r1, 100         ; mnemonics from package isa
//	    ld    r2, r1, 8       ; ld rd, raddr, imm
//	    st    r1, 8, r2       ; st raddr, imm, rval
//	    beqz  r1, done        ; branch targets are labels (relative)
//	    .word 42              ; literal data word
//	    .space 8              ; 8 zero words
//	    .align 4              ; pad with zeros to a 4-word boundary
//	done:
//	    halt
//
// Immediate operands are decimal or 0x-hex integers, or =label, which
// evaluates to the label's byte offset from the start of the program
// (for leabi-based addressing of embedded data).
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
	"repro/internal/word"
)

// Program is an assembled image: a flat sequence of words plus the
// label table (word indices) and, when assembled through this package,
// a per-word origin table mapping each word back to its source line.
type Program struct {
	Words  []word.Word
	Labels map[string]int

	// Origins has one entry per word in Words recording the source
	// file (empty for anonymous assembly) and 1-based line the word
	// was emitted from. Hand-built Programs may leave it nil; use
	// Origin to read it safely.
	Origins []Origin
}

// Origin locates one emitted word in its source text.
type Origin struct {
	File string
	Line int
}

// String renders the origin as file:line (or line N when anonymous).
func (o Origin) String() string {
	if o.File == "" {
		if o.Line == 0 {
			return "?"
		}
		return fmt.Sprintf("line %d", o.Line)
	}
	return fmt.Sprintf("%s:%d", o.File, o.Line)
}

// Origin returns the source origin of word index i, or a zero Origin
// when the program carries no origin table (hand-built images).
func (p *Program) Origin(i int) Origin {
	if i < 0 || i >= len(p.Origins) {
		return Origin{}
	}
	return p.Origins[i]
}

// ByteSize returns the program size in bytes.
func (p *Program) ByteSize() uint64 {
	return uint64(len(p.Words)) * word.BytesPerWord
}

// LabelByte returns the byte offset of a label within the program.
func (p *Program) LabelByte(name string) (uint64, error) {
	i, ok := p.Labels[name]
	if !ok {
		return 0, fmt.Errorf("asm: undefined label %q", name)
	}
	return uint64(i) * word.BytesPerWord, nil
}

// Symbolize resolves word index i against a label table to the nearest
// preceding label, rendered "name" (exactly on the label) or "name+k"
// (k words past it). It returns "" when no label covers i. Ties on the
// same address pick the lexicographically smallest name, keeping the
// rendering deterministic. This is the symbolization diagnostics use
// to name a code address — the verifier's confinement report names
// protection domains with it.
func Symbolize(labels map[string]int, i int) string {
	best, at, found := "", 0, false
	for name, idx := range labels {
		if idx > i {
			continue
		}
		if !found || idx > at || (idx == at && name < best) {
			best, at, found = name, idx, true
		}
	}
	if !found {
		return ""
	}
	if at == i {
		return best
	}
	return fmt.Sprintf("%s+%d", best, i-at)
}

type stmt struct {
	file   string // source name for diagnostics ("" = anonymous)
	lineNo int
	op     string   // mnemonic or a directive (".word", ".space", ".align")
	args   []string // raw operand tokens
	addr   int      // word index assigned in pass 1
	size   int      // words occupied
}

// Assemble translates source text into a Program. Errors and origins
// carry line numbers only; AssembleNamed additionally stamps a source
// name onto both.
func Assemble(src string) (*Program, error) { return AssembleNamed("", src) }

// AssembleNamed translates source text into a Program, recording name
// as the source file in the origin table and in every diagnostic
// ("name:line: ...").
func AssembleNamed(name, src string) (*Program, error) {
	// Pass 1: strip comments, collect statements, assign word
	// addresses (directives may occupy zero or many words) and bind
	// labels to word indices.
	labels := make(map[string]int)
	var stmts []stmt
	addr := 0
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		// Leading labels, possibly several per line.
		for {
			colon := strings.Index(line, ":")
			if colon < 0 {
				break
			}
			lbl := strings.TrimSpace(line[:colon])
			if !isIdent(lbl) {
				return nil, lineErr(stmt{file: name, lineNo: lineNo + 1}, "bad label %q", lbl)
			}
			if _, dup := labels[lbl]; dup {
				return nil, lineErr(stmt{file: name, lineNo: lineNo + 1}, "duplicate label %q", lbl)
			}
			labels[lbl] = addr
			line = strings.TrimSpace(line[colon+1:])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		op := strings.ToLower(fields[0])
		argText := strings.Join(fields[1:], " ")
		var args []string
		if strings.TrimSpace(argText) != "" {
			for _, a := range strings.Split(argText, ",") {
				args = append(args, strings.TrimSpace(a))
			}
		}
		st := stmt{file: name, lineNo: lineNo + 1, op: op, args: args, addr: addr}
		size, err := stmtSize(st, addr)
		if err != nil {
			return nil, err
		}
		st.size = size
		addr += size
		stmts = append(stmts, st)
	}

	// Pass 2: encode.
	p := &Program{Labels: labels}
	for _, s := range stmts {
		ws, err := encodeStmt(s, labels)
		if err != nil {
			return nil, err
		}
		p.Words = append(p.Words, ws...)
		for range ws {
			p.Origins = append(p.Origins, Origin{File: name, Line: s.lineNo})
		}
	}
	return p, nil
}

// stmtSize returns the number of words a statement occupies at the
// given word address.
func stmtSize(s stmt, addr int) (int, error) {
	switch s.op {
	case ".space":
		if len(s.args) != 1 {
			return 0, lineErr(s, ".space takes one count")
		}
		n, err := strconv.Atoi(s.args[0])
		if err != nil || n < 0 {
			return 0, lineErr(s, "bad .space count %q", s.args[0])
		}
		return n, nil
	case ".align":
		if len(s.args) != 1 {
			return 0, lineErr(s, ".align takes one word count")
		}
		a, err := strconv.Atoi(s.args[0])
		if err != nil || a <= 0 || a&(a-1) != 0 {
			return 0, lineErr(s, "bad .align %q (power-of-two words)", s.args[0])
		}
		return (a - addr%a) % a, nil
	default:
		return 1, nil
	}
}

func encodeStmt(s stmt, labels map[string]int) ([]word.Word, error) {
	switch s.op {
	case ".word":
		if len(s.args) != 1 {
			return nil, lineErr(s, ".word takes one value")
		}
		v, err := parseImm(s.args[0], labels)
		if err != nil {
			return nil, lineErr(s, "%v", err)
		}
		return []word.Word{word.FromInt(v)}, nil
	case ".space", ".align":
		return make([]word.Word, s.size), nil
	}

	op, ok := isa.OpByName[s.op]
	if !ok {
		return nil, lineErr(s, "unknown mnemonic %q", s.op)
	}
	inst := isa.Inst{Op: op}

	reg := func(tok string) (int, error) {
		if len(tok) < 2 || (tok[0] != 'r' && tok[0] != 'R') {
			return 0, fmt.Errorf("expected register, got %q", tok)
		}
		n, err := strconv.Atoi(tok[1:])
		if err != nil || n < 0 || n >= isa.NumRegs {
			return 0, fmt.Errorf("bad register %q", tok)
		}
		return n, nil
	}
	imm := func(tok string) (int64, error) {
		return parseImm(tok, labels)
	}
	// Branch displacement: a label resolves to a relative instruction
	// count (target − (here+1)), an integer is taken literally.
	disp := func(tok string) (int64, error) {
		if target, ok := labels[tok]; ok {
			return int64(target - (s.addr + 1)), nil
		}
		return parseImm(tok, labels)
	}

	var err error
	bind := func(n int, f func() error) error {
		if len(s.args) != n {
			return lineErr(s, "%s takes %d operands, got %d", s.op, n, len(s.args))
		}
		return f()
	}

	switch op {
	case isa.NOP, isa.HALT:
		err = bind(0, func() error { return nil })
	case isa.ADD, isa.SUB, isa.MUL, isa.AND, isa.OR, isa.XOR,
		isa.SHL, isa.SHR, isa.SLT, isa.SEQ, isa.LEA, isa.LEAB,
		isa.RESTRICT, isa.SUBSEG,
		isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV, isa.FSLT:
		err = bind(3, func() error {
			var e error
			if inst.Rd, e = reg(s.args[0]); e != nil {
				return lineErr(s, "%v", e)
			}
			if inst.Ra, e = reg(s.args[1]); e != nil {
				return lineErr(s, "%v", e)
			}
			if inst.Rb, e = reg(s.args[2]); e != nil {
				return lineErr(s, "%v", e)
			}
			return nil
		})
	case isa.ADDI, isa.SUBI, isa.SHLI, isa.SHRI, isa.SLTI, isa.SEQI,
		isa.LEAI, isa.LEABI, isa.LD, isa.LDB:
		err = bind(3, func() error {
			var e error
			if inst.Rd, e = reg(s.args[0]); e != nil {
				return lineErr(s, "%v", e)
			}
			if inst.Ra, e = reg(s.args[1]); e != nil {
				return lineErr(s, "%v", e)
			}
			if inst.Imm, e = imm(s.args[2]); e != nil {
				return lineErr(s, "%v", e)
			}
			return nil
		})
	case isa.ST, isa.STB: // st raddr, imm, rval
		err = bind(3, func() error {
			var e error
			if inst.Ra, e = reg(s.args[0]); e != nil {
				return lineErr(s, "%v", e)
			}
			if inst.Imm, e = imm(s.args[1]); e != nil {
				return lineErr(s, "%v", e)
			}
			if inst.Rb, e = reg(s.args[2]); e != nil {
				return lineErr(s, "%v", e)
			}
			return nil
		})
	case isa.MOV, isa.SETPTR, isa.ISPTR, isa.GETPERM, isa.GETLEN,
		isa.ITOF, isa.FTOI:
		err = bind(2, func() error {
			var e error
			if inst.Rd, e = reg(s.args[0]); e != nil {
				return lineErr(s, "%v", e)
			}
			if inst.Ra, e = reg(s.args[1]); e != nil {
				return lineErr(s, "%v", e)
			}
			return nil
		})
	case isa.MOVIP:
		err = bind(1, func() error {
			var e error
			if inst.Rd, e = reg(s.args[0]); e != nil {
				return lineErr(s, "%v", e)
			}
			return nil
		})
	case isa.LDI:
		err = bind(2, func() error {
			var e error
			if inst.Rd, e = reg(s.args[0]); e != nil {
				return lineErr(s, "%v", e)
			}
			if inst.Imm, e = imm(s.args[1]); e != nil {
				return lineErr(s, "%v", e)
			}
			return nil
		})
	case isa.BR, isa.TRAP:
		err = bind(1, func() error {
			var e error
			if inst.Imm, e = disp(s.args[0]); e != nil {
				return lineErr(s, "%v", e)
			}
			return nil
		})
	case isa.BEQZ, isa.BNEZ:
		err = bind(2, func() error {
			var e error
			if inst.Ra, e = reg(s.args[0]); e != nil {
				return lineErr(s, "%v", e)
			}
			if inst.Imm, e = disp(s.args[1]); e != nil {
				return lineErr(s, "%v", e)
			}
			return nil
		})
	case isa.JMP:
		err = bind(1, func() error {
			var e error
			if inst.Ra, e = reg(s.args[0]); e != nil {
				return lineErr(s, "%v", e)
			}
			return nil
		})
	case isa.JMPL:
		err = bind(2, func() error {
			var e error
			if inst.Rd, e = reg(s.args[0]); e != nil {
				return lineErr(s, "%v", e)
			}
			if inst.Ra, e = reg(s.args[1]); e != nil {
				return lineErr(s, "%v", e)
			}
			return nil
		})
	default:
		err = lineErr(s, "mnemonic %q not handled", s.op)
	}
	if err != nil {
		return nil, err
	}

	w, encErr := isa.Encode(inst)
	if encErr != nil {
		return nil, lineErr(s, "%v", encErr)
	}
	return []word.Word{w}, nil
}

func parseImm(tok string, labels map[string]int) (int64, error) {
	if strings.HasPrefix(tok, "=") {
		name := tok[1:]
		i, ok := labels[name]
		if !ok {
			return 0, fmt.Errorf("undefined label %q", name)
		}
		return int64(i) * word.BytesPerWord, nil
	}
	v, err := strconv.ParseInt(tok, 0, 64)
	if err != nil {
		// Accept full-width unsigned constants (e.g. 0xffffffffffffffff
		// in a .word) by reinterpreting the bits.
		if u, uerr := strconv.ParseUint(tok, 0, 64); uerr == nil {
			return int64(u), nil
		}
		return 0, fmt.Errorf("bad immediate %q", tok)
	}
	return v, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func lineErr(s stmt, format string, args ...interface{}) error {
	if s.file != "" {
		return fmt.Errorf("asm: %s:%d: %s", s.file, s.lineNo, fmt.Sprintf(format, args...))
	}
	return fmt.Errorf("asm: line %d: %s", s.lineNo, fmt.Sprintf(format, args...))
}

// Disassemble renders a program listing for diagnostics.
func Disassemble(p *Program) string {
	var b strings.Builder
	byIndex := make(map[int][]string)
	for name, i := range p.Labels {
		byIndex[i] = append(byIndex[i], name)
	}
	for i, w := range p.Words {
		for _, name := range byIndex[i] {
			fmt.Fprintf(&b, "%s:\n", name)
		}
		if inst, err := isa.Decode(w); err == nil {
			fmt.Fprintf(&b, "  %04x  %s\n", i*word.BytesPerWord, inst)
		} else {
			fmt.Fprintf(&b, "  %04x  .word %#x\n", i*word.BytesPerWord, w.Bits)
		}
	}
	return b.String()
}
