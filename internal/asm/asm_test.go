package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestAssembleBasic(t *testing.T) {
	p, err := Assemble(`
		; a trivial program
		ldi  r1, 100
		addi r2, r1, 0x20
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Words) != 3 {
		t.Fatalf("len = %d", len(p.Words))
	}
	i0, _ := isa.Decode(p.Words[0])
	if i0.Op != isa.LDI || i0.Rd != 1 || i0.Imm != 100 {
		t.Errorf("inst 0 = %v", i0)
	}
	i1, _ := isa.Decode(p.Words[1])
	if i1.Op != isa.ADDI || i1.Rd != 2 || i1.Ra != 1 || i1.Imm != 0x20 {
		t.Errorf("inst 1 = %v", i1)
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p, err := Assemble(`
	loop:
		subi r1, r1, 1
		bnez r1, loop
		br   done
		nop
	done:
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	bnez, _ := isa.Decode(p.Words[1])
	if bnez.Imm != -2 {
		t.Errorf("backward branch imm = %d, want -2", bnez.Imm)
	}
	br, _ := isa.Decode(p.Words[2])
	if br.Imm != 1 {
		t.Errorf("forward branch imm = %d, want 1 (skips nop)", br.Imm)
	}
	if p.Labels["done"] != 4 {
		t.Errorf("done label = %d", p.Labels["done"])
	}
}

func TestWordDirectiveAndLabelByte(t *testing.T) {
	p, err := Assemble(`
		ld r1, r2, =data
		halt
	data:
		.word 0x1234
		.word -7
	`)
	if err != nil {
		t.Fatal(err)
	}
	ld, _ := isa.Decode(p.Words[0])
	if ld.Imm != 16 {
		t.Errorf("=data imm = %d, want 16 (byte offset)", ld.Imm)
	}
	if p.Words[2].Int() != 0x1234 || p.Words[3].Int() != -7 {
		t.Errorf("data words = %v %v", p.Words[2], p.Words[3])
	}
	off, err := p.LabelByte("data")
	if err != nil || off != 16 {
		t.Errorf("LabelByte = %d, %v", off, err)
	}
	if _, err := p.LabelByte("nothere"); err == nil {
		t.Error("LabelByte of missing label succeeded")
	}
	if p.ByteSize() != 32 {
		t.Errorf("ByteSize = %d", p.ByteSize())
	}
}

func TestStoreSyntax(t *testing.T) {
	p := mustAssemble(`st r3, 24, r5`)
	st, _ := isa.Decode(p.Words[0])
	if st.Op != isa.ST || st.Ra != 3 || st.Imm != 24 || st.Rb != 5 {
		t.Errorf("st = %v", st)
	}
}

func TestAllMnemonicsAssemble(t *testing.T) {
	src := `
	start:
		nop
		add r1, r2, r3
		addi r1, r2, 5
		sub r1, r2, r3
		subi r1, r2, 5
		mul r1, r2, r3
		and r1, r2, r3
		or r1, r2, r3
		xor r1, r2, r3
		shl r1, r2, r3
		shli r1, r2, 3
		shr r1, r2, r3
		shri r1, r2, 3
		slt r1, r2, r3
		slti r1, r2, 9
		seq r1, r2, r3
		seqi r1, r2, 9
		mov r1, r2
		ldi r1, -12
		br start
		beqz r1, start
		bnez r1, start
		jmp r4
		jmpl r14, r4
		trap 3
		ld r1, r2, 8
		st r2, 8, r1
		lea r1, r2, r3
		leai r1, r2, 8
		leab r1, r2, r3
		leabi r1, r2, 8
		restrict r1, r2, r3
		subseg r1, r2, r3
		setptr r1, r2
		isptr r1, r2
		getperm r1, r2
		getlen r1, r2
		movip r5
		halt
	`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range p.Words {
		if _, err := isa.Decode(w); err != nil {
			t.Errorf("word %d does not decode: %v", i, err)
		}
	}
	dis := Disassemble(p)
	if !strings.Contains(dis, "start:") || !strings.Contains(dis, "restrict") {
		t.Errorf("disassembly missing content:\n%s", dis)
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		"bogus r1, r2",              // unknown mnemonic
		"add r1, r2",                // wrong arity
		"add r1, r2, r16",           // bad register
		"ldi r1, zzz",               // bad immediate
		"ld r1, r2, =nope",          // undefined label
		"9bad: nop",                 // bad label name
		"dup: nop\ndup: nop",        // duplicate label
		".word",                     // missing value
		"ldi r1, 99999999999999999", // immediate overflow
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("assembled bad source %q", src)
		}
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble did not panic")
		}
	}()
	mustAssemble("bogus")
}

func TestMultipleLabelsSameLine(t *testing.T) {
	p := mustAssemble(`a: b: halt`)
	if p.Labels["a"] != 0 || p.Labels["b"] != 0 {
		t.Errorf("labels = %v", p.Labels)
	}
}

func TestDisassembleDataWord(t *testing.T) {
	p := mustAssemble("d: .word 0xffffffffffffffff")
	if !strings.Contains(Disassemble(p), ".word") {
		t.Error("data word not shown as .word")
	}
}

func TestSpaceDirective(t *testing.T) {
	p := mustAssemble(`
		ldi r1, 1
	buf:
		.space 4
	after:
		halt
	`)
	if len(p.Words) != 6 {
		t.Fatalf("len = %d, want 6", len(p.Words))
	}
	if p.Labels["buf"] != 1 || p.Labels["after"] != 5 {
		t.Errorf("labels = %v", p.Labels)
	}
	for i := 1; i < 5; i++ {
		if !p.Words[i].IsZero() {
			t.Errorf("space word %d = %v", i, p.Words[i])
		}
	}
	if _, err := Assemble(".space -1"); err == nil {
		t.Error("negative .space accepted")
	}
	if _, err := Assemble(".space x"); err == nil {
		t.Error("junk .space accepted")
	}
}

func TestAlignDirective(t *testing.T) {
	p := mustAssemble(`
		ldi r1, 1
		.align 4
	data:
		.word 9
	`)
	if p.Labels["data"] != 4 {
		t.Errorf("data at %d, want 4", p.Labels["data"])
	}
	if len(p.Words) != 5 {
		t.Errorf("len = %d", len(p.Words))
	}
	// Already aligned: no padding.
	q := mustAssemble(".align 2\na: .word 1")
	if q.Labels["a"] != 0 {
		t.Errorf("aligned-at-zero label = %d", q.Labels["a"])
	}
	if _, err := Assemble(".align 3"); err == nil {
		t.Error("non-power-of-two .align accepted")
	}
	if _, err := Assemble(".align 0"); err == nil {
		t.Error(".align 0 accepted")
	}
}

func TestBranchAcrossSpace(t *testing.T) {
	p := mustAssemble(`
		br over
		.space 6
	over:
		halt
	`)
	br, _ := isa.Decode(p.Words[0])
	if br.Imm != 6 {
		t.Errorf("branch over .space imm = %d, want 6", br.Imm)
	}
}

func TestSymbolize(t *testing.T) {
	labels := map[string]int{"start": 0, "sub": 5, "aaa": 5, "end": 12}
	cases := []struct {
		i    int
		want string
	}{
		{0, "start"},
		{3, "start+3"},
		{5, "aaa"}, // tie at 5: lexicographically smallest name
		{9, "aaa+4"},
		{12, "end"},
		{100, "end+88"},
	}
	for _, c := range cases {
		if got := Symbolize(labels, c.i); got != c.want {
			t.Errorf("Symbolize(%d) = %q, want %q", c.i, got, c.want)
		}
	}
	if got := Symbolize(map[string]int{"late": 7}, 3); got != "" {
		t.Errorf("no preceding label: got %q, want \"\"", got)
	}
	if got := Symbolize(nil, 0); got != "" {
		t.Errorf("nil labels: got %q, want \"\"", got)
	}
}
