package asm

// mustAssemble is the test-local stand-in for the removed library
// MustAssemble: statically known test sources may panic.
func mustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}
