package asm

import (
	"testing"

	"repro/internal/isa"
)

// FuzzAsm: the assembler must never panic on arbitrary source text, and
// anything it accepts must be a program of decodable instruction words
// — the loader and machine trust Program blindly.
func FuzzAsm(f *testing.F) {
	f.Add("nop\nhalt")
	f.Add("ldi r1, 42\nloop:\nsubi r1, r1, 1\nbnez r1, loop\nhalt")
	f.Add("ld r2, r1, 0 ; comment\nst r1, 8, r2")
	f.Add("restrict r3, r1, r2\nsubseg r4, r3, r2\njmpl r14, r5")
	f.Add("x:\nbr x")
	f.Add("add r99, r1, r2")
	f.Add("ldi r1, 99999999999999999999")
	f.Add(".data 7\n.ptr 8")
	f.Add("\x00\xff")

	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			return // rejected input: the defined outcome for bad source
		}
		for i, w := range p.Words {
			if w.Tag {
				continue // assembler-minted data capability, not code
			}
			if _, derr := isa.Decode(w); derr != nil {
				// Words emitted by data directives are not required to
				// decode; instruction words are. Without directive
				// metadata we accept either, but a word that decodes
				// must round-trip through Encode.
				continue
			}
			inst, _ := isa.Decode(w)
			if _, eerr := isa.Encode(inst); eerr != nil {
				t.Fatalf("word %d: decoded %+v but re-encode failed: %v", i, inst, eerr)
			}
		}
	})
}
