package asm

import (
	"fmt"
	"strings"

	"repro/internal/isa"
	"repro/internal/word"
)

// This file adds separate assembly and linking: modules export labels
// with `.export name` and reference other modules' labels as `=name`
// immediates after declaring `.import name`. The linker lays modules
// out in order inside one code segment and patches the immediates with
// final byte offsets (all addressing stays segment-relative, so the
// linked image is loadable anywhere — position independence falls out
// of LEAB-based addressing).
//
// Branch targets remain module-local: control transfer between modules
// goes through pointers (LEAB + jmpl), as the protection model intends.

// Module is a relocatable unit: an assembled program plus its symbol
// interface.
type Module struct {
	Name    string
	Prog    *Program
	Exports map[string]int // label → word index within the module
	fixups  []fixup
	imports map[string]bool
}

type fixup struct {
	wordIdx int    // instruction to patch
	symbol  string // imported label whose final byte offset goes in imm
	lineNo  int
}

// AssembleModule assembles src as a relocatable module. Directives
// beyond Assemble's:
//
//	.export label     make label visible to other modules
//	.import name      declare an external label; `=name` immediates
//	                  are left as fixups for the linker
func AssembleModule(name, src string) (*Module, error) {
	m := &Module{Name: name, Exports: make(map[string]int), imports: make(map[string]bool)}

	// Pre-pass: strip .export/.import lines, remember them (with the
	// directive's line, so undefined-export errors can point at it).
	var kept []string
	type exportDecl struct {
		label  string
		lineNo int
	}
	var exports []exportDecl
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		f := strings.Fields(line)
		if len(f) == 2 && f[0] == ".export" {
			exports = append(exports, exportDecl{label: f[1], lineNo: lineNo + 1})
			kept = append(kept, "")
			continue
		}
		if len(f) == 2 && f[0] == ".import" {
			if !isIdent(f[1]) {
				return nil, fmt.Errorf("asm: %s:%d: bad import %q", name, lineNo+1, f[1])
			}
			m.imports[f[1]] = true
			kept = append(kept, "")
			continue
		}
		kept = append(kept, raw)
	}

	// Substitute imported `=sym` with placeholder 0 and record fixups.
	// We do this by assembling with a symbol table extended by fake
	// zero-offset labels, then remembering which instructions used
	// them.
	body := strings.Join(kept, "\n")
	prog, fixups, err := assembleWithImports(name, body, m.imports)
	if err != nil {
		return nil, err
	}
	m.Prog = prog
	m.fixups = fixups

	for _, e := range exports {
		idx, ok := prog.Labels[e.label]
		if !ok {
			return nil, fmt.Errorf("asm: %s:%d: exported label %q not defined", name, e.lineNo, e.label)
		}
		m.Exports[e.label] = idx
	}
	return m, nil
}

// assembleWithImports assembles body treating `=sym` for declared
// imports as zero placeholders, returning the fixups to patch.
func assembleWithImports(name, body string, imports map[string]bool) (*Program, []fixup, error) {
	var fixups []fixup
	// Rewrite `=sym` tokens for imports into `0` while remembering the
	// statement order; then map statement order to word index after
	// assembly. Simplest robust approach: rewrite line by line and
	// record (line number, symbol); after assembly, recover the word
	// index by re-scanning statements the same way Assemble does.
	lines := strings.Split(body, "\n")
	type pending struct {
		lineNo int
		symbol string
	}
	var pend []pending
	for i, raw := range lines {
		code := raw
		comment := ""
		if j := strings.IndexAny(raw, ";#"); j >= 0 {
			code, comment = raw[:j], raw[j:]
		}
		changed := false
		for sym := range imports {
			tok := "=" + sym
			if strings.Contains(code, tok) {
				code = strings.ReplaceAll(code, tok, "0")
				pend = append(pend, pending{lineNo: i + 1, symbol: sym})
				changed = true
			}
		}
		if changed {
			lines[i] = code + comment
		}
	}
	prog, err := AssembleNamed(name, strings.Join(lines, "\n"))
	if err != nil {
		return nil, nil, err
	}
	// Recover word indices: re-run the statement scan to map source
	// lines to word addresses.
	lineToAddr, err := lineAddresses(strings.Join(lines, "\n"))
	if err != nil {
		return nil, nil, err
	}
	for _, p := range pend {
		addr, ok := lineToAddr[p.lineNo]
		if !ok {
			return nil, nil, fmt.Errorf("asm: module %s: internal fixup miss at line %d", name, p.lineNo)
		}
		fixups = append(fixups, fixup{wordIdx: addr, symbol: p.symbol, lineNo: p.lineNo})
	}
	return prog, fixups, nil
}

// lineAddresses maps source line numbers to the word index their
// statement occupies (first word for multi-word directives).
func lineAddresses(src string) (map[int]int, error) {
	out := make(map[int]int)
	addr := 0
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		for {
			colon := strings.Index(line, ":")
			if colon < 0 {
				break
			}
			line = strings.TrimSpace(line[colon+1:])
		}
		if line == "" {
			continue
		}
		f := strings.Fields(line)
		st := stmt{lineNo: lineNo + 1, op: strings.ToLower(f[0])}
		if len(f) > 1 {
			for _, a := range strings.Split(strings.Join(f[1:], " "), ",") {
				st.args = append(st.args, strings.TrimSpace(a))
			}
		}
		size, err := stmtSize(st, addr)
		if err != nil {
			return nil, err
		}
		out[lineNo+1] = addr
		addr += size
	}
	return out, nil
}

// Link concatenates modules into one loadable program, resolving
// imported `=sym` immediates to final byte offsets from the image
// base. Exported labels appear in the result's label table prefixed
// with the module name ("module.label") plus unprefixed when unique.
func Link(modules ...*Module) (*Program, error) {
	if len(modules) == 0 {
		return nil, fmt.Errorf("asm: nothing to link")
	}
	// Layout and global symbol table.
	base := make(map[*Module]int)
	globals := make(map[string]int)     // exported label → image word index
	exporter := make(map[string]string) // exported label → module name
	total := 0
	for _, m := range modules {
		base[m] = total
		total += len(m.Prog.Words)
		for name, idx := range m.Exports {
			if prev, exists := exporter[name]; exists {
				return nil, fmt.Errorf("asm: duplicate export %q (modules %s and %s)", name, prev, m.Name)
			}
			exporter[name] = m.Name
			globals[name] = base[m] + idx
		}
	}

	out := &Program{Labels: make(map[string]int)}
	for _, m := range modules {
		off := base[m]
		out.Words = append(out.Words, m.Prog.Words...)
		out.Origins = append(out.Origins, m.Prog.Origins...)
		for name, idx := range m.Prog.Labels {
			out.Labels[m.Name+"."+name] = off + idx
		}
		for _, fx := range m.fixups {
			target, ok := globals[fx.symbol]
			if !ok {
				return nil, fmt.Errorf("asm: %s:%d: undefined import %q", m.Name, fx.lineNo, fx.symbol)
			}
			w := out.Words[off+fx.wordIdx]
			inst, err := isa.Decode(w)
			if err != nil {
				return nil, fmt.Errorf("asm: %s:%d: fixup on non-instruction", m.Name, fx.lineNo)
			}
			inst.Imm = int64(target) * word.BytesPerWord
			patched, err := isa.Encode(inst)
			if err != nil {
				return nil, err
			}
			out.Words[off+fx.wordIdx] = patched
		}
	}
	for name, idx := range globals {
		out.Labels[name] = idx
	}
	return out, nil
}
