package asm

import "testing"

// Malformed source must come back as an error, never a panic — the
// assembler sits on user-facing and fuzzed paths.

func TestAssembleRejectsHostileSource(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown mnemonic", "frobnicate r1, r2"},
		{"bad register", "add r99, r1, r2"},
		{"missing operand", "add r1"},
		{"undefined label", "br nowhere"},
		{"duplicate label", "x:\nnop\nx:\nnop"},
		{"immediate overflow", "ldi r1, 99999999999999999999"},
		{"garbage bytes", "\x00\xff\xfe"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Assemble(c.src); err == nil {
				t.Fatalf("Assemble(%q): want error, got nil", c.src)
			}
		})
	}
}
