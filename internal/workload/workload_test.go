package workload

import (
	"testing"

	"repro/internal/vm"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Error("different seeds collided on first draw")
	}
	// Zero seed is remapped, not stuck at zero.
	z := NewRNG(0)
	if z.Uint64() == 0 && z.Uint64() == 0 {
		t.Error("zero seed produces zeros")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
	if r.Intn(0) != 0 || r.Intn(-5) != 0 {
		t.Error("Intn of non-positive bound")
	}
}

func TestArraySweep(t *testing.T) {
	tr := ArraySweep(2, 0x1000, 10, 8, true)
	if len(tr.Refs) != 10 {
		t.Fatalf("refs = %d", len(tr.Refs))
	}
	for i, r := range tr.Refs {
		if r.VAddr != 0x1000+uint64(i)*8 || r.Domain != 2 || !r.Write {
			t.Fatalf("ref %d = %+v", i, r)
		}
	}
	if tr.Switches() != 0 {
		t.Error("single-domain sweep has switches")
	}
}

func TestPointerChaseStaysInWorkingSet(t *testing.T) {
	tr := PointerChase(NewRNG(5), 0, 0x4000, 1024, 500)
	if len(tr.Refs) != 500 {
		t.Fatalf("refs = %d", len(tr.Refs))
	}
	for _, r := range tr.Refs {
		if r.VAddr < 0x4000 || r.VAddr >= 0x4000+1024 {
			t.Fatalf("ref %#x escapes working set", r.VAddr)
		}
	}
	// Degenerate working set.
	tiny := PointerChase(NewRNG(5), 0, 0, 0, 3)
	if len(tiny.Refs) != 3 {
		t.Error("degenerate chase")
	}
}

func TestInterleavedSwitchStructure(t *testing.T) {
	tr := Interleaved(4, 10, 1, 2, 0x100000)
	if tr.Domains != 4 {
		t.Errorf("Domains = %d", tr.Domains)
	}
	if len(tr.Refs) != 40 {
		t.Errorf("refs = %d", len(tr.Refs))
	}
	// quantum 1: every consecutive pair switches domain.
	if got := tr.Switches(); got != 39 {
		t.Errorf("switches = %d, want 39", got)
	}
	// Larger quantum: fewer switches.
	tr2 := Interleaved(4, 10, 10, 2, 0x100000)
	if tr2.Switches() >= tr.Switches()*2 {
		t.Error("larger quantum did not reduce switch density")
	}
	// Domains touch disjoint pages.
	pagesByDomain := map[int]map[uint64]bool{}
	for _, r := range tr.Refs {
		if pagesByDomain[r.Domain] == nil {
			pagesByDomain[r.Domain] = map[uint64]bool{}
		}
		pagesByDomain[r.Domain][r.VAddr>>vm.PageShift] = true
	}
	for d1, p1 := range pagesByDomain {
		for d2, p2 := range pagesByDomain {
			if d1 >= d2 {
				continue
			}
			for pg := range p1 {
				if p2[pg] {
					t.Fatalf("domains %d and %d share page %#x", d1, d2, pg)
				}
			}
		}
	}
}

func TestSharedPagesCounting(t *testing.T) {
	tr := Shared(3, 4, 2, 0x200000)
	dp, pages := tr.Pages()
	if pages != 4 {
		t.Errorf("pages = %d, want 4", pages)
	}
	if dp != 12 { // n×m: 4 pages × 3 domains
		t.Errorf("domain-pages = %d, want 12", dp)
	}
}

func TestSizesDistributions(t *testing.T) {
	rng := NewRNG(11)
	for _, d := range []SizeDist{SizesUniformLog, SizesSmallObjects, SizesPowersOfTwo} {
		sizes := Sizes(rng, d, 1000, 4, 16)
		if len(sizes) != 1000 {
			t.Fatalf("%v: %d sizes", d, len(sizes))
		}
		for _, s := range sizes {
			if s == 0 || s > 1<<16 {
				t.Fatalf("%v: size %d out of range", d, s)
			}
		}
		if d.String() == "unknown" {
			t.Errorf("missing name for %d", d)
		}
	}
	if SizeDist(99).String() != "unknown" {
		t.Error("unknown dist name")
	}
	// Powers of two are exact.
	for _, s := range Sizes(rng, SizesPowersOfTwo, 100, 3, 10) {
		if s&(s-1) != 0 {
			t.Fatalf("non-power-of-two %d", s)
		}
	}
}

func TestSmallObjectsSkew(t *testing.T) {
	sizes := Sizes(NewRNG(13), SizesSmallObjects, 5000, 4, 20)
	small := 0
	for _, s := range sizes {
		if s < 1<<9 {
			small++
		}
	}
	if float64(small)/float64(len(sizes)) < 0.6 {
		t.Errorf("small-object dist not skewed: %d/%d small", small, len(sizes))
	}
}
