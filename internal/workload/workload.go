// Package workload generates the deterministic reference streams and
// allocation traces that drive the experiments: array sweeps and
// pointer-chases (the memory behaviour the paper's Sec 2.2 loop example
// discusses), multi-domain interleavings (the multithreading scenario
// of Sec 3), sharing matrices (the n×m page-table blowup of Sec 5.1),
// and segment-size distributions (the fragmentation study of Sec 4.2).
//
// Everything is seeded and reproducible; no global randomness.
package workload

import "repro/internal/vm"

// RNG is a small xorshift64* generator — deterministic across
// platforms, no allocation, good enough distribution for workload
// shaping.
type RNG struct{ s uint64 }

// NewRNG returns a generator; seed 0 is replaced with a fixed non-zero
// constant.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{s: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// Intn returns a value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Ref is one memory reference of a trace: which protection domain
// issued it, where, and whether it writes.
type Ref struct {
	Domain int
	VAddr  uint64
	Write  bool
}

// Trace is a reference stream annotated with the domain-switch
// structure the baseline models charge for.
type Trace struct {
	Refs    []Ref
	Domains int
}

// Switches counts domain changes between consecutive references.
func (t *Trace) Switches() int {
	n := 0
	for i := 1; i < len(t.Refs); i++ {
		if t.Refs[i].Domain != t.Refs[i-1].Domain {
			n++
		}
	}
	return n
}

// Pages returns the set of distinct (domain, page) pairs and distinct
// pages touched — the quantities that size per-process vs shared
// translation tables.
func (t *Trace) Pages() (domainPages, pages int) {
	dp := make(map[[2]uint64]bool)
	pg := make(map[uint64]bool)
	for _, r := range t.Refs {
		p := r.VAddr >> vm.PageShift
		dp[[2]uint64{uint64(r.Domain), p}] = true
		pg[p] = true
	}
	return len(dp), len(pg)
}

// ArraySweep returns a trace of n sequential word references starting
// at base with the given byte stride, all from one domain. It is the
// paper's `for i: a[i] = b[i]` access pattern.
func ArraySweep(domain int, base uint64, n int, stride uint64, write bool) *Trace {
	t := &Trace{Domains: 1}
	for i := 0; i < n; i++ {
		t.Refs = append(t.Refs, Ref{Domain: domain, VAddr: base + uint64(i)*stride, Write: write})
	}
	return t
}

// PointerChase returns a trace of n dependent references bouncing
// pseudo-randomly within a working set of wsBytes at base.
func PointerChase(rng *RNG, domain int, base uint64, wsBytes uint64, n int) *Trace {
	t := &Trace{Domains: 1}
	words := wsBytes / 8
	if words == 0 {
		words = 1
	}
	cur := uint64(0)
	for i := 0; i < n; i++ {
		t.Refs = append(t.Refs, Ref{Domain: domain, VAddr: base + cur*8})
		cur = rng.Uint64() % words
	}
	return t
}

// Interleaved builds the Sec 3 scenario: `domains` protection domains
// issue quantum-sized bursts of references round-robin, each domain
// walking its own working set of wsPages pages (domain d's pages start
// at base + d·wsPages·PageSize). With quantum 1 this is cycle-by-cycle
// interleaving; large quanta approximate conventional timeslicing.
func Interleaved(domains, quanta, quantum, wsPages int, base uint64) *Trace {
	t := &Trace{Domains: domains}
	pos := make([]int, domains)
	for q := 0; q < quanta; q++ {
		for d := 0; d < domains; d++ {
			for i := 0; i < quantum; i++ {
				pageIdx := pos[d] % (wsPages * (vm.PageSize / 8))
				addr := base + uint64(d)*uint64(wsPages)*vm.PageSize + uint64(pageIdx)*8
				t.Refs = append(t.Refs, Ref{Domain: d, VAddr: addr})
				pos[d]++
			}
		}
	}
	return t
}

// Shared builds a trace in which m domains all sweep the same n shared
// pages — the sharing scenario whose table cost Sec 5.1 analyses
// (n×m page-table entries for page-based schemes, one pointer per
// domain for guarded pointers).
func Shared(domains, sharedPages, sweeps int, base uint64) *Trace {
	t := &Trace{Domains: domains}
	for s := 0; s < sweeps; s++ {
		for d := 0; d < domains; d++ {
			for p := 0; p < sharedPages; p++ {
				t.Refs = append(t.Refs, Ref{Domain: d, VAddr: base + uint64(p)*vm.PageSize + uint64(s%512)*8})
			}
		}
	}
	return t
}

// SizeDist names a segment-size request distribution for the
// fragmentation experiment (E8).
type SizeDist int

const (
	// SizesUniformLog draws log2(size) uniformly in [lo, hi].
	SizesUniformLog SizeDist = iota
	// SizesSmallObjects mimics heap behaviour: many small requests,
	// occasionally large ones.
	SizesSmallObjects
	// SizesPowersOfTwo requests exact powers of two (no internal
	// fragmentation by construction).
	SizesPowersOfTwo
)

func (d SizeDist) String() string {
	switch d {
	case SizesUniformLog:
		return "uniform-log"
	case SizesSmallObjects:
		return "small-objects"
	case SizesPowersOfTwo:
		return "pow2-exact"
	}
	return "unknown"
}

// Sizes draws n segment-size requests in bytes from the distribution,
// bounded by [1<<lo, 1<<hi].
func Sizes(rng *RNG, d SizeDist, n int, lo, hi uint) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		switch d {
		case SizesPowersOfTwo:
			k := lo + uint(rng.Intn(int(hi-lo+1)))
			out[i] = 1 << k
		case SizesSmallObjects:
			// 90% small (lo..lo+4 bits), 10% anywhere up to hi.
			span := uint(4)
			if rng.Float64() < 0.9 {
				top := lo + span
				if top > hi {
					top = hi
				}
				out[i] = randBetween(rng, 1<<lo, 1<<top)
			} else {
				out[i] = randBetween(rng, 1<<lo, 1<<hi)
			}
		default: // SizesUniformLog
			k := lo + uint(rng.Intn(int(hi-lo+1)))
			out[i] = randBetween(rng, 1<<(k-min1(k)), 1<<k)
		}
		if out[i] == 0 {
			out[i] = 1
		}
	}
	return out
}

func min1(k uint) uint {
	if k == 0 {
		return 0
	}
	return 1
}

func randBetween(rng *RNG, lo, hi uint64) uint64 {
	if hi <= lo {
		return lo
	}
	return lo + rng.Uint64()%(hi-lo)
}
