// Package word defines the universal datum of a guarded-pointer machine:
// a 64-bit word extended with a single tag bit.
//
// The tag bit is the unforgeability mechanism of the paper (Carter,
// Keckler, Dally; ASPLOS 1994): a word whose tag is set is a guarded
// pointer, a word whose tag is clear is ordinary data. User-mode code can
// clear the tag (by doing integer arithmetic on a pointer) but can never
// set it; only the privileged SETPTR operation may do that. Every storage
// location in the machine — registers, cache lines, physical memory —
// holds a Word, so pointers need no special storage, which is the core
// efficiency claim of the paper.
package word

import "fmt"

// Word is a 64-bit datum plus the tag bit that marks it as a guarded
// pointer. The zero value is the untagged integer 0, ready to use.
type Word struct {
	Bits uint64
	Tag  bool
}

// FromInt returns an untagged word holding the two's-complement encoding
// of v.
func FromInt(v int64) Word { return Word{Bits: uint64(v)} }

// FromUint returns an untagged word holding v.
func FromUint(v uint64) Word { return Word{Bits: v} }

// FromBool returns the untagged word 1 for true, 0 for false — the
// machine's comparison results.
func FromBool(b bool) Word {
	if b {
		return Word{Bits: 1}
	}
	return Word{}
}

// Tagged returns a word with bits v and the tag set. It is the package's
// equivalent of the privileged SETPTR operation and must only be called
// from code acting with supervisor authority (the kernel, or the machine
// executing an execute-privileged instruction stream).
func Tagged(v uint64) Word { return Word{Bits: v, Tag: true} }

// Int returns the word's bits as a signed integer. The tag is ignored;
// reading a pointer as an integer is exactly the paper's pointer-to-
// integer cast (the tag would have been cleared by the arithmetic that
// produced the read).
func (w Word) Int() int64 { return int64(w.Bits) }

// Uint returns the word's bits unsigned.
func (w Word) Uint() uint64 { return w.Bits }

// Untag returns the same bits with the tag cleared. This is what happens
// when a guarded pointer is used as an input to a non-pointer operation:
// "the pointer bit of the guarded pointer is cleared, which converts the
// pointer into an integer with the same bit fields as the original
// pointer" (Sec 2.2).
func (w Word) Untag() Word { return Word{Bits: w.Bits} }

// IsZero reports whether the word is the untagged zero.
func (w Word) IsZero() bool { return w.Bits == 0 && !w.Tag }

// String renders the word for diagnostics; tagged words carry a "*"
// prefix.
func (w Word) String() string {
	if w.Tag {
		return fmt.Sprintf("*%#016x", w.Bits)
	}
	return fmt.Sprintf("%#016x", w.Bits)
}

// BytesPerWord is the size of a machine word in bytes. The machine is
// word-oriented (the M-Machine's memory is measured in 64-bit words) but
// addresses are byte addresses, as in the paper's 54-bit byte-addressable
// space.
const BytesPerWord = 8

// TagOverheadRatio is the fraction of extra storage the tag bit costs:
// one bit per 64+1. The paper rounds this to "a 1.5% increase in the
// amount of memory required by the system" (Sec 4.1).
const TagOverheadRatio = 1.0 / 65.0
