package word

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZeroValue(t *testing.T) {
	var w Word
	if !w.IsZero() {
		t.Error("zero Word should report IsZero")
	}
	if w.Tag {
		t.Error("zero Word must be untagged")
	}
}

func TestFromIntRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, -1, math.MaxInt64, math.MinInt64, 42, -42} {
		w := FromInt(v)
		if w.Int() != v {
			t.Errorf("FromInt(%d).Int() = %d", v, w.Int())
		}
		if w.Tag {
			t.Errorf("FromInt(%d) must be untagged", v)
		}
	}
}

func TestFromUintRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		w := FromUint(v)
		return w.Uint() == v && !w.Tag
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTagged(t *testing.T) {
	w := Tagged(0xdeadbeef)
	if !w.Tag {
		t.Fatal("Tagged must set tag")
	}
	if w.Uint() != 0xdeadbeef {
		t.Errorf("Tagged bits = %#x", w.Uint())
	}
}

func TestUntagPreservesBits(t *testing.T) {
	f := func(v uint64) bool {
		u := Tagged(v).Untag()
		return u.Uint() == v && !u.Tag
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUntagIdempotent(t *testing.T) {
	w := FromUint(7).Untag().Untag()
	if w.Tag || w.Uint() != 7 {
		t.Errorf("Untag twice changed word: %v", w)
	}
}

func TestIsZeroTaggedZeroIsNotZero(t *testing.T) {
	// A tagged word with zero bits is a (malformed) pointer, not the
	// integer zero.
	if Tagged(0).IsZero() {
		t.Error("tagged zero must not be IsZero")
	}
}

func TestString(t *testing.T) {
	if got := Tagged(0x10).String(); got != "*0x0000000000000010" {
		t.Errorf("tagged String = %q", got)
	}
	if got := FromUint(0x10).String(); got != "0x0000000000000010" {
		t.Errorf("untagged String = %q", got)
	}
}

func TestTagOverheadRatio(t *testing.T) {
	// Sec 4.1: one tag bit per 64-bit word ⇒ ~1.5% overhead.
	if TagOverheadRatio < 0.0153 || TagOverheadRatio > 0.0155 {
		t.Errorf("TagOverheadRatio = %v, want ≈0.0154", TagOverheadRatio)
	}
}

func TestIntNegative(t *testing.T) {
	w := FromInt(-5)
	if w.Int() != -5 {
		t.Errorf("Int() = %d", w.Int())
	}
	if w.Uint() != 0xfffffffffffffffb {
		t.Errorf("Uint() = %#x", w.Uint())
	}
}
