package migrate

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/kernel"
	"repro/internal/persist"
	"repro/internal/telemetry"
)

// Config parameterizes one migration.
type Config struct {
	// RoundBudget bounds pre-copy rounds including the base image; when
	// it expires the cutover runs on whatever delta remains. 0 means
	// DefaultRoundBudget.
	RoundBudget int
	// ConvergePages triggers cutover once a round's delta shrinks to
	// this many page images or fewer. 0 means DefaultConvergePages.
	ConvergePages int
	// Link sizes the simulated wire.
	Link LinkConfig
	// Node is the source node id stamped into the image headers.
	Node int

	// AbortIf, when non-nil, is polled at every round boundary and at
	// the commit barrier: returning true aborts the migration. The
	// multicomputer wires it to the source node's liveness, so a source
	// killed mid-migration tears the standby down instead of committing
	// a stale image.
	AbortIf func() bool
	// AbortAtRound, when non-zero, aborts the migration just before
	// capturing round N (1-based) — the fault-campaign and invariance
	// tests' handle on every round boundary.
	AbortAtRound int
	// AbortAtCutover aborts mid-cutover: after the final delta and the
	// fingerprint handshake are on the standby, instead of committing.
	AbortAtCutover bool
}

// Driver defaults: a round budget deep enough for convergent workloads
// and a convergence threshold of a handful of pages, so the final
// stop-the-world delta is small.
const (
	DefaultRoundBudget   = 8
	DefaultConvergePages = 8
)

func (c Config) withDefaults() Config {
	if c.RoundBudget == 0 {
		c.RoundBudget = DefaultRoundBudget
	}
	if c.ConvergePages == 0 {
		c.ConvergePages = DefaultConvergePages
	}
	return c
}

// Round records one pre-copy round's transfer.
type Round struct {
	Pages      int    // page images shipped (resident + swapped)
	Tombstones int    // dropped-page records shipped
	Bytes      int    // encoded image size
	WireCycles uint64 // wire time of this round's transfer
}

// Report is the outcome of one migration attempt.
type Report struct {
	Committed bool
	Reason    string // why the migration ended ("committed", "abort-requested", ...)
	Rounds    []Round
	// STWCycles is the stop-the-world window: wire time of the final
	// delta plus the fingerprint/commit handshake, during which the
	// source does not execute.
	STWCycles uint64
	// SteppedCycles is how many cycles the source executed during
	// pre-copy (identical to the cycles a never-migrating run would
	// have executed in the same wall interval — the step hook is the
	// caller's own scheduler tick).
	SteppedCycles uint64
	// Image is the materialized post-cutover checkpoint; nil unless
	// Committed.
	Image *kernel.Checkpoint
	Link  LinkStats
}

// TotalPages sums page images across all rounds.
func (r *Report) TotalPages() int {
	n := 0
	for _, rd := range r.Rounds {
		n += rd.Pages
	}
	return n
}

// Metrics aggregates migration telemetry across attempts. Register it
// with RegisterMetrics; the counters follow the repo-wide convention
// (monotonic uint64 behind closures).
type Metrics struct {
	Started     uint64
	Committed   uint64
	Aborted     uint64
	Rounds      uint64
	PagesSent   uint64
	BytesSent   uint64
	Retransmits uint64
	DupSupp     uint64
	Corrupt     uint64
	STW         *telemetry.Histogram
}

// NewMetrics builds an empty metrics block.
func NewMetrics() *Metrics { return &Metrics{STW: telemetry.NewHistogram()} }

// RegisterMetrics exposes the migration counters and the
// stop-the-world-window histogram under prefix (conventionally
// "migrate").
func (m *Metrics) RegisterMetrics(reg *telemetry.Registry, prefix string) {
	sub := reg.Sub(prefix + ".")
	sub.Counter("started", func() uint64 { return m.Started })
	sub.Counter("committed", func() uint64 { return m.Committed })
	sub.Counter("aborted", func() uint64 { return m.Aborted })
	sub.Counter("rounds", func() uint64 { return m.Rounds })
	sub.Counter("pages_sent", func() uint64 { return m.PagesSent })
	sub.Counter("bytes_sent", func() uint64 { return m.BytesSent })
	sub.Counter("retransmits", func() uint64 { return m.Retransmits })
	sub.Counter("dup_suppressed", func() uint64 { return m.DupSupp })
	sub.Counter("corrupt_detected", func() uint64 { return m.Corrupt })
	sub.RegisterHistogram("stw_window", m.STW)
}

// Note records a completed attempt into the metrics block; safe on a
// nil receiver.
func (m *Metrics) Note(rep *Report) {
	if m == nil {
		return
	}
	m.Started++
	if rep.Committed {
		m.Committed++
		m.STW.Observe(rep.STWCycles)
	} else {
		m.Aborted++
	}
	m.Rounds += uint64(len(rep.Rounds))
	m.PagesSent += uint64(rep.TotalPages())
	for _, rd := range rep.Rounds {
		m.BytesSent += uint64(rd.Bytes)
	}
	m.Retransmits += rep.Link.Retransmits
	m.DupSupp += rep.Link.DupSuppressed
	m.Corrupt += rep.Link.CorruptDetected
}

// --- source-side delta capture -----------------------------------------

// pageHash fingerprints one page image's content (bits and tags).
func pageHash(img kernel.PageImage) uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(img.Frame)
	for _, w := range img.Words {
		mix(w.Bits)
		if w.Tag {
			mix(1)
		} else {
			mix(0)
		}
	}
	return h
}

// source tracks what the standby already holds, by content hash. The
// migration source deliberately captures FULL checkpoints each round
// (kernel.Checkpoint is pure reads) and diffs them here, rather than
// consuming the kernel's hardware dirty bits: those belong to the
// concurrent persist chain, and draining them would corrupt it —
// violating the abort guarantee that the source is bit-identical to
// never having migrated.
type source struct {
	resident map[uint64]uint64 // vaddr -> content hash, as shipped
	swapped  map[uint64]uint64
}

func newSource() *source {
	return &source{resident: make(map[uint64]uint64), swapped: make(map[uint64]uint64)}
}

// delta builds the round image: the full cp for round 1, otherwise a
// delta holding only pages whose content changed since they were last
// shipped, plus tombstones for pages that vanished. Metadata
// (segments, threads, region) is always full, matching the kernel's
// incremental-checkpoint convention.
func (s *source) delta(cp *kernel.Checkpoint, round int) *kernel.Checkpoint {
	if round == 1 {
		s.note(cp)
		return cp
	}
	d := &kernel.Checkpoint{
		RegionBase: cp.RegionBase,
		RegionLog:  cp.RegionLog,
		Segments:   cp.Segments,
		Revoked:    cp.Revoked,
		NextDomain: cp.NextDomain,
		Threads:    cp.Threads,
		Delta:      true,
	}
	seenR := make(map[uint64]bool, len(cp.Resident))
	for _, img := range cp.Resident {
		seenR[img.VAddr] = true
		if s.resident[img.VAddr] != pageHash(img) {
			d.Resident = append(d.Resident, img)
		}
	}
	seenS := make(map[uint64]bool, len(cp.Swapped))
	for _, img := range cp.Swapped {
		seenS[img.VAddr] = true
		if s.swapped[img.VAddr] != pageHash(img) {
			d.Swapped = append(d.Swapped, img)
		}
	}
	for va := range s.resident {
		if !seenR[va] {
			d.Dropped = append(d.Dropped, va)
		}
	}
	for va := range s.swapped {
		if !seenS[va] {
			d.SwapDropped = append(d.SwapDropped, va)
		}
	}
	sort.Slice(d.Dropped, func(i, j int) bool { return d.Dropped[i] < d.Dropped[j] })
	sort.Slice(d.SwapDropped, func(i, j int) bool { return d.SwapDropped[i] < d.SwapDropped[j] })
	s.note(cp)
	return d
}

// note records cp as the standby's (imminent) view.
func (s *source) note(cp *kernel.Checkpoint) {
	clear(s.resident)
	clear(s.swapped)
	for _, img := range cp.Resident {
		s.resident[img.VAddr] = pageHash(img)
	}
	for _, img := range cp.Swapped {
		s.swapped[img.VAddr] = pageHash(img)
	}
}

// FingerprintImage hashes a checkpoint's architectural content,
// insensitive to page and map ordering — the handshake value both ends
// of the cutover barrier must agree on. Like the fault campaign's
// thread fingerprint it covers state, not timing.
func FingerprintImage(cp *kernel.Checkpoint) uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(cp.RegionBase)
	mix(uint64(cp.RegionLog))
	mix(uint64(cp.NextDomain))
	segs := make([]uint64, 0, len(cp.Segments))
	for base := range cp.Segments {
		segs = append(segs, base)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	for _, base := range segs {
		mix(base)
		mix(uint64(cp.Segments[base]))
	}
	revs := make([]uint64, 0, len(cp.Revoked))
	for base, on := range cp.Revoked {
		if on {
			revs = append(revs, base)
		}
	}
	sort.Slice(revs, func(i, j int) bool { return revs[i] < revs[j] })
	for _, base := range revs {
		mix(base)
	}
	hashPages := func(imgs []kernel.PageImage) {
		idx := make([]int, len(imgs))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return imgs[idx[a]].VAddr < imgs[idx[b]].VAddr })
		for _, i := range idx {
			mix(imgs[i].VAddr)
			mix(pageHash(imgs[i]))
		}
	}
	hashPages(cp.Resident)
	hashPages(cp.Swapped)
	for _, t := range cp.Threads {
		mix(uint64(t.Domain))
		mix(uint64(t.State))
		mix(t.Instret)
		mix(t.IPWord.Bits)
		for _, r := range t.Regs {
			mix(r.Bits)
			if r.Tag {
				mix(1)
			} else {
				mix(0)
			}
		}
	}
	return h
}

// --- standby receiver ---------------------------------------------------

// MigrateError is a protocol-level failure on the standby: images out
// of order, a fingerprint mismatch at the barrier, commit without a
// complete chain.
type MigrateError struct{ Msg string }

func (e *MigrateError) Error() string { return "migrate: " + e.Msg }

// CorruptionDetected marks protocol failures as explicit detections —
// they abort the migration, they never commit a wrong image.
func (e *MigrateError) CorruptionDetected() bool { return true }

// Receiver is the standby end of the link: it reassembles image
// chunks, accumulates the checkpoint chain, and at the commit barrier
// materializes it and verifies the fingerprint. Until FrameCommit it
// holds everything provisionally; FrameAbort (or simply dropping the
// receiver) discards all of it — the rollback is free because nothing
// was applied.
type Receiver struct {
	chain    []*kernel.Checkpoint
	curRound uint32
	curBuf   []byte
	curNext  uint32
	wantFP   uint64
	haveFP   bool
	image    *kernel.Checkpoint
	aborted  bool
	// Crashed, when set, simulates a standby that died: every delivery
	// fails terminally (the fault campaign's standby-crash class).
	Crashed bool
}

// NewReceiver builds an empty standby.
func NewReceiver() *Receiver { return &Receiver{} }

// Aborted reports whether the source tore the migration down.
func (r *Receiver) Aborted() bool { return r.aborted }

// Committed returns the materialized post-cutover image, if the commit
// barrier completed.
func (r *Receiver) Committed() (*kernel.Checkpoint, bool) { return r.image, r.image != nil }

// Rounds reports how many complete images the standby holds.
func (r *Receiver) Rounds() int { return len(r.chain) }

// Deliver is the link's receive callback.
func (r *Receiver) Deliver(f *Frame) error {
	if r.Crashed {
		return &MigrateError{Msg: "standby crashed"}
	}
	switch f.Kind {
	case FrameHello:
		if len(r.chain) > 0 {
			return &MigrateError{Msg: "hello after images"}
		}
		return nil
	case FrameImage:
		return r.deliverImage(f)
	case FrameFingerprint:
		if len(f.Payload) != 8 {
			return &MigrateError{Msg: fmt.Sprintf("fingerprint payload %d bytes", len(f.Payload))}
		}
		r.wantFP = binary.LittleEndian.Uint64(f.Payload)
		r.haveFP = true
		return nil
	case FrameCommit:
		return r.commit()
	case FrameAbort:
		r.aborted = true
		r.chain, r.curBuf, r.image = nil, nil, nil
		r.haveFP = false
		return nil
	}
	return &MigrateError{Msg: "unexpected frame kind " + f.Kind.String()}
}

func (r *Receiver) deliverImage(f *Frame) error {
	if f.Chunk == 0 {
		r.curRound = f.Round
		r.curBuf = r.curBuf[:0]
		r.curNext = 0
	}
	if f.Round != r.curRound || f.Chunk != r.curNext {
		return &MigrateError{Msg: fmt.Sprintf("image chunk out of order: round %d chunk %d", f.Round, f.Chunk)}
	}
	r.curBuf = append(r.curBuf, f.Payload...)
	r.curNext++
	if r.curNext < f.Chunks {
		return nil
	}
	img := r.curBuf
	r.curBuf = nil // Decode may retain views of the buffer; never reuse it
	hdr, cp, err := persist.Decode(img)
	if err != nil {
		return err
	}
	if int(hdr.Gen) != len(r.chain)+1 {
		return &MigrateError{Msg: fmt.Sprintf("image round %d after %d rounds", hdr.Gen, len(r.chain))}
	}
	if cp.Delta == (len(r.chain) == 0) {
		return &MigrateError{Msg: "delta/base kind out of order"}
	}
	r.chain = append(r.chain, cp)
	return nil
}

func (r *Receiver) commit() error {
	if len(r.chain) == 0 {
		return &MigrateError{Msg: "commit without images"}
	}
	if !r.haveFP {
		return &MigrateError{Msg: "commit without fingerprint handshake"}
	}
	img, err := kernel.Materialize(r.chain)
	if err != nil {
		return err
	}
	if got := FingerprintImage(img); got != r.wantFP {
		return &MigrateError{Msg: fmt.Sprintf("fingerprint mismatch: source %016x standby %016x", r.wantFP, got)}
	}
	r.image = img
	return nil
}

// --- driver --------------------------------------------------------------

// Run drives one live migration of the kernel k onto the standby recv
// over link. step advances the source system by n cycles while a
// round's image is on the wire — the caller supplies its own scheduler
// tick (multi.System.Step for a mesh node, kernel.Run for a standalone
// one), so the source's execution schedule is EXACTLY what it would
// have been without the migration; Run itself never mutates k.
//
// Run never returns a committed report and an error together: any
// failure before the commit frame lands aborts cleanly (the standby
// discards, the source continues unharmed).
func Run(k *kernel.Kernel, link *Link, recv *Receiver, step func(cycles uint64), cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{}
	abort := func(reason string, err error) (*Report, error) {
		rep.Reason = reason
		rep.Link = link.Stats()
		// Best-effort teardown: tell the standby to discard. If the wire
		// is what failed, the standby's state is moot — it never commits
		// without the handshake.
		saved := link.Intercept
		link.Intercept = nil
		_ = link.Send(&Frame{Kind: FrameAbort})
		link.Intercept = saved
		return rep, err
	}

	hello := make([]byte, 8)
	binary.LittleEndian.PutUint32(hello, uint32(cfg.RoundBudget))
	binary.LittleEndian.PutUint32(hello[4:], uint32(cfg.ConvergePages))
	if err := link.Send(&Frame{Kind: FrameHello, Payload: hello}); err != nil {
		return abort("hello-failed", err)
	}

	src := newSource()
	var final *kernel.Checkpoint
	for round := 1; ; round++ {
		if cfg.AbortAtRound == round {
			return abort("abort-requested", nil)
		}
		if cfg.AbortIf != nil && cfg.AbortIf() {
			return abort("source-failed", nil)
		}
		cp, err := k.Checkpoint()
		if err != nil {
			return abort("capture-failed", err)
		}
		img := src.delta(cp, round)
		var buf bytes.Buffer
		hdr := persist.Header{
			Node:  uint32(cfg.Node),
			Gen:   uint64(round),
			Cycle: k.M.Cycle(),
			Delta: img.Delta,
		}
		if img.Delta {
			hdr.Parent = uint64(round - 1)
		} else {
			hdr.Parent = uint64(round)
		}
		if err := persist.Encode(&buf, hdr, img); err != nil {
			return abort("encode-failed", err)
		}
		pages := len(img.Resident) + len(img.Swapped)
		rd := Round{
			Pages:      pages,
			Tombstones: len(img.Dropped) + len(img.SwapDropped),
			Bytes:      buf.Len(),
		}
		wire0 := link.Stats().WireCycles
		if err := link.SendImage(uint32(round), buf.Bytes()); err != nil {
			rep.Rounds = append(rep.Rounds, rd)
			return abort("transfer-failed", err)
		}
		rd.WireCycles = link.Stats().WireCycles - wire0
		rep.Rounds = append(rep.Rounds, rd)

		converged := round > 1 && pages <= cfg.ConvergePages
		if converged || round >= cfg.RoundBudget {
			// Cutover barrier. The image just sent was captured with the
			// source stopped (we have not stepped since the capture), so
			// it IS the final delta; its wire time plus the handshake is
			// the stop-the-world window.
			final = cp
			rep.STWCycles = rd.WireCycles
			break
		}
		// Pre-copy: the source keeps executing while the image is in
		// flight — the wire time of the transfer, in the caller's own
		// scheduler ticks.
		step(rd.WireCycles)
		rep.SteppedCycles += rd.WireCycles
	}

	// Fingerprint handshake: the standby must materialize exactly the
	// source's final architectural state before the commit seals it.
	fpBuf := make([]byte, 8)
	binary.LittleEndian.PutUint64(fpBuf, FingerprintImage(final))
	wire0 := link.Stats().WireCycles
	if err := link.Send(&Frame{Kind: FrameFingerprint, Payload: fpBuf}); err != nil {
		return abort("handshake-failed", err)
	}
	if cfg.AbortAtCutover {
		rep.STWCycles = 0
		return abort("abort-requested", nil)
	}
	if cfg.AbortIf != nil && cfg.AbortIf() {
		rep.STWCycles = 0
		return abort("source-failed", nil)
	}
	if err := link.Send(&Frame{Kind: FrameCommit}); err != nil {
		return abort("commit-failed", err)
	}
	rep.STWCycles += link.Stats().WireCycles - wire0

	img, ok := recv.Committed()
	if !ok {
		return abort("standby-did-not-commit", &MigrateError{Msg: "commit frame delivered but standby holds no image"})
	}
	rep.Committed = true
	rep.Reason = "committed"
	rep.Image = img
	rep.Link = link.Stats()
	return rep, nil
}
