package migrate

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzMigrateFrame holds the wire-frame decoder to its contract:
// arbitrary bytes never panic, every rejection is a typed *FrameError,
// and anything the decoder accepts re-encodes to a frame the decoder
// accepts again with identical fields.
func FuzzMigrateFrame(f *testing.F) {
	seed := func(fr *Frame) {
		raw, err := EncodeFrame(fr)
		if err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		f.Add(raw)
	}
	seed(&Frame{Kind: FrameHello, Payload: []byte{1, 0, 0, 0, 8, 0, 0, 0}})
	seed(&Frame{Kind: FrameImage, Round: 1, Seq: 3, Chunk: 0, Chunks: 2, Payload: bytes.Repeat([]byte{0xa5}, 64)})
	seed(&Frame{Kind: FrameFingerprint, Seq: 9, Payload: []byte{1, 2, 3, 4, 5, 6, 7, 8}})
	seed(&Frame{Kind: FrameCommit, Seq: 10})
	seed(&Frame{Kind: FrameAbort, Seq: 11})
	f.Add([]byte(frameMagic))                      // magic then nothing
	f.Add([]byte{})                                // empty
	f.Add(bytes.Repeat([]byte{0xff}, frameHdrLen)) // wrong magic, full header

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrame(data)
		if err != nil {
			var fe *FrameError
			if !errors.As(err, &fe) {
				t.Fatalf("decode error is not *FrameError: %T %v", err, err)
			}
			if !fe.CorruptionDetected() {
				t.Fatal("FrameError must report CorruptionDetected")
			}
			return
		}
		raw, err := EncodeFrame(fr)
		if err != nil {
			t.Fatalf("accepted frame does not re-encode: %v", err)
		}
		fr2, err := DecodeFrame(raw)
		if err != nil {
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
		if fr2.Kind != fr.Kind || fr2.Round != fr.Round || fr2.Seq != fr.Seq ||
			fr2.Chunk != fr.Chunk || fr2.Chunks != fr.Chunks || !bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatalf("round-trip mismatch: %+v vs %+v", fr2, fr)
		}
	})
}
