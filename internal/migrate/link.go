package migrate

import "fmt"

// Fate is what the link's interceptor decides for one transmission
// attempt of one frame — mirroring noc.Transport's per-attempt fault
// hook so the migration fault campaign can hit the wire exactly where
// a real network would fail.
type Fate struct {
	// Drop loses the attempt entirely; the sender times out and
	// retransmits after backoff.
	Drop bool
	// Corrupt flips bits in the encoded frame; the receiver's CRC
	// rejects it and the sender retransmits.
	Corrupt bool
	// Truncate tears the frame short (a partial write); the receiver's
	// length/CRC checks reject it and the sender retransmits.
	Truncate bool
	// Duplicate delivers the attempt twice; the receiver's sequence
	// dedup suppresses the copy.
	Duplicate bool
}

// LinkStats counts what the wire did during one migration.
type LinkStats struct {
	FramesSent      uint64 // distinct frames handed to Send
	Attempts        uint64 // transmission attempts including retries
	Retransmits     uint64 // attempts beyond the first per frame
	DupSuppressed   uint64 // duplicate deliveries discarded by seq dedup
	CorruptDetected uint64 // attempts rejected by frame CRC/length checks
	GaveUp          uint64 // frames abandoned after MaxRetries
	WireCycles      uint64 // simulated cycles spent on the wire (incl. backoff)
	PayloadBytes    uint64 // payload bytes successfully delivered
}

// LinkError is the link's terminal failure: a frame exhausted its
// retries (the peer is unreachable) or the receiver itself failed
// (Err carries the receiver's error, unwrappable).
type LinkError struct {
	Seq      uint64
	Attempts int
	Msg      string
	Err      error
}

func (e *LinkError) Error() string {
	msg := e.Msg
	if e.Err != nil {
		msg = e.Err.Error()
	}
	return fmt.Sprintf("migrate: link: frame seq %d failed after %d attempts: %s", e.Seq, e.Attempts, msg)
}

func (e *LinkError) Unwrap() error { return e.Err }

// LinkConfig sizes the simulated wire.
type LinkConfig struct {
	// LatencyCycles is the fixed per-frame cost.
	LatencyCycles uint64
	// BytesPerCycle is the wire bandwidth; 0 means DefaultBytesPerCycle.
	BytesPerCycle uint64
	// RetransmitTimeout is the base backoff; attempt k waits
	// RetransmitTimeout << k cycles before retrying. 0 means
	// DefaultRetransmitTimeout.
	RetransmitTimeout uint64
	// MaxRetries bounds retransmissions per frame; 0 means
	// DefaultMaxRetries. Exhausting it makes the link give up, which
	// aborts the migration.
	MaxRetries int
}

// Link defaults, deliberately matching the noc transport's shape
// (window/RTO/backoff) so the two reliability layers read alike.
const (
	DefaultLatencyCycles     = 16
	DefaultBytesPerCycle     = 8
	DefaultRetransmitTimeout = 64
	DefaultMaxRetries        = 8
)

func (c LinkConfig) withDefaults() LinkConfig {
	if c.LatencyCycles == 0 {
		c.LatencyCycles = DefaultLatencyCycles
	}
	if c.BytesPerCycle == 0 {
		c.BytesPerCycle = DefaultBytesPerCycle
	}
	if c.RetransmitTimeout == 0 {
		c.RetransmitTimeout = DefaultRetransmitTimeout
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = DefaultMaxRetries
	}
	return c
}

// Link is a sequenced, simulated-lossy channel between the migration
// source and the standby. Loss is injected per attempt by Intercept;
// recovery is retransmission with exponential backoff and sequence
// dedup — a deliberately software-visible miniature of the noc
// transport's reliability loop, reused here because migration frames
// cross a real network in the deployment this models.
type Link struct {
	cfg LinkConfig
	// Intercept, when set, decides each attempt's fate. attempt is
	// 0-based per frame.
	Intercept func(f *Frame, attempt int) Fate
	// Deliver receives each successfully decoded, deduplicated frame.
	// An error from Deliver is terminal (the standby died): the link
	// does not retry it.
	Deliver func(f *Frame) error

	nextSeq   uint64
	delivered map[uint64]bool
	stats     LinkStats
}

// NewLink builds a link with cfg (zero fields take defaults).
func NewLink(cfg LinkConfig) *Link {
	return &Link{cfg: cfg.withDefaults(), delivered: make(map[uint64]bool)}
}

// Stats returns a snapshot of the wire counters.
func (l *Link) Stats() LinkStats { return l.stats }

// frameCost is the wire time of one attempt: fixed latency plus the
// serialization time of the encoded bytes.
func (l *Link) frameCost(n int) uint64 {
	return l.cfg.LatencyCycles + (uint64(n)+l.cfg.BytesPerCycle-1)/l.cfg.BytesPerCycle
}

// corruptBytes returns a copy of raw with a deterministic bit flipped
// in the payload region (or header if there is no payload).
func corruptBytes(raw []byte) []byte {
	c := append([]byte(nil), raw...)
	i := len(c) - 1
	if len(c) > frameHdrLen {
		i = frameHdrLen + (len(c)-frameHdrLen)/2
	}
	c[i] ^= 0x40
	return c
}

// Send transmits one frame reliably: encode, subject each attempt to
// the interceptor, retransmit with exponential backoff on loss or
// CRC rejection, dedup duplicates at the receiver. It returns nil once
// the frame is delivered exactly once, or a *LinkError if retries are
// exhausted or the receiver fails terminally.
func (l *Link) Send(f *Frame) error {
	f.Seq = l.nextSeq
	l.nextSeq++
	raw, err := EncodeFrame(f)
	if err != nil {
		return err
	}
	l.stats.FramesSent++

	for attempt := 0; ; attempt++ {
		if attempt > l.cfg.MaxRetries {
			l.stats.GaveUp++
			return &LinkError{Seq: f.Seq, Attempts: attempt, Msg: "retries exhausted"}
		}
		if attempt > 0 {
			l.stats.Retransmits++
			// Exponential backoff before the retry, capped by the shift
			// width to stay defined.
			shift := uint(attempt - 1)
			if shift > 16 {
				shift = 16
			}
			l.stats.WireCycles += l.cfg.RetransmitTimeout << shift
		}
		l.stats.Attempts++
		l.stats.WireCycles += l.frameCost(len(raw))

		var fate Fate
		if l.Intercept != nil {
			fate = l.Intercept(f, attempt)
		}
		if fate.Drop {
			continue
		}
		wire := raw
		if fate.Corrupt {
			wire = corruptBytes(raw)
		}
		if fate.Truncate {
			cut := len(wire) / 2
			wire = append([]byte(nil), wire[:cut]...)
		}
		copies := 1
		if fate.Duplicate {
			copies = 2
		}
		ok := false
		for c := 0; c < copies; c++ {
			got, derr := DecodeFrame(wire)
			if derr != nil {
				// Torn or corrupted on the wire: the receiver detected it
				// and discarded; the sender retransmits after backoff.
				l.stats.CorruptDetected++
				break
			}
			if l.delivered[got.Seq] {
				l.stats.DupSuppressed++
				ok = true
				continue
			}
			l.delivered[got.Seq] = true
			l.stats.PayloadBytes += uint64(len(got.Payload))
			if l.Deliver != nil {
				if err := l.Deliver(got); err != nil {
					return &LinkError{Seq: f.Seq, Attempts: attempt + 1, Err: err}
				}
			}
			ok = true
		}
		if ok {
			return nil
		}
	}
}

// SendImage chunks one encoded checkpoint image into frames and sends
// them in order, returning the delivered byte count.
func (l *Link) SendImage(round uint32, img []byte) error {
	for _, f := range chunkImage(round, img) {
		if err := l.Send(f); err != nil {
			return err
		}
	}
	return nil
}
