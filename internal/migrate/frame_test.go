package migrate

import (
	"errors"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payload := make([]byte, 301)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	f := &Frame{Kind: FrameImage, Round: 3, Seq: 42, Chunk: 1, Chunks: 5, Payload: payload}
	raw, err := EncodeFrame(f)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeFrame(raw)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Kind != f.Kind || got.Round != f.Round || got.Seq != f.Seq ||
		got.Chunk != f.Chunk || got.Chunks != f.Chunks {
		t.Fatalf("header mismatch: %+v vs %+v", got, f)
	}
	if string(got.Payload) != string(f.Payload) {
		t.Fatalf("payload mismatch")
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	raw, err := EncodeFrame(&Frame{Kind: FrameCommit, Seq: 7})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeFrame(raw)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Kind != FrameCommit || got.Payload != nil {
		t.Fatalf("got %+v", got)
	}
}

// Every single-bit flip and every truncation of a valid frame must be
// detected as a typed *FrameError, never accepted and never a panic.
func TestFrameCorruptionDetected(t *testing.T) {
	f := &Frame{Kind: FrameImage, Round: 1, Seq: 9, Chunks: 1, Payload: []byte("the quick brown fox")}
	raw, err := EncodeFrame(f)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	for i := 0; i < len(raw); i++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), raw...)
			mut[i] ^= 1 << bit
			if _, err := DecodeFrame(mut); err == nil {
				t.Fatalf("flip byte %d bit %d accepted", i, bit)
			} else {
				var fe *FrameError
				if !errors.As(err, &fe) || !fe.CorruptionDetected() {
					t.Fatalf("flip byte %d bit %d: not a FrameError: %v", i, bit, err)
				}
			}
		}
	}
	for cut := 0; cut < len(raw); cut++ {
		if _, err := DecodeFrame(raw[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestFrameEncodeRejectsBadKind(t *testing.T) {
	if _, err := EncodeFrame(&Frame{Kind: 0}); err == nil {
		t.Fatal("kind 0 accepted")
	}
	if _, err := EncodeFrame(&Frame{Kind: frameKindMax + 1}); err == nil {
		t.Fatal("out-of-range kind accepted")
	}
	big := make([]byte, MaxFramePayload+1)
	if _, err := EncodeFrame(&Frame{Kind: FrameImage, Chunks: 1, Payload: big}); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestChunkImage(t *testing.T) {
	img := make([]byte, MaxFramePayload*2+100)
	for i := range img {
		img[i] = byte(i)
	}
	frames := chunkImage(4, img)
	if len(frames) != 3 {
		t.Fatalf("want 3 chunks, got %d", len(frames))
	}
	var back []byte
	for i, f := range frames {
		if f.Chunk != uint32(i) || f.Chunks != 3 || f.Round != 4 || f.Kind != FrameImage {
			t.Fatalf("chunk %d header: %+v", i, f)
		}
		back = append(back, f.Payload...)
	}
	if string(back) != string(img) {
		t.Fatal("reassembly mismatch")
	}
	if got := chunkImage(1, nil); len(got) != 1 || len(got[0].Payload) != 0 {
		t.Fatalf("empty image should yield one empty chunk, got %d", len(got))
	}
}

func TestLinkRetransmitAndBackoff(t *testing.T) {
	var delivered []*Frame
	l := NewLink(LinkConfig{LatencyCycles: 10, BytesPerCycle: 100, RetransmitTimeout: 50})
	l.Deliver = func(f *Frame) error { delivered = append(delivered, f); return nil }
	l.Intercept = func(f *Frame, attempt int) Fate {
		return Fate{Drop: attempt < 2}
	}
	if err := l.Send(&Frame{Kind: FrameHello}); err != nil {
		t.Fatalf("send: %v", err)
	}
	st := l.Stats()
	if st.Retransmits != 2 || len(delivered) != 1 {
		t.Fatalf("retransmits %d delivered %d", st.Retransmits, len(delivered))
	}
	// Backoff: 50<<0 + 50<<1 = 150 cycles on top of 3 attempts' wire time.
	if st.WireCycles < 150 {
		t.Fatalf("backoff not accounted: %d", st.WireCycles)
	}
}

func TestLinkGiveUp(t *testing.T) {
	l := NewLink(LinkConfig{MaxRetries: 3})
	l.Intercept = func(f *Frame, attempt int) Fate { return Fate{Drop: true} }
	err := l.Send(&Frame{Kind: FrameHello})
	var le *LinkError
	if !errors.As(err, &le) {
		t.Fatalf("want LinkError, got %v", err)
	}
	if l.Stats().GaveUp != 1 {
		t.Fatalf("GaveUp = %d", l.Stats().GaveUp)
	}
}

func TestLinkDuplicateSuppressed(t *testing.T) {
	n := 0
	l := NewLink(LinkConfig{})
	l.Deliver = func(f *Frame) error { n++; return nil }
	l.Intercept = func(f *Frame, attempt int) Fate { return Fate{Duplicate: true} }
	if err := l.Send(&Frame{Kind: FrameHello}); err != nil {
		t.Fatalf("send: %v", err)
	}
	if n != 1 || l.Stats().DupSuppressed != 1 {
		t.Fatalf("delivered %d dupSuppressed %d", n, l.Stats().DupSuppressed)
	}
}

func TestLinkCorruptAndTruncateRecovered(t *testing.T) {
	for name, fate := range map[string]Fate{
		"corrupt":  {Corrupt: true},
		"truncate": {Truncate: true},
	} {
		n := 0
		l := NewLink(LinkConfig{})
		l.Deliver = func(f *Frame) error { n++; return nil }
		fateOnce := fate
		l.Intercept = func(f *Frame, attempt int) Fate {
			if attempt == 0 {
				return fateOnce
			}
			return Fate{}
		}
		if err := l.Send(&Frame{Kind: FrameHello, Payload: []byte("payload")}); err != nil {
			t.Fatalf("%s: send: %v", name, err)
		}
		st := l.Stats()
		if n != 1 || st.CorruptDetected != 1 || st.Retransmits != 1 {
			t.Fatalf("%s: delivered %d corrupt %d retransmits %d", name, n, st.CorruptDetected, st.Retransmits)
		}
	}
}
