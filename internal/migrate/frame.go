// Package migrate implements live migration of a running node onto a
// standby replica by iterative pre-copy over delta checkpoints.
//
// The protocol (docs/ROBUSTNESS.md):
//
//  1. Round 1 ships a full base image of the source kernel, captured
//     with kernel.Checkpoint (non-destructive reads — the migration
//     NEVER touches the dirty-bit plane, which belongs to the
//     concurrent persist chain).
//  2. While each round's image is on the wire, the source keeps
//     stepping; the next round ships only the pages whose content hash
//     changed since they were last shipped (plus tombstones), as a
//     kernel.Checkpoint delta image.
//  3. When the delta shrinks below the convergence threshold (or the
//     round budget expires), the cutover barrier runs: the source
//     stops stepping, the final delta and a fingerprint handshake
//     cross the wire, and the standby materializes the chain
//     (kernel.Materialize), verifies the fingerprint, and takes over.
//     The stop-the-world window is exactly the wire time of that final
//     exchange.
//  4. At ANY point before commit an abort rolls the standby back to
//     nothing and leaves the source bit-identical to never having
//     migrated — the source was only read and stepped, never written.
//
// Images travel in the persist package's checksummed section encoding,
// chunked into frames over a sequenced lossy link with retransmit and
// exponential backoff (link.go), so torn, dropped, duplicated or
// corrupted frames cost retransmissions, never the migration.
//
// This file is the wire-frame codec. DecodeFrame never panics on
// arbitrary bytes: every malformed input produces a typed *FrameError
// (FuzzMigrateFrame holds the line).
package migrate

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// FrameKind tags one wire frame.
type FrameKind uint8

const (
	// FrameHello opens a migration: payload carries the protocol
	// parameters digest (round budget, converge threshold) so a standby
	// from a different build refuses early.
	FrameHello FrameKind = 1
	// FrameImage carries one chunk of one round's encoded checkpoint
	// image (persist.Encode bytes).
	FrameImage FrameKind = 2
	// FrameFingerprint opens the cutover barrier: payload is the
	// source's 8-byte architectural fingerprint of the materialized
	// chain, which the standby must reproduce before commit.
	FrameFingerprint FrameKind = 3
	// FrameCommit seals the migration: the standby has verified the
	// fingerprint and owns the workload from here.
	FrameCommit FrameKind = 4
	// FrameAbort tears the migration down: the standby discards
	// everything it accumulated.
	FrameAbort FrameKind = 5

	frameKindMax = FrameAbort
)

func (k FrameKind) String() string {
	switch k {
	case FrameHello:
		return "hello"
	case FrameImage:
		return "image"
	case FrameFingerprint:
		return "fingerprint"
	case FrameCommit:
		return "commit"
	case FrameAbort:
		return "abort"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Frame header layout (little-endian), followed by the payload:
//
//	magic   "MMMIGR01"  8 bytes
//	kind    u8
//	round   u32  (pre-copy round, 1-based; 0 for control frames)
//	seq     u64  (link-wide sequence number)
//	chunk   u32  (chunk index within this round's image)
//	chunks  u32  (total chunks of this round's image)
//	plen    u32  (payload byte count)
//	pcrc    u32  (CRC-32/IEEE of the payload)
//	hcrc    u32  (CRC-32/IEEE of every header byte above)
const (
	frameMagic  = "MMMIGR01"
	frameHdrLen = 8 + 1 + 4 + 8 + 4 + 4 + 4 + 4 + 4

	// MaxFramePayload bounds one frame's payload so a multi-page image
	// crosses the wire as many frames — a torn or lost frame costs one
	// retransmission, not the round.
	MaxFramePayload = 2048
)

// Frame is one decoded wire frame.
type Frame struct {
	Kind          FrameKind
	Round         uint32
	Seq           uint64
	Chunk, Chunks uint32
	Payload       []byte
}

// FrameError is the decoder's only failure mode — torn, truncated,
// bit-rotted and impossible frames all map to one, never a panic.
type FrameError struct {
	Msg string
}

func (e *FrameError) Error() string { return "migrate: frame: " + e.Msg }

// CorruptionDetected marks frame-decode failures as explicit corruption
// detections, the convention shared with persist.FormatError and
// noc.HeaderError: the link layer counts these and retransmits.
func (e *FrameError) CorruptionDetected() bool { return true }

func frameErrf(format string, args ...any) *FrameError {
	return &FrameError{Msg: fmt.Sprintf(format, args...)}
}

// EncodeFrame serializes f. Payloads beyond MaxFramePayload are a
// caller bug and return an error (the chunker never produces them).
func EncodeFrame(f *Frame) ([]byte, error) {
	if f.Kind == 0 || f.Kind > frameKindMax {
		return nil, frameErrf("encode: unknown kind %d", f.Kind)
	}
	if len(f.Payload) > MaxFramePayload {
		return nil, frameErrf("encode: payload %d exceeds %d", len(f.Payload), MaxFramePayload)
	}
	b := make([]byte, 0, frameHdrLen+len(f.Payload))
	b = append(b, frameMagic...)
	b = append(b, byte(f.Kind))
	b = binary.LittleEndian.AppendUint32(b, f.Round)
	b = binary.LittleEndian.AppendUint64(b, f.Seq)
	b = binary.LittleEndian.AppendUint32(b, f.Chunk)
	b = binary.LittleEndian.AppendUint32(b, f.Chunks)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(f.Payload)))
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(f.Payload))
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	return append(b, f.Payload...), nil
}

// DecodeFrame parses one wire frame. Arbitrary input never panics: any
// malformed byte stream yields a *FrameError.
func DecodeFrame(data []byte) (*Frame, error) {
	if len(data) < frameHdrLen {
		return nil, frameErrf("truncated header: %d bytes", len(data))
	}
	if string(data[:8]) != frameMagic {
		return nil, frameErrf("bad magic")
	}
	hcrc := binary.LittleEndian.Uint32(data[frameHdrLen-4:])
	if crc32.ChecksumIEEE(data[:frameHdrLen-4]) != hcrc {
		return nil, frameErrf("header checksum mismatch")
	}
	f := &Frame{
		Kind:   FrameKind(data[8]),
		Round:  binary.LittleEndian.Uint32(data[9:]),
		Seq:    binary.LittleEndian.Uint64(data[13:]),
		Chunk:  binary.LittleEndian.Uint32(data[21:]),
		Chunks: binary.LittleEndian.Uint32(data[25:]),
	}
	if f.Kind == 0 || f.Kind > frameKindMax {
		return nil, frameErrf("unknown kind %d", f.Kind)
	}
	plen := binary.LittleEndian.Uint32(data[29:])
	pcrc := binary.LittleEndian.Uint32(data[33:])
	if plen > MaxFramePayload {
		return nil, frameErrf("payload length %d exceeds %d", plen, MaxFramePayload)
	}
	if uint32(len(data)-frameHdrLen) != plen {
		return nil, frameErrf("payload length %d disagrees with frame size %d", plen, len(data)-frameHdrLen)
	}
	if f.Chunks > 0 && f.Chunk >= f.Chunks {
		return nil, frameErrf("chunk %d of %d", f.Chunk, f.Chunks)
	}
	payload := data[frameHdrLen:]
	if crc32.ChecksumIEEE(payload) != pcrc {
		return nil, frameErrf("payload checksum mismatch")
	}
	if plen > 0 {
		f.Payload = append([]byte(nil), payload...)
	}
	return f, nil
}

// chunkImage splits one encoded image into FrameImage frames of at
// most MaxFramePayload bytes each. seq numbers are assigned by the
// link at send time.
func chunkImage(round uint32, img []byte) []*Frame {
	chunks := (len(img) + MaxFramePayload - 1) / MaxFramePayload
	if chunks == 0 {
		chunks = 1
	}
	frames := make([]*Frame, 0, chunks)
	for i := 0; i < chunks; i++ {
		lo := i * MaxFramePayload
		hi := lo + MaxFramePayload
		if hi > len(img) {
			hi = len(img)
		}
		frames = append(frames, &Frame{
			Kind: FrameImage, Round: round,
			Chunk: uint32(i), Chunks: uint32(chunks),
			Payload: img[lo:hi],
		})
	}
	return frames
}
