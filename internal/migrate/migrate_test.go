package migrate

import (
	"errors"
	"testing"

	"repro/internal/asm"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/word"
)

// testWorkload boots a store-heavy loop (the E28 chain workload's
// shape) that keeps dirtying its data segment, so pre-copy rounds have
// real deltas to converge on.
func testWorkload(t testing.TB) (*kernel.Kernel, machine.Config) {
	t.Helper()
	prog, err := asm.Assemble(`
		ldi r2, 400
		ldi r4, 0
	loop:
		ld   r5, r1, 0
		add  r5, r5, r2
		st   r1, 0, r5
		add  r4, r4, r5
		st   r1, 8, r4
		leai r6, r1, 16
		st   r6, 0, r6
		subi r2, r2, 1
		bnez r2, loop
		halt
	`)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	cfg := machine.MMachine()
	cfg.Clusters = 2
	cfg.SlotsPerCluster = 2
	cfg.PhysBytes = 4 << 20
	cfg.TrapCost = 10
	k, err := kernel.New(cfg)
	if err != nil {
		t.Fatalf("kernel: %v", err)
	}
	ip, err := k.LoadProgram(prog, false)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	seg, err := k.AllocSegment(4096)
	if err != nil {
		t.Fatalf("alloc: %v", err)
	}
	if _, err := k.Spawn(3, ip, map[int]word.Word{1: seg.Word()}); err != nil {
		t.Fatalf("spawn: %v", err)
	}
	return k, cfg
}

// fpThreads is the repo's architectural thread fingerprint (state,
// IP, instret, registers; timing excluded).
func fpThreads(threads []*machine.Thread) uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	for _, t := range threads {
		mix(uint64(t.ID))
		mix(uint64(t.State))
		mix(t.Instret)
		mix(t.IP.Addr())
		for _, r := range t.Regs {
			mix(r.Bits)
			if r.Tag {
				mix(1)
			} else {
				mix(0)
			}
		}
	}
	return h
}

// fast wire so pre-copy rounds step the source only a few dozen cycles.
func testLinkCfg() LinkConfig {
	return LinkConfig{LatencyCycles: 4, BytesPerCycle: 1024, RetransmitTimeout: 16}
}

const testWarmup = 200

// referenceFP runs the workload uninterrupted to completion.
func referenceFP(t *testing.T) uint64 {
	t.Helper()
	k, _ := testWorkload(t)
	k.Run(10_000_000)
	if !k.M.Done() {
		t.Fatal("reference run did not finish")
	}
	return fpThreads(k.M.Threads())
}

// TestMigrateCommit is the tentpole differential: a node migrated
// mid-run onto a standby completes on the standby with the
// architectural fingerprint of the run that never migrated.
func TestMigrateCommit(t *testing.T) {
	refFP := referenceFP(t)

	k, cfg := testWorkload(t)
	k.Run(testWarmup)
	recv := NewReceiver()
	link := NewLink(testLinkCfg())
	link.Deliver = recv.Deliver
	rep, err := Run(k, link, recv, func(n uint64) { k.Run(n) }, Config{Link: testLinkCfg()})
	if err != nil {
		t.Fatalf("migrate: %v", err)
	}
	if !rep.Committed || rep.Image == nil {
		t.Fatalf("not committed: %+v", rep)
	}
	if len(rep.Rounds) < 2 {
		t.Fatalf("expected iterative pre-copy, got %d rounds", len(rep.Rounds))
	}
	// Deltas must shrink: the final round is smaller than the base.
	if rep.Rounds[len(rep.Rounds)-1].Pages >= rep.Rounds[0].Pages {
		t.Fatalf("delta did not shrink: %+v", rep.Rounds)
	}
	if rep.STWCycles == 0 || rep.STWCycles >= rep.Rounds[0].WireCycles {
		t.Fatalf("STW window %d vs base transfer %d", rep.STWCycles, rep.Rounds[0].WireCycles)
	}

	k2, err := kernel.Restore(cfg, rep.Image)
	if err != nil {
		t.Fatalf("restore on standby: %v", err)
	}
	k2.Run(10_000_000)
	if !k2.M.Done() {
		t.Fatal("standby run did not finish")
	}
	if got := fpThreads(k2.M.Threads()); got != refFP {
		t.Fatalf("standby fingerprint %016x != reference %016x", got, refFP)
	}
}

// TestMigrateAbortInvariance aborts at every round boundary and
// mid-cutover; after each abort the source must be architecturally
// identical to a twin that never migrated but executed the same
// schedule, and must still complete with the reference fingerprint.
func TestMigrateAbortInvariance(t *testing.T) {
	refFP := referenceFP(t)

	// Learn how many rounds a clean migration of this workload takes, so
	// the abort sweep covers every boundary that actually occurs.
	probe, _ := testWorkload(t)
	probe.Run(testWarmup)
	probeRecv := NewReceiver()
	probeLink := NewLink(testLinkCfg())
	probeLink.Deliver = probeRecv.Deliver
	probeRep, err := Run(probe, probeLink, probeRecv, func(n uint64) { probe.Run(n) }, Config{Link: testLinkCfg()})
	if err != nil || !probeRep.Committed {
		t.Fatalf("probe migration failed: %v %+v", err, probeRep)
	}

	for round := 1; round <= len(probeRep.Rounds); round++ {
		k, _ := testWorkload(t)
		k.Run(testWarmup)
		recv := NewReceiver()
		link := NewLink(testLinkCfg())
		link.Deliver = recv.Deliver
		rep, err := Run(k, link, recv, func(n uint64) { k.Run(n) }, Config{Link: testLinkCfg(), AbortAtRound: round})
		if err != nil {
			t.Fatalf("round %d: abort returned error: %v", round, err)
		}
		if rep.Committed {
			t.Fatalf("round %d: committed despite abort", round)
		}
		if !recv.Aborted() {
			t.Fatalf("round %d: standby not torn down", round)
		}
		if _, ok := recv.Committed(); ok {
			t.Fatalf("round %d: standby holds an image after abort", round)
		}

		// Twin: same schedule, no migration.
		twin, _ := testWorkload(t)
		twin.Run(testWarmup + rep.SteppedCycles)
		cpK, err := k.Checkpoint()
		if err != nil {
			t.Fatalf("round %d: checkpoint: %v", round, err)
		}
		cpT, err := twin.Checkpoint()
		if err != nil {
			t.Fatalf("round %d: twin checkpoint: %v", round, err)
		}
		if FingerprintImage(cpK) != FingerprintImage(cpT) {
			t.Fatalf("round %d: aborted source diverged from never-migrated twin", round)
		}
		k.Run(10_000_000)
		if !k.M.Done() || fpThreads(k.M.Threads()) != refFP {
			t.Fatalf("round %d: aborted source did not complete with reference fingerprint", round)
		}
	}

	// Mid-cutover abort: final delta and fingerprint already on the
	// standby, commit withheld.
	k, _ := testWorkload(t)
	k.Run(testWarmup)
	recv := NewReceiver()
	link := NewLink(testLinkCfg())
	link.Deliver = recv.Deliver
	rep, err := Run(k, link, recv, func(n uint64) { k.Run(n) }, Config{Link: testLinkCfg(), AbortAtCutover: true})
	if err != nil {
		t.Fatalf("cutover abort returned error: %v", err)
	}
	if rep.Committed || !recv.Aborted() {
		t.Fatalf("cutover abort: committed=%v standbyAborted=%v", rep.Committed, recv.Aborted())
	}
	k.Run(10_000_000)
	if !k.M.Done() || fpThreads(k.M.Threads()) != refFP {
		t.Fatal("mid-cutover abort: source did not complete with reference fingerprint")
	}
}

// TestMigrateLossyLinkRecovers commits through a wire that drops,
// corrupts, truncates and duplicates frames — recovery is retransmit,
// never restart.
func TestMigrateLossyLinkRecovers(t *testing.T) {
	refFP := referenceFP(t)

	k, cfg := testWorkload(t)
	k.Run(testWarmup)
	recv := NewReceiver()
	link := NewLink(testLinkCfg())
	link.Deliver = recv.Deliver
	link.Intercept = func(f *Frame, attempt int) Fate {
		if attempt > 0 {
			return Fate{} // retry always clean: loss is transient
		}
		switch f.Seq % 5 {
		case 0:
			return Fate{Drop: true}
		case 1:
			return Fate{Corrupt: true}
		case 2:
			return Fate{Truncate: true}
		case 3:
			return Fate{Duplicate: true}
		}
		return Fate{}
	}
	rep, err := Run(k, link, recv, func(n uint64) { k.Run(n) }, Config{Link: testLinkCfg()})
	if err != nil {
		t.Fatalf("migrate over lossy link: %v", err)
	}
	if !rep.Committed {
		t.Fatalf("lossy link did not commit: %s", rep.Reason)
	}
	if rep.Link.Retransmits == 0 || rep.Link.CorruptDetected == 0 || rep.Link.DupSuppressed == 0 {
		t.Fatalf("loss not exercised: %+v", rep.Link)
	}
	k2, err := kernel.Restore(cfg, rep.Image)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	k2.Run(10_000_000)
	if !k2.M.Done() || fpThreads(k2.M.Threads()) != refFP {
		t.Fatal("lossy-link migration diverged")
	}
}

// TestMigrateStandbyCrashAborts: a dead standby fails the transfer;
// the migration aborts and the source is unharmed.
func TestMigrateStandbyCrashAborts(t *testing.T) {
	refFP := referenceFP(t)

	k, _ := testWorkload(t)
	k.Run(testWarmup)
	recv := NewReceiver()
	recv.Crashed = true
	link := NewLink(testLinkCfg())
	link.Deliver = recv.Deliver
	rep, err := Run(k, link, recv, func(n uint64) { k.Run(n) }, Config{Link: testLinkCfg()})
	if err == nil || rep.Committed {
		t.Fatalf("crashed standby committed: %+v", rep)
	}
	var le *LinkError
	if !errors.As(err, &le) {
		t.Fatalf("want LinkError, got %v", err)
	}
	k.Run(10_000_000)
	if !k.M.Done() || fpThreads(k.M.Threads()) != refFP {
		t.Fatal("source damaged by standby crash")
	}
}

// TestMigrateUnreachableStandbyAborts: every frame lost; retries
// exhaust, the link gives up, the migration aborts.
func TestMigrateUnreachableStandbyAborts(t *testing.T) {
	k, _ := testWorkload(t)
	k.Run(testWarmup)
	recv := NewReceiver()
	link := NewLink(LinkConfig{LatencyCycles: 4, BytesPerCycle: 1024, RetransmitTimeout: 8, MaxRetries: 2})
	link.Deliver = recv.Deliver
	link.Intercept = func(f *Frame, attempt int) Fate { return Fate{Drop: true} }
	rep, err := Run(k, link, recv, func(n uint64) { k.Run(n) }, Config{})
	if err == nil || rep.Committed {
		t.Fatalf("unreachable standby committed: %+v", rep)
	}
	if link.Stats().GaveUp == 0 {
		t.Fatal("link never gave up")
	}
}

// TestMigrateFingerprintMismatchAborts: a standby whose materialized
// image differs from the source's refuses the commit.
func TestMigrateFingerprintMismatchAborts(t *testing.T) {
	k, _ := testWorkload(t)
	k.Run(testWarmup)
	recv := NewReceiver()
	link := NewLink(testLinkCfg())
	link.Deliver = func(f *Frame) error {
		if err := recv.Deliver(f); err != nil {
			return err
		}
		// Corrupt the standby's copy of the base image after it passed
		// every wire check — only the cutover fingerprint can catch this.
		if f.Kind == FrameImage && len(recv.chain) == 1 && len(recv.chain[0].Resident) > 0 {
			recv.chain[0].Resident[0].Words[0].Bits ^= 1
		}
		return nil
	}
	rep, err := Run(k, link, recv, func(n uint64) { k.Run(n) }, Config{Link: testLinkCfg()})
	if err == nil || rep.Committed {
		t.Fatalf("fingerprint mismatch committed: %+v", rep)
	}
	var me *MigrateError
	if !errors.As(err, &me) || !me.CorruptionDetected() {
		t.Fatalf("want MigrateError, got %v", err)
	}
	if _, ok := recv.Committed(); ok {
		t.Fatal("standby kept the corrupt image")
	}
}

// TestMetricsAggregation: committed and aborted attempts land in the
// right counters and the STW histogram.
func TestMetricsAggregation(t *testing.T) {
	m := NewMetrics()
	m.Note(&Report{Committed: true, STWCycles: 100, Rounds: []Round{{Pages: 10, Bytes: 500}, {Pages: 2, Bytes: 80}}})
	m.Note(&Report{Committed: false, Rounds: []Round{{Pages: 10, Bytes: 500}}})
	if m.Started != 2 || m.Committed != 1 || m.Aborted != 1 {
		t.Fatalf("counters: %+v", m)
	}
	if m.Rounds != 3 || m.PagesSent != 22 || m.BytesSent != 1080 {
		t.Fatalf("volume: %+v", m)
	}
	if m.STW.Count() != 1 || m.STW.Max() != 100 {
		t.Fatalf("stw histogram: count %d max %d", m.STW.Count(), m.STW.Max())
	}
}
