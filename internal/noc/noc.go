// Package noc models the M-Machine's 3-dimensional mesh interconnect
// (Sec 3: "The M-Machine is a multicomputer with a 3-dimensional mesh
// interconnect and multithreaded processing nodes").
//
// Routing is dimension-order (X, then Y, then Z), the standard
// deadlock-free choice for meshes of the period. Timing uses link
// reservation: every directed link transmits one message per cycle, a
// router adds a fixed per-hop latency, and a message's arrival time is
// computed by reserving each link on its path no earlier than both the
// message's arrival at that router and the link's previous departure —
// which captures serialization and head-of-line contention without
// simulating individual flits.
//
// The network is protection-oblivious by design: capabilities travel
// inside pointer words like any other data, so no per-node protection
// state, ACLs, or translation tables appear anywhere in the fabric.
// That absence is the paper's point.
package noc

import (
	"errors"
	"fmt"

	"repro/internal/telemetry"
)

// ErrNodeRange reports a Send whose source or destination is not a node
// of this mesh. Library code returns it instead of panicking so a
// malformed caller (or a corrupted node id) degrades into an error the
// simulator can account for.
var ErrNodeRange = errors.New("noc: node out of range")

// Coord is a node position in the mesh.
type Coord struct{ X, Y, Z int }

// Config fixes mesh geometry and timing.
type Config struct {
	DimX, DimY, DimZ int
	// RouterLatency is the cycles a message spends per hop (switch +
	// link traversal).
	RouterLatency uint64
	// InjectLatency is the fixed cost to enter/exit the network
	// (network interface serialization).
	InjectLatency uint64
	// Transport configures the reliable end-to-end transport layered
	// over Deliver (see transport.go). Disabled by default: the raw
	// lossy semantics the fault-injection baselines measure are the
	// zero value.
	Transport TransportConfig
}

// DefaultConfig is a 2×2×2 mesh with 2-cycle hops, matching the scale
// of early M-Machine configurations.
func DefaultConfig() Config {
	return Config{DimX: 2, DimY: 2, DimZ: 2, RouterLatency: 2, InjectLatency: 1}
}

// Kind distinguishes the transaction types remote memory access needs.
type Kind uint8

const (
	// ReadReq asks the home node for the word at Addr.
	ReadReq Kind = iota
	// ReadReply carries the word back.
	ReadReply
	// WriteReq carries a word to store at Addr on the home node.
	WriteReq
	// WriteAck confirms the store.
	WriteAck
)

var kindNames = [...]string{ReadReq: "read-req", ReadReply: "read-reply", WriteReq: "write-req", WriteAck: "write-ack"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Stats aggregates network activity.
type Stats struct {
	Messages         uint64
	TotalHops        uint64
	TotalLatency     uint64 // sum of (arrival − injection)
	ContentionCycles uint64 // cycles spent waiting for busy links
	// Fault-injection outcomes (all zero without an Interceptor).
	Dropped     uint64 // messages lost in the fabric
	Duplicated  uint64 // messages delivered twice
	Corrupted   uint64 // messages failing the link CRC on arrival
	DelayCycles uint64 // extra injection delay imposed on messages
	// Reliable-transport outcomes (all zero unless Transport.Enabled).
	Retransmits     uint64 // frames re-sent after a timeout
	DupSuppressed   uint64 // duplicate frames rejected by sequence check
	TimeoutCycles   uint64 // cycles spent waiting out retransmit timeouts
	TransportGaveUp uint64 // messages abandoned after MaxRetries
}

// Fate is an Interceptor's verdict on one message. The zero Fate is a
// clean delivery.
type Fate struct {
	Drop      bool   // lose the message in the fabric
	Duplicate bool   // deliver it twice (second copy consumes bandwidth)
	Corrupt   bool   // flip payload bits; the link CRC catches it on arrival
	Delay     uint64 // hold the message this many cycles before injection
}

// Interceptor decides the fate of every message entering the network —
// the fault-injection point of docs/ROBUSTNESS.md. Implementations must
// be deterministic functions of their own state and the message
// parameters; the network consults the interceptor before any link
// reservation happens.
type Interceptor interface {
	Intercept(k Kind, src, dst int, now uint64) Fate
}

// PayloadError reports a message whose payload failed the link-level
// CRC on arrival — the delivery happened, the data cannot be trusted.
type PayloadError struct {
	Kind     Kind
	Src, Dst int
}

func (e *PayloadError) Error() string {
	return fmt.Sprintf("noc: %v %d→%d failed link CRC (payload corrupted)", e.Kind, e.Src, e.Dst)
}

// CorruptionDetected marks this error as an explicit
// corruption-detection signal for the fault-injection audit.
func (e *PayloadError) CorruptionDetected() bool { return true }

// link identifies a directed mesh link by its source router and
// direction.
type link struct {
	from Coord
	dim  int // 0=X 1=Y 2=Z
	pos  bool
}

// Network is a dimension-order-routed 3D mesh.
type Network struct {
	cfg   Config
	busy  map[link]uint64 // next free cycle per directed link
	stats Stats

	// Tracer, when non-nil, receives one cycle-stamped event per
	// injected message (Addr carries the source node, Code the
	// destination).
	Tracer *telemetry.Tracer

	// Interceptor, when non-nil, decides the fate of every message sent
	// through Deliver. Send itself stays fault-free so timing-model
	// callers are unaffected.
	Interceptor Interceptor

	// HistRetransmit, when non-nil, records each retransmission's
	// backoff delay (the cycles the sender waited out before re-sending)
	// — the transport-recovery latency distribution.
	HistRetransmit *telemetry.Histogram

	// Flight, when non-nil, receives a note per transport retransmission
	// and give-up — the mesh's contribution to a failure's run-up. All
	// FlightRecorder methods are nil-safe.
	Flight *telemetry.FlightRecorder

	// OnGiveUp, when non-nil, fires when the reliable transport abandons
	// a message after MaxRetries — the transport-give-up auto-dump
	// trigger.
	OnGiveUp func(k Kind, src, dst int, now uint64)

	// Reliable-transport state (transport.go): resolved configuration
	// and per-directed-channel sequence/ack state, allocated lazily.
	transport TransportConfig
	chans     map[chanKey]*chanState
}

// New validates the configuration and builds the network.
func New(cfg Config) (*Network, error) {
	if cfg.DimX < 1 || cfg.DimY < 1 || cfg.DimZ < 1 {
		return nil, fmt.Errorf("noc: non-positive mesh %dx%dx%d", cfg.DimX, cfg.DimY, cfg.DimZ)
	}
	if cfg.DimX*cfg.DimY*cfg.DimZ > MaxTransportNode+1 {
		return nil, fmt.Errorf("noc: mesh %dx%dx%d exceeds %d addressable nodes",
			cfg.DimX, cfg.DimY, cfg.DimZ, MaxTransportNode+1)
	}
	return &Network{cfg: cfg, busy: make(map[link]uint64), transport: cfg.Transport.withDefaults()}, nil
}

// Nodes returns the node count.
func (n *Network) Nodes() int { return n.cfg.DimX * n.cfg.DimY * n.cfg.DimZ }

// CoordOf converts a node id to its mesh coordinate.
func (n *Network) CoordOf(id int) Coord {
	return Coord{
		X: id % n.cfg.DimX,
		Y: id / n.cfg.DimX % n.cfg.DimY,
		Z: id / (n.cfg.DimX * n.cfg.DimY),
	}
}

// IDOf converts a coordinate to a node id.
func (n *Network) IDOf(c Coord) int {
	return c.X + n.cfg.DimX*(c.Y+n.cfg.DimY*c.Z)
}

// Hops returns the Manhattan distance between two nodes.
func (n *Network) Hops(src, dst int) int {
	a, b := n.CoordOf(src), n.CoordOf(dst)
	return abs(a.X-b.X) + abs(a.Y-b.Y) + abs(a.Z-b.Z)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// path returns the directed links a dimension-order route traverses.
func (n *Network) path(src, dst int) []link {
	cur := n.CoordOf(src)
	goal := n.CoordOf(dst)
	var links []link
	step := func(dim int, curv, goalv *int) {
		for *curv != *goalv {
			pos := *goalv > *curv
			links = append(links, link{from: cur, dim: dim, pos: pos})
			if pos {
				*curv++
			} else {
				*curv--
			}
		}
	}
	step(0, &cur.X, &goal.X)
	step(1, &cur.Y, &goal.Y)
	step(2, &cur.Z, &goal.Z)
	return links
}

// reserve claims the directed link l no earlier than the message's
// arrival t at its source router, accounting link contention, and
// returns the departure time from the router.
func (n *Network) reserve(l link, t uint64) uint64 {
	n.stats.TotalHops++
	if b := n.busy[l]; b > t {
		n.stats.ContentionCycles += b - t
		t = b
	}
	n.busy[l] = t + 1 // the link is occupied for one cycle
	return t + n.cfg.RouterLatency
}

// Send injects a message from src to dst at cycle now and returns its
// arrival cycle at the destination's network interface. Sending to the
// local node costs only the interface latency. The dimension-order
// route is walked inline (rather than materialized via path) so the
// remote-access fast path allocates nothing. Out-of-range nodes return
// an error wrapping ErrNodeRange.
func (n *Network) Send(src, dst int, now uint64) (uint64, error) {
	if src < 0 || src >= n.Nodes() || dst < 0 || dst >= n.Nodes() {
		return 0, n.rangeErr(src, dst)
	}
	n.stats.Messages++
	t := now + n.cfg.InjectLatency
	if src == dst {
		n.stats.TotalLatency += t - now
		return t, nil
	}
	cur, goal := n.CoordOf(src), n.CoordOf(dst)
	for cur.X != goal.X {
		pos := goal.X > cur.X
		t = n.reserve(link{from: cur, dim: 0, pos: pos}, t)
		if pos {
			cur.X++
		} else {
			cur.X--
		}
	}
	for cur.Y != goal.Y {
		pos := goal.Y > cur.Y
		t = n.reserve(link{from: cur, dim: 1, pos: pos}, t)
		if pos {
			cur.Y++
		} else {
			cur.Y--
		}
	}
	for cur.Z != goal.Z {
		pos := goal.Z > cur.Z
		t = n.reserve(link{from: cur, dim: 2, pos: pos}, t)
		if pos {
			cur.Z++
		} else {
			cur.Z--
		}
	}
	t += n.cfg.InjectLatency
	n.stats.TotalLatency += t - now
	if n.Tracer != nil && n.Tracer.Enabled(telemetry.EvNoCMsg) {
		n.Tracer.Emit(telemetry.Event{Cycle: now, Kind: telemetry.EvNoCMsg,
			Thread: -1, Cluster: -1, Domain: -1, Addr: uint64(src), Code: int64(dst),
			Detail: fmt.Sprintf("node %d -> %d (arrive %d)", src, dst, t)})
	}
	return t, nil
}

// rangeErr is the cold-path constructor for ErrNodeRange wrapping.
//
//go:noinline
func (n *Network) rangeErr(src, dst int) error {
	return fmt.Errorf("%w (%d→%d of %d)", ErrNodeRange, src, dst, n.Nodes())
}

// Deliver is Send behind the fault-injection interception point: the
// Interceptor (if any) decides the message's Fate before it enters the
// fabric.
//
//   - Drop: the message is lost; delivered is false and no links are
//     reserved (the fault consumed it at the interface).
//   - Delay: injection is held for Fate.Delay cycles first.
//   - Duplicate: a second copy traverses the fabric (consuming link
//     bandwidth); arrival is the first copy's.
//   - Corrupt: the message arrives on time but its payload fails the
//     link CRC — err is a *PayloadError and the data must not be used.
//
// With no interceptor installed, Deliver is exactly Send.
//
// With Config.Transport.Enabled, the reliable transport takes over: the
// same fault fates are applied per transmission attempt but retried
// through, so drop/duplicate/corrupt never reach the caller (see
// deliverReliable in transport.go).
func (n *Network) Deliver(k Kind, src, dst int, now uint64) (arrive uint64, delivered bool, err error) {
	if n.transport.Enabled {
		return n.deliverReliable(k, src, dst, now, 0)
	}
	if n.Interceptor == nil {
		arrive, err = n.Send(src, dst, now)
		return arrive, err == nil, err
	}
	fate := n.Interceptor.Intercept(k, src, dst, now)
	if fate.Drop {
		n.stats.Dropped++
		return 0, false, nil
	}
	if fate.Delay > 0 {
		n.stats.DelayCycles += fate.Delay
		now += fate.Delay
	}
	arrive, err = n.Send(src, dst, now)
	if err != nil {
		return 0, false, err
	}
	if fate.Duplicate {
		n.stats.Duplicated++
		if _, err := n.Send(src, dst, now); err != nil {
			return 0, false, err
		}
	}
	if fate.Corrupt {
		n.stats.Corrupted++
		return arrive, true, &PayloadError{Kind: k, Src: src, Dst: dst}
	}
	return arrive, true, nil
}

// SpanContext carries causal-trace identity alongside a message:
// Trace names the whole flow (canonically the root span's id), Span
// this network leg, Parent the span that caused it. The 64-bit
// transport header is fully allocated, so the ids travel as this
// documented side-band word while the header's FlagTraced bit marks
// the frame as carrying one (see transport.go).
type SpanContext struct {
	Trace, Span, Parent uint64
}

// DeliverSpan is Deliver with causal-span emission: when sc.Span is
// nonzero and the network's tracer has span kinds enabled, the leg is
// bracketed with EvSpanBegin (at injection, Cluster = src) and
// EvSpanEnd (at arrival, Cluster = dst) events carrying sc's ids, and
// transport frames carry FlagTraced. An undelivered message leaves its
// span open — visibly unfinished in the trace, which is the point.
// Timing, statistics, and fault semantics are identical to Deliver.
func (n *Network) DeliverSpan(k Kind, src, dst int, now uint64, sc SpanContext) (arrive uint64, delivered bool, err error) {
	traced := sc.Span != 0 && n.Tracer != nil && n.Tracer.Enabled(telemetry.EvSpanBegin)
	if !traced {
		return n.Deliver(k, src, dst, now)
	}
	n.Tracer.Emit(telemetry.Event{Cycle: now, Kind: telemetry.EvSpanBegin,
		Thread: -1, Cluster: src, Domain: -1, Code: int64(dst), Detail: k.String(),
		Trace: sc.Trace, Span: sc.Span, Parent: sc.Parent})
	if n.transport.Enabled {
		arrive, delivered, err = n.deliverReliable(k, src, dst, now, FlagTraced)
	} else {
		arrive, delivered, err = n.Deliver(k, src, dst, now)
	}
	if delivered {
		n.Tracer.Emit(telemetry.Event{Cycle: arrive, Kind: telemetry.EvSpanEnd,
			Thread: -1, Cluster: dst, Domain: -1, Code: int64(dst), Detail: k.String(),
			Trace: sc.Trace, Span: sc.Span, Parent: sc.Parent})
	}
	return arrive, delivered, err
}

// ZeroLoadLatency returns the uncontended latency between two nodes.
func (n *Network) ZeroLoadLatency(src, dst int) uint64 {
	if src == dst {
		return n.cfg.InjectLatency
	}
	return 2*n.cfg.InjectLatency + uint64(n.Hops(src, dst))*n.cfg.RouterLatency
}

// Stats returns a copy of the counters.
func (n *Network) Stats() Stats { return n.stats }

// RegisterMetrics publishes the network counters under prefix
// (canonically "noc"): noc.msgs, noc.hops, noc.latency_cycles,
// noc.contention_cycles, plus the derived mean latency per message.
func (n *Network) RegisterMetrics(reg *telemetry.Registry, prefix string) {
	reg.Counter(prefix+".msgs", func() uint64 { return n.stats.Messages })
	reg.Counter(prefix+".hops", func() uint64 { return n.stats.TotalHops })
	reg.Counter(prefix+".latency_cycles", func() uint64 { return n.stats.TotalLatency })
	reg.Counter(prefix+".contention_cycles", func() uint64 { return n.stats.ContentionCycles })
	reg.Counter(prefix+".dropped", func() uint64 { return n.stats.Dropped })
	reg.Counter(prefix+".duplicated", func() uint64 { return n.stats.Duplicated })
	reg.Counter(prefix+".corrupted", func() uint64 { return n.stats.Corrupted })
	reg.Counter(prefix+".delay_cycles", func() uint64 { return n.stats.DelayCycles })
	reg.Counter(prefix+".transport.retransmits", func() uint64 { return n.stats.Retransmits })
	reg.Counter(prefix+".transport.dup_suppressed", func() uint64 { return n.stats.DupSuppressed })
	reg.Counter(prefix+".transport.timeout_cycles", func() uint64 { return n.stats.TimeoutCycles })
	reg.Counter(prefix+".transport.gave_up", func() uint64 { return n.stats.TransportGaveUp })
	reg.Register(prefix+".mean_latency", func() float64 {
		if n.stats.Messages == 0 {
			return 0
		}
		return float64(n.stats.TotalLatency) / float64(n.stats.Messages)
	})
	if n.HistRetransmit != nil {
		reg.RegisterHistogram(prefix+".hist.retransmit_delay", n.HistRetransmit)
	}
}
