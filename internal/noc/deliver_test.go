package noc

import (
	"errors"
	"testing"
)

// These tests pin the raw (transport-disabled) Deliver semantics for
// interception combinations, so the reliable transport builds on a
// documented contract: Drop preempts every other fate, Delay applies
// before injection, Duplicate returns the first copy's arrival while
// the second consumes bandwidth, and Corrupt delivers on time with a
// typed *PayloadError.
func TestDeliverInterceptCombos(t *testing.T) {
	cases := []struct {
		name string
		fate Fate
		// expectations
		delivered  bool
		corrupted  bool
		extraDelay uint64 // arrival offset past zero-load
		msgs       uint64 // Send count through the fabric
		dropped    uint64
		duplicated uint64
		delayAcct  uint64 // DelayCycles accounted
	}{
		{name: "clean", fate: Fate{},
			delivered: true, msgs: 1},
		{name: "drop", fate: Fate{Drop: true},
			delivered: false, dropped: 1},
		{name: "delay", fate: Fate{Delay: 9},
			delivered: true, extraDelay: 9, msgs: 1, delayAcct: 9},
		{name: "corrupt", fate: Fate{Corrupt: true},
			delivered: true, corrupted: true, msgs: 1},
		{name: "corrupt+delay", fate: Fate{Corrupt: true, Delay: 5},
			delivered: true, corrupted: true, extraDelay: 5, msgs: 1, delayAcct: 5},
		{name: "duplicate", fate: Fate{Duplicate: true},
			delivered: true, msgs: 2, duplicated: 1},
		{name: "duplicate+corrupt", fate: Fate{Duplicate: true, Corrupt: true},
			delivered: true, corrupted: true, msgs: 2, duplicated: 1},
		{name: "duplicate+delay", fate: Fate{Duplicate: true, Delay: 3},
			delivered: true, extraDelay: 3, msgs: 2, duplicated: 1, delayAcct: 3},
		// Drop preempts everything: no delay accounting, no duplicate,
		// no fabric traffic at all.
		{name: "drop+delay+duplicate+corrupt", fate: Fate{Drop: true, Delay: 4, Duplicate: true, Corrupt: true},
			delivered: false, dropped: 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			n := mesh(t, 2, 2, 1)
			n.Interceptor = &scriptFaulter{fates: []Fate{c.fate}}
			const now = 50
			arrive, delivered, err := n.Deliver(ReadReq, 0, 3, now)
			if delivered != c.delivered {
				t.Fatalf("delivered = %v, want %v", delivered, c.delivered)
			}
			var pe *PayloadError
			if gotCorrupt := errors.As(err, &pe); gotCorrupt != c.corrupted {
				t.Fatalf("err = %v, corrupted want %v", err, c.corrupted)
			}
			if !c.corrupted && err != nil {
				t.Fatalf("unexpected error %v", err)
			}
			if c.delivered {
				if want := now + c.extraDelay + n.ZeroLoadLatency(0, 3); arrive != want {
					t.Fatalf("arrive = %d, want %d", arrive, want)
				}
			} else if arrive != 0 {
				t.Fatalf("undelivered message returned arrival %d", arrive)
			}
			st := n.Stats()
			if st.Messages != c.msgs || st.Dropped != c.dropped ||
				st.Duplicated != c.duplicated || st.DelayCycles != c.delayAcct {
				t.Fatalf("stats %+v, want msgs=%d dropped=%d duplicated=%d delay=%d",
					st, c.msgs, c.dropped, c.duplicated, c.delayAcct)
			}
		})
	}
}

// The duplicate's second copy reserves links after the first: on a
// shared route the copies serialize, and the returned arrival is the
// first copy's (the earlier one).
func TestDeliverDuplicateArrivalOrdering(t *testing.T) {
	n := mesh(t, 2, 1, 1)
	n.Interceptor = &scriptFaulter{fates: []Fate{{Duplicate: true}}}
	arrive, delivered, err := n.Deliver(WriteReq, 0, 1, 0)
	if err != nil || !delivered {
		t.Fatalf("Deliver = (%d, %v, %v)", arrive, delivered, err)
	}
	if want := n.ZeroLoadLatency(0, 1); arrive != want {
		t.Fatalf("arrive = %d, want first copy's %d", arrive, want)
	}
	// The second copy hit the busy link: one contention cycle.
	if st := n.Stats(); st.ContentionCycles == 0 {
		t.Fatalf("duplicate copy reserved no links: %+v", st)
	}
}

// A message sent after a dropped one sees no residual link state: the
// drop consumed the message at the interface, before any reservation.
func TestDeliverDropReservesNoLinks(t *testing.T) {
	n := mesh(t, 2, 1, 1)
	n.Interceptor = &scriptFaulter{fates: []Fate{{Drop: true}}}
	if _, delivered, _ := n.Deliver(ReadReq, 0, 1, 0); delivered {
		t.Fatal("dropped message delivered")
	}
	arrive, delivered, err := n.Deliver(ReadReq, 0, 1, 0)
	if err != nil || !delivered {
		t.Fatalf("follow-up Deliver = (%d, %v, %v)", arrive, delivered, err)
	}
	if want := n.ZeroLoadLatency(0, 1); arrive != want {
		t.Fatalf("follow-up arrival %d, want uncontended %d", arrive, want)
	}
	if st := n.Stats(); st.TotalHops != 1 {
		t.Fatalf("TotalHops = %d, want 1 (only the follow-up routed)", st.TotalHops)
	}
}
