package noc

import (
	"errors"
	"testing"
)

// scriptFaulter replays a fixed fate per Intercept call; calls past the
// script are clean deliveries.
type scriptFaulter struct {
	fates []Fate
	calls int
}

func (s *scriptFaulter) Intercept(k Kind, src, dst int, now uint64) Fate {
	i := s.calls
	s.calls++
	if i < len(s.fates) {
		return s.fates[i]
	}
	return Fate{}
}

// reliableMesh builds a 2×2×1 mesh with the transport enabled and the
// given fault script.
func reliableMesh(t *testing.T, tc TransportConfig, fates ...Fate) (*Network, *scriptFaulter) {
	t.Helper()
	tc.Enabled = true
	n, err := New(Config{DimX: 2, DimY: 2, DimZ: 1, RouterLatency: 2, InjectLatency: 1, Transport: tc})
	if err != nil {
		t.Fatal(err)
	}
	sf := &scriptFaulter{fates: fates}
	n.Interceptor = sf
	return n, sf
}

func TestTransportCleanDeliveryMatchesSend(t *testing.T) {
	n, _ := reliableMesh(t, TransportConfig{})
	ref := mesh(t, 2, 2, 1)
	want := send(t, ref, 0, 3, 100)
	arrive, delivered, err := n.Deliver(ReadReq, 0, 3, 100)
	if err != nil || !delivered {
		t.Fatalf("Deliver = (%d, %v, %v)", arrive, delivered, err)
	}
	if arrive != want {
		t.Fatalf("clean transport arrival %d, want Send's %d", arrive, want)
	}
	st := n.Stats()
	if st.Retransmits != 0 || st.DupSuppressed != 0 || st.TransportGaveUp != 0 {
		t.Fatalf("clean delivery touched transport counters: %+v", st)
	}
}

func TestTransportRetransmitsThroughDrop(t *testing.T) {
	n, sf := reliableMesh(t, TransportConfig{RetransmitTimeout: 16}, Fate{Drop: true})
	arrive, delivered, err := n.Deliver(ReadReq, 0, 1, 0)
	if err != nil || !delivered {
		t.Fatalf("Deliver = (%d, %v, %v), want recovered delivery", arrive, delivered, err)
	}
	// The first attempt is consumed at cycle 0; the retransmission
	// leaves 16 cycles later and arrives at 16 + zero-load.
	if want := 16 + n.ZeroLoadLatency(0, 1); arrive != want {
		t.Fatalf("arrival %d, want %d (timeout + zero-load)", arrive, want)
	}
	st := n.Stats()
	if st.Dropped != 1 || st.Retransmits != 1 || st.TimeoutCycles != 16 {
		t.Fatalf("stats %+v: want 1 drop, 1 retransmit, 16 timeout cycles", st)
	}
	if sf.calls != 2 {
		t.Fatalf("interceptor consulted %d times, want 2 (one per attempt)", sf.calls)
	}
}

func TestTransportRetransmitsThroughCorrupt(t *testing.T) {
	n, _ := reliableMesh(t, TransportConfig{RetransmitTimeout: 8}, Fate{Corrupt: true})
	arrive, delivered, err := n.Deliver(WriteReq, 0, 2, 0)
	if err != nil {
		t.Fatalf("corrupt frame surfaced to caller: %v", err)
	}
	if !delivered {
		t.Fatal("message not delivered")
	}
	if arrive <= n.ZeroLoadLatency(0, 2) {
		t.Fatalf("arrival %d not pushed past the CRC-failure timeout", arrive)
	}
	st := n.Stats()
	if st.Corrupted != 1 || st.Retransmits != 1 {
		t.Fatalf("stats %+v: want 1 corrupted, 1 retransmit", st)
	}
}

func TestTransportSuppressesDuplicate(t *testing.T) {
	n, _ := reliableMesh(t, TransportConfig{}, Fate{Duplicate: true})
	arrive, delivered, err := n.Deliver(ReadReply, 1, 0, 5)
	if err != nil || !delivered {
		t.Fatalf("Deliver = (%d, %v, %v)", arrive, delivered, err)
	}
	st := n.Stats()
	if st.Duplicated != 1 || st.DupSuppressed != 1 {
		t.Fatalf("stats %+v: want the duplicate copy sent and suppressed", st)
	}
	if st.Messages != 2 {
		t.Fatalf("Messages = %d, want 2 (duplicate consumes bandwidth)", st.Messages)
	}
}

// A retransmitted frame can itself be dropped: each attempt is
// intercepted independently, and backoff doubles per attempt.
func TestTransportDropOfRetransmittedFrame(t *testing.T) {
	n, sf := reliableMesh(t, TransportConfig{RetransmitTimeout: 10},
		Fate{Drop: true}, Fate{Drop: true})
	arrive, delivered, err := n.Deliver(ReadReq, 0, 1, 0)
	if err != nil || !delivered {
		t.Fatalf("Deliver = (%d, %v, %v)", arrive, delivered, err)
	}
	// Timeouts: 10 after attempt 0, 20 after attempt 1 → third attempt
	// injects at cycle 30.
	if want := 30 + n.ZeroLoadLatency(0, 1); arrive != want {
		t.Fatalf("arrival %d, want %d (exponential backoff)", arrive, want)
	}
	st := n.Stats()
	if st.Retransmits != 2 || st.TimeoutCycles != 30 || st.Dropped != 2 {
		t.Fatalf("stats %+v: want 2 retransmits over 30 timeout cycles", st)
	}
	if sf.calls != 3 {
		t.Fatalf("interceptor consulted %d times, want 3", sf.calls)
	}
}

func TestTransportDelayOnlyShiftsArrival(t *testing.T) {
	n, _ := reliableMesh(t, TransportConfig{}, Fate{Delay: 7})
	arrive, delivered, err := n.Deliver(WriteAck, 2, 0, 0)
	if err != nil || !delivered {
		t.Fatalf("Deliver = (%d, %v, %v)", arrive, delivered, err)
	}
	if want := 7 + n.ZeroLoadLatency(2, 0); arrive != want {
		t.Fatalf("arrival %d, want %d", arrive, want)
	}
	if st := n.Stats(); st.Retransmits != 0 || st.DelayCycles != 7 {
		t.Fatalf("stats %+v", st)
	}
}

func TestTransportGivesUpAfterMaxRetries(t *testing.T) {
	drops := make([]Fate, 4)
	for i := range drops {
		drops[i] = Fate{Drop: true}
	}
	n, sf := reliableMesh(t, TransportConfig{MaxRetries: 3, RetransmitTimeout: 1}, drops...)
	_, delivered, err := n.Deliver(ReadReq, 0, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if delivered {
		t.Fatal("delivered through an unbroken drop storm")
	}
	st := n.Stats()
	if st.TransportGaveUp != 1 || st.Retransmits != 3 {
		t.Fatalf("stats %+v: want give-up after 3 retries", st)
	}
	if sf.calls != 4 {
		t.Fatalf("interceptor consulted %d times, want 4 attempts", sf.calls)
	}
}

// Sequence numbers advance per directed channel and the receiver
// dedups across messages, not just within one.
func TestTransportSequencesPerChannel(t *testing.T) {
	n, _ := reliableMesh(t, TransportConfig{})
	for i := 0; i < 3; i++ {
		if _, ok, err := n.Deliver(ReadReq, 0, 1, uint64(i*10)); !ok || err != nil {
			t.Fatalf("msg %d: (%v, %v)", i, ok, err)
		}
	}
	cs := n.chanFor(0, 1)
	if cs.nextSeq != 3 || cs.recvNext != 3 || cs.ackSeq != 3 {
		t.Fatalf("channel state %+v, want seq/recv/ack all 3", cs)
	}
	if rev := n.chanFor(1, 0); rev.nextSeq != 0 {
		t.Fatalf("reverse channel advanced: %+v", rev)
	}
}

func TestTransportOutOfRange(t *testing.T) {
	n, _ := reliableMesh(t, TransportConfig{})
	if _, _, err := n.Deliver(ReadReq, 0, 99, 0); !errors.Is(err, ErrNodeRange) {
		t.Fatalf("err = %v, want ErrNodeRange", err)
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	cases := []Header{
		{},
		{Kind: WriteAck, Src: MaxTransportNode, Dst: 0, Seq: 65535, Ack: 1, Flags: FlagRetransmit},
		{Kind: ReadReply, Src: 7, Dst: 3, Seq: 0x8000, Ack: 0x7fff, Flags: FlagAckOnly | FlagRetransmit},
	}
	for _, h := range cases {
		v, err := h.Encode()
		if err != nil {
			t.Fatalf("%+v: %v", h, err)
		}
		got, err := DecodeHeader(v)
		if err != nil {
			t.Fatalf("%+v: decode: %v", h, err)
		}
		if got != h {
			t.Fatalf("round trip %+v → %+v", h, got)
		}
	}
}

func TestHeaderEncodeRejects(t *testing.T) {
	var he *HeaderError
	cases := []struct {
		name string
		h    Header
	}{
		{"kind", Header{Kind: 9}},
		{"src-neg", Header{Src: -1}},
		{"src-big", Header{Src: MaxTransportNode + 1}},
		{"dst-big", Header{Dst: 1 << 13}},
		{"flags", Header{Flags: 0x8}},
	}
	for _, c := range cases {
		if _, err := c.h.Encode(); !errors.As(err, &he) {
			t.Fatalf("%s: err = %v, want *HeaderError", c.name, err)
		}
	}
	// Decode rejects the unused kind and flag encodings.
	bad := uint64(WriteAck+1) | uint64(0x4)<<hdrFlagsShift
	if _, err := DecodeHeader(bad); !errors.As(err, &he) {
		t.Fatalf("decode bad kind: %v", err)
	}
	if _, err := DecodeHeader(uint64(0xC) << hdrFlagsShift); !errors.As(err, &he) {
		t.Fatalf("decode bad flags: %v", err)
	}
}

func TestSeqWindowArithmetic(t *testing.T) {
	cases := []struct {
		seq, base, size uint16
		in              bool
	}{
		{0, 0, 32, true},
		{31, 0, 32, true},
		{32, 0, 32, false},
		{65535, 0, 32, false},     // just behind the window
		{0, 65520, 32, true},      // wraps across 65535→0
		{15, 65520, 32, true},     // 65520+31 wraps to 15
		{16, 65520, 32, false},    // one past the wrapped edge
		{65519, 65520, 32, false}, // behind base
		{0x8000, 0, 32, false},    // far future reads as negative delta
	}
	for _, c := range cases {
		if got := SeqInWindow(c.seq, c.base, c.size); got != c.in {
			t.Fatalf("SeqInWindow(%d, %d, %d) = %v, want %v", c.seq, c.base, c.size, got, c.in)
		}
	}
}
