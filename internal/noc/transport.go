// Reliable transport over the lossy mesh.
//
// The raw fabric of noc.go loses, duplicates, corrupts, and delays
// messages when a fault interceptor says so — that is the point of the
// fault-injection campaign. This file layers an end-to-end transport
// over Deliver so those fault classes are *tolerated* instead of
// surfaced: every frame carries a sequence number and a cumulative ack
// in a 64-bit header, the sender retransmits on a cycle-based timeout
// with exponential backoff when a frame is dropped or fails the link
// CRC, and the receiver suppresses duplicate sequence numbers. Payloads
// are never lost and never delivered twice; only timing changes.
//
// The transport is off by default (Config.Transport.Enabled) so the
// lossy semantics the E14/E23 baselines measure stay reproducible
// bit-for-bit.
package noc

import (
	"fmt"

	"repro/internal/telemetry"
)

// Transport frame-header layout (64 bits):
//
//	bits  0..3   kind   (4 bits — ReadReq..WriteAck)
//	bits  4..15  src    (12 bits — node id)
//	bits 16..27  dst    (12 bits — node id)
//	bits 28..43  seq    (16 bits — per-channel sequence number)
//	bits 44..59  ack    (16 bits — cumulative ack for the reverse channel)
//	bits 60..63  flags  (4 bits — FlagRetransmit | FlagAckOnly)
const (
	hdrKindBits = 4
	hdrNodeBits = 12
	hdrSeqBits  = 16

	hdrSrcShift   = hdrKindBits
	hdrDstShift   = hdrSrcShift + hdrNodeBits
	hdrSeqShift   = hdrDstShift + hdrNodeBits
	hdrAckShift   = hdrSeqShift + hdrSeqBits
	hdrFlagsShift = hdrAckShift + hdrSeqBits

	// MaxTransportNode is the largest node id the 12-bit header field
	// can address.
	MaxTransportNode = 1<<hdrNodeBits - 1
)

// Transport header flags.
const (
	// FlagRetransmit marks a frame the sender is re-sending after a
	// timeout; receivers treat it like any other frame (dedup is by
	// sequence number), the flag exists for tracing and the audit.
	FlagRetransmit uint8 = 1 << 0
	// FlagAckOnly marks a frame carrying no payload, sent purely to
	// advance the peer's cumulative ack.
	FlagAckOnly uint8 = 1 << 1
	// FlagTraced marks a frame carrying a causal-span context in its
	// side-band word (see SpanContext in noc.go): the trace/span/parent
	// ids of the operation this frame is a leg of. The flag has no
	// effect on transport behavior — dedup and retransmission ignore it
	// — it exists so receivers and the audit can tell which frames were
	// part of a traced flow.
	FlagTraced uint8 = 1 << 2

	flagsMask = FlagRetransmit | FlagAckOnly | FlagTraced
)

// TransportConfig tunes the reliable-transport layer. The zero value
// disables it, preserving the raw lossy Deliver semantics.
type TransportConfig struct {
	// Enabled turns the transport on: Deliver retransmits through
	// drop/corrupt faults and suppresses duplicates instead of
	// surfacing them.
	Enabled bool
	// WindowSize is the receive-window span (in sequence numbers) used
	// by the duplicate-suppression arithmetic. 0 means 32.
	WindowSize uint16
	// RetransmitTimeout is the base retransmission timeout in cycles;
	// attempt k waits RetransmitTimeout << k (exponential backoff).
	// 0 means 64.
	RetransmitTimeout uint64
	// MaxRetries bounds the retransmission attempts per frame; after
	// MaxRetries timeouts the transport gives up and reports the frame
	// undelivered (the caller's watchdog territory). 0 means 8.
	MaxRetries int
}

// transportDefaults fills zero fields with the documented defaults.
func (c TransportConfig) withDefaults() TransportConfig {
	if c.WindowSize == 0 {
		c.WindowSize = 32
	}
	if c.RetransmitTimeout == 0 {
		c.RetransmitTimeout = 64
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 8
	}
	return c
}

// Header is the decoded transport frame header.
type Header struct {
	Kind     Kind
	Src, Dst int
	Seq, Ack uint16
	Flags    uint8
}

// HeaderError reports a header field that cannot be encoded or a frame
// word that does not decode to a valid header.
type HeaderError struct {
	Field string
	Value uint64
}

func (e *HeaderError) Error() string {
	return fmt.Sprintf("noc: transport header: bad %s %#x", e.Field, e.Value)
}

// Encode packs the header into its 64-bit frame word. Every field is
// range-checked; violations return a typed *HeaderError.
func (h Header) Encode() (uint64, error) {
	if h.Kind > WriteAck {
		return 0, &HeaderError{Field: "kind", Value: uint64(h.Kind)}
	}
	if h.Src < 0 || h.Src > MaxTransportNode {
		return 0, &HeaderError{Field: "src", Value: uint64(uint(h.Src))}
	}
	if h.Dst < 0 || h.Dst > MaxTransportNode {
		return 0, &HeaderError{Field: "dst", Value: uint64(uint(h.Dst))}
	}
	if h.Flags&^flagsMask != 0 {
		return 0, &HeaderError{Field: "flags", Value: uint64(h.Flags)}
	}
	return uint64(h.Kind) |
		uint64(h.Src)<<hdrSrcShift |
		uint64(h.Dst)<<hdrDstShift |
		uint64(h.Seq)<<hdrSeqShift |
		uint64(h.Ack)<<hdrAckShift |
		uint64(h.Flags)<<hdrFlagsShift, nil
}

// DecodeHeader unpacks a frame word, validating the kind and flags
// fields (the only ones with unused encodings). Valid frames round-trip:
// DecodeHeader(h.Encode()) == h and decoded.Encode() == word.
func DecodeHeader(v uint64) (Header, error) {
	h := Header{
		Kind:  Kind(v & (1<<hdrKindBits - 1)),
		Src:   int(v >> hdrSrcShift & MaxTransportNode),
		Dst:   int(v >> hdrDstShift & MaxTransportNode),
		Seq:   uint16(v >> hdrSeqShift),
		Ack:   uint16(v >> hdrAckShift),
		Flags: uint8(v >> hdrFlagsShift),
	}
	if h.Kind > WriteAck {
		return Header{}, &HeaderError{Field: "kind", Value: uint64(h.Kind)}
	}
	if h.Flags&^flagsMask != 0 {
		return Header{}, &HeaderError{Field: "flags", Value: uint64(h.Flags)}
	}
	return h, nil
}

// seqDelta returns the signed distance from b to a in 16-bit sequence
// space: positive when a is logically after b, correct across the
// 65535→0 wrap.
func seqDelta(a, b uint16) int {
	return int(int16(a - b))
}

// SeqInWindow reports whether seq lies in the half-open window
// [base, base+size) of 16-bit sequence space, wrap-safe.
func SeqInWindow(seq, base, size uint16) bool {
	d := seqDelta(seq, base)
	return d >= 0 && d < int(size)
}

// chanKey names a directed transport channel.
type chanKey struct{ src, dst int }

// chanState is one directed channel's connection state: the sender's
// next sequence number and the receiver's expectation plus cumulative
// ack, kept together because the simulator holds both endpoints.
type chanState struct {
	nextSeq  uint16 // next sequence number the sender will assign
	recvNext uint16 // receiver: lowest sequence number not yet accepted
	ackSeq   uint16 // receiver: cumulative ack (== recvNext once data flows)
}

// accept runs the receiver's dedup check for an arriving frame: the
// expected in-order sequence number is accepted and advances the
// cumulative ack; anything still inside the recent receive window is a
// duplicate and suppressed.
func (c *chanState) accept(seq, window uint16) bool {
	if seq == c.recvNext {
		c.recvNext++
		c.ackSeq = c.recvNext
		return true
	}
	// Behind the window edge: a stale retransmission or duplicated
	// copy. (Ahead is impossible in the synchronous model — frames are
	// injected in sequence order.)
	_ = SeqInWindow(seq, c.recvNext-window, window)
	return false
}

// chanFor returns (allocating on first use) the channel state for
// src→dst.
func (n *Network) chanFor(src, dst int) *chanState {
	if n.chans == nil {
		n.chans = make(map[chanKey]*chanState)
	}
	k := chanKey{src, dst}
	cs := n.chans[k]
	if cs == nil {
		cs = &chanState{}
		n.chans[k] = cs
	}
	return cs
}

// deliverReliable is Deliver with the transport enabled: one logical
// message becomes as many frame transmissions as the fault interceptor
// forces, and the caller sees a clean delivery (at a later arrival
// cycle) unless every retry is exhausted.
//
// Each transmission attempt consults the interceptor independently, so
// a retransmitted frame can itself be dropped, delayed, corrupted, or
// duplicated. Drop and corrupt trigger a timeout of
// RetransmitTimeout << attempt cycles and a retransmission; a
// duplicated frame's second copy is suppressed by the receiver's
// sequence check; delay simply pushes injection later. After
// MaxRetries timeouts the transport gives up and reports the message
// undelivered — the escalation path (node watchdog) takes over.
//
// extraFlags is OR-ed into every attempt's header (DeliverSpan passes
// FlagTraced); it never affects timing or dedup.
func (n *Network) deliverReliable(k Kind, src, dst int, now uint64, extraFlags uint8) (arrive uint64, delivered bool, err error) {
	if src < 0 || src >= n.Nodes() || dst < 0 || dst >= n.Nodes() {
		return 0, false, n.rangeErr(src, dst)
	}
	tc := n.transport
	cs := n.chanFor(src, dst)
	rev := n.chanFor(dst, src)
	seq := cs.nextSeq
	cs.nextSeq++
	for attempt := 0; ; attempt++ {
		flags := extraFlags
		if attempt > 0 {
			flags |= FlagRetransmit
		}
		// The frame header is encoded and decoded for every physical
		// transmission — the codec the fuzzer exercises is the one on
		// the wire path.
		frame, err := Header{Kind: k, Src: src, Dst: dst, Seq: seq, Ack: rev.ackSeq, Flags: flags}.Encode()
		if err != nil {
			return 0, false, err
		}
		hdr, err := DecodeHeader(frame)
		if err != nil {
			return 0, false, err
		}

		var fate Fate
		if n.Interceptor != nil {
			fate = n.Interceptor.Intercept(k, src, dst, now)
		}
		if fate.Delay > 0 {
			n.stats.DelayCycles += fate.Delay
			now += fate.Delay
		}
		lost := false
		if fate.Drop {
			n.stats.Dropped++
			lost = true // consumed at the interface; receiver sees nothing
		} else {
			arrive, err = n.Send(src, dst, now)
			if err != nil {
				return 0, false, err
			}
			if fate.Duplicate {
				// The second copy consumes fabric bandwidth and reaches
				// the receiver, which rejects its repeated sequence
				// number.
				n.stats.Duplicated++
				if _, err := n.Send(src, dst, now); err != nil {
					return 0, false, err
				}
			}
			if fate.Corrupt {
				// The link CRC rejects the frame on arrival; the
				// receiver discards it without acking, so the sender
				// times out exactly as for a drop.
				n.stats.Corrupted++
				lost = true
			}
		}
		if !lost {
			if cs.accept(hdr.Seq, tc.WindowSize) {
				if fate.Duplicate && !cs.accept(hdr.Seq, tc.WindowSize) {
					n.stats.DupSuppressed++
				}
				return arrive, true, nil
			}
			// A duplicate of an already-accepted frame (a prior copy
			// won the race): suppressed, but the payload was delivered.
			n.stats.DupSuppressed++
			return arrive, true, nil
		}
		if attempt >= tc.MaxRetries {
			n.stats.TransportGaveUp++
			if n.Flight != nil {
				n.Flight.Note(now, telemetry.EvNoCMsg,
					fmt.Sprintf("transport give-up: %v %d->%d seq=%d after %d attempts", k, src, dst, seq, attempt+1))
			}
			if n.OnGiveUp != nil {
				n.OnGiveUp(k, src, dst, now)
			}
			return 0, false, nil
		}
		backoff := tc.RetransmitTimeout << uint(attempt)
		n.stats.TimeoutCycles += backoff
		n.stats.Retransmits++
		if n.HistRetransmit != nil {
			n.HistRetransmit.Observe(backoff)
		}
		if n.Flight != nil {
			n.Flight.Note(now, telemetry.EvNoCMsg,
				fmt.Sprintf("transport retransmit: %v %d->%d seq=%d backoff=%d", k, src, dst, seq, backoff))
		}
		now += backoff
	}
}
