package noc

import (
	"errors"
	"testing"
	"testing/quick"
)

func mesh(t *testing.T, x, y, z int) *Network {
	t.Helper()
	n, err := New(Config{DimX: x, DimY: y, DimZ: z, RouterLatency: 2, InjectLatency: 1})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// send is Send with errors fatal — every in-range send in these tests
// must succeed.
func send(t *testing.T, n *Network, src, dst int, now uint64) uint64 {
	t.Helper()
	arr, err := n.Send(src, dst, now)
	if err != nil {
		t.Fatal(err)
	}
	return arr
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{DimX: 0, DimY: 1, DimZ: 1}); err == nil {
		t.Error("zero-dimension mesh accepted")
	}
}

func TestCoordIDRoundTrip(t *testing.T) {
	n := mesh(t, 3, 4, 5)
	if n.Nodes() != 60 {
		t.Fatalf("Nodes = %d", n.Nodes())
	}
	for id := 0; id < n.Nodes(); id++ {
		if got := n.IDOf(n.CoordOf(id)); got != id {
			t.Fatalf("id %d round-tripped to %d", id, got)
		}
	}
}

func TestHopsManhattan(t *testing.T) {
	n := mesh(t, 4, 4, 4)
	a := n.IDOf(Coord{0, 0, 0})
	b := n.IDOf(Coord{3, 2, 1})
	if n.Hops(a, b) != 6 {
		t.Errorf("Hops = %d, want 6", n.Hops(a, b))
	}
	if n.Hops(a, a) != 0 {
		t.Error("self distance != 0")
	}
	if n.Hops(a, b) != n.Hops(b, a) {
		t.Error("asymmetric distance")
	}
}

func TestPathLengthMatchesHops(t *testing.T) {
	n := mesh(t, 3, 3, 3)
	f := func(s, d uint8) bool {
		src, dst := int(s)%27, int(d)%27
		return len(n.path(src, dst)) == n.Hops(src, dst)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDimensionOrderRouting(t *testing.T) {
	n := mesh(t, 4, 4, 4)
	p := n.path(n.IDOf(Coord{0, 0, 0}), n.IDOf(Coord{2, 1, 3}))
	// X links first, then Y, then Z; never interleaved.
	lastDim := -1
	for _, l := range p {
		if l.dim < lastDim {
			t.Fatalf("route not dimension-ordered: %+v", p)
		}
		lastDim = l.dim
	}
	if len(p) != 6 {
		t.Fatalf("path length = %d", len(p))
	}
}

func TestZeroLoadLatency(t *testing.T) {
	n := mesh(t, 4, 1, 1)
	// 3 hops × 2 cycles + 2 × inject 1 = 8.
	if got := n.ZeroLoadLatency(0, 3); got != 8 {
		t.Errorf("ZeroLoadLatency = %d, want 8", got)
	}
	if got := n.ZeroLoadLatency(2, 2); got != 1 {
		t.Errorf("self latency = %d, want 1", got)
	}
}

func TestSendMatchesZeroLoadWhenIdle(t *testing.T) {
	for dst := 0; dst < 9; dst++ {
		n := mesh(t, 3, 3, 1) // fresh: no link reservations
		arr := send(t, n, 0, dst, 1000)
		want := 1000 + n.ZeroLoadLatency(0, dst)
		if arr != want {
			t.Errorf("Send(0→%d) = %d, want %d", dst, arr, want)
		}
	}
}

func TestLinkContentionSerializes(t *testing.T) {
	n := mesh(t, 2, 1, 1)
	// Two same-cycle messages over the single 0→1 link: the second is
	// delayed by the link reservation.
	a1 := send(t, n, 0, 1, 0)
	a2 := send(t, n, 0, 1, 0)
	if a2 <= a1 {
		t.Errorf("contending messages arrived %d, %d — no serialization", a1, a2)
	}
	if n.Stats().ContentionCycles == 0 {
		t.Error("no contention recorded")
	}
}

func TestDisjointPathsNoContention(t *testing.T) {
	n := mesh(t, 2, 2, 1)
	// 0→1 uses the X link at (0,0); 2→3 uses the X link at (0,1):
	// disjoint.
	a1 := send(t, n, 0, 1, 0)
	a2 := send(t, n, 2, 3, 0)
	if a1 != a2 {
		t.Errorf("disjoint sends %d vs %d", a1, a2)
	}
	if n.Stats().ContentionCycles != 0 {
		t.Errorf("phantom contention: %d", n.Stats().ContentionCycles)
	}
}

func TestLatencyGrowsWithDistance(t *testing.T) {
	n := mesh(t, 8, 1, 1)
	prev := uint64(0)
	for dst := 1; dst < 8; dst++ {
		l := n.ZeroLoadLatency(0, dst)
		if l <= prev {
			t.Fatalf("latency not monotone: %d then %d", prev, l)
		}
		prev = l
	}
}

func TestStatsAccounting(t *testing.T) {
	n := mesh(t, 2, 2, 2)
	send(t, n, 0, 7, 0) // 3 hops
	st := n.Stats()
	if st.Messages != 1 || st.TotalHops != 3 {
		t.Errorf("stats = %+v", st)
	}
	if st.TotalLatency != n.ZeroLoadLatency(0, 7) {
		t.Errorf("latency accounting = %d", st.TotalLatency)
	}
}

func TestKindNames(t *testing.T) {
	for _, k := range []Kind{ReadReq, ReadReply, WriteReq, WriteAck} {
		if k.String() == "" {
			t.Errorf("kind %d unnamed", k)
		}
	}
	if Kind(99).String() != "kind(99)" {
		t.Error("unknown kind name")
	}
}

func TestSendErrorsOutOfRange(t *testing.T) {
	n := mesh(t, 2, 1, 1)
	for _, c := range [][2]int{{0, 9}, {9, 0}, {-1, 1}, {0, -1}, {2, 0}} {
		if _, err := n.Send(c[0], c[1], 0); !errors.Is(err, ErrNodeRange) {
			t.Errorf("Send(%d→%d) err = %v, want ErrNodeRange", c[0], c[1], err)
		}
	}
	if st := n.Stats(); st.Messages != 0 {
		t.Errorf("rejected sends counted as messages: %+v", st)
	}
}
