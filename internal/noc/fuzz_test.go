package noc

import (
	"errors"
	"testing"
)

// FuzzTransport: the transport codec must never panic on arbitrary
// frame words; rejects are typed *HeaderError; accepted frames
// round-trip bit-exactly through Decode→Encode; and the sequence-window
// arithmetic stays consistent across the 16-bit wrap.
func FuzzTransport(f *testing.F) {
	// In-range frames of each kind, including wrap-edge sequence
	// numbers and both flags.
	for _, h := range []Header{
		{},
		{Kind: ReadReq, Src: 0, Dst: 7, Seq: 0, Ack: 0},
		{Kind: ReadReply, Src: 7, Dst: 0, Seq: 65535, Ack: 65535, Flags: FlagRetransmit},
		{Kind: WriteReq, Src: MaxTransportNode, Dst: MaxTransportNode, Seq: 0x8000, Ack: 0x7fff},
		{Kind: WriteAck, Src: 1, Dst: 2, Seq: 31, Ack: 32, Flags: FlagAckOnly},
	} {
		w, err := h.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(w, h.Seq, h.Ack, uint16(32))
	}
	// Hostile words: unused kind encodings, unknown flag bits.
	f.Add(^uint64(0), uint16(0), uint16(0), uint16(0))
	f.Add(uint64(WriteAck+1), uint16(1), uint16(2), uint16(3))
	f.Add(uint64(0xF)<<hdrFlagsShift, uint16(9), uint16(9), uint16(1))

	f.Fuzz(func(t *testing.T, frame uint64, seq, base, size uint16) {
		h, err := DecodeHeader(frame)
		if err != nil {
			var he *HeaderError
			if !errors.As(err, &he) {
				t.Fatalf("DecodeHeader(%#x): untyped reject %v", frame, err)
			}
		} else {
			// Every field of an accepted frame is covered by the
			// layout, so re-encoding must reproduce the word exactly.
			back, err := h.Encode()
			if err != nil {
				t.Fatalf("DecodeHeader(%#x) = %+v but Encode rejected: %v", frame, h, err)
			}
			if back != frame {
				t.Fatalf("round trip %#x -> %+v -> %#x", frame, h, back)
			}
			h2, err := DecodeHeader(back)
			if err != nil || h2 != h {
				t.Fatalf("re-decode: %+v -> %+v (%v)", h, h2, err)
			}
		}

		// Window arithmetic: wrap-safe and self-consistent.
		in := SeqInWindow(seq, base, size)
		d := seqDelta(seq, base)
		if in != (d >= 0 && d < int(size)) {
			t.Fatalf("SeqInWindow(%d, %d, %d) = %v disagrees with delta %d", seq, base, size, in, d)
		}
		if size > 0 && !SeqInWindow(base, base, size) {
			t.Fatalf("base %d not in its own window of size %d", base, size)
		}
		if SeqInWindow(seq, base, 0) {
			t.Fatalf("empty window contains %d", seq)
		}
		// Shifting both endpoints preserves membership (only the delta
		// matters), including across the 65535→0 wrap.
		if SeqInWindow(seq+0x4321, base+0x4321, size) != in {
			t.Fatalf("window membership not shift-invariant (%d, %d, %d)", seq, base, size)
		}

		// The receiver's dedup accept never panics and accepts each
		// in-order sequence number exactly once.
		cs := &chanState{recvNext: base}
		if cs.accept(base, size) != true {
			t.Fatalf("in-order seq %d rejected", base)
		}
		if cs.accept(base, size) {
			t.Fatalf("duplicate seq %d accepted twice", base)
		}
		if cs.recvNext != base+1 || cs.ackSeq != base+1 {
			t.Fatalf("accept did not advance: %+v", cs)
		}
	})
}
