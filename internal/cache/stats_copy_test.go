package cache

import (
	"testing"

	"repro/internal/vm"
)

// Regression test: the Stats() snapshot must never alias the live
// BankAccesses counters — neither against further accesses nor across a
// mid-run ResetStats. A snapshot that shared the slice would silently
// change under the caller (or, worse, let a caller mutate the live
// counters).
func TestStatsBankAccessesIsDefensiveCopy(t *testing.T) {
	space, err := vm.NewSpace(1<<20, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := space.EnsureMapped(0, 1<<16); err != nil {
		t.Fatal(err)
	}
	c, err := New(space, Config{Banks: 4, Sets: 16, Ways: 2, LineBytes: 32, HitLatency: 1, MissPenalty: 10})
	if err != nil {
		t.Fatal(err)
	}

	// Touch bank 0 a known number of times (line 0 maps to bank 0).
	for i := 0; i < 3; i++ {
		if _, _, err := c.Access(0, false, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	snap := c.Stats()
	if snap.BankAccesses[0] != 3 {
		t.Fatalf("bank0 = %d, want 3", snap.BankAccesses[0])
	}

	// Further traffic must not retroactively change the snapshot.
	for i := 0; i < 5; i++ {
		if _, _, err := c.Access(0, false, uint64(10+i)); err != nil {
			t.Fatal(err)
		}
	}
	if snap.BankAccesses[0] != 3 {
		t.Errorf("snapshot aliased live counters: bank0 = %d after more traffic", snap.BankAccesses[0])
	}

	// Mutating the snapshot must not corrupt the live counters.
	snap.BankAccesses[0] = 999
	if got := c.Stats().BankAccesses[0]; got != 8 {
		t.Errorf("live bank0 = %d, want 8 (snapshot mutation leaked in)", got)
	}

	// Resetting mid-run must leave earlier snapshots intact and start
	// the live counters from a fresh slice.
	before := c.Stats()
	c.ResetStats()
	if before.BankAccesses[0] != 8 {
		t.Errorf("pre-reset snapshot changed by ResetStats: %d", before.BankAccesses[0])
	}
	after := c.Stats()
	if after.BankAccesses[0] != 0 || after.Accesses != 0 {
		t.Errorf("reset left residue: %+v", after)
	}
	if _, _, err := c.Access(0, false, 100); err != nil {
		t.Fatal(err)
	}
	if before.BankAccesses[0] != 8 || after.BankAccesses[0] != 0 {
		t.Errorf("post-reset traffic aliased old snapshots: before=%d after=%d",
			before.BankAccesses[0], after.BankAccesses[0])
	}
}
