package cache

import (
	"testing"

	"repro/internal/vm"
	"repro/internal/word"
)

func testSpace(t *testing.T) *vm.Space {
	t.Helper()
	s, err := vm.NewSpace(1<<22, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EnsureMapped(0, 1<<20); err != nil {
		t.Fatal(err)
	}
	return s
}

func smallConfig() Config {
	return Config{Banks: 4, Sets: 8, Ways: 2, LineBytes: 32, HitLatency: 1, MissPenalty: 10}
}

func TestNewValidation(t *testing.T) {
	s := testSpace(t)
	bad := []Config{
		{Banks: 0, Sets: 8, Ways: 2, LineBytes: 32},
		{Banks: 4, Sets: 7, Ways: 2, LineBytes: 32},
		{Banks: 4, Sets: 8, Ways: 2, LineBytes: 24},
		{Banks: 4, Sets: 8, Ways: 2, LineBytes: 4},
	}
	for _, cfg := range bad {
		if _, err := New(s, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	c, err := New(s, MMachine())
	if err != nil {
		t.Fatal(err)
	}
	if c.SizeBytes() != 128<<10 {
		t.Errorf("MMachine cache size = %d, want 128KB", c.SizeBytes())
	}
}

func TestMissThenHit(t *testing.T) {
	c, _ := New(testSpace(t), smallConfig())
	done, hit, err := c.Access(0x1000, false, 0)
	if err != nil || hit {
		t.Fatalf("first access: hit=%v err=%v", hit, err)
	}
	if done != 1+10 {
		t.Errorf("miss done = %d, want 11", done)
	}
	done, hit, err = c.Access(0x1008, false, done)
	if err != nil || !hit {
		t.Fatalf("same-line access: hit=%v err=%v", hit, err)
	}
	if done != 11+1 {
		t.Errorf("hit done = %d, want 12", done)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Accesses != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestHitPathNeverTranslates(t *testing.T) {
	// The central single-address-space claim: once a line is resident,
	// references to it do not touch the TLB or page table.
	s := testSpace(t)
	c, _ := New(s, smallConfig())
	c.Access(0x2000, false, 0)
	before := s.Stats().Translations
	for i := 0; i < 10; i++ {
		c.Access(0x2000, false, uint64(100+i*10))
	}
	if s.Stats().Translations != before {
		t.Errorf("hit path performed %d translations", s.Stats().Translations-before)
	}
}

func TestBankInterleaving(t *testing.T) {
	c, _ := New(testSpace(t), smallConfig())
	// Consecutive lines land in consecutive banks.
	for i := uint64(0); i < 8; i++ {
		c.Access(i*32, false, 0)
	}
	st := c.Stats()
	for b, n := range st.BankAccesses {
		if n != 2 {
			t.Errorf("bank %d accesses = %d, want 2", b, n)
		}
	}
}

func TestBankConflictStalls(t *testing.T) {
	c, _ := New(testSpace(t), smallConfig())
	// Warm two lines in the same bank (stride banks*line = 128).
	d1, _, _ := c.Access(0x0000, false, 0)
	c.Access(0x0080, false, d1)
	c.ResetStats()
	// Two same-cycle hits to the same bank: second stalls one cycle.
	doneA, hitA, _ := c.Access(0x0000, false, 1000)
	doneB, hitB, _ := c.Access(0x0080, false, 1000)
	if !hitA || !hitB {
		t.Fatal("expected warm hits")
	}
	if doneA != 1001 {
		t.Errorf("first done = %d", doneA)
	}
	if doneB != 1002 {
		t.Errorf("conflicting done = %d, want 1002", doneB)
	}
	if c.Stats().ConflictCycles != 1 {
		t.Errorf("ConflictCycles = %d, want 1", c.Stats().ConflictCycles)
	}
}

func TestDifferentBanksNoConflict(t *testing.T) {
	c, _ := New(testSpace(t), smallConfig())
	d1, _, _ := c.Access(0x0000, false, 0)
	d2, _, _ := c.Access(0x0020, false, d1)
	c.ResetStats()
	_ = d2
	doneA, _, _ := c.Access(0x0000, false, 2000)
	doneB, _, _ := c.Access(0x0020, false, 2000)
	if doneA != 2001 || doneB != 2001 {
		t.Errorf("parallel bank hits done = %d, %d; want both 2001", doneA, doneB)
	}
	if c.Stats().ConflictCycles != 0 {
		t.Errorf("ConflictCycles = %d", c.Stats().ConflictCycles)
	}
}

func TestExternalInterfaceSerializesMisses(t *testing.T) {
	c, _ := New(testSpace(t), smallConfig())
	// Two same-cycle misses in different banks must serialize on the
	// single external memory interface.
	doneA, hitA, _ := c.Access(0x0000, false, 0)
	doneB, hitB, _ := c.Access(0x0020, false, 0)
	if hitA || hitB {
		t.Fatal("expected misses")
	}
	if doneA != 11 {
		t.Errorf("first miss done = %d", doneA)
	}
	if doneB != 21 {
		t.Errorf("second miss done = %d, want 21 (serialized)", doneB)
	}
	if c.Stats().MemWaitCycles == 0 {
		t.Error("no memory interface waiting recorded")
	}
}

func TestLRUReplacementWithinSet(t *testing.T) {
	cfg := smallConfig() // 4 banks × 8 sets × 2 ways, 32B lines
	c, _ := New(testSpace(t), cfg)
	// Three lines mapping to the same bank and set: stride =
	// banks*sets*line = 4*8*32 = 1024.
	a, b2, c3 := uint64(0), uint64(1024), uint64(2048)
	c.Access(a, false, 0)
	c.Access(b2, false, 100)
	c.Access(a, false, 200)  // refresh a
	c.Access(c3, false, 300) // evicts b2 (LRU)
	c.ResetStats()
	if _, hit, _ := c.Access(a, false, 400); !hit {
		t.Error("a evicted despite being MRU")
	}
	if _, hit, _ := c.Access(b2, false, 500); hit {
		t.Error("LRU line b2 survived")
	}
}

func TestWritebackPenalty(t *testing.T) {
	c, _ := New(testSpace(t), smallConfig())
	c.Access(0, true, 0)                    // dirty line at set 0 bank 0
	c.Access(1024, false, 100)              // second way
	d, hit, _ := c.Access(2048, false, 200) // evict dirty line
	if hit {
		t.Fatal("unexpected hit")
	}
	// writeback + fill = 2 × MissPenalty after the tag check cycle.
	if d != 200+1+20 {
		t.Errorf("done = %d, want 221", d)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("Writebacks = %d", c.Stats().Writebacks)
	}
}

func TestReadWriteWordFunctional(t *testing.T) {
	c, _ := New(testSpace(t), smallConfig())
	w := word.Tagged(0xabcdef)
	done, err := c.WriteWord(0x3000, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := c.ReadWord(0x3000, done)
	if err != nil || got != w {
		t.Errorf("ReadWord = %v, %v", got, err)
	}
}

func TestUnmappedMissReturnsError(t *testing.T) {
	s, _ := vm.NewSpace(1<<20, 16)
	c, _ := New(s, smallConfig())
	if _, _, err := c.Access(0x5000, false, 0); err == nil {
		t.Error("access to unmapped page succeeded")
	}
}

func TestInvalidateAll(t *testing.T) {
	c, _ := New(testSpace(t), smallConfig())
	for i := uint64(0); i < 16; i++ {
		c.Access(i*32, false, i*100)
	}
	if c.Live() != 16 {
		t.Fatalf("Live = %d", c.Live())
	}
	if n := c.InvalidateAll(); n != 16 {
		t.Errorf("InvalidateAll = %d", n)
	}
	if c.Live() != 0 {
		t.Error("lines survive InvalidateAll")
	}
}

func TestInvalidateRange(t *testing.T) {
	c, _ := New(testSpace(t), smallConfig())
	c.Access(0x1000, false, 0)
	c.Access(0x1020, false, 100)
	c.Access(0x8000, false, 200)
	if n := c.InvalidateRange(0x1000, 0x40); n != 2 {
		t.Errorf("InvalidateRange = %d, want 2", n)
	}
	if _, hit, _ := c.Access(0x8000, false, 300); !hit {
		t.Error("untouched line was invalidated")
	}
	if n := c.InvalidateRange(0x1000, 0); n != 0 {
		t.Errorf("zero-size invalidate = %d", n)
	}
}

func TestFourRequestsPerCycleAcrossBanks(t *testing.T) {
	// The M-Machine claim: the memory system accepts up to four
	// requests per cycle, one per bank.
	c, _ := New(testSpace(t), smallConfig())
	var warm uint64
	for i := uint64(0); i < 4; i++ {
		warm, _, _ = c.Access(i*32, false, warm)
	}
	c.ResetStats()
	for i := uint64(0); i < 4; i++ {
		done, hit, _ := c.Access(i*32, false, 5000)
		if !hit || done != 5001 {
			t.Errorf("bank %d: hit=%v done=%d", i, hit, done)
		}
	}
	if c.Stats().ConflictCycles != 0 {
		t.Errorf("conflicts among 4 distinct banks: %d", c.Stats().ConflictCycles)
	}
}
