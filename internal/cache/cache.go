// Package cache models the M-Machine's on-chip cache (Fig. 5): a
// virtually-addressed, virtually-tagged, multi-banked cache in front of
// the translation layer. Because guarded pointers carry all protection
// in the pointer and all processes share one address space, the cache
// needs no protection state, no process identifiers in its tags, and no
// TLB on the hit path — translation happens only on a miss (Sec 3).
//
// The timing model captures what the paper's arguments need:
//
//   - the cache is interleaved into banks, each able to accept one
//     request per cycle ("this allows the memory system to accept up to
//     four memory requests during each cycle");
//   - requests to a busy bank stall (bank conflicts);
//   - misses arbitrate for the single external memory interface, "which
//     can only handle one request at a time".
//
// Data always lives in the backing vm.Space; the cache tracks line
// residence, recency, and dirtiness, so functional reads/writes stay
// coherent by construction while the timing behaves like hardware.
package cache

import (
	"fmt"

	"repro/internal/telemetry"
	"repro/internal/vm"
	"repro/internal/word"
)

// Config fixes the cache geometry and timings.
type Config struct {
	Banks     int // number of independent banks (M-Machine: 4)
	Sets      int // sets per bank
	Ways      int // associativity
	LineBytes int // line size; also the bank-interleave granularity

	HitLatency  uint64 // cycles for a bank hit (M-Machine-ish: 1)
	MissPenalty uint64 // extra cycles for the external memory access
}

// MMachine is the configuration of the chip in Sec 3: 128KB split over
// 4 banks, 2-way associative, 32-byte (4-word) lines, 1-cycle hits and
// a 10-cycle external memory.
func MMachine() Config {
	return Config{Banks: 4, Sets: 512, Ways: 2, LineBytes: 32, HitLatency: 1, MissPenalty: 10}
}

// Stats aggregates the cache's event counters.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Writebacks uint64
	// ConflictCycles is the total cycles requests spent waiting for a
	// busy bank; MemWaitCycles the cycles spent queued on the external
	// memory interface.
	ConflictCycles uint64
	MemWaitCycles  uint64
	// BankAccesses counts per-bank traffic, exposing interleave balance.
	BankAccesses []uint64
}

type line struct {
	tag   uint64 // virtual line address (addr >> log2(LineBytes))
	valid bool
	dirty bool
	used  uint64 // LRU clock
}

type bank struct {
	sets      [][]line
	busyUntil uint64
}

// Cache is a banked, virtually addressed cache bound to a vm.Space.
type Cache struct {
	cfg   Config
	space *vm.Space
	banks []bank

	// Tracer, when non-nil, receives a cycle-stamped event per miss
	// that goes to the external interface (set by the owning machine).
	Tracer *telemetry.Tracer

	// HistTLBRefill, when non-nil, records the experienced latency
	// (completion − issue cycles) of every access whose translation had
	// to page-walk — the refill cost a TLB miss imposes on the reference
	// that took it, the distribution behind the paper's miss-handling
	// arguments. Nil (the default) costs one pointer check per miss.
	HistTLBRefill *telemetry.Histogram

	lineShift uint
	clock     uint64 // LRU clock, monotone per access
	memBusy   uint64 // external interface busy-until cycle
	stats     Stats
}

// New builds a cache over space with the given configuration.
func New(space *vm.Space, cfg Config) (*Cache, error) {
	if cfg.Banks <= 0 || cfg.Sets <= 0 || cfg.Ways <= 0 {
		return nil, fmt.Errorf("cache: non-positive geometry %+v", cfg)
	}
	if cfg.LineBytes < word.BytesPerWord || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		return nil, fmt.Errorf("cache: line size %d must be a power of two ≥ %d", cfg.LineBytes, word.BytesPerWord)
	}
	if cfg.Sets&(cfg.Sets-1) != 0 {
		return nil, fmt.Errorf("cache: sets %d must be a power of two", cfg.Sets)
	}
	c := &Cache{cfg: cfg, space: space}
	c.lineShift = uint(log2(uint64(cfg.LineBytes)))
	c.banks = make([]bank, cfg.Banks)
	for i := range c.banks {
		sets := make([][]line, cfg.Sets)
		for s := range sets {
			sets[s] = make([]line, cfg.Ways)
		}
		c.banks[i] = bank{sets: sets}
	}
	c.stats.BankAccesses = make([]uint64, cfg.Banks)
	return c, nil
}

func log2(v uint64) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// SizeBytes returns the total capacity.
func (c *Cache) SizeBytes() int { return c.cfg.Banks * c.cfg.Sets * c.cfg.Ways * c.cfg.LineBytes }

// bankOf selects the bank for an address: consecutive lines rotate
// around the banks, which is what lets four clusters streaming through
// memory hit four different banks in the same cycle.
func (c *Cache) bankOf(vaddr uint64) int {
	return int(vaddr >> c.lineShift % uint64(c.cfg.Banks))
}

// setOf selects the set within the bank.
func (c *Cache) setOf(vaddr uint64) int {
	return int(vaddr >> c.lineShift / uint64(c.cfg.Banks) % uint64(c.cfg.Sets))
}

func (c *Cache) lineTag(vaddr uint64) uint64 { return vaddr >> c.lineShift }

// Access performs the timing (not data) part of a reference to vaddr
// issued at cycle now: bank arbitration, tag check, miss handling, and
// replacement. It returns the cycle at which the request completes and
// whether it hit. Unmapped addresses return the translation error
// (raised at miss time — the hit path never translates).
func (c *Cache) Access(vaddr uint64, write bool, now uint64) (done uint64, hit bool, err error) {
	c.clock++
	c.stats.Accesses++
	b := &c.banks[c.bankOf(vaddr)]
	c.stats.BankAccesses[c.bankOf(vaddr)]++

	// Bank arbitration: one request per cycle per bank.
	start := now
	if b.busyUntil > start {
		c.stats.ConflictCycles += b.busyUntil - start
		start = b.busyUntil
	}

	set := b.sets[c.setOf(vaddr)]
	tag := c.lineTag(vaddr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			c.stats.Hits++
			set[i].used = c.clock
			if write {
				set[i].dirty = true
			}
			done = start + c.cfg.HitLatency
			b.busyUntil = start + 1
			return done, true, nil
		}
	}

	// Miss: translate (the only time translation happens) and fetch
	// over the single external interface.
	c.stats.Misses++
	if c.Tracer != nil && c.Tracer.Enabled(telemetry.EvCacheMiss) {
		c.Tracer.Emit(telemetry.Event{Cycle: now, Kind: telemetry.EvCacheMiss,
			Thread: -1, Cluster: -1, Domain: -1, Addr: vaddr})
	}
	_, tlbHit, err := c.space.Translate(vaddr)
	if err != nil {
		b.busyUntil = start + 1
		return start + c.cfg.HitLatency, false, err
	}

	// Choose a victim (invalid first, else LRU) and account a
	// writeback if it is dirty.
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range set {
		if !set[i].valid {
			victim, oldest = i, 0
			break
		}
		if set[i].used < oldest {
			victim, oldest = i, set[i].used
		}
	}
	penalty := c.cfg.MissPenalty
	if set[victim].valid && set[victim].dirty {
		c.stats.Writebacks++
		penalty += c.cfg.MissPenalty // write back then fill, serialized
	}
	set[victim] = line{tag: tag, valid: true, dirty: write, used: c.clock}

	// External memory interface: one request at a time.
	memStart := start + c.cfg.HitLatency // tag check happened first
	if c.memBusy > memStart {
		c.stats.MemWaitCycles += c.memBusy - memStart
		memStart = c.memBusy
	}
	done = memStart + penalty
	c.memBusy = done
	b.busyUntil = done // the bank is occupied by the fill
	if !tlbHit && c.HistTLBRefill != nil {
		c.HistTLBRefill.Observe(done - now)
	}
	return done, false, nil
}

// ReadWord performs a functional+timing read of the naturally aligned
// word at vaddr.
func (c *Cache) ReadWord(vaddr uint64, now uint64) (w word.Word, done uint64, err error) {
	done, _, err = c.Access(vaddr, false, now)
	if err != nil {
		return word.Word{}, done, err
	}
	w, err = c.space.ReadWord(vaddr)
	return w, done, err
}

// WriteWord performs a functional+timing write.
func (c *Cache) WriteWord(vaddr uint64, w word.Word, now uint64) (done uint64, err error) {
	done, _, err = c.Access(vaddr, true, now)
	if err != nil {
		return done, err
	}
	return done, c.space.WriteWord(vaddr, w)
}

// InvalidateAll empties the cache (used when a baseline model without
// address-space identifiers must purge on a context switch, Sec 5.1).
// It returns the number of lines invalidated.
func (c *Cache) InvalidateAll() int {
	n := 0
	for bi := range c.banks {
		for si := range c.banks[bi].sets {
			set := c.banks[bi].sets[si]
			for i := range set {
				if set[i].valid {
					set[i].valid = false
					n++
				}
			}
		}
	}
	return n
}

// InvalidateRange removes lines overlapping [vaddr, vaddr+size) — the
// cache side of revocation-by-unmap.
func (c *Cache) InvalidateRange(vaddr, size uint64) int {
	if size == 0 {
		return 0
	}
	n := 0
	first := c.lineTag(vaddr)
	last := c.lineTag(vaddr + size - 1)
	for bi := range c.banks {
		for si := range c.banks[bi].sets {
			set := c.banks[bi].sets[si]
			for i := range set {
				if set[i].valid && set[i].tag >= first && set[i].tag <= last {
					set[i].valid = false
					n++
				}
			}
		}
	}
	return n
}

// Live returns the number of valid lines.
func (c *Cache) Live() int {
	n := 0
	for bi := range c.banks {
		for si := range c.banks[bi].sets {
			for _, l := range c.banks[bi].sets[si] {
				if l.valid {
					n++
				}
			}
		}
	}
	return n
}

// Stats returns a copy of the counters. The BankAccesses slice is
// always a fresh defensive copy: callers may hold the snapshot across a
// later ResetStats (or further accesses) without ever aliasing the live
// per-bank counters.
func (c *Cache) Stats() Stats {
	s := c.stats
	s.BankAccesses = make([]uint64, len(c.stats.BankAccesses))
	copy(s.BankAccesses, c.stats.BankAccesses)
	return s
}

// ResetStats zeroes the counters, keeping contents. The live
// BankAccesses slice is replaced, never shared, so snapshots taken
// before the reset keep their values.
func (c *Cache) ResetStats() {
	c.stats = Stats{BankAccesses: make([]uint64, c.cfg.Banks)}
}

// RegisterMetrics publishes the cache counters under prefix
// (canonically "cache.l1"): hits, misses, writebacks, conflict cycles,
// memory-interface wait cycles, and per-bank access counts.
func (c *Cache) RegisterMetrics(reg *telemetry.Registry, prefix string) {
	reg.Counter(prefix+".accesses", func() uint64 { return c.stats.Accesses })
	reg.Counter(prefix+".hits", func() uint64 { return c.stats.Hits })
	reg.Counter(prefix+".misses", func() uint64 { return c.stats.Misses })
	reg.Counter(prefix+".writebacks", func() uint64 { return c.stats.Writebacks })
	reg.Counter(prefix+".conflict_cycles", func() uint64 { return c.stats.ConflictCycles })
	reg.Counter(prefix+".mem_wait_cycles", func() uint64 { return c.stats.MemWaitCycles })
	for i := 0; i < c.cfg.Banks; i++ {
		bank := i
		reg.Counter(fmt.Sprintf("%s.bank.%d.accesses", prefix, bank), func() uint64 {
			return c.stats.BankAccesses[bank]
		})
	}
	if c.HistTLBRefill != nil {
		reg.RegisterHistogram(prefix+".hist.tlb_refill", c.HistTLBRefill)
	}
}
