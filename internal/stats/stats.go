// Package stats provides the small reporting toolkit the experiment
// harness uses: fixed-width tables (one per reproduced figure/claim)
// and simple histograms/summaries for latency and fragmentation
// distributions.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Table renders rows of results in aligned columns, the way the
// experiment harness prints each reproduced table/figure.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are rendered with %v, floats with 3
// significant decimals.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		var row strings.Builder
		for i, c := range cells {
			if i > 0 {
				row.WriteString("  ")
			}
			fmt.Fprintf(&row, "%-*s", widths[i], c)
		}
		b.WriteString(strings.TrimRight(row.String(), " "))
		b.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	return b.String()
}

// Summary holds order statistics over a sample set.
type Summary struct {
	Count          int
	Min, Max, Mean float64
	P50, P90, P99  float64
}

// Summarize computes a Summary of xs (xs is not modified). Non-finite
// samples (NaN, ±Inf) are discarded — a single poisoned division in an
// experiment must not wipe out the whole summary — and Count reports
// only the samples actually summarized.
func Summarize(xs []float64) Summary {
	s := make([]float64, 0, len(xs))
	for _, v := range xs {
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			s = append(s, v)
		}
	}
	if len(s) == 0 {
		return Summary{}
	}
	sort.Float64s(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	pct := func(p float64) float64 {
		i := int(p * float64(len(s)-1))
		return s[i]
	}
	return Summary{
		Count: len(s),
		Min:   s[0],
		Max:   s[len(s)-1],
		Mean:  sum / float64(len(s)),
		P50:   pct(0.50),
		P90:   pct(0.90),
		P99:   pct(0.99),
	}
}

// Histogram counts samples in power-of-two buckets, used for segment
// size and latency distributions.
type Histogram struct {
	buckets map[int]int
	count   int
}

// Add records a sample (bucketed by floor(log2(v)); v==0 lands in
// bucket -1).
func (h *Histogram) Add(v uint64) {
	if h.buckets == nil {
		h.buckets = make(map[int]int)
	}
	b := -1
	for v > 0 {
		b++
		v >>= 1
	}
	h.buckets[b]++
	h.count++
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int { return h.count }

// Bucket returns the count in the bucket for values in [2^b, 2^(b+1)).
func (h *Histogram) Bucket(b int) int { return h.buckets[b] }

// String renders non-empty buckets in order.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "(empty)"
	}
	var keys []int
	for k := range h.buckets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var b strings.Builder
	for _, k := range keys {
		lo := uint64(0)
		if k >= 0 {
			lo = 1 << k
		}
		fmt.Fprintf(&b, "  [%d, …): %d\n", lo, h.buckets[k])
	}
	return b.String()
}

// Ratio formats a/b as a factor string like "3.42x"; "inf" if b is 0.
func Ratio(a, b float64) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2fx", a/b)
}
