package stats

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("T1: demo", "scheme", "cycles", "ratio")
	tb.AddRow("guarded", 100, 1.0)
	tb.AddRow("paging", 250, 2.5)
	s := tb.String()
	for _, want := range []string{"T1: demo", "scheme", "guarded", "250", "2.50"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
	if tb.Rows() != 2 {
		t.Errorf("Rows = %d", tb.Rows())
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("line count = %d:\n%s", len(lines), s)
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow(1)
	if strings.HasPrefix(tb.String(), "\n") {
		t.Error("leading blank line for untitled table")
	}
}

func TestFloatFormatting(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(0.0)
	tb.AddRow(0.1234567)
	tb.AddRow(12.3456)
	tb.AddRow(12345.6)
	s := tb.String()
	for _, want := range []string{"0\n", "0.1235", "12.35", "12346"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
	tb2 := NewTable("", "v")
	tb2.AddRow(float32(2.5))
	if !strings.Contains(tb2.String(), "2.50") {
		t.Error("float32 not formatted")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{5, 1, 3, 2, 4})
	if s.Count != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.P50 != 3 {
		t.Errorf("summary = %+v", s)
	}
	if Summarize(nil).Count != 0 {
		t.Error("empty summary")
	}
	// Summarize must not mutate input.
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 {
		t.Error("input mutated")
	}
}

func TestSummarizePercentiles(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	s := Summarize(xs)
	if s.P90 < 85 || s.P90 > 95 || s.P99 < 95 {
		t.Errorf("percentiles: %+v", s)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	h.Add(0) // bucket -1
	h.Add(1) // bucket 0
	h.Add(2) // bucket 1
	h.Add(3) // bucket 1
	h.Add(1024)
	if h.Count() != 5 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Bucket(1) != 2 {
		t.Errorf("Bucket(1) = %d", h.Bucket(1))
	}
	if h.Bucket(10) != 1 {
		t.Errorf("Bucket(10) = %d", h.Bucket(10))
	}
	if !strings.Contains(h.String(), "1024") {
		t.Errorf("histogram string:\n%s", h.String())
	}
	var empty Histogram
	if empty.String() != "(empty)" {
		t.Error("empty histogram rendering")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(10, 4) != "2.50x" {
		t.Errorf("Ratio = %s", Ratio(10, 4))
	}
	if Ratio(1, 0) != "inf" {
		t.Error("Ratio by zero")
	}
}
