package stats

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestParseTablesRoundTrip(t *testing.T) {
	tb := NewTable("E5: cache schemes", "scheme", "cycles", "ratio", "note")
	tb.AddRow("guarded", 100, 1.0, "baseline")
	tb.AddRow("flush-all", 2500, 25.0, "flush on domain switch")
	tb.AddRow("x", 1, 0.0, "")

	got := ParseTables(tb.String())
	if len(got) != 1 {
		t.Fatalf("tables parsed = %d, want 1\n%s", len(got), tb.String())
	}
	if !reflect.DeepEqual(got[0], tb.Data()) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got[0], tb.Data())
	}
}

func TestParseTablesMultipleAndUntitled(t *testing.T) {
	a := NewTable("first table", "k", "v")
	a.AddRow("rows", 2)
	a.AddRow("cols", 2)
	b := NewTable("", "only")
	b.AddRow("cell")

	report := a.String() + "\nprose between tables\n\n" + b.String() + "\ntrailing prose\n"
	got := ParseTables(report)
	if len(got) != 2 {
		t.Fatalf("tables parsed = %d, want 2:\n%s", len(got), report)
	}
	if got[0].Title != "first table" || len(got[0].Rows) != 2 {
		t.Errorf("table 0 = %+v", got[0])
	}
	if got[1].Title != "" || !reflect.DeepEqual(got[1].Columns, []string{"only"}) {
		t.Errorf("table 1 = %+v", got[1])
	}
	if !reflect.DeepEqual(got[1].Rows, [][]string{{"cell"}}) {
		t.Errorf("table 1 rows = %+v", got[1].Rows)
	}
}

func TestParseTablesShortRows(t *testing.T) {
	// Rows with fewer cells than columns (the renderer permits them)
	// must come back padded with empty strings, not crash.
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("x")
	got := ParseTables(tb.String())
	if len(got) != 1 || !reflect.DeepEqual(got[0].Rows, [][]string{{"x", "", ""}}) {
		t.Errorf("parsed = %+v", got)
	}
}

func TestParseTablesIgnoresPlainText(t *testing.T) {
	if got := ParseTables("no tables here\njust prose\n"); len(got) != 0 {
		t.Errorf("parsed %d tables from prose", len(got))
	}
	if got := ParseTables(""); len(got) != 0 {
		t.Errorf("parsed %d tables from empty input", len(got))
	}
}

func TestParseTablesAllExperimentStyles(t *testing.T) {
	// A dash-only cell (used for "not applicable" entries) must not be
	// mistaken for a separator because its line carries other text.
	tb := NewTable("t", "scheme", "cost")
	tb.AddRow("guarded", "-")
	got := ParseTables(tb.String())
	if len(got) != 1 || got[0].Rows[0][1] != "-" {
		t.Fatalf("parsed = %+v", got)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize([]float64{}); s != (Summary{}) {
		t.Errorf("empty input: %+v", s)
	}
	s := Summarize([]float64{7})
	if s.Count != 1 || s.Min != 7 || s.Max != 7 || s.Mean != 7 || s.P50 != 7 || s.P99 != 7 {
		t.Errorf("single sample: %+v", s)
	}
	// Non-finite samples are dropped, not propagated.
	s = Summarize([]float64{math.NaN(), 2, math.Inf(1), 4, math.Inf(-1)})
	if s.Count != 2 || s.Min != 2 || s.Max != 4 || s.Mean != 3 {
		t.Errorf("non-finite filtering: %+v", s)
	}
	if s := Summarize([]float64{math.NaN(), math.Inf(1)}); s != (Summary{}) {
		t.Errorf("all non-finite should summarize as empty: %+v", s)
	}
}

func TestTableDataIsDeepCopy(t *testing.T) {
	tb := NewTable("t", "a")
	tb.AddRow("v1")
	d := tb.Data()
	tb.AddRow("v2")
	d.Rows[0][0] = "mutated"
	if tb.Data().Rows[0][0] != "v1" || len(d.Rows) != 1 {
		t.Errorf("Data aliases table internals: %+v vs %+v", d, tb.Data())
	}
	if !strings.Contains(tb.String(), "v2") {
		t.Error("table lost a row")
	}
}
